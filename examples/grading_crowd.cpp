//===- examples/grading_crowd.cpp - Crowdsourced grading scenario ---------===//
//
// The Grading benchmark (Bachrach et al. [1], Section 5): students
// answer questions; correctness depends on student ability and
// question difficulty through a noisy performance comparison.  The
// sketch gives the roster structure (who answered what) and holes for
// every probabilistic rule; synthesis recovers an ability/difficulty
// model from graded responses, which can then predict response
// correctness probabilities for unseen student/question pairs.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "suite/Prepare.h"

#include <cstdio>

using namespace psketch;

int main() {
  const Benchmark *B = findBenchmark("Grading");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P) {
    std::printf("prepare failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("=== the grading sketch ===\n%s\n",
              toString(*P->Sketch).c_str());

  // Per-response empirical correctness rates in the data.
  std::printf("empirical correctness per (student, question):\n");
  for (int S = 0; S != 3; ++S) {
    std::printf("  student %d:", S);
    for (int Q = 0; Q != 3; ++Q) {
      std::string Col = "correct[" + std::to_string(S * 3 + Q) + "]";
      unsigned Id = P->Data.columnId(Col);
      double Rate = 0;
      for (const auto &Row : P->Data.rows())
        Rate += Row[Id];
      std::printf(" q%d=%.2f", Q, Rate / double(P->Data.numRows()));
    }
    std::printf("\n");
  }

  std::printf("\nrunning MCMC-SYN (%u iterations x %u chains)...\n",
              B->Synth.Iterations, B->Synth.Chains);
  Synthesizer Synth(*P->Sketch, P->Inputs, P->Data, B->Synth);
  SynthesisResult Result = Synth.run();
  if (!Result.Succeeded) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("\n=== synthesized grading model (LL %.2f vs hand-written "
              "%.2f, %.1f s) ===\n%s\n",
              Result.BestLogLikelihood, P->TargetLL, Result.Stats.Seconds,
              toString(*Result.BestProgram).c_str());
  return 0;
}
