//===- examples/quickstart.cpp - Five-minute tour of the PSketch API ------===//
//
// Synthesizes the simplest possible probabilistic program: a sketch
// `x = ??` plus 400 observations of a Gaussian.  Walks through the
// whole pipeline: parse -> type check -> lower -> generate data ->
// synthesize -> inspect the result.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "interp/Interp.h"
#include "parse/Parser.h"
#include "synth/Synthesizer.h"

#include <cstdio>

using namespace psketch;

int main() {
  // 1. A ground-truth generative model (normally this is the unknown
  //    process behind your data).
  const char *TargetSource = R"(
program Truth() {
  x: real;
  x ~ Gaussian(100.0, 10.0);
  return x;
}
)";

  // 2. The sketch: the part you are sure about (a single real-valued
  //    output) with a hole for the part you are not.
  const char *SketchSource = R"(
program Sketch() {
  x: real;
  x = ??;
  return x;
}
)";

  DiagEngine Diags;
  auto Target = parseProgramSource(TargetSource, Diags);
  auto Sketch = parseProgramSource(SketchSource, Diags);
  if (!Target || !Sketch || !typeCheck(*Target, Diags)) {
    std::printf("parse/type errors:\n%s", Diags.str().c_str());
    return 1;
  }

  // 3. Lower the target under (empty) input bindings and sample a
  //    dataset from it, exactly as the paper generates benchmark data.
  auto TargetLowered = lowerProgram(*Target, {}, Diags);
  Rng DataRng(1);
  Dataset Data = generateDataset(*TargetLowered, 400, DataRng);
  std::printf("generated %zu observations of x\n", Data.numRows());

  // 4. Run MCMC-SYN (Algorithm 1).
  SynthesisConfig Config;
  Config.Iterations = 3000;
  Config.Seed = 7;
  Synthesizer Synth(*Sketch, {}, Data, Config);
  SynthesisResult Result = Synth.run();
  if (!Result.Succeeded) {
    std::printf("synthesis failed\n");
    return 1;
  }

  // 5. Inspect.
  std::printf("synthesized in %.2f s (%u candidates scored, %.1f%% "
              "accepted):\n\n%s\n",
              Result.Stats.Seconds, Result.Stats.Scored,
              100.0 * Result.Stats.acceptanceRate(),
              toString(*Result.BestProgram).c_str());

  auto TargetF = LikelihoodFunction::compile(*TargetLowered, Data);
  std::printf("data log-likelihood: synthesized %.2f vs true model %.2f\n",
              Result.BestLogLikelihood, TargetF->logLikelihood(Data));
  return 0;
}
