//===- examples/trueskill_synthesis.cpp - The paper's running example -----===//
//
// Reproduces the Section 3 story end to end: the TrueSkill sketch of
// Figure 2 (priors and game-outcome rules left as holes), data
// generated from the hand-written model of Figure 1, and MCMC-SYN
// recovering a noisy-comparison program.  Afterwards the synthesized
// program is conditioned on the three game results and its skill
// posteriors are compared with the true model's (the Figure 7 check).
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "suite/Prepare.h"
#include "support/Histogram.h"

#include <cstdio>

using namespace psketch;

int main() {
  const Benchmark *B = findBenchmark("TrueSkill");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P) {
    std::printf("prepare failed:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("=== the sketch the user writes ===\n%s\n",
              toString(*P->Sketch).c_str());
  std::printf("=== data (first 3 of %zu rows) ===\n", P->Data.numRows());
  for (size_t Row = 0; Row != 3; ++Row) {
    for (size_t Col = 0; Col != P->Data.numColumns(); ++Col)
      std::printf("%s=%.1f ", P->Data.columns()[Col].c_str(),
                  P->Data.row(Row)[Col]);
    std::printf("\n");
  }

  std::printf("\n=== running MCMC-SYN ===\n");
  Synthesizer Synth(*P->Sketch, P->Inputs, P->Data, B->Synth);
  SynthesisResult Result = Synth.run();
  if (!Result.Succeeded) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("%u candidates scored in %.2f s; best LL %.2f "
              "(hand-written model: %.2f)\n\n",
              Result.Stats.Scored, Result.Stats.Seconds,
              Result.BestLogLikelihood, P->TargetLL);
  std::printf("=== synthesized program ===\n%s\n",
              toString(*Result.BestProgram).c_str());

  // Condition both programs on the observed game results (players
  // 1 > 2 > 3) and compare skill posteriors.
  auto Condition = [](const Program &Prog) {
    auto C = Prog.clone();
    for (long G = 0; G != 3; ++G)
      C->getBody().append(std::make_unique<ObserveStmt>(
          std::make_unique<IndexExpr>("r", ConstExpr::integer(G))));
    return C;
  };
  auto TrueCond = lowerProgram(*Condition(*P->Target), P->Inputs, Diags);
  auto SynthCond =
      lowerProgram(*Condition(*Result.BestProgram), P->Inputs, Diags);
  if (!TrueCond || !SynthCond) {
    std::printf("conditioning failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("=== posterior skills given the game results ===\n");
  for (int Player = 0; Player != 3; ++Player) {
    std::string Slot = "skills[" + std::to_string(Player) + "]";
    Rng R1(50 + Player), R2(60 + Player);
    auto TS = posteriorSamples(*TrueCond, Slot, 8000, R1);
    auto SS = posteriorSamples(*SynthCond, Slot, 8000, R2);
    Histogram HT(60, 140, 32), HS(60, 140, 32);
    HT.addAll(TS);
    HS.addAll(SS);
    std::printf("player %d: true %.1f +- %.1f | synthesized %.1f +- %.1f\n",
                Player + 1, HT.mean(), HT.stddev(), HS.mean(),
                HS.stddev());
  }
  return 0;
}
