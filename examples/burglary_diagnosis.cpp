//===- examples/burglary_diagnosis.cpp - Pearl's diagnostic queries -------===//
//
// Uses the exact-enumeration engine on the Burglary benchmark (Pearl's
// classic network, conditioned on Mary calling) to answer diagnostic
// queries — Pr(burglary | called), Pr(earthquake | called) — and then
// synthesizes the network from the sketch and compares the synthesized
// program's posterior marginals against the exact ones.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "interp/Enumerate.h"
#include "suite/Prepare.h"

#include <cstdio>

using namespace psketch;

int main() {
  const Benchmark *B = findBenchmark("Burglary");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P) {
    std::printf("prepare failed:\n%s", Diags.str().c_str());
    return 1;
  }

  auto Exact = ExactDistribution::enumerate(*P->TargetLowered);
  if (!Exact) {
    std::printf("enumeration failed\n");
    return 1;
  }
  std::printf("=== exact diagnosis given that Mary called ===\n");
  std::printf("evidence Pr(called)         = %.4f\n", Exact->evidence());
  for (const char *Slot :
       {"burglary", "earthquake", "alarm", "phoneWorking", "maryWakes"})
    std::printf("Pr(%-12s | called) = %.4f\n", Slot,
                Exact->marginalTrue(Slot));

  std::printf("\n=== synthesizing the network from the sketch ===\n");
  // Domain knowledge via configuration: the network is Boolean, so
  // restrict completions to Bernoulli draws and Boolean structure.
  // This also keeps the synthesized program exactly enumerable.
  SynthesisConfig Config = B->Synth;
  Config.Gen.Dists = {DistKind::Bernoulli};
  Config.Gen.CompareOps.clear();
  Config.Gen.ArithOps.clear();
  Synthesizer Synth(*P->Sketch, P->Inputs, P->Data, Config);
  SynthesisResult Result = Synth.run();
  if (!Result.Succeeded || !Result.BestProgram) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("synthesized (LL %.2f, target %.2f, exact posterior %.2f)"
              ":\n%s\n",
              Result.BestLogLikelihood, P->TargetLL,
              Exact->logLikelihood(P->Data),
              toString(*Result.BestProgram).c_str());

  auto SynthLowered =
      lowerProgram(*Result.BestProgram, P->Inputs, Diags);
  if (!SynthLowered) {
    std::printf("lowering failed:\n%s", Diags.str().c_str());
    return 1;
  }
  auto SynthExact = ExactDistribution::enumerate(*SynthLowered);
  if (!SynthExact) {
    std::printf("synthesized program is not enumerable (continuous "
                "draws crept in)\n");
    return 0;
  }
  std::printf("=== posterior marginals: true network vs synthesized ===\n");
  for (const char *Slot : {"burglary", "earthquake", "maryWakes"})
    std::printf("%-12s exact %.4f | synthesized %.4f\n", Slot,
                Exact->marginalTrue(Slot),
                SynthExact->marginalTrue(Slot));
  return 0;
}
