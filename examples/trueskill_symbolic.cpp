//===- examples/trueskill_symbolic.cpp - The Figure 4 worked example ------===//
//
// Prints the symbolic environment and per-row likelihood expression the
// LL(.) operator derives for the two-player, one-game TrueSkill
// candidate of Figure 4: skills map to their MoG priors, performances
// to MoGs whose means are symbolic references to the observed skills,
// and the game outcome to the erf comparison probability.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Likelihood.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"

#include <cstdio>

using namespace psketch;

int main() {
  const char *Source = R"(
program TS2(p1: int, p2: int, result: bool) {
  skills: real[2];
  perf1: real;
  perf2: real;
  r: bool;
  skills[0] ~ Gaussian(100.0, 10.0);
  skills[1] ~ Gaussian(100.0, 10.0);
  perf1 ~ Gaussian(skills[p1], 15.0);
  perf2 ~ Gaussian(skills[p2], 15.0);
  r = perf1 > perf2;
  observe(result == r);
  return skills;
}
)";
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  if (!P || !typeCheck(*P, Diags)) {
    std::printf("errors:\n%s", Diags.str().c_str());
    return 1;
  }
  InputBindings In;
  In.setInt("p1", 0);
  In.setInt("p2", 1);
  In.setScalar("result", 1.0, ScalarKind::Bool);
  auto LP = lowerProgram(*P, In, Diags);
  if (!LP) {
    std::printf("lowering failed:\n%s", Diags.str().c_str());
    return 1;
  }

  // Figure 2's data: the user picked skills 105 and 95.
  Dataset Data({"skills[0]", "skills[1]"});
  Data.addRow({105.0, 95.0});

  std::printf("Figure 4 worked example: symbolic execution of the "
              "2-player/1-game candidate\n");
  std::printf("(data references $0, $1 are the observed skills columns)"
              "\n\n%s\n",
              symbolicReport(*LP, Data,
                             {"skills[0]", "skills[1]", "perf1", "perf2",
                              "r"})
                  .c_str());

  auto F = LikelihoodFunction::compile(*LP, Data);
  std::printf("evaluated on the Figure 2 data row (105, 95): "
              "log Pr(D | P[H]) = %.4f\n(tape: %zu instructions, "
              "evaluated once per row)\n",
              F->logLikelihoodRow(Data.row(0)), F->tapeSize());
  return 0;
}
