//===- examples/clinical_trial.cpp - Clinical-trial scenario --------------===//
//
// The Infer.NET clinical-trial model (Section 5's Clinical benchmark):
// is a drug effective, given outcomes for control and treated groups?
// The domain expert writes the trial *structure* — groups, a shared
// placebo response, the effectiveness switch — and leaves the
// probabilistic machinery (priors and response rules) as holes.  The
// synthesized program is then used for the actual question: comparing
// the likelihood of the data under "effective" vs "not effective".
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"
#include "suite/Prepare.h"

#include <cstdio>

using namespace psketch;

int main() {
  const Benchmark *B = findBenchmark("Clinical");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P) {
    std::printf("prepare failed:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("=== the trial sketch ===\n%s\n",
              toString(*P->Sketch).c_str());

  // How often is the drug effective in the collected trials, and what
  // do the group response rates look like?
  unsigned EffCol = P->Data.columnId("isEffective");
  size_t Effective = 0;
  double ControlRate = 0, TreatedRate = 0;
  for (const auto &Row : P->Data.rows()) {
    Effective += Row[EffCol] != 0.0;
    for (size_t C = 0; C != P->Data.numColumns(); ++C) {
      const std::string &Name = P->Data.columns()[C];
      if (Name.rfind("control", 0) == 0)
        ControlRate += Row[C];
      else if (Name.rfind("treated", 0) == 0)
        TreatedRate += Row[C];
    }
  }
  double N = double(P->Data.numRows());
  std::printf("data: %zu trials, %.0f%% effective; mean response "
              "control %.2f, treated %.2f\n\n",
              P->Data.numRows(), 100.0 * double(Effective) / N,
              ControlRate / (6 * N), TreatedRate / (6 * N));

  Synthesizer Synth(*P->Sketch, P->Inputs, P->Data, B->Synth);
  SynthesisResult Result = Synth.run();
  if (!Result.Succeeded) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("=== synthesized trial model (LL %.2f vs hand-written "
              "%.2f) ===\n%s\n",
              Result.BestLogLikelihood, P->TargetLL,
              toString(*Result.BestProgram).c_str());
  return 0;
}
