//===- bench/micro_benchmarks.cpp - google-benchmark microbenches ---------===//
//
// Hot-path microbenchmarks: frontend, lowering, symbolic likelihood
// compilation, tape evaluation, mutation proposals, splicing, and the
// grid-density operations that dominate the Figure 8 baseline.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"
#include "baseline/GridDensity.h"
#include "interp/Interp.h"
#include "likelihood/RowParallel.h"
#include "likelihood/TapeKernels.h"
#include "obs/Json.h"
#include "parse/Parser.h"
#include "suite/Prepare.h"
#include "support/Simd.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

using namespace psketch;

namespace {

const PreparedBenchmark &trueSkill() {
  static const PreparedBenchmark P = [] {
    DiagEngine Diags;
    auto Prepared = prepareBenchmark(*findBenchmark("TrueSkill"), Diags);
    if (!Prepared)
      std::abort();
    return std::move(*Prepared);
  }();
  return P;
}

void BM_ParseTrueSkill(benchmark::State &State) {
  const Benchmark *B = findBenchmark("TrueSkill");
  for (auto _ : State) {
    DiagEngine Diags;
    auto P = parseProgramSource(B->TargetSource, Diags);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseTrueSkill);

void BM_TypeCheckTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    auto Clone = P.Target->clone();
    DiagEngine Diags;
    auto Sigs = typeCheck(*Clone, Diags);
    benchmark::DoNotOptimize(Sigs);
  }
}
BENCHMARK(BM_TypeCheckTrueSkill);

void BM_LowerTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    DiagEngine Diags;
    auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
    benchmark::DoNotOptimize(LP);
  }
}
BENCHMARK(BM_LowerTrueSkill);

void BM_CompileLikelihood(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_CompileLikelihood);

void BM_EvalLikelihoodRow(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
  size_t I = 0;
  for (auto _ : State) {
    double LL = F->logLikelihoodRow(P.Data.row(I));
    benchmark::DoNotOptimize(LL);
    I = (I + 1) % P.Data.numRows();
  }
}
BENCHMARK(BM_EvalLikelihoodRow);

void BM_EvalLikelihoodDataset(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
  for (auto _ : State) {
    double LL = F->logLikelihood(P.Data);
    benchmark::DoNotOptimize(LL);
  }
}
BENCHMARK(BM_EvalLikelihoodDataset);

void BM_ScoreCandidateEndToEnd(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  SynthesisConfig Config;
  Synthesizer Synth(*P.Sketch, P.Inputs, P.Data, Config);
  for (auto _ : State) {
    auto LL = Synth.scoreWithMoG(*P.Target);
    benchmark::DoNotOptimize(LL);
  }
}
BENCHMARK(BM_ScoreCandidateEndToEnd);

void BM_MutatePropose(benchmark::State &State) {
  std::vector<HoleSignature> Sigs = {
      {0, ScalarKind::Real, {}},
      {1, ScalarKind::Bool, {ScalarKind::Real, ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(1);
  Mutator M(Sigs, Gen, Cfg, R);
  DiagEngine Diags;
  std::vector<ExprPtr> Current;
  Current.push_back(parseExprSource("Gaussian(100.0, 10.0)", Diags));
  Current.push_back(parseExprSource(
      "Gaussian(%0, 15.0) > Gaussian(%1, 15.0)", Diags));
  for (auto _ : State) {
    auto Proposal = M.propose(Current);
    benchmark::DoNotOptimize(Proposal);
  }
}
BENCHMARK(BM_MutatePropose);

void BM_SpliceTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  DiagEngine Diags;
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseExprSource("Gaussian(100.0, 10.0)", Diags));
  Completions.push_back(parseExprSource(
      "Gaussian(%0, 15.0) > Gaussian(%1, 15.0)", Diags));
  for (auto _ : State) {
    auto Program = spliceCompletions(*P.Sketch, Completions);
    benchmark::DoNotOptimize(Program);
  }
}
BENCHMARK(BM_SpliceTrueSkill);

void BM_ForwardSampleRun(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  ForwardSampler S(*P.TargetLowered);
  Rng R(3);
  for (auto _ : State) {
    auto Slots = S.runOnce(R);
    benchmark::DoNotOptimize(Slots);
  }
}
BENCHMARK(BM_ForwardSampleRun);

void BM_GridConvolveAdd(benchmark::State &State) {
  GridConfig G;
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(5.0, 2.0, G);
  for (auto _ : State) {
    GridDensity S = GridDensity::convolveAdd(A, B, G);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_GridConvolveAdd);

void BM_GridProbGreater(benchmark::State &State) {
  GridConfig G;
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(0.5, 2.0, G);
  for (auto _ : State) {
    double P = GridDensity::probGreater(A, B);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_GridProbGreater);

void BM_MoGAddSymbolic(benchmark::State &State) {
  NumExprBuilder Builder;
  MoGAlgebra A(Builder);
  SymValue X = SymValue::mog({{Builder.constant(1.0), Builder.constant(0.0),
                               Builder.constant(1.0)}});
  SymValue Y = SymValue::mog({{Builder.constant(1.0), Builder.constant(5.0),
                               Builder.constant(2.0)}});
  for (auto _ : State) {
    SymValue S = A.add(X, Y);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_MoGAddSymbolic);

//===----------------------------------------------------------------------===//
// Tape-optimization report (DESIGN.md §9): tape sizes before/after the
// simplifier + fusion passes, and MH scoring throughput with the
// column-cache incremental evaluator off vs on.  Written to
// BENCH_tapeopt.json so CI can archive the numbers per commit.
//===----------------------------------------------------------------------===//

/// PSKETCH_BENCH_QUICK=1 shrinks iteration budgets so CI can exercise
/// the bench (and still upload BENCH_tapeopt.json) quickly.
bool quickMode() {
  const char *Env = std::getenv("PSKETCH_BENCH_QUICK");
  return Env && *Env && *Env != '0';
}

void writeTapeOptReport() {
  const bool Quick = quickMode();
  JsonWriter W;
  W.beginObject();
  W.field("bench", "tapeopt");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("quick", Quick);

  // -- Tape sizes across the suite ---------------------------------------
  // raw = live DAG nodes before the simplifier (the instruction count an
  // unoptimized tape would have); simplified = post-simplifier,
  // pre-fusion; final = shipped tape (simplify + fusion).
  std::printf("Likelihood tape sizes (instructions):\n\n");
  std::printf("%-14s %6s %10s %6s %6s %9s\n", "benchmark", "raw",
              "simplified", "final", "fused", "shrink");
  W.beginArray("tape_sizes");
  uint64_t TotalRaw = 0, TotalFinal = 0;
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P)
      continue;
    LikelihoodOptions NoFuse;
    NoFuse.Tape.Fuse = false;
    auto Simp = LikelihoodFunction::compile(*P->TargetLowered, P->Data, {},
                                            nullptr, NoFuse);
    auto Full = LikelihoodFunction::compile(*P->TargetLowered, P->Data);
    if (!Simp || !Full)
      continue;
    TotalRaw += Full->rawTapeSize();
    TotalFinal += Full->tapeSize();
    std::printf("%-14s %6zu %10zu %6zu %6zu %8.0f%%\n", B.Name.c_str(),
                Full->rawTapeSize(), Simp->tapeSize(), Full->tapeSize(),
                Full->tape().numFused(),
                100.0 * (1.0 - double(Full->tapeSize()) /
                                   double(Full->rawTapeSize())));
    W.beginObject()
        .field("name", B.Name)
        .field("raw_instructions", uint64_t(Full->rawTapeSize()))
        .field("simplified_instructions", uint64_t(Simp->tapeSize()))
        .field("final_instructions", uint64_t(Full->tapeSize()))
        .field("fused", uint64_t(Full->tape().numFused()))
        .endObject();
  }
  W.endArray();
  W.field("total_raw_instructions", TotalRaw);
  W.field("total_final_instructions", TotalFinal);

  // -- Incremental scoring throughput ------------------------------------
  // The Figure 8 metric on a single thread: candidates scored per second
  // of the TrueSkill MH walk, comparing the PR 2 pipeline (plain batched
  // eval: no simplifier, no fusion, no column cache) against the shipped
  // defaults (simplify + fuse + incremental).  ScoreCacheSize = 0 so
  // every candidate is actually scored in both runs; all three knobs are
  // bit-exact, so the two runs do identical synthesis work.
  {
    DiagEngine Diags;
    const Benchmark *TS = findBenchmark("TrueSkill");
    auto P = TS ? prepareBenchmark(*TS, Diags) : std::nullopt;
    if (P) {
      SynthesisConfig Base = TS->Synth;
      // Not shortened in quick mode: a leg costs ~0.3 s, and fewer
      // iterations would measure the column cache before it warms.
      Base.Iterations = 3000;
      Base.Chains = 2;
      Base.Threads = 1;
      Base.ScoreCacheSize = 0;

      SynthesisConfig OffCfg = Base; // The PR 2 baseline pipeline.
      OffCfg.Incremental = false;
      OffCfg.Likelihood.Simplify = false;
      OffCfg.Likelihood.Tape.Fuse = false;
      SynthesisConfig OnCfg = Base; // Shipped defaults.
      OnCfg.Incremental = true;

      // Best of three runs per leg: the walk is deterministic (fixed
      // seeds), so repeats differ only by scheduler noise, and the
      // fastest run is the least-perturbed measurement of each.
      auto RunOne = [&](const SynthesisConfig &Cfg) {
        std::optional<SynthesisResult> Best;
        for (int Rep = 0; Rep != 3; ++Rep) {
          Session S;
          S.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(Cfg);
          SynthesisResult R = S.run().Result;
          if (!Best || R.Stats.Seconds < Best->Stats.Seconds)
            Best = std::move(R);
        }
        return std::move(*Best);
      };
      SynthesisResult Off = RunOne(OffCfg);
      SynthesisResult On = RunOne(OnCfg);

      const double OffRate =
          Off.Stats.Seconds > 0 ? Off.Stats.Scored / Off.Stats.Seconds : 0;
      const double OnRate =
          On.Stats.Seconds > 0 ? On.Stats.Scored / On.Stats.Seconds : 0;
      const double Ratio = OffRate > 0 ? OnRate / OffRate : 0;
      std::printf("\nTrueSkill MH scoring throughput, single thread "
                  "(%u iterations x %u chains, score cache off):\n\n",
                  Base.Iterations, Base.Chains);
      std::printf("  PR 2 baseline (no simplify/fuse/incremental): "
                  "%8.0f candidates/s (best LL %.4f)\n",
                  OffRate, Off.BestLogLikelihood);
      std::printf("  optimized defaults:                           "
                  "%8.0f candidates/s (best LL %.4f, "
                  "column-cache hit rate %.0f%%)\n",
                  OnRate, On.BestLogLikelihood,
                  On.Stats.colCacheHitRate() * 100.0);
      std::printf("  speedup: %.2fx  (scores bit-identical: %s)\n", Ratio,
                  Off.BestLogLikelihood == On.BestLogLikelihood ? "yes"
                                                                : "NO");
      W.beginObject("incremental_scoring")
          .field("benchmark", std::string("TrueSkill"))
          .field("iterations", uint64_t(Base.Iterations))
          .field("chains", uint64_t(Base.Chains))
          .field("threads", uint64_t(1))
          .field("baseline_candidates_per_sec", OffRate)
          .field("optimized_candidates_per_sec", OnRate)
          .field("speedup", Ratio)
          .field("col_cache_hit_rate", On.Stats.colCacheHitRate())
          .field("col_cache_evictions", On.Stats.ColCacheEvictions)
          .field("scores_bit_identical",
                 Off.BestLogLikelihood == On.BestLogLikelihood)
          .endObject();
    }
  }

  W.endObject();
  std::ofstream Json("BENCH_tapeopt.json");
  Json << W.str() << "\n";
  std::printf("\nwrote BENCH_tapeopt.json\n");
}

//===----------------------------------------------------------------------===//
// SIMD scoring report (DESIGN.md §11): batched tape throughput at every
// runnable kernel tier, the --fast-simd-math delta, and the
// --row-threads block-parallel likelihood.  Written to BENCH_simd.json
// so CI can archive the numbers per commit.
//===----------------------------------------------------------------------===//

/// Rows/second for one full evalBatch pass over \p Cols in the 512-row
/// blocks the scoring loop uses, best of three timed passes (the walk
/// is deterministic; the fastest repeat is the least-perturbed one).
double measureBatchRate(const Tape &T, const ColumnarDataset &Cols,
                        int Passes) {
  std::vector<double> Scratch, Out(Cols.numRows());
  const size_t Block = 512;
  double BestSec = 0;
  for (int Rep = 0; Rep != 3; ++Rep) {
    const auto T0 = std::chrono::steady_clock::now();
    for (int P = 0; P != Passes; ++P)
      for (size_t Begin = 0; Begin < Cols.numRows(); Begin += Block) {
        const size_t N = std::min(Block, Cols.numRows() - Begin);
        T.evalBatch(Cols, Begin, N, Out.data() + Begin, Scratch);
      }
    const double Sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    if (Rep == 0 || Sec < BestSec)
      BestSec = Sec;
  }
  return BestSec > 0 ? double(Cols.numRows()) * Passes / BestSec : 0;
}

void writeSimdReport() {
  const bool Quick = quickMode();
  JsonWriter W;
  W.beginObject();
  W.field("bench", "simd_scoring");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("quick", Quick);
  W.field("compiled_max", simdLevelName(maxCompiledSimdLevel()));
  W.field("cpu_max", simdLevelName(detectCpuSimdLevel()));

  // -- Kernel-tier throughput --------------------------------------------
  // Two tape shapes over a synthetic two-column dataset, every runnable
  // tier forced in turn via the same cap the PSKETCH_SIMD_LEVEL env var
  // uses (default mode is bit-exact across tiers, so the legs do
  // identical numeric work):
  //
  //  * arith — the shape scoring tapes actually have after the
  //    simplifier hoists row-invariant subtrees (log(sigma) etc. leave
  //    the per-row loop): subtract/square/divide chains plus the fused
  //    superinstructions and compare/select ops, all fully lane-wise.
  //    This is the headline speedup the SIMD backend is for.
  //
  //  * transcendental — per-row Log/Exp/Erf, which default mode routes
  //    to scalar libm for bit-exactness.  Amdahl bounds this shape; it
  //    is reported as the documented worst case, and is what
  //    --fast-simd-math (polynomial Log/Exp, measured below) lifts.
  //
  // The workload this models is the MH inner loop: the same small
  // dataset re-scored thousands of times per chain, columns
  // cache-resident by construction.  The bench therefore fixes a
  // cache-resident row count and scales repetition instead — a
  // multi-megabyte dataset would measure DRAM streaming, which no
  // kernel tier can beat.
  const size_t Rows = 8192;
  const int Passes = Quick ? 300 : 1000;
  Dataset Data({"c0", "c1"});
  {
    Rng R(7);
    for (size_t I = 0; I != Rows; ++I)
      Data.addRow({R.uniform(-4, 4), R.uniform(-4, 4)});
  }
  ColumnarDataset Cols(Data);

  NumExprBuilder BA;
  NumId Arith;
  {
    NumId X = BA.dataRef(0), Y = BA.dataRef(1);
    NumId T1 = BA.add(BA.mul(X, Y), X);                    // MulAdd
    NumId T2 = BA.mul(BA.sub(X, Y), BA.constant(0.5));     // SubMul
    NumId T3 = BA.sub(BA.mul(X, BA.constant(1.5)), Y);     // MulSub
    NumId T4 = BA.div(BA.sub(X, BA.constant(0.25)),
                      BA.add(BA.mul(Y, Y), BA.constant(1.0))); // SubDiv
    NumId T5 = BA.mul(BA.add(X, BA.constant(2.0)), Y);     // AddMul
    NumId T6 = BA.add(BA.add(X, Y), BA.constant(3.0));     // AddAdd
    NumId T7 = BA.mul(BA.mul(T1, T2), T3);                 // MulMul
    NumId Sel = BA.max(BA.min(T4, T5), BA.neg(T6));
    NumId Cmp = BA.add(BA.gt(X, Y), BA.sqrt(BA.abs(T7)));
    Arith = BA.add(BA.add(T7, Sel), BA.add(Cmp, T4));
  }

  NumExprBuilder BT;
  NumId Trans;
  {
    NumId X = BT.dataRef(0), Y = BT.dataRef(1);
    NumId Mu = BT.add(BT.mul(Y, BT.constant(0.5)), BT.constant(1.0));
    NumId D = BT.sub(X, Mu);
    NumId Q = BT.mul(BT.mul(D, D), BT.constant(-0.5));
    Trans = BT.add(
        BT.sub(Q, BT.log(BT.add(BT.abs(Y), BT.constant(1.5)))),
        BT.add(BT.exp(BT.neg(BT.abs(D))),
               BT.erf(BT.mul(D, BT.constant(0.25)))));
  }

  std::vector<SimdLevel> Levels = {SimdLevel::Scalar};
  const uint8_t Max = std::min(uint8_t(maxCompiledSimdLevel()),
                               uint8_t(detectCpuSimdLevel()));
  if (Max >= uint8_t(SimdLevel::Sse2))
    Levels.push_back(SimdLevel::Sse2);
  if (Max >= uint8_t(SimdLevel::Avx2))
    Levels.push_back(SimdLevel::Avx2);

  std::printf("SIMD batched scoring throughput (%zu rows x %d passes, "
              "best of 3):\n\n",
              Rows, Passes);
  double ArithScalar = 0, ArithTop = 0, TransScalar = 0;
  auto MeasureTiers = [&](const char *Shape, const NumExprBuilder &B,
                          NumId Root, double &ScalarRate, double *TopRate) {
    W.beginArray(Shape);
    for (SimdLevel L : Levels) {
      setSimdLevelOverride(L);
      Tape T(B, Root);
      clearSimdLevelOverride();
      const double Rate = measureBatchRate(T, Cols, Passes);
      if (L == SimdLevel::Scalar)
        ScalarRate = Rate;
      if (TopRate)
        *TopRate = Rate;
      std::printf("  %-14s %-6s (%u lanes): %12.0f rows/s  "
                  "(%.2fx scalar)\n",
                  Shape, simdLevelName(L), T.laneWidth(), Rate,
                  ScalarRate > 0 ? Rate / ScalarRate : 0.0);
      W.beginObject()
          .field("level", simdLevelName(L))
          .field("lane_width", uint64_t(T.laneWidth()))
          .field("rows_per_sec", Rate)
          .field("speedup_vs_scalar",
                 ScalarRate > 0 ? Rate / ScalarRate : 0.0)
          .endObject();
    }
    W.endArray();
  };
  MeasureTiers("arith", BA, Arith, ArithScalar, &ArithTop);
  MeasureTiers("transcendental", BT, Trans, TransScalar, nullptr);
  W.field("speedup_top_vs_scalar",
          ArithScalar > 0 ? ArithTop / ArithScalar : 0.0);

  // --fast-simd-math at the top tier: value-changing polynomial Log/Exp
  // (documented tolerances in likelihood/TapeKernels.h) lifting the
  // transcendental shape's libm bottleneck.
  {
    TapeOptions Fast;
    Fast.FastSimdMath = true;
    Tape T(BT, Trans, Fast);
    const double Rate = measureBatchRate(T, Cols, Passes);
    std::printf("  %-14s %-6s + --fast-simd-math: %8.0f rows/s  "
                "(%.2fx scalar libm)\n",
                "transcendental", simdLevelName(T.simdLevel()), Rate,
                TransScalar > 0 ? Rate / TransScalar : 0.0);
    W.beginObject("fast_simd_math")
        .field("level", simdLevelName(T.simdLevel()))
        .field("rows_per_sec", Rate)
        .field("speedup_vs_scalar_libm",
               TransScalar > 0 ? Rate / TransScalar : 0.0)
        .endObject();
  }

  // -- Row-parallel likelihood -------------------------------------------
  // Full logLikelihood on a compiled model: serial blocks vs the same
  // blocks farmed to a worker pool.  The fixed-shape partial reduction
  // makes the two totals bit-identical — asserted here, since a silent
  // mismatch would invalidate the determinism story, not just the bench.
  {
    DiagEngine Diags;
    auto Target = parseProgramSource(R"(
program T() {
  x: real;
  x ~ Gaussian(7.0, 2.0);
  return x;
}
)",
                                     Diags);
    typeCheck(*Target, Diags);
    auto LP = lowerProgram(*Target, {}, Diags);
    Rng R(11);
    Dataset LData = generateDataset(*LP, Rows, R);
    ColumnarDataset LCols(LData);
    auto F = LikelihoodFunction::compile(*LP, LData);
    const unsigned Workers = 4;
    ThreadPool Pool(Workers);
    RowEvalContext Ctx(Pool, Workers);

    auto Measure = [&](RowEvalContext *Par) {
      double BestSec = 0, LL = 0;
      for (int Rep = 0; Rep != 3; ++Rep) {
        const auto T0 = std::chrono::steady_clock::now();
        for (int P = 0; P != Passes; ++P)
          LL = F->logLikelihood(LCols, Par);
        const double Sec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - T0)
                               .count();
        if (Rep == 0 || Sec < BestSec)
          BestSec = Sec;
      }
      const double Rate =
          BestSec > 0 ? double(Rows) * Passes / BestSec : 0;
      return std::make_pair(Rate, LL);
    };
    auto [SerialRate, SerialLL] = Measure(nullptr);
    auto [ParRate, ParLL] = Measure(&Ctx);
    const bool Identical = SerialLL == ParLL;
    std::printf("\nRow-parallel logLikelihood (%zu rows, %u workers):\n\n",
                Rows, Workers);
    std::printf("  serial blocks:    %12.0f rows/s\n", SerialRate);
    std::printf("  --row-threads %u:  %12.0f rows/s  (%.2fx, totals "
                "bit-identical: %s)\n",
                Workers, ParRate,
                SerialRate > 0 ? ParRate / SerialRate : 0.0,
                Identical ? "yes" : "NO");
    W.beginObject("row_parallel")
        .field("rows", uint64_t(Rows))
        .field("workers", uint64_t(Workers))
        .field("serial_rows_per_sec", SerialRate)
        .field("parallel_rows_per_sec", ParRate)
        .field("speedup", SerialRate > 0 ? ParRate / SerialRate : 0.0)
        .field("totals_bit_identical", Identical)
        .endObject();
  }

  W.endObject();
  std::ofstream Json("BENCH_simd.json");
  Json << W.str() << "\n";
  std::printf("\nwrote BENCH_simd.json\n");
}

//===----------------------------------------------------------------------===//
// Speculation scaling report (DESIGN.md §13): MH scoring throughput
// with `--speculate-depth 3` on a worker pool vs the sequential walk,
// on the four slowest Figure 8 benchmarks (lowest candidates/100s in
// BENCH_figure8_throughput.json: Grading, Conference, RATS, TrueSkill
// — the ones whose per-candidate compile+score cost speculation is
// for).  Written to BENCH_speculation.json so `psketch bench-diff`
// gates the speedups per commit.
//===----------------------------------------------------------------------===//

void writeSpeculationReport() {
  const bool Quick = quickMode();
  const unsigned Depth = 3;
  const unsigned Threads = 8; // 1 chain thread + 7 speculation workers.
  // Speedup here is wall-clock, so it measures real speculation gain
  // only when the host can actually run the workers concurrently.  On
  // fewer cores than workers the same numbers instead measure
  // oversubscription (every mispredicted node serializes onto a core
  // the realized walk needed) — record the host context so a reader,
  // and bench-diff runs on heterogeneous machines, can tell the two
  // apart.
  const unsigned HostCores = std::thread::hardware_concurrency();
  JsonWriter W;
  W.beginObject();
  W.field("bench", "speculation_scaling");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("quick", Quick);
  W.field("speculate_depth", uint64_t(Depth));
  W.field("threads", uint64_t(Threads));
  W.field("hardware_concurrency", uint64_t(HostCores));
  W.field("oversubscribed", HostCores < Threads);

  std::printf("MH speculation scaling, depth %u on %u threads vs "
              "sequential (1 chain, score cache off, best of 3):\n\n",
              Depth, Threads);
  if (HostCores < Threads)
    std::printf("  NOTE: host has %u hardware thread(s) for %u workers; "
                "speedups below measure oversubscription, not "
                "speculation.\n\n",
                HostCores, Threads);
  std::printf("%-12s %14s %14s %8s %11s %10s\n", "benchmark", "seq cand/s",
              "spec cand/s", "speedup", "mispredict", "identical");

  W.beginArray("benchmarks");
  for (const char *Name : {"Grading", "Conference", "RATS", "TrueSkill"}) {
    DiagEngine Diags;
    const Benchmark *B = findBenchmark(Name);
    auto P = B ? prepareBenchmark(*B, Diags) : std::nullopt;
    if (!P)
      continue;
    SynthesisConfig Base = B->Synth;
    Base.Iterations = Quick ? 300 : 2000;
    Base.Chains = 1;
    // Cache off: every candidate pays the full lower+compile+score
    // pipeline, which is the cost speculation pipelines.  (With the
    // cache on, the walk's revisits are memo lookups in both legs and
    // the bench would mostly measure the cache.)
    Base.ScoreCacheSize = 0;

    SynthesisConfig SeqCfg = Base;
    SeqCfg.Threads = 1;
    SeqCfg.SpeculateDepth = 0;
    SynthesisConfig SpecCfg = Base;
    SpecCfg.Threads = Threads;
    SpecCfg.SpeculateDepth = Depth;

    // Best of three runs per leg: the walks are deterministic, so
    // repeats differ only by scheduler noise.
    auto RunOne = [&](const SynthesisConfig &Cfg) {
      std::optional<SynthesisResult> Best;
      for (int Rep = 0; Rep != 3; ++Rep) {
        Session S;
        S.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(Cfg);
        SynthesisResult R = S.run().Result;
        if (!Best || R.Stats.Seconds < Best->Stats.Seconds)
          Best = std::move(R);
      }
      return std::move(*Best);
    };
    SynthesisResult Seq = RunOne(SeqCfg);
    SynthesisResult Spec = RunOne(SpecCfg);

    const double SeqRate =
        Seq.Stats.Seconds > 0 ? Seq.Stats.Scored / Seq.Stats.Seconds : 0;
    const double SpecRate =
        Spec.Stats.Seconds > 0 ? Spec.Stats.Scored / Spec.Stats.Seconds : 0;
    const double Speedup = SeqRate > 0 ? SpecRate / SeqRate : 0;
    const double Mispredict =
        Spec.Stats.SpecNodes
            ? double(Spec.Stats.SpecWasted) / double(Spec.Stats.SpecNodes)
            : 0;
    const bool Identical =
        Seq.BestLogLikelihood == Spec.BestLogLikelihood &&
        Seq.Stats.Scored == Spec.Stats.Scored &&
        Seq.Stats.Accepted == Spec.Stats.Accepted;

    std::printf("%-12s %14.0f %14.0f %7.2fx %10.0f%% %10s\n", Name,
                SeqRate, SpecRate, Speedup, Mispredict * 100.0,
                Identical ? "yes" : "NO (BUG)");
    W.beginObject()
        .field("name", std::string(Name))
        .field("iterations", uint64_t(Base.Iterations))
        .field("sequential_candidates_per_sec", SeqRate)
        .field("speculative_candidates_per_sec", SpecRate)
        .field("speedup", Speedup)
        .field("spec_blocks", Spec.Stats.SpecBlocks)
        .field("spec_nodes", Spec.Stats.SpecNodes)
        .field("spec_consumed", Spec.Stats.SpecConsumed)
        .field("spec_wasted", Spec.Stats.SpecWasted)
        .field("mispredict_rate", Mispredict)
        .field("best_ll_bit_identical", Identical)
        .endObject();
  }
  W.endArray();

  W.endObject();
  std::ofstream Json("BENCH_speculation.json");
  Json << W.str() << "\n";
  std::printf("\nwrote BENCH_speculation.json\n");
}

//===----------------------------------------------------------------------===//
// Slice-factoring report (DESIGN.md §14): MH scoring throughput with
// the factored likelihood vs --no-slice-factoring on a multi-observe
// sketch (three independent channels plus a dead drift hole — the
// shape the analysis factors best).  Written to BENCH_slicing.json so
// `psketch bench-diff` gates the speedup and the bit-identity flag
// per commit.
//===----------------------------------------------------------------------===//

void writeSliceFactoringReport() {
  const bool Quick = quickMode();
  // Mirrors examples/sketches/multi_observe.psk: one hole per channel
  // mean, and a drift hole no dataset column observes (its proposals
  // resolve by `synth.slice_skip`, never scoring).
  const char *TargetSource = R"(
program Channels() {
  a: real;
  b: real;
  c: real;
  drift: real;
  a ~ Gaussian(3.0, 1.0);
  b ~ Gaussian(0.0 - 2.0, 1.0);
  c ~ Gaussian(7.0, 1.0);
  drift ~ Gaussian(0.0, 1.0);
  return drift;
}
)";
  const char *SketchSource = R"(
program Channels() {
  a: real;
  b: real;
  c: real;
  drift: real;
  a ~ Gaussian(??, 1.0);
  b ~ Gaussian(??, 1.0);
  c ~ Gaussian(??, 1.0);
  drift ~ Gaussian(??, 1.0);
  return drift;
}
)";
  DiagEngine Diags;
  auto Target = parseProgramSource(TargetSource, Diags);
  auto Sketch = parseProgramSource(SketchSource, Diags);
  if (!Target || !Sketch || !typeCheck(*Target, Diags) ||
      !typeCheck(*Sketch, Diags))
    std::abort();
  auto TargetLowered = lowerProgram(*Target, {}, Diags);
  if (!TargetLowered)
    std::abort();
  Rng DataRng(17);
  Dataset Data =
      generateDataset(*TargetLowered, Quick ? 200 : 1000, DataRng);

  SynthesisConfig Base;
  Base.Iterations = Quick ? 500 : 4000;
  Base.Chains = 1;
  Base.Threads = 1;
  Base.Seed = 11;
  // Cache off: every candidate pays the full scoring pipeline, which
  // is the cost the per-group value cache shortens.
  Base.ScoreCacheSize = 0;
  SynthesisConfig OffCfg = Base;
  OffCfg.SliceFactoring = false;

  // Best of three runs per leg: the walks are deterministic, so
  // repeats differ only by scheduler noise.
  auto RunOne = [&](const SynthesisConfig &Cfg) {
    std::optional<SynthesisResult> Best;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Session S;
      S.sketch(*Sketch).data(Data).configure(Cfg);
      SynthesisResult R = S.run().Result;
      if (!Best || R.Stats.Seconds < Best->Stats.Seconds)
        Best = std::move(R);
    }
    return std::move(*Best);
  };
  SynthesisResult On = RunOne(Base);
  SynthesisResult Off = RunOne(OffCfg);

  // Proposals per second, not scores: the factored leg resolves
  // dead-hole proposals without scoring at all (`synth.slice_skip`),
  // so the two legs walk the same proposals but score different
  // subsets.  Scored counts would compare unlike work.
  const double OnRate =
      On.Stats.Seconds > 0 ? On.Stats.Proposed / On.Stats.Seconds : 0;
  const double OffRate =
      Off.Stats.Seconds > 0 ? Off.Stats.Proposed / Off.Stats.Seconds : 0;
  const double Speedup = OffRate > 0 ? OnRate / OffRate : 0;
  const uint64_t RowsTouched =
      On.Stats.SliceRowsSaved + On.Stats.SliceRowsEvaluated;
  const double RowReduction =
      RowsTouched ? double(On.Stats.SliceRowsSaved) / double(RowsTouched)
                  : 0;
  const bool Identical =
      On.BestLogLikelihood == Off.BestLogLikelihood &&
      On.Stats.Proposed == Off.Stats.Proposed &&
      On.Stats.Accepted == Off.Stats.Accepted;

  std::printf("\nSlice-factored scoring vs --no-slice-factoring "
              "(multi-observe sketch, %zu rows, best of 3):\n\n",
              Data.numRows());
  std::printf("  monolithic:  %12.0f proposals/s\n", OffRate);
  std::printf("  factored:    %12.0f proposals/s  (%.2fx, identical: %s)\n",
              OnRate, Speedup, Identical ? "yes" : "NO (BUG)");
  std::printf("  rows saved:  %11.0f%%  (skip: %llu, hits: %llu, "
              "misses: %llu)\n",
              RowReduction * 100.0,
              (unsigned long long)On.Stats.SliceSkip,
              (unsigned long long)On.Stats.SliceGroupHits,
              (unsigned long long)On.Stats.SliceGroupMisses);
  if (RowReduction < 0.3)
    std::printf("  NOTE: row reduction below the 30%% the multi-observe "
                "shape should sustain.\n");

  JsonWriter W;
  W.beginObject();
  W.field("bench", "slice_factoring");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("quick", Quick);
  W.field("rows", uint64_t(Data.numRows()));
  W.field("iterations", uint64_t(Base.Iterations));
  W.field("monolithic_proposals_per_sec", OffRate);
  W.field("factored_proposals_per_sec", OnRate);
  W.field("factored_speedup", Speedup);
  W.field("row_reduction_fraction", RowReduction);
  W.field("slice_skip", On.Stats.SliceSkip);
  W.field("slice_group_hits", On.Stats.SliceGroupHits);
  W.field("slice_group_misses", On.Stats.SliceGroupMisses);
  W.field("slice_rows_saved", On.Stats.SliceRowsSaved);
  W.field("slice_rows_evaluated", On.Stats.SliceRowsEvaluated);
  W.field("best_ll_bit_identical", Identical);
  W.endObject();
  std::ofstream Json("BENCH_slicing.json");
  Json << W.str() << "\n";
  std::printf("\nwrote BENCH_slicing.json\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeTapeOptReport();
  writeSimdReport();
  writeSpeculationReport();
  writeSliceFactoringReport();
  return 0;
}
