//===- bench/micro_benchmarks.cpp - google-benchmark microbenches ---------===//
//
// Hot-path microbenchmarks: frontend, lowering, symbolic likelihood
// compilation, tape evaluation, mutation proposals, splicing, and the
// grid-density operations that dominate the Figure 8 baseline.
//
//===----------------------------------------------------------------------===//

#include "baseline/GridDensity.h"
#include "obs/Json.h"
#include "parse/Parser.h"
#include "suite/Prepare.h"

#include <benchmark/benchmark.h>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace psketch;

namespace {

const PreparedBenchmark &trueSkill() {
  static const PreparedBenchmark P = [] {
    DiagEngine Diags;
    auto Prepared = prepareBenchmark(*findBenchmark("TrueSkill"), Diags);
    if (!Prepared)
      std::abort();
    return std::move(*Prepared);
  }();
  return P;
}

void BM_ParseTrueSkill(benchmark::State &State) {
  const Benchmark *B = findBenchmark("TrueSkill");
  for (auto _ : State) {
    DiagEngine Diags;
    auto P = parseProgramSource(B->TargetSource, Diags);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseTrueSkill);

void BM_TypeCheckTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    auto Clone = P.Target->clone();
    DiagEngine Diags;
    auto Sigs = typeCheck(*Clone, Diags);
    benchmark::DoNotOptimize(Sigs);
  }
}
BENCHMARK(BM_TypeCheckTrueSkill);

void BM_LowerTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    DiagEngine Diags;
    auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
    benchmark::DoNotOptimize(LP);
  }
}
BENCHMARK(BM_LowerTrueSkill);

void BM_CompileLikelihood(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_CompileLikelihood);

void BM_EvalLikelihoodRow(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
  size_t I = 0;
  for (auto _ : State) {
    double LL = F->logLikelihoodRow(P.Data.row(I));
    benchmark::DoNotOptimize(LL);
    I = (I + 1) % P.Data.numRows();
  }
}
BENCHMARK(BM_EvalLikelihoodRow);

void BM_EvalLikelihoodDataset(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
  for (auto _ : State) {
    double LL = F->logLikelihood(P.Data);
    benchmark::DoNotOptimize(LL);
  }
}
BENCHMARK(BM_EvalLikelihoodDataset);

void BM_ScoreCandidateEndToEnd(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  SynthesisConfig Config;
  Synthesizer Synth(*P.Sketch, P.Inputs, P.Data, Config);
  for (auto _ : State) {
    auto LL = Synth.scoreWithMoG(*P.Target);
    benchmark::DoNotOptimize(LL);
  }
}
BENCHMARK(BM_ScoreCandidateEndToEnd);

void BM_MutatePropose(benchmark::State &State) {
  std::vector<HoleSignature> Sigs = {
      {0, ScalarKind::Real, {}},
      {1, ScalarKind::Bool, {ScalarKind::Real, ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(1);
  Mutator M(Sigs, Gen, Cfg, R);
  DiagEngine Diags;
  std::vector<ExprPtr> Current;
  Current.push_back(parseExprSource("Gaussian(100.0, 10.0)", Diags));
  Current.push_back(parseExprSource(
      "Gaussian(%0, 15.0) > Gaussian(%1, 15.0)", Diags));
  for (auto _ : State) {
    auto Proposal = M.propose(Current);
    benchmark::DoNotOptimize(Proposal);
  }
}
BENCHMARK(BM_MutatePropose);

void BM_SpliceTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  DiagEngine Diags;
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseExprSource("Gaussian(100.0, 10.0)", Diags));
  Completions.push_back(parseExprSource(
      "Gaussian(%0, 15.0) > Gaussian(%1, 15.0)", Diags));
  for (auto _ : State) {
    auto Program = spliceCompletions(*P.Sketch, Completions);
    benchmark::DoNotOptimize(Program);
  }
}
BENCHMARK(BM_SpliceTrueSkill);

void BM_ForwardSampleRun(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  ForwardSampler S(*P.TargetLowered);
  Rng R(3);
  for (auto _ : State) {
    auto Slots = S.runOnce(R);
    benchmark::DoNotOptimize(Slots);
  }
}
BENCHMARK(BM_ForwardSampleRun);

void BM_GridConvolveAdd(benchmark::State &State) {
  GridConfig G;
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(5.0, 2.0, G);
  for (auto _ : State) {
    GridDensity S = GridDensity::convolveAdd(A, B, G);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_GridConvolveAdd);

void BM_GridProbGreater(benchmark::State &State) {
  GridConfig G;
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(0.5, 2.0, G);
  for (auto _ : State) {
    double P = GridDensity::probGreater(A, B);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_GridProbGreater);

void BM_MoGAddSymbolic(benchmark::State &State) {
  NumExprBuilder Builder;
  MoGAlgebra A(Builder);
  SymValue X = SymValue::mog({{Builder.constant(1.0), Builder.constant(0.0),
                               Builder.constant(1.0)}});
  SymValue Y = SymValue::mog({{Builder.constant(1.0), Builder.constant(5.0),
                               Builder.constant(2.0)}});
  for (auto _ : State) {
    SymValue S = A.add(X, Y);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_MoGAddSymbolic);

//===----------------------------------------------------------------------===//
// Tape-optimization report (DESIGN.md §9): tape sizes before/after the
// simplifier + fusion passes, and MH scoring throughput with the
// column-cache incremental evaluator off vs on.  Written to
// BENCH_tapeopt.json so CI can archive the numbers per commit.
//===----------------------------------------------------------------------===//

/// PSKETCH_BENCH_QUICK=1 shrinks iteration budgets so CI can exercise
/// the bench (and still upload BENCH_tapeopt.json) quickly.
bool quickMode() {
  const char *Env = std::getenv("PSKETCH_BENCH_QUICK");
  return Env && *Env && *Env != '0';
}

void writeTapeOptReport() {
  const bool Quick = quickMode();
  JsonWriter W;
  W.beginObject();
  W.field("bench", "tapeopt");
  W.field("quick", Quick);

  // -- Tape sizes across the suite ---------------------------------------
  // raw = live DAG nodes before the simplifier (the instruction count an
  // unoptimized tape would have); simplified = post-simplifier,
  // pre-fusion; final = shipped tape (simplify + fusion).
  std::printf("Likelihood tape sizes (instructions):\n\n");
  std::printf("%-14s %6s %10s %6s %6s %9s\n", "benchmark", "raw",
              "simplified", "final", "fused", "shrink");
  W.beginArray("tape_sizes");
  uint64_t TotalRaw = 0, TotalFinal = 0;
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P)
      continue;
    LikelihoodOptions NoFuse;
    NoFuse.Tape.Fuse = false;
    auto Simp = LikelihoodFunction::compile(*P->TargetLowered, P->Data, {},
                                            nullptr, NoFuse);
    auto Full = LikelihoodFunction::compile(*P->TargetLowered, P->Data);
    if (!Simp || !Full)
      continue;
    TotalRaw += Full->rawTapeSize();
    TotalFinal += Full->tapeSize();
    std::printf("%-14s %6zu %10zu %6zu %6zu %8.0f%%\n", B.Name.c_str(),
                Full->rawTapeSize(), Simp->tapeSize(), Full->tapeSize(),
                Full->tape().numFused(),
                100.0 * (1.0 - double(Full->tapeSize()) /
                                   double(Full->rawTapeSize())));
    W.beginObject()
        .field("name", B.Name)
        .field("raw_instructions", uint64_t(Full->rawTapeSize()))
        .field("simplified_instructions", uint64_t(Simp->tapeSize()))
        .field("final_instructions", uint64_t(Full->tapeSize()))
        .field("fused", uint64_t(Full->tape().numFused()))
        .endObject();
  }
  W.endArray();
  W.field("total_raw_instructions", TotalRaw);
  W.field("total_final_instructions", TotalFinal);

  // -- Incremental scoring throughput ------------------------------------
  // The Figure 8 metric on a single thread: candidates scored per second
  // of the TrueSkill MH walk, comparing the PR 2 pipeline (plain batched
  // eval: no simplifier, no fusion, no column cache) against the shipped
  // defaults (simplify + fuse + incremental).  ScoreCacheSize = 0 so
  // every candidate is actually scored in both runs; all three knobs are
  // bit-exact, so the two runs do identical synthesis work.
  {
    DiagEngine Diags;
    const Benchmark *TS = findBenchmark("TrueSkill");
    auto P = TS ? prepareBenchmark(*TS, Diags) : std::nullopt;
    if (P) {
      SynthesisConfig Base = TS->Synth;
      // Not shortened in quick mode: a leg costs ~0.3 s, and fewer
      // iterations would measure the column cache before it warms.
      Base.Iterations = 3000;
      Base.Chains = 2;
      Base.Threads = 1;
      Base.ScoreCacheSize = 0;

      SynthesisConfig OffCfg = Base; // The PR 2 baseline pipeline.
      OffCfg.Incremental = false;
      OffCfg.Likelihood.Simplify = false;
      OffCfg.Likelihood.Tape.Fuse = false;
      SynthesisConfig OnCfg = Base; // Shipped defaults.
      OnCfg.Incremental = true;

      // Best of three runs per leg: the walk is deterministic (fixed
      // seeds), so repeats differ only by scheduler noise, and the
      // fastest run is the least-perturbed measurement of each.
      auto RunOne = [&](const SynthesisConfig &Cfg) {
        std::optional<SynthesisResult> Best;
        for (int Rep = 0; Rep != 3; ++Rep) {
          Synthesizer Synth(*P->Sketch, P->Inputs, P->Data, Cfg);
          SynthesisResult R = Synth.run();
          if (!Best || R.Stats.Seconds < Best->Stats.Seconds)
            Best = std::move(R);
        }
        return std::move(*Best);
      };
      SynthesisResult Off = RunOne(OffCfg);
      SynthesisResult On = RunOne(OnCfg);

      const double OffRate =
          Off.Stats.Seconds > 0 ? Off.Stats.Scored / Off.Stats.Seconds : 0;
      const double OnRate =
          On.Stats.Seconds > 0 ? On.Stats.Scored / On.Stats.Seconds : 0;
      const double Ratio = OffRate > 0 ? OnRate / OffRate : 0;
      std::printf("\nTrueSkill MH scoring throughput, single thread "
                  "(%u iterations x %u chains, score cache off):\n\n",
                  Base.Iterations, Base.Chains);
      std::printf("  PR 2 baseline (no simplify/fuse/incremental): "
                  "%8.0f candidates/s (best LL %.4f)\n",
                  OffRate, Off.BestLogLikelihood);
      std::printf("  optimized defaults:                           "
                  "%8.0f candidates/s (best LL %.4f, "
                  "column-cache hit rate %.0f%%)\n",
                  OnRate, On.BestLogLikelihood,
                  On.Stats.colCacheHitRate() * 100.0);
      std::printf("  speedup: %.2fx  (scores bit-identical: %s)\n", Ratio,
                  Off.BestLogLikelihood == On.BestLogLikelihood ? "yes"
                                                                : "NO");
      W.beginObject("incremental_scoring")
          .field("benchmark", std::string("TrueSkill"))
          .field("iterations", uint64_t(Base.Iterations))
          .field("chains", uint64_t(Base.Chains))
          .field("threads", uint64_t(1))
          .field("baseline_candidates_per_sec", OffRate)
          .field("optimized_candidates_per_sec", OnRate)
          .field("speedup", Ratio)
          .field("col_cache_hit_rate", On.Stats.colCacheHitRate())
          .field("col_cache_evictions", On.Stats.ColCacheEvictions)
          .field("scores_bit_identical",
                 Off.BestLogLikelihood == On.BestLogLikelihood)
          .endObject();
    }
  }

  W.endObject();
  std::ofstream Json("BENCH_tapeopt.json");
  Json << W.str() << "\n";
  std::printf("\nwrote BENCH_tapeopt.json\n");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  writeTapeOptReport();
  return 0;
}
