//===- bench/micro_benchmarks.cpp - google-benchmark microbenches ---------===//
//
// Hot-path microbenchmarks: frontend, lowering, symbolic likelihood
// compilation, tape evaluation, mutation proposals, splicing, and the
// grid-density operations that dominate the Figure 8 baseline.
//
//===----------------------------------------------------------------------===//

#include "baseline/GridDensity.h"
#include "parse/Parser.h"
#include "suite/Prepare.h"

#include <benchmark/benchmark.h>

using namespace psketch;

namespace {

const PreparedBenchmark &trueSkill() {
  static const PreparedBenchmark P = [] {
    DiagEngine Diags;
    auto Prepared = prepareBenchmark(*findBenchmark("TrueSkill"), Diags);
    if (!Prepared)
      std::abort();
    return std::move(*Prepared);
  }();
  return P;
}

void BM_ParseTrueSkill(benchmark::State &State) {
  const Benchmark *B = findBenchmark("TrueSkill");
  for (auto _ : State) {
    DiagEngine Diags;
    auto P = parseProgramSource(B->TargetSource, Diags);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_ParseTrueSkill);

void BM_TypeCheckTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    auto Clone = P.Target->clone();
    DiagEngine Diags;
    auto Sigs = typeCheck(*Clone, Diags);
    benchmark::DoNotOptimize(Sigs);
  }
}
BENCHMARK(BM_TypeCheckTrueSkill);

void BM_LowerTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    DiagEngine Diags;
    auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
    benchmark::DoNotOptimize(LP);
  }
}
BENCHMARK(BM_LowerTrueSkill);

void BM_CompileLikelihood(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  for (auto _ : State) {
    auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_CompileLikelihood);

void BM_EvalLikelihoodRow(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
  size_t I = 0;
  for (auto _ : State) {
    double LL = F->logLikelihoodRow(P.Data.row(I));
    benchmark::DoNotOptimize(LL);
    I = (I + 1) % P.Data.numRows();
  }
}
BENCHMARK(BM_EvalLikelihoodRow);

void BM_EvalLikelihoodDataset(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data);
  for (auto _ : State) {
    double LL = F->logLikelihood(P.Data);
    benchmark::DoNotOptimize(LL);
  }
}
BENCHMARK(BM_EvalLikelihoodDataset);

void BM_ScoreCandidateEndToEnd(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  SynthesisConfig Config;
  Synthesizer Synth(*P.Sketch, P.Inputs, P.Data, Config);
  for (auto _ : State) {
    auto LL = Synth.scoreWithMoG(*P.Target);
    benchmark::DoNotOptimize(LL);
  }
}
BENCHMARK(BM_ScoreCandidateEndToEnd);

void BM_MutatePropose(benchmark::State &State) {
  std::vector<HoleSignature> Sigs = {
      {0, ScalarKind::Real, {}},
      {1, ScalarKind::Bool, {ScalarKind::Real, ScalarKind::Real}}};
  GeneratorConfig Gen;
  MutateConfig Cfg;
  Rng R(1);
  Mutator M(Sigs, Gen, Cfg, R);
  DiagEngine Diags;
  std::vector<ExprPtr> Current;
  Current.push_back(parseExprSource("Gaussian(100.0, 10.0)", Diags));
  Current.push_back(parseExprSource(
      "Gaussian(%0, 15.0) > Gaussian(%1, 15.0)", Diags));
  for (auto _ : State) {
    auto Proposal = M.propose(Current);
    benchmark::DoNotOptimize(Proposal);
  }
}
BENCHMARK(BM_MutatePropose);

void BM_SpliceTrueSkill(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  DiagEngine Diags;
  std::vector<ExprPtr> Completions;
  Completions.push_back(parseExprSource("Gaussian(100.0, 10.0)", Diags));
  Completions.push_back(parseExprSource(
      "Gaussian(%0, 15.0) > Gaussian(%1, 15.0)", Diags));
  for (auto _ : State) {
    auto Program = spliceCompletions(*P.Sketch, Completions);
    benchmark::DoNotOptimize(Program);
  }
}
BENCHMARK(BM_SpliceTrueSkill);

void BM_ForwardSampleRun(benchmark::State &State) {
  const PreparedBenchmark &P = trueSkill();
  ForwardSampler S(*P.TargetLowered);
  Rng R(3);
  for (auto _ : State) {
    auto Slots = S.runOnce(R);
    benchmark::DoNotOptimize(Slots);
  }
}
BENCHMARK(BM_ForwardSampleRun);

void BM_GridConvolveAdd(benchmark::State &State) {
  GridConfig G;
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(5.0, 2.0, G);
  for (auto _ : State) {
    GridDensity S = GridDensity::convolveAdd(A, B, G);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_GridConvolveAdd);

void BM_GridProbGreater(benchmark::State &State) {
  GridConfig G;
  GridDensity A = GridDensity::gaussian(0.0, 1.0, G);
  GridDensity B = GridDensity::gaussian(0.5, 2.0, G);
  for (auto _ : State) {
    double P = GridDensity::probGreater(A, B);
    benchmark::DoNotOptimize(P);
  }
}
BENCHMARK(BM_GridProbGreater);

void BM_MoGAddSymbolic(benchmark::State &State) {
  NumExprBuilder Builder;
  MoGAlgebra A(Builder);
  SymValue X = SymValue::mog({{Builder.constant(1.0), Builder.constant(0.0),
                               Builder.constant(1.0)}});
  SymValue Y = SymValue::mog({{Builder.constant(1.0), Builder.constant(5.0),
                               Builder.constant(2.0)}});
  for (auto _ : State) {
    SymValue S = A.add(X, Y);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_MoGAddSymbolic);

} // namespace

BENCHMARK_MAIN();
