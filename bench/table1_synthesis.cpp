//===- bench/table1_synthesis.cpp - Reproduces Table 1 --------------------===//
//
// Synthesizes every one of the 16 benchmarks from its sketch + dataset
// and reports, per row: synthesis time, target-program data
// log-likelihood, synthesized-program data log-likelihood, and dataset
// size — next to the paper's reported numbers.  Absolute times differ
// (hardware, substrate); the comparison of interest is synthesized LL
// vs target LL per row, which should be close or better, as in the
// paper.
//
//===----------------------------------------------------------------------===//

#include "suite/Prepare.h"

#include <cstdio>

using namespace psketch;

int main() {
  std::printf("Table 1: synthesis results for PSKETCH (paper values in "
              "brackets)\n");
  std::printf("%-14s %10s %14s %14s %9s   %-30s\n", "benchmark",
              "time(s)", "target LL", "synth LL", "|D|",
              "paper [time, target, synth]");
  double TotalSeconds = 0;
  unsigned Succeeded = 0;
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P) {
      std::printf("%-14s PREPARE FAILED\n%s", B.Name.c_str(),
                  Diags.str().c_str());
      continue;
    }
    BenchmarkRunResult Row = runBenchmark(*P);
    TotalSeconds += Row.Seconds;
    Succeeded += Row.Succeeded;
    std::printf("%-14s %10.2f %14.2f %14.2f %9u   [%.0f, %.2f, %.2f]\n",
                Row.Name.c_str(), Row.Seconds, Row.TargetLL,
                Row.SynthesizedLL, Row.DatasetSize, B.Paper.TimeSec,
                B.Paper.TargetLL, B.Paper.SynthesizedLL);
  }
  std::printf("\n%u/16 benchmarks synthesized; total MH time %.1f s\n",
              Succeeded, TotalSeconds);
  std::printf("(seeds fixed per benchmark; see src/suite/Benchmarks.cpp)\n");
  return Succeeded == allBenchmarks().size() ? 0 : 1;
}
