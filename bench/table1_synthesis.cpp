//===- bench/table1_synthesis.cpp - Reproduces Table 1 --------------------===//
//
// Synthesizes every one of the 16 benchmarks from its sketch + dataset
// and reports, per row: synthesis time, target-program data
// log-likelihood, synthesized-program data log-likelihood, and dataset
// size — next to the paper's reported numbers.  Absolute times differ
// (hardware, substrate); the comparison of interest is synthesized LL
// vs target LL per row, which should be close or better, as in the
// paper.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "suite/Prepare.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace psketch;

int main() {
  // PSKETCH_BENCH_QUICK=1 shrinks every benchmark's iteration budget so
  // CI can exercise the bench and upload BENCH_table1_synthesis.json
  // without paying full synthesis time (rows may then fail to reach the
  // target LL; the exit code still reflects full-budget expectations
  // only when quick mode is off).
  const char *QuickEnv = std::getenv("PSKETCH_BENCH_QUICK");
  const bool Quick = QuickEnv && *QuickEnv && *QuickEnv != '0';

  JsonWriter W;
  W.beginObject();
  W.field("bench", "table1_synthesis");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("quick", Quick);
  W.beginArray("rows");

  std::printf("Table 1: synthesis results for PSKETCH (paper values in "
              "brackets)\n");
  std::printf("%-14s %10s %14s %14s %9s   %-30s\n", "benchmark",
              "time(s)", "target LL", "synth LL", "|D|",
              "paper [time, target, synth]");
  double TotalSeconds = 0;
  unsigned Succeeded = 0;
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P) {
      std::printf("%-14s PREPARE FAILED\n%s", B.Name.c_str(),
                  Diags.str().c_str());
      continue;
    }
    SynthesisConfig QuickCfg = B.Synth;
    QuickCfg.Iterations = std::min(QuickCfg.Iterations, 200u);
    BenchmarkRunResult Row =
        runBenchmark(*P, Quick ? &QuickCfg : nullptr);
    TotalSeconds += Row.Seconds;
    Succeeded += Row.Succeeded;
    std::printf("%-14s %10.2f %14.2f %14.2f %9u   [%.0f, %.2f, %.2f]\n",
                Row.Name.c_str(), Row.Seconds, Row.TargetLL,
                Row.SynthesizedLL, Row.DatasetSize, B.Paper.TimeSec,
                B.Paper.TargetLL, B.Paper.SynthesizedLL);
    W.beginObject()
        .field("name", Row.Name)
        .field("succeeded", Row.Succeeded)
        .field("seconds", Row.Seconds)
        .field("target_ll", Row.TargetLL)
        .field("synth_ll", Row.SynthesizedLL)
        .field("dataset_rows", uint64_t(Row.DatasetSize))
        .field("proposed", uint64_t(Row.Stats.Proposed))
        .field("scored", uint64_t(Row.Stats.Scored))
        .field("cache_hit_rate", Row.Stats.cacheHitRate())
        .field("acceptance_rate", Row.Stats.acceptanceRate())
        .endObject();
  }
  W.endArray();
  W.field("succeeded", uint64_t(Succeeded));
  W.field("total_seconds", TotalSeconds);
  W.endObject();

  std::ofstream Json("BENCH_table1_synthesis.json");
  Json << W.str() << "\n";

  std::printf("\n%u/16 benchmarks synthesized; total MH time %.1f s\n",
              Succeeded, TotalSeconds);
  std::printf("(seeds fixed per benchmark; see src/suite/Benchmarks.cpp)\n");
  std::printf("wrote BENCH_table1_synthesis.json\n");
  return Quick || Succeeded == allBenchmarks().size() ? 0 : 1;
}
