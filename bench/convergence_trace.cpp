//===- bench/convergence_trace.cpp - Section 4.4 convergence check --------===//
//
// Section 4.4 argues MH "converges to a reasonable approximation of the
// target distribution" within a practical budget.  This harness prints
// the best-so-far log-likelihood trace (one line per checkpoint) for a
// few representative benchmarks, normalized against the target
// program's likelihood, so the convergence curves behind Table 1 can
// be plotted.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"
#include "suite/Prepare.h"

#include <cstdio>

using namespace psketch;

int main() {
  std::printf("Convergence of MCMC-SYN (best-so-far LL by iteration, "
              "single chain)\n");
  std::printf("%-14s %10s %12s %12s\n", "benchmark", "iteration",
              "best LL", "target LL");
  for (const char *Name : {"Gaussian", "TrueSkill", "MoG1", "Burglary"}) {
    const Benchmark *B = findBenchmark(Name);
    DiagEngine Diags;
    auto P = prepareBenchmark(*B, Diags);
    if (!P) {
      std::printf("%-14s PREPARE FAILED\n", Name);
      continue;
    }
    SynthesisConfig Config = B->Synth;
    Config.Chains = 1;
    Config.Iterations = 8000;
    Config.TrackBestTrace = true;
    Session S;
    S.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(Config);
    SynthesisResult Result = S.run().Result;
    if (!Result.Succeeded) {
      std::printf("%-14s synthesis failed\n", Name);
      continue;
    }
    for (size_t I = 0; I < Result.BestTrace.size(); I += 500)
      std::printf("%-14s %10zu %12.2f %12.2f\n", Name, I,
                  Result.BestTrace[I], P->TargetLL);
    std::printf("%-14s %10zu %12.2f %12.2f\n", Name,
                Result.BestTrace.size() - 1, Result.BestTrace.back(),
                P->TargetLL);
  }
  return 0;
}
