//===- bench/figure7_posteriors.cpp - Reproduces Figure 7 -----------------===//
//
// Figure 7 compares the posterior skill marginals of players 1-3 under
// the hand-written TrueSkill program ("True") and under the program
// PSKETCH synthesizes from the sketch + data ("Synthesized"), for the
// 3-player/3-game instance.  This harness synthesizes the program,
// rejection-samples both posteriors, and prints density series per
// player (label x density), plus summary statistics and the L1
// distance between the histograms.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"
#include "ast/ASTPrinter.h"
#include "suite/Prepare.h"
#include "support/Histogram.h"

#include <cstdio>

using namespace psketch;

namespace {

Histogram posteriorHistogram(const LoweredProgram &LP,
                             const std::string &Slot, uint64_t Seed) {
  Rng R(Seed);
  std::vector<double> Samples = posteriorSamples(LP, Slot, 20000, R);
  Histogram H(60.0, 140.0, 40);
  H.addAll(Samples);
  return H;
}

/// Figure 7 conditions on the outcomes of Figure 2 (player 1 beats 2,
/// 2 beats 3, 1 beats 3): append `observe(r[g])` per game to either
/// the true or the synthesized program.
std::unique_ptr<Program> conditionOnWins(const Program &P,
                                         unsigned NGames) {
  auto Conditioned = P.clone();
  for (unsigned G = 0; G != NGames; ++G)
    Conditioned->getBody().append(
        std::make_unique<ObserveStmt>(std::make_unique<IndexExpr>(
            "r", ConstExpr::integer(long(G)))));
  return Conditioned;
}

} // namespace

int main() {
  const Benchmark *B = findBenchmark("TrueSkill");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P) {
    std::printf("prepare failed:\n%s", Diags.str().c_str());
    return 1;
  }

  std::printf("Figure 7: skill posteriors, true vs synthesized TrueSkill "
              "(3 players & 3 games)\n\n");
  Session S;
  S.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(B->Synth);
  SynthesisResult Result = S.run().Result;
  if (!Result.Succeeded || !Result.BestProgram) {
    std::printf("synthesis failed\n");
    return 1;
  }
  std::printf("synthesized program (LL %.2f vs target %.2f, %.2f s):\n%s\n",
              Result.BestLogLikelihood, P->TargetLL, Result.Stats.Seconds,
              toString(*Result.BestProgram).c_str());

  DiagEngine SynthDiags;
  auto TrueConditioned = conditionOnWins(*P->Target, 3);
  auto SynthConditioned = conditionOnWins(*Result.BestProgram, 3);
  auto TrueLowered =
      lowerProgram(*TrueConditioned, P->Inputs, SynthDiags);
  auto SynthLowered =
      lowerProgram(*SynthConditioned, P->Inputs, SynthDiags);
  if (!TrueLowered || !SynthLowered) {
    std::printf("lowering conditioned programs failed:\n%s",
                SynthDiags.str().c_str());
    return 1;
  }

  double TrueMeans[3] = {0, 0, 0};
  for (int Player = 0; Player != 3; ++Player) {
    std::string Slot = "skills[" + std::to_string(Player) + "]";
    Histogram True =
        posteriorHistogram(*TrueLowered, Slot, 9000 + Player);
    Histogram Synthesized =
        posteriorHistogram(*SynthLowered, Slot, 9100 + Player);
    TrueMeans[Player] = True.mean();
    std::printf("# player %d: true mean %.2f sd %.2f | synthesized mean "
                "%.2f sd %.2f | L1 %.3f\n",
                Player + 1, True.mean(), True.stddev(),
                Synthesized.mean(), Synthesized.stddev(),
                Histogram::l1Distance(True, Synthesized));
    std::printf("%s", True.series("true_skill" +
                                  std::to_string(Player + 1)).c_str());
    std::printf("%s",
                Synthesized
                    .series("synth_skill" + std::to_string(Player + 1))
                    .c_str());
  }

  // The paper's qualitative claim: conditioned on 0>1, 1>2, 0>2, the
  // posterior means must be ordered player1 > player2 > player3 under
  // the true program.
  std::printf("\n# ordering (true): %.2f > %.2f > %.2f : %s\n",
              TrueMeans[0], TrueMeans[1], TrueMeans[2],
              (TrueMeans[0] > TrueMeans[1] && TrueMeans[1] > TrueMeans[2])
                  ? "yes"
                  : "NO");
  return 0;
}
