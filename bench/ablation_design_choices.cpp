//===- bench/ablation_design_choices.cpp - Design-choice ablations --------===//
//
// Ablates the implementation choices DESIGN.md §3 calls out:
//
//  A. constant-smoothing bandwidth b (the paper draws b ~ Beta(0.1, 1);
//     we default to a fixed 0.1) — effect on target log-likelihoods;
//  B. strict constant lifting (literal Figure 6) vs precise
//     shift/scale rules for Known op MoG — effect on accuracy against
//     the integration baseline;
//  C. geometric mutation-count parameter p — effect on MH acceptance
//     rate and best likelihood; and
//  D. compiled tape vs direct recursive NumExpr evaluation — the
//     "compile once, plug in data" speedup within the fast path.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"
#include "baseline/GridLikelihood.h"
#include "parse/Parser.h"
#include "suite/Prepare.h"

#include <chrono>
#include <cstdio>

using namespace psketch;

namespace {

void ablateBandwidth() {
  // A model with a genuine point mass in its output density: the
  // constant branch of the ite is smoothed with bandwidth b, so b
  // directly shapes the likelihood (the paper draws b ~ Beta(0.1, 1)).
  std::printf("[A] bandwidth b: log-likelihood of a point-mass mixture "
              "under different smoothing\n");
  const char *Source = R"(
program Pointy() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.5);
  x = ite(z, 42.0, Gaussian(40.0, 5.0));
  return x;
}
)";
  DiagEngine Diags;
  auto P = parseProgramSource(Source, Diags);
  if (!P || !typeCheck(*P, Diags))
    return;
  auto LP = lowerProgram(*P, {}, Diags);
  if (!LP)
    return;
  Rng R(404);
  Dataset Data = generateDataset(*LP, 200, R);
  std::printf("%12s %12s %12s %12s %12s\n", "b=0.01", "b=0.05", "b=0.1",
              "b=0.5", "b=1.0");
  for (double Bandwidth : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    AlgebraConfig Cfg;
    Cfg.Bandwidth = Bandwidth;
    auto F = LikelihoodFunction::compile(*LP, Data, Cfg);
    std::printf(" %12.2f", F ? F->logLikelihood(Data) : 0.0);
  }
  std::printf("\n\n");
}

void ablateStrictLifting() {
  std::printf("[B] strict constant lifting (literal Figure 6) vs precise "
              "shift/scale\n");
  std::printf("%-14s %14s %14s %14s\n", "benchmark", "precise LL",
              "strict LL", "baseline LL");
  for (const char *Name : {"RATS", "GenderHeight", "Gaussian"}) {
    const Benchmark *B = findBenchmark(Name);
    DiagEngine Diags;
    auto P = prepareBenchmark(*B, Diags);
    if (!P)
      continue;
    AlgebraConfig Precise;
    AlgebraConfig Strict;
    Strict.StrictConstLifting = true;
    auto FP = LikelihoodFunction::compile(*P->TargetLowered, P->Data,
                                          Precise);
    auto FS = LikelihoodFunction::compile(*P->TargetLowered, P->Data,
                                          Strict);
    // Baseline over a subsample, scaled, to bound runtime.
    GridLikelihoodEvaluator Grid(*P->TargetLowered, P->Data);
    size_t Rows = std::min<size_t>(P->Data.numRows(), 20);
    double Base = 0;
    for (size_t I = 0; I != Rows; ++I) {
      auto LL = Grid.logLikelihoodRow(P->Data.row(I));
      Base += LL ? *LL : 0;
    }
    Base *= double(P->Data.numRows()) / double(Rows);
    std::printf("%-14s %14.2f %14.2f %14.2f\n", Name,
                FP ? FP->logLikelihood(P->Data) : 0.0,
                FS ? FS->logLikelihood(P->Data) : 0.0, Base);
  }
  std::printf("\n");
}

void ablateGeometricP() {
  std::printf("[C] geometric mutation-count parameter p (TrueSkill, one "
              "chain, 4000 iterations)\n");
  std::printf("%6s %14s %14s %14s\n", "p", "best LL", "accept rate",
              "invalid rate");
  const Benchmark *B = findBenchmark("TrueSkill");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P)
    return;
  for (double GeomP : {0.2, 0.4, 0.6, 0.8}) {
    SynthesisConfig Config = B->Synth;
    Config.Iterations = 4000;
    Config.Chains = 1;
    Config.Mut.GeomP = GeomP;
    Session S;
    S.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(Config);
    SynthesisResult R = S.run().Result;
    std::printf("%6.1f %14.2f %14.3f %14.3f\n", GeomP,
                R.BestLogLikelihood, R.Stats.acceptanceRate(),
                R.Stats.Proposed
                    ? double(R.Stats.Invalid) / double(R.Stats.Proposed)
                    : 0.0);
  }
  std::printf("\n");
}

void ablateTapeVsInterpreted() {
  std::printf("[D] compiled tape vs recursive NumExpr evaluation "
              "(TrueSkill likelihood, 400 rows)\n");
  const Benchmark *B = findBenchmark("TrueSkill");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P)
    return;
  // Build the symbolic likelihood once, then time both evaluators.
  NumExprBuilder Builder;
  MoGAlgebra Algebra(Builder);
  auto Observed = observedSlots(*P->TargetLowered, P->Data);
  LLExecutor Exec(Algebra, Observed);
  auto Root = Exec.run(*P->TargetLowered);
  if (!Root)
    return;
  Tape Compiled(Builder, *Root);

  const int Reps = 200;
  double Sink = 0;
  auto T0 = std::chrono::steady_clock::now();
  std::vector<double> Scratch;
  for (int R = 0; R != Reps; ++R)
    for (const auto &Row : P->Data.rows())
      Sink += Compiled.eval(Row, Scratch);
  auto T1 = std::chrono::steady_clock::now();
  for (int R = 0; R != Reps; ++R)
    for (const auto &Row : P->Data.rows())
      Sink += Builder.eval(*Root, Row);
  auto T2 = std::chrono::steady_clock::now();
  (void)Sink;
  double TapeSec = std::chrono::duration<double>(T1 - T0).count();
  double InterpSec = std::chrono::duration<double>(T2 - T1).count();
  std::printf("tape: %9.4f s   recursive: %9.4f s   speedup: %.1fx   "
              "(tape length %zu)\n\n",
              TapeSec, InterpSec, InterpSec / TapeSec, Compiled.size());
}

void ablateProposalRatio() {
  std::printf("[E] symmetric-proposal assumption vs approximate MH "
              "proposal ratio (MoG3, 6 chains x 8000)\n");
  std::printf("%-12s %14s %14s\n", "proposal", "best LL", "accept rate");
  const Benchmark *B = findBenchmark("MoG3");
  DiagEngine Diags;
  auto P = prepareBenchmark(*B, Diags);
  if (!P)
    return;
  for (bool UseRatio : {false, true}) {
    SynthesisConfig Config = B->Synth;
    Config.Iterations = 8000;
    Config.Chains = 6;
    Config.UseProposalRatio = UseRatio;
    Session S;
    S.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(Config);
    SynthesisResult R = S.run().Result;
    std::printf("%-12s %14.2f %14.3f\n",
                UseRatio ? "asymmetric" : "symmetric",
                R.BestLogLikelihood, R.Stats.acceptanceRate());
  }
  std::printf("(target LL %.2f)\n\n", P->TargetLL);
}

} // namespace

int main() {
  std::printf("Ablations of DESIGN.md section 3 choices\n\n");
  ablateBandwidth();
  ablateStrictLifting();
  ablateGeometricP();
  ablateTapeVsInterpreted();
  ablateProposalRatio();
  return 0;
}
