//===- bench/figure8_throughput.cpp - Reproduces Figure 8 -----------------===//
//
// Figure 8 reports the number of candidate programs evaluated per 100
// seconds with the MoG approximation (PSKETCH) and without it (the
// integration-based likelihood of Bhat et al. [2], reproduced here by
// the grid-density evaluator).  Likelihood evaluation dominates the MH
// loop, so candidates/100s is measured by timing candidate scoring:
// lower + compile + evaluate over the full dataset for the MoG path,
// and lower + per-row numeric integration for the baseline.
//
// The paper's claim is the ~1000x ratio, not the absolute rates.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"
#include "baseline/GridLikelihood.h"
#include "obs/Json.h"
#include "obs/Profiler.h"
#include "suite/Prepare.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

using namespace psketch;

namespace {

double secondsPerMoGCandidate(const PreparedBenchmark &P,
                              unsigned Candidates) {
  ColumnarDataset Cols(P.Data);
  auto Start = std::chrono::steady_clock::now();
  double Sink = 0;
  for (unsigned I = 0; I != Candidates; ++I) {
    DiagEngine Diags;
    auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
    auto F = LikelihoodFunction::compile(*LP, P.Data);
    Sink += F->logLikelihood(Cols);
  }
  auto End = std::chrono::steady_clock::now();
  (void)Sink;
  return std::chrono::duration<double>(End - Start).count() /
         double(Candidates);
}

/// Seconds per candidate along the seed's serial scoring path:
/// lower + compile + row-at-a-time tape evaluation.
double secondsPerRowwiseCandidate(const PreparedBenchmark &P,
                                  unsigned Candidates) {
  auto Start = std::chrono::steady_clock::now();
  double Sink = 0;
  for (unsigned I = 0; I != Candidates; ++I) {
    DiagEngine Diags;
    auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
    auto F = LikelihoodFunction::compile(*LP, P.Data);
    Sink += F->logLikelihoodRowwise(P.Data);
  }
  auto End = std::chrono::steady_clock::now();
  (void)Sink;
  return std::chrono::duration<double>(End - Start).count() /
         double(Candidates);
}

/// Max |row-wise - batched| over per-row log-likelihoods.
double maxPerRowDivergence(const PreparedBenchmark &P) {
  DiagEngine Diags;
  auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
  auto F = LikelihoodFunction::compile(*LP, P.Data);
  ColumnarDataset Cols(P.Data);
  std::vector<double> Batched;
  F->logLikelihoodRows(Cols, Batched);
  double MaxDiff = 0;
  for (size_t R = 0; R != P.Data.numRows(); ++R)
    MaxDiff = std::max(MaxDiff,
                       std::fabs(F->logLikelihoodRow(P.Data.row(R)) -
                                 Batched[R]));
  return MaxDiff;
}

/// Candidates per 100 s of a short TrueSkill synthesis run under
/// \p Config, with an optional row-wise scorer emulating the seed path.
SynthesisStats trueSkillSynthStats(const PreparedBenchmark &P,
                                   SynthesisConfig Config, bool Rowwise,
                                   double &BestLL) {
  Session S;
  S.sketch(*P.Sketch).data(P.Data).inputs(P.Inputs).configure(Config);
  if (Rowwise)
    S.scorer([&P, &Config](const Program &Cand)
                 -> std::optional<double> {
      DiagEngine Diags;
      auto LP = lowerProgram(Cand, P.Inputs, Diags);
      if (!LP)
        return std::nullopt;
      if (!checkDefiniteAssignment(*LP, Diags))
        return std::nullopt;
      auto F = LikelihoodFunction::compile(*LP, P.Data, Config.Algebra);
      if (!F)
        return std::nullopt;
      double LL = F->logLikelihoodRowwise(P.Data);
      if (std::isnan(LL))
        return std::nullopt;
      return LL;
    });
  SynthesisResult Result = S.run().Result;
  BestLL = Result.BestLogLikelihood;
  return Result.Stats;
}

double secondsPerBaselineCandidate(const PreparedBenchmark &P) {
  // One full-dataset evaluation is expensive; time a row subsample and
  // scale to the dataset size.
  const size_t SampleRows = std::min<size_t>(P.Data.numRows(), 8);
  DiagEngine Diags;
  auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
  GridLikelihoodEvaluator Grid(*LP, P.Data);
  auto Start = std::chrono::steady_clock::now();
  double Sink = 0;
  for (size_t I = 0; I != SampleRows; ++I) {
    auto LL = Grid.logLikelihoodRow(P.Data.row(I));
    Sink += LL ? *LL : 0;
  }
  auto End = std::chrono::steady_clock::now();
  (void)Sink;
  double PerRow = std::chrono::duration<double>(End - Start).count() /
                  double(SampleRows);
  return PerRow * double(P.Data.numRows());
}

/// PSKETCH_BENCH_QUICK=1 shrinks the candidate / iteration budgets so
/// CI can exercise the bench (and still upload its BENCH_*.json)
/// without paying full measurement time.
bool quickMode() {
  const char *Env = std::getenv("PSKETCH_BENCH_QUICK");
  return Env && *Env && *Env != '0';
}

} // namespace

int main() {
  const bool Quick = quickMode();
  const unsigned Candidates = Quick ? 5 : 50;

  // Machine-readable results, written to BENCH_figure8_throughput.json
  // alongside the human-readable table.
  JsonWriter W;
  W.beginObject();
  W.field("bench", "figure8_throughput");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("quick", Quick);
  W.beginArray("benchmarks");

  std::printf("Figure 8: candidate programs evaluated per 100 s, with the "
              "MoG approximation\n(PSKETCH) and without it (numeric "
              "integration baseline).\n\n");
  std::printf("%-14s %15s %15s %10s\n", "benchmark", "PSKETCH/100s",
              "baseline/100s", "speedup");
  double MinRatio = 1e300, MaxRatio = 0;
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P) {
      std::printf("%-14s PREPARE FAILED\n", B.Name.c_str());
      continue;
    }
    double MoGSec = secondsPerMoGCandidate(*P, Candidates);
    double BaseSec = secondsPerBaselineCandidate(*P);
    double MoGRate = 100.0 / MoGSec;
    double BaseRate = 100.0 / BaseSec;
    double Ratio = MoGRate / BaseRate;
    MinRatio = std::min(MinRatio, Ratio);
    MaxRatio = std::max(MaxRatio, Ratio);
    std::printf("%-14s %15.0f %15.1f %9.0fx\n", B.Name.c_str(), MoGRate,
                BaseRate, Ratio);
    W.beginObject()
        .field("name", B.Name)
        .field("mog_per_100s", MoGRate)
        .field("baseline_per_100s", BaseRate)
        .field("speedup", Ratio)
        .endObject();
  }
  W.endArray();
  W.field("speedup_min", MinRatio);
  W.field("speedup_max", MaxRatio);
  std::printf("\nspeedup range across benchmarks: %.0fx .. %.0fx "
              "(paper: ~1000x)\n",
              MinRatio, MaxRatio);

  // -- Batched columnar vs row-wise scoring ------------------------------
  // Same lower + compile per candidate; only the tape evaluation path
  // differs.  The per-row divergence column validates that the batched
  // evaluator reproduces row-wise results (<= 1e-12 required).
  std::printf("\nBatched columnar vs row-wise candidate scoring "
              "(lower + compile + evaluate):\n\n");
  std::printf("%-14s %15s %15s %9s %12s\n", "benchmark", "rowwise/100s",
              "batched/100s", "speedup", "max|diff|");
  W.beginArray("batched_vs_rowwise");
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P)
      continue;
    double RowSec = secondsPerRowwiseCandidate(*P, Candidates);
    double BatchSec = secondsPerMoGCandidate(*P, Candidates);
    double MaxDiff = maxPerRowDivergence(*P);
    std::printf("%-14s %15.0f %15.0f %8.2fx %12.2e\n", B.Name.c_str(),
                100.0 / RowSec, 100.0 / BatchSec, RowSec / BatchSec,
                MaxDiff);
    W.beginObject()
        .field("name", B.Name)
        .field("rowwise_per_100s", 100.0 / RowSec)
        .field("batched_per_100s", 100.0 / BatchSec)
        .field("speedup", RowSec / BatchSec)
        .field("max_row_divergence", MaxDiff)
        .endObject();
  }
  W.endArray();

  // -- Serial seed path vs parallel + batched + cached synthesis ---------
  // The end-to-end Figure 8 metric on TrueSkill: candidates per 100 s
  // of the MH walk itself.  "seed" is the pre-batching configuration
  // (row-wise scoring, one thread, no score cache); "new" is the
  // batched scorer with Chains run on 4 pool threads and the
  // candidate-score cache on.
  {
    DiagEngine Diags;
    const Benchmark *TS = findBenchmark("TrueSkill");
    auto P = TS ? prepareBenchmark(*TS, Diags) : std::nullopt;
    if (P) {
      SynthesisConfig Base = TS->Synth;
      Base.Iterations = Quick ? 200 : 1500;
      Base.Chains = 4;

      SynthesisConfig SeedCfg = Base;
      SeedCfg.Threads = 1;
      SeedCfg.ScoreCacheSize = 0;
      SynthesisConfig NewCfg = Base;
      NewCfg.Threads = 4;

      double SeedLL = 0, NewLL = 0;
      SynthesisStats SeedStats =
          trueSkillSynthStats(*P, SeedCfg, /*Rowwise=*/true, SeedLL);
      SynthesisStats NewStats =
          trueSkillSynthStats(*P, NewCfg, /*Rowwise=*/false, NewLL);

      std::printf("\nTrueSkill MH synthesis throughput (%u iterations x "
                  "%u chains):\n\n",
                  Base.Iterations, Base.Chains);
      std::printf("  seed path (row-wise, 1 thread, no cache): "
                  "%.0f candidates/100s (best LL %.2f)\n",
                  SeedStats.candidatesPer100Sec(), SeedLL);
      std::printf("  new path  (batched, 4 threads, LRU cache): "
                  "%.0f candidates/100s (best LL %.2f, "
                  "cache hit rate %.0f%%)\n",
                  NewStats.candidatesPer100Sec(), NewLL,
                  NewStats.cacheHitRate() * 100.0);
      std::printf("  throughput ratio: %.2fx\n",
                  NewStats.candidatesPer100Sec() /
                      SeedStats.candidatesPer100Sec());
      W.beginObject("trueskill_mh")
          .field("iterations", uint64_t(Base.Iterations))
          .field("chains", uint64_t(Base.Chains))
          .field("seed_per_100s", SeedStats.candidatesPer100Sec())
          .field("new_per_100s", NewStats.candidatesPer100Sec())
          .field("ratio", NewStats.candidatesPer100Sec() /
                              SeedStats.candidatesPer100Sec())
          .field("seed_best_ll", SeedLL)
          .field("new_best_ll", NewLL)
          .field("cache_hit_rate", NewStats.cacheHitRate())
          .endObject();
    }
  }

  // -- STATIC-REJECT pre-filter on vs off --------------------------------
  // The abstract-interpretation pre-filter (DESIGN.md §10) rejects
  // proposals with provably-invalid draw parameters before the lower /
  // LL(.) / tape pipeline runs.  Its verdict defines domain validity in
  // both modes, so the best score must be bit-identical; the flag only
  // decides whether rejected proposals pay scoring cost first.
  {
    DiagEngine Diags;
    const Benchmark *TS = findBenchmark("TrueSkill");
    auto P = TS ? prepareBenchmark(*TS, Diags) : std::nullopt;
    if (P) {
      SynthesisConfig Base = TS->Synth;
      Base.Iterations = Quick ? 200 : 1500;
      Base.Chains = 4;
      Base.Threads = 4;
      SynthesisConfig OnCfg = Base;
      OnCfg.StaticAnalysis = true;
      SynthesisConfig OffCfg = Base;
      OffCfg.StaticAnalysis = false;

      double OnLL = 0, OffLL = 0;
      SynthesisStats OnStats =
          trueSkillSynthStats(*P, OnCfg, /*Rowwise=*/false, OnLL);
      SynthesisStats OffStats =
          trueSkillSynthStats(*P, OffCfg, /*Rowwise=*/false, OffLL);
      double RejectRate =
          OnStats.Proposed
              ? double(OnStats.InvalidStatic) / double(OnStats.Proposed)
              : 0;
      bool BitIdentical = std::memcmp(&OnLL, &OffLL, sizeof(double)) == 0;

      std::printf("\nTrueSkill STATIC-REJECT pre-filter (%u iterations x "
                  "%u chains):\n\n",
                  Base.Iterations, Base.Chains);
      std::printf("  on : %.0f candidates/100s, %u of %u proposals "
                  "statically rejected (%.1f%%), best LL %.2f\n",
                  OnStats.candidatesPer100Sec(), OnStats.InvalidStatic,
                  OnStats.Proposed, RejectRate * 100.0, OnLL);
      std::printf("  off: %.0f candidates/100s, best LL %.2f\n",
                  OffStats.candidatesPer100Sec(), OffLL);
      std::printf("  best LL bit-identical: %s\n",
                  BitIdentical ? "yes" : "NO (BUG)");
      W.beginObject("trueskill_static_reject")
          .field("iterations", uint64_t(Base.Iterations))
          .field("chains", uint64_t(Base.Chains))
          .field("proposed", uint64_t(OnStats.Proposed))
          .field("static_rejects", uint64_t(OnStats.InvalidStatic))
          .field("static_reject_rate", RejectRate)
          .field("on_per_100s", OnStats.candidatesPer100Sec())
          .field("off_per_100s", OffStats.candidatesPer100Sec())
          .field("best_ll_on", OnLL)
          .field("best_ll_off", OffLL)
          .field("best_ll_bit_identical", BitIdentical)
          .endObject();
    }
  }

  // -- Profiled TrueSkill run --------------------------------------------
  // One short synthesis with `--profile` on: writes the attribution
  // report (PROFILE_figure8_trueskill.json) and the folded stacks for
  // flamegraph.pl (PROFILE_figure8_trueskill.folded), and records the
  // attribution quality in the bench JSON.
  {
    DiagEngine Diags;
    const Benchmark *TS = findBenchmark("TrueSkill");
    auto P = TS ? prepareBenchmark(*TS, Diags) : std::nullopt;
    if (P) {
      SynthesisConfig Cfg = TS->Synth;
      Cfg.Iterations = Quick ? 200 : 1500;
      Cfg.Chains = 2;
      Cfg.Profile = true;
      Session ProfS;
      ProfS.sketch(*P->Sketch).data(P->Data).inputs(P->Inputs).configure(Cfg);
      SynthesisResult Result = ProfS.run().Result;
      ProfileReport Report = makeProfileReport(Result, Cfg);
      Report.Sketch = "TrueSkill";
      double Attributed =
          attributedEvalFraction(Result.Profile.Tape, Result.Stats.Stage);
      double Opcode =
          opcodeEvalFraction(Result.Profile.Tape, Result.Stats.Stage);

      std::printf("\nTrueSkill profiled run (%u iterations x %u chains): "
                  "%.1f%% of eval_batch attributed (%.1f%% to opcodes), "
                  "hw counters %s\n",
                  Cfg.Iterations, Cfg.Chains, Attributed * 100.0,
                  Opcode * 100.0,
                  Result.Profile.Perf.Available ? "available"
                                                : "unavailable");
      {
        std::ofstream F("PROFILE_figure8_trueskill.json");
        F << profileReportJson(Report) << "\n";
      }
      {
        std::ofstream F("PROFILE_figure8_trueskill.folded");
        F << profileFoldedStacks(Report);
      }
      std::printf("wrote PROFILE_figure8_trueskill.json and "
                  "PROFILE_figure8_trueskill.folded\n");
      W.beginObject("trueskill_profile")
          .field("iterations", uint64_t(Cfg.Iterations))
          .field("chains", uint64_t(Cfg.Chains))
          .field("attributed_fraction", Attributed)
          .field("opcode_fraction", Opcode)
          .field("blocks_profiled",
                 uint64_t(Result.Profile.Tape.BlocksProfiled))
          .field("perf_counters_available", Result.Profile.Perf.Available)
          .endObject();
    }
  }

  W.endObject();
  std::ofstream Json("BENCH_figure8_throughput.json");
  Json << W.str() << "\n";
  std::printf("\nwrote BENCH_figure8_throughput.json\n");
  return 0;
}
