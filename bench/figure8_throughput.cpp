//===- bench/figure8_throughput.cpp - Reproduces Figure 8 -----------------===//
//
// Figure 8 reports the number of candidate programs evaluated per 100
// seconds with the MoG approximation (PSKETCH) and without it (the
// integration-based likelihood of Bhat et al. [2], reproduced here by
// the grid-density evaluator).  Likelihood evaluation dominates the MH
// loop, so candidates/100s is measured by timing candidate scoring:
// lower + compile + evaluate over the full dataset for the MoG path,
// and lower + per-row numeric integration for the baseline.
//
// The paper's claim is the ~1000x ratio, not the absolute rates.
//
//===----------------------------------------------------------------------===//

#include "baseline/GridLikelihood.h"
#include "suite/Prepare.h"

#include <chrono>
#include <cstdio>

using namespace psketch;

namespace {

double secondsPerMoGCandidate(const PreparedBenchmark &P,
                              unsigned Candidates) {
  auto Start = std::chrono::steady_clock::now();
  double Sink = 0;
  for (unsigned I = 0; I != Candidates; ++I) {
    DiagEngine Diags;
    auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
    auto F = LikelihoodFunction::compile(*LP, P.Data);
    Sink += F->logLikelihood(P.Data);
  }
  auto End = std::chrono::steady_clock::now();
  (void)Sink;
  return std::chrono::duration<double>(End - Start).count() /
         double(Candidates);
}

double secondsPerBaselineCandidate(const PreparedBenchmark &P) {
  // One full-dataset evaluation is expensive; time a row subsample and
  // scale to the dataset size.
  const size_t SampleRows = std::min<size_t>(P.Data.numRows(), 8);
  DiagEngine Diags;
  auto LP = lowerProgram(*P.Target, P.Inputs, Diags);
  GridLikelihoodEvaluator Grid(*LP, P.Data);
  auto Start = std::chrono::steady_clock::now();
  double Sink = 0;
  for (size_t I = 0; I != SampleRows; ++I) {
    auto LL = Grid.logLikelihoodRow(P.Data.row(I));
    Sink += LL ? *LL : 0;
  }
  auto End = std::chrono::steady_clock::now();
  (void)Sink;
  double PerRow = std::chrono::duration<double>(End - Start).count() /
                  double(SampleRows);
  return PerRow * double(P.Data.numRows());
}

} // namespace

int main() {
  std::printf("Figure 8: candidate programs evaluated per 100 s, with the "
              "MoG approximation\n(PSKETCH) and without it (numeric "
              "integration baseline).\n\n");
  std::printf("%-14s %15s %15s %10s\n", "benchmark", "PSKETCH/100s",
              "baseline/100s", "speedup");
  double MinRatio = 1e300, MaxRatio = 0;
  for (const Benchmark &B : allBenchmarks()) {
    DiagEngine Diags;
    auto P = prepareBenchmark(B, Diags);
    if (!P) {
      std::printf("%-14s PREPARE FAILED\n", B.Name.c_str());
      continue;
    }
    double MoGSec = secondsPerMoGCandidate(*P, 50);
    double BaseSec = secondsPerBaselineCandidate(*P);
    double MoGRate = 100.0 / MoGSec;
    double BaseRate = 100.0 / BaseSec;
    double Ratio = MoGRate / BaseRate;
    MinRatio = std::min(MinRatio, Ratio);
    MaxRatio = std::max(MaxRatio, Ratio);
    std::printf("%-14s %15.0f %15.1f %9.0fx\n", B.Name.c_str(), MoGRate,
                BaseRate, Ratio);
  }
  std::printf("\nspeedup range across benchmarks: %.0fx .. %.0fx "
              "(paper: ~1000x)\n",
              MinRatio, MaxRatio);
  return 0;
}
