//===- symbolic/Simplify.h - IEEE-exact NumExpr simplifier pass -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bottom-up rewrite pass over the likelihood NumExpr DAG, run before
/// tape compilation (DESIGN.md §9).  The smart factories of
/// NumExprBuilder already fold constants and cheap identities at
/// construction time; this pass catches what only becomes visible after
/// other rewrites (a double negation cancelling into an identity
/// operand, a Neg feeding an Add) and applies the negation-to-Sub
/// family the factories do not attempt.
///
/// **Exactness contract.**  In the default mode every rule rewrites a
/// node into an expression whose IEEE-754 evaluation is bit-identical
/// for every input — including NaN, ±Inf and ±0 — so compiled scores do
/// not change when the pass is toggled.  The only tolerated deviation
/// is the sign/payload of NaN *intermediates* (e.g. `a + neg(b)` and
/// `a - b` may disagree in the NaN sign bit); NaN bit patterns cannot
/// reach a non-NaN result through the tape's Max/Min/Gt/Eq operations,
/// which compare by value, so non-NaN outputs stay bit-identical and
/// NaN outputs stay NaN.  The per-rule exactness arguments live next to
/// each rule in Simplify.cpp.
///
/// With Options.FastMath (the `--ffast-tape` CLI flag) the pass also
/// applies mathematically-exact but not bitwise-exact inverses
/// (log(exp x) → x, exp(log x) → x), which may change results by ~1 ulp
/// per eliminated pair and alter Inf/NaN edge behaviour; fast mode is
/// off by default and excluded from the bitwise differential tests.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYMBOLIC_SIMPLIFY_H
#define PSKETCH_SYMBOLIC_SIMPLIFY_H

#include "symbolic/NumExpr.h"

namespace psketch {

/// Knobs of the simplifier pass.
struct SimplifyOptions {
  /// Enables value-changing rewrites (inverse-function cancellation).
  /// Off by default: the default pass is bitwise result-preserving.
  bool FastMath = false;
};

/// Counters of one simplify run (telemetry; cheap to fill).
struct SimplifyStats {
  size_t NodesIn = 0;    ///< Live nodes reachable from the input root.
  size_t NodesOut = 0;   ///< Live nodes reachable from the result root.
  size_t Rewrites = 0;   ///< Pattern rules fired (not counting refolds).
};

/// Rewrites the DAG reachable from \p Root bottom-up into \p B and
/// returns the new root.  Nodes the pass leaves alone keep their ids;
/// rewritten nodes are re-interned (hash-consing dedups).  Dead nodes
/// left behind are pruned by the tape compiler, which only retains
/// instructions reachable from its root.
NumId simplifyNumExpr(NumExprBuilder &B, NumId Root,
                      const SimplifyOptions &Options = {},
                      SimplifyStats *Stats = nullptr);

/// Number of nodes reachable from \p Root — the instruction count a
/// tape compiled at \p Root would have before fusion.  Used to report
/// tape-size deltas of the simplifier.
size_t liveNodeCount(const NumExprBuilder &B, NumId Root);

} // namespace psketch

#endif // PSKETCH_SYMBOLIC_SIMPLIFY_H
