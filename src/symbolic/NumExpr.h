//===- symbolic/NumExpr.h - Hash-consed numeric expression DAG -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The numeric IR underneath the symbolic likelihood: parameters of
/// symbolic MoG/Bernoulli densities are NumExpr nodes — expressions over
/// *data references* (observed-variable slots) and constants.  The paper
/// computes the likelihood expression "symbolically ... at compile time,
/// and plug[s] in the desired data to evaluate the likelihood in linear
/// time" (Section 3); NumExpr is that compile-time object.
///
/// Nodes live in a NumExprBuilder, are hash-consed (structurally equal
/// subexpressions share one id, giving CSE for free), and are constant
/// folded on construction.  The likelihood tape compiler
/// (likelihood/Tape.h) turns the final log-likelihood DAG into a flat
/// instruction sequence evaluated once per data row.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYMBOLIC_NUMEXPR_H
#define PSKETCH_SYMBOLIC_NUMEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace psketch {

/// Operation of one NumExpr node.
enum class NumOp : uint8_t {
  Const,   ///< Literal; Value holds it.
  DataRef, ///< Row value of observed slot #A.
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Abs,
  Log,
  Exp,
  Sqrt,
  Erf,
  Max,
  Min,
  Gt, ///< Indicator: 1 when A > B else 0.
  Eq, ///< Indicator: 1 when A == B else 0.
};

/// Returns true for operations with two operands.
bool numOpIsBinary(NumOp Op);

/// Returns the printable name of \p Op.
const char *numOpName(NumOp Op);

/// Index of a node within its builder.
using NumId = uint32_t;

/// One DAG node.  A/B index operands (B unused for unary ops); Value is
/// the literal for Const and the slot index for DataRef.
struct NumNode {
  NumOp Op = NumOp::Const;
  double Value = 0;
  NumId A = 0;
  NumId B = 0;
};

/// Owns and uniquifies NumExpr nodes.  All construction goes through the
/// smart factories below, which constant fold and apply cheap algebraic
/// identities (x+0, x*1, x*0, double negation) so the compiled tape
/// stays small.
class NumExprBuilder {
public:
  NumId constant(double V);
  NumId dataRef(unsigned Slot);
  NumId add(NumId A, NumId B);
  NumId sub(NumId A, NumId B);
  NumId mul(NumId A, NumId B);
  NumId div(NumId A, NumId B);
  NumId neg(NumId A);
  NumId abs(NumId A);
  NumId log(NumId A);
  NumId exp(NumId A);
  NumId sqrt(NumId A);
  NumId erf(NumId A);
  NumId max(NumId A, NumId B);
  NumId min(NumId A, NumId B);
  NumId gt(NumId A, NumId B);
  NumId eq(NumId A, NumId B);

  /// Clamps \p P into [TinyProb, 1 - 1e-15] (symbolically).
  NumId clampProb(NumId P);

  /// log of the density of Gaussian(\p Mu, \p Sigma) at \p X, guarded
  /// against degenerate Sigma.
  NumId gaussianLogPdf(NumId X, NumId Mu, NumId Sigma);

  /// Pr(A > B) for Gaussians, the Figure 6 `erf` rule for one component
  /// pair: 1/2 + 1/2 erf((MuA - MuB) / sqrt(2 (SigmaA^2 + SigmaB^2))).
  NumId gaussianGreaterProb(NumId MuA, NumId SigmaA, NumId MuB, NumId SigmaB);

  /// Interns a node verbatim: hash-consing only, no constant folding or
  /// algebraic identities.  The simplifier pass (symbolic/Simplify.h)
  /// uses it to rebuild nodes under its own IEEE-exactness rules, and
  /// the differential tests use it to construct patterns the smart
  /// factories would fold away.
  NumId rawNode(NumOp Op, double Value, NumId A, NumId B);

  const NumNode &node(NumId Id) const { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// Empties the builder while keeping node storage and hash-table
  /// capacity, so a builder reused across many same-shaped candidate
  /// compilations (the synthesis hot path) stops allocating after the
  /// first.  All previously returned NumIds are invalidated.
  void reset();

  /// True when \p Id is a literal; \p V receives its value.
  bool isConst(NumId Id, double &V) const;

  /// Interpreted evaluation against one data row (tests and reference
  /// results; hot paths use the compiled tape instead).
  double eval(NumId Id, const std::vector<double> &Row) const;

  /// Renders the expression as a readable string (tests, debugging).
  std::string str(NumId Id) const;

private:
  NumId intern(NumNode N);
  void growTable();

  std::vector<NumNode> Nodes;
  /// Open-addressed hash-consing index (linear probing, power-of-two
  /// capacity).  Entries store id + 1; 0 marks an empty slot.  A flat
  /// table keeps interning allocation-free on the hot synthesis path,
  /// where a builder lives for exactly one candidate compilation.
  std::vector<uint32_t> Table;
  size_t TableMask = 0;
};

} // namespace psketch

#endif // PSKETCH_SYMBOLIC_NUMEXPR_H
