//===- symbolic/Algebra.cpp - The Figure 6 MoG/Bernoulli algebra ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "symbolic/Algebra.h"

#include "support/Special.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace psketch;

bool MoGAlgebra::knownConst(const SymValue &V, double &Out) const {
  return V.isKnown() && B.isConst(V.knownValue(), Out);
}

SymValue MoGAlgebra::toMoG(const SymValue &V) const {
  switch (V.kind()) {
  case SymValue::Kind::MoG:
    return V;
  case SymValue::Kind::Known:
    return SymValue::mog({{B.constant(1.0), V.knownValue(),
                           B.constant(Config.Bandwidth)}});
  case SymValue::Kind::Bern:
  case SymValue::Kind::Unit:
    return SymValue::unit();
  }
  return SymValue::unit();
}

SymValue MoGAlgebra::meanOf(const SymValue &V) const {
  if (V.isKnown())
    return V;
  if (!V.isMoG())
    return SymValue::unit();
  NumId Mean = B.constant(0.0);
  for (const MoGComponent &C : V.components())
    Mean = B.add(Mean, B.mul(C.W, C.Mu));
  return SymValue::known(Mean);
}

std::vector<MoGComponent>
MoGAlgebra::capped(std::vector<MoGComponent> Comps) const {
  if (Comps.size() <= Config.MaxComponents)
    return Comps;
  // Prefer dropping the smallest constant weights; components with
  // data-dependent weights sort last (kept when possible).
  std::stable_sort(Comps.begin(), Comps.end(),
                   [&](const MoGComponent &X, const MoGComponent &Y) {
                     double WX, WY;
                     bool CX = B.isConst(X.W, WX), CY = B.isConst(Y.W, WY);
                     if (CX && CY)
                       return WX > WY;
                     return CY && !CX; // non-const first == kept
                   });
  Comps.resize(Config.MaxComponents);
  // Renormalize symbolically so the mixture still integrates to one.
  NumId Total = B.constant(0.0);
  for (const MoGComponent &C : Comps)
    Total = B.add(Total, C.W);
  Total = B.max(Total, B.constant(TinyProb));
  for (MoGComponent &C : Comps)
    C.W = B.div(C.W, Total);
  return Comps;
}

SymValue MoGAlgebra::add(const SymValue &A, const SymValue &C) const {
  if (A.isKnown() && C.isKnown())
    return SymValue::known(B.add(A.knownValue(), C.knownValue()));
  if (!Config.StrictConstLifting) {
    // Exact shift: Known + MoG translates every component mean.
    if (A.isKnown() && C.isMoG()) {
      std::vector<MoGComponent> Out;
      for (const MoGComponent &M : C.components())
        Out.push_back({M.W, B.add(M.Mu, A.knownValue()), M.Sigma});
      return SymValue::mog(std::move(Out));
    }
    if (A.isMoG() && C.isKnown())
      return add(C, A);
  }
  SymValue MA = toMoG(A), MC = toMoG(C);
  if (!MA.isMoG() || !MC.isMoG())
    return SymValue::unit();
  std::vector<MoGComponent> Out;
  Out.reserve(MA.components().size() * MC.components().size());
  for (const MoGComponent &X : MA.components())
    for (const MoGComponent &Y : MC.components())
      Out.push_back({B.mul(X.W, Y.W), B.add(X.Mu, Y.Mu),
                     B.sqrt(B.add(B.mul(X.Sigma, X.Sigma),
                                  B.mul(Y.Sigma, Y.Sigma)))});
  return SymValue::mog(capped(std::move(Out)));
}

SymValue MoGAlgebra::sub(const SymValue &A, const SymValue &C) const {
  if (A.isKnown() && C.isKnown())
    return SymValue::known(B.sub(A.knownValue(), C.knownValue()));
  if (!Config.StrictConstLifting) {
    if (A.isMoG() && C.isKnown()) {
      std::vector<MoGComponent> Out;
      for (const MoGComponent &M : A.components())
        Out.push_back({M.W, B.sub(M.Mu, C.knownValue()), M.Sigma});
      return SymValue::mog(std::move(Out));
    }
    if (A.isKnown() && C.isMoG())
      return add(A, negate(C));
  }
  SymValue MA = toMoG(A), MC = toMoG(C);
  if (!MA.isMoG() || !MC.isMoG())
    return SymValue::unit();
  std::vector<MoGComponent> Out;
  Out.reserve(MA.components().size() * MC.components().size());
  for (const MoGComponent &X : MA.components())
    for (const MoGComponent &Y : MC.components())
      Out.push_back({B.mul(X.W, Y.W), B.sub(X.Mu, Y.Mu),
                     B.sqrt(B.add(B.mul(X.Sigma, X.Sigma),
                                  B.mul(Y.Sigma, Y.Sigma)))});
  return SymValue::mog(capped(std::move(Out)));
}

SymValue MoGAlgebra::negate(const SymValue &A) const {
  if (A.isKnown())
    return SymValue::known(B.neg(A.knownValue()));
  if (!A.isMoG())
    return SymValue::unit();
  std::vector<MoGComponent> Out;
  for (const MoGComponent &M : A.components())
    Out.push_back({M.W, B.neg(M.Mu), M.Sigma});
  return SymValue::mog(std::move(Out));
}

SymValue MoGAlgebra::mul(const SymValue &A, const SymValue &C) const {
  if (A.isKnown() && C.isKnown())
    return SymValue::known(B.mul(A.knownValue(), C.knownValue()));
  if (!Config.StrictConstLifting) {
    // Exact scaling: k * MoG scales means and (absolutely) deviations.
    const SymValue *K = A.isKnown() ? &A : (C.isKnown() ? &C : nullptr);
    const SymValue *M = A.isMoG() ? &A : (C.isMoG() ? &C : nullptr);
    if (K && M) {
      NumId Scale = K->knownValue();
      NumId AbsScale = B.abs(Scale);
      std::vector<MoGComponent> Out;
      for (const MoGComponent &X : M->components())
        Out.push_back({X.W, B.mul(X.Mu, Scale), B.mul(X.Sigma, AbsScale)});
      return SymValue::mog(std::move(Out));
    }
  }
  SymValue MA = toMoG(A), MC = toMoG(C);
  if (!MA.isMoG() || !MC.isMoG())
    return SymValue::unit();
  // The paper's product approximation (Figure 6): a precision-weighted
  // combination per component pair.  Gaussians are not closed under
  // products, so this is explicitly approximate (starred rule).
  std::vector<MoGComponent> Out;
  Out.reserve(MA.components().size() * MC.components().size());
  for (const MoGComponent &X : MA.components())
    for (const MoGComponent &Y : MC.components()) {
      NumId V1 = B.mul(X.Sigma, X.Sigma);
      NumId V2 = B.mul(Y.Sigma, Y.Sigma);
      NumId Denom = B.max(B.add(V1, V2), B.constant(1e-18));
      NumId Mu =
          B.div(B.add(B.mul(X.Mu, V2), B.mul(Y.Mu, V1)), Denom);
      NumId Sigma = B.sqrt(B.div(B.mul(V1, V2), Denom));
      Out.push_back({B.mul(X.W, Y.W), Mu, Sigma});
    }
  return SymValue::mog(capped(std::move(Out)));
}

SymValue MoGAlgebra::greater(const SymValue &A, const SymValue &C) const {
  if (A.isKnown() && C.isKnown())
    return SymValue::bern(B.gt(A.knownValue(), C.knownValue()));
  // Lift Knowns as zero-width components so comparisons against data
  // values stay exact (bandwidth-b under strict lifting).
  auto Lift = [&](const SymValue &V) -> SymValue {
    if (V.isKnown())
      return SymValue::mog(
          {{B.constant(1.0), V.knownValue(),
            B.constant(Config.StrictConstLifting ? Config.Bandwidth : 0.0)}});
    return V;
  };
  SymValue MA = Lift(A), MC = Lift(C);
  if (!MA.isMoG() || !MC.isMoG())
    return SymValue::unit();
  NumId P = B.constant(0.0);
  for (const MoGComponent &X : MA.components())
    for (const MoGComponent &Y : MC.components()) {
      NumId Pair = B.gaussianGreaterProb(X.Mu, X.Sigma, Y.Mu, Y.Sigma);
      P = B.add(P, B.mul(B.mul(X.W, Y.W), Pair));
    }
  return SymValue::bern(B.clampProb(P));
}

SymValue MoGAlgebra::less(const SymValue &A, const SymValue &C) const {
  return greater(C, A);
}

SymValue MoGAlgebra::equal(const SymValue &A, const SymValue &C) const {
  if (A.isBern() && C.isBern()) {
    NumId P1 = A.bernProb(), P2 = C.bernProb();
    NumId Agree = B.add(B.mul(P1, P2), B.mul(B.sub(B.constant(1.0), P1),
                                             B.sub(B.constant(1.0), P2)));
    return SymValue::bern(B.clampProb(Agree));
  }
  if (A.isKnown() && C.isKnown())
    return SymValue::bern(B.eq(A.knownValue(), C.knownValue()));
  return SymValue::unit();
}

SymValue MoGAlgebra::logicalAnd(const SymValue &A, const SymValue &C) const {
  if (!A.isBern() || !C.isBern())
    return SymValue::unit();
  return SymValue::bern(B.mul(A.bernProb(), C.bernProb()));
}

SymValue MoGAlgebra::logicalOr(const SymValue &A, const SymValue &C) const {
  if (!A.isBern() || !C.isBern())
    return SymValue::unit();
  NumId One = B.constant(1.0);
  NumId P = B.sub(One, B.mul(B.sub(One, A.bernProb()),
                             B.sub(One, C.bernProb())));
  return SymValue::bern(P);
}

SymValue MoGAlgebra::logicalNot(const SymValue &A) const {
  if (!A.isBern())
    return SymValue::unit();
  return SymValue::bern(B.sub(B.constant(1.0), A.bernProb()));
}

SymValue MoGAlgebra::ite(const SymValue &Cond, const SymValue &Then,
                         const SymValue &Else) const {
  if (!Cond.isBern())
    return SymValue::unit();
  NumId P = Cond.bernProb();
  double PV;
  if (B.isConst(P, PV)) {
    if (PV >= 1.0)
      return Then;
    if (PV <= 0.0)
      return Else;
  }
  if (Then.isBern() && Else.isBern()) {
    NumId Mixed = B.add(B.mul(P, Then.bernProb()),
                        B.mul(B.sub(B.constant(1.0), P), Else.bernProb()));
    return SymValue::bern(B.clampProb(Mixed));
  }
  SymValue MT = toMoG(Then), ME = toMoG(Else);
  if (!MT.isMoG() || !ME.isMoG())
    return SymValue::unit();
  std::vector<MoGComponent> Out;
  Out.reserve(MT.components().size() + ME.components().size());
  NumId NotP = B.sub(B.constant(1.0), P);
  for (const MoGComponent &X : MT.components())
    Out.push_back({B.mul(X.W, P), X.Mu, X.Sigma});
  for (const MoGComponent &Y : ME.components())
    Out.push_back({B.mul(Y.W, NotP), Y.Mu, Y.Sigma});
  return SymValue::mog(capped(std::move(Out)));
}

SymValue MoGAlgebra::applyBinary(BinaryOp Op, const SymValue &A,
                                 const SymValue &C) const {
  switch (Op) {
  case BinaryOp::Add:
    return add(A, C);
  case BinaryOp::Sub:
    return sub(A, C);
  case BinaryOp::Mul:
    return mul(A, C);
  case BinaryOp::And:
    return logicalAnd(A, C);
  case BinaryOp::Or:
    return logicalOr(A, C);
  case BinaryOp::Gt:
    return greater(A, C);
  case BinaryOp::Lt:
    return less(A, C);
  case BinaryOp::Eq:
    return equal(A, C);
  }
  return SymValue::unit();
}

SymValue MoGAlgebra::gaussian(const SymValue &Mu, const SymValue &Sigma) const {
  // A mixture-distributed Sigma is collapsed to its mean (moment
  // approximation); the compound-mean rule below is Figure 6's
  // Gaussian-with-MoG-parameters row.
  SymValue SigmaScalar = Sigma.isKnown() ? Sigma : meanOf(Sigma);
  if (!SigmaScalar.isKnown())
    return SymValue::unit();
  NumId S = B.abs(SigmaScalar.knownValue());
  if (Mu.isKnown())
    return SymValue::mog({{B.constant(1.0), Mu.knownValue(), S}});
  if (Mu.isMoG()) {
    // Gaussian(m, s) with m ~ MoG(w, mu, sigma) compounds exactly to
    // MoG(w, mu, sqrt(sigma^2 + s^2)).
    std::vector<MoGComponent> Out;
    NumId SSq = B.mul(S, S);
    for (const MoGComponent &X : Mu.components())
      Out.push_back({X.W, X.Mu,
                     B.sqrt(B.add(B.mul(X.Sigma, X.Sigma), SSq))});
    return SymValue::mog(std::move(Out));
  }
  return SymValue::unit();
}

SymValue MoGAlgebra::bernoulli(const SymValue &P) const {
  SymValue Scalar = P.isKnown() ? P : meanOf(P);
  if (!Scalar.isKnown())
    return SymValue::unit();
  return SymValue::bern(B.clampProb(Scalar.knownValue()));
}

SymValue MoGAlgebra::beta(const SymValue &A, const SymValue &C) const {
  SymValue SA = A.isKnown() ? A : meanOf(A);
  SymValue SC = C.isKnown() ? C : meanOf(C);
  if (!SA.isKnown() || !SC.isKnown())
    return SymValue::unit();
  // Figure 5: Beta(a1, a2) ~ MoG(1, [a1/(a1+a2)],
  //   [sqrt(a1 a2 / ((a1+a2)^2 (a1+a2+1)))]).
  NumId A1 = B.max(SA.knownValue(), B.constant(1e-9));
  NumId A2 = B.max(SC.knownValue(), B.constant(1e-9));
  NumId Sum = B.add(A1, A2);
  NumId Mean = B.div(A1, Sum);
  NumId Var = B.div(B.mul(A1, A2),
                    B.mul(B.mul(Sum, Sum), B.add(Sum, B.constant(1.0))));
  return SymValue::mog({{B.constant(1.0), Mean, B.sqrt(Var)}});
}

SymValue MoGAlgebra::gammaDist(const SymValue &Shape,
                               const SymValue &Scale) const {
  SymValue SK = Shape.isKnown() ? Shape : meanOf(Shape);
  SymValue SS = Scale.isKnown() ? Scale : meanOf(Scale);
  if (!SK.isKnown() || !SS.isKnown())
    return SymValue::unit();
  // Figure 5: Gamma(k, theta) ~ MoG(1, [k theta], [sqrt(k) theta]).
  NumId K = B.max(SK.knownValue(), B.constant(1e-9));
  NumId Theta = B.abs(SS.knownValue());
  return SymValue::mog(
      {{B.constant(1.0), B.mul(K, Theta), B.mul(B.sqrt(K), Theta)}});
}

SymValue MoGAlgebra::poisson(const SymValue &Lambda) const {
  SymValue SL = Lambda.isKnown() ? Lambda : meanOf(Lambda);
  if (!SL.isKnown())
    return SymValue::unit();
  // Figure 5: Poisson(lambda) ~ MoG(1, [lambda], [sqrt(lambda)]).
  NumId L = B.max(SL.knownValue(), B.constant(1e-9));
  return SymValue::mog({{B.constant(1.0), L, B.sqrt(L)}});
}

SymValue MoGAlgebra::applyDist(DistKind K,
                               const std::vector<SymValue> &Args) const {
  assert(Args.size() == distArity(K) && "distribution arity mismatch");
  switch (K) {
  case DistKind::Gaussian:
    return gaussian(Args[0], Args[1]);
  case DistKind::Bernoulli:
    return bernoulli(Args[0]);
  case DistKind::Beta:
    return beta(Args[0], Args[1]);
  case DistKind::Gamma:
    return gammaDist(Args[0], Args[1]);
  case DistKind::Poisson:
    return poisson(Args[0]);
  }
  return SymValue::unit();
}

NumId MoGAlgebra::logDensityAt(const SymValue &V, NumId X) const {
  switch (V.kind()) {
  case SymValue::Kind::Known:
    // A point mass smoothed with the bandwidth-b Gaussian, matching the
    // paper's constant rule.
    return B.gaussianLogPdf(X, V.knownValue(),
                            B.constant(Config.Bandwidth));
  case SymValue::Kind::MoG: {
    const std::vector<MoGComponent> &Comps = V.components();
    double W0;
    // Single-component fast path avoids the exp/log round trip and its
    // tail underflow.
    if (Comps.size() == 1 && B.isConst(Comps[0].W, W0) && W0 == 1.0)
      return B.gaussianLogPdf(X, Comps[0].Mu, Comps[0].Sigma);
    NumId Density = B.constant(0.0);
    for (const MoGComponent &C : Comps) {
      NumId Pdf = B.exp(B.gaussianLogPdf(X, C.Mu, C.Sigma));
      Density = B.add(Density, B.mul(C.W, Pdf));
    }
    return B.log(B.max(Density, B.constant(TinyProb)));
  }
  case SymValue::Kind::Bern: {
    NumId P = V.bernProb();
    NumId One = B.constant(1.0);
    NumId Match =
        B.add(B.mul(X, P), B.mul(B.sub(One, X), B.sub(One, P)));
    return B.log(B.max(Match, B.constant(TinyProb)));
  }
  case SymValue::Kind::Unit:
    // An observed output the candidate fails to model must not score
    // as a free success (that would make Unit the optimum of the MH
    // search); treat it like an unassigned output.
    return B.constant(std::log(TinyProb));
  }
  return B.constant(std::log(TinyProb));
}

NumId MoGAlgebra::probabilityOf(const SymValue &V) const {
  switch (V.kind()) {
  case SymValue::Kind::Bern:
    return V.bernProb();
  case SymValue::Kind::Known:
    // Defensive: a numeric used as a truth value counts as "non-zero".
    return B.gt(B.abs(V.knownValue()), B.constant(0.5));
  case SymValue::Kind::MoG:
  case SymValue::Kind::Unit:
    // The paper's unsupported-operator fallback: the unit expression.
    return B.constant(1.0);
  }
  return B.constant(1.0);
}
