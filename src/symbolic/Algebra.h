//===- symbolic/Algebra.h - The Figure 6 MoG/Bernoulli algebra -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements every evaluation rule of Figure 6 over SymValues: mixture
/// addition/subtraction (exact per component pair), the paper's
/// product approximation, comparison via the error function, `ite`
/// mixing, Bernoulli logic, compound Gaussians with mixture-distributed
/// means, and the starred moment-matching approximations of Beta, Gamma
/// and Poisson (Figure 5).  Unsupported combinations return Unit, per
/// the paper.
///
/// Deviations from the literal figure (documented in DESIGN.md §3):
///  * Known (+,-,x) MoG is computed exactly (shift/scale) instead of
///    first smearing the constant into a bandwidth-b Gaussian; the
///    strict behaviour is available via Config::StrictConstLifting for
///    the ablation bench.
///  * Constants become bandwidth-b Gaussians wherever a density is
///    genuinely needed (ite mixing of Knowns, density of a Known
///    output), with b = Config::Bandwidth; the paper draws b from
///    Beta(0.1, 1).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYMBOLIC_ALGEBRA_H
#define PSKETCH_SYMBOLIC_ALGEBRA_H

#include "ast/Ops.h"
#include "symbolic/SymValue.h"

namespace psketch {

/// Tuning knobs of the symbolic algebra.
struct AlgebraConfig {
  /// Smoothing bandwidth used when a point mass must become a density
  /// (the paper's `b`, drawn there from Beta(0.1, 1)).
  double Bandwidth = 0.1;

  /// Hard cap on mixture size; mixtures that outgrow it are pruned
  /// (smallest constant weights first) and renormalized.
  unsigned MaxComponents = 64;

  /// When set, constants are lifted to bandwidth-b Gaussians before
  /// every arithmetic rule, exactly as the literal Figure 6; when
  /// clear, Known op MoG uses the precise shift/scale rules.
  bool StrictConstLifting = false;
};

/// The Figure 6 evaluation rules.  Stateless apart from the shared
/// NumExprBuilder and configuration; all results are symbolic over data
/// references.
class MoGAlgebra {
public:
  MoGAlgebra(NumExprBuilder &B, AlgebraConfig Config = {})
      : B(B), Config(Config) {}

  NumExprBuilder &builder() { return B; }
  const AlgebraConfig &config() const { return Config; }

  /// Lifts a Known to a one-component mixture with bandwidth sigma; MoG
  /// passes through; Bern/Unit yield Unit.
  SymValue toMoG(const SymValue &V) const;

  /// Symbolic mean of a Known or MoG (sum of w_i mu_i); Unit otherwise.
  SymValue meanOf(const SymValue &V) const;

  // Arithmetic (Figure 6 rows 7-9).
  SymValue add(const SymValue &A, const SymValue &C) const;
  SymValue sub(const SymValue &A, const SymValue &C) const;
  SymValue mul(const SymValue &A, const SymValue &C) const;

  /// Numeric negation (0 - x).
  SymValue negate(const SymValue &A) const;

  // Comparisons (Figure 6 `>` rule; `<` by swapping).
  SymValue greater(const SymValue &A, const SymValue &C) const;
  SymValue less(const SymValue &A, const SymValue &C) const;

  /// Equality: Bernoulli pairs get p1 p2 + (1-p1)(1-p2); Known numeric
  /// pairs an indicator; anything else Unit (continuous equality is
  /// handled as a density factor by the observe rule, not here).
  SymValue equal(const SymValue &A, const SymValue &C) const;

  // Bernoulli logic (Figure 6 rows 12-14).
  SymValue logicalAnd(const SymValue &A, const SymValue &C) const;
  SymValue logicalOr(const SymValue &A, const SymValue &C) const;
  SymValue logicalNot(const SymValue &A) const;

  /// `ite` (Figure 6 rows 10 and 15): mixes numeric branches with
  /// weights p / 1-p, or combines Bernoulli branches.
  SymValue ite(const SymValue &Cond, const SymValue &Then,
               const SymValue &Else) const;

  /// Generic binary-op dispatch used by the LL operator.
  SymValue applyBinary(BinaryOp Op, const SymValue &A,
                       const SymValue &C) const;

  // Distribution constructors (Figure 5 rules, including the compound
  // rule for mixture-distributed parameters).
  SymValue gaussian(const SymValue &Mu, const SymValue &Sigma) const;
  SymValue bernoulli(const SymValue &P) const;
  SymValue beta(const SymValue &A, const SymValue &C) const;
  SymValue gammaDist(const SymValue &Shape, const SymValue &Scale) const;
  SymValue poisson(const SymValue &Lambda) const;

  /// Dispatch over DistKind; arguments in constructor order.
  SymValue applyDist(DistKind K, const std::vector<SymValue> &Args) const;

  /// Symbolic log-density of \p V at the data value \p X.  Known values
  /// are treated as bandwidth-b point masses; Bern values expect X in
  /// {0,1}; Unit contributes log 1 = 0.
  NumId logDensityAt(const SymValue &V, NumId X) const;

  /// The probability that a boolean symbolic value holds; Unit maps to
  /// probability 1 (the paper's unsupported-operator fallback).
  NumId probabilityOf(const SymValue &V) const;

private:
  /// Reduces a mixture to the configured component cap.
  std::vector<MoGComponent> capped(std::vector<MoGComponent> Comps) const;

  /// Numeric scalar extraction for Known values.
  bool knownConst(const SymValue &V, double &Out) const;

  NumExprBuilder &B;
  AlgebraConfig Config;
};

} // namespace psketch

#endif // PSKETCH_SYMBOLIC_ALGEBRA_H
