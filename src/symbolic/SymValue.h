//===- symbolic/SymValue.h - Symbolic density values ----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract values manipulated by the LL(.) operator (Figure 5):
/// every program variable maps to one of
///
///  * Known  — a deterministic number, symbolic over data references
///             (observed variables evaluate to Known data refs, as in
///             Figure 4 where perf1's mean stays `skill[0]`);
///  * MoG    — a mixture of Gaussians whose weights/means/deviations are
///             NumExpr over data references (continuous latents);
///  * Bern   — a Bernoulli with a NumExpr success probability (boolean
///             values, random or not); or
///  * Unit   — the paper's fallback for unsupported operator
///             combinations: "the unit expression (which always
///             evaluates to 1)".
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYMBOLIC_SYMVALUE_H
#define PSKETCH_SYMBOLIC_SYMVALUE_H

#include "symbolic/NumExpr.h"

#include <cassert>
#include <vector>

namespace psketch {

/// One Gaussian component of a symbolic mixture.
struct MoGComponent {
  NumId W = 0;     ///< Mixing fraction.
  NumId Mu = 0;    ///< Mean.
  NumId Sigma = 0; ///< Standard deviation.
};

/// A symbolic density value.
class SymValue {
public:
  enum class Kind { Known, MoG, Bern, Unit };

  SymValue() : K(Kind::Unit) {}

  static SymValue known(NumId V) {
    SymValue S;
    S.K = Kind::Known;
    S.Scalar = V;
    return S;
  }

  static SymValue mog(std::vector<MoGComponent> Components) {
    assert(!Components.empty() && "mixture needs at least one component");
    SymValue S;
    S.K = Kind::MoG;
    S.Components = std::move(Components);
    return S;
  }

  static SymValue bern(NumId P) {
    SymValue S;
    S.K = Kind::Bern;
    S.Scalar = P;
    return S;
  }

  static SymValue unit() { return SymValue(); }

  Kind kind() const { return K; }
  bool isKnown() const { return K == Kind::Known; }
  bool isMoG() const { return K == Kind::MoG; }
  bool isBern() const { return K == Kind::Bern; }
  bool isUnit() const { return K == Kind::Unit; }

  /// The Known value.
  NumId knownValue() const {
    assert(isKnown() && "not a Known value");
    return Scalar;
  }

  /// The Bernoulli success probability.
  NumId bernProb() const {
    assert(isBern() && "not a Bernoulli value");
    return Scalar;
  }

  /// The mixture components.
  const std::vector<MoGComponent> &components() const {
    assert(isMoG() && "not a mixture value");
    return Components;
  }

private:
  Kind K;
  NumId Scalar = 0;
  std::vector<MoGComponent> Components;
};

} // namespace psketch

#endif // PSKETCH_SYMBOLIC_SYMVALUE_H
