//===- symbolic/NumExpr.cpp - Hash-consed numeric expression DAG ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "symbolic/NumExpr.h"

#include "support/Special.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <sstream>

using namespace psketch;

bool psketch::numOpIsBinary(NumOp Op) {
  switch (Op) {
  case NumOp::Add:
  case NumOp::Sub:
  case NumOp::Mul:
  case NumOp::Div:
  case NumOp::Max:
  case NumOp::Min:
  case NumOp::Gt:
  case NumOp::Eq:
    return true;
  default:
    return false;
  }
}

const char *psketch::numOpName(NumOp Op) {
  switch (Op) {
  case NumOp::Const:
    return "const";
  case NumOp::DataRef:
    return "data";
  case NumOp::Add:
    return "+";
  case NumOp::Sub:
    return "-";
  case NumOp::Mul:
    return "*";
  case NumOp::Div:
    return "/";
  case NumOp::Neg:
    return "neg";
  case NumOp::Abs:
    return "abs";
  case NumOp::Log:
    return "log";
  case NumOp::Exp:
    return "exp";
  case NumOp::Sqrt:
    return "sqrt";
  case NumOp::Erf:
    return "erf";
  case NumOp::Max:
    return "max";
  case NumOp::Min:
    return "min";
  case NumOp::Gt:
    return "gt";
  case NumOp::Eq:
    return "eq";
  }
  return "<invalid>";
}

namespace {

uint64_t hashNode(const NumNode &N) {
  uint64_t Bits;
  std::memcpy(&Bits, &N.Value, sizeof(Bits));
  uint64_t H = uint64_t(N.Op) * 0x9e3779b97f4a7c15ULL;
  H ^= Bits + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H ^= (uint64_t(N.A) << 32 | N.B) + 0x9e3779b97f4a7c15ULL + (H << 6) +
       (H >> 2);
  return H;
}

bool sameNode(const NumNode &X, const NumNode &Y) {
  return X.Op == Y.Op && X.A == Y.A && X.B == Y.B &&
         std::memcmp(&X.Value, &Y.Value, sizeof(double)) == 0;
}

double applyUnary(NumOp Op, double A) {
  switch (Op) {
  case NumOp::Neg:
    return -A;
  case NumOp::Abs:
    return std::fabs(A);
  case NumOp::Log:
    return std::log(A);
  case NumOp::Exp:
    return std::exp(A);
  case NumOp::Sqrt:
    return std::sqrt(A);
  case NumOp::Erf:
    return std::erf(A);
  default:
    assert(false && "not a unary op");
    return 0;
  }
}

double applyBinary(NumOp Op, double A, double B) {
  switch (Op) {
  case NumOp::Add:
    return A + B;
  case NumOp::Sub:
    return A - B;
  case NumOp::Mul:
    return A * B;
  case NumOp::Div:
    return A / B;
  case NumOp::Max:
    return A > B ? A : B;
  case NumOp::Min:
    return A < B ? A : B;
  case NumOp::Gt:
    return A > B ? 1.0 : 0.0;
  case NumOp::Eq:
    return A == B ? 1.0 : 0.0;
  default:
    assert(false && "not a binary op");
    return 0;
  }
}

} // namespace

NumId NumExprBuilder::intern(NumNode N) {
  if (Table.empty()) {
    Table.assign(256, 0);
    TableMask = Table.size() - 1;
  } else if ((Nodes.size() + 1) * 4 > Table.size() * 3) {
    growTable();
  }
  size_t Slot = hashNode(N) & TableMask;
  while (uint32_t Entry = Table[Slot]) {
    if (sameNode(Nodes[Entry - 1], N))
      return Entry - 1;
    Slot = (Slot + 1) & TableMask;
  }
  NumId Id = NumId(Nodes.size());
  Nodes.push_back(N);
  Table[Slot] = Id + 1;
  return Id;
}

void NumExprBuilder::reset() {
  Nodes.clear();
  // Keep the table's capacity; just empty the slots.  A builder reused
  // across same-shaped candidates never rehashes again.
  std::fill(Table.begin(), Table.end(), 0);
}

void NumExprBuilder::growTable() {
  std::vector<uint32_t> Old = std::move(Table);
  Table.assign(Old.size() * 2, 0);
  TableMask = Table.size() - 1;
  for (uint32_t Entry : Old) {
    if (!Entry)
      continue;
    size_t Slot = hashNode(Nodes[Entry - 1]) & TableMask;
    while (Table[Slot])
      Slot = (Slot + 1) & TableMask;
    Table[Slot] = Entry;
  }
}

bool NumExprBuilder::isConst(NumId Id, double &V) const {
  const NumNode &N = Nodes[Id];
  if (N.Op != NumOp::Const)
    return false;
  V = N.Value;
  return true;
}

NumId NumExprBuilder::rawNode(NumOp Op, double Value, NumId A, NumId B) {
  return intern({Op, Value, A, B});
}

NumId NumExprBuilder::constant(double V) {
  return intern({NumOp::Const, V, 0, 0});
}

NumId NumExprBuilder::dataRef(unsigned Slot) {
  return intern({NumOp::DataRef, double(Slot), 0, 0});
}

NumId NumExprBuilder::add(NumId A, NumId B) {
  double VA, VB;
  bool CA = isConst(A, VA), CB = isConst(B, VB);
  if (CA && CB)
    return constant(VA + VB);
  if (CA && VA == 0)
    return B;
  if (CB && VB == 0)
    return A;
  return intern({NumOp::Add, 0, A, B});
}

NumId NumExprBuilder::sub(NumId A, NumId B) {
  double VA, VB;
  bool CA = isConst(A, VA), CB = isConst(B, VB);
  if (CA && CB)
    return constant(VA - VB);
  if (CB && VB == 0)
    return A;
  if (A == B)
    return constant(0);
  return intern({NumOp::Sub, 0, A, B});
}

NumId NumExprBuilder::mul(NumId A, NumId B) {
  double VA, VB;
  bool CA = isConst(A, VA), CB = isConst(B, VB);
  if (CA && CB)
    return constant(VA * VB);
  if ((CA && VA == 0) || (CB && VB == 0))
    return constant(0);
  if (CA && VA == 1)
    return B;
  if (CB && VB == 1)
    return A;
  return intern({NumOp::Mul, 0, A, B});
}

NumId NumExprBuilder::div(NumId A, NumId B) {
  double VA, VB;
  bool CA = isConst(A, VA), CB = isConst(B, VB);
  if (CA && CB && VB != 0)
    return constant(VA / VB);
  if (CB && VB == 1)
    return A;
  return intern({NumOp::Div, 0, A, B});
}

NumId NumExprBuilder::neg(NumId A) {
  double VA;
  if (isConst(A, VA))
    return constant(-VA);
  if (Nodes[A].Op == NumOp::Neg)
    return Nodes[A].A;
  return intern({NumOp::Neg, 0, A, 0});
}

NumId NumExprBuilder::abs(NumId A) {
  double VA;
  if (isConst(A, VA))
    return constant(std::fabs(VA));
  if (Nodes[A].Op == NumOp::Abs)
    return A;
  return intern({NumOp::Abs, 0, A, 0});
}

NumId NumExprBuilder::log(NumId A) {
  double VA;
  if (isConst(A, VA))
    return constant(std::log(VA));
  return intern({NumOp::Log, 0, A, 0});
}

NumId NumExprBuilder::exp(NumId A) {
  double VA;
  if (isConst(A, VA))
    return constant(std::exp(VA));
  return intern({NumOp::Exp, 0, A, 0});
}

NumId NumExprBuilder::sqrt(NumId A) {
  double VA;
  if (isConst(A, VA))
    return constant(std::sqrt(VA));
  return intern({NumOp::Sqrt, 0, A, 0});
}

NumId NumExprBuilder::erf(NumId A) {
  double VA;
  if (isConst(A, VA))
    return constant(std::erf(VA));
  return intern({NumOp::Erf, 0, A, 0});
}

NumId NumExprBuilder::max(NumId A, NumId B) {
  double VA, VB;
  if (isConst(A, VA) && isConst(B, VB))
    return constant(VA > VB ? VA : VB);
  if (A == B)
    return A;
  return intern({NumOp::Max, 0, A, B});
}

NumId NumExprBuilder::min(NumId A, NumId B) {
  double VA, VB;
  if (isConst(A, VA) && isConst(B, VB))
    return constant(VA < VB ? VA : VB);
  if (A == B)
    return A;
  return intern({NumOp::Min, 0, A, B});
}

NumId NumExprBuilder::gt(NumId A, NumId B) {
  double VA, VB;
  if (isConst(A, VA) && isConst(B, VB))
    return constant(VA > VB ? 1.0 : 0.0);
  return intern({NumOp::Gt, 0, A, B});
}

NumId NumExprBuilder::eq(NumId A, NumId B) {
  double VA, VB;
  if (isConst(A, VA) && isConst(B, VB))
    return constant(VA == VB ? 1.0 : 0.0);
  if (A == B)
    return constant(1.0);
  return intern({NumOp::Eq, 0, A, B});
}

NumId NumExprBuilder::clampProb(NumId P) {
  return max(min(P, constant(1.0 - 1e-15)), constant(TinyProb));
}

NumId NumExprBuilder::gaussianLogPdf(NumId X, NumId Mu, NumId Sigma) {
  // Guard Sigma away from zero so degenerate candidates score very low
  // instead of producing NaNs that would poison the MH ratio.
  NumId S = max(Sigma, constant(1e-9));
  NumId Z = div(sub(X, Mu), S);
  NumId Quad = mul(constant(-0.5), mul(Z, Z));
  return sub(Quad, add(log(S), constant(0.5 * Log2Pi)));
}

NumId NumExprBuilder::gaussianGreaterProb(NumId MuA, NumId SigmaA, NumId MuB,
                                          NumId SigmaB) {
  NumId Var = add(mul(SigmaA, SigmaA), mul(SigmaB, SigmaB));
  NumId Denom = sqrt(mul(constant(2.0), max(Var, constant(1e-18))));
  NumId Z = div(sub(MuA, MuB), Denom);
  return mul(constant(0.5), add(constant(1.0), erf(Z)));
}

double NumExprBuilder::eval(NumId Id, const std::vector<double> &Row) const {
  const NumNode &N = Nodes[Id];
  switch (N.Op) {
  case NumOp::Const:
    return N.Value;
  case NumOp::DataRef: {
    size_t Slot = size_t(N.Value);
    assert(Slot < Row.size() && "data reference outside row");
    return Row[Slot];
  }
  default:
    if (numOpIsBinary(N.Op))
      return applyBinary(N.Op, eval(N.A, Row), eval(N.B, Row));
    return applyUnary(N.Op, eval(N.A, Row));
  }
}

std::string NumExprBuilder::str(NumId Id) const {
  const NumNode &N = Nodes[Id];
  std::ostringstream OS;
  switch (N.Op) {
  case NumOp::Const:
    OS << N.Value;
    return OS.str();
  case NumOp::DataRef:
    OS << "$" << unsigned(N.Value);
    return OS.str();
  default:
    break;
  }
  OS << numOpName(N.Op) << '(' << str(N.A);
  if (numOpIsBinary(N.Op))
    OS << ", " << str(N.B);
  OS << ')';
  return OS.str();
}
