//===- symbolic/Simplify.cpp - IEEE-exact NumExpr simplifier pass ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Rule table (default mode; every rule is bitwise-exact per the header
// contract, with the NaN-intermediate sign/payload caveat):
//
//   R1  neg(neg x)        -> x          negation is an involution.
//   R2  add(a, neg b)     -> sub(a, b)  IEEE defines x - y as x + (-y);
//       add(neg a, b)     -> sub(b, a)  addition is commutative on
//                                       values (rounding is a function
//                                       of the exact sum).
//   R3  sub(a, neg b)     -> add(a, b)  same identity, reversed.
//   R4  mul(neg a, neg b) -> mul(a, b)  sign cancellation: magnitudes
//       div(neg a, neg b) -> div(a, b)  and rounding are sign-blind.
//   R5  mul(x, 1), mul(1, x) -> x       exact for every x (incl. -0,
//                                       Inf, NaN).
//   R6  div(x, 1)         -> x          exact for every x.
//   R7  add(x, -0)        -> x          x + (-0) == x for every x;
//       add(x, +0)        -> x          only when x provably never
//                                       evaluates to -0 (else -0 + +0
//                                       would turn into -0).
//   R8  sub(x, +0)        -> x          exact for every x;
//       sub(x, -0)        -> x          only when x is never -0.
//   R9  const op const    -> folded     the same IEEE operation done at
//                                       compile time.
//   R10 max(x, x), min(x, x) -> x       exact under the tape's
//                                       "a>b ? a : b" semantics, incl.
//                                       NaN (comparison false -> b).
//   R11 abs(abs x)        -> abs x      idempotent;
//       abs(neg x)        -> abs x      |-x| == |x| bitwise (sign
//                                       cleared either way).
//
// Deliberately NOT applied in default mode (each fails bitwise
// exactness on some input):
//
//   mul(x, 0) -> 0        Inf*0 and NaN*0 are NaN; (-5)*0 is -0.
//   sub(x, x) -> 0        Inf - Inf and NaN - NaN are NaN.
//   neg(sub(a, b)) -> sub(b, a)   -(a-b) is -0 when a==b, sub(b,a) +0.
//   add(neg a, neg b) -> neg(add(a, b))  (+0)+(-0) edge: lhs +0 path
//                                        gives +0, rhs gives -0.
//   log(exp x) -> x       double rounding: off by ~1 ulp (FastMath).
//   exp(log x) -> x       same (FastMath).
//   sqrt(mul(x, x)) -> abs(x)  x*x rounds before sqrt (FastMath).
//
//===----------------------------------------------------------------------===//

#include "symbolic/Simplify.h"

#include <cassert>
#include <cmath>
#include <vector>

using namespace psketch;

namespace {

/// Marks the nodes reachable from \p Root.  Builder ids are
/// topologically ordered (operands precede users), so one backward scan
/// suffices.
std::vector<uint8_t> markLive(const NumExprBuilder &B, NumId Root) {
  std::vector<uint8_t> Live(Root + 1, 0);
  Live[Root] = 1;
  for (NumId Id = Root + 1; Id-- > 0;) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    if (N.Op == NumOp::Const || N.Op == NumOp::DataRef)
      continue;
    Live[N.A] = 1;
    if (numOpIsBinary(N.Op))
      Live[N.B] = 1;
  }
  return Live;
}

/// True when \p Id provably never evaluates to -0.0 for any row: the
/// operand-sign analysis behind the R7/R8 zero-identity rules.
bool neverNegZero(const NumExprBuilder &B, NumId Id) {
  const NumNode &N = B.node(Id);
  switch (N.Op) {
  case NumOp::Const:
    return !(N.Value == 0.0 && std::signbit(N.Value));
  case NumOp::Abs: // fabs clears the sign bit, so abs(-0) is +0.
  case NumOp::Exp: // exp is positive; exp(-Inf) underflows to +0.
  case NumOp::Gt:  // Indicators produce exactly 0.0 or 1.0.
  case NumOp::Eq:
    return true;
  case NumOp::Max: // Either operand may be selected; both must qualify.
  case NumOp::Min:
    return neverNegZero(B, N.A) && neverNegZero(B, N.B);
  default:
    return false;
  }
}

bool isConstValue(const NumExprBuilder &B, NumId Id, double &V) {
  return B.isConst(Id, V);
}

/// One scalar application of \p Op (compile-time constant folding, R9).
double foldUnary(NumOp Op, double A) {
  switch (Op) {
  case NumOp::Neg:
    return -A;
  case NumOp::Abs:
    return std::fabs(A);
  case NumOp::Log:
    return std::log(A);
  case NumOp::Exp:
    return std::exp(A);
  case NumOp::Sqrt:
    return std::sqrt(A);
  case NumOp::Erf:
    return std::erf(A);
  default:
    assert(false && "not a unary op");
    return 0;
  }
}

double foldBinary(NumOp Op, double A, double B) {
  switch (Op) {
  case NumOp::Add:
    return A + B;
  case NumOp::Sub:
    return A - B;
  case NumOp::Mul:
    return A * B;
  case NumOp::Div:
    return A / B;
  case NumOp::Max:
    return A > B ? A : B;
  case NumOp::Min:
    return A < B ? A : B;
  case NumOp::Gt:
    return A > B ? 1.0 : 0.0;
  case NumOp::Eq:
    return A == B ? 1.0 : 0.0;
  default:
    assert(false && "not a binary op");
    return 0;
  }
}

struct Rewriter {
  NumExprBuilder &B;
  SimplifyOptions Options;
  size_t Rewrites = 0;

  bool isNeg(NumId Id) const { return B.node(Id).Op == NumOp::Neg; }
  NumId negOperand(NumId Id) const { return B.node(Id).A; }

  /// Rebuilds one node whose (already simplified) operands are \p A and
  /// \p Bo.  Only bitwise-exact rewrites in default mode; falls back to
  /// verbatim re-interning, which dedups against existing nodes.
  NumId rebuild(NumOp Op, double Value, NumId A, NumId Bo) {
    double VA = 0, VB = 0;
    const bool CA = numOpIsBinary(Op) || Op != NumOp::Const
                        ? isConstValue(B, A, VA)
                        : false;

    switch (Op) {
    case NumOp::Const:
    case NumOp::DataRef:
      return B.rawNode(Op, Value, 0, 0);

    case NumOp::Neg:
      if (CA)
        return B.constant(-VA); // R9.
      if (isNeg(A)) {           // R1.
        ++Rewrites;
        return negOperand(A);
      }
      return B.rawNode(Op, 0, A, 0);

    case NumOp::Abs:
      if (CA)
        return B.constant(std::fabs(VA)); // R9.
      if (B.node(A).Op == NumOp::Abs)     // R11 (idempotence).
        return A;
      if (isNeg(A)) { // R11: |-x| == |x| bitwise.
        ++Rewrites;
        return rebuild(NumOp::Abs, 0, negOperand(A), 0);
      }
      return B.rawNode(Op, 0, A, 0);

    case NumOp::Log:
      if (CA)
        return B.constant(std::log(VA)); // R9.
      if (Options.FastMath && B.node(A).Op == NumOp::Exp) {
        ++Rewrites;
        return B.node(A).A; // log(exp x) -> x, fast mode only.
      }
      return B.rawNode(Op, 0, A, 0);

    case NumOp::Exp:
      if (CA)
        return B.constant(std::exp(VA)); // R9.
      if (Options.FastMath && B.node(A).Op == NumOp::Log) {
        ++Rewrites;
        return B.node(A).A; // exp(log x) -> x, fast mode only.
      }
      return B.rawNode(Op, 0, A, 0);

    case NumOp::Sqrt:
    case NumOp::Erf:
      if (CA)
        return B.constant(foldUnary(Op, VA)); // R9.
      return B.rawNode(Op, 0, A, 0);

    case NumOp::Add: {
      const bool CB = isConstValue(B, Bo, VB);
      if (CA && CB)
        return B.constant(VA + VB); // R9.
      // R7: x + (-0) always; x + (+0) only when x is never -0.
      if (CB && VB == 0.0 && (std::signbit(VB) || neverNegZero(B, A))) {
        ++Rewrites;
        return A;
      }
      if (CA && VA == 0.0 && (std::signbit(VA) || neverNegZero(B, Bo))) {
        ++Rewrites;
        return Bo;
      }
      if (isNeg(Bo)) { // R2.
        ++Rewrites;
        return rebuild(NumOp::Sub, 0, A, negOperand(Bo));
      }
      if (isNeg(A)) { // R2, commuted.
        ++Rewrites;
        return rebuild(NumOp::Sub, 0, Bo, negOperand(A));
      }
      return B.rawNode(Op, 0, A, Bo);
    }

    case NumOp::Sub: {
      const bool CB = isConstValue(B, Bo, VB);
      if (CA && CB)
        return B.constant(VA - VB); // R9.
      // R8: x - (+0) always; x - (-0) only when x is never -0.
      if (CB && VB == 0.0 && (!std::signbit(VB) || neverNegZero(B, A))) {
        ++Rewrites;
        return A;
      }
      if (isNeg(Bo)) { // R3.
        ++Rewrites;
        return rebuild(NumOp::Add, 0, A, negOperand(Bo));
      }
      return B.rawNode(Op, 0, A, Bo);
    }

    case NumOp::Mul: {
      const bool CB = isConstValue(B, Bo, VB);
      if (CA && CB)
        return B.constant(VA * VB); // R9.
      if (CB && VB == 1.0) {        // R5.
        ++Rewrites;
        return A;
      }
      if (CA && VA == 1.0) { // R5.
        ++Rewrites;
        return Bo;
      }
      if (isNeg(A) && isNeg(Bo)) { // R4.
        ++Rewrites;
        return rebuild(NumOp::Mul, 0, negOperand(A), negOperand(Bo));
      }
      return B.rawNode(Op, 0, A, Bo);
    }

    case NumOp::Div: {
      const bool CB = isConstValue(B, Bo, VB);
      if (CA && CB)
        return B.constant(VA / VB); // R9.
      if (CB && VB == 1.0) {        // R6.
        ++Rewrites;
        return A;
      }
      if (isNeg(A) && isNeg(Bo)) { // R4.
        ++Rewrites;
        return rebuild(NumOp::Div, 0, negOperand(A), negOperand(Bo));
      }
      return B.rawNode(Op, 0, A, Bo);
    }

    case NumOp::Max:
    case NumOp::Min: {
      const bool CB = isConstValue(B, Bo, VB);
      if (CA && CB)
        return B.constant(foldBinary(Op, VA, VB)); // R9.
      if (A == Bo) {                               // R10.
        ++Rewrites;
        return A;
      }
      return B.rawNode(Op, 0, A, Bo);
    }

    case NumOp::Gt:
    case NumOp::Eq: {
      const bool CB = isConstValue(B, Bo, VB);
      if (CA && CB)
        return B.constant(foldBinary(Op, VA, VB)); // R9.
      // Note: eq(x, x) -> 1 is NOT exact (NaN != NaN); left alone.
      return B.rawNode(Op, 0, A, Bo);
    }
    }
    return B.rawNode(Op, Value, A, Bo);
  }
};

/// Exact applicability pre-scan: true when some rule of rebuild() would
/// fire on \p N given its *original* operands.  When no rule fires on
/// any live node, rebuild() maps every node to itself (rawNode interning
/// dedups against the existing nodes), so the whole pass is an identity
/// and can be skipped without the per-node re-interning cost — the
/// common case for factory-built DAGs, whose smart constructors already
/// fold everything these rules cover.  The conditions below mirror
/// rebuild() case by case; keep them in sync.
bool mayRewrite(const NumExprBuilder &B, const NumNode &N,
                const SimplifyOptions &Options) {
  const auto OpOf = [&](NumId Id) { return B.node(Id).Op; };
  double VA = 0, VB = 0;
  switch (N.Op) {
  case NumOp::Const:
  case NumOp::DataRef:
    return false;
  case NumOp::Neg:
    return B.isConst(N.A, VA) || OpOf(N.A) == NumOp::Neg;
  case NumOp::Abs:
    return B.isConst(N.A, VA) || OpOf(N.A) == NumOp::Abs ||
           OpOf(N.A) == NumOp::Neg;
  case NumOp::Log:
    return B.isConst(N.A, VA) ||
           (Options.FastMath && OpOf(N.A) == NumOp::Exp);
  case NumOp::Exp:
    return B.isConst(N.A, VA) ||
           (Options.FastMath && OpOf(N.A) == NumOp::Log);
  case NumOp::Sqrt:
  case NumOp::Erf:
    return B.isConst(N.A, VA);
  case NumOp::Add: {
    const bool CA = B.isConst(N.A, VA), CB = B.isConst(N.B, VB);
    if (CA && CB)
      return true; // R9.
    if (CB && VB == 0.0 && (std::signbit(VB) || neverNegZero(B, N.A)))
      return true; // R7.
    if (CA && VA == 0.0 && (std::signbit(VA) || neverNegZero(B, N.B)))
      return true; // R7.
    return OpOf(N.B) == NumOp::Neg || OpOf(N.A) == NumOp::Neg; // R2.
  }
  case NumOp::Sub: {
    const bool CA = B.isConst(N.A, VA), CB = B.isConst(N.B, VB);
    if (CA && CB)
      return true; // R9.
    if (CB && VB == 0.0 && (!std::signbit(VB) || neverNegZero(B, N.A)))
      return true;                       // R8.
    return OpOf(N.B) == NumOp::Neg;      // R3.
  }
  case NumOp::Mul: {
    const bool CA = B.isConst(N.A, VA), CB = B.isConst(N.B, VB);
    if (CA && CB)
      return true; // R9.
    if ((CB && VB == 1.0) || (CA && VA == 1.0))
      return true; // R5.
    return OpOf(N.A) == NumOp::Neg && OpOf(N.B) == NumOp::Neg; // R4.
  }
  case NumOp::Div: {
    const bool CA = B.isConst(N.A, VA), CB = B.isConst(N.B, VB);
    if (CA && CB)
      return true; // R9.
    if (CB && VB == 1.0)
      return true; // R6.
    return OpOf(N.A) == NumOp::Neg && OpOf(N.B) == NumOp::Neg; // R4.
  }
  case NumOp::Max:
  case NumOp::Min:
    return (B.isConst(N.A, VA) && B.isConst(N.B, VB)) ||
           N.A == N.B; // R9, R10.
  case NumOp::Gt:
  case NumOp::Eq:
    return B.isConst(N.A, VA) && B.isConst(N.B, VB); // R9.
  }
  return false;
}

} // namespace

size_t psketch::liveNodeCount(const NumExprBuilder &B, NumId Root) {
  std::vector<uint8_t> Live = markLive(B, Root);
  size_t Count = 0;
  for (uint8_t L : Live)
    Count += L;
  return Count;
}

NumId psketch::simplifyNumExpr(NumExprBuilder &B, NumId Root,
                               const SimplifyOptions &Options,
                               SimplifyStats *Stats) {
  // One backward pass marks liveness, counts live nodes, and tests rule
  // applicability in the same cache-warm sweep.  The scratch is
  // thread-local (chains run on separate threads) so the per-candidate
  // hot path never allocates here.
  static thread_local std::vector<uint8_t> LiveScratch;
  std::vector<uint8_t> &Live = LiveScratch;
  Live.assign(Root + 1, 0);
  Live[Root] = 1;
  size_t NodesIn = 0;
  // Pre-scan folded into the marking: when no rule applies anywhere,
  // the rebuild below is a guaranteed identity — skip its per-node
  // re-interning.  This is the synthesis hot path: candidates come from
  // the smart factories, which already fold what the exact rules cover.
  bool AnyRule = false;
  for (NumId Id = Root + 1; Id-- > 0;) {
    if (!Live[Id])
      continue;
    ++NodesIn;
    const NumNode &N = B.node(Id);
    if (N.Op != NumOp::Const && N.Op != NumOp::DataRef) {
      Live[N.A] = 1;
      if (numOpIsBinary(N.Op))
        Live[N.B] = 1;
    }
    if (!AnyRule)
      AnyRule = mayRewrite(B, N, Options);
  }
  if (!AnyRule) {
    if (Stats) {
      Stats->NodesIn = NodesIn;
      Stats->NodesOut = NodesIn;
      Stats->Rewrites = 0;
    }
    return Root;
  }

  Rewriter R{B, Options, 0};
  // Map[id] is the simplified replacement of live node id.  Operands
  // precede users, so a single forward scan sees simplified operands.
  std::vector<NumId> Map(Root + 1, 0);
  for (NumId Id = 0; Id <= Root; ++Id) {
    if (!Live[Id])
      continue;
    // Copy: rebuild() interns new nodes, which may reallocate the
    // builder's node storage under a reference.
    const NumNode N = B.node(Id);
    if (N.Op == NumOp::Const || N.Op == NumOp::DataRef) {
      Map[Id] = Id;
      continue;
    }
    const NumId A = Map[N.A];
    const NumId Bo = numOpIsBinary(N.Op) ? Map[N.B] : 0;
    Map[Id] = R.rebuild(N.Op, N.Value, A, Bo);
  }

  if (Stats) {
    Stats->NodesIn = NodesIn;
    Stats->NodesOut = liveNodeCount(B, Map[Root]);
    Stats->Rewrites = R.Rewrites;
  }
  return Map[Root];
}
