//===- ast/Expr.cpp - Expression AST of the sketching language -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Expr.h"

using namespace psketch;

Expr::~Expr() = default;

ExprPtr ConstExpr::clone() const {
  return std::make_unique<ConstExpr>(Value, Ty, getLoc());
}

ExprPtr VarExpr::clone() const {
  return std::make_unique<VarExpr>(Name, getLoc());
}

ExprPtr IndexExpr::clone() const {
  return std::make_unique<IndexExpr>(ArrayName, Index->clone(), getLoc());
}

ExprPtr HoleArgExpr::clone() const {
  return std::make_unique<HoleArgExpr>(ArgIndex, Ty, getLoc());
}

ExprPtr UnaryExpr::clone() const {
  return std::make_unique<UnaryExpr>(Op, Sub->clone(), getLoc());
}

ExprPtr BinaryExpr::clone() const {
  return std::make_unique<BinaryExpr>(Op, LHS->clone(), RHS->clone(),
                                      getLoc());
}

ExprPtr IteExpr::clone() const {
  return std::make_unique<IteExpr>(Cond->clone(), Then->clone(),
                                   Else->clone(), getLoc());
}

ExprPtr SampleExpr::clone() const {
  std::vector<ExprPtr> NewArgs;
  NewArgs.reserve(Args.size());
  for (const ExprPtr &A : Args)
    NewArgs.push_back(A->clone());
  return std::make_unique<SampleExpr>(Dist, std::move(NewArgs), getLoc());
}

ExprPtr HoleExpr::clone() const {
  std::vector<ExprPtr> NewArgs;
  NewArgs.reserve(Args.size());
  for (const ExprPtr &A : Args)
    NewArgs.push_back(A->clone());
  auto H = std::make_unique<HoleExpr>(HoleId, std::move(NewArgs), getLoc());
  H->setExpectedKind(ExpectedKind);
  return H;
}
