//===- ast/Type.cpp - Types of the sketching language ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Type.h"

using namespace psketch;

const char *psketch::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::Real:
    return "real";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Int:
    return "int";
  }
  return "<invalid>";
}

std::string Type::str() const {
  std::string S = scalarKindName(Kind);
  if (IsArray)
    S += "[]";
  return S;
}
