//===- ast/Expr.h - Expression AST of the sketching language -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression nodes for the Figure 3 grammar: variables, constants,
/// unary/binary/ternary operations, distribution draws, and the two hole
/// forms (`??` and `??(E1, ..., En)`).  Hole completions are expressions
/// over *formal* hole parameters, represented by HoleArgExpr; splicing a
/// completion into a sketch substitutes the hole's actual argument
/// expressions for those formals (see synth/Splice.h).
///
/// Nodes are owned through std::unique_ptr and support deep clone(),
/// structural equality and hashing (ast/ASTUtil.h), and kind-based
/// casting via the isa<>/cast<>/dyn_cast<> templates.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_EXPR_H
#define PSKETCH_AST_EXPR_H

#include "ast/Ops.h"
#include "ast/Type.h"
#include "support/Diag.h"

#include <memory>
#include <string>
#include <vector>

namespace psketch {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base class of all expression nodes.
class Expr {
public:
  enum class Kind {
    Const,
    Var,
    Index,
    HoleArg,
    Unary,
    Binary,
    Ite,
    Sample,
    Hole,
  };

  virtual ~Expr();

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep copy of this expression tree.
  virtual ExprPtr clone() const = 0;

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// A literal constant.  Booleans are stored as 0/1; the scalar kind
/// distinguishes real, bool and int literals.
class ConstExpr : public Expr {
public:
  ConstExpr(double Value, ScalarKind Ty, SourceLoc Loc = {})
      : Expr(Kind::Const, Loc), Value(Value), Ty(Ty) {}

  static ExprPtr real(double V, SourceLoc Loc = {}) {
    return std::make_unique<ConstExpr>(V, ScalarKind::Real, Loc);
  }
  static ExprPtr boolean(bool V, SourceLoc Loc = {}) {
    return std::make_unique<ConstExpr>(V ? 1.0 : 0.0, ScalarKind::Bool, Loc);
  }
  static ExprPtr integer(long V, SourceLoc Loc = {}) {
    return std::make_unique<ConstExpr>(double(V), ScalarKind::Int, Loc);
  }

  double getValue() const { return Value; }
  void setValue(double V) { Value = V; }
  ScalarKind getScalarKind() const { return Ty; }
  bool isTrue() const { return Value != 0.0; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Const; }

private:
  double Value;
  ScalarKind Ty;
};

/// A reference to a scalar variable or parameter.
class VarExpr : public Expr {
public:
  explicit VarExpr(std::string Name, SourceLoc Loc = {})
      : Expr(Kind::Var, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Var; }

private:
  std::string Name;
};

/// An array element reference `a[i]`.
class IndexExpr : public Expr {
public:
  IndexExpr(std::string ArrayName, ExprPtr Index, SourceLoc Loc = {})
      : Expr(Kind::Index, Loc), ArrayName(std::move(ArrayName)),
        Index(std::move(Index)) {}

  const std::string &getArrayName() const { return ArrayName; }
  const Expr &getIndex() const { return *Index; }
  ExprPtr &getIndexPtr() { return Index; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Index; }

private:
  std::string ArrayName;
  ExprPtr Index;
};

/// A reference to the I-th formal parameter of a hole, written `%I` in
/// completion syntax.  Only legal inside hole completions.
class HoleArgExpr : public Expr {
public:
  HoleArgExpr(unsigned ArgIndex, ScalarKind Ty = ScalarKind::Real,
              SourceLoc Loc = {})
      : Expr(Kind::HoleArg, Loc), ArgIndex(ArgIndex), Ty(Ty) {}

  unsigned getArgIndex() const { return ArgIndex; }
  void setArgIndex(unsigned I) { ArgIndex = I; }
  ScalarKind getScalarKind() const { return Ty; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::HoleArg; }

private:
  unsigned ArgIndex;
  ScalarKind Ty;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Sub, SourceLoc Loc = {})
      : Expr(Kind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}

  UnaryOp getOp() const { return Op; }
  const Expr &getSub() const { return *Sub; }
  ExprPtr &getSubPtr() { return Sub; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Sub;
};

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc = {})
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp getOp() const { return Op; }
  void setOp(BinaryOp O) { Op = O; }
  const Expr &getLHS() const { return *LHS; }
  const Expr &getRHS() const { return *RHS; }
  ExprPtr &getLHSPtr() { return LHS; }
  ExprPtr &getRHSPtr() { return RHS; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS, RHS;
};

/// The ternary conditional `ite(c, a, b)`.
class IteExpr : public Expr {
public:
  IteExpr(ExprPtr Cond, ExprPtr Then, ExprPtr Else, SourceLoc Loc = {})
      : Expr(Kind::Ite, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &getCond() const { return *Cond; }
  const Expr &getThen() const { return *Then; }
  const Expr &getElse() const { return *Else; }
  ExprPtr &getCondPtr() { return Cond; }
  ExprPtr &getThenPtr() { return Then; }
  ExprPtr &getElsePtr() { return Else; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Ite; }

private:
  ExprPtr Cond, Then, Else;
};

/// A draw from a primitive distribution, e.g. `Gaussian(mu, 15.0)`.
/// Appears both in probabilistic assignments `x ~ Gaussian(...)` (sugar
/// for an assignment whose RHS is a SampleExpr) and inside synthesized
/// hole completions.
class SampleExpr : public Expr {
public:
  SampleExpr(DistKind Dist, std::vector<ExprPtr> Args, SourceLoc Loc = {})
      : Expr(Kind::Sample, Loc), Dist(Dist), Args(std::move(Args)) {}

  DistKind getDist() const { return Dist; }
  unsigned getNumArgs() const { return unsigned(Args.size()); }
  const Expr &getArg(unsigned I) const { return *Args[I]; }
  std::vector<ExprPtr> &getArgs() { return Args; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Sample; }

private:
  DistKind Dist;
  std::vector<ExprPtr> Args;
};

/// A hole: `??` (independent) or `??(E1, ..., En)` (with dependences).
/// HoleId numbers holes in program order; the type checker records the
/// expected scalar type so the synthesizer generates well-typed
/// completions.
class HoleExpr : public Expr {
public:
  HoleExpr(unsigned HoleId, std::vector<ExprPtr> Args, SourceLoc Loc = {})
      : Expr(Kind::Hole, Loc), HoleId(HoleId), Args(std::move(Args)) {}

  unsigned getHoleId() const { return HoleId; }
  void setHoleId(unsigned Id) { HoleId = Id; }
  unsigned getNumArgs() const { return unsigned(Args.size()); }
  const Expr &getArg(unsigned I) const { return *Args[I]; }
  std::vector<ExprPtr> &getArgs() { return Args; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }

  ScalarKind getExpectedKind() const { return ExpectedKind; }
  void setExpectedKind(ScalarKind K) { ExpectedKind = K; }

  ExprPtr clone() const override;

  static bool classof(const Expr *E) { return E->getKind() == Kind::Hole; }

private:
  unsigned HoleId;
  std::vector<ExprPtr> Args;
  ScalarKind ExpectedKind = ScalarKind::Real;
};

} // namespace psketch

#endif // PSKETCH_AST_EXPR_H
