//===- ast/ASTPrinter.cpp - Pretty printer for the sketching language ----===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTPrinter.h"

#include "support/Casting.h"

#include <cmath>
#include <ostream>
#include <sstream>

using namespace psketch;

namespace {

/// Precedence context: a subexpression is parenthesized when its own
/// binding strength is below the context's.
void printExprPrec(std::ostream &OS, const Expr &E, int MinPrec);

void printNumber(std::ostream &OS, double V, ScalarKind K) {
  if (K == ScalarKind::Bool) {
    OS << (V != 0.0 ? "true" : "false");
    return;
  }
  if (K == ScalarKind::Int) {
    OS << static_cast<long long>(V);
    return;
  }
  // Reals: print enough digits to round-trip, and always include a
  // decimal point so the lexer re-reads a real literal.
  std::ostringstream SS;
  SS.precision(17);
  SS << V;
  std::string S = SS.str();
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  OS << S;
}

void printArgs(std::ostream &OS, const std::vector<ExprPtr> &Args) {
  OS << '(';
  for (size_t I = 0, E = Args.size(); I != E; ++I) {
    if (I)
      OS << ", ";
    printExprPrec(OS, *Args[I], 0);
  }
  OS << ')';
}

void printExprPrec(std::ostream &OS, const Expr &E, int MinPrec) {
  switch (E.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(E);
    // Negative literals need parens in tight contexts like `a - -1.0`'s
    // RHS; printing them unconditionally parenthesized keeps it simple.
    bool Negative = C.getValue() < 0 && C.getScalarKind() != ScalarKind::Bool;
    if (Negative && MinPrec > 0)
      OS << '(';
    printNumber(OS, C.getValue(), C.getScalarKind());
    if (Negative && MinPrec > 0)
      OS << ')';
    return;
  }
  case Expr::Kind::Var:
    OS << cast<VarExpr>(E).getName();
    return;
  case Expr::Kind::Index: {
    const auto &IX = cast<IndexExpr>(E);
    OS << IX.getArrayName() << '[';
    printExprPrec(OS, IX.getIndex(), 0);
    OS << ']';
    return;
  }
  case Expr::Kind::HoleArg:
    OS << '%' << cast<HoleArgExpr>(E).getArgIndex();
    return;
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    constexpr int UnaryPrec = 7;
    if (UnaryPrec < MinPrec)
      OS << '(';
    OS << unaryOpName(U.getOp());
    printExprPrec(OS, U.getSub(), UnaryPrec);
    if (UnaryPrec < MinPrec)
      OS << ')';
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    int Prec = binaryOpPrecedence(B.getOp());
    if (Prec < MinPrec)
      OS << '(';
    // All binary operators are printed left-associatively: the left
    // child may share this precedence, the right child must bind
    // tighter.
    printExprPrec(OS, B.getLHS(), Prec);
    OS << ' ' << binaryOpName(B.getOp()) << ' ';
    printExprPrec(OS, B.getRHS(), Prec + 1);
    if (Prec < MinPrec)
      OS << ')';
    return;
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(E);
    OS << "ite(";
    printExprPrec(OS, I.getCond(), 0);
    OS << ", ";
    printExprPrec(OS, I.getThen(), 0);
    OS << ", ";
    printExprPrec(OS, I.getElse(), 0);
    OS << ')';
    return;
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(E);
    OS << distKindName(S.getDist());
    printArgs(OS, S.getArgs());
    return;
  }
  case Expr::Kind::Hole: {
    const auto &H = cast<HoleExpr>(E);
    OS << "??";
    if (H.getNumArgs() != 0)
      printArgs(OS, H.getArgs());
    return;
  }
  }
}

void printIndent(std::ostream &OS, unsigned Indent) {
  for (unsigned I = 0; I != Indent; ++I)
    OS << "  ";
}

void printBlockBody(std::ostream &OS, const BlockStmt &B, unsigned Indent) {
  OS << "{\n";
  for (const StmtPtr &S : B.getStmts())
    printStmt(OS, *S, Indent + 1);
  printIndent(OS, Indent);
  OS << "}";
}

} // namespace

void psketch::printExpr(std::ostream &OS, const Expr &E) {
  printExprPrec(OS, E, 0);
}

void psketch::printStmt(std::ostream &OS, const Stmt &S, unsigned Indent) {
  printIndent(OS, Indent);
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    OS << "skip;\n";
    return;
  case Stmt::Kind::Assign: {
    const auto &A = cast<AssignStmt>(S);
    OS << A.getTarget().Name;
    if (A.getTarget().isArrayElement()) {
      OS << '[';
      printExpr(OS, *A.getTarget().Index);
      OS << ']';
    }
    // Probabilistic assignments print with `~` and the distribution call
    // without duplicating the `=` form, matching the input syntax.
    if (A.isProbabilistic()) {
      const auto &Draw = cast<SampleExpr>(A.getValue());
      OS << " ~ " << distKindName(Draw.getDist());
      OS << '(';
      for (unsigned I = 0, E = Draw.getNumArgs(); I != E; ++I) {
        if (I)
          OS << ", ";
        printExpr(OS, Draw.getArg(I));
      }
      OS << ");\n";
      return;
    }
    OS << " = ";
    printExpr(OS, A.getValue());
    OS << ";\n";
    return;
  }
  case Stmt::Kind::Observe: {
    OS << "observe(";
    printExpr(OS, cast<ObserveStmt>(S).getCond());
    OS << ");\n";
    return;
  }
  case Stmt::Kind::Block: {
    printBlockBody(OS, cast<BlockStmt>(S), Indent);
    OS << '\n';
    return;
  }
  case Stmt::Kind::If: {
    const auto &I = cast<IfStmt>(S);
    OS << "if (";
    printExpr(OS, I.getCond());
    OS << ") ";
    printBlockBody(OS, I.getThen(), Indent);
    if (!I.getElse().empty()) {
      OS << " else ";
      printBlockBody(OS, I.getElse(), Indent);
    }
    OS << '\n';
    return;
  }
  case Stmt::Kind::For: {
    const auto &F = cast<ForStmt>(S);
    OS << "for " << F.getIndexVar() << " in ";
    printExpr(OS, F.getLo());
    OS << "..";
    printExpr(OS, F.getHi());
    OS << ' ';
    printBlockBody(OS, F.getBody(), Indent);
    OS << '\n';
    return;
  }
  }
}

void psketch::printProgram(std::ostream &OS, const Program &P) {
  OS << "program " << P.getName() << '(';
  for (size_t I = 0, E = P.getParams().size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << P.getParams()[I].Name << ": " << P.getParams()[I].Ty.str();
  }
  OS << ") {\n";
  for (const LocalDecl &D : P.getDecls()) {
    OS << "  " << D.Name << ": " << scalarKindName(D.Kind);
    if (D.isArray()) {
      OS << '[';
      printExpr(OS, *D.ArraySize);
      OS << ']';
    }
    OS << ";\n";
  }
  for (const StmtPtr &S : P.getBody().getStmts())
    printStmt(OS, *S, 1);
  OS << "  return ";
  for (size_t I = 0, E = P.getReturns().size(); I != E; ++I) {
    if (I)
      OS << ", ";
    OS << P.getReturns()[I];
  }
  OS << ";\n}\n";
}

std::string psketch::toString(const Expr &E) {
  std::ostringstream OS;
  printExpr(OS, E);
  return OS.str();
}

std::string psketch::toString(const Stmt &S) {
  std::ostringstream OS;
  printStmt(OS, S);
  return OS.str();
}

std::string psketch::toString(const Program &P) {
  std::ostringstream OS;
  printProgram(OS, P);
  return OS.str();
}
