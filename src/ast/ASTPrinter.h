//===- ast/ASTPrinter.h - Pretty printer for the sketching language ------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders expressions, statements and programs back to concrete syntax.
/// The output re-parses to a structurally equal AST (round-trip property
/// checked in tests/parse).  Synthesized completions are printed with
/// hole formals as `%0`, `%1`, ...
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_ASTPRINTER_H
#define PSKETCH_AST_ASTPRINTER_H

#include "ast/Program.h"

#include <iosfwd>
#include <string>

namespace psketch {

/// Prints \p E to \p OS with minimal parentheses.
void printExpr(std::ostream &OS, const Expr &E);

/// Prints \p S to \p OS, indented by \p Indent levels (two spaces each).
void printStmt(std::ostream &OS, const Stmt &S, unsigned Indent = 0);

/// Prints the complete program.
void printProgram(std::ostream &OS, const Program &P);

/// Convenience renderers to std::string.
std::string toString(const Expr &E);
std::string toString(const Stmt &S);
std::string toString(const Program &P);

} // namespace psketch

#endif // PSKETCH_AST_ASTPRINTER_H
