//===- ast/Program.cpp - Whole-program AST --------------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Program.h"

using namespace psketch;

const Param *Program::findParam(const std::string &ParamName) const {
  for (const Param &P : Params)
    if (P.Name == ParamName)
      return &P;
  return nullptr;
}

const LocalDecl *Program::findDecl(const std::string &DeclName) const {
  for (const LocalDecl &D : Decls)
    if (D.Name == DeclName)
      return &D;
  return nullptr;
}

std::unique_ptr<Program> Program::clone() const {
  std::vector<LocalDecl> NewDecls;
  NewDecls.reserve(Decls.size());
  for (const LocalDecl &D : Decls)
    NewDecls.push_back(D.clone());
  return std::make_unique<Program>(Name, Params, std::move(NewDecls),
                                   Body->cloneBlock(), Returns);
}
