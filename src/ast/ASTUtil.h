//===- ast/ASTUtil.h - AST traversal, equality, substitution -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic traversal utilities over expression and statement trees,
/// structural equality/hashing, hole collection, and the hole-formal
/// substitution that splices completions into sketches.  The mutable
/// slot-based traversals (ExprPtr& callbacks) are what the mutation
/// operators of Section 4.1 use to rewrite candidate programs in place.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_ASTUTIL_H
#define PSKETCH_AST_ASTUTIL_H

#include "ast/Program.h"

#include <functional>
#include <vector>

namespace psketch {

/// Invokes \p Fn on each direct child slot of \p E (non-recursive).
void forEachChildSlot(Expr &E, const std::function<void(ExprPtr &)> &Fn);

/// Invokes \p Fn on each node of \p E in pre-order (const, recursive).
void forEachNode(const Expr &E, const std::function<void(const Expr &)> &Fn);

/// Collects pointers to every expression slot in the tree rooted at
/// \p Root, including \p Root itself, in pre-order.  The returned slots
/// stay valid while the tree shape is unchanged; replacing the
/// expression held by a slot is the mutation primitive.
void collectExprSlots(ExprPtr &Root, std::vector<ExprPtr *> &Slots);

/// Number of nodes in the expression tree.
size_t exprSize(const Expr &E);

/// Maximum depth of the expression tree (a leaf has depth 1).
size_t exprDepth(const Expr &E);

/// Structural equality of expression trees (locations ignored).
bool structurallyEqual(const Expr &A, const Expr &B);

/// Structural equality of statement trees (locations ignored).
bool structurallyEqual(const Stmt &A, const Stmt &B);

/// Structural hash consistent with structurallyEqual.
size_t structuralHash(const Expr &E);

/// Canonical 64-bit structural hash of \p E: locations are ignored,
/// hole formals hash by index (so alpha-identical completions hash
/// equal), and every discriminating payload — constant value and
/// scalar kind, operator, distribution, variable/array name, child
/// order and arity — feeds a splitmix-style mixer.  Consistent with
/// structurallyEqual and strong enough to key the synthesizer's
/// candidate-score cache (see synth/ScoreCache.h).
uint64_t hashExpr(const Expr &E);

/// Position-sensitive combination of hashExpr over a completion tuple
/// (hole-id order); the score-cache key of one candidate.
uint64_t hashExprTuple(const std::vector<ExprPtr> &Exprs);

/// Invokes \p Fn on each top-level expression slot reachable from \p S:
/// assignment values and indices, observe conditions, if conditions, for
/// bounds; recurses into nested blocks/ifs/fors but not into the
/// expressions themselves.
void forEachStmtExprSlot(Stmt &S, const std::function<void(ExprPtr &)> &Fn);

/// Collects every hole in \p P in syntactic order.  Pointers remain
/// valid while the program is alive and unmutated.
std::vector<HoleExpr *> collectHoles(Program &P);

/// Const variant of collectHoles.
std::vector<const HoleExpr *> collectHoles(const Program &P);

/// Returns a copy of \p Completion in which every HoleArgExpr `%i` is
/// replaced by a clone of \p Actuals[i].  Indices beyond the actuals are
/// a programming error (asserted).
ExprPtr substituteHoleArgs(const Expr &Completion,
                           const std::vector<const Expr *> &Actuals);

/// True if \p E contains a node of kind Sample (a distribution draw).
bool containsSample(const Expr &E);

/// True if \p E contains any hole.
bool containsHole(const Expr &E);

} // namespace psketch

#endif // PSKETCH_AST_ASTUTIL_H
