//===- ast/Stmt.h - Statement AST of the sketching language --------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statement nodes for the Figure 3 grammar: skip, assignment (both the
/// deterministic `x = E` form and the probabilistic `x ~ Dist(theta)`
/// form, which is represented as an assignment whose RHS is a
/// SampleExpr), observe, sequential composition (BlockStmt), conditional
/// composition, and the bounded for-loop.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_STMT_H
#define PSKETCH_AST_STMT_H

#include "ast/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace psketch {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Base class of all statement nodes.
class Stmt {
public:
  enum class Kind { Skip, Assign, Observe, Block, If, For };

  virtual ~Stmt();

  Kind getKind() const { return K; }
  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

  /// Deep copy of this statement tree.
  virtual StmtPtr clone() const = 0;

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

/// The assignable left-hand side of an assignment: a scalar variable or
/// an array element.
struct LValue {
  std::string Name;
  ExprPtr Index; ///< Null for scalar targets.

  LValue() = default;
  LValue(std::string Name, ExprPtr Index = nullptr)
      : Name(std::move(Name)), Index(std::move(Index)) {}

  bool isArrayElement() const { return Index != nullptr; }
  LValue clone() const {
    return LValue(Name, Index ? Index->clone() : nullptr);
  }
};

/// `skip;` — the no-op statement.
class SkipStmt : public Stmt {
public:
  explicit SkipStmt(SourceLoc Loc = {}) : Stmt(Kind::Skip, Loc) {}

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Skip; }
};

/// `x = E;` or `x ~ Dist(theta);` (probabilistic when the RHS is a
/// SampleExpr).
class AssignStmt : public Stmt {
public:
  AssignStmt(LValue Target, ExprPtr Value, SourceLoc Loc = {})
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}

  const LValue &getTarget() const { return Target; }
  LValue &getTarget() { return Target; }
  const Expr &getValue() const { return *Value; }
  ExprPtr &getValuePtr() { return Value; }

  /// True when the RHS draws from a distribution at the top level, i.e.
  /// this is the paper's probabilistic assignment form.
  bool isProbabilistic() const;

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  LValue Target;
  ExprPtr Value;
};

/// `observe(phi);` — conditions the program on \p phi holding.
class ObserveStmt : public Stmt {
public:
  explicit ObserveStmt(ExprPtr Cond, SourceLoc Loc = {})
      : Stmt(Kind::Observe, Loc), Cond(std::move(Cond)) {}

  const Expr &getCond() const { return *Cond; }
  ExprPtr &getCondPtr() { return Cond; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Observe; }

private:
  ExprPtr Cond;
};

/// A sequence of statements; Figure 3's `S1; S2` generalized to a list.
class BlockStmt : public Stmt {
public:
  explicit BlockStmt(std::vector<StmtPtr> Stmts = {}, SourceLoc Loc = {})
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &getStmts() const { return Stmts; }
  std::vector<StmtPtr> &getStmts() { return Stmts; }
  void append(StmtPtr S) { Stmts.push_back(std::move(S)); }
  bool empty() const { return Stmts.empty(); }

  StmtPtr clone() const override;

  /// Clone returning the derived type (clone() erases to StmtPtr).
  std::unique_ptr<BlockStmt> cloneBlock() const;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

/// `if (E) { ... } else { ... }`; the else block may be empty.
class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, std::unique_ptr<BlockStmt> Then,
         std::unique_ptr<BlockStmt> Else, SourceLoc Loc = {})
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr &getCond() const { return *Cond; }
  ExprPtr &getCondPtr() { return Cond; }
  const BlockStmt &getThen() const { return *Then; }
  BlockStmt &getThen() { return *Then; }
  const BlockStmt &getElse() const { return *Else; }
  BlockStmt &getElse() { return *Else; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  std::unique_ptr<BlockStmt> Then;
  std::unique_ptr<BlockStmt> Else;
};

/// `for i in Lo..Hi { ... }` iterates i over the half-open integer range
/// [Lo, Hi).  Bounds must be constant-foldable given the program inputs;
/// the lowering pass (sem/Lower.h) unrolls the loop, per the paper's
/// bounded-loop assumption.
class ForStmt : public Stmt {
public:
  ForStmt(std::string IndexVar, ExprPtr Lo, ExprPtr Hi,
          std::unique_ptr<BlockStmt> Body, SourceLoc Loc = {})
      : Stmt(Kind::For, Loc), IndexVar(std::move(IndexVar)),
        Lo(std::move(Lo)), Hi(std::move(Hi)), Body(std::move(Body)) {}

  const std::string &getIndexVar() const { return IndexVar; }
  const Expr &getLo() const { return *Lo; }
  const Expr &getHi() const { return *Hi; }
  ExprPtr &getLoPtr() { return Lo; }
  ExprPtr &getHiPtr() { return Hi; }
  const BlockStmt &getBody() const { return *Body; }
  BlockStmt &getBody() { return *Body; }

  StmtPtr clone() const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::For; }

private:
  std::string IndexVar;
  ExprPtr Lo, Hi;
  std::unique_ptr<BlockStmt> Body;
};

} // namespace psketch

#endif // PSKETCH_AST_STMT_H
