//===- ast/Type.h - Types of the sketching language -----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of the PSketch language: the scalar types real, bool
/// and int, plus arrays of scalars.  Arrays are one-dimensional and sized
/// either by a program parameter or a constant (Section 4, Figure 3 of
/// the paper keeps loops bounded, so array extents are always concrete at
/// lowering time).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_TYPE_H
#define PSKETCH_AST_TYPE_H

#include <string>

namespace psketch {

/// The scalar types of Figure 3's expression language.
enum class ScalarKind { Real, Bool, Int };

/// Returns the source spelling ("real", "bool", "int").
const char *scalarKindName(ScalarKind K);

/// A scalar or array type.
struct Type {
  ScalarKind Kind = ScalarKind::Real;
  bool IsArray = false;

  constexpr Type() = default;
  constexpr Type(ScalarKind Kind, bool IsArray = false)
      : Kind(Kind), IsArray(IsArray) {}

  static constexpr Type real() { return {ScalarKind::Real}; }
  static constexpr Type boolean() { return {ScalarKind::Bool}; }
  static constexpr Type integer() { return {ScalarKind::Int}; }
  static constexpr Type array(ScalarKind K) { return {K, true}; }

  bool isReal() const { return Kind == ScalarKind::Real && !IsArray; }
  bool isBool() const { return Kind == ScalarKind::Bool && !IsArray; }
  bool isInt() const { return Kind == ScalarKind::Int && !IsArray; }
  bool isScalar() const { return !IsArray; }

  /// Real and int scalars are interchangeable as numeric operands; the
  /// type checker uses this for arithmetic promotion.
  bool isNumeric() const { return !IsArray && Kind != ScalarKind::Bool; }

  /// The element type of an array type.
  Type element() const { return {Kind, false}; }

  bool operator==(const Type &RHS) const {
    return Kind == RHS.Kind && IsArray == RHS.IsArray;
  }
  bool operator!=(const Type &RHS) const { return !(*this == RHS); }

  /// Source spelling, e.g. "real" or "int[]".
  std::string str() const;
};

} // namespace psketch

#endif // PSKETCH_AST_TYPE_H
