//===- ast/Program.h - Whole-program AST ----------------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is the unit the synthesizer operates on: a named parameter
/// list (the inputs, e.g. TrueSkill's games), local variable
/// declarations (scalars and arrays), a body block, and the list of
/// returned variables — the observable outputs whose joint distribution
/// is the meaning of the program (Section 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_PROGRAM_H
#define PSKETCH_AST_PROGRAM_H

#include "ast/Stmt.h"

#include <memory>
#include <string>
#include <vector>

namespace psketch {

/// A program input.  Array parameters are unsized; their extent comes
/// from the concrete input binding at lowering time.
struct Param {
  std::string Name;
  Type Ty;
};

/// A local variable declaration.  Arrays carry a size expression over
/// the program parameters (e.g. `skills: real[count]`).
struct LocalDecl {
  std::string Name;
  ScalarKind Kind = ScalarKind::Real;
  ExprPtr ArraySize; ///< Null for scalar declarations.

  LocalDecl() = default;
  LocalDecl(std::string Name, ScalarKind Kind, ExprPtr ArraySize = nullptr)
      : Name(std::move(Name)), Kind(Kind), ArraySize(std::move(ArraySize)) {}

  bool isArray() const { return ArraySize != nullptr; }
  Type type() const { return Type(Kind, isArray()); }
  LocalDecl clone() const {
    return LocalDecl(Name, Kind, ArraySize ? ArraySize->clone() : nullptr);
  }
};

/// A complete program or sketch.
class Program {
public:
  Program() : Body(std::make_unique<BlockStmt>()) {}
  Program(std::string Name, std::vector<Param> Params,
          std::vector<LocalDecl> Decls, std::unique_ptr<BlockStmt> Body,
          std::vector<std::string> Returns)
      : Name(std::move(Name)), Params(std::move(Params)),
        Decls(std::move(Decls)), Body(std::move(Body)),
        Returns(std::move(Returns)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  const std::vector<Param> &getParams() const { return Params; }
  std::vector<Param> &getParams() { return Params; }

  const std::vector<LocalDecl> &getDecls() const { return Decls; }
  std::vector<LocalDecl> &getDecls() { return Decls; }

  const BlockStmt &getBody() const { return *Body; }
  BlockStmt &getBody() { return *Body; }

  const std::vector<std::string> &getReturns() const { return Returns; }
  std::vector<std::string> &getReturns() { return Returns; }

  /// Looks up a parameter by name; returns null if absent.
  const Param *findParam(const std::string &Name) const;

  /// Looks up a local declaration by name; returns null if absent.
  const LocalDecl *findDecl(const std::string &Name) const;

  /// Deep copy.
  std::unique_ptr<Program> clone() const;

private:
  std::string Name;
  std::vector<Param> Params;
  std::vector<LocalDecl> Decls;
  std::unique_ptr<BlockStmt> Body;
  std::vector<std::string> Returns;
};

} // namespace psketch

#endif // PSKETCH_AST_PROGRAM_H
