//===- ast/Stmt.cpp - Statement AST of the sketching language ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Stmt.h"

#include "support/Casting.h"

using namespace psketch;

Stmt::~Stmt() = default;

StmtPtr SkipStmt::clone() const {
  return std::make_unique<SkipStmt>(getLoc());
}

bool AssignStmt::isProbabilistic() const { return isa<SampleExpr>(*Value); }

StmtPtr AssignStmt::clone() const {
  return std::make_unique<AssignStmt>(Target.clone(), Value->clone(),
                                      getLoc());
}

StmtPtr ObserveStmt::clone() const {
  return std::make_unique<ObserveStmt>(Cond->clone(), getLoc());
}

StmtPtr BlockStmt::clone() const { return cloneBlock(); }

std::unique_ptr<BlockStmt> BlockStmt::cloneBlock() const {
  std::vector<StmtPtr> NewStmts;
  NewStmts.reserve(Stmts.size());
  for (const StmtPtr &S : Stmts)
    NewStmts.push_back(S->clone());
  return std::make_unique<BlockStmt>(std::move(NewStmts), getLoc());
}

StmtPtr IfStmt::clone() const {
  return std::make_unique<IfStmt>(Cond->clone(), Then->cloneBlock(),
                                  Else->cloneBlock(), getLoc());
}

StmtPtr ForStmt::clone() const {
  return std::make_unique<ForStmt>(IndexVar, Lo->clone(), Hi->clone(),
                                   Body->cloneBlock(), getLoc());
}
