//===- ast/Ops.cpp - Operators and distribution kinds ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/Ops.h"

using namespace psketch;

const char *psketch::unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "!";
  case UnaryOp::Neg:
    return "-";
  }
  return "<invalid>";
}

const char *psketch::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Eq:
    return "==";
  }
  return "<invalid>";
}

const char *psketch::distKindName(DistKind K) {
  switch (K) {
  case DistKind::Gaussian:
    return "Gaussian";
  case DistKind::Bernoulli:
    return "Bernoulli";
  case DistKind::Beta:
    return "Beta";
  case DistKind::Gamma:
    return "Gamma";
  case DistKind::Poisson:
    return "Poisson";
  }
  return "<invalid>";
}

unsigned psketch::distArity(DistKind K) {
  switch (K) {
  case DistKind::Gaussian:
  case DistKind::Beta:
  case DistKind::Gamma:
    return 2;
  case DistKind::Bernoulli:
  case DistKind::Poisson:
    return 1;
  }
  return 0;
}

bool psketch::distReturnsBool(DistKind K) {
  return K == DistKind::Bernoulli;
}

bool psketch::isArithOp(BinaryOp Op) {
  return Op == BinaryOp::Add || Op == BinaryOp::Sub || Op == BinaryOp::Mul;
}

bool psketch::isLogicalOp(BinaryOp Op) {
  return Op == BinaryOp::And || Op == BinaryOp::Or;
}

bool psketch::isCompareOp(BinaryOp Op) {
  return Op == BinaryOp::Gt || Op == BinaryOp::Lt;
}

std::vector<BinaryOp> psketch::equivalentOps(BinaryOp Op) {
  std::vector<BinaryOp> Result;
  auto AddAllBut = [&](std::initializer_list<BinaryOp> Class) {
    for (BinaryOp Candidate : Class)
      if (Candidate != Op)
        Result.push_back(Candidate);
  };
  if (isArithOp(Op))
    AddAllBut({BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul});
  else if (isLogicalOp(Op))
    AddAllBut({BinaryOp::And, BinaryOp::Or});
  else if (isCompareOp(Op))
    AddAllBut({BinaryOp::Gt, BinaryOp::Lt});
  return Result;
}

int psketch::binaryOpPrecedence(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Or:
    return 1;
  case BinaryOp::And:
    return 2;
  case BinaryOp::Eq:
    return 3;
  case BinaryOp::Gt:
  case BinaryOp::Lt:
    return 4;
  case BinaryOp::Add:
  case BinaryOp::Sub:
    return 5;
  case BinaryOp::Mul:
    return 6;
  }
  return 0;
}
