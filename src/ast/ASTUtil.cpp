//===- ast/ASTUtil.cpp - AST traversal, equality, substitution -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ast/ASTUtil.h"

#include "support/Casting.h"

#include <cassert>
#include <cstring>

using namespace psketch;

void psketch::forEachChildSlot(Expr &E,
                               const std::function<void(ExprPtr &)> &Fn) {
  switch (E.getKind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
  case Expr::Kind::HoleArg:
    return;
  case Expr::Kind::Index:
    Fn(cast<IndexExpr>(E).getIndexPtr());
    return;
  case Expr::Kind::Unary:
    Fn(cast<UnaryExpr>(E).getSubPtr());
    return;
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(E);
    Fn(B.getLHSPtr());
    Fn(B.getRHSPtr());
    return;
  }
  case Expr::Kind::Ite: {
    auto &I = cast<IteExpr>(E);
    Fn(I.getCondPtr());
    Fn(I.getThenPtr());
    Fn(I.getElsePtr());
    return;
  }
  case Expr::Kind::Sample:
    for (ExprPtr &A : cast<SampleExpr>(E).getArgs())
      Fn(A);
    return;
  case Expr::Kind::Hole:
    for (ExprPtr &A : cast<HoleExpr>(E).getArgs())
      Fn(A);
    return;
  }
}

void psketch::forEachNode(const Expr &E,
                          const std::function<void(const Expr &)> &Fn) {
  Fn(E);
  // The const traversal reuses the mutable slot walker on a const_cast;
  // the callback below never mutates.
  forEachChildSlot(const_cast<Expr &>(E), [&](ExprPtr &Child) {
    forEachNode(*Child, Fn);
  });
}

void psketch::collectExprSlots(ExprPtr &Root, std::vector<ExprPtr *> &Slots) {
  Slots.push_back(&Root);
  forEachChildSlot(*Root, [&](ExprPtr &Child) {
    collectExprSlots(Child, Slots);
  });
}

size_t psketch::exprSize(const Expr &E) {
  size_t N = 0;
  forEachNode(E, [&](const Expr &) { ++N; });
  return N;
}

size_t psketch::exprDepth(const Expr &E) {
  size_t Max = 0;
  forEachChildSlot(const_cast<Expr &>(E), [&](ExprPtr &Child) {
    Max = std::max(Max, exprDepth(*Child));
  });
  return Max + 1;
}

bool psketch::structurallyEqual(const Expr &A, const Expr &B) {
  if (A.getKind() != B.getKind())
    return false;
  switch (A.getKind()) {
  case Expr::Kind::Const: {
    const auto &CA = cast<ConstExpr>(A), &CB = cast<ConstExpr>(B);
    return CA.getValue() == CB.getValue() &&
           CA.getScalarKind() == CB.getScalarKind();
  }
  case Expr::Kind::Var:
    return cast<VarExpr>(A).getName() == cast<VarExpr>(B).getName();
  case Expr::Kind::Index: {
    const auto &IA = cast<IndexExpr>(A), &IB = cast<IndexExpr>(B);
    return IA.getArrayName() == IB.getArrayName() &&
           structurallyEqual(IA.getIndex(), IB.getIndex());
  }
  case Expr::Kind::HoleArg:
    return cast<HoleArgExpr>(A).getArgIndex() ==
           cast<HoleArgExpr>(B).getArgIndex();
  case Expr::Kind::Unary: {
    const auto &UA = cast<UnaryExpr>(A), &UB = cast<UnaryExpr>(B);
    return UA.getOp() == UB.getOp() &&
           structurallyEqual(UA.getSub(), UB.getSub());
  }
  case Expr::Kind::Binary: {
    const auto &BA = cast<BinaryExpr>(A), &BB = cast<BinaryExpr>(B);
    return BA.getOp() == BB.getOp() &&
           structurallyEqual(BA.getLHS(), BB.getLHS()) &&
           structurallyEqual(BA.getRHS(), BB.getRHS());
  }
  case Expr::Kind::Ite: {
    const auto &IA = cast<IteExpr>(A), &IB = cast<IteExpr>(B);
    return structurallyEqual(IA.getCond(), IB.getCond()) &&
           structurallyEqual(IA.getThen(), IB.getThen()) &&
           structurallyEqual(IA.getElse(), IB.getElse());
  }
  case Expr::Kind::Sample: {
    const auto &SA = cast<SampleExpr>(A), &SB = cast<SampleExpr>(B);
    if (SA.getDist() != SB.getDist() ||
        SA.getNumArgs() != SB.getNumArgs())
      return false;
    for (unsigned I = 0, E = SA.getNumArgs(); I != E; ++I)
      if (!structurallyEqual(SA.getArg(I), SB.getArg(I)))
        return false;
    return true;
  }
  case Expr::Kind::Hole: {
    const auto &HA = cast<HoleExpr>(A), &HB = cast<HoleExpr>(B);
    if (HA.getHoleId() != HB.getHoleId() ||
        HA.getNumArgs() != HB.getNumArgs())
      return false;
    for (unsigned I = 0, E = HA.getNumArgs(); I != E; ++I)
      if (!structurallyEqual(HA.getArg(I), HB.getArg(I)))
        return false;
    return true;
  }
  }
  return false;
}

bool psketch::structurallyEqual(const Stmt &A, const Stmt &B) {
  if (A.getKind() != B.getKind())
    return false;
  switch (A.getKind()) {
  case Stmt::Kind::Skip:
    return true;
  case Stmt::Kind::Assign: {
    const auto &SA = cast<AssignStmt>(A), &SB = cast<AssignStmt>(B);
    if (SA.getTarget().Name != SB.getTarget().Name)
      return false;
    if (SA.getTarget().isArrayElement() != SB.getTarget().isArrayElement())
      return false;
    if (SA.getTarget().isArrayElement() &&
        !structurallyEqual(*SA.getTarget().Index, *SB.getTarget().Index))
      return false;
    return structurallyEqual(SA.getValue(), SB.getValue());
  }
  case Stmt::Kind::Observe:
    return structurallyEqual(cast<ObserveStmt>(A).getCond(),
                             cast<ObserveStmt>(B).getCond());
  case Stmt::Kind::Block: {
    const auto &BA = cast<BlockStmt>(A), &BB = cast<BlockStmt>(B);
    if (BA.getStmts().size() != BB.getStmts().size())
      return false;
    for (size_t I = 0, E = BA.getStmts().size(); I != E; ++I)
      if (!structurallyEqual(*BA.getStmts()[I], *BB.getStmts()[I]))
        return false;
    return true;
  }
  case Stmt::Kind::If: {
    const auto &IA = cast<IfStmt>(A), &IB = cast<IfStmt>(B);
    return structurallyEqual(IA.getCond(), IB.getCond()) &&
           structurallyEqual(IA.getThen(), IB.getThen()) &&
           structurallyEqual(IA.getElse(), IB.getElse());
  }
  case Stmt::Kind::For: {
    const auto &FA = cast<ForStmt>(A), &FB = cast<ForStmt>(B);
    return FA.getIndexVar() == FB.getIndexVar() &&
           structurallyEqual(FA.getLo(), FB.getLo()) &&
           structurallyEqual(FA.getHi(), FB.getHi()) &&
           structurallyEqual(FA.getBody(), FB.getBody());
  }
  }
  return false;
}

static size_t hashCombine(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t psketch::structuralHash(const Expr &E) {
  size_t H = hashCombine(0, size_t(E.getKind()));
  switch (E.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(E);
    H = hashCombine(H, std::hash<double>()(C.getValue()));
    H = hashCombine(H, size_t(C.getScalarKind()));
    break;
  }
  case Expr::Kind::Var:
    H = hashCombine(H, std::hash<std::string>()(cast<VarExpr>(E).getName()));
    break;
  case Expr::Kind::Index:
    H = hashCombine(
        H, std::hash<std::string>()(cast<IndexExpr>(E).getArrayName()));
    break;
  case Expr::Kind::HoleArg:
    H = hashCombine(H, cast<HoleArgExpr>(E).getArgIndex());
    break;
  case Expr::Kind::Unary:
    H = hashCombine(H, size_t(cast<UnaryExpr>(E).getOp()));
    break;
  case Expr::Kind::Binary:
    H = hashCombine(H, size_t(cast<BinaryExpr>(E).getOp()));
    break;
  case Expr::Kind::Ite:
    break;
  case Expr::Kind::Sample:
    H = hashCombine(H, size_t(cast<SampleExpr>(E).getDist()));
    break;
  case Expr::Kind::Hole:
    H = hashCombine(H, cast<HoleExpr>(E).getHoleId());
    break;
  }
  forEachChildSlot(const_cast<Expr &>(E), [&](ExprPtr &Child) {
    H = hashCombine(H, structuralHash(*Child));
  });
  return H;
}

namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Order-sensitive fold of \p V into \p Seed.
uint64_t foldHash(uint64_t Seed, uint64_t V) {
  return mix64(Seed ^ mix64(V));
}

uint64_t foldHash(uint64_t Seed, const std::string &S) {
  // FNV-1a over the bytes: stable, no dependence on std::hash.
  uint64_t H = 0xcbf29ce484222325ULL;
  for (unsigned char C : S)
    H = (H ^ C) * 0x100000001b3ULL;
  return foldHash(Seed, H);
}

uint64_t hashDouble(double V) {
  // structurallyEqual compares constants with ==; canonicalize -0.0 so
  // hashing stays consistent with it.
  if (V == 0.0)
    V = 0.0;
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

} // namespace

uint64_t psketch::hashExpr(const Expr &E) {
  uint64_t H = foldHash(0x50534b45ULL /*"PSKE"*/, uint64_t(E.getKind()));
  switch (E.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(E);
    H = foldHash(H, hashDouble(C.getValue()));
    H = foldHash(H, uint64_t(C.getScalarKind()));
    break;
  }
  case Expr::Kind::Var:
    H = foldHash(H, cast<VarExpr>(E).getName());
    break;
  case Expr::Kind::Index:
    H = foldHash(H, cast<IndexExpr>(E).getArrayName());
    break;
  case Expr::Kind::HoleArg:
    H = foldHash(H, uint64_t(cast<HoleArgExpr>(E).getArgIndex()));
    break;
  case Expr::Kind::Unary:
    H = foldHash(H, uint64_t(cast<UnaryExpr>(E).getOp()));
    break;
  case Expr::Kind::Binary:
    H = foldHash(H, uint64_t(cast<BinaryExpr>(E).getOp()));
    break;
  case Expr::Kind::Ite:
    break;
  case Expr::Kind::Sample:
    H = foldHash(H, uint64_t(cast<SampleExpr>(E).getDist()));
    break;
  case Expr::Kind::Hole:
    H = foldHash(H, uint64_t(cast<HoleExpr>(E).getHoleId()));
    break;
  }
  uint64_t Arity = 0;
  forEachChildSlot(const_cast<Expr &>(E), [&](ExprPtr &Child) {
    H = foldHash(H, foldHash(Arity, hashExpr(*Child)));
    ++Arity;
  });
  return foldHash(H, Arity);
}

uint64_t psketch::hashExprTuple(const std::vector<ExprPtr> &Exprs) {
  uint64_t H = 0x54504c45ULL /*"TPLE"*/;
  for (size_t I = 0, E = Exprs.size(); I != E; ++I)
    H = foldHash(H, foldHash(I, hashExpr(*Exprs[I])));
  return foldHash(H, Exprs.size());
}

void psketch::forEachStmtExprSlot(Stmt &S,
                                  const std::function<void(ExprPtr &)> &Fn) {
  switch (S.getKind()) {
  case Stmt::Kind::Skip:
    return;
  case Stmt::Kind::Assign: {
    auto &A = cast<AssignStmt>(S);
    if (A.getTarget().isArrayElement())
      Fn(A.getTarget().Index);
    Fn(A.getValuePtr());
    return;
  }
  case Stmt::Kind::Observe:
    Fn(cast<ObserveStmt>(S).getCondPtr());
    return;
  case Stmt::Kind::Block:
    for (StmtPtr &Sub : cast<BlockStmt>(S).getStmts())
      forEachStmtExprSlot(*Sub, Fn);
    return;
  case Stmt::Kind::If: {
    auto &I = cast<IfStmt>(S);
    Fn(I.getCondPtr());
    forEachStmtExprSlot(I.getThen(), Fn);
    forEachStmtExprSlot(I.getElse(), Fn);
    return;
  }
  case Stmt::Kind::For: {
    auto &F = cast<ForStmt>(S);
    Fn(F.getLoPtr());
    Fn(F.getHiPtr());
    forEachStmtExprSlot(F.getBody(), Fn);
    return;
  }
  }
}

std::vector<HoleExpr *> psketch::collectHoles(Program &P) {
  std::vector<HoleExpr *> Holes;
  std::function<void(Expr &)> Visit = [&](Expr &E) {
    if (auto *H = dyn_cast<HoleExpr>(&E))
      Holes.push_back(H);
    forEachChildSlot(E, [&](ExprPtr &Child) { Visit(*Child); });
  };
  forEachStmtExprSlot(P.getBody(), [&](ExprPtr &E) { Visit(*E); });
  return Holes;
}

std::vector<const HoleExpr *> psketch::collectHoles(const Program &P) {
  std::vector<HoleExpr *> Mutable = collectHoles(const_cast<Program &>(P));
  return {Mutable.begin(), Mutable.end()};
}

ExprPtr
psketch::substituteHoleArgs(const Expr &Completion,
                            const std::vector<const Expr *> &Actuals) {
  if (const auto *Arg = dyn_cast<HoleArgExpr>(&Completion)) {
    assert(Arg->getArgIndex() < Actuals.size() &&
           "hole formal index out of range");
    return Actuals[Arg->getArgIndex()]->clone();
  }
  ExprPtr Copy = Completion.clone();
  forEachChildSlot(*Copy, [&](ExprPtr &Child) {
    Child = substituteHoleArgs(*Child, Actuals);
  });
  return Copy;
}

bool psketch::containsSample(const Expr &E) {
  bool Found = false;
  forEachNode(E, [&](const Expr &N) {
    if (isa<SampleExpr>(N))
      Found = true;
  });
  return Found;
}

bool psketch::containsHole(const Expr &E) {
  bool Found = false;
  forEachNode(E, [&](const Expr &N) {
    if (isa<HoleExpr>(N))
      Found = true;
  });
  return Found;
}
