//===- ast/Ops.h - Operators and distribution kinds -----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operator and primitive-distribution enumerations for the Figure 3
/// expression grammar, together with classification helpers used by the
/// type checker and by mutation Operation-3 (operator-for-operator swaps
/// among "operators with equivalent type", Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_AST_OPS_H
#define PSKETCH_AST_OPS_H

#include "ast/Type.h"

#include <vector>

namespace psketch {

/// Unary operators; Figure 3 lists {!}, and we additionally support
/// numeric negation for convenience in hand-written models.
enum class UnaryOp { Not, Neg };

/// Binary operators of Figure 3 ({+, -, x, &&, ||, >}) plus the
/// comparisons `<` and `==` that the paper's example programs use in
/// observe statements.
enum class BinaryOp { Add, Sub, Mul, And, Or, Gt, Lt, Eq };

/// Primitive distributions with symbolic MoG approximations (Figure 5).
enum class DistKind { Gaussian, Bernoulli, Beta, Gamma, Poisson };

/// Source spelling of a unary operator.
const char *unaryOpName(UnaryOp Op);

/// Source spelling of a binary operator.
const char *binaryOpName(BinaryOp Op);

/// Source spelling of a distribution constructor.
const char *distKindName(DistKind K);

/// Number of parameters the distribution constructor takes.
unsigned distArity(DistKind K);

/// True for distributions whose draws are boolean (Bernoulli).
bool distReturnsBool(DistKind K);

/// True for {+, -, x}: numeric x numeric -> numeric.
bool isArithOp(BinaryOp Op);

/// True for {&&, ||}: bool x bool -> bool.
bool isLogicalOp(BinaryOp Op);

/// True for {>, <}: numeric x numeric -> bool.
bool isCompareOp(BinaryOp Op);

/// Operators with the same type signature as \p Op, excluding \p Op
/// itself; the candidate set for mutation Operation-3.  `==` has no
/// swap partners (its operands may be boolean).
std::vector<BinaryOp> equivalentOps(BinaryOp Op);

/// Binding strength for the pretty printer; higher binds tighter.
int binaryOpPrecedence(BinaryOp Op);

} // namespace psketch

#endif // PSKETCH_AST_OPS_H
