//===- synth/Checkpoint.cpp - Durable snapshots of MH chain state ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Checkpoint.h"

#include "ast/ASTPrinter.h"
#include "support/Casting.h"

#include <array>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace psketch;

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t fnv1a(uint64_t H, const void *Data, size_t Len) {
  const auto *P = static_cast<const uint8_t *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnvU64(uint64_t H, uint64_t V) { return fnv1a(H, &V, sizeof(V)); }

uint64_t fnvF64(uint64_t H, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return fnvU64(H, Bits);
}

} // namespace

uint64_t psketch::sketchFingerprint(const Program &Sketch) {
  std::string Text = toString(Sketch);
  return fnv1a(FnvOffset, Text.data(), Text.size());
}

uint64_t psketch::walkConfigFingerprint(const SynthesisConfig &Config) {
  // Only knobs that change *which walk* is taken belong here; execution
  // knobs proven result-neutral (Threads, RowThreads, SpeculateDepth,
  // Incremental, SliceFactoring, StaticAnalysis, SIMD tiers, telemetry)
  // are excluded so a run can resume under a different deployment.
  uint64_t H = FnvOffset;
  H = fnvU64(H, Config.Iterations);
  H = fnvU64(H, Config.Chains);
  H = fnvU64(H, Config.ScoreCacheSize);
  H = fnvU64(H, Config.MaxInitTries);
  H = fnvU64(H, Config.UseProposalRatio ? 1 : 0);
  // Likelihood value-changing knobs: FastTape contracts FMAs.
  H = fnvU64(H, Config.Likelihood.Tape.FastTape ? 1 : 0);
  // Generator.
  H = fnvU64(H, Config.Gen.MaxDepth);
  H = fnvF64(H, Config.Gen.TerminalBias);
  H = fnvF64(H, Config.Gen.ConstSd);
  for (BinaryOp Op : Config.Gen.ArithOps)
    H = fnvU64(H, uint64_t(Op) + 11);
  for (BinaryOp Op : Config.Gen.LogicalOps)
    H = fnvU64(H, uint64_t(Op) + 29);
  for (BinaryOp Op : Config.Gen.CompareOps)
    H = fnvU64(H, uint64_t(Op) + 47);
  for (DistKind D : Config.Gen.Dists)
    H = fnvU64(H, uint64_t(D) + 71);
  H = fnvU64(H, (Config.Gen.AllowIte ? 1 : 0) | (Config.Gen.AllowNot ? 2 : 0) |
                    (Config.Gen.AllowSample ? 4 : 0));
  // Mutator.
  H = fnvF64(H, Config.Mut.GeomP);
  H = fnvF64(H, Config.Mut.ConstAbsSd);
  H = fnvF64(H, Config.Mut.ConstRelSd);
  H = fnvU64(H, Config.Mut.MaxNodes);
  H = fnvU64(H, Config.Mut.EnableGrowShrink ? 1 : 0);
  // MoG algebra (changes scores, therefore acceptances).
  H = fnvF64(H, Config.Algebra.Bandwidth);
  H = fnvU64(H, Config.Algebra.MaxComponents);
  H = fnvU64(H, Config.Algebra.StrictConstLifting ? 1 : 0);
  return H;
}

uint32_t psketch::checkpointCrc32(const uint8_t *Data, size_t Len) {
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I != 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K != 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t C = 0xFFFFFFFFu;
  for (size_t I = 0; I != Len; ++I)
    C = Table[(C ^ Data[I]) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

//===----------------------------------------------------------------------===//
// Byte-level encoding
//===----------------------------------------------------------------------===//

namespace {

/// Little-endian append-only encoder.
struct ByteWriter {
  std::vector<uint8_t> &Out;

  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(uint8_t(V >> (8 * I)));
  }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u32(uint32_t(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
};

/// Bounds-checked little-endian decoder; every read reports failure
/// instead of walking past End, so corrupt snapshots fail loudly.
struct ByteReader {
  const uint8_t *P;
  const uint8_t *End;
  bool Failed = false;

  bool need(size_t N) {
    if (size_t(End - P) < N) {
      Failed = true;
      return false;
    }
    return true;
  }
  uint8_t u8() {
    if (!need(1))
      return 0;
    return *P++;
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I != 4; ++I)
      V |= uint32_t(P[I]) << (8 * I);
    P += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I != 8; ++I)
      V |= uint64_t(P[I]) << (8 * I);
    P += 8;
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::string S(reinterpret_cast<const char *>(P), N);
    P += N;
    return S;
  }
};

/// Nesting bound for expression decoding: MaxNodes caps real
/// completions far below this; the bound only stops adversarially deep
/// byte strings from exhausting the stack.
constexpr unsigned MaxExprDepth = 512;

void writeExpr(ByteWriter &W, const Expr &E);

void writeExprList(ByteWriter &W, const std::vector<ExprPtr> &Args) {
  W.u32(uint32_t(Args.size()));
  for (const ExprPtr &A : Args)
    writeExpr(W, *A);
}

void writeExpr(ByteWriter &W, const Expr &E) {
  W.u8(uint8_t(E.getKind()));
  switch (E.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(E);
    W.f64(C.getValue());
    W.u8(uint8_t(C.getScalarKind()));
    return;
  }
  case Expr::Kind::Var:
    W.str(cast<VarExpr>(E).getName());
    return;
  case Expr::Kind::Index: {
    const auto &X = cast<IndexExpr>(E);
    W.str(X.getArrayName());
    writeExpr(W, X.getIndex());
    return;
  }
  case Expr::Kind::HoleArg: {
    const auto &A = cast<HoleArgExpr>(E);
    W.u32(A.getArgIndex());
    W.u8(uint8_t(A.getScalarKind()));
    return;
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(E);
    W.u8(uint8_t(U.getOp()));
    writeExpr(W, U.getSub());
    return;
  }
  case Expr::Kind::Binary: {
    const auto &B = cast<BinaryExpr>(E);
    W.u8(uint8_t(B.getOp()));
    writeExpr(W, B.getLHS());
    writeExpr(W, B.getRHS());
    return;
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(E);
    writeExpr(W, I.getCond());
    writeExpr(W, I.getThen());
    writeExpr(W, I.getElse());
    return;
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(E);
    W.u8(uint8_t(S.getDist()));
    writeExprList(W, S.getArgs());
    return;
  }
  case Expr::Kind::Hole: {
    const auto &H = cast<HoleExpr>(E);
    W.u32(H.getHoleId());
    W.u8(uint8_t(H.getExpectedKind()));
    writeExprList(W, H.getArgs());
    return;
  }
  }
}

bool validScalarKind(uint8_t K) { return K <= uint8_t(ScalarKind::Int); }

ExprPtr readExpr(ByteReader &R, unsigned Depth);

bool readExprList(ByteReader &R, unsigned Depth, std::vector<ExprPtr> &Out) {
  uint32_t N = R.u32();
  if (R.Failed || N > 1u << 20)
    return false;
  Out.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    ExprPtr E = readExpr(R, Depth);
    if (!E)
      return false;
    Out.push_back(std::move(E));
  }
  return true;
}

ExprPtr readExpr(ByteReader &R, unsigned Depth) {
  if (Depth > MaxExprDepth) {
    R.Failed = true;
    return nullptr;
  }
  uint8_t Kind = R.u8();
  if (R.Failed)
    return nullptr;
  switch (Expr::Kind(Kind)) {
  case Expr::Kind::Const: {
    double V = R.f64();
    uint8_t K = R.u8();
    if (R.Failed || !validScalarKind(K))
      return nullptr;
    return std::make_unique<ConstExpr>(V, ScalarKind(K));
  }
  case Expr::Kind::Var: {
    std::string Name = R.str();
    if (R.Failed)
      return nullptr;
    return std::make_unique<VarExpr>(std::move(Name));
  }
  case Expr::Kind::Index: {
    std::string Name = R.str();
    ExprPtr Idx = readExpr(R, Depth + 1);
    if (!Idx)
      return nullptr;
    return std::make_unique<IndexExpr>(std::move(Name), std::move(Idx));
  }
  case Expr::Kind::HoleArg: {
    uint32_t Arg = R.u32();
    uint8_t K = R.u8();
    if (R.Failed || !validScalarKind(K))
      return nullptr;
    return std::make_unique<HoleArgExpr>(Arg, ScalarKind(K));
  }
  case Expr::Kind::Unary: {
    uint8_t Op = R.u8();
    ExprPtr Sub = readExpr(R, Depth + 1);
    if (!Sub || Op > uint8_t(UnaryOp::Neg))
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp(Op), std::move(Sub));
  }
  case Expr::Kind::Binary: {
    uint8_t Op = R.u8();
    ExprPtr L = readExpr(R, Depth + 1);
    ExprPtr Rhs = L ? readExpr(R, Depth + 1) : nullptr;
    if (!Rhs || Op > uint8_t(BinaryOp::Eq))
      return nullptr;
    return std::make_unique<BinaryExpr>(BinaryOp(Op), std::move(L),
                                        std::move(Rhs));
  }
  case Expr::Kind::Ite: {
    ExprPtr C = readExpr(R, Depth + 1);
    ExprPtr T = C ? readExpr(R, Depth + 1) : nullptr;
    ExprPtr E = T ? readExpr(R, Depth + 1) : nullptr;
    if (!E)
      return nullptr;
    return std::make_unique<IteExpr>(std::move(C), std::move(T),
                                     std::move(E));
  }
  case Expr::Kind::Sample: {
    uint8_t Dist = R.u8();
    std::vector<ExprPtr> Args;
    if (!readExprList(R, Depth + 1, Args) ||
        Dist > uint8_t(DistKind::Poisson))
      return nullptr;
    return std::make_unique<SampleExpr>(DistKind(Dist), std::move(Args));
  }
  case Expr::Kind::Hole: {
    uint32_t Id = R.u32();
    uint8_t K = R.u8();
    std::vector<ExprPtr> Args;
    if (!readExprList(R, Depth + 1, Args) || !validScalarKind(K))
      return nullptr;
    auto H = std::make_unique<HoleExpr>(Id, std::move(Args));
    H->setExpectedKind(ScalarKind(K));
    return H;
  }
  }
  R.Failed = true;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Payload encoding
//===----------------------------------------------------------------------===//

void writeStats(ByteWriter &W, const SynthesisStats &S) {
  // Fixed field order; CheckpointVersion guards layout changes.  Stage
  // timings are wall-clock telemetry, not resumable walk state, and are
  // not serialized (a resumed run restarts them at zero).
  W.u64(S.Proposed);
  W.u64(S.Accepted);
  W.u64(S.Invalid);
  W.u64(S.InvalidType);
  W.u64(S.InvalidDomain);
  W.u64(S.InvalidStatic);
  W.u64(S.Scored);
  W.u64(S.CacheHits);
  W.u64(S.CacheMisses);
  W.f64(S.Seconds);
  W.u64(S.ScoreCacheEvictions);
  W.u64(S.ColCacheHits);
  W.u64(S.ColCacheMisses);
  W.u64(S.ColCacheEvictions);
  W.u64(S.TapeRawIns);
  W.u64(S.TapeFinalIns);
  W.u64(S.TapeFused);
  W.u64(S.RowsScored);
  W.u64(S.RowsSimd);
  W.u64(S.RowsScalarTail);
  W.u64(S.SliceSkip);
  W.u64(S.SliceGroupHits);
  W.u64(S.SliceGroupMisses);
  W.u64(S.SliceRowsSaved);
  W.u64(S.SliceRowsEvaluated);
  W.u64(S.ProposalPoolReused);
  W.u64(S.ProposalPoolAllocated);
  W.u64(S.ScoreCacheWarmHits);
  W.u64(S.ScoreCacheWarmEvictions);
  W.u64(S.SpecBlocks);
  W.u64(S.SpecNodes);
  W.u64(S.SpecConsumed);
  W.u64(S.SpecWasted);
  W.u64(S.SpecCancelledEarly);
  W.u64(S.SpecPeekResolved);
  W.u64(S.SpecQueueDropped);
}

void readStats(ByteReader &R, SynthesisStats &S) {
  S.Proposed = unsigned(R.u64());
  S.Accepted = unsigned(R.u64());
  S.Invalid = unsigned(R.u64());
  S.InvalidType = unsigned(R.u64());
  S.InvalidDomain = unsigned(R.u64());
  S.InvalidStatic = unsigned(R.u64());
  S.Scored = unsigned(R.u64());
  S.CacheHits = unsigned(R.u64());
  S.CacheMisses = unsigned(R.u64());
  S.Seconds = R.f64();
  S.ScoreCacheEvictions = R.u64();
  S.ColCacheHits = R.u64();
  S.ColCacheMisses = R.u64();
  S.ColCacheEvictions = R.u64();
  S.TapeRawIns = R.u64();
  S.TapeFinalIns = R.u64();
  S.TapeFused = R.u64();
  S.RowsScored = R.u64();
  S.RowsSimd = R.u64();
  S.RowsScalarTail = R.u64();
  S.SliceSkip = R.u64();
  S.SliceGroupHits = R.u64();
  S.SliceGroupMisses = R.u64();
  S.SliceRowsSaved = R.u64();
  S.SliceRowsEvaluated = R.u64();
  S.ProposalPoolReused = R.u64();
  S.ProposalPoolAllocated = R.u64();
  S.ScoreCacheWarmHits = R.u64();
  S.ScoreCacheWarmEvictions = R.u64();
  S.SpecBlocks = R.u64();
  S.SpecNodes = R.u64();
  S.SpecConsumed = R.u64();
  S.SpecWasted = R.u64();
  S.SpecCancelledEarly = R.u64();
  S.SpecPeekResolved = R.u64();
  S.SpecQueueDropped = R.u64();
}

void writeCachedScore(ByteWriter &W, const CachedScore &S) {
  W.u8(S.LL.has_value() ? 1 : 0);
  W.f64(S.LL.value_or(0));
  W.u8(uint8_t(S.Reason));
}

bool readCachedScore(ByteReader &R, CachedScore &S) {
  uint8_t Has = R.u8();
  double LL = R.f64();
  uint8_t Reason = R.u8();
  if (R.Failed || Has > 1 || Reason > uint8_t(RejectReason::Static))
    return false;
  S = Has ? CachedScore(LL) : CachedScore(RejectReason(Reason));
  return true;
}

void writeCacheState(ByteWriter &W, const ScoreCacheState &C) {
  W.u64(C.Evictions);
  W.u64(C.Epoch);
  W.u64(C.WarmHits);
  W.u64(C.WarmEvictions);
  W.u64(C.Entries.size());
  for (const SavedCacheEntry &E : C.Entries) {
    W.u64(E.Key);
    writeCachedScore(W, E.S);
    W.u64(E.Epoch);
  }
}

bool readCacheState(ByteReader &R, ScoreCacheState &C) {
  C.Evictions = R.u64();
  C.Epoch = R.u64();
  C.WarmHits = R.u64();
  C.WarmEvictions = R.u64();
  uint64_t N = R.u64();
  if (R.Failed || N > 1u << 26)
    return false;
  C.Entries.reserve(size_t(N));
  for (uint64_t I = 0; I != N; ++I) {
    SavedCacheEntry E;
    E.Key = R.u64();
    if (!readCachedScore(R, E.S))
      return false;
    E.Epoch = R.u64();
    C.Entries.push_back(E);
  }
  return !R.Failed;
}

void writeChain(ByteWriter &W, const ChainCheckpoint &C) {
  W.u32(C.ChainIndex);
  W.u32(C.NextIter);
  W.u8(C.Initialized ? 1 : 0);
  W.f64(C.CurrentLL);
  W.f64(C.BestLL);
  writeExprList(W, C.Current);
  writeExprList(W, C.Best);
  writeStats(W, C.Stats);
  writeCacheState(W, C.Cache);
}

bool readChain(ByteReader &R, ChainCheckpoint &C) {
  C.ChainIndex = R.u32();
  C.NextIter = R.u32();
  C.Initialized = R.u8() != 0;
  C.CurrentLL = R.f64();
  C.BestLL = R.f64();
  if (!readExprList(R, 0, C.Current) || !readExprList(R, 0, C.Best))
    return false;
  readStats(R, C.Stats);
  return readCacheState(R, C.Cache) && !R.Failed;
}

constexpr char CheckpointMagic[8] = {'P', 'S', 'K', 'C', 'K', 'P', 'T', '\0'};

} // namespace

//===----------------------------------------------------------------------===//
// Snapshot (de)serialization
//===----------------------------------------------------------------------===//

ChainCheckpoint ChainCheckpoint::clone() const {
  ChainCheckpoint C;
  C.ChainIndex = ChainIndex;
  C.NextIter = NextIter;
  C.Initialized = Initialized;
  C.CurrentLL = CurrentLL;
  C.BestLL = BestLL;
  C.Current.reserve(Current.size());
  for (const ExprPtr &E : Current)
    C.Current.push_back(E->clone());
  C.Best.reserve(Best.size());
  for (const ExprPtr &E : Best)
    C.Best.push_back(E->clone());
  C.Stats = Stats;
  C.Cache = Cache;
  return C;
}

RunCheckpoint RunCheckpoint::clone() const {
  RunCheckpoint C;
  C.Seed = Seed;
  C.Chains = Chains;
  C.IterationTarget = IterationTarget;
  C.NumHoles = NumHoles;
  C.SketchHash = SketchHash;
  C.DatasetFingerprint = DatasetFingerprint;
  C.WalkFingerprint = WalkFingerprint;
  C.ChainStates.reserve(ChainStates.size());
  for (const ChainCheckpoint &CC : ChainStates)
    C.ChainStates.push_back(CC.clone());
  return C;
}

void psketch::serializeExpr(std::vector<uint8_t> &Out, const Expr &E) {
  ByteWriter W{Out};
  writeExpr(W, E);
}

ExprPtr psketch::deserializeExpr(const uint8_t **P, const uint8_t *End) {
  ByteReader R{*P, End};
  ExprPtr E = readExpr(R, 0);
  *P = R.P;
  return R.Failed ? nullptr : std::move(E);
}

std::vector<uint8_t> psketch::serializeCheckpoint(const RunCheckpoint &CP) {
  std::vector<uint8_t> Payload;
  {
    ByteWriter W{Payload};
    W.u64(CP.Seed);
    W.u32(CP.Chains);
    W.u32(CP.IterationTarget);
    W.u32(CP.NumHoles);
    W.u64(CP.SketchHash);
    W.u64(CP.DatasetFingerprint);
    W.u64(CP.WalkFingerprint);
    W.u32(uint32_t(CP.ChainStates.size()));
    for (const ChainCheckpoint &C : CP.ChainStates)
      writeChain(W, C);
  }
  std::vector<uint8_t> Out;
  Out.reserve(Payload.size() + 24);
  ByteWriter W{Out};
  for (char C : CheckpointMagic)
    W.u8(uint8_t(C));
  W.u32(CheckpointVersion);
  W.u64(Payload.size());
  W.u32(checkpointCrc32(Payload.data(), Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

bool psketch::parseCheckpoint(const std::vector<uint8_t> &Bytes,
                              RunCheckpoint &Out, std::string &Error) {
  constexpr size_t HeaderSize = 8 + 4 + 8 + 4;
  if (Bytes.size() < HeaderSize) {
    Error = "checkpoint truncated: shorter than the header";
    return false;
  }
  if (std::memcmp(Bytes.data(), CheckpointMagic, 8) != 0) {
    Error = "not a psketch checkpoint (bad magic)";
    return false;
  }
  ByteReader H{Bytes.data() + 8, Bytes.data() + HeaderSize};
  uint32_t Version = H.u32();
  uint64_t PayloadSize = H.u64();
  uint32_t Crc = H.u32();
  if (Version != CheckpointVersion) {
    Error = "unsupported checkpoint version " + std::to_string(Version) +
            " (this build reads version " +
            std::to_string(CheckpointVersion) + ")";
    return false;
  }
  if (Bytes.size() - HeaderSize != PayloadSize) {
    Error = "checkpoint truncated: payload is " +
            std::to_string(Bytes.size() - HeaderSize) + " bytes, header says " +
            std::to_string(PayloadSize);
    return false;
  }
  const uint8_t *Payload = Bytes.data() + HeaderSize;
  if (checkpointCrc32(Payload, PayloadSize) != Crc) {
    Error = "checkpoint corrupted: CRC mismatch";
    return false;
  }
  ByteReader R{Payload, Payload + PayloadSize};
  RunCheckpoint CP;
  CP.Seed = R.u64();
  CP.Chains = R.u32();
  CP.IterationTarget = R.u32();
  CP.NumHoles = R.u32();
  CP.SketchHash = R.u64();
  CP.DatasetFingerprint = R.u64();
  CP.WalkFingerprint = R.u64();
  uint32_t N = R.u32();
  if (R.Failed || N != CP.Chains || N > 1u << 16) {
    Error = "checkpoint corrupted: malformed chain table";
    return false;
  }
  CP.ChainStates.resize(N);
  for (uint32_t I = 0; I != N; ++I) {
    if (!readChain(R, CP.ChainStates[I])) {
      Error = "checkpoint corrupted: malformed state of chain " +
              std::to_string(I);
      return false;
    }
  }
  if (R.P != R.End) {
    Error = "checkpoint corrupted: trailing bytes after the last chain";
    return false;
  }
  Out = std::move(CP);
  return true;
}

//===----------------------------------------------------------------------===//
// Crash-safe file I/O
//===----------------------------------------------------------------------===//

namespace {

bool fsyncPath(const std::string &Path, bool Directory, std::string &Error) {
  int Fd = ::open(Path.c_str(), Directory ? O_RDONLY | O_DIRECTORY : O_RDONLY);
  if (Fd < 0) {
    // Some filesystems refuse O_DIRECTORY opens; the rename is still
    // atomic, only its durability ordering is weakened.  Not an error.
    if (Directory)
      return true;
    Error = "cannot open '" + Path + "' for fsync";
    return false;
  }
  int Rc = ::fsync(Fd);
  ::close(Fd);
  if (Rc != 0 && !Directory) {
    Error = "fsync('" + Path + "') failed";
    return false;
  }
  return true;
}

std::string dirnameOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

} // namespace

bool psketch::writeCheckpointFile(const std::string &Path,
                                  const RunCheckpoint &CP, unsigned Keep,
                                  std::string &Error) {
  std::vector<uint8_t> Bytes = serializeCheckpoint(CP);
  const std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Error = "cannot create '" + Tmp + "'";
    return false;
  }
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::write(Fd, Bytes.data() + Off, Bytes.size() - Off);
    if (N <= 0) {
      ::close(Fd);
      ::unlink(Tmp.c_str());
      Error = "short write to '" + Tmp + "'";
      return false;
    }
    Off += size_t(N);
  }
  if (::fsync(Fd) != 0) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    Error = "fsync('" + Tmp + "') failed";
    return false;
  }
  ::close(Fd);

  // Rotate older snapshots: Path -> Path.1 -> ... -> Path.(Keep-1).
  // A missing link in the chain is fine (first writes, deleted files).
  for (unsigned I = Keep > 0 ? Keep - 1 : 0; I > 0; --I) {
    std::string From = I == 1 ? Path : Path + "." + std::to_string(I - 1);
    std::string To = Path + "." + std::to_string(I);
    ::rename(From.c_str(), To.c_str());
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::unlink(Tmp.c_str());
    Error = "rename('" + Tmp + "' -> '" + Path + "') failed";
    return false;
  }
  return fsyncPath(dirnameOf(Path), /*Directory=*/true, Error);
}

bool psketch::readCheckpointFile(const std::string &Path, RunCheckpoint &Out,
                                 std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open checkpoint '" + Path + "'";
    return false;
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr) {
    Error = "error reading checkpoint '" + Path + "'";
    return false;
  }
  return parseCheckpoint(Bytes, Out, Error);
}

//===----------------------------------------------------------------------===//
// CheckpointCoordinator
//===----------------------------------------------------------------------===//

CheckpointCoordinator::CheckpointCoordinator(std::string Path, unsigned Keep,
                                             RunCheckpoint Header)
    : Path(std::move(Path)), Keep(Keep), Snapshot(std::move(Header)) {
  Snapshot.ChainStates.clear();
  Snapshot.ChainStates.resize(Snapshot.Chains);
  Deposited.assign(Snapshot.Chains, false);
}

void CheckpointCoordinator::deposit(uint32_t Chain, ChainCheckpoint CP) {
  std::lock_guard<std::mutex> Lock(M);
  if (Chain >= Snapshot.ChainStates.size())
    return;
  CP.ChainIndex = Chain;
  Snapshot.ChainStates[Chain] = std::move(CP);
  Deposited[Chain] = true;
  for (bool D : Deposited)
    if (!D)
      return;
  writeLocked();
}

bool CheckpointCoordinator::flush() {
  std::lock_guard<std::mutex> Lock(M);
  for (bool D : Deposited)
    if (!D)
      return false;
  return writeLocked();
}

bool CheckpointCoordinator::writeLocked() {
  std::string Err;
  if (writeCheckpointFile(Path, Snapshot, Keep, Err))
    return true;
  if (Error.empty())
    Error = Err;
  return false;
}

std::string CheckpointCoordinator::error() const {
  std::lock_guard<std::mutex> Lock(M);
  return Error;
}
