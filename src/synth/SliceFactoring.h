//===- synth/SliceFactoring.h - Slice plans and group value caches --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synth side of the factored likelihood (DESIGN.md §14).  A
/// SlicePlan is computed once per sketch from the hole→observe
/// dependence graph (analysis/DependenceGraph.h): each likelihood term
/// — rho plus one per modeled observed column, in the factored term
/// order — gets the hole mask its value can depend on, and terms with
/// identical masks form one evaluation group.  During the MH walk a
/// chain-private SliceValueCache keeps each group's per-term row
/// vectors keyed by the group's footprint sub-tuple, so a proposal
/// that mutates hole H only re-evaluates the groups whose mask
/// contains H; holes outside every mask (the plan's dead mask) cannot
/// change any score at all and their proposals skip scoring entirely
/// (`synth.slice_skip`).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SLICEFACTORING_H
#define PSKETCH_SYNTH_SLICEFACTORING_H

#include "analysis/DependenceGraph.h"
#include "likelihood/FactoredLikelihood.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

namespace psketch {

/// The per-sketch factoring plan: term hole-masks, the term→group
/// partition, and each group's hole footprint.
struct SlicePlan {
  /// False when the analysis could not produce a usable plan (no
  /// holes, saturated masks, schema mismatch): callers fall back to
  /// the monolithic path and skip nothing.
  bool Usable = false;
  /// Hole mask per term; term 0 is rho, terms 1..N the modeled
  /// observed columns column-ascending (the runTerms order).
  std::vector<HoleMask> TermMask;
  /// Dense term→group assignment (terms with equal masks share one
  /// group, so one cache entry covers them).
  std::vector<unsigned> GroupOfTerm;
  unsigned NumGroups = 0;
  /// Sorted hole ids of each group's mask — the sub-tuple a group's
  /// cache key hashes.
  std::vector<std::vector<unsigned>> GroupHoles;
  /// Union of every term mask: holes that can influence some score.
  HoleMask LiveMask = 0;
  /// One bit per hole of the sketch.
  HoleMask AllMask = 0;

  /// Holes whose mutation provably leaves every term — and so the
  /// total score — bit-identical.
  HoleMask deadMask() const { return AllMask & ~LiveMask; }

  /// The plan as the likelihood layer's plain partition.
  TermPartition partition() const {
    TermPartition P;
    P.GroupOfTerm = GroupOfTerm;
    P.NumGroups = NumGroups;
    return P;
  }
};

/// Builds the plan for \p Template (lowered with KeepHoles) against
/// the observed-slot map of the dataset.  \p NumHoles is the sketch's
/// hole count (hole ids are contiguous from 0).  Returns an unusable
/// plan when the sketch is hole-free or dependence saturated.
SlicePlan buildSlicePlan(const LoweredProgram &Template,
                         const std::unordered_map<std::string, unsigned>
                             &Observed,
                         unsigned NumHoles);

/// Footprint key of group \p G under a completion tuple: a structural
/// hash over exactly the completions of the group's holes, in hole-id
/// order.  Two tuples agreeing on the footprint produce bit-identical
/// term values for the group, whatever the other holes do.
std::uint64_t sliceGroupKey(const SlicePlan &Plan, unsigned G,
                            const std::vector<ExprPtr> &Completions);

/// Chain-private LRU of per-group term row values.  An entry holds one
/// row vector per member term of the group (group-term order); values
/// are shared_ptr so an entry can be evicted while a borrower is still
/// recombining it.
class SliceValueCache {
public:
  using Value = std::shared_ptr<const std::vector<std::vector<double>>>;

  explicit SliceValueCache(unsigned NumGroups, size_t PerGroupCapacity = 8)
      : Entries(NumGroups), Capacity(PerGroupCapacity) {}

  /// Cached rows of group \p G under footprint \p Key, or null.
  /// A hit refreshes the entry's LRU position.
  Value lookup(unsigned G, std::uint64_t Key) {
    std::vector<Entry> &E = Entries[G];
    for (size_t I = 0; I != E.size(); ++I) {
      if (E[I].Key != Key)
        continue;
      if (I != 0)
        std::rotate(E.begin(), E.begin() + I, E.begin() + I + 1);
      return E.front().Rows;
    }
    return nullptr;
  }

  void insert(unsigned G, std::uint64_t Key, Value Rows) {
    std::vector<Entry> &E = Entries[G];
    if (E.size() == Capacity)
      E.pop_back();
    E.insert(E.begin(), Entry{Key, std::move(Rows)});
  }

private:
  struct Entry {
    std::uint64_t Key = 0;
    Value Rows;
  };
  std::vector<std::vector<Entry>> Entries;
  size_t Capacity;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SLICEFACTORING_H
