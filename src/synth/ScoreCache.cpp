//===- synth/ScoreCache.cpp - LRU memo table for candidate scores ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/ScoreCache.h"

using namespace psketch;

const char *psketch::rejectReasonName(RejectReason R) {
  switch (R) {
  case RejectReason::None:
    return "none";
  case RejectReason::Type:
    return "type";
  case RejectReason::Domain:
    return "domain";
  case RejectReason::Static:
    return "static";
  }
  return "none";
}

std::optional<CachedScore> ScoreCache::lookup(uint64_t Key) {
  auto It = Map.find(Key);
  if (It == Map.end())
    return std::nullopt;
  Entry &E = *It->second;
  if (E.Epoch < CurrentEpoch) {
    ++WarmHits;
    E.Epoch = CurrentEpoch; // Count each survivor once per epoch.
  }
  Order.splice(Order.begin(), Order, It->second);
  return E.S;
}

std::optional<CachedScore> ScoreCache::peek(uint64_t Key) const {
  auto It = Map.find(Key);
  if (It == Map.end())
    return std::nullopt;
  return It->second->S;
}

void ScoreCache::insert(uint64_t Key, CachedScore S) {
  if (Cap == 0)
    return;
  auto It = Map.find(Key);
  if (It != Map.end()) {
    It->second->S = S;
    It->second->Epoch = CurrentEpoch;
    Order.splice(Order.begin(), Order, It->second);
    if (Shared)
      mirrorInsert(Key, S);
    return;
  }
  if (Map.size() == Cap) {
    const Entry &Victim = Order.back();
    if (Victim.Epoch < CurrentEpoch)
      ++WarmEvictions;
    if (Shared)
      mirrorErase(Victim.Key);
    Map.erase(Victim.Key);
    Order.pop_back();
    ++Evictions;
  }
  Order.push_front(Entry{Key, S, CurrentEpoch});
  Map[Key] = Order.begin();
  if (Shared)
    mirrorInsert(Key, S);
}

void ScoreCache::setShared(bool Enable) {
  if (Shared == Enable)
    return;
  Shared = Enable;
  for (Stripe &St : Stripes) {
    std::lock_guard<std::mutex> Lock(St.M);
    St.Map.clear();
  }
  if (!Enable)
    return;
  for (const Entry &E : Order) {
    Stripe &St = Stripes[E.Key % NumStripes];
    std::lock_guard<std::mutex> Lock(St.M);
    St.Map[E.Key] = E.S;
  }
}

std::optional<CachedScore> ScoreCache::peekShared(uint64_t Key) const {
  const Stripe &St = Stripes[Key % NumStripes];
  std::lock_guard<std::mutex> Lock(St.M);
  auto It = St.Map.find(Key);
  if (It == St.Map.end())
    return std::nullopt;
  return It->second;
}

ScoreCacheState ScoreCache::saveState() const {
  ScoreCacheState State;
  State.Evictions = Evictions;
  State.Epoch = CurrentEpoch;
  State.WarmHits = WarmHits;
  State.WarmEvictions = WarmEvictions;
  State.Entries.reserve(Order.size());
  for (const Entry &E : Order)
    State.Entries.push_back(SavedCacheEntry{E.Key, E.S, E.Epoch});
  return State;
}

void ScoreCache::restoreState(const ScoreCacheState &State) {
  Evictions = State.Evictions;
  CurrentEpoch = State.Epoch;
  WarmHits = State.WarmHits;
  WarmEvictions = State.WarmEvictions;
  Order.clear();
  Map.clear();
  for (const SavedCacheEntry &E : State.Entries) {
    if (Cap == 0 || Order.size() == Cap)
      break;
    Order.push_back(Entry{E.Key, E.S, E.Epoch});
    Map[E.Key] = std::prev(Order.end());
  }
  if (Shared) {
    Shared = false;    // Force a rebuild from the restored contents.
    setShared(true);
  }
}

void ScoreCache::mirrorInsert(uint64_t Key, const CachedScore &S) {
  Stripe &St = Stripes[Key % NumStripes];
  std::lock_guard<std::mutex> Lock(St.M);
  St.Map[Key] = S;
}

void ScoreCache::mirrorErase(uint64_t Key) {
  Stripe &St = Stripes[Key % NumStripes];
  std::lock_guard<std::mutex> Lock(St.M);
  St.Map.erase(Key);
}
