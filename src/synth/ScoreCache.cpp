//===- synth/ScoreCache.cpp - LRU memo table for candidate scores ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/ScoreCache.h"

using namespace psketch;

const char *psketch::rejectReasonName(RejectReason R) {
  switch (R) {
  case RejectReason::None:
    return "none";
  case RejectReason::Type:
    return "type";
  case RejectReason::Domain:
    return "domain";
  case RejectReason::Static:
    return "static";
  }
  return "none";
}

std::optional<CachedScore> ScoreCache::lookup(uint64_t Key) {
  auto It = Map.find(Key);
  if (It == Map.end())
    return std::nullopt;
  Order.splice(Order.begin(), Order, It->second);
  return It->second->second;
}

void ScoreCache::insert(uint64_t Key, CachedScore S) {
  if (Cap == 0)
    return;
  auto It = Map.find(Key);
  if (It != Map.end()) {
    It->second->second = S;
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  if (Map.size() == Cap) {
    Map.erase(Order.back().first);
    Order.pop_back();
    ++Evictions;
  }
  Order.emplace_front(Key, S);
  Map[Key] = Order.begin();
}
