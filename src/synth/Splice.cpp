//===- synth/Splice.cpp - Instantiating sketches with completions --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Splice.h"

#include "ast/ASTUtil.h"
#include "support/Casting.h"

#include <cassert>
#include <functional>

using namespace psketch;

namespace {

void spliceExpr(ExprPtr &Slot, const std::vector<const Expr *> &Completions) {
  if (auto *H = dyn_cast<HoleExpr>(Slot.get())) {
    assert(H->getHoleId() < Completions.size() &&
           Completions[H->getHoleId()] && "missing completion for hole");
    std::vector<const Expr *> Actuals;
    Actuals.reserve(H->getNumArgs());
    for (const ExprPtr &A : H->getArgs())
      Actuals.push_back(A.get());
    Slot = substituteHoleArgs(*Completions[H->getHoleId()], Actuals);
    return;
  }
  forEachChildSlot(*Slot, [&](ExprPtr &Child) {
    spliceExpr(Child, Completions);
  });
}

} // namespace

std::unique_ptr<Program>
psketch::spliceCompletions(const Program &Sketch,
                           const std::vector<const Expr *> &Completions) {
  std::unique_ptr<Program> Result = Sketch.clone();
  forEachStmtExprSlot(Result->getBody(), [&](ExprPtr &E) {
    spliceExpr(E, Completions);
  });
  return Result;
}

std::unique_ptr<Program>
psketch::spliceCompletions(const Program &Sketch,
                           const std::vector<ExprPtr> &Completions) {
  std::vector<const Expr *> Raw;
  Raw.reserve(Completions.size());
  for (const ExprPtr &C : Completions)
    Raw.push_back(C.get());
  return spliceCompletions(Sketch, Raw);
}
