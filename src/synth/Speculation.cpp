//===- synth/Speculation.cpp - Speculative MH proposal prefetching --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Speculation.h"

#include "ast/ASTUtil.h"
#include "likelihood/Likelihood.h"
#include "obs/StageTimer.h"
#include "support/Rng.h"
#include "support/SpinWait.h"

#include <cassert>
#include <chrono>

using namespace psketch;

namespace {

/// Busy-wait budget before any wait here falls back to the condition
/// variable.  Node computes are typically tens of microseconds — the
/// same order as a sleep/wake round trip — so a bounded spin usually
/// observes Done at a fraction of the cost of parking.
constexpr uint64_t SpecSpinBudgetNs = 150000;

uint64_t nsSince(std::chrono::steady_clock::time_point T0) {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - T0)
                      .count());
}

/// Level of heap index \p I (root is level 0).
unsigned levelOf(size_t I) {
  unsigned L = 0;
  while ((size_t(2) << L) - 1 <= I)
    ++L;
  return L;
}

} // namespace

SpeculationTree::SpeculationTree(unsigned Depth, ThreadPool *Pool,
                                 ThreadPool::Group &Group, ComputeFn Compute,
                                 ValidFn Valid, bool UseScratch)
    : Depth(Depth), Pool(Pool), Group(Group), Compute(std::move(Compute)),
      Valid(std::move(Valid)), UseScratch(UseScratch) {
  assert(Depth >= 1 && Depth <= 16 && "unreasonable speculation depth");
  Nodes.reserve((size_t(1) << Depth) - 1);
  for (size_t I = 0, E = (size_t(1) << Depth) - 1; I != E; ++I)
    Nodes.push_back(std::make_unique<Node>());
}

SpeculationTree::~SpeculationTree() {
  // Never let a job outlive the node storage it captures.  endBlock
  // deliberately does not drain the group (a dequeued-but-unclaimed
  // job may straggle past it, harmlessly), so the full wait happens
  // exactly once, here.
  if (Pool) {
    Pool->cancel(Group);
    Pool->wait(Group);
  }
}

void SpeculationTree::beginBlock(const std::vector<ExprPtr> &Current,
                                 Mutator &Mut, ProposalPool &PPool,
                                 const ScoreCache *Cache, uint64_t ChainSeed,
                                 unsigned BaseIter, unsigned Len) {
  assert(!inBlock() && "previous block not torn down");
  assert(Len >= 1 && Len <= Depth && "block length out of range");
  BlockLen = Len;
  Level = 0;
  Cur = 0;
  BlockNodes = (size_t(1) << Len) - 1;
  ++Stats.Blocks;

  // Expand in heap order.  Each node's proposal is a pure function of
  // (its hypothetical chain state, the iteration-keyed stream seed), so
  // expansion order — and therefore the pool's reuse counters and the
  // dispatch queue — is deterministic.  State[] points at the block's
  // Current or at an ancestor's Proposal; the pointers are used only
  // inside this function (realization may move an accepted proposal
  // out of its node afterwards).
  const bool Peekable = Cache && Cache->capacity() != 0;
  std::vector<const std::vector<ExprPtr> *> State(BlockNodes, nullptr);
  std::vector<uint8_t> Reach(BlockNodes, 0);
  State[0] = &Current;
  Reach[0] = 1;
  for (size_t I = 0; I != BlockNodes; ++I) {
    if (!Reach[I])
      continue;
    Node &N = *Nodes[I];
    N.Live = true;
    ++Stats.Nodes;
    const unsigned L = levelOf(I);
    N.Proposal = Mut.propose(
        *State[I], deriveStreamSeed(ChainSeed, SpecStreamPropose, BaseIter + L),
        &PPool);
    N.Ops = Mut.lastMutationOps();
    N.QRatio = Mut.lastProposalLogQRatio();
    N.TypeValid = Valid(N.Proposal);
    // Can this node's iteration possibly accept?  Its accept subtree is
    // unreachable otherwise and need not be expanded.
    bool CanAccept = N.TypeValid;
    bool Resolved = false;
    if (N.TypeValid && Peekable) {
      N.Key = hashExprTuple(N.Proposal);
      // Recency-free peek: every peek of this block happens before any
      // of its inserts, so the set of peek-resolved nodes is a pure
      // function of realized history — never of worker timing.
      if (std::optional<CachedScore> Hit = Cache->peek(N.Key)) {
        N.R.Verdict = *Hit;
        N.PeekResolved = true;
        ++Stats.PeekResolved;
        N.State.store(NodeState::Done);
        Resolved = true;
        CanAccept = Hit->valid();
      }
    }
    // Dispatch immediately rather than after the full expansion pass:
    // the root's compute then overlaps the proposes of the rest of the
    // block.  Safe because a worker reads only its own node's Proposal,
    // and expansion reads ancestor Proposals — all reads after this
    // point.
    if (!N.TypeValid) {
      // The walk rejects these before scoring; give them a terminal
      // verdict so nothing ever waits on them.
      N.R.Verdict = CachedScore(RejectReason::Type);
      N.State.store(NodeState::Done);
    } else if (!Resolved) {
      N.State.store(NodeState::Queued);
      if (Pool)
        Pool->submit(Group, [this, &N] { runNode(N); });
    }
    if (L + 1 < Len) {
      const size_t Accept = 2 * I + 1, Reject = 2 * I + 2;
      Reach[Reject] = 1;
      State[Reject] = State[I]; // Rejection leaves the state unchanged.
      if (CanAccept) {
        Reach[Accept] = 1;
        State[Accept] = &N.Proposal;
      }
    }
  }
}

void SpeculationTree::runNode(Node &N) {
  NodeState Expected = NodeState::Queued;
  if (!N.State.compare_exchange_strong(Expected, NodeState::Running))
    return; // Stolen by the main thread or cancelled.
  CompileScratch *S = acquireScratch();
  Compute(N.Proposal, N.Key, N.R, S);
  releaseScratch(S);
  markDone(N);
}

void SpeculationTree::markDone(Node &N) {
  {
    // Store under the mutex so the await() predicate cannot miss the
    // transition between its check and its wait.
    std::lock_guard<std::mutex> Lock(DoneMtx);
    N.State.store(NodeState::Done);
  }
  DoneCv.notify_all();
}

void SpeculationTree::await(Node &N) {
  NodeState S = N.State.load();
  assert(S != NodeState::Cancelled && "awaiting a cancelled node");
  if (S == NodeState::Done)
    return;
  if (S == NodeState::Queued) {
    NodeState Expected = NodeState::Queued;
    if (N.State.compare_exchange_strong(Expected, NodeState::Running)) {
      // Steal: compute inline rather than idling behind the queue.
      // With no pool at all this is how every realized node resolves —
      // the sequential walk's compute, just routed through the tree.
      CompileScratch *Sc = acquireScratch();
      Compute(N.Proposal, N.Key, N.R, Sc);
      releaseScratch(Sc);
      markDone(N);
      return;
    }
  }
  // A worker owns it; the wait (not the worker's compute) is the
  // speculation layer's coordination cost.  Spin first: the worker is
  // usually within a few tens of microseconds of finishing, and a
  // sleep/wake round trip costs about that much by itself.
  ScopedStage Span(Stage::Speculate);
  if (spinBriefly(
          [&N] {
            return N.State.load(std::memory_order_acquire) ==
                   NodeState::Done;
          },
          SpecSpinBudgetNs))
    return;
  std::unique_lock<std::mutex> Lock(DoneMtx);
  DoneCv.wait(Lock, [&N] { return N.State.load() == NodeState::Done; });
}

void SpeculationTree::advance(bool Accepted) {
  assert(inBlock() && Level < BlockLen && "advance outside a block");
  Node &N = *Nodes[Cur];
  assert(N.Live && "realized path entered an unexpanded node");
  if (!N.Consumed) {
    // The realized walk resolved this iteration without the node's
    // compute (cache hit in replay); don't let a queued job spend
    // anything on it.
    NodeState Expected = NodeState::Queued;
    N.State.compare_exchange_strong(Expected, NodeState::Cancelled);
  }
  const size_t Win = Accepted ? 2 * Cur + 1 : 2 * Cur + 2;
  const size_t Lose = Accepted ? 2 * Cur + 2 : 2 * Cur + 1;
  if (Level + 1 < BlockLen) {
    const auto T0 = std::chrono::steady_clock::now();
    cancelSubtree(Lose);
    Stats.CancelNs += nsSince(T0);
    Cur = Win;
  }
  ++Level;
}

void SpeculationTree::cancelSubtree(size_t Root) {
  if (Root >= BlockNodes)
    return;
  Node &N = *Nodes[Root];
  if (N.Live) {
    NodeState Expected = NodeState::Queued;
    N.State.compare_exchange_strong(Expected, NodeState::Cancelled);
    // Running nodes finish on their own (cooperative protocol — see
    // ThreadPool::cancel); their time is accounted as waste.
  }
  cancelSubtree(2 * Root + 1);
  cancelSubtree(2 * Root + 2);
}

void SpeculationTree::endBlock(ProposalPool &PPool) {
  assert(inBlock() && "no block to tear down");
  const auto T0 = std::chrono::steady_clock::now();
  for (size_t I = 0; I != BlockNodes; ++I) {
    Node &N = *Nodes[I];
    if (!N.Live)
      continue;
    NodeState Expected = NodeState::Queued;
    N.State.compare_exchange_strong(Expected, NodeState::Cancelled);
  }
  if (Pool) {
    // Drop this chain's still-queued jobs (their CAS would no-op, but
    // dropping skips the dequeue churn), then wait out only the nodes
    // some worker actually claimed: those are the only jobs that write
    // node state, and Running→Done is their sole remaining transition.
    // A dequeued-but-unclaimed straggler is harmless — its claiming CAS
    // loses against the Cancelled (or the next block's Queued) value
    // and the job returns without touching anything, so there is no
    // need to pay a full group barrier here; the destructor drains.
    Stats.QueueDropped += Pool->cancel(Group);
    for (size_t I = 0; I != BlockNodes; ++I) {
      Node &N = *Nodes[I];
      if (!N.Live ||
          N.State.load(std::memory_order_acquire) != NodeState::Running)
        continue;
      if (spinBriefly(
              [&N] {
                return N.State.load(std::memory_order_acquire) ==
                       NodeState::Done;
              },
              SpecSpinBudgetNs))
        continue;
      std::unique_lock<std::mutex> Lock(DoneMtx);
      DoneCv.wait(Lock, [&N] { return N.State.load() == NodeState::Done; });
    }
  }
  for (size_t I = 0; I != BlockNodes; ++I) {
    Node &N = *Nodes[I];
    if (!N.Live)
      continue;
    if (N.Consumed) {
      ++Stats.Consumed;
      Stats.PredictedNs += N.R.ComputeNs;
    } else if (N.State.load() == NodeState::Done && N.TypeValid &&
               !N.PeekResolved && !N.R.FromMirror) {
      ++Stats.Wasted; // Mispredicted: computed, never consumed.
      Stats.WastedNs += N.R.ComputeNs;
    } else if (N.State.load() == NodeState::Cancelled) {
      ++Stats.CancelledEarly;
    }
    if (N.Proposal.capacity())
      PPool.release(std::move(N.Proposal));
    N.Proposal = std::vector<ExprPtr>();
    N.Ops.clear();
    N.QRatio = 0;
    N.Key = 0;
    N.TypeValid = N.Live = N.PeekResolved = N.Consumed = false;
    N.R = SpecCompute();
    N.State.store(NodeState::Cancelled);
  }
  Stats.CancelNs += nsSince(T0);
  BlockLen = 0;
  Level = 0;
  Cur = 0;
  BlockNodes = 0;
}

CompileScratch *SpeculationTree::acquireScratch() {
  if (!UseScratch)
    return nullptr;
  {
    std::lock_guard<std::mutex> Lock(ScratchMtx);
    if (!FreeScratch.empty()) {
      CompileScratch *S = FreeScratch.back().release();
      FreeScratch.pop_back();
      return S;
    }
  }
  return new CompileScratch();
}

void SpeculationTree::releaseScratch(CompileScratch *S) {
  if (!S)
    return;
  std::lock_guard<std::mutex> Lock(ScratchMtx);
  FreeScratch.push_back(std::unique_ptr<CompileScratch>(S));
}
