//===- synth/Generator.h - Typed random completion generation ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random well-typed hole completions from the Figure 3
/// grammar "with a bias to replace all non-terminals with terminals"
/// (mutation Operation-4 and the initial draw H ~ Sigma_P[.] of
/// Algorithm 1, line 2).  Distribution parameters are restricted to
/// variables (hole formals) and constants, per Section 4.1, and constant
/// leaves are drawn from parameter-appropriate proposal ranges
/// (probabilities from [0,1], scales positive).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_GENERATOR_H
#define PSKETCH_SYNTH_GENERATOR_H

#include "ast/Expr.h"
#include "sem/TypeCheck.h"
#include "support/Rng.h"

#include <vector>

namespace psketch {

/// Grammar and sizing knobs for random completion generation.
struct GeneratorConfig {
  /// Maximum expression depth; at the limit only terminals are drawn.
  unsigned MaxDepth = 4;

  /// Probability of stopping at a terminal before the depth limit (the
  /// paper's terminal bias).
  double TerminalBias = 0.55;

  /// Real-valued constants are proposed from Gaussian(0, ConstSd)
  /// except in distribution-parameter positions, which use
  /// parameter-specific ranges.
  double ConstSd = 30.0;

  /// Operators available to generated completions.  Figure 3 includes
  /// x, but the Figure 6 product rule is a *density* approximation that
  /// diverges badly from the sampling semantics when both operands are
  /// random, and MH happily exploits that gap; products are therefore
  /// opt-in (RATS enables them for its linear model, where x is the
  /// sound Known-times-MoG scaling).
  std::vector<BinaryOp> ArithOps = {BinaryOp::Add, BinaryOp::Sub};
  std::vector<BinaryOp> LogicalOps = {BinaryOp::And, BinaryOp::Or};
  std::vector<BinaryOp> CompareOps = {BinaryOp::Gt, BinaryOp::Lt};

  /// Distributions available to generated completions.
  std::vector<DistKind> Dists = {DistKind::Gaussian, DistKind::Bernoulli,
                                 DistKind::Beta, DistKind::Gamma};

  /// Structural features.
  bool AllowIte = true;
  bool AllowNot = true;
  bool AllowSample = true;
};

/// The role a generated position plays; selects constant proposal
/// ranges and enforces the distribution-parameter restriction.
enum class GenRole {
  Value,      ///< Ordinary expression position.
  DistMean,   ///< Location parameter (Gaussian mean).
  DistScale,  ///< Positive scale (sigma, Gamma scale, Beta/Gamma shape).
  DistProb,   ///< Probability in [0, 1] (Bernoulli).
};

/// Draws random well-typed completions for one hole signature.
class ExprGenerator {
public:
  ExprGenerator(const HoleSignature &Sig, const GeneratorConfig &Config,
                Rng &R)
      : Sig(Sig), Config(Config), R(R) {}

  /// A fresh completion of the hole's result kind.
  ExprPtr generate();

  /// A fresh subexpression of \p Kind at \p Depth (for Operation-4
  /// subtree regeneration).  \p Role restricts the shape in
  /// distribution-parameter positions.
  ExprPtr generate(ScalarKind Kind, unsigned Depth,
                   GenRole Role = GenRole::Value);

  /// A terminal (hole formal or constant) of \p Kind.
  ExprPtr generateTerminal(ScalarKind Kind, GenRole Role = GenRole::Value);

  /// A constant appropriate for \p Role.
  ExprPtr generateConstant(ScalarKind Kind, GenRole Role);

  /// Indices of hole formals whose kind is \p Kind.
  std::vector<unsigned> formalsOfKind(ScalarKind Kind) const;

private:
  ExprPtr generateSample(unsigned Depth);

  const HoleSignature &Sig;
  const GeneratorConfig &Config;
  Rng &R;
};

/// Log of the probability density that ExprGenerator::generate(Kind,
/// Depth, Role) under \p Sig and \p Config produces exactly the tree
/// \p E (mixing discrete structure probabilities with continuous
/// constant densities).  Returns -infinity for trees the generator
/// cannot produce.  Used by the approximate asymmetric MH proposal
/// ratio (Operation-4's reverse density) and validated against Monte
/// Carlo frequencies in tests.
double grammarLogProb(const Expr &E, const HoleSignature &Sig,
                      const GeneratorConfig &Config, ScalarKind Kind,
                      unsigned Depth = 0, GenRole Role = GenRole::Value);

} // namespace psketch

#endif // PSKETCH_SYNTH_GENERATOR_H
