//===- synth/Generator.cpp - Typed random completion generation ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Generator.h"

#include "support/Casting.h"
#include "support/Special.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace psketch;

std::vector<unsigned> ExprGenerator::formalsOfKind(ScalarKind Kind) const {
  std::vector<unsigned> Result;
  for (unsigned I = 0, E = unsigned(Sig.ArgKinds.size()); I != E; ++I) {
    ScalarKind K = Sig.ArgKinds[I];
    bool Numeric = K != ScalarKind::Bool;
    bool WantNumeric = Kind != ScalarKind::Bool;
    if (Numeric == WantNumeric)
      Result.push_back(I);
  }
  return Result;
}

ExprPtr ExprGenerator::generateConstant(ScalarKind Kind, GenRole Role) {
  if (Kind == ScalarKind::Bool)
    return ConstExpr::boolean(R.bernoulli(0.5));
  switch (Role) {
  case GenRole::DistProb:
    return ConstExpr::real(R.uniform(0.02, 0.98));
  case GenRole::DistScale:
    return ConstExpr::real(std::fabs(R.gaussian(0.0, Config.ConstSd)) + 0.5);
  case GenRole::DistMean:
  case GenRole::Value:
    return ConstExpr::real(R.gaussian(0.0, Config.ConstSd));
  }
  return ConstExpr::real(0.0);
}

ExprPtr ExprGenerator::generateTerminal(ScalarKind Kind, GenRole Role) {
  std::vector<unsigned> Formals = formalsOfKind(Kind);
  // Prefer formals when available: holes with dependences exist
  // precisely because the user believes the value depends on them.
  if (!Formals.empty() && R.bernoulli(0.6)) {
    unsigned I = Formals[R.index(Formals.size())];
    return std::make_unique<HoleArgExpr>(I, Sig.ArgKinds[I]);
  }
  return generateConstant(Kind, Role);
}

ExprPtr ExprGenerator::generateSample(unsigned Depth) {
  std::vector<DistKind> RealDists;
  for (DistKind D : Config.Dists)
    if (!distReturnsBool(D))
      RealDists.push_back(D);
  if (RealDists.empty())
    return generateTerminal(ScalarKind::Real);
  DistKind D = RealDists[R.index(RealDists.size())];
  std::vector<ExprPtr> Args;
  for (unsigned I = 0, E = distArity(D); I != E; ++I) {
    GenRole Role = GenRole::DistScale;
    if (D == DistKind::Gaussian && I == 0)
      Role = GenRole::DistMean;
    // Distribution parameters are variables or constants only
    // (Section 4.1), so draw terminals.
    Args.push_back(generateTerminal(ScalarKind::Real, Role));
    (void)Depth;
  }
  return std::make_unique<SampleExpr>(D, std::move(Args));
}

ExprPtr ExprGenerator::generate(ScalarKind Kind, unsigned Depth,
                                GenRole Role) {
  // Distribution-parameter positions never recurse.
  if (Role != GenRole::Value)
    return generateTerminal(Kind, Role);
  bool MustTerminate = Depth + 1 >= Config.MaxDepth;
  if (MustTerminate || R.bernoulli(Config.TerminalBias))
    return generateTerminal(Kind, Role);
  if (Kind == ScalarKind::Bool) {
    // Boolean productions: comparison, logic, Bernoulli draw, ite, not.
    enum { Cmp, Logic, Draw, Ite, Not, NumChoices };
    std::vector<double> W(NumChoices, 0.0);
    W[Cmp] = Config.CompareOps.empty() ? 0.0 : 3.0;
    W[Logic] = Config.LogicalOps.empty() ? 0.0 : 1.0;
    bool HasBern = false;
    for (DistKind D : Config.Dists)
      HasBern |= distReturnsBool(D);
    W[Draw] = (Config.AllowSample && HasBern) ? 1.5 : 0.0;
    W[Ite] = Config.AllowIte ? 0.5 : 0.0;
    W[Not] = Config.AllowNot ? 0.5 : 0.0;
    double Total = 0;
    for (double X : W)
      Total += X;
    if (Total == 0)
      return generateTerminal(Kind, Role);
    switch (R.weightedIndex(W)) {
    case Cmp: {
      BinaryOp Op = Config.CompareOps[R.index(Config.CompareOps.size())];
      return std::make_unique<BinaryExpr>(
          Op, generate(ScalarKind::Real, Depth + 1),
          generate(ScalarKind::Real, Depth + 1));
    }
    case Logic: {
      BinaryOp Op = Config.LogicalOps[R.index(Config.LogicalOps.size())];
      return std::make_unique<BinaryExpr>(
          Op, generate(ScalarKind::Bool, Depth + 1),
          generate(ScalarKind::Bool, Depth + 1));
    }
    case Draw:
      return std::make_unique<SampleExpr>(
          DistKind::Bernoulli,
          [&] {
            std::vector<ExprPtr> Args;
            Args.push_back(
                generateTerminal(ScalarKind::Real, GenRole::DistProb));
            return Args;
          }());
    case Ite:
      return std::make_unique<IteExpr>(
          generate(ScalarKind::Bool, Depth + 1),
          generate(ScalarKind::Bool, Depth + 1),
          generate(ScalarKind::Bool, Depth + 1));
    case Not:
      return std::make_unique<UnaryExpr>(
          UnaryOp::Not, generate(ScalarKind::Bool, Depth + 1));
    }
    return generateTerminal(Kind, Role);
  }
  // Numeric productions: arithmetic, distribution draw, ite.
  enum { Arith, Draw, Ite, NumChoices };
  std::vector<double> W(NumChoices, 0.0);
  W[Arith] = Config.ArithOps.empty() ? 0.0 : 1.5;
  W[Draw] = Config.AllowSample ? 2.5 : 0.0;
  W[Ite] = Config.AllowIte ? 0.6 : 0.0;
  double Total = 0;
  for (double X : W)
    Total += X;
  if (Total == 0)
    return generateTerminal(Kind, Role);
  switch (R.weightedIndex(W)) {
  case Arith: {
    BinaryOp Op = Config.ArithOps[R.index(Config.ArithOps.size())];
    return std::make_unique<BinaryExpr>(
        Op, generate(ScalarKind::Real, Depth + 1),
        generate(ScalarKind::Real, Depth + 1));
  }
  case Draw:
    return generateSample(Depth + 1);
  case Ite:
    return std::make_unique<IteExpr>(generate(ScalarKind::Bool, Depth + 1),
                                     generate(ScalarKind::Real, Depth + 1),
                                     generate(ScalarKind::Real, Depth + 1));
  }
  return generateTerminal(Kind, Role);
}

ExprPtr ExprGenerator::generate() {
  return generate(Sig.ResultKind, /*Depth=*/0);
}

//===----------------------------------------------------------------------===//
// grammarLogProb: the density of generate() producing a given tree.
//===----------------------------------------------------------------------===//

namespace {

constexpr double NegInf = -std::numeric_limits<double>::infinity();

/// Density of the role-specific constant proposal at value \p V.
double constantLogDensity(double V, ScalarKind Kind, GenRole Role,
                          const GeneratorConfig &Config) {
  if (Kind == ScalarKind::Bool)
    return std::log(0.5);
  switch (Role) {
  case GenRole::DistProb:
    return (V >= 0.02 && V <= 0.98) ? -std::log(0.96) : NegInf;
  case GenRole::DistScale: {
    // |Gaussian(0, ConstSd)| + 0.5: folded normal shifted by 0.5.
    if (V < 0.5)
      return NegInf;
    return std::log(2.0) + gaussianLogPdf(V - 0.5, 0.0, Config.ConstSd);
  }
  case GenRole::DistMean:
  case GenRole::Value:
    return gaussianLogPdf(V, 0.0, Config.ConstSd);
  }
  return NegInf;
}

/// Probability density of generateTerminal(Kind, Role) yielding \p E.
double terminalLogProb(const Expr &E, const HoleSignature &Sig,
                       const GeneratorConfig &Config, ScalarKind Kind,
                       GenRole Role) {
  std::vector<unsigned> Formals;
  for (unsigned I = 0, N = unsigned(Sig.ArgKinds.size()); I != N; ++I) {
    bool Numeric = Sig.ArgKinds[I] != ScalarKind::Bool;
    bool WantNumeric = Kind != ScalarKind::Bool;
    if (Numeric == WantNumeric)
      Formals.push_back(I);
  }
  double FormalBranch = Formals.empty() ? 0.0 : 0.6;
  if (const auto *Arg = dyn_cast<HoleArgExpr>(&E)) {
    bool Eligible = std::find(Formals.begin(), Formals.end(),
                              Arg->getArgIndex()) != Formals.end();
    if (!Eligible)
      return NegInf;
    return std::log(FormalBranch / double(Formals.size()));
  }
  if (const auto *C = dyn_cast<ConstExpr>(&E)) {
    double ConstBranch = 1.0 - FormalBranch;
    if (ConstBranch <= 0)
      return NegInf;
    return std::log(ConstBranch) +
           constantLogDensity(C->getValue(), Kind, Role, Config);
  }
  return NegInf;
}

bool hasBernoulli(const GeneratorConfig &Config) {
  for (DistKind D : Config.Dists)
    if (distReturnsBool(D))
      return true;
  return false;
}

std::vector<DistKind> realDists(const GeneratorConfig &Config) {
  std::vector<DistKind> Out;
  for (DistKind D : Config.Dists)
    if (!distReturnsBool(D))
      Out.push_back(D);
  return Out;
}

bool contains(const std::vector<BinaryOp> &Set, BinaryOp Op) {
  return std::find(Set.begin(), Set.end(), Op) != Set.end();
}

} // namespace

double psketch::grammarLogProb(const Expr &E, const HoleSignature &Sig,
                               const GeneratorConfig &Config,
                               ScalarKind Kind, unsigned Depth,
                               GenRole Role) {
  // Distribution-parameter positions never recurse.
  if (Role != GenRole::Value)
    return terminalLogProb(E, Sig, Config, Kind, Role);

  bool IsTerminalNode = isa<ConstExpr>(&E) || isa<HoleArgExpr>(&E);
  bool MustTerminate = Depth + 1 >= Config.MaxDepth;
  if (MustTerminate)
    return IsTerminalNode
               ? terminalLogProb(E, Sig, Config, Kind, Role)
               : NegInf;
  if (IsTerminalNode)
    return std::log(Config.TerminalBias) +
           terminalLogProb(E, Sig, Config, Kind, Role);

  double LogStructural = std::log1p(-Config.TerminalBias);

  if (Kind == ScalarKind::Bool) {
    double WCmp = Config.CompareOps.empty() ? 0.0 : 3.0;
    double WLogic = Config.LogicalOps.empty() ? 0.0 : 1.0;
    double WDraw =
        (Config.AllowSample && hasBernoulli(Config)) ? 1.5 : 0.0;
    double WIte = Config.AllowIte ? 0.5 : 0.0;
    double WNot = Config.AllowNot ? 0.5 : 0.0;
    double Total = WCmp + WLogic + WDraw + WIte + WNot;
    if (Total == 0)
      return NegInf; // Structural node but only terminals derivable.
    if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
      if (isCompareOp(B->getOp())) {
        if (WCmp == 0 || !contains(Config.CompareOps, B->getOp()))
          return NegInf;
        return LogStructural + std::log(WCmp / Total) -
               std::log(double(Config.CompareOps.size())) +
               grammarLogProb(B->getLHS(), Sig, Config, ScalarKind::Real,
                              Depth + 1) +
               grammarLogProb(B->getRHS(), Sig, Config, ScalarKind::Real,
                              Depth + 1);
      }
      if (isLogicalOp(B->getOp())) {
        if (WLogic == 0 || !contains(Config.LogicalOps, B->getOp()))
          return NegInf;
        return LogStructural + std::log(WLogic / Total) -
               std::log(double(Config.LogicalOps.size())) +
               grammarLogProb(B->getLHS(), Sig, Config, ScalarKind::Bool,
                              Depth + 1) +
               grammarLogProb(B->getRHS(), Sig, Config, ScalarKind::Bool,
                              Depth + 1);
      }
      return NegInf;
    }
    if (const auto *S = dyn_cast<SampleExpr>(&E)) {
      if (WDraw == 0 || S->getDist() != DistKind::Bernoulli)
        return NegInf;
      return LogStructural + std::log(WDraw / Total) +
             terminalLogProb(S->getArg(0), Sig, Config, ScalarKind::Real,
                             GenRole::DistProb);
    }
    if (const auto *I = dyn_cast<IteExpr>(&E)) {
      if (WIte == 0)
        return NegInf;
      return LogStructural + std::log(WIte / Total) +
             grammarLogProb(I->getCond(), Sig, Config, ScalarKind::Bool,
                            Depth + 1) +
             grammarLogProb(I->getThen(), Sig, Config, ScalarKind::Bool,
                            Depth + 1) +
             grammarLogProb(I->getElse(), Sig, Config, ScalarKind::Bool,
                            Depth + 1);
    }
    if (const auto *U = dyn_cast<UnaryExpr>(&E)) {
      if (WNot == 0 || U->getOp() != UnaryOp::Not)
        return NegInf;
      return LogStructural + std::log(WNot / Total) +
             grammarLogProb(U->getSub(), Sig, Config, ScalarKind::Bool,
                            Depth + 1);
    }
    return NegInf;
  }

  // Numeric productions.
  double WArith = Config.ArithOps.empty() ? 0.0 : 1.5;
  double WDraw = Config.AllowSample ? 2.5 : 0.0;
  double WIte = Config.AllowIte ? 0.6 : 0.0;
  double Total = WArith + WDraw + WIte;
  if (Total == 0)
    return NegInf;
  if (const auto *B = dyn_cast<BinaryExpr>(&E)) {
    if (WArith == 0 || !isArithOp(B->getOp()) ||
        !contains(Config.ArithOps, B->getOp()))
      return NegInf;
    return LogStructural + std::log(WArith / Total) -
           std::log(double(Config.ArithOps.size())) +
           grammarLogProb(B->getLHS(), Sig, Config, ScalarKind::Real,
                          Depth + 1) +
           grammarLogProb(B->getRHS(), Sig, Config, ScalarKind::Real,
                          Depth + 1);
  }
  if (const auto *S = dyn_cast<SampleExpr>(&E)) {
    std::vector<DistKind> Dists = realDists(Config);
    if (WDraw == 0 || Dists.empty() ||
        std::find(Dists.begin(), Dists.end(), S->getDist()) == Dists.end())
      return NegInf;
    double LP = LogStructural + std::log(WDraw / Total) -
                std::log(double(Dists.size()));
    for (unsigned I = 0, N = S->getNumArgs(); I != N; ++I) {
      GenRole ArgRole = (S->getDist() == DistKind::Gaussian && I == 0)
                            ? GenRole::DistMean
                            : GenRole::DistScale;
      LP += terminalLogProb(S->getArg(I), Sig, Config, ScalarKind::Real,
                            ArgRole);
    }
    return LP;
  }
  if (const auto *I = dyn_cast<IteExpr>(&E)) {
    if (WIte == 0)
      return NegInf;
    return LogStructural + std::log(WIte / Total) +
           grammarLogProb(I->getCond(), Sig, Config, ScalarKind::Bool,
                          Depth + 1) +
           grammarLogProb(I->getThen(), Sig, Config, ScalarKind::Real,
                          Depth + 1) +
           grammarLogProb(I->getElse(), Sig, Config, ScalarKind::Real,
                          Depth + 1);
  }
  return NegInf;
}
