//===- synth/Synthesizer.h - MCMC-SYN (Algorithm 1) -----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesis algorithm of the paper: a Metropolis-Hastings random
/// walk over hole-completion tuples.  Each iteration mutates the
/// current tuple (Section 4.1), filters out nonsensical mutants with
/// the quick syntactic/type check, scores Pr(D | P[H']) with the
/// compiled MoG likelihood (Section 4.3), and accepts with the MH
/// ratio (Section 4.2; symmetric-proposal form by default — see
/// DESIGN.md §3).  The returned program is the argmax-likelihood member
/// of the sample set S (Algorithm 1, line 10).
///
/// The scorer is pluggable so the Figure 8 experiment can swap in the
/// numeric-integration baseline (baseline/GridLikelihood.h) and measure
/// candidates-per-second for both.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SYNTHESIZER_H
#define PSKETCH_SYNTH_SYNTHESIZER_H

#include "likelihood/Likelihood.h"
#include "synth/Mutate.h"
#include "synth/Splice.h"

#include <functional>
#include <limits>
#include <memory>
#include <optional>

namespace psketch {

/// All knobs of one synthesis run.
struct SynthesisConfig {
  /// MH iterations per chain (Algorithm 1's N).
  unsigned Iterations = 4000;

  /// Independent restarts.  MH converges asymptotically (Section 4.4)
  /// but a finite budget can trap a single chain in a local optimum;
  /// the best state across chains is returned.  Chain c uses seed
  /// Seed + c.
  unsigned Chains = 1;

  /// Seed for the whole run (initial draw, proposals, acceptances).
  uint64_t Seed = 1;

  /// Attempts to draw a valid initial completion tuple.
  unsigned MaxInitTries = 500;

  GeneratorConfig Gen;
  MutateConfig Mut;
  AlgebraConfig Algebra;

  /// Record the best-so-far log-likelihood after every iteration
  /// (convergence plots).
  bool TrackBestTrace = false;

  /// Include the approximate proposal-density ratio
  /// Pr(H | H') / Pr(H' | H) in the acceptance probability
  /// (Section 4.2's full MH ratio) instead of assuming a symmetric
  /// proposal; ablated in bench/ablation_design_choices.
  bool UseProposalRatio = false;
};

/// Counters and timing of one run.
struct SynthesisStats {
  unsigned Proposed = 0;  ///< Mutation proposals drawn.
  unsigned Accepted = 0;  ///< Proposals accepted by the MH ratio.
  unsigned Invalid = 0;   ///< Proposals rejected by the validity filter.
  unsigned Scored = 0;    ///< Candidates whose likelihood was evaluated.
  double Seconds = 0;     ///< Wall-clock of the MH loop.

  /// The Figure 8 metric, scaled to the paper's reporting window.
  double candidatesPer100Sec() const {
    return Seconds > 0 ? double(Scored) / Seconds * 100.0 : 0;
  }
  double acceptanceRate() const {
    return Proposed ? double(Accepted) / double(Proposed) : 0;
  }
};

/// Outcome of one synthesis run.
struct SynthesisResult {
  bool Succeeded = false;
  std::vector<ExprPtr> BestCompletions; ///< One per hole, hole-id order.
  double BestLogLikelihood = -std::numeric_limits<double>::infinity();
  std::unique_ptr<Program> BestProgram; ///< The spliced best candidate.
  SynthesisStats Stats;
  std::vector<double> BestTrace; ///< Best-so-far LL per iteration.
};

/// Runs MCMC-SYN over one sketch + dataset.
class Synthesizer {
public:
  /// Scores a fully-spliced candidate program; nullopt marks the
  /// candidate invalid.  The default scorer lowers the candidate and
  /// evaluates the compiled MoG likelihood over the dataset.
  using Scorer = std::function<std::optional<double>(const Program &)>;

  Synthesizer(const Program &Sketch, const InputBindings &Inputs,
              const Dataset &Data, SynthesisConfig Config);

  /// False when the sketch itself fails to type check; diagnostics()
  /// explains.
  bool valid() const { return SketchValid; }
  const DiagEngine &diagnostics() const { return Diags; }

  /// Replaces the likelihood scorer (Figure 8 baseline mode).
  void setScorer(Scorer S) { Score = std::move(S); }

  /// The default MoG-likelihood scoring of one candidate (exposed so
  /// benches can time scoring in isolation).
  std::optional<double> scoreWithMoG(const Program &Candidate) const;

  /// Algorithm 1.
  SynthesisResult run();

  const std::vector<HoleSignature> &holeSignatures() const { return Sigs; }

private:
  bool completionsValid(const std::vector<ExprPtr> &Completions) const;
  void runChain(uint64_t Seed, SynthesisResult &Result);

  std::unique_ptr<Program> Sketch;
  InputBindings Inputs;
  const Dataset &Data;
  SynthesisConfig Config;
  std::vector<HoleSignature> Sigs;
  Scorer Score;
  DiagEngine Diags;
  bool SketchValid = false;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SYNTHESIZER_H
