//===- synth/Synthesizer.h - MCMC-SYN (Algorithm 1) -----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The synthesis algorithm of the paper: a Metropolis-Hastings random
/// walk over hole-completion tuples.  Each iteration mutates the
/// current tuple (Section 4.1), filters out nonsensical mutants with
/// the quick syntactic/type check, scores Pr(D | P[H']) with the
/// compiled MoG likelihood (Section 4.3), and accepts with the MH
/// ratio (Section 4.2; symmetric-proposal form by default — see
/// DESIGN.md §3).  The returned program is the argmax-likelihood member
/// of the sample set S (Algorithm 1, line 10).
///
/// The scorer is pluggable so the Figure 8 experiment can swap in the
/// numeric-integration baseline (baseline/GridLikelihood.h) and measure
/// candidates-per-second for both.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SYNTHESIZER_H
#define PSKETCH_SYNTH_SYNTHESIZER_H

#include "analysis/CandidateAnalyzer.h"
#include "likelihood/Likelihood.h"
#include "obs/Convergence.h"
#include "obs/Metrics.h"
#include "obs/PerfCounters.h"
#include "obs/Profiler.h"
#include "obs/StageTimer.h"
#include "obs/Trace.h"
#include "synth/Budget.h"
#include "synth/Mutate.h"
#include "synth/ScoreCache.h"
#include "synth/SliceFactoring.h"
#include "synth/Splice.h"

#include <functional>
#include <limits>
#include <memory>
#include <optional>

namespace psketch {

class ThreadPool;
class CheckpointCoordinator;
struct ChainCheckpoint;
struct RunCheckpoint;

/// One finding of SynthesisConfig::validate(): either a hard error
/// (the run would be meaningless or refuse to start) or a warning
/// about a knob combination that is legal but silently gated.
struct ConfigDiag {
  enum class Severity { Warning, Error };
  Severity Sev = Severity::Warning;
  std::string Message;
};

/// All knobs of one synthesis run.
struct SynthesisConfig {
  /// MH iterations per chain (Algorithm 1's N).
  unsigned Iterations = 4000;

  /// Independent restarts.  MH converges asymptotically (Section 4.4)
  /// but a finite budget can trap a single chain in a local optimum;
  /// the best state across chains is returned.  Chain c uses seed
  /// Seed + c.
  unsigned Chains = 1;

  /// Worker threads running the restarts concurrently; 0 means
  /// hardware_concurrency.  Chains are fully independent (own RNG
  /// stream seeded Seed + c, own stats, own best state) and their
  /// results are merged in chain order after the join, so any Threads
  /// value produces results identical to Threads = 1.  With
  /// Threads > 1 a replaced scorer (setScorer) must be thread-safe.
  unsigned Threads = 1;

  /// Row workers for *intra-chain* likelihood evaluation (`--row-threads`):
  /// with a value > 1, each scoring call farms its 512-row blocks to a
  /// run-wide row pool of this many workers (shared by all chains, each
  /// chain waiting only on its own block group).  Every block's partial
  /// sum and the fixed-shape reduction combining them are independent of
  /// the schedule, so scores — and therefore the walk — are bit-identical
  /// for every RowThreads value (DESIGN.md §11).  Effective only on the
  /// default template scoring path and only when the dataset spans more
  /// than one block; pays off on large datasets where one candidate's
  /// evaluation dwarfs the per-block dispatch.
  unsigned RowThreads = 1;

  /// Speculative proposal prefetching (`--speculate-depth`; DESIGN.md
  /// §13): with a depth K > 0, each chain expands a binary speculation
  /// tree of its next K proposals — one node per accept/reject history
  /// — and farms the nodes' compile + score to the run's speculation
  /// pool while the realized walk resolves them in order.  The walk's
  /// randomness is keyed by iteration index (counter-split streams, see
  /// support/Rng.h) and results are replayed through the score cache in
  /// realized order, so scores, traces, best-LL and every deterministic
  /// counter are byte-identical for every depth and every Threads /
  /// RowThreads value; the knob only changes how much future work is in
  /// flight.  0 (the default) disables speculation entirely.  Effective
  /// only on the default template scoring path; the speculation pool
  /// gets the Threads workers left over after one per chain, and with
  /// none left the chain computes nodes inline (same cost as depth 0).
  unsigned SpeculateDepth = 0;

  /// Capacity of the per-chain LRU candidate-score cache keyed by the
  /// structural hash of the completion tuple (ast/ASTUtil hashExprTuple);
  /// 0 disables memoization.  Scoring is deterministic, so the cache
  /// changes cost only, never results.
  size_t ScoreCacheSize = 4096;

  /// Likelihood-compilation pipeline knobs (DESIGN.md §9): the NumExpr
  /// simplifier pass (`--no-simplify`), tape superinstruction fusion
  /// (`--no-fuse`) and explicit FMA contraction (`--ffast-tape`).
  /// Everything except FastTape is bit-exact — scores are identical
  /// with the knobs on or off.
  LikelihoodOptions Likelihood;

  /// Cross-candidate incremental scoring (`--no-incremental` turns it
  /// off): each chain keeps a column cache of evaluated row-blocks
  /// keyed by structural subtree identity, so a hole-local proposal
  /// only re-evaluates tape instructions downstream of the mutation.
  /// Bit-exact — a hit returns exactly what recomputation would — and
  /// per-chain, so results stay independent of Threads.  Applies to
  /// the default template scoring path (custom scorers via setScorer
  /// manage their own evaluation).
  bool Incremental = true;

  /// Byte budget of each chain's column cache (LRU eviction).
  size_t ColumnCacheBytes = size_t(32) << 20;

  /// Slice-factored scoring (`--no-slice-factoring` turns it off;
  /// DESIGN.md §14): compile one tape per likelihood term group (terms
  /// partitioned by hole footprint via the dependence analysis), cache
  /// per-group row values keyed by the footprint sub-tuple, and skip
  /// scoring proposals that only mutate holes outside every group
  /// (`synth.slice_skip`).  Bit-exact: per-term values are recombined
  /// in the monolithic chain order with the same blocked Kahan
  /// reduction, so scores, traces and best-LL are byte-identical on vs
  /// off.  Effective only on the default template scoring path with
  /// FastTape off and a usable (multi-group, < 64 holes) plan.
  bool SliceFactoring = true;

  /// Abstract-interpretation STATIC-REJECT pre-filter (`--no-static-
  /// analysis` turns it off): every proposal's completion tuple is run
  /// through the interval x sign x NaN-free candidate analyzer, and a
  /// candidate with a draw parameter that is provably outside its
  /// distribution's domain is rejected *before* the lower / LL(.) /
  /// tape pipeline spends anything on it.  The analyzer's verdict is
  /// the definition of domain validity either way: with the flag off
  /// the same verdict is applied after scoring, so the accepted
  /// candidate set, every score, every trace event and every cached
  /// verdict are bit-identical on vs off — the flag only moves where
  /// the rejection cost is paid (DESIGN.md §10).
  bool StaticAnalysis = true;

  /// Seed for the whole run (initial draw, proposals, acceptances).
  uint64_t Seed = 1;

  /// Attempts to draw a valid initial completion tuple.
  unsigned MaxInitTries = 500;

  GeneratorConfig Gen;
  MutateConfig Mut;
  AlgebraConfig Algebra;

  /// Record the best-so-far log-likelihood after every iteration
  /// (convergence plots).
  bool TrackBestTrace = false;

  /// Include the approximate proposal-density ratio
  /// Pr(H | H') / Pr(H' | H) in the acceptance probability
  /// (Section 4.2's full MH ratio) instead of assuming a symmetric
  /// proposal; ablated in bench/ablation_design_choices.
  bool UseProposalRatio = false;

  // --- Telemetry (DESIGN.md §8).  All off by default; every knob is
  // result-neutral — it adds outputs without perturbing the walk. ---

  /// Emit one TraceEvent per MH proposal into
  /// SynthesisResult::TraceEvents (chain-major order, the JSONL trace
  /// of `psketch synth --trace-out`).
  bool CollectTrace = false;

  /// Time the scoring stages (lower/compile, batched eval, cache
  /// probe, splice) into SynthesisStats::Stage via thread-local RAII
  /// spans.
  bool StageTimers = false;

  /// Record per-chain current-state LL traces and accept flags and
  /// compute split-R-hat / ESS / windowed acceptance / stuck-chain
  /// detection into SynthesisResult::Convergence.
  bool Diagnostics = false;

  /// Trailing-window length for the windowed acceptance rate and the
  /// stuck-chain detector.
  unsigned DiagWindow = 200;

  /// Record counters and histograms into a per-chain MetricsRegistry
  /// shard, merged deterministically into SynthesisResult::Metrics.
  bool Metrics = false;

  /// `--profile` (DESIGN.md §12): attribute eval_batch wall time to
  /// individual tape opcodes and cost centers (obs/Profiler.h) and
  /// read hardware counters per stage when perf_event_open works
  /// (obs/PerfCounters.h), into SynthesisResult::Profile.  Implies
  /// StageTimers (attribution needs the stage spans as denominators).
  /// Result-neutral like the rest of the telemetry: the enabled path
  /// only reads clocks and counters, so scores, walks, traces and
  /// (non-profile) metrics are bit-identical on vs off.
  bool Profile = false;

  /// Profile 1 of every K block evaluations (1 = every block); the
  /// skipped blocks' time is still accounted, as one lump per block.
  unsigned ProfileSampleEvery = 1;

  /// When set, invoked every ProgressEvery iterations of each chain
  /// (and once at each chain's end).  Called from chain threads —
  /// must be thread-safe when Threads > 1.
  struct ProgressUpdate {
    unsigned Chain = 0;
    unsigned Iter = 0;
    unsigned Iterations = 0;
    double BestLL = -std::numeric_limits<double>::infinity();
    /// Column-cache hit rate of this chain so far (0 when incremental
    /// scoring is off).
    double ColCacheHitRate = 0;
    /// Proposals rejected by the STATIC-REJECT pre-filter so far
    /// (this chain).
    unsigned StaticRejects = 0;
    /// Data rows scored per wall-clock second by this chain so far
    /// (scoring throughput; 0 on non-template scoring paths).
    double RowsPerSec = 0;
    /// With Profile on: index (into tapeOpName order) and share of the
    /// most expensive opcode in this chain's attribution so far; -1 /
    /// 0 when profiling is off or nothing is charged yet.
    int ProfTopOp = -1;
    double ProfTopShare = 0;
  };
  unsigned ProgressEvery = 0; ///< 0 disables progress callbacks.
  std::function<void(const ProgressUpdate &)> Progress;

  // --- Run durability (DESIGN.md §15).  All off by default. ---

  /// Stopping budget beyond the iteration cap: wall-clock deadline and
  /// proposals/s floor, both enforced at speculation-block boundaries.
  BudgetPolicy Budget;

  /// Cooperative cancellation: when set, every chain polls the token
  /// at block boundaries and stops with StopReason::Cancelled.  The
  /// CLI routes SIGINT/SIGTERM here via SignalCancellationScope.
  std::shared_ptr<CancelToken> Cancel;

  /// When non-empty, the run writes crash-safe snapshots of every
  /// chain's state to this path (`--checkpoint-out`): once after each
  /// chain initializes, every CheckpointEvery iterations, and once at
  /// each chain's end (completion or budget stop).
  std::string CheckpointPath;

  /// Iterations between periodic snapshots of each chain
  /// (`--checkpoint-every`); 0 keeps only the initial and final ones.
  /// Deposits land on the first block boundary at or after the mark,
  /// so the cadence never perturbs the walk.
  unsigned CheckpointEvery = 0;

  /// Snapshot files retained (`--checkpoint-keep`): the newest at
  /// CheckpointPath, older ones rotated to `.1`, `.2`, ...
  unsigned CheckpointKeep = 2;

  /// When set, run() restarts every chain from this snapshot
  /// (`--resume`) instead of drawing initial states — byte-identically
  /// to the uninterrupted run, provided the snapshot's identity header
  /// (seed, sketch, dataset, walk-relevant knobs) matches; run()
  /// refuses with SynthesisResult::Error otherwise.  shared_ptr const
  /// because SynthesisConfig is copied per run but snapshots can be
  /// large.
  std::shared_ptr<const RunCheckpoint> Resume;

  /// Checks the configuration for hard errors (nonsensical parameter
  /// values, checkpoint cadence without a path) and for legal but
  /// silently-gated knob combinations (FastTape disables slice
  /// factoring, speculation without spare workers, ...).  run()
  /// proceeds on warnings and refuses on errors.
  std::vector<ConfigDiag> validate() const;
};

/// Counters and timing of one run.
struct SynthesisStats {
  unsigned Proposed = 0;   ///< Mutation proposals drawn.
  unsigned Accepted = 0;   ///< Proposals accepted by the MH ratio.
  unsigned Invalid = 0;    ///< Proposals rejected by the validity filter.
  /// Breakdown of Invalid by rejection source (always sums to Invalid):
  /// the completion type check, the scorer returning no finite
  /// likelihood, and the abstract interpreter's STATIC-REJECT verdict.
  unsigned InvalidType = 0;
  unsigned InvalidDomain = 0;
  unsigned InvalidStatic = 0;
  unsigned Scored = 0;     ///< Candidates whose likelihood was evaluated.
  unsigned CacheHits = 0;  ///< Candidates answered by the score cache.
  unsigned CacheMisses = 0; ///< Cache probes that fell through to scoring.
  double Seconds = 0;      ///< Wall-clock of the MH loop.

  /// Score-cache entries evicted by the LRU policy.
  uint64_t ScoreCacheEvictions = 0;

  // Column-cache telemetry (zeros unless Config.Incremental and the
  // default template scoring path were in effect).  Hits/misses count
  // row-block probes inside Tape::evalIncremental.
  uint64_t ColCacheHits = 0;
  uint64_t ColCacheMisses = 0;
  uint64_t ColCacheEvictions = 0;

  // Tape-size telemetry summed over compiled candidates: instruction
  // counts before the simplifier, after simplify + fusion, and the
  // number of fused superinstructions emitted.
  uint64_t TapeRawIns = 0;
  uint64_t TapeFinalIns = 0;
  uint64_t TapeFused = 0;

  // Row-throughput telemetry (DESIGN.md §11).  RowsScored counts data
  // rows evaluated through the template scoring path (dataset rows x
  // evaluated candidates); RowsSimd / RowsScalarTail split the rows the
  // batched kernels processed into full-lane-group rows and scalar-tail
  // rows (with the scalar kernel every row is a tail row).  The split
  // is a function of row counts and lane width only — never of threads
  // or cache state — so it is deterministic like everything above.
  uint64_t RowsScored = 0;
  uint64_t RowsSimd = 0;
  uint64_t RowsScalarTail = 0;

  // Slice-factoring telemetry (zeros unless SliceFactoring was in
  // effect on the template scoring path).  SliceSkip counts proposals
  // whose mutated holes were all dead (scoring skipped, current LL
  // substituted — non-speculated path only, so the count varies with
  // SpeculateDepth like the Spec counters; scores do not).
  // GroupHits/GroupMisses count group evaluations served from the
  // chain's slice-value cache vs evaluated; RowsSaved/RowsEvaluated
  // scale them by dataset rows x member terms — the "evaluated tape
  // rows" reduction the bench reports.
  uint64_t SliceSkip = 0;
  uint64_t SliceGroupHits = 0;
  uint64_t SliceGroupMisses = 0;
  uint64_t SliceRowsSaved = 0;
  uint64_t SliceRowsEvaluated = 0;

  // Proposal-pool telemetry: completion-tuple vectors served from the
  // per-chain free-list vs freshly allocated.  Deterministic per
  // (seed, depth) — speculation expands more proposals per iteration,
  // so the split differs across SpeculateDepth values (never across
  // Threads).
  uint64_t ProposalPoolReused = 0;
  uint64_t ProposalPoolAllocated = 0;

  // Score-cache epoch telemetry (see ScoreCache::beginEpoch): hits on
  // and evictions of entries that survived at least one speculation-
  // block rebuild.  Zero at depth 0 (no epochs are opened).
  uint64_t ScoreCacheWarmHits = 0;
  uint64_t ScoreCacheWarmEvictions = 0;

  // Speculation telemetry (`--speculate-depth`; all zero at depth 0).
  // Blocks/Nodes/PeekResolved are deterministic per (seed, depth);
  // Consumed/Wasted/CancelledEarly/QueueDropped depend on worker timing
  // and are excluded from the cross-configuration identity guarantees.
  uint64_t SpecBlocks = 0;
  uint64_t SpecNodes = 0;
  uint64_t SpecConsumed = 0;
  uint64_t SpecWasted = 0;
  uint64_t SpecCancelledEarly = 0;
  uint64_t SpecPeekResolved = 0;
  uint64_t SpecQueueDropped = 0;

  /// Per-stage scoring cost (lower/compile, batched eval, cache probe,
  /// splice, speculation coordination), populated when
  /// SynthesisConfig::StageTimers is on; all zeros otherwise.
  StageTimes Stage;

  /// Accumulates \p Other into this: counters, stage times and Seconds
  /// all sum.  Used by the deterministic chain merge (per-chain stats
  /// carry Seconds = 0; the run's wall clock is timed around the whole
  /// loop).
  void merge(const SynthesisStats &Other);

  /// The Figure 8 metric, scaled to the paper's reporting window.
  /// Cache hits count as evaluated candidates: a hit hands the walk a
  /// usable score exactly as an evaluation would.
  double candidatesPer100Sec() const {
    return Seconds > 0 ? double(Scored + CacheHits) / Seconds * 100.0 : 0;
  }
  double acceptanceRate() const {
    return Proposed ? double(Accepted) / double(Proposed) : 0;
  }
  double cacheHitRate() const {
    unsigned Probes = CacheHits + CacheMisses;
    return Probes ? double(CacheHits) / double(Probes) : 0;
  }
  double colCacheHitRate() const {
    uint64_t Probes = ColCacheHits + ColCacheMisses;
    return Probes ? double(ColCacheHits) / double(Probes) : 0;
  }
};

/// Merged profiler output of one run (Config.Profile): per-opcode /
/// cost-center attribution and per-stage hardware counters, combined
/// over chains in chain order.
struct SynthesisProfile {
  bool Enabled = false;
  TapeProfile Tape;
  StagePerf Perf;
};

/// Outcome of one synthesis run.
struct SynthesisResult {
  bool Succeeded = false;
  std::vector<ExprPtr> BestCompletions; ///< One per hole, hole-id order.
  double BestLogLikelihood = -std::numeric_limits<double>::infinity();
  std::unique_ptr<Program> BestProgram; ///< The spliced best candidate.
  SynthesisStats Stats;
  std::vector<double> BestTrace; ///< Best-so-far LL per iteration.

  /// Why the run stopped early; None when every chain ran to the
  /// iteration cap.  A stopped run is still a *valid partial result*:
  /// Succeeded/BestCompletions reflect everything executed so far, and
  /// the final checkpoint (when configured) resumes from here.  When
  /// chains stopped for different reasons the highest-precedence one
  /// (smallest enum value) is reported.
  StopReason Stop = StopReason::None;

  /// Whether the run was cancelled cooperatively (signal or caller
  /// token) — the CLI's Interrupted exit code keys off this.
  bool interrupted() const { return Stop == StopReason::Cancelled; }

  /// Non-empty when run() refused to start (config validation error,
  /// resume-identity mismatch) — Succeeded is false and nothing ran.
  std::string Error;

  /// Non-empty when a checkpoint write failed; the run itself
  /// continued (durability is best-effort, synthesis is not).
  std::string CheckpointError;

  /// The next iteration each chain would execute — the iteration cap
  /// when it finished, earlier when a budget stopped it.  Indexed by
  /// chain; empty when the run never started.
  std::vector<unsigned> ChainIterations;

  /// One event per MH proposal in chain-major order (chain 0's events,
  /// then chain 1's, ...); populated when Config.CollectTrace.  The
  /// event count equals Stats.Proposed.
  std::vector<TraceEvent> TraceEvents;

  /// Per-chain current-state LL per iteration; populated when
  /// Config.Diagnostics.
  std::vector<std::vector<double>> ChainLLTraces;

  /// Convergence diagnostics over ChainLLTraces; Computed only when
  /// Config.Diagnostics.
  ConvergenceReport Convergence;

  /// Merged per-chain metric shards; non-null when Config.Metrics.
  /// Deterministic: contents depend on the seeds, not on Threads.
  std::shared_ptr<MetricsRegistry> Metrics;

  /// Profiler output; Enabled mirrors Config.Profile (all zeros when
  /// off).
  SynthesisProfile Profile;
};

/// Assembles the renderable profile report from a finished run: the
/// merged attribution and counters plus the opcode-name table and the
/// resolved SIMD tier (which live in the likelihood layer, out of
/// obs's reach).  Identity fields (Sketch, Seed) are filled from
/// \p Config; callers override Sketch with a display name as needed.
ProfileReport makeProfileReport(const SynthesisResult &Result,
                                const SynthesisConfig &Config);

/// Runs MCMC-SYN over one sketch + dataset.
class Synthesizer {
public:
  /// Scores a fully-spliced candidate program; nullopt marks the
  /// candidate invalid.  The default scorer lowers the candidate and
  /// evaluates the compiled MoG likelihood over the dataset.
  using Scorer = std::function<std::optional<double>(const Program &)>;

  Synthesizer(const Program &Sketch, const InputBindings &Inputs,
              const Dataset &Data, SynthesisConfig Config);

  /// False when the sketch itself fails to type check; diagnostics()
  /// explains.
  bool valid() const { return SketchValid; }
  const DiagEngine &diagnostics() const { return Diags; }

  /// Replaces the likelihood scorer (Figure 8 baseline mode).  A custom
  /// scorer receives the spliced candidate program, so this also turns
  /// off the lowered-template scoring shortcut.
  void setScorer(Scorer S) {
    Score = std::move(S);
    CustomScorer = true;
  }

  /// The default MoG-likelihood scoring of one candidate (exposed so
  /// benches can time scoring in isolation).
  std::optional<double> scoreWithMoG(const Program &Candidate) const;

  /// The shared STATIC-REJECT analyzer bound to this sketch + inputs
  /// (exposed for the differential soundness fuzz tests).  Null only
  /// when the sketch failed to type check.
  const CandidateAnalyzer *analyzer() const { return Analyzer.get(); }

  /// The full verdict for one completion tuple exactly as the MH loop
  /// computes it (type check, then static/domain classification under
  /// the current StaticAnalysis mode), bypassing the per-chain cache.
  CachedScore classifyCompletions(const std::vector<ExprPtr> &Completions) const;

  /// Algorithm 1.
  SynthesisResult run();

  /// The run manifest written as a trace's first line: seed, budget,
  /// dataset shape and fingerprint.  \p SketchName identifies the
  /// sketch (file path or benchmark name).
  RunManifest makeManifest(const std::string &SketchName) const;

  const std::vector<HoleSignature> &holeSignatures() const { return Sigs; }

  /// The sketch's slice-factoring plan (unusable when the template
  /// path is unavailable, the sketch is hole-free, or dependence
  /// saturated).  Exposed for tests and the slicing bench.
  const SlicePlan &slicePlan() const { return Plan; }

private:
  /// Everything one chain produces; chains never see each other's
  /// state, which is what makes the Threads knob result-neutral.
  struct ChainOutcome;

  bool completionsValid(const std::vector<ExprPtr> &Completions) const;

  /// Runs one MH chain.  Const and self-contained (own RNG, own
  /// mutator, own telemetry buffers) so chains can run on pool
  /// threads.  \p Cache is the chain's score cache, owned by run() so
  /// it spans the chain's whole lifetime (and every speculation-block
  /// rebuild within it).  \p RowPool, when non-null, is the run-wide
  /// row-worker pool: the chain evaluates likelihood row blocks on it
  /// through its own RowEvalContext (score-neutral — see
  /// SynthesisConfig::RowThreads).  \p SpecPool, when non-null, is the
  /// run-wide speculation pool (see SynthesisConfig::SpeculateDepth);
  /// the chain tracks its speculative jobs under its own group.
  /// \p Resume, when non-null, is this chain's restored state: the
  /// init loop is skipped and the walk continues from Resume->NextIter
  /// byte-identically (DESIGN.md §15).  \p Checkpoints, when non-null,
  /// receives this chain's state deposits (initial, periodic, final).
  /// \p Budget, when non-null, is consulted at block boundaries; a
  /// nonzero verdict stops the chain with ChainOutcome::Stop set.
  void runChain(unsigned ChainIndex, uint64_t Seed, ChainOutcome &Out,
                ScoreCache &Cache, ThreadPool *RowPool, ThreadPool *SpecPool,
                const ChainCheckpoint *Resume,
                CheckpointCoordinator *Checkpoints,
                const BudgetTracker *Budget) const;

  /// Scores one completion tuple against the lowered sketch template
  /// (no per-candidate splice/lower; bitwise-identical to splicing).
  /// With \p ColCache, evaluation runs incrementally against it; with
  /// \p Stats, tape-size counters accumulate there.  \p Scratch (one
  /// per chain) keeps compile-time storage warm across candidates.
  /// \p Rows distributes block evaluation over the row pool.
  /// \p Slices, when non-null, routes scoring through the factored
  /// per-term path against the chain's slice-value cache (bit-identical
  /// total; see SynthesisConfig::SliceFactoring).
  std::optional<double>
  scoreWithTemplate(const std::vector<ExprPtr> &Completions,
                    ColumnCache *ColCache = nullptr,
                    SynthesisStats *Stats = nullptr,
                    CompileScratch *Scratch = nullptr,
                    RowEvalContext *Rows = nullptr,
                    SliceValueCache *Slices = nullptr) const;

  /// The factored-path body of scoreWithTemplate: probe each group's
  /// footprint key in \p Slices, compile + evaluate only the missing
  /// groups, recombine all terms in monolithic chain order.
  std::optional<double>
  scoreFactored(const std::vector<ExprPtr> &Completions,
                ColumnCache *ColCache, SynthesisStats *Stats,
                CompileScratch *Scratch, RowEvalContext *Rows,
                SliceValueCache &Slices) const;

  std::unique_ptr<Program> Sketch;
  InputBindings Inputs;
  const Dataset &Data;
  ColumnarDataset ColData; ///< SoA view feeding Tape::evalBatch.
  SynthesisConfig Config;
  std::vector<HoleSignature> Sigs;
  Scorer Score;
  DiagEngine Diags;
  bool SketchValid = false;

  /// The sketch lowered once with holes kept in place (nullptr when the
  /// sketch has holes in structural positions and every candidate must
  /// be spliced + re-lowered instead).  Completions are closed over
  /// their formals, so lowering and definite assignment are computed
  /// once here instead of once per candidate.
  std::unique_ptr<LoweredProgram> Template;
  bool TemplateDefAssignOK = false;
  bool CustomScorer = false;

  /// Computed once from Template + Data in the constructor (unusable
  /// when no template).  Drives the factored scoring path and the
  /// dead-hole proposal skip.
  SlicePlan Plan;

  /// Shared across chains (analyze() is const and stateless).
  std::unique_ptr<CandidateAnalyzer> Analyzer;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SYNTHESIZER_H
