//===- synth/Budget.cpp - Run budgets and cooperative cancellation --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Budget.h"

#include <csignal>

using namespace psketch;

const char *psketch::stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::None:
    return "none";
  case StopReason::Cancelled:
    return "cancelled";
  case StopReason::Deadline:
    return "deadline";
  case StopReason::ThroughputFloor:
    return "throughput_floor";
  }
  return "unknown";
}

namespace {

/// Target of the installed handlers.  A raw atomic pointer, not the
/// shared_ptr (handlers must be async-signal-safe); the owning scope
/// keeps the token alive while the pointer is published.
std::atomic<CancelToken *> SignalTarget{nullptr};

/// Guards against nested scopes: only the outermost installs handlers.
std::atomic<bool> ScopeActive{false};

#if defined(_WIN32)

void handleSignal(int Sig) {
  if (CancelToken *T = SignalTarget.load(std::memory_order_relaxed)) {
    if (T->cancelled()) { // Second signal: die with default disposition.
      std::signal(Sig, SIG_DFL);
      std::raise(Sig);
      return;
    }
    T->cancel();
  }
}

struct SavedHandlers {
  void (*Int)(int) = SIG_DFL;
  void (*Term)(int) = SIG_DFL;
};
SavedHandlers Saved;

void installHandlers() {
  Saved.Int = std::signal(SIGINT, handleSignal);
  Saved.Term = std::signal(SIGTERM, handleSignal);
}

void restoreHandlers() {
  std::signal(SIGINT, Saved.Int);
  std::signal(SIGTERM, Saved.Term);
}

#else // POSIX

void handleSignal(int Sig) {
  if (CancelToken *T = SignalTarget.load(std::memory_order_relaxed)) {
    if (T->cancelled()) { // Second signal: die with default disposition.
      struct sigaction Default {};
      Default.sa_handler = SIG_DFL;
      sigaction(Sig, &Default, nullptr);
      raise(Sig);
      return;
    }
    T->cancel();
  }
}

struct SavedHandlers {
  struct sigaction Int {};
  struct sigaction Term {};
};
SavedHandlers Saved;

void installHandlers() {
  struct sigaction Action {};
  Action.sa_handler = handleSignal;
  sigemptyset(&Action.sa_mask);
  // No SA_RESTART: an interrupted blocking read should return EINTR so
  // the caller also notices promptly.
  Action.sa_flags = 0;
  sigaction(SIGINT, &Action, &Saved.Int);
  sigaction(SIGTERM, &Action, &Saved.Term);
}

void restoreHandlers() {
  sigaction(SIGINT, &Saved.Int, nullptr);
  sigaction(SIGTERM, &Saved.Term, nullptr);
}

#endif

} // namespace

SignalCancellationScope::SignalCancellationScope(
    std::shared_ptr<CancelToken> Token)
    : Token(std::move(Token)) {
  if (!this->Token)
    return;
  bool Expected = false;
  if (!ScopeActive.compare_exchange_strong(Expected, true))
    return; // Nested scope: inert.
  Installed = true;
  SignalTarget.store(this->Token.get(), std::memory_order_relaxed);
  installHandlers();
}

SignalCancellationScope::~SignalCancellationScope() {
  if (!Installed)
    return;
  restoreHandlers();
  SignalTarget.store(nullptr, std::memory_order_relaxed);
  ScopeActive.store(false, std::memory_order_relaxed);
}
