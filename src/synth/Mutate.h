//===- synth/Mutate.h - The Section 4.1 mutation proposal ----------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MH proposal distribution Pr(H' | H): draw a mutation count n
/// from a geometric distribution, then apply n random AST mutation
/// operations to the completion tuple.  Each operation picks a node
/// uniformly at random over the union of all completions' ASTs and
/// applies one of the applicable operations uniformly:
///
///  * Operation-1 — a hole-formal reference is replaced by a different
///    formal of the hole;
///  * Operation-2 — a real constant c is replaced by a draw from
///    Gaussian(c, sigma_c);
///  * Operation-3 — an operator is replaced by another operator of
///    equivalent type; and
///  * Operation-4 — the whole subtree is regenerated from the grammar
///    with terminal bias.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_MUTATE_H
#define PSKETCH_SYNTH_MUTATE_H

#include "synth/Generator.h"

#include <string>
#include <vector>

namespace psketch {

/// Knobs of the mutation proposal.
struct MutateConfig {
  /// Success probability of the geometric mutation-count draw; the
  /// expected number of mutations per proposal is 1/GeomP.
  double GeomP = 0.6;

  /// Operation-2 standard deviation: sigma_c = ConstAbsSd +
  /// ConstRelSd * |c|.  The relative term lets large constants (e.g.
  /// TrueSkill's 100) move at a useful scale.
  double ConstAbsSd = 1.0;
  double ConstRelSd = 0.15;

  /// Maximum nodes per completion; Operation-4 results exceeding this
  /// are retried as another operation (keeps proposals from bloating).
  size_t MaxNodes = 32;

  /// Extension beyond the paper's four operations (DESIGN.md §3):
  /// grow replaces a subtree E by ite(fresh-cond, E, fresh) keeping the
  /// fitted expression as one branch, and shrink collapses an ite to
  /// one branch.  They let the chain enter/leave mixtures without
  /// abandoning an already-fitted mode; set to false for the
  /// paper-literal proposal (ablated in bench/ablation_design_choices).
  bool EnableGrowShrink = true;
};

/// The mutation operations of Section 4.1 plus the grow/shrink
/// extension, named so the chain trace can record what each proposal
/// did.
enum class MutationOp {
  VarSwap,      ///< Operation-1: swap a hole-formal reference.
  ConstPerturb, ///< Operation-2: Gaussian-perturb a constant.
  OpSwap,       ///< Operation-3: swap an equivalent operator.
  Regen,        ///< Operation-4: regenerate the subtree.
  Grow,         ///< Extension: wrap in ite(fresh, E, fresh).
  Shrink,       ///< Extension: collapse an ite to one branch.
};

/// Trace name of \p Op ("var_swap", "const_perturb", ...).
const char *mutationOpName(MutationOp Op);

/// Renders an applied-op list as "regen+const_perturb"; "none" when
/// the proposal applied no operation (geometric draw of zero).
std::string describeMutations(const std::vector<MutationOp> &Ops);

/// A mutable slot in a completion tree, annotated with the scalar kind
/// an expression in this position must have and whether the position is
/// a distribution parameter (restricted to variables/constants).
struct TypedSlot {
  ExprPtr *Ptr = nullptr;
  ScalarKind Kind = ScalarKind::Real;
  bool IsDistParam = false;
};

/// Collects the typed slots of \p Root (including the root itself,
/// whose kind is \p RootKind).
void collectTypedSlots(ExprPtr &Root, ScalarKind RootKind,
                       std::vector<TypedSlot> &Slots);

/// Free-list of completion-tuple vectors, recycling the proposal
/// allocations of one chain.  Every MH iteration deep-clones the
/// current tuple into a fresh std::vector<ExprPtr>, and all but the
/// accepted proposals are discarded within the iteration; routing the
/// discards back through this pool lets the next propose() reuse the
/// vector's capacity instead of paying malloc/free per proposal.
/// Chain-private (like the score cache), so no locking and the
/// reuse counters stay deterministic.
class ProposalPool {
public:
  /// A tuple vector ready to be filled: recycled when the free-list is
  /// non-empty, freshly allocated otherwise.
  std::vector<ExprPtr> acquire() {
    if (Free.empty()) {
      ++Allocated;
      return {};
    }
    ++Reused;
    std::vector<ExprPtr> V = std::move(Free.back());
    Free.pop_back();
    return V;
  }

  /// Returns \p V to the free-list.  The held expressions are
  /// destroyed here (their nodes are tree-shaped and cannot be
  /// recycled wholesale); only the vector's capacity survives.
  void release(std::vector<ExprPtr> V) {
    V.clear();
    if (Free.size() < MaxFree)
      Free.push_back(std::move(V));
  }

  /// Tuples served from the free-list vs freshly allocated (exported
  /// as synth.proposal_pool.reused / .allocated when metrics are on).
  uint64_t reused() const { return Reused; }
  uint64_t allocated() const { return Allocated; }

private:
  /// Bound on retained vectors: the sequential walk needs 1-2, a
  /// depth-K speculation block up to 2^K; beyond that the pool would
  /// just hoard memory.
  static constexpr size_t MaxFree = 64;
  std::vector<std::vector<ExprPtr>> Free;
  uint64_t Reused = 0;
  uint64_t Allocated = 0;
};

/// Mutates completion tuples under per-hole signatures.
class Mutator {
public:
  Mutator(const std::vector<HoleSignature> &Sigs,
          const GeneratorConfig &GenConfig, const MutateConfig &Config,
          Rng &R)
      : Sigs(Sigs), GenConfig(GenConfig), Config(Config), R(R) {}

  /// Proposes a mutated copy of \p Completions (one entry per hole, in
  /// hole-id order).  Always returns a structurally valid tuple; type
  /// correctness is re-checked by the synthesizer's validity filter.
  std::vector<ExprPtr> propose(const std::vector<ExprPtr> &Completions);

  /// Keyed variant: reseeds the shared engine with \p StreamSeed first,
  /// so the result is a pure function of (\p Completions,
  /// \p StreamSeed) — the property the speculation tree relies on to
  /// expand the proposal of iteration i+d from any hypothetical state
  /// (DESIGN.md §13).  The tuple's vector storage is drawn from \p Pool
  /// when one is given.
  std::vector<ExprPtr> propose(const std::vector<ExprPtr> &Completions,
                               uint64_t StreamSeed,
                               ProposalPool *Pool = nullptr);

  /// Approximate log proposal-density ratio of the last propose():
  /// log Q(H | H') - log Q(H' | H).  Symmetric operations contribute
  /// zero; Operation-2 contributes the (slightly asymmetric, since
  /// sigma_c depends on |c|) Gaussian densities; Operation-4 and
  /// grow/shrink contribute grammar generation densities
  /// (grammarLogProb).  Slot-count and applicable-set asymmetries are
  /// ignored — see DESIGN.md §3.
  double lastProposalLogQRatio() const { return QRatio; }

  /// The mutation operations the last propose() actually applied, in
  /// application order (telemetry; empty when the geometric draw was
  /// zero or no operation applied).
  const std::vector<MutationOp> &lastMutationOps() const { return LastOps; }

  /// Hole ids whose completion the last propose() touched, in
  /// application order (may repeat).  Empty iff no operation applied —
  /// then the proposal is a verbatim copy of the input tuple.  The
  /// synthesizer checks this set against the slice plan's dead mask to
  /// skip scoring proposals that provably cannot change any score.
  const std::vector<unsigned> &lastMutatedHoles() const { return LastHoles; }

  /// Applies exactly one mutation operation at a random node of the
  /// tuple (exposed for tests).  Returns false if no operation applied.
  bool mutateOnce(std::vector<ExprPtr> &Completions);

  // Individual operations on one slot (exposed for tests).  Each
  // returns false when inapplicable to the node in the slot.
  bool applyVariableSwap(TypedSlot Slot, const HoleSignature &Sig);
  bool applyConstantPerturb(TypedSlot Slot);
  bool applyOperatorSwap(TypedSlot Slot);
  bool applyRegenerate(TypedSlot Slot, const HoleSignature &Sig);
  bool applyGrow(TypedSlot Slot, const HoleSignature &Sig);
  bool applyShrink(TypedSlot Slot);

private:
  /// Common body of the two propose() overloads.
  std::vector<ExprPtr> proposeInto(const std::vector<ExprPtr> &Completions,
                                   ProposalPool *Pool);

  const std::vector<HoleSignature> &Sigs;
  const GeneratorConfig &GenConfig;
  const MutateConfig &Config;
  Rng &R;
  double QRatio = 0;
  std::vector<MutationOp> LastOps;
  std::vector<unsigned> LastHoles;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_MUTATE_H
