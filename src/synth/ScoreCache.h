//===- synth/ScoreCache.h - LRU memo table for candidate scores -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU memo table from completion-tuple hashes (ast/ASTUtil's
/// hashExprTuple) to candidate verdicts.  The MH walk of Algorithm 1
/// frequently revisits completions — a rejected proposal leaves the
/// chain where it was, and Operation-1/-3 mutations often undo each
/// other — so memoizing log Pr(D | P[H]) skips the lower + compile +
/// evaluate pipeline for every revisit.  Invalid candidates are memoized
/// too, *with the reason they were rejected* (type check, domain
/// validity, STATIC-REJECT): re-proposing a known-bad completion costs
/// one hash instead of one analysis or lowering attempt, and a cache-hit
/// rejection replays exactly the reason the original rejection recorded
/// (asserted in debug builds by the synthesizer).
///
/// Scoring is deterministic, so a hit returns exactly the double a
/// recompute would produce; cache size only affects speed, never
/// results.  Each chain owns one cache for its whole lifetime (owned by
/// Synthesizer::run, not rebuilt when the chain's speculation scheduler
/// tears a block down), and only the chain's main thread mutates it —
/// lookup/insert happen in realized iteration order, so hit/miss and
/// eviction counters stay deterministic under any thread count and any
/// speculation depth.
///
/// Two read-only side doors serve the speculation layer (DESIGN.md §13):
///
///  * peek() — a recency-free probe for the owning thread, used when
///    expanding a speculation tree so that lookahead probes do not
///    perturb the LRU order the realized walk will replay; and
///  * peekShared() — the same probe for worker threads, served from a
///    striped mirror of the table that the owner maintains on every
///    insert/evict while setShared(true).  A mirror hit lets a worker
///    skip a compile+score whose verdict the realized walk would take
///    from the cache anyway; mirror reads never feed back into scores
///    or traces, so their timing-dependence is invisible to results.
///
/// Epochs measure how much the cache carries across speculation-block
/// rebuilds and chain restarts: beginEpoch() stamps a generation, and
/// hits on (or evictions of) entries born in an earlier epoch count as
/// *warm* — proof that hoisting the cache above the rebuild boundary
/// actually preserves useful entries.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SCORECACHE_H
#define PSKETCH_SYNTH_SCORECACHE_H

#include <array>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace psketch {

/// Why a candidate failed to produce a usable score.
enum class RejectReason : uint8_t {
  None,   ///< not rejected: the score is valid
  Type,   ///< a completion failed the signature type check
  Domain, ///< the scorer returned no finite likelihood
  Static, ///< the abstract interpreter proved a draw parameter invalid
};

/// Short name for traces and logs ("type", "domain", "static").
const char *rejectReasonName(RejectReason R);

/// A memoized candidate verdict: a score when the candidate is valid
/// (Reason == None), otherwise the reason it was rejected.
struct CachedScore {
  std::optional<double> LL;
  RejectReason Reason = RejectReason::None;

  CachedScore() = default;
  /// A valid score.
  explicit CachedScore(double Score) : LL(Score) {}
  /// A rejection with its reason.
  explicit CachedScore(RejectReason R) : Reason(R) {}

  bool valid() const { return LL.has_value(); }

  bool operator==(const CachedScore &O) const {
    return LL == O.LL && Reason == O.Reason;
  }
  bool operator!=(const CachedScore &O) const { return !(*this == O); }
};

/// One cache entry as captured by ScoreCache::saveState.
struct SavedCacheEntry {
  uint64_t Key = 0;
  CachedScore S;
  uint64_t Epoch = 0;
};

/// The complete serializable state of a ScoreCache (checkpoint/resume;
/// DESIGN.md §15).  Everything that influences future observable
/// behaviour is here: the entries *in LRU order* (so future evictions
/// replay identically), their epoch stamps, and the lifetime counters
/// that SynthesisStats reads at chain end.  Capacity is deliberately
/// absent — it is part of the walk-config fingerprint, not the state.
struct ScoreCacheState {
  uint64_t Evictions = 0;
  uint64_t Epoch = 0;
  uint64_t WarmHits = 0;
  uint64_t WarmEvictions = 0;
  std::vector<SavedCacheEntry> Entries; ///< Most recently used first.
};

/// Fixed-capacity LRU map from 64-bit candidate keys to verdicts.
class ScoreCache {
public:
  explicit ScoreCache(size_t Capacity) : Cap(Capacity) {}

  size_t capacity() const { return Cap; }
  size_t size() const { return Map.size(); }

  /// Returns the memoized verdict of \p Key and marks it most recently
  /// used; nullopt means "not cached".  Owner thread only.
  std::optional<CachedScore> lookup(uint64_t Key);

  /// Memoizes \p Key -> \p S, evicting the least recently used entry
  /// when full.  Inserting an existing key refreshes its recency.
  /// Owner thread only.
  void insert(uint64_t Key, CachedScore S);

  /// Recency-free probe: the verdict of \p Key without touching LRU
  /// order, hit/warm counters, or the shared mirror.  Owner thread
  /// only (worker threads use peekShared).
  std::optional<CachedScore> peek(uint64_t Key) const;

  /// True when \p Key is resident (does not touch recency; tests).
  bool contains(uint64_t Key) const { return Map.count(Key) != 0; }

  /// Entries dropped to make room (lifetime count; exported as
  /// `synth.cache.evictions` when metrics are on).  A high rate against
  /// hits means the walk revisits more distinct candidates than the
  /// capacity holds.
  uint64_t evictions() const { return Evictions; }

  /// Starts a new entry generation: entries inserted before this call
  /// become *warm* for the counters below.  Called at every
  /// speculation-block rebuild (and at chain-restart boundaries), so
  /// the warm counters certify that the cache outlives those
  /// boundaries.
  void beginEpoch() { ++CurrentEpoch; }

  /// Lifetime hits served by an entry born in an earlier epoch.  Each
  /// entry counts at most once per epoch (a warm hit re-stamps it).
  uint64_t warmHits() const { return WarmHits; }

  /// Lifetime evictions of entries born in an earlier epoch — entries
  /// that survived at least one rebuild before being displaced.
  uint64_t warmEvictions() const { return WarmEvictions; }

  /// Enables (or tears down) the striped read mirror for peekShared.
  /// Enabling copies the current contents into the stripes; while
  /// enabled, every insert/evict maintains the mirror under the
  /// affected stripe's mutex.
  void setShared(bool Shared);
  bool isShared() const { return Shared; }

  /// Concurrent recency-free probe served from the striped mirror;
  /// only valid while setShared(true).  Safe to call from any thread
  /// concurrently with owner-thread insert/evict.  Mirror hits may
  /// only ever save work — the realized walk re-resolves every verdict
  /// through lookup()/insert() in order.
  std::optional<CachedScore> peekShared(uint64_t Key) const;

  /// Captures the full observable state for a checkpoint (owner thread
  /// only, outside any speculation block).
  ScoreCacheState saveState() const;

  /// Replaces this cache's contents and counters with \p State (resume).
  /// Entries beyond capacity are dropped from the LRU tail, which can
  /// only happen when the walk-config fingerprint check was bypassed.
  /// The shared mirror, if enabled, is rebuilt.
  void restoreState(const ScoreCacheState &State);

private:
  struct Entry {
    uint64_t Key;
    CachedScore S;
    uint64_t Epoch;
  };

  void mirrorInsert(uint64_t Key, const CachedScore &S);
  void mirrorErase(uint64_t Key);

  /// Stripe count: power of two, small enough that setShared stays
  /// cheap, large enough that eight speculation workers rarely collide
  /// on a stripe mutex.
  static constexpr size_t NumStripes = 8;
  struct Stripe {
    mutable std::mutex M;
    std::unordered_map<uint64_t, CachedScore> Map;
  };

  size_t Cap;
  uint64_t Evictions = 0;
  uint64_t CurrentEpoch = 0;
  uint64_t WarmHits = 0;
  uint64_t WarmEvictions = 0;
  bool Shared = false;
  std::list<Entry> Order; ///< Most recently used at the front.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
  std::array<Stripe, NumStripes> Stripes;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SCORECACHE_H
