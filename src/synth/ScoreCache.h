//===- synth/ScoreCache.h - LRU memo table for candidate scores -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU memo table from completion-tuple hashes (ast/ASTUtil's
/// hashExprTuple) to candidate verdicts.  The MH walk of Algorithm 1
/// frequently revisits completions — a rejected proposal leaves the
/// chain where it was, and Operation-1/-3 mutations often undo each
/// other — so memoizing log Pr(D | P[H]) skips the lower + compile +
/// evaluate pipeline for every revisit.  Invalid candidates are memoized
/// too, *with the reason they were rejected* (type check, domain
/// validity, STATIC-REJECT): re-proposing a known-bad completion costs
/// one hash instead of one analysis or lowering attempt, and a cache-hit
/// rejection replays exactly the reason the original rejection recorded
/// (asserted in debug builds by the synthesizer).
///
/// Scoring is deterministic, so a hit returns exactly the double a
/// recompute would produce; cache size only affects speed, never
/// results.  Each chain owns a private cache (no locking, and hit/miss
/// counters stay deterministic under Threads > 1).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SCORECACHE_H
#define PSKETCH_SYNTH_SCORECACHE_H

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

namespace psketch {

/// Why a candidate failed to produce a usable score.
enum class RejectReason : uint8_t {
  None,   ///< not rejected: the score is valid
  Type,   ///< a completion failed the signature type check
  Domain, ///< the scorer returned no finite likelihood
  Static, ///< the abstract interpreter proved a draw parameter invalid
};

/// Short name for traces and logs ("type", "domain", "static").
const char *rejectReasonName(RejectReason R);

/// A memoized candidate verdict: a score when the candidate is valid
/// (Reason == None), otherwise the reason it was rejected.
struct CachedScore {
  std::optional<double> LL;
  RejectReason Reason = RejectReason::None;

  CachedScore() = default;
  /// A valid score.
  explicit CachedScore(double Score) : LL(Score) {}
  /// A rejection with its reason.
  explicit CachedScore(RejectReason R) : Reason(R) {}

  bool valid() const { return LL.has_value(); }

  bool operator==(const CachedScore &O) const {
    return LL == O.LL && Reason == O.Reason;
  }
  bool operator!=(const CachedScore &O) const { return !(*this == O); }
};

/// Fixed-capacity LRU map from 64-bit candidate keys to verdicts.
class ScoreCache {
public:
  explicit ScoreCache(size_t Capacity) : Cap(Capacity) {}

  size_t capacity() const { return Cap; }
  size_t size() const { return Map.size(); }

  /// Returns the memoized verdict of \p Key and marks it most recently
  /// used; nullopt means "not cached".
  std::optional<CachedScore> lookup(uint64_t Key);

  /// Memoizes \p Key -> \p S, evicting the least recently used entry
  /// when full.  Inserting an existing key refreshes its recency.
  void insert(uint64_t Key, CachedScore S);

  /// True when \p Key is resident (does not touch recency; tests).
  bool contains(uint64_t Key) const { return Map.count(Key) != 0; }

  /// Entries dropped to make room (lifetime count; exported as
  /// `synth.cache.evictions` when metrics are on).  A high rate against
  /// hits means the walk revisits more distinct candidates than the
  /// capacity holds.
  uint64_t evictions() const { return Evictions; }

private:
  using Entry = std::pair<uint64_t, CachedScore>;

  size_t Cap;
  uint64_t Evictions = 0;
  std::list<Entry> Order; ///< Most recently used at the front.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SCORECACHE_H
