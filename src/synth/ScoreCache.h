//===- synth/ScoreCache.h - LRU memo table for candidate scores -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LRU memo table from completion-tuple hashes (ast/ASTUtil's
/// hashExprTuple) to candidate scores.  The MH walk of Algorithm 1
/// frequently revisits completions — a rejected proposal leaves the
/// chain where it was, and Operation-1/-3 mutations often undo each
/// other — so memoizing log Pr(D | P[H]) skips the lower + compile +
/// evaluate pipeline for every revisit.  Invalid candidates (nullopt
/// scores) are memoized too: re-proposing a known-bad completion costs
/// one hash instead of one lowering attempt.
///
/// Scoring is deterministic, so a hit returns exactly the double a
/// recompute would produce; cache size only affects speed, never
/// results.  Each chain owns a private cache (no locking, and hit/miss
/// counters stay deterministic under Threads > 1).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SCORECACHE_H
#define PSKETCH_SYNTH_SCORECACHE_H

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

namespace psketch {

/// Fixed-capacity LRU map from 64-bit candidate keys to scores.
class ScoreCache {
public:
  /// A cached score: nullopt marks a candidate that scored invalid.
  using Score = std::optional<double>;

  explicit ScoreCache(size_t Capacity) : Cap(Capacity) {}

  size_t capacity() const { return Cap; }
  size_t size() const { return Map.size(); }

  /// Returns the memoized score of \p Key and marks it most recently
  /// used; outer nullopt means "not cached".
  std::optional<Score> lookup(uint64_t Key);

  /// Memoizes \p Key -> \p S, evicting the least recently used entry
  /// when full.  Inserting an existing key refreshes its recency.
  void insert(uint64_t Key, Score S);

  /// True when \p Key is resident (does not touch recency; tests).
  bool contains(uint64_t Key) const { return Map.count(Key) != 0; }

  /// Entries dropped to make room (lifetime count; exported as
  /// `synth.cache.evictions` when metrics are on).  A high rate against
  /// hits means the walk revisits more distinct candidates than the
  /// capacity holds.
  uint64_t evictions() const { return Evictions; }

private:
  using Entry = std::pair<uint64_t, Score>;

  size_t Cap;
  uint64_t Evictions = 0;
  std::list<Entry> Order; ///< Most recently used at the front.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> Map;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SCORECACHE_H
