//===- synth/SliceFactoring.cpp - Slice plans and group value caches ------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/SliceFactoring.h"

#include "ast/ASTUtil.h"

#include <map>

using namespace psketch;

SlicePlan psketch::buildSlicePlan(
    const LoweredProgram &Template,
    const std::unordered_map<std::string, unsigned> &Observed,
    unsigned NumHoles) {
  SlicePlan Plan;
  if (NumHoles == 0 || NumHoles > 64)
    return Plan;
  DependenceGraph DG = DependenceGraph::build(Template, Observed);
  if (DG.saturated())
    return Plan;
  if (DG.numHoles() > NumHoles)
    return Plan; // Template mentions holes the signature set lacks.

  Plan.AllMask =
      NumHoles >= 64 ? ~HoleMask(0) : (HoleMask(1) << NumHoles) - 1;
  // Term 0 is rho; the graph's outputs are the modeled observed
  // columns in exactly the factored term order.
  Plan.TermMask.push_back(DG.rhoMask() & Plan.AllMask);
  for (const OutputDependence &O : DG.outputs())
    Plan.TermMask.push_back(O.Mask & Plan.AllMask);

  // Group terms by identical mask; group ids in first-seen term order
  // so the grouping is deterministic.
  std::map<HoleMask, unsigned> GroupOfMask;
  for (HoleMask M : Plan.TermMask) {
    auto [It, Inserted] = GroupOfMask.emplace(M, Plan.NumGroups);
    if (Inserted) {
      ++Plan.NumGroups;
      std::vector<unsigned> Holes;
      for (unsigned H = 0; H != NumHoles; ++H)
        if (M >> H & 1)
          Holes.push_back(H);
      Plan.GroupHoles.push_back(std::move(Holes));
    }
    Plan.GroupOfTerm.push_back(It->second);
    Plan.LiveMask |= M;
  }
  Plan.Usable = true;
  return Plan;
}

namespace {

/// splitmix64-style mixer: position-sensitive fold like hashExprTuple.
std::uint64_t mix(std::uint64_t H, std::uint64_t X) {
  H ^= X + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  H *= 0xff51afd7ed558ccdULL;
  H ^= H >> 33;
  return H;
}

} // namespace

std::uint64_t psketch::sliceGroupKey(const SlicePlan &Plan, unsigned G,
                                     const std::vector<ExprPtr>
                                         &Completions) {
  std::uint64_t H = 0x534c4943ULL /*"SLIC"*/;
  H = mix(H, G);
  for (unsigned Hole : Plan.GroupHoles[G])
    H = mix(H, hashExpr(*Completions[Hole]));
  return H;
}
