//===- synth/Checkpoint.h - Durable snapshots of MH chain state -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability side of long synthesis runs (DESIGN.md §15): periodic
/// per-chain snapshots of everything the MH walk needs to continue
/// *byte-identically* after a restart, serialized to a versioned,
/// CRC-guarded binary file written crash-safely (temp file + fsync +
/// atomic rename, keep-last-K rotation).
///
/// What a chain's future depends on is remarkably small, because the
/// walk's randomness is counter-split (support/Rng.h): the proposal of
/// iteration i re-seeds the mutator from deriveStreamSeed(Seed,
/// Propose, i) and the acceptance draw is counterUniform(Seed, Accept,
/// i), so neither depends on any evolving RNG engine state.  A chain
/// resumed at iteration k therefore needs only: the current and best
/// completion tuples with their log-likelihoods, the next iteration
/// index (the whole "RNG position"), the accumulated walk counters,
/// and the exact score-cache state — entries in LRU order plus epoch
/// stamps, because cache hit/miss flags are part of the JSONL trace
/// and future evictions replay from the restored recency order.
///
/// A snapshot also pins the run's identity (seed, chain count,
/// iteration target, hole count, sketch hash, dataset fingerprint, and
/// a fingerprint of every walk-relevant config knob); resume refuses a
/// snapshot whose identity differs, because continuing such a run
/// could silently produce a walk no uninterrupted run would take.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_CHECKPOINT_H
#define PSKETCH_SYNTH_CHECKPOINT_H

#include "ast/Expr.h"
#include "synth/ScoreCache.h"
#include "synth/Synthesizer.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace psketch {

/// Snapshot format version; bump on any layout change.  parse rejects
/// mismatches outright — snapshots are short-lived operational state,
/// not an archival format, so there is no cross-version migration.
constexpr uint32_t CheckpointVersion = 1;

/// The resumable state of one MH chain, captured at an iteration
/// boundary outside any speculation block.
struct ChainCheckpoint {
  uint32_t ChainIndex = 0;

  /// First iteration the resumed chain will execute; equals the
  /// iteration target when the chain finished before the snapshot.
  uint32_t NextIter = 0;

  /// True once the chain's init loop found a valid starting tuple.
  /// (A chain that exhausted MaxInitTries deposits Initialized = false
  /// and resume simply re-runs the failing init deterministically.)
  bool Initialized = false;

  double CurrentLL = 0;
  double BestLL = 0;
  std::vector<ExprPtr> Current; ///< One completion per hole.
  std::vector<ExprPtr> Best;

  /// Walk counters accumulated over all executed iterations.  The
  /// walk-side counters (Proposed/Accepted/Invalid*/Scored/CacheHits/
  /// CacheMisses/SliceSkip/RowsScored/...) resume exactly; cost-side
  /// counters (column cache, proposal pool, speculation timing) restart
  /// from cold caches — see DESIGN.md §15 for the split.
  SynthesisStats Stats;

  /// Exact score-cache state (LRU order, epochs, lifetime counters).
  ScoreCacheState Cache;

  ChainCheckpoint() = default;
  ChainCheckpoint(ChainCheckpoint &&) = default;
  ChainCheckpoint &operator=(ChainCheckpoint &&) = default;
  /// Deep copy (completions are unique_ptr trees).
  ChainCheckpoint clone() const;
};

/// One whole-run snapshot: the identity header plus every chain's
/// state.  Chains may sit at different iterations — they are fully
/// independent, so resume continues each from its own boundary.
struct RunCheckpoint {
  uint64_t Seed = 0;
  uint32_t Chains = 0;
  uint32_t IterationTarget = 0;
  uint32_t NumHoles = 0;
  uint64_t SketchHash = 0;          ///< sketchFingerprint(Sketch).
  uint64_t DatasetFingerprint = 0;  ///< Dataset::fingerprint().
  uint64_t WalkFingerprint = 0;     ///< walkConfigFingerprint(Config).
  std::vector<ChainCheckpoint> ChainStates; ///< Size == Chains.

  RunCheckpoint() = default;
  RunCheckpoint(RunCheckpoint &&) = default;
  RunCheckpoint &operator=(RunCheckpoint &&) = default;
  RunCheckpoint clone() const;
};

/// FNV-1a over the sketch's printed form — structural identity of the
/// program being synthesized.
uint64_t sketchFingerprint(const Program &Sketch);

/// Hash of every config knob that influences the walk itself (seed
/// excluded — it is stored verbatim): GeomP and the other generator /
/// mutator parameters, iteration-shape knobs, proposal-ratio mode, and
/// the score-cache capacity.  Telemetry and cost-only knobs (threads,
/// row threads, speculation depth, caches-off escape hatches that are
/// proven bit-exact) are deliberately excluded so a run may be resumed
/// under a different execution configuration.
uint64_t walkConfigFingerprint(const SynthesisConfig &Config);

/// CRC-32 (IEEE 802.3, poly 0xEDB88320), exposed for the golden-file
/// tests.
uint32_t checkpointCrc32(const uint8_t *Data, size_t Len);

/// Appends the binary encoding of one expression tree to \p Out
/// (exposed for round-trip tests; the checkpoint payload embeds it).
void serializeExpr(std::vector<uint8_t> &Out, const Expr &E);

/// Decodes one expression from [*P, End); advances *P past it.
/// Returns nullptr (and leaves *P unspecified) on malformed input.
ExprPtr deserializeExpr(const uint8_t **P, const uint8_t *End);

/// Serializes a whole snapshot: magic, version, payload length, CRC,
/// payload.
std::vector<uint8_t> serializeCheckpoint(const RunCheckpoint &CP);

/// Parses bytes produced by serializeCheckpoint.  False on any
/// malformation — bad magic, unsupported version, truncation, CRC
/// mismatch, or payload decode failure — with \p Error explaining.
bool parseCheckpoint(const std::vector<uint8_t> &Bytes, RunCheckpoint &Out,
                     std::string &Error);

/// Writes \p CP to \p Path crash-safely: serialize to Path.tmp, fsync
/// the file, atomically rename over Path, fsync the directory.  With
/// \p Keep > 1 the previous snapshots rotate to Path.1 … Path.(K-1)
/// first, so a crash mid-write can cost at most the newest snapshot.
bool writeCheckpointFile(const std::string &Path, const RunCheckpoint &CP,
                         unsigned Keep, std::string &Error);

/// Reads and parses a snapshot file.
bool readCheckpointFile(const std::string &Path, RunCheckpoint &Out,
                        std::string &Error);

/// Collects per-chain deposits and writes whole-file snapshots.
///
/// Chains run on independent threads and reach their checkpoint
/// boundaries at unrelated times, so the coordinator keeps the latest
/// deposit per chain and writes the file whenever a deposit arrives
/// and *every* chain has deposited at least once (each chain deposits
/// its initial state right after init, so the file becomes complete as
/// soon as all chains have started).  Writing happens on the deposing
/// chain's thread under the mutex — snapshot files are small and the
/// cadence is user-chosen, so simplicity beats a writer thread.
class CheckpointCoordinator {
public:
  /// \p Header carries the identity fields; ChainStates is sized to
  /// Header.Chains internally.
  CheckpointCoordinator(std::string Path, unsigned Keep,
                        RunCheckpoint Header);

  /// Stores chain \p Chain's latest state and writes the snapshot file
  /// if all chains have deposited.  Thread-safe.
  void deposit(uint32_t Chain, ChainCheckpoint CP);

  /// Forces a write of the current deposits (final flush); false when
  /// some chain never deposited or the write failed.
  bool flush();

  /// First write error, empty when none.  Write failures are sticky
  /// and non-fatal to the run: synthesis finishes and reports the
  /// error alongside its result.
  std::string error() const;

private:
  bool writeLocked(); ///< Caller holds M.

  std::string Path;
  unsigned Keep;
  mutable std::mutex M;
  RunCheckpoint Snapshot;
  std::vector<bool> Deposited;
  std::string Error;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_CHECKPOINT_H
