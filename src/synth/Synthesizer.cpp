//===- synth/Synthesizer.cpp - MCMC-SYN (Algorithm 1) ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include <chrono>
#include <cmath>

using namespace psketch;

Synthesizer::Synthesizer(const Program &SketchIn, const InputBindings &Inputs,
                         const Dataset &Data, SynthesisConfig Config)
    : Sketch(SketchIn.clone()), Inputs(Inputs), Data(Data),
      Config(std::move(Config)) {
  auto SigsOpt = typeCheck(*Sketch, Diags);
  if (!SigsOpt)
    return;
  Sigs = std::move(*SigsOpt);
  // The parser numbers holes densely in order of occurrence; the tuple
  // representation relies on it.
  for (unsigned I = 0, E = unsigned(Sigs.size()); I != E; ++I) {
    if (Sigs[I].HoleId != I) {
      Diags.error({}, "hole ids are not contiguous");
      return;
    }
  }
  SketchValid = true;
  Score = [this](const Program &Candidate) {
    return scoreWithMoG(Candidate);
  };
}

std::optional<double>
Synthesizer::scoreWithMoG(const Program &Candidate) const {
  DiagEngine LocalDiags;
  auto LP = lowerProgram(Candidate, Inputs, LocalDiags);
  if (!LP)
    return std::nullopt;
  if (!checkDefiniteAssignment(*LP, LocalDiags))
    return std::nullopt;
  auto F = LikelihoodFunction::compile(*LP, Data, Config.Algebra);
  if (!F)
    return std::nullopt;
  double LL = F->logLikelihood(Data);
  if (std::isnan(LL))
    return std::nullopt;
  return LL;
}

bool Synthesizer::completionsValid(
    const std::vector<ExprPtr> &Completions) const {
  for (unsigned I = 0, E = unsigned(Sigs.size()); I != E; ++I)
    if (!checkCompletion(*Completions[I], Sigs[I]))
      return false;
  return true;
}

void Synthesizer::runChain(uint64_t Seed, SynthesisResult &Result) {
  Rng R(Seed);
  Mutator Mut(Sigs, Config.Gen, Config.Mut, R);

  auto RecordBest = [&](const std::vector<ExprPtr> &Completions, double LL) {
    if (Result.Succeeded && LL <= Result.BestLogLikelihood)
      return;
    Result.BestCompletions.clear();
    for (const ExprPtr &C : Completions)
      Result.BestCompletions.push_back(C->clone());
    Result.BestLogLikelihood = LL;
    Result.Succeeded = true;
  };

  // Algorithm 1, line 2: H ~ Sigma_P[.] — draw until the tuple passes
  // the validity filter and scores.
  std::vector<ExprPtr> Current;
  double CurrentLL = 0;
  bool Initialized = false;
  for (unsigned Try = 0; Try != Config.MaxInitTries && !Initialized; ++Try) {
    std::vector<ExprPtr> Candidate;
    Candidate.reserve(Sigs.size());
    for (const HoleSignature &Sig : Sigs) {
      ExprGenerator Gen(Sig, Config.Gen, R);
      Candidate.push_back(Gen.generate());
    }
    if (!completionsValid(Candidate))
      continue;
    auto Spliced = spliceCompletions(*Sketch, Candidate);
    auto LL = Score(*Spliced);
    ++Result.Stats.Scored;
    if (!LL)
      continue;
    Current = std::move(Candidate);
    CurrentLL = *LL;
    Initialized = true;
  }
  if (!Initialized)
    return;
  RecordBest(Current, CurrentLL);

  for (unsigned Iter = 0; Iter != Config.Iterations; ++Iter) {
    // Line 4: H' := mutate(H).
    std::vector<ExprPtr> Proposal = Mut.propose(Current);
    ++Result.Stats.Proposed;
    if (!completionsValid(Proposal)) {
      ++Result.Stats.Invalid;
    } else {
      auto Spliced = spliceCompletions(*Sketch, Proposal);
      auto LL = Score(*Spliced);
      ++Result.Stats.Scored;
      if (!LL) {
        ++Result.Stats.Invalid;
      } else {
        // Line 5: accept with min(1, ratio); with a uniform prior the
        // ratio is the likelihood ratio times (optionally) the
        // approximate proposal-density ratio of Section 4.2.
        double LogAlpha = *LL - CurrentLL;
        if (Config.UseProposalRatio)
          LogAlpha += Mut.lastProposalLogQRatio();
        if (LogAlpha >= 0 || std::log(R.uniform()) < LogAlpha) {
          Current = std::move(Proposal);
          CurrentLL = *LL;
          ++Result.Stats.Accepted;
        }
      }
    }
    // Line 8: S := S + {H}; line 10's argmax over S reduces to keeping
    // the best current state seen so far.
    RecordBest(Current, CurrentLL);
    if (Config.TrackBestTrace)
      Result.BestTrace.push_back(Result.BestLogLikelihood);
  }
}

SynthesisResult Synthesizer::run() {
  SynthesisResult Result;
  if (!SketchValid)
    return Result;
  auto Start = std::chrono::steady_clock::now();
  for (unsigned Chain = 0; Chain != std::max(Config.Chains, 1u); ++Chain)
    runChain(Config.Seed + Chain, Result);
  auto End = std::chrono::steady_clock::now();
  Result.Stats.Seconds =
      std::chrono::duration<double>(End - Start).count();

  if (Result.Succeeded)
    Result.BestProgram = spliceCompletions(*Sketch, Result.BestCompletions);
  return Result;
}
