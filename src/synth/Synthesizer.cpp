//===- synth/Synthesizer.cpp - MCMC-SYN (Algorithm 1) ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTUtil.h"
#include "likelihood/RowParallel.h"
#include "likelihood/TapeKernels.h"
#include "support/Log.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace psketch;

/// Per-chain results: best state, per-chain counters, telemetry
/// buffers, and the chain's *local* best-so-far trace.  run() merges
/// outcomes in chain order, so the merged result is a pure function of
/// the seeds — independent of how many pool threads executed the
/// chains.
struct Synthesizer::ChainOutcome {
  bool Succeeded = false;
  std::vector<ExprPtr> BestCompletions;
  double BestLogLikelihood = -std::numeric_limits<double>::infinity();
  SynthesisStats Stats; ///< Seconds unused (timed around the whole run).
  std::vector<double> Trace; ///< Chain-local best-so-far per iteration.

  // Telemetry, populated per the Config knobs (empty/null otherwise).
  std::vector<TraceEvent> Events;     ///< One per proposal.
  std::vector<double> CurrentLL;      ///< Current-state LL per iteration.
  std::vector<uint8_t> Accepts;       ///< 1 where the proposal accepted.
  std::shared_ptr<MetricsRegistry> Shard; ///< Per-chain metric shard.
  TapeProfile Prof; ///< Per-opcode attribution (Config.Profile).
  StagePerf Perf;   ///< Per-stage hardware counters (Config.Profile).
};

void SynthesisStats::merge(const SynthesisStats &Other) {
  Proposed += Other.Proposed;
  Accepted += Other.Accepted;
  Invalid += Other.Invalid;
  InvalidType += Other.InvalidType;
  InvalidDomain += Other.InvalidDomain;
  InvalidStatic += Other.InvalidStatic;
  Scored += Other.Scored;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  Seconds += Other.Seconds;
  ScoreCacheEvictions += Other.ScoreCacheEvictions;
  ColCacheHits += Other.ColCacheHits;
  ColCacheMisses += Other.ColCacheMisses;
  ColCacheEvictions += Other.ColCacheEvictions;
  TapeRawIns += Other.TapeRawIns;
  TapeFinalIns += Other.TapeFinalIns;
  TapeFused += Other.TapeFused;
  RowsScored += Other.RowsScored;
  RowsSimd += Other.RowsSimd;
  RowsScalarTail += Other.RowsScalarTail;
  Stage.merge(Other.Stage);
}

Synthesizer::Synthesizer(const Program &SketchIn, const InputBindings &Inputs,
                         const Dataset &Data, SynthesisConfig Config)
    : Sketch(SketchIn.clone()), Inputs(Inputs), Data(Data), ColData(Data),
      Config(std::move(Config)) {
  auto SigsOpt = typeCheck(*Sketch, Diags);
  if (!SigsOpt)
    return;
  Sigs = std::move(*SigsOpt);
  // The parser numbers holes densely in order of occurrence; the tuple
  // representation relies on it.
  for (unsigned I = 0, E = unsigned(Sigs.size()); I != E; ++I) {
    if (Sigs[I].HoleId != I) {
      Diags.error({}, "hole ids are not contiguous");
      return;
    }
  }
  SketchValid = true;
  // Attribution fractions are stated against the stage spans, so
  // profiling without the timers would have no denominator.
  if (this->Config.Profile)
    this->Config.StageTimers = true;
  Score = [this](const Program &Candidate) {
    return scoreWithMoG(Candidate);
  };
  // One analyzer per synthesizer: analyze() is const and stateless, so
  // every chain shares it.  Its verdict defines domain validity whether
  // or not the pre-filter is enabled (see SynthesisConfig::StaticAnalysis).
  Analyzer = std::make_unique<CandidateAnalyzer>(*Sketch, this->Inputs);
  // Lower the sketch once as a template (holes kept in place).  The
  // validity of lowering and definite assignment cannot depend on the
  // completions — they are closed over their hole formals — so both are
  // decided here, and per-candidate scoring plugs the tuple straight
  // into the symbolic executor.  Sketches with holes in structural
  // positions (loop bounds, array indices) fail template lowering and
  // fall back to per-candidate splice + lower.
  DiagEngine TemplateDiags;
  Template = lowerProgram(*Sketch, this->Inputs, TemplateDiags,
                          /*KeepHoles=*/true);
  if (Template) {
    DiagEngine DADiags;
    TemplateDefAssignOK = checkDefiniteAssignment(*Template, DADiags);
  }
}

std::optional<double> Synthesizer::scoreWithTemplate(
    const std::vector<ExprPtr> &Completions, ColumnCache *ColCache,
    SynthesisStats *Stats, CompileScratch *Scratch,
    RowEvalContext *Rows) const {
  if (!TemplateDefAssignOK)
    return std::nullopt;
  std::optional<LikelihoodFunction> F;
  {
    ScopedStage Span(Stage::LowerCompile);
    F = LikelihoodFunction::compile(*Template, Data, Config.Algebra,
                                    &Completions, Config.Likelihood,
                                    Scratch);
  }
  if (!F)
    return std::nullopt;
  if (Stats) {
    Stats->TapeRawIns += F->rawTapeSize();
    Stats->TapeFinalIns += F->tapeSize();
    Stats->TapeFused += F->tape().numFused();
    Stats->RowsScored += ColData.numRows();
  }
  double LL = ColCache ? F->logLikelihood(ColData, *ColCache, Rows)
                       : F->logLikelihood(ColData, Rows);
  // Done scoring: hand the function's heap storage back to the chain's
  // scratch so the next candidate compiles into warm capacity.
  if (Scratch)
    F->recycleStorage(*Scratch);
  if (std::isnan(LL))
    return std::nullopt;
  return LL;
}

std::optional<double>
Synthesizer::scoreWithMoG(const Program &Candidate) const {
  DiagEngine LocalDiags;
  std::optional<LikelihoodFunction> F;
  {
    ScopedStage Span(Stage::LowerCompile);
    auto LP = lowerProgram(Candidate, Inputs, LocalDiags);
    if (!LP)
      return std::nullopt;
    if (!checkDefiniteAssignment(*LP, LocalDiags))
      return std::nullopt;
    F = LikelihoodFunction::compile(*LP, Data, Config.Algebra,
                                    /*Completions=*/nullptr,
                                    Config.Likelihood);
  }
  if (!F)
    return std::nullopt;
  double LL = F->logLikelihood(ColData);
  if (std::isnan(LL))
    return std::nullopt;
  return LL;
}

bool Synthesizer::completionsValid(
    const std::vector<ExprPtr> &Completions) const {
  if (Completions.size() != Sigs.size())
    return false;
  for (unsigned I = 0, E = unsigned(Sigs.size()); I != E; ++I)
    if (!checkCompletion(*Completions[I], Sigs[I]))
      return false;
  return true;
}

CachedScore Synthesizer::classifyCompletions(
    const std::vector<ExprPtr> &Completions) const {
  if (!SketchValid || !completionsValid(Completions))
    return CachedScore(RejectReason::Type);
  if (Config.StaticAnalysis && Analyzer->analyze(Completions).Rejected)
    return CachedScore(RejectReason::Static);
  std::optional<double> LL;
  if (!CustomScorer && Template) {
    LL = scoreWithTemplate(Completions);
  } else {
    std::unique_ptr<Program> Spliced = spliceCompletions(*Sketch, Completions);
    LL = Score(*Spliced);
  }
  if (!Config.StaticAnalysis && Analyzer->analyze(Completions).Rejected)
    return CachedScore(RejectReason::Static);
  if (!LL)
    return CachedScore(RejectReason::Domain);
  return CachedScore(*LL);
}

void Synthesizer::runChain(unsigned ChainIndex, uint64_t Seed,
                           ChainOutcome &Out, ThreadPool *RowPool) const {
  Rng R(Seed);
  Mutator Mut(Sigs, Config.Gen, Config.Mut, R);
  ScoreCache Cache(Config.ScoreCacheSize);
  const auto ChainStart = std::chrono::steady_clock::now();
  // Drain any SIMD row tally a previous chain left on this pool
  // thread, so this chain's counters start from zero.
  (void)takeSimdRowTally();

  // Install this chain's stage-time sink for the scoring spans (in
  // this file and in likelihood/Likelihood.cpp); restored on exit so
  // pool threads never leak a sink into the next chain.
  StageTimesScope Spans(Config.StageTimers ? &Out.Stats.Stage : nullptr);

  // `--profile` sinks, installed the same way: the tape-profile sink
  // the evaluators charge opcode deltas to, and — when perf_event_open
  // works on this thread — a hardware-counter sink the stage spans
  // bracket themselves with.  Both are chain-private plain data,
  // merged in chain order by run().
  Out.Prof.SampleEvery = std::max(1u, Config.ProfileSampleEvery);
  TapeProfileScope ProfScope(Config.Profile ? &Out.Prof : nullptr);
  StagePerfSink PerfSink;
  std::optional<StagePerfScope> PerfScope;
  if (Config.Profile && PerfSink.open()) {
    PerfScope.emplace(&PerfSink);
    PerfSink.beginRun();
  }

  // Mutations per proposal: the geometric draw in action.  Fetched
  // once — the registry lookup does not belong in the MH loop.
  HistogramMetric *MutHist = nullptr;
  if (Config.Metrics) {
    Out.Shard = std::make_shared<MetricsRegistry>();
    MutHist = &Out.Shard->histogram("synth.mutations_per_proposal", 0, 16, 16);
  }
  if (Config.CollectTrace)
    Out.Events.reserve(Config.Iterations);
  if (Config.Diagnostics) {
    Out.CurrentLL.reserve(Config.Iterations);
    Out.Accepts.reserve(Config.Iterations);
  }

  auto RecordBest = [&](const std::vector<ExprPtr> &Completions, double LL) {
    if (Out.Succeeded && LL <= Out.BestLogLikelihood)
      return;
    Out.BestCompletions.clear();
    for (const ExprPtr &C : Completions)
      Out.BestCompletions.push_back(C->clone());
    Out.BestLogLikelihood = LL;
    Out.Succeeded = true;
  };

  // Score one completion tuple, memoized on the tuple's structural
  // hash.  Scoring is deterministic, so a hit returns the exact double
  // a recompute would.  With the lowered template available (and the
  // default scorer), the tuple is scored in place — no per-candidate
  // splice, lower, or definite-assignment pass — which is
  // bitwise-identical to scoring the spliced program.
  const bool UseTemplate = !CustomScorer && Template != nullptr;
  // The chain's cross-candidate column cache (DESIGN.md §9): hole-local
  // proposals share most of the likelihood DAG with the current state,
  // so most row-blocks are served from here instead of recomputed.
  // Chain-private, like the score cache, so Threads stays result- and
  // telemetry-neutral.
  std::optional<ColumnCache> ColCache;
  if (Config.Incremental && UseTemplate)
    ColCache.emplace(Config.ColumnCacheBytes);
  // This chain's handle on the run-wide row pool (null unless
  // `--row-threads` > 1 and the dataset is big enough — see run()).
  // The column cache stays chain-private but must serialize its
  // mutators once several row workers probe it concurrently.
  std::optional<RowEvalContext> RowCtx;
  if (RowPool && UseTemplate) {
    RowCtx.emplace(*RowPool, Config.RowThreads);
    if (ColCache)
      ColCache->setShared(true);
    if (Config.Profile)
      RowCtx->enableProfiling(Out.Prof.SampleEvery);
  }
  // Chain-private compile scratch: keeps the NumExpr builder's storage
  // warm across the thousands of same-shaped candidate compilations of
  // this chain.  Like the caches above, never shared across chains, and
  // like them part of the incremental machinery — `--no-incremental`
  // restores the fully independent per-candidate compilation of the
  // pre-incremental pipeline.
  CompileScratch Scratch;
  CompileScratch *ScratchPtr = Config.Incremental ? &Scratch : nullptr;
  auto ScoreOnce =
      [&](const std::vector<ExprPtr> &Completions) -> std::optional<double> {
    ++Out.Stats.Scored;
    if (UseTemplate)
      return scoreWithTemplate(Completions, ColCache ? &*ColCache : nullptr,
                               &Out.Stats, ScratchPtr,
                               RowCtx ? &*RowCtx : nullptr);
    std::unique_ptr<Program> Spliced;
    {
      ScopedStage Span(Stage::Splice);
      Spliced = spliceCompletions(*Sketch, Completions);
    }
    return Score(*Spliced);
  };
  // The STATIC-REJECT verdict of one tuple, timed under its own stage.
  auto StaticReject = [&](const std::vector<ExprPtr> &Completions) -> bool {
    ScopedStage Span(Stage::StaticCheck);
    return Analyzer->analyze(Completions).Rejected;
  };
  // Full verdict for one tuple (no memoization).  The analyzer is the
  // single definition of domain validity: with StaticAnalysis on its
  // verdict short-circuits the scoring pipeline; with it off the same
  // verdict is applied after scoring and still overrides the scorer's
  // answer.  Either way the returned CachedScore is identical, so the
  // walk — and everything derived from it — is bit-identical in both
  // modes; the flag only decides whether rejected candidates pay for a
  // lowering + evaluation first.
  auto Classify = [&](const std::vector<ExprPtr> &Completions) -> CachedScore {
    if (Config.StaticAnalysis && StaticReject(Completions))
      return CachedScore(RejectReason::Static);
    auto LL = ScoreOnce(Completions);
    if (!Config.StaticAnalysis && StaticReject(Completions))
      return CachedScore(RejectReason::Static);
    if (!LL)
      return CachedScore(RejectReason::Domain);
    return CachedScore(*LL);
  };
  // LastProbeHit reports whether the most recent ScoreCompletions call
  // was answered by the cache (telemetry only).
  bool LastProbeHit = false;
  auto ScoreCompletions =
      [&](const std::vector<ExprPtr> &Completions) -> CachedScore {
    LastProbeHit = false;
    if (Cache.capacity() == 0)
      return Classify(Completions);
    uint64_t Key;
    std::optional<CachedScore> Hit;
    {
      ScopedStage Span(Stage::CacheProbe);
      Key = hashExprTuple(Completions);
      Hit = Cache.lookup(Key);
    }
    if (Hit) {
      ++Out.Stats.CacheHits;
      LastProbeHit = true;
      // A cache-hit rejection must replay exactly the reason the miss
      // recorded; recheck the (pure, side-effect-free) analyzer verdict
      // in debug builds.
      assert((Hit->Reason != RejectReason::Static ||
              Analyzer->analyze(Completions).Rejected) &&
             "cached STATIC-REJECT no longer reproducible");
      return *Hit;
    }
    ++Out.Stats.CacheMisses;
    CachedScore S = Classify(Completions);
    Cache.insert(Key, S);
    return S;
  };

  // Algorithm 1, line 2: H ~ Sigma_P[.] — draw until the tuple passes
  // the validity filter and scores.
  std::vector<ExprPtr> Current;
  double CurrentLL = 0;
  bool Initialized = false;
  for (unsigned Try = 0; Try != Config.MaxInitTries && !Initialized; ++Try) {
    std::vector<ExprPtr> Candidate;
    Candidate.reserve(Sigs.size());
    for (const HoleSignature &Sig : Sigs) {
      ExprGenerator Gen(Sig, Config.Gen, R);
      Candidate.push_back(Gen.generate());
    }
    if (!completionsValid(Candidate))
      continue;
    CachedScore S = ScoreCompletions(Candidate);
    if (!S.valid())
      continue;
    Current = std::move(Candidate);
    CurrentLL = *S.LL;
    Initialized = true;
  }
  if (!Initialized)
    return;
  RecordBest(Current, CurrentLL);

  for (unsigned Iter = 0; Iter != Config.Iterations; ++Iter) {
    // Line 4: H' := mutate(H).
    std::vector<ExprPtr> Proposal = Mut.propose(Current);
    ++Out.Stats.Proposed;
    if (MutHist)
      MutHist->observe(double(Mut.lastMutationOps().size()));
    TraceOutcome Outcome = TraceOutcome::InvalidType;
    double CandidateLL = std::numeric_limits<double>::quiet_NaN();
    if (!completionsValid(Proposal)) {
      ++Out.Stats.Invalid;
      ++Out.Stats.InvalidType;
    } else {
      CachedScore S = ScoreCompletions(Proposal);
      if (!S.valid()) {
        ++Out.Stats.Invalid;
        if (S.Reason == RejectReason::Static) {
          ++Out.Stats.InvalidStatic;
          Outcome = TraceOutcome::InvalidStatic;
        } else {
          ++Out.Stats.InvalidDomain;
          Outcome = TraceOutcome::InvalidDomain;
        }
      } else {
        CandidateLL = *S.LL;
        // Line 5: accept with min(1, ratio); with a uniform prior the
        // ratio is the likelihood ratio times (optionally) the
        // approximate proposal-density ratio of Section 4.2.
        double LogAlpha = *S.LL - CurrentLL;
        if (Config.UseProposalRatio)
          LogAlpha += Mut.lastProposalLogQRatio();
        if (LogAlpha >= 0 || std::log(R.uniform()) < LogAlpha) {
          Current = std::move(Proposal);
          CurrentLL = *S.LL;
          ++Out.Stats.Accepted;
          Outcome = TraceOutcome::Accept;
        } else {
          Outcome = TraceOutcome::Reject;
        }
      }
    }
    // Line 8: S := S + {H}; line 10's argmax over S reduces to keeping
    // the best current state seen so far.
    RecordBest(Current, CurrentLL);
    if (Config.TrackBestTrace)
      Out.Trace.push_back(Out.BestLogLikelihood);

    if (Config.CollectTrace) {
      TraceEvent E;
      E.Chain = ChainIndex;
      E.Iter = Iter;
      E.Mutation = describeMutations(Mut.lastMutationOps());
      E.Outcome = Outcome;
      E.CandidateLL = CandidateLL;
      E.BestLL = Out.BestLogLikelihood;
      E.CacheHit = LastProbeHit;
      Out.Events.push_back(std::move(E));
    }
    if (Config.Diagnostics) {
      Out.CurrentLL.push_back(CurrentLL);
      Out.Accepts.push_back(Outcome == TraceOutcome::Accept);
    }
    if (Config.ProgressEvery && Config.Progress &&
        ((Iter + 1) % Config.ProgressEvery == 0 ||
         Iter + 1 == Config.Iterations)) {
      const double Elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ChainStart)
              .count();
      int ProfTopOp = -1;
      double ProfTopShare = 0;
      if (Config.Profile) {
        uint64_t TopNs = 0;
        ProfTopOp = Out.Prof.topOp(&TopNs);
        uint64_t Attrib = Out.Prof.opNs() + Out.Prof.centerNs();
        ProfTopShare = Attrib ? double(TopNs) / double(Attrib) : 0.0;
      }
      Config.Progress({ChainIndex, Iter + 1, Config.Iterations,
                       Out.BestLogLikelihood,
                       ColCache ? ColCache->hitRate() : 0.0,
                       Out.Stats.InvalidStatic,
                       Elapsed > 0 ? double(Out.Stats.RowsScored) / Elapsed
                                   : 0.0,
                       ProfTopOp, ProfTopShare});
    }
  }

  // The chain's SIMD row split: everything the thread-local tally
  // accumulated since the drain at chain start — serial evaluations
  // directly, row-parallel ones via the per-task credits.
  const SimdRowTally Tally = takeSimdRowTally();
  Out.Stats.RowsSimd = Tally.RowsSimd;
  Out.Stats.RowsScalarTail = Tally.RowsTail;

  if (Config.Profile) {
    PerfSink.endRun(); // No-op when the counters never opened.
    Out.Perf = PerfSink.take();
  }

  Out.Stats.ScoreCacheEvictions = Cache.evictions();
  if (ColCache) {
    Out.Stats.ColCacheHits = ColCache->hits();
    Out.Stats.ColCacheMisses = ColCache->misses();
    Out.Stats.ColCacheEvictions = ColCache->evictions();
  }

  if (Out.Shard) {
    MetricsRegistry &Reg = *Out.Shard;
    Reg.counter("synth.proposed").add(Out.Stats.Proposed);
    Reg.counter("synth.accepted").add(Out.Stats.Accepted);
    Reg.counter("synth.invalid").add(Out.Stats.Invalid);
    Reg.counter("synth.invalid_type").add(Out.Stats.InvalidType);
    Reg.counter("synth.invalid_domain").add(Out.Stats.InvalidDomain);
    Reg.counter("synth.invalid_static").add(Out.Stats.InvalidStatic);
    // Alias with the subsystem's headline name: proposals the abstract
    // interpreter rejected before (or, with the pre-filter off,
    // regardless of) scoring.
    Reg.counter("synth.static_reject").add(Out.Stats.InvalidStatic);
    Reg.counter("synth.scored").add(Out.Stats.Scored);
    Reg.counter("synth.cache.hits").add(Out.Stats.CacheHits);
    Reg.counter("synth.cache.misses").add(Out.Stats.CacheMisses);
    Reg.counter("synth.cache.evictions").add(Out.Stats.ScoreCacheEvictions);
    Reg.counter("synth.colcache.hits").add(Out.Stats.ColCacheHits);
    Reg.counter("synth.colcache.misses").add(Out.Stats.ColCacheMisses);
    Reg.counter("synth.colcache.evictions")
        .add(Out.Stats.ColCacheEvictions);
    Reg.counter("synth.tape.raw_instructions").add(Out.Stats.TapeRawIns);
    Reg.counter("synth.tape.instructions").add(Out.Stats.TapeFinalIns);
    Reg.counter("synth.tape.fused").add(Out.Stats.TapeFused);
    Reg.counter("synth.rows_scored").add(Out.Stats.RowsScored);
    Reg.counter("tape.rows_simd").add(Out.Stats.RowsSimd);
    Reg.counter("tape.rows_scalar_tail").add(Out.Stats.RowsScalarTail);
  }

  PSKETCH_LOG(Debug, "synth",
              "chain " << ChainIndex << " finished: "
                       << Out.Stats.Proposed << " proposed, "
                       << Out.Stats.Accepted << " accepted, best LL "
                       << Out.BestLogLikelihood);
}

SynthesisResult Synthesizer::run() {
  SynthesisResult Result;
  if (!SketchValid)
    return Result;
  auto Start = std::chrono::steady_clock::now();

  const unsigned Chains = std::max(Config.Chains, 1u);
  std::vector<ChainOutcome> Outcomes(Chains);
  const unsigned Threads =
      std::min(ThreadPool::resolveThreadCount(Config.Threads), Chains);
  // One run-wide row-worker pool shared by every chain (each chain
  // waits on its own ThreadPool::Group), created only when the knob is
  // on and the template path + dataset size can use it.  Score-neutral:
  // see SynthesisConfig::RowThreads.
  std::unique_ptr<ThreadPool> RowPool;
  if (Config.RowThreads > 1 && Template && !CustomScorer &&
      Data.numRows() > LikelihoodFunction::BatchBlockRows)
    RowPool = std::make_unique<ThreadPool>(Config.RowThreads);
  if (Threads <= 1) {
    for (unsigned Chain = 0; Chain != Chains; ++Chain)
      runChain(Chain, Config.Seed + Chain, Outcomes[Chain], RowPool.get());
  } else {
    ThreadPool Pool(Threads);
    for (unsigned Chain = 0; Chain != Chains; ++Chain)
      Pool.submit([this, Chain, &Outcomes, &RowPool] {
        runChain(Chain, Config.Seed + Chain, Outcomes[Chain], RowPool.get());
      });
    Pool.wait();
  }

  // Merge in chain order: stats sum; the trace entry at iteration i of
  // chain c is the best over chains < c and chain c's own first i
  // iterations (exactly what a serial run interleaving RecordBest
  // across chains would have recorded); best state goes to the
  // earliest chain on ties.  Telemetry merges in the same fixed order,
  // so traces, metrics and diagnostics are independent of Threads.
  if (Config.Metrics)
    Result.Metrics = std::make_shared<MetricsRegistry>();
  std::vector<std::vector<uint8_t>> ChainAccepts;
  for (ChainOutcome &Out : Outcomes) {
    Result.Stats.merge(Out.Stats);
    if (Config.TrackBestTrace) {
      double PrefixBest = Result.BestLogLikelihood; // -inf before any win.
      for (double E : Out.Trace)
        Result.BestTrace.push_back(std::max(PrefixBest, E));
    }
    if (Config.CollectTrace)
      Result.TraceEvents.insert(Result.TraceEvents.end(),
                                std::make_move_iterator(Out.Events.begin()),
                                std::make_move_iterator(Out.Events.end()));
    if (Config.Diagnostics) {
      Result.ChainLLTraces.push_back(std::move(Out.CurrentLL));
      ChainAccepts.push_back(std::move(Out.Accepts));
    }
    if (Result.Metrics && Out.Shard)
      Result.Metrics->merge(*Out.Shard);
    if (Config.Profile) {
      Result.Profile.Tape.merge(Out.Prof);
      Result.Profile.Perf.merge(Out.Perf);
    }
    if (Out.Succeeded &&
        (!Result.Succeeded ||
         Out.BestLogLikelihood > Result.BestLogLikelihood)) {
      Result.BestCompletions = std::move(Out.BestCompletions);
      Result.BestLogLikelihood = Out.BestLogLikelihood;
      Result.Succeeded = true;
    }
  }

  if (Config.Diagnostics)
    Result.Convergence = computeConvergence(
        Result.ChainLLTraces, ChainAccepts, Config.DiagWindow);

  auto End = std::chrono::steady_clock::now();
  Result.Stats.Seconds =
      std::chrono::duration<double>(End - Start).count();

  Result.Profile.Enabled = Config.Profile;
  if (Config.Profile)
    Result.Profile.Tape.SampleEvery = std::max(1u, Config.ProfileSampleEvery);

  if (Result.Metrics) {
    Result.Metrics->gauge("synth.best_ll").set(Result.BestLogLikelihood);
    Result.Metrics->gauge("synth.seconds").set(Result.Stats.Seconds);
    Result.Metrics
        ->gauge("synth.candidates_per_100s")
        .set(Result.Stats.candidatesPer100Sec());
    Result.Metrics
        ->gauge("synth.colcache.hit_rate")
        .set(Result.Stats.colCacheHitRate());
    Result.Metrics
        ->gauge("synth.rows_per_sec")
        .set(Result.Stats.Seconds > 0
                 ? double(Result.Stats.RowsScored) / Result.Stats.Seconds
                 : 0.0);
    // The lane width the run's tapes dispatch to (1 scalar, 2 SSE2,
    // 4 AVX2) — resolved exactly as Tape's constructor resolves it.
    Result.Metrics
        ->gauge("tape.simd_width")
        .set(double(resolveTapeKernel(Config.Likelihood.Tape.Simd
                                          ? activeSimdLevel()
                                          : SimdLevel::Scalar)
                        .Width));
    if (Config.StageTimers)
      for (unsigned S = 0; S != NumStages; ++S)
        Result.Metrics
            ->gauge(std::string("synth.stage.") + stageName(Stage(S)) +
                    ".seconds")
            .set(Result.Stats.Stage.seconds(Stage(S)));
    if (Config.Diagnostics) {
      Result.Metrics->gauge("synth.rhat").set(Result.Convergence.SplitRHat);
      Result.Metrics->gauge("synth.ess").set(Result.Convergence.ESS);
      Result.Metrics
          ->gauge("synth.stuck_chains")
          .set(double(Result.Convergence.StuckChains.size()));
    }
    if (Config.Profile) {
      // Profile report fields, routed into the registry so
      // --metrics-out carries the attribution alongside the rest of
      // the run's telemetry.  Opcode names come from profiledTapeOpName
      // (the "sum" pseudo-opcode included), with
      // '+' mapped to '_' to keep the dotted-name grammar.
      const TapeProfile &TP = Result.Profile.Tape;
      Result.Metrics
          ->gauge("profile.attributed_fraction")
          .set(attributedEvalFraction(TP, Result.Stats.Stage));
      Result.Metrics
          ->gauge("profile.opcode_fraction")
          .set(opcodeEvalFraction(TP, Result.Stats.Stage));
      Result.Metrics->counter("profile.blocks_total").add(TP.BlocksTotal);
      Result.Metrics
          ->counter("profile.blocks_profiled")
          .add(TP.BlocksProfiled);
      for (unsigned I = 0; I != NumProfiledTapeOps; ++I) {
        if (!TP.Op[I].Calls)
          continue;
        std::string Name = profiledTapeOpName(I);
        for (char &C : Name)
          if (C == '+')
            C = '_';
        Result.Metrics->counter("profile.op." + Name + ".ns")
            .add(TP.Op[I].Ns);
        Result.Metrics->counter("profile.op." + Name + ".rows")
            .add(TP.Op[I].Rows);
      }
      for (unsigned I = 0; I != NumProfileCostCenters; ++I)
        Result.Metrics
            ->counter(std::string("profile.center.") +
                      profileCostCenterName(ProfileCostCenter(I)) + ".ns")
            .add(TP.Center[I].Ns);
      const StagePerf &PP = Result.Profile.Perf;
      Result.Metrics
          ->gauge("profile.perf.available")
          .set(PP.Available ? 1.0 : 0.0);
      if (PP.Available) {
        Result.Metrics->counter("profile.perf.cycles").add(PP.Total.Cycles);
        Result.Metrics
            ->counter("profile.perf.instructions")
            .add(PP.Total.Instructions);
        Result.Metrics
            ->counter("profile.perf.cache_misses")
            .add(PP.Total.CacheMisses);
        Result.Metrics
            ->counter("profile.perf.branch_misses")
            .add(PP.Total.BranchMisses);
      }
    }
  }

  if (Config.Diagnostics)
    PSKETCH_LOG(Info, "synth", "convergence: " << Result.Convergence.str());

  if (Result.Succeeded)
    Result.BestProgram = spliceCompletions(*Sketch, Result.BestCompletions);
  return Result;
}

RunManifest Synthesizer::makeManifest(const std::string &SketchName) const {
  RunManifest M;
  M.Seed = Config.Seed;
  M.Iterations = Config.Iterations;
  M.Chains = std::max(Config.Chains, 1u);
  M.Threads = std::min(ThreadPool::resolveThreadCount(Config.Threads),
                       M.Chains);
  M.Sketch = SketchName;
  M.DatasetRows = Data.numRows();
  M.DatasetCols = Data.numColumns();
  M.DatasetFingerprint = Data.fingerprint();
  M.ScoreCacheSize = Config.ScoreCacheSize;
  M.UseProposalRatio = Config.UseProposalRatio;
  return M;
}

ProfileReport psketch::makeProfileReport(const SynthesisResult &Result,
                                         const SynthesisConfig &Config) {
  ProfileReport R;
  R.Tape = Result.Profile.Tape;
  R.Stages = Result.Stats.Stage;
  R.Perf = Result.Profile.Perf;
  R.OpNames.reserve(NumProfiledTapeOps);
  for (unsigned I = 0; I != NumProfiledTapeOps; ++I)
    R.OpNames.push_back(profiledTapeOpName(I));
  const TapeKernel Kernels = resolveTapeKernel(
      Config.Likelihood.Tape.Simd ? activeSimdLevel() : SimdLevel::Scalar);
  R.SimdLevel = simdLevelName(Kernels.Level);
  R.SimdWidth = Kernels.Width;
  R.RunSeconds = Result.Stats.Seconds;
  R.RowsScored = Result.Stats.RowsScored;
  R.CandidatesScored = Result.Stats.Scored;
  R.Seed = Config.Seed;
  R.Iterations = Config.Iterations;
  R.Chains = std::max(Config.Chains, 1u);
  R.RowThreads = std::max(Config.RowThreads, 1u);
  return R;
}
