//===- synth/Synthesizer.cpp - MCMC-SYN (Algorithm 1) ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "ast/ASTUtil.h"
#include "likelihood/RowParallel.h"
#include "likelihood/TapeKernels.h"
#include "support/Log.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "synth/Checkpoint.h"
#include "synth/Speculation.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

using namespace psketch;

/// Per-chain results: best state, per-chain counters, telemetry
/// buffers, and the chain's *local* best-so-far trace.  run() merges
/// outcomes in chain order, so the merged result is a pure function of
/// the seeds — independent of how many pool threads executed the
/// chains.
struct Synthesizer::ChainOutcome {
  bool Succeeded = false;
  std::vector<ExprPtr> BestCompletions;
  double BestLogLikelihood = -std::numeric_limits<double>::infinity();
  SynthesisStats Stats; ///< Seconds unused (timed around the whole run).
  std::vector<double> Trace; ///< Chain-local best-so-far per iteration.

  // Telemetry, populated per the Config knobs (empty/null otherwise).
  std::vector<TraceEvent> Events;     ///< One per proposal.
  std::vector<double> CurrentLL;      ///< Current-state LL per iteration.
  std::vector<uint8_t> Accepts;       ///< 1 where the proposal accepted.
  std::shared_ptr<MetricsRegistry> Shard; ///< Per-chain metric shard.
  TapeProfile Prof; ///< Per-opcode attribution (Config.Profile).
  StagePerf Perf;   ///< Per-stage hardware counters (Config.Profile).

  /// The next iteration this chain would execute: the iteration cap
  /// after a full run, earlier when a budget stopped it (always at a
  /// block boundary).
  unsigned NextIter = 0;
  /// Why the chain stopped early; None after a full run.
  StopReason Stop = StopReason::None;
};

void SynthesisStats::merge(const SynthesisStats &Other) {
  Proposed += Other.Proposed;
  Accepted += Other.Accepted;
  Invalid += Other.Invalid;
  InvalidType += Other.InvalidType;
  InvalidDomain += Other.InvalidDomain;
  InvalidStatic += Other.InvalidStatic;
  Scored += Other.Scored;
  CacheHits += Other.CacheHits;
  CacheMisses += Other.CacheMisses;
  Seconds += Other.Seconds;
  ScoreCacheEvictions += Other.ScoreCacheEvictions;
  ColCacheHits += Other.ColCacheHits;
  ColCacheMisses += Other.ColCacheMisses;
  ColCacheEvictions += Other.ColCacheEvictions;
  TapeRawIns += Other.TapeRawIns;
  TapeFinalIns += Other.TapeFinalIns;
  TapeFused += Other.TapeFused;
  RowsScored += Other.RowsScored;
  RowsSimd += Other.RowsSimd;
  RowsScalarTail += Other.RowsScalarTail;
  ProposalPoolReused += Other.ProposalPoolReused;
  ProposalPoolAllocated += Other.ProposalPoolAllocated;
  ScoreCacheWarmHits += Other.ScoreCacheWarmHits;
  ScoreCacheWarmEvictions += Other.ScoreCacheWarmEvictions;
  SpecBlocks += Other.SpecBlocks;
  SpecNodes += Other.SpecNodes;
  SpecConsumed += Other.SpecConsumed;
  SpecWasted += Other.SpecWasted;
  SpecCancelledEarly += Other.SpecCancelledEarly;
  SpecPeekResolved += Other.SpecPeekResolved;
  SpecQueueDropped += Other.SpecQueueDropped;
  SliceSkip += Other.SliceSkip;
  SliceGroupHits += Other.SliceGroupHits;
  SliceGroupMisses += Other.SliceGroupMisses;
  SliceRowsSaved += Other.SliceRowsSaved;
  SliceRowsEvaluated += Other.SliceRowsEvaluated;
  Stage.merge(Other.Stage);
}

Synthesizer::Synthesizer(const Program &SketchIn, const InputBindings &Inputs,
                         const Dataset &Data, SynthesisConfig Config)
    : Sketch(SketchIn.clone()), Inputs(Inputs), Data(Data), ColData(Data),
      Config(std::move(Config)) {
  auto SigsOpt = typeCheck(*Sketch, Diags);
  if (!SigsOpt)
    return;
  Sigs = std::move(*SigsOpt);
  // The parser numbers holes densely in order of occurrence; the tuple
  // representation relies on it.
  for (unsigned I = 0, E = unsigned(Sigs.size()); I != E; ++I) {
    if (Sigs[I].HoleId != I) {
      Diags.error({}, "hole ids are not contiguous");
      return;
    }
  }
  SketchValid = true;
  // Attribution fractions are stated against the stage spans, so
  // profiling without the timers would have no denominator.
  if (this->Config.Profile)
    this->Config.StageTimers = true;
  Score = [this](const Program &Candidate) {
    return scoreWithMoG(Candidate);
  };
  // One analyzer per synthesizer: analyze() is const and stateless, so
  // every chain shares it.  Its verdict defines domain validity whether
  // or not the pre-filter is enabled (see SynthesisConfig::StaticAnalysis).
  Analyzer = std::make_unique<CandidateAnalyzer>(*Sketch, this->Inputs);
  // Lower the sketch once as a template (holes kept in place).  The
  // validity of lowering and definite assignment cannot depend on the
  // completions — they are closed over their hole formals — so both are
  // decided here, and per-candidate scoring plugs the tuple straight
  // into the symbolic executor.  Sketches with holes in structural
  // positions (loop bounds, array indices) fail template lowering and
  // fall back to per-candidate splice + lower.
  DiagEngine TemplateDiags;
  Template = lowerProgram(*Sketch, this->Inputs, TemplateDiags,
                          /*KeepHoles=*/true);
  if (Template) {
    DiagEngine DADiags;
    TemplateDefAssignOK = checkDefiniteAssignment(*Template, DADiags);
  }
  // The hole->observe dependence plan (DESIGN.md §14), computed once
  // per sketch like the template itself.  Unusable plans (hole-free
  // sketch, saturated analysis, >64 holes) leave the monolithic path
  // as the only one.
  if (Template && TemplateDefAssignOK)
    Plan = buildSlicePlan(*Template, observedSlots(*Template, Data),
                          unsigned(Sigs.size()));
}

std::optional<double> Synthesizer::scoreWithTemplate(
    const std::vector<ExprPtr> &Completions, ColumnCache *ColCache,
    SynthesisStats *Stats, CompileScratch *Scratch,
    RowEvalContext *Rows, SliceValueCache *Slices) const {
  if (!TemplateDefAssignOK)
    return std::nullopt;
  if (Slices && Plan.Usable)
    return scoreFactored(Completions, ColCache, Stats, Scratch, Rows,
                         *Slices);
  std::optional<LikelihoodFunction> F;
  {
    ScopedStage Span(Stage::LowerCompile);
    F = LikelihoodFunction::compile(*Template, Data, Config.Algebra,
                                    &Completions, Config.Likelihood,
                                    Scratch);
  }
  if (!F)
    return std::nullopt;
  if (Stats) {
    Stats->TapeRawIns += F->rawTapeSize();
    Stats->TapeFinalIns += F->tapeSize();
    Stats->TapeFused += F->tape().numFused();
    Stats->RowsScored += ColData.numRows();
  }
  double LL = ColCache ? F->logLikelihood(ColData, *ColCache, Rows)
                       : F->logLikelihood(ColData, Rows);
  // Done scoring: hand the function's heap storage back to the chain's
  // scratch so the next candidate compiles into warm capacity.
  if (Scratch)
    F->recycleStorage(*Scratch);
  if (std::isnan(LL))
    return std::nullopt;
  return LL;
}

std::optional<double> Synthesizer::scoreFactored(
    const std::vector<ExprPtr> &Completions, ColumnCache *ColCache,
    SynthesisStats *Stats, CompileScratch *Scratch, RowEvalContext *Rows,
    SliceValueCache &Slices) const {
  const unsigned NG = Plan.NumGroups;
  const size_t NumTerms = Plan.GroupOfTerm.size();
  const size_t NumRows = ColData.numRows();

  // Probe each group's footprint key.  A hit means some earlier tuple
  // agreed with this one on every hole the group's terms can read, so
  // its cached per-row values are bit-identical to a recompute.
  std::vector<std::uint64_t> Keys(NG);
  std::vector<SliceValueCache::Value> Vals(NG);
  std::vector<char> NeedGroup(NG, 0);
  unsigned Misses = 0;
  for (unsigned G = 0; G != NG; ++G) {
    Keys[G] = sliceGroupKey(Plan, G, Completions);
    Vals[G] = Slices.lookup(G, Keys[G]);
    if (!Vals[G]) {
      NeedGroup[G] = 1;
      ++Misses;
    }
  }
  if (Stats) {
    Stats->SliceGroupHits += NG - Misses;
    Stats->SliceGroupMisses += Misses;
    // Same semantics as the monolithic path: rows a candidate's score
    // covers, independent of how many tape rows actually ran.
    Stats->RowsScored += NumRows;
  }

  // Compile and evaluate only the missing groups.  When every group
  // hits, there is nothing to compile at all: malformedness and
  // definedness depend only on the template's structure and the
  // completions the terms can read — all covered by the footprint keys
  // — so a hit on every group certifies the tuple compiles to exactly
  // these values.
  std::optional<FactoredLikelihoodFunction> FF;
  if (Misses) {
    {
      ScopedStage Span(Stage::LowerCompile);
      FF = FactoredLikelihoodFunction::compile(
          *Template, Data, Config.Algebra, &Completions, Config.Likelihood,
          Scratch, Plan.partition(), &NeedGroup);
    }
    if (!FF)
      return std::nullopt;
    if (Stats) {
      Stats->TapeRawIns += FF->rawTapeSize();
      Stats->TapeFinalIns += FF->tapeSize();
      Stats->TapeFused += FF->numFused();
    }
    for (unsigned G = 0; G != NG; ++G) {
      if (!NeedGroup[G])
        continue;
      auto GroupRows = std::make_shared<std::vector<std::vector<double>>>();
      FF->evalGroupRows(G, ColData, *GroupRows, ColCache, Rows);
      Vals[G] = std::move(GroupRows);
      Slices.insert(G, Keys[G], Vals[G]);
    }
  }
  if (Stats) {
    // Tape rows the cache saved vs evaluated: dataset rows times the
    // member terms of each hit/missed group (the bench's reduction
    // numerator and denominator).
    std::vector<uint64_t> TermsOfGroup(NG, 0);
    for (unsigned G : Plan.GroupOfTerm)
      ++TermsOfGroup[G];
    for (unsigned G = 0; G != NG; ++G) {
      const uint64_t GroupTapeRows = TermsOfGroup[G] * uint64_t(NumRows);
      if (NeedGroup[G])
        Stats->SliceRowsEvaluated += GroupTapeRows;
      else
        Stats->SliceRowsSaved += GroupTapeRows;
    }
  }

  // Recombine all terms — cached and fresh — in the monolithic chain
  // order.  Vals[G][i] is the i-th member term of group G in ascending
  // term order, so a per-group cursor recovers the global term index.
  std::vector<const std::vector<double> *> TermRows(NumTerms);
  std::vector<unsigned> Cursor(NG, 0);
  for (size_t T = 0; T != NumTerms; ++T) {
    const unsigned G = Plan.GroupOfTerm[T];
    TermRows[T] = &(*Vals[G])[Cursor[G]++];
  }
  std::vector<double> LocalPartials;
  double LL = factoredLogLikelihood(
      TermRows, NumRows,
      Scratch ? Scratch->RecBlockPartials : LocalPartials);
  if (FF && Scratch)
    FF->recycleStorage(*Scratch);
  if (std::isnan(LL))
    return std::nullopt;
  return LL;
}

std::optional<double>
Synthesizer::scoreWithMoG(const Program &Candidate) const {
  DiagEngine LocalDiags;
  std::optional<LikelihoodFunction> F;
  {
    ScopedStage Span(Stage::LowerCompile);
    auto LP = lowerProgram(Candidate, Inputs, LocalDiags);
    if (!LP)
      return std::nullopt;
    if (!checkDefiniteAssignment(*LP, LocalDiags))
      return std::nullopt;
    F = LikelihoodFunction::compile(*LP, Data, Config.Algebra,
                                    /*Completions=*/nullptr,
                                    Config.Likelihood);
  }
  if (!F)
    return std::nullopt;
  double LL = F->logLikelihood(ColData);
  if (std::isnan(LL))
    return std::nullopt;
  return LL;
}

bool Synthesizer::completionsValid(
    const std::vector<ExprPtr> &Completions) const {
  if (Completions.size() != Sigs.size())
    return false;
  for (unsigned I = 0, E = unsigned(Sigs.size()); I != E; ++I)
    if (!checkCompletion(*Completions[I], Sigs[I]))
      return false;
  return true;
}

CachedScore Synthesizer::classifyCompletions(
    const std::vector<ExprPtr> &Completions) const {
  if (!SketchValid || !completionsValid(Completions))
    return CachedScore(RejectReason::Type);
  if (Config.StaticAnalysis && Analyzer->analyze(Completions).Rejected)
    return CachedScore(RejectReason::Static);
  std::optional<double> LL;
  if (!CustomScorer && Template) {
    LL = scoreWithTemplate(Completions);
  } else {
    std::unique_ptr<Program> Spliced = spliceCompletions(*Sketch, Completions);
    LL = Score(*Spliced);
  }
  if (!Config.StaticAnalysis && Analyzer->analyze(Completions).Rejected)
    return CachedScore(RejectReason::Static);
  if (!LL)
    return CachedScore(RejectReason::Domain);
  return CachedScore(*LL);
}

void Synthesizer::runChain(unsigned ChainIndex, uint64_t Seed,
                           ChainOutcome &Out, ScoreCache &Cache,
                           ThreadPool *RowPool, ThreadPool *SpecPool,
                           const ChainCheckpoint *Resume,
                           CheckpointCoordinator *Checkpoints,
                           const BudgetTracker *Budget) const {
  Rng R(Seed);
  Mutator Mut(Sigs, Config.Gen, Config.Mut, R);
  // Proposal tuple storage recycles through this free-list for the
  // chain's whole life (speculation blocks included).
  ProposalPool PPool;
  const auto ChainStart = std::chrono::steady_clock::now();
  // Drain any SIMD row tally a previous chain left on this pool
  // thread, so this chain's counters start from zero.
  (void)takeSimdRowTally();

  // Install this chain's stage-time sink for the scoring spans (in
  // this file and in likelihood/Likelihood.cpp); restored on exit so
  // pool threads never leak a sink into the next chain.
  StageTimesScope Spans(Config.StageTimers ? &Out.Stats.Stage : nullptr);

  // `--profile` sinks, installed the same way: the tape-profile sink
  // the evaluators charge opcode deltas to, and — when perf_event_open
  // works on this thread — a hardware-counter sink the stage spans
  // bracket themselves with.  Both are chain-private plain data,
  // merged in chain order by run().
  Out.Prof.SampleEvery = std::max(1u, Config.ProfileSampleEvery);
  TapeProfileScope ProfScope(Config.Profile ? &Out.Prof : nullptr);
  StagePerfSink PerfSink;
  std::optional<StagePerfScope> PerfScope;
  if (Config.Profile && PerfSink.open()) {
    PerfScope.emplace(&PerfSink);
    PerfSink.beginRun();
  }

  // Mutations per proposal: the geometric draw in action.  Fetched
  // once — the registry lookup does not belong in the MH loop.
  HistogramMetric *MutHist = nullptr;
  if (Config.Metrics) {
    Out.Shard = std::make_shared<MetricsRegistry>();
    MutHist = &Out.Shard->histogram("synth.mutations_per_proposal", 0, 16, 16);
  }
  if (Config.CollectTrace)
    Out.Events.reserve(Config.Iterations);
  if (Config.Diagnostics) {
    Out.CurrentLL.reserve(Config.Iterations);
    Out.Accepts.reserve(Config.Iterations);
  }

  auto RecordBest = [&](const std::vector<ExprPtr> &Completions, double LL) {
    if (Out.Succeeded && LL <= Out.BestLogLikelihood)
      return;
    Out.BestCompletions.clear();
    for (const ExprPtr &C : Completions)
      Out.BestCompletions.push_back(C->clone());
    Out.BestLogLikelihood = LL;
    Out.Succeeded = true;
  };

  // Score one completion tuple, memoized on the tuple's structural
  // hash.  Scoring is deterministic, so a hit returns the exact double
  // a recompute would.  With the lowered template available (and the
  // default scorer), the tuple is scored in place — no per-candidate
  // splice, lower, or definite-assignment pass — which is
  // bitwise-identical to scoring the spliced program.
  const bool UseTemplate = !CustomScorer && Template != nullptr;
  // The chain's cross-candidate column cache (DESIGN.md §9): hole-local
  // proposals share most of the likelihood DAG with the current state,
  // so most row-blocks are served from here instead of recomputed.
  // Chain-private, like the score cache, so Threads stays result- and
  // telemetry-neutral.
  std::optional<ColumnCache> ColCache;
  if (Config.Incremental && UseTemplate)
    ColCache.emplace(Config.ColumnCacheBytes);
  // This chain's handle on the run-wide row pool (null unless
  // `--row-threads` > 1 and the dataset is big enough — see run()).
  // The column cache stays chain-private but must serialize its
  // mutators once several row workers probe it concurrently.
  std::optional<RowEvalContext> RowCtx;
  if (RowPool && UseTemplate) {
    RowCtx.emplace(*RowPool, Config.RowThreads);
    if (ColCache)
      ColCache->setShared(true);
    if (Config.Profile)
      RowCtx->enableProfiling(Out.Prof.SampleEvery);
  }
  // Chain-private compile scratch: keeps the NumExpr builder's storage
  // warm across the thousands of same-shaped candidate compilations of
  // this chain.  Like the caches above, never shared across chains, and
  // like them part of the incremental machinery — `--no-incremental`
  // restores the fully independent per-candidate compilation of the
  // pre-incremental pipeline.
  CompileScratch Scratch;
  CompileScratch *ScratchPtr = Config.Incremental ? &Scratch : nullptr;
  // The chain's slice-value cache (DESIGN.md §14): per-group term row
  // values keyed by hole footprint, so a hole-local proposal
  // re-evaluates only the groups whose slice its mutation touched.
  // Chain-private like every cache here, so Threads stays neutral.
  // Single-group plans gain nothing (every mutation misses the one
  // group), and FastTape's value-changing simplification voids the
  // per-term bit-identity argument — both run monolithic.
  // Cross-candidate state like the column cache and compile scratch,
  // so `--no-incremental` disables it with the rest of the incremental
  // machinery (the faithful per-candidate pipeline scores monolithic).
  std::optional<SliceValueCache> Slices;
  if (Config.SliceFactoring && Config.Incremental && UseTemplate &&
      Plan.Usable && Plan.NumGroups > 1 && !Config.Likelihood.Tape.FastTape)
    Slices.emplace(Plan.NumGroups);
  // Dead-hole proposal pruning, sound whenever the plan is usable
  // (dead completions never reach any tape root, FastTape or not).
  const bool DeadSkip = Config.SliceFactoring && UseTemplate &&
                        Plan.Usable && Plan.deadMask() != 0;
  auto ScoreOnce =
      [&](const std::vector<ExprPtr> &Completions) -> std::optional<double> {
    ++Out.Stats.Scored;
    if (UseTemplate)
      return scoreWithTemplate(Completions, ColCache ? &*ColCache : nullptr,
                               &Out.Stats, ScratchPtr,
                               RowCtx ? &*RowCtx : nullptr,
                               Slices ? &*Slices : nullptr);
    std::unique_ptr<Program> Spliced;
    {
      ScopedStage Span(Stage::Splice);
      Spliced = spliceCompletions(*Sketch, Completions);
    }
    return Score(*Spliced);
  };
  // The STATIC-REJECT verdict of one tuple, timed under its own stage.
  auto StaticReject = [&](const std::vector<ExprPtr> &Completions) -> bool {
    ScopedStage Span(Stage::StaticCheck);
    return Analyzer->analyze(Completions).Rejected;
  };
  // Full verdict for one tuple (no memoization).  The analyzer is the
  // single definition of domain validity: with StaticAnalysis on its
  // verdict short-circuits the scoring pipeline; with it off the same
  // verdict is applied after scoring and still overrides the scorer's
  // answer.  Either way the returned CachedScore is identical, so the
  // walk — and everything derived from it — is bit-identical in both
  // modes; the flag only decides whether rejected candidates pay for a
  // lowering + evaluation first.
  // \p SkipLL, when set, is the dead-hole substitution: the proposal
  // differs from the current state only in holes outside every term's
  // mask, so its score is bit-for-bit the current LL and scoring is
  // skipped (`synth.slice_skip`).  Everything else — the STATIC-REJECT
  // ordering in particular — runs unchanged, so the verdict is
  // identical to what ScoreOnce would have produced.
  auto Classify = [&](const std::vector<ExprPtr> &Completions,
                      std::optional<double> SkipLL =
                          std::nullopt) -> CachedScore {
    if (Config.StaticAnalysis && StaticReject(Completions))
      return CachedScore(RejectReason::Static);
    std::optional<double> LL;
    if (SkipLL) {
      ++Out.Stats.SliceSkip;
      LL = SkipLL;
    } else {
      LL = ScoreOnce(Completions);
    }
    if (!Config.StaticAnalysis && StaticReject(Completions))
      return CachedScore(RejectReason::Static);
    if (!LL)
      return CachedScore(RejectReason::Domain);
    return CachedScore(*LL);
  };
  // LastProbeHit reports whether the most recent ScoreCompletions call
  // was answered by the cache (telemetry only).
  bool LastProbeHit = false;
  auto ScoreCompletions =
      [&](const std::vector<ExprPtr> &Completions,
          std::optional<double> SkipLL = std::nullopt) -> CachedScore {
    LastProbeHit = false;
    if (Cache.capacity() == 0)
      return Classify(Completions, SkipLL);
    uint64_t Key;
    std::optional<CachedScore> Hit;
    {
      ScopedStage Span(Stage::CacheProbe);
      Key = hashExprTuple(Completions);
      Hit = Cache.lookup(Key);
    }
    if (Hit) {
      ++Out.Stats.CacheHits;
      LastProbeHit = true;
      // A cache-hit rejection must replay exactly the reason the miss
      // recorded; recheck the (pure, side-effect-free) analyzer verdict
      // in debug builds.
      assert((Hit->Reason != RejectReason::Static ||
              Analyzer->analyze(Completions).Rejected) &&
             "cached STATIC-REJECT no longer reproducible");
      return *Hit;
    }
    ++Out.Stats.CacheMisses;
    CachedScore S = Classify(Completions, SkipLL);
    Cache.insert(Key, S);
    return S;
  };

  // --- Speculative proposal prefetching (DESIGN.md §13) ---------------
  // Active only on the template scoring path: the speculative compute
  // below is scoreWithTemplate, so sketches on the splice fallback (or
  // a custom scorer) run the plain sequential loop regardless of the
  // knob.  Depth is clamped: the tree allocates 2^D - 1 nodes.
  const unsigned SpecDepth =
      (Config.SpeculateDepth && UseTemplate && TemplateDefAssignOK)
          ? std::min(Config.SpeculateDepth, 8u)
          : 0;
  ThreadPool::Group SpecGroup;
  std::optional<SpeculationTree> Spec;
  // Worker-side candidate verdict: exactly Classify, minus every
  // chain-stats side effect (those are recorded into CR and applied by
  // the main thread only if the realized walk consumes this node).
  // Runs on pool workers and on the main thread's await() steals; the
  // stage/profile spans inside are charged only where a sink is
  // installed — the main thread — so worker compute never pollutes the
  // chain's stage accounting.
  auto SpecComputeFn = [&](const std::vector<ExprPtr> &Prop, uint64_t Key,
                           SpecCompute &CR, CompileScratch *TaskScratch) {
    const auto T0 = std::chrono::steady_clock::now();
    if (Cache.isShared()) {
      // The realized walk would answer this candidate from its cache;
      // skip the compute.  Mirror hits save work only — the walk
      // re-resolves through lookup()/insert() in realized order.
      if (std::optional<CachedScore> Hit = Cache.peekShared(Key)) {
        CR.Verdict = *Hit;
        CR.FromMirror = true;
        CR.ComputeNs = uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T0)
                .count());
        return;
      }
    }
    if (Config.StaticAnalysis && StaticReject(Prop)) {
      CR.Verdict = CachedScore(RejectReason::Static);
    } else {
      CR.Scored = true;
      // Keep this task's SIMD row split separate from whatever tally
      // the executing thread is accumulating (the main thread's chain
      // tally, on a steal): it is applied to the chain's stats only if
      // the node is consumed.
      const SimdRowTally Resident = takeSimdRowTally();
      SynthesisStats Tmp;
      std::optional<double> LL =
          scoreWithTemplate(Prop, ColCache ? &*ColCache : nullptr, &Tmp,
                            TaskScratch, /*Rows=*/nullptr);
      CR.Tally = takeSimdRowTally();
      creditSimdRowTally(Resident);
      CR.TapeRawIns = Tmp.TapeRawIns;
      CR.TapeFinalIns = Tmp.TapeFinalIns;
      CR.TapeFused = Tmp.TapeFused;
      CR.RowsScored = Tmp.RowsScored;
      if (!Config.StaticAnalysis && StaticReject(Prop))
        CR.Verdict = CachedScore(RejectReason::Static);
      else if (!LL)
        CR.Verdict = CachedScore(RejectReason::Domain);
      else
        CR.Verdict = CachedScore(*LL);
    }
    CR.ComputeNs =
        uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - T0)
                     .count());
  };
  if (SpecDepth) {
    if (SpecPool) {
      // Workers probe both caches read-only; the striped score-cache
      // mirror and the column cache's internal mutex make that safe.
      // Neither probe can change a score, so enabling sharing is
      // result-neutral (the column-cache *counters* become
      // timing-dependent — documented on SynthesisStats).
      if (ColCache)
        ColCache->setShared(true);
      if (Cache.capacity())
        Cache.setShared(true);
    }
    Spec.emplace(
        SpecDepth, SpecPool, SpecGroup, SpecComputeFn,
        [this](const std::vector<ExprPtr> &P) { return completionsValid(P); },
        Config.Incremental);
  }
  // Applies a consumed node's recorded counters to the chain's stats —
  // the exact side effects ScoreOnce/Classify would have had — and
  // returns its verdict.  Peek- and mirror-resolved nodes recorded no
  // counters (their compute was skipped), so the rare realized miss on
  // one classifies inline, which accrues counters naturally.
  auto ConsumeSpec = [&](SpeculationTree::Node &N) -> CachedScore {
    Spec->await(N);
    if (N.PeekResolved || N.R.FromMirror)
      return Classify(N.Proposal);
    if (N.R.Scored) {
      ++Out.Stats.Scored;
      Out.Stats.TapeRawIns += N.R.TapeRawIns;
      Out.Stats.TapeFinalIns += N.R.TapeFinalIns;
      Out.Stats.TapeFused += N.R.TapeFused;
      Out.Stats.RowsScored += N.R.RowsScored;
      Out.Stats.RowsSimd += N.R.Tally.RowsSimd;
      Out.Stats.RowsScalarTail += N.R.Tally.RowsTail;
    }
    Spec->markConsumed(N);
    return N.R.Verdict;
  };
  // ScoreCompletions for a speculated iteration: the same probe ->
  // classify -> insert protocol against the same chain cache, with the
  // node's verdict standing in for Classify.  Byte-identity across
  // depths holds because every cache mutation still happens here, on
  // the main thread, in realized order.
  auto ResolveSpec = [&](SpeculationTree::Node &N) -> CachedScore {
    LastProbeHit = false;
    if (Cache.capacity() == 0)
      return ConsumeSpec(N);
    std::optional<CachedScore> Hit;
    {
      ScopedStage Span(Stage::CacheProbe);
      Hit = Cache.lookup(N.Key);
    }
    if (Hit) {
      ++Out.Stats.CacheHits;
      LastProbeHit = true;
      assert((Hit->Reason != RejectReason::Static ||
              Analyzer->analyze(N.Proposal).Rejected) &&
             "cached STATIC-REJECT no longer reproducible");
      return *Hit;
    }
    ++Out.Stats.CacheMisses;
    CachedScore S = ConsumeSpec(N);
    Cache.insert(N.Key, S);
    return S;
  };

  // Algorithm 1, line 2: H ~ Sigma_P[.] — draw until the tuple passes
  // the validity filter and scores.
  std::vector<ExprPtr> Current;
  double CurrentLL = 0;
  bool Initialized = false;
  unsigned StartIter = 0;

  // Captures the chain's resumable state (DESIGN.md §15).  Only legal
  // at block boundaries: no speculation block is open, so the pools
  // hold no in-flight reference to Current, and the thread-local SIMD
  // tally covers completed evaluations only.  The deposited stats are
  // Out.Stats plus the overlays the chain tail would apply — the
  // score-cache lifetime counters and the resident row tally (taken
  // and re-credited so the tail's own accounting stays intact).
  auto DepositCheckpoint = [&](unsigned NextIter) {
    if (!Checkpoints)
      return;
    ChainCheckpoint CP;
    CP.ChainIndex = ChainIndex;
    CP.NextIter = NextIter;
    CP.Initialized = Initialized;
    CP.CurrentLL = CurrentLL;
    CP.BestLL = Out.BestLogLikelihood;
    CP.Current.reserve(Current.size());
    for (const ExprPtr &C : Current)
      CP.Current.push_back(C->clone());
    CP.Best.reserve(Out.BestCompletions.size());
    for (const ExprPtr &C : Out.BestCompletions)
      CP.Best.push_back(C->clone());
    CP.Stats = Out.Stats;
    const SimdRowTally Resident = takeSimdRowTally();
    creditSimdRowTally(Resident);
    CP.Stats.RowsSimd += Resident.RowsSimd;
    CP.Stats.RowsScalarTail += Resident.RowsTail;
    CP.Stats.ScoreCacheEvictions = Cache.evictions();
    CP.Stats.ScoreCacheWarmHits = Cache.warmHits();
    CP.Stats.ScoreCacheWarmEvictions = Cache.warmEvictions();
    CP.Cache = Cache.saveState();
    Checkpoints->deposit(ChainIndex, std::move(CP));
  };

  if (Resume && Resume->Initialized) {
    // Restore instead of drawing: the walk's randomness is keyed by
    // iteration index (counter-split streams), so the skipped init
    // loop's RNG consumption is irrelevant to every future draw and
    // the restored chain continues byte-identically.  The score cache
    // is restored verbatim — LRU order, epochs and counters — so
    // trace CacheHit flags and future evictions replay exactly.
    Cache.restoreState(Resume->Cache);
    Out.Stats = Resume->Stats;
    Current.reserve(Resume->Current.size());
    for (const ExprPtr &C : Resume->Current)
      Current.push_back(C->clone());
    CurrentLL = Resume->CurrentLL;
    Out.BestCompletions.reserve(Resume->Best.size());
    for (const ExprPtr &C : Resume->Best)
      Out.BestCompletions.push_back(C->clone());
    Out.BestLogLikelihood = Resume->BestLL;
    Out.Succeeded = !Out.BestCompletions.empty() || Sigs.empty();
    StartIter = std::min(Resume->NextIter, Config.Iterations);
    Initialized = true;
  } else {
    // A never-initialized resumed chain re-runs the (deterministic)
    // init loop from the chain seed, exactly as a fresh run would.
    for (unsigned Try = 0; Try != Config.MaxInitTries && !Initialized;
         ++Try) {
      std::vector<ExprPtr> Candidate;
      Candidate.reserve(Sigs.size());
      for (const HoleSignature &Sig : Sigs) {
        ExprGenerator Gen(Sig, Config.Gen, R);
        Candidate.push_back(Gen.generate());
      }
      if (!completionsValid(Candidate))
        continue;
      CachedScore S = ScoreCompletions(Candidate);
      if (!S.valid())
        continue;
      Current = std::move(Candidate);
      CurrentLL = *S.LL;
      Initialized = true;
    }
  }
  if (!Initialized) {
    DepositCheckpoint(0);
    return;
  }
  RecordBest(Current, CurrentLL);
  // Deposit the post-init state so the snapshot file is complete (and
  // the run resumable) as soon as every chain has started walking.
  DepositCheckpoint(StartIter);
  // First block boundary at or after this mark triggers the next
  // periodic deposit.
  unsigned NextDeposit = Config.CheckpointEvery
                             ? StartIter + Config.CheckpointEvery
                             : Config.Iterations + 1;
  // Throughput is judged on this invocation's proposals only — a
  // resumed run's restored counters say nothing about current speed.
  const uint64_t ProposedAtStart = Out.Stats.Proposed;

  unsigned Iter = StartIter;
  for (; Iter != Config.Iterations; ++Iter) {
    // Block boundary (no speculation block open): the only points
    // where the chain may stop or snapshot — the pools are drained and
    // every cache mutation up to here happened in realized order.
    if (!Spec || !Spec->inBlock()) {
      if (Budget) {
        StopReason SR = Budget->check(Out.Stats.Proposed - ProposedAtStart);
        if (SR != StopReason::None) {
          Out.Stop = SR;
          break;
        }
      }
      if (Iter >= NextDeposit) {
        DepositCheckpoint(Iter);
        NextDeposit = Iter + Config.CheckpointEvery;
      }
    }
    // Open a speculation block when none is active: stamp a cache
    // epoch (so surviving entries count as warm), expand the next
    // min(Depth, remaining) iterations, and dispatch their computes.
    if (Spec && !Spec->inBlock()) {
      Cache.beginEpoch();
      ScopedStage Span(Stage::Speculate);
      Spec->beginBlock(Current, Mut, PPool,
                       Cache.capacity() ? &Cache : nullptr, Seed, Iter,
                       std::min(SpecDepth, Config.Iterations - Iter));
    }
    SpeculationTree::Node *SpecNode = Spec ? &Spec->realized() : nullptr;

    // Line 4: H' := mutate(H).  The proposal of iteration i is drawn
    // from its own keyed stream (support/Rng.h), so it is a pure
    // function of (chain seed, i, current state) — the property that
    // lets the speculation tree have drawn the identical tuple ahead
    // of time.  When speculating, the realized node *is* that draw.
    std::vector<ExprPtr> Proposal;
    if (!SpecNode)
      Proposal = Mut.propose(
          Current, deriveStreamSeed(Seed, SpecStreamPropose, Iter), &PPool);
    const std::vector<ExprPtr> &Prop = SpecNode ? SpecNode->Proposal : Proposal;
    const std::vector<MutationOp> &OpsApplied =
        SpecNode ? SpecNode->Ops : Mut.lastMutationOps();
    ++Out.Stats.Proposed;
    if (MutHist)
      MutHist->observe(double(OpsApplied.size()));
    TraceOutcome Outcome = TraceOutcome::InvalidType;
    double CandidateLL = std::numeric_limits<double>::quiet_NaN();
    bool AcceptedNow = false;
    LastProbeHit = false;
    const bool TypeValid =
        SpecNode ? SpecNode->TypeValid : completionsValid(Prop);
    if (!TypeValid) {
      ++Out.Stats.Invalid;
      ++Out.Stats.InvalidType;
    } else {
      // Mutation-impact pruning: a proposal whose applied operations
      // all touched dead holes scores bit-for-bit the current LL.
      // Non-speculated path only — speculated nodes were computed
      // ahead of the state this test compares against, so the count
      // (not the scores) varies with SpeculateDepth.
      std::optional<double> SkipLL;
      if (DeadSkip && !SpecNode) {
        const std::vector<unsigned> &MutHoles = Mut.lastMutatedHoles();
        bool AllDead = !MutHoles.empty();
        for (unsigned H : MutHoles)
          AllDead = AllDead && (Plan.deadMask() >> H & 1);
        if (AllDead)
          SkipLL = CurrentLL;
      }
      CachedScore S =
          SpecNode ? ResolveSpec(*SpecNode) : ScoreCompletions(Prop, SkipLL);
      if (!S.valid()) {
        ++Out.Stats.Invalid;
        if (S.Reason == RejectReason::Static) {
          ++Out.Stats.InvalidStatic;
          Outcome = TraceOutcome::InvalidStatic;
        } else {
          ++Out.Stats.InvalidDomain;
          Outcome = TraceOutcome::InvalidDomain;
        }
      } else {
        CandidateLL = *S.LL;
        // Line 5: accept with min(1, ratio); with a uniform prior the
        // ratio is the likelihood ratio times (optionally) the
        // approximate proposal-density ratio of Section 4.2.  The
        // acceptance uniform comes from the iteration-keyed counter
        // stream, so it too is independent of speculation depth.
        double LogAlpha = *S.LL - CurrentLL;
        if (Config.UseProposalRatio)
          LogAlpha +=
              SpecNode ? SpecNode->QRatio : Mut.lastProposalLogQRatio();
        if (LogAlpha >= 0 ||
            std::log(counterUniform(Seed, SpecStreamAccept, Iter)) <
                LogAlpha) {
          PPool.release(std::move(Current));
          if (!SpecNode) {
            Current = std::move(Proposal);
            Proposal = std::vector<ExprPtr>();
          } else if (!LastProbeHit) {
            // ConsumeSpec awaited the node, so no worker can still be
            // reading its buffer — safe to move.
            Current = std::move(SpecNode->Proposal);
          } else {
            // The verdict came from the replay cache and the node's
            // own compute was never awaited: a worker may still be
            // reading the buffer (reads race with reads harmlessly,
            // moves do not).  Whether one actually is would be
            // scheduling — clone unconditionally so the chain's
            // allocation behavior stays deterministic.
            Current = PPool.acquire();
            Current.reserve(SpecNode->Proposal.size());
            for (const ExprPtr &C : SpecNode->Proposal)
              Current.push_back(C->clone());
          }
          CurrentLL = *S.LL;
          ++Out.Stats.Accepted;
          Outcome = TraceOutcome::Accept;
          AcceptedNow = true;
        } else {
          Outcome = TraceOutcome::Reject;
        }
      }
    }
    // A locally drawn proposal that was not accepted recycles here;
    // speculated proposals recycle in endBlock.
    if (!SpecNode && !AcceptedNow && !Proposal.empty())
      PPool.release(std::move(Proposal));
    // Line 8: S := S + {H}; line 10's argmax over S reduces to keeping
    // the best current state seen so far.
    RecordBest(Current, CurrentLL);
    if (Config.TrackBestTrace)
      Out.Trace.push_back(Out.BestLogLikelihood);

    if (Config.CollectTrace) {
      TraceEvent E;
      E.Chain = ChainIndex;
      E.Iter = Iter;
      E.Mutation = describeMutations(OpsApplied);
      E.Outcome = Outcome;
      E.CandidateLL = CandidateLL;
      E.BestLL = Out.BestLogLikelihood;
      E.CacheHit = LastProbeHit;
      Out.Events.push_back(std::move(E));
    }
    if (Spec) {
      // Feed the realized decision back: cancel the subtree this
      // decision ruled out, step to the winning child, and tear the
      // block down once its last iteration has resolved.
      Spec->advance(AcceptedNow);
      if (Spec->exhausted()) {
        ScopedStage Span(Stage::Speculate);
        Spec->endBlock(PPool);
      }
    }
    if (Config.Diagnostics) {
      Out.CurrentLL.push_back(CurrentLL);
      Out.Accepts.push_back(Outcome == TraceOutcome::Accept);
    }
    if (Config.ProgressEvery && Config.Progress &&
        ((Iter + 1) % Config.ProgressEvery == 0 ||
         Iter + 1 == Config.Iterations)) {
      const double Elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        ChainStart)
              .count();
      int ProfTopOp = -1;
      double ProfTopShare = 0;
      if (Config.Profile) {
        uint64_t TopNs = 0;
        ProfTopOp = Out.Prof.topOp(&TopNs);
        uint64_t Attrib = Out.Prof.opNs() + Out.Prof.centerNs();
        ProfTopShare = Attrib ? double(TopNs) / double(Attrib) : 0.0;
      }
      Config.Progress({ChainIndex, Iter + 1, Config.Iterations,
                       Out.BestLogLikelihood,
                       ColCache ? ColCache->hitRate() : 0.0,
                       Out.Stats.InvalidStatic,
                       Elapsed > 0 ? double(Out.Stats.RowsScored) / Elapsed
                                   : 0.0,
                       ProfTopOp, ProfTopShare});
    }
  }

  Out.NextIter = Iter;

  // The chain's SIMD row split: everything the thread-local tally
  // accumulated since the drain at chain start — serial evaluations
  // directly, row-parallel ones via the per-task credits — plus (+=)
  // the consumed speculative computes credited in ConsumeSpec.
  const SimdRowTally Tally = takeSimdRowTally();
  Out.Stats.RowsSimd += Tally.RowsSimd;
  Out.Stats.RowsScalarTail += Tally.RowsTail;

  Out.Stats.ProposalPoolReused = PPool.reused();
  Out.Stats.ProposalPoolAllocated = PPool.allocated();
  Out.Stats.ScoreCacheWarmHits = Cache.warmHits();
  Out.Stats.ScoreCacheWarmEvictions = Cache.warmEvictions();
  if (Spec) {
    const SpeculationStats &SS = Spec->stats();
    Out.Stats.SpecBlocks = SS.Blocks;
    Out.Stats.SpecNodes = SS.Nodes;
    Out.Stats.SpecConsumed = SS.Consumed;
    Out.Stats.SpecWasted = SS.Wasted;
    Out.Stats.SpecCancelledEarly = SS.CancelledEarly;
    Out.Stats.SpecPeekResolved = SS.PeekResolved;
    Out.Stats.SpecQueueDropped = SS.QueueDropped;
    if (Config.Profile) {
      // Speculation cost centers (outside the eval_batch span; the
      // attribution fractions exclude them — see Profiler.h).
      ProfileBucket &Hit =
          Out.Prof.Center[unsigned(ProfileCostCenter::SpecPredicted)];
      Hit.Ns += SS.PredictedNs;
      Hit.Calls += SS.Consumed;
      ProfileBucket &Miss =
          Out.Prof.Center[unsigned(ProfileCostCenter::SpecMispredict)];
      Miss.Ns += SS.WastedNs;
      Miss.Calls += SS.Wasted;
      ProfileBucket &Cancel =
          Out.Prof.Center[unsigned(ProfileCostCenter::SpecCancel)];
      Cancel.Ns += SS.CancelNs;
      Cancel.Calls += SS.Blocks;
    }
  }

  if (Config.Profile) {
    PerfSink.endRun(); // No-op when the counters never opened.
    Out.Perf = PerfSink.take();
  }

  Out.Stats.ScoreCacheEvictions = Cache.evictions();
  if (ColCache) {
    Out.Stats.ColCacheHits = ColCache->hits();
    Out.Stats.ColCacheMisses = ColCache->misses();
    Out.Stats.ColCacheEvictions = ColCache->evictions();
  }

  if (Out.Shard) {
    MetricsRegistry &Reg = *Out.Shard;
    Reg.counter("synth.proposed").add(Out.Stats.Proposed);
    Reg.counter("synth.accepted").add(Out.Stats.Accepted);
    Reg.counter("synth.invalid").add(Out.Stats.Invalid);
    Reg.counter("synth.invalid_type").add(Out.Stats.InvalidType);
    Reg.counter("synth.invalid_domain").add(Out.Stats.InvalidDomain);
    Reg.counter("synth.invalid_static").add(Out.Stats.InvalidStatic);
    // Alias with the subsystem's headline name: proposals the abstract
    // interpreter rejected before (or, with the pre-filter off,
    // regardless of) scoring.
    Reg.counter("synth.static_reject").add(Out.Stats.InvalidStatic);
    Reg.counter("synth.scored").add(Out.Stats.Scored);
    Reg.counter("synth.cache.hits").add(Out.Stats.CacheHits);
    Reg.counter("synth.cache.misses").add(Out.Stats.CacheMisses);
    Reg.counter("synth.cache.evictions").add(Out.Stats.ScoreCacheEvictions);
    Reg.counter("synth.cache.warm_hits").add(Out.Stats.ScoreCacheWarmHits);
    Reg.counter("synth.cache.warm_evictions")
        .add(Out.Stats.ScoreCacheWarmEvictions);
    Reg.counter("synth.proposal_pool.reused")
        .add(Out.Stats.ProposalPoolReused);
    Reg.counter("synth.proposal_pool.allocated")
        .add(Out.Stats.ProposalPoolAllocated);
    if (Spec) {
      Reg.counter("synth.spec.blocks").add(Out.Stats.SpecBlocks);
      Reg.counter("synth.spec.nodes").add(Out.Stats.SpecNodes);
      Reg.counter("synth.spec.consumed").add(Out.Stats.SpecConsumed);
      Reg.counter("synth.spec.wasted").add(Out.Stats.SpecWasted);
      Reg.counter("synth.spec.cancelled_early")
          .add(Out.Stats.SpecCancelledEarly);
      Reg.counter("synth.spec.peek_resolved")
          .add(Out.Stats.SpecPeekResolved);
      Reg.counter("synth.spec.queue_dropped")
          .add(Out.Stats.SpecQueueDropped);
    }
    Reg.counter("synth.colcache.hits").add(Out.Stats.ColCacheHits);
    Reg.counter("synth.colcache.misses").add(Out.Stats.ColCacheMisses);
    Reg.counter("synth.colcache.evictions")
        .add(Out.Stats.ColCacheEvictions);
    Reg.counter("synth.tape.raw_instructions").add(Out.Stats.TapeRawIns);
    Reg.counter("synth.tape.instructions").add(Out.Stats.TapeFinalIns);
    Reg.counter("synth.tape.fused").add(Out.Stats.TapeFused);
    Reg.counter("synth.rows_scored").add(Out.Stats.RowsScored);
    Reg.counter("synth.slice_skip").add(Out.Stats.SliceSkip);
    Reg.counter("synth.slice.group_hits").add(Out.Stats.SliceGroupHits);
    Reg.counter("synth.slice.group_misses").add(Out.Stats.SliceGroupMisses);
    Reg.counter("synth.slice.rows_saved").add(Out.Stats.SliceRowsSaved);
    Reg.counter("synth.slice.rows_evaluated")
        .add(Out.Stats.SliceRowsEvaluated);
    Reg.counter("tape.rows_simd").add(Out.Stats.RowsSimd);
    Reg.counter("tape.rows_scalar_tail").add(Out.Stats.RowsScalarTail);
  }

  // Final deposit: the chain's end state (completion or budget stop).
  // The resident tally was drained into Out.Stats above, so the
  // deposit's overlay adds zero and the snapshot equals the finalized
  // stats for everything it carries.
  DepositCheckpoint(Out.NextIter);

  PSKETCH_LOG(Debug, "synth",
              "chain " << ChainIndex << " finished"
                       << (Out.Stop != StopReason::None
                               ? std::string(" (") +
                                     stopReasonName(Out.Stop) + ")"
                               : std::string())
                       << ": " << Out.Stats.Proposed << " proposed, "
                       << Out.Stats.Accepted << " accepted, best LL "
                       << Out.BestLogLikelihood);
}

std::vector<ConfigDiag> SynthesisConfig::validate() const {
  std::vector<ConfigDiag> Diags;
  auto Err = [&](std::string Msg) {
    Diags.push_back({ConfigDiag::Severity::Error, std::move(Msg)});
  };
  auto Warn = [&](std::string Msg) {
    Diags.push_back({ConfigDiag::Severity::Warning, std::move(Msg)});
  };

  if (!(Mut.GeomP > 0.0) || Mut.GeomP > 1.0)
    Err("mutation geometric parameter (--geom-p) must be in (0, 1], got " +
        std::to_string(Mut.GeomP));
  if (Gen.TerminalBias < 0.0 || Gen.TerminalBias > 1.0)
    Err("generator terminal bias must be in [0, 1], got " +
        std::to_string(Gen.TerminalBias));
  if (Gen.MaxDepth == 0)
    Err("generator max depth must be at least 1");
  if (Algebra.MaxComponents == 0)
    Err("algebra mixture cap (MaxComponents) must be at least 1");
  if (Budget.DeadlineSeconds < 0.0)
    Err("deadline (--deadline-s) must be non-negative, got " +
        std::to_string(Budget.DeadlineSeconds));
  if (Budget.MinProposalsPerSec < 0.0)
    Err("throughput floor (--min-proposals-per-s) must be non-negative, "
        "got " +
        std::to_string(Budget.MinProposalsPerSec));
  if (CheckpointEvery > 0 && CheckpointPath.empty())
    Err("--checkpoint-every requires --checkpoint-out");

  if (Chains == 0)
    Warn("0 chains requested; running 1 chain");
  if (SpeculateDepth > 8)
    Warn("speculation depth " + std::to_string(SpeculateDepth) +
         " exceeds the supported maximum of 8 and is clamped");
  if (SpeculateDepth > 0 && Threads != 0 &&
      Threads <= std::max(Chains, 1u))
    Warn("speculation is enabled but every worker thread is consumed by "
         "chain dispatch; nodes will be computed inline (no prefetch "
         "benefit)");
  if (SliceFactoring && Likelihood.Tape.FastTape)
    Warn("slice-factored scoring is disabled while --ffast-tape is on "
         "(the factored recombination is only bit-exact without FMA "
         "contraction)");
  if (SliceFactoring && !Incremental)
    Warn("slice factoring without incremental scoring re-evaluates every "
         "group on every proposal; consider leaving --no-incremental off");
  return Diags;
}

SynthesisResult Synthesizer::run() {
  SynthesisResult Result;
  if (!SketchValid)
    return Result;
  // Refuse to run on a config with hard errors; warnings are the
  // caller's to surface (Session and the CLI both print them).
  for (const ConfigDiag &D : Config.validate())
    if (D.Sev == ConfigDiag::Severity::Error) {
      Result.Error = "invalid configuration: " + D.Message;
      return Result;
    }
  auto Start = std::chrono::steady_clock::now();

  const unsigned Chains = std::max(Config.Chains, 1u);

  // A checkpoint binds to one exact run identity: same sketch, same
  // dataset, same seed/chains/iterations, and the same walk-relevant
  // knobs (walkConfigFingerprint — deployment knobs like Threads are
  // deliberately excluded).  Anything else diverges byte-for-byte from
  // the run the snapshot came from, so we refuse rather than guess.
  if (Config.Resume) {
    const RunCheckpoint &CP = *Config.Resume;
    auto Refuse = [&](const std::string &What) {
      Result.Error = "checkpoint does not match this run (" + What + ")";
    };
    if (CP.Seed != Config.Seed)
      Refuse("seed: checkpoint " + std::to_string(CP.Seed) + ", run " +
             std::to_string(Config.Seed));
    else if (CP.Chains != Chains)
      Refuse("chains: checkpoint " + std::to_string(CP.Chains) + ", run " +
             std::to_string(Chains));
    else if (CP.IterationTarget != Config.Iterations)
      Refuse("iterations: checkpoint " + std::to_string(CP.IterationTarget) +
             ", run " + std::to_string(Config.Iterations));
    else if (CP.NumHoles != Sigs.size())
      Refuse("hole count: checkpoint " + std::to_string(CP.NumHoles) +
             ", run " + std::to_string(Sigs.size()));
    else if (CP.SketchHash != sketchFingerprint(*Sketch))
      Refuse("sketch hash");
    else if (CP.DatasetFingerprint != Data.fingerprint())
      Refuse("dataset fingerprint");
    else if (CP.WalkFingerprint != walkConfigFingerprint(Config))
      Refuse("walk configuration fingerprint");
    else if (CP.ChainStates.size() != Chains)
      Refuse("chain state count");
    if (!Result.Error.empty())
      return Result;
  }

  // The coordinator collects per-chain snapshots and writes the file
  // whenever every chain has deposited at least once; write failures
  // are sticky but never abort synthesis.
  std::unique_ptr<CheckpointCoordinator> Checkpoints;
  if (!Config.CheckpointPath.empty()) {
    RunCheckpoint Header;
    Header.Seed = Config.Seed;
    Header.Chains = Chains;
    Header.IterationTarget = Config.Iterations;
    Header.NumHoles = uint32_t(Sigs.size());
    Header.SketchHash = sketchFingerprint(*Sketch);
    Header.DatasetFingerprint = Data.fingerprint();
    Header.WalkFingerprint = walkConfigFingerprint(Config);
    Checkpoints = std::make_unique<CheckpointCoordinator>(
        Config.CheckpointPath, std::max(1u, Config.CheckpointKeep),
        std::move(Header));
  }

  BudgetTracker Budget(Config.Budget, Start, Config.Cancel.get());
  const BudgetTracker *BudgetPtr =
      (Config.Budget.active() || Config.Cancel) ? &Budget : nullptr;
  std::vector<ChainOutcome> Outcomes(Chains);
  const unsigned Requested = ThreadPool::resolveThreadCount(Config.Threads);
  const unsigned Threads = std::min(Requested, Chains);
  // Per-chain score caches, owned here so each spans its chain's whole
  // lifetime — entries survive every speculation-block boundary (the
  // warm-hit counters certify it).  unique_ptr because the striped
  // mirror's mutexes make ScoreCache non-movable.
  std::vector<std::unique_ptr<ScoreCache>> Caches;
  Caches.reserve(Chains);
  for (unsigned Chain = 0; Chain != Chains; ++Chain)
    Caches.push_back(std::make_unique<ScoreCache>(Config.ScoreCacheSize));
  // One run-wide row-worker pool shared by every chain (each chain
  // waits on its own ThreadPool::Group), created only when the knob is
  // on and the template path + dataset size can use it.  Score-neutral:
  // see SynthesisConfig::RowThreads.
  std::unique_ptr<ThreadPool> RowPool;
  if (Config.RowThreads > 1 && Template && !CustomScorer &&
      Data.numRows() > LikelihoodFunction::BatchBlockRows)
    RowPool = std::make_unique<ThreadPool>(Config.RowThreads);
  // One run-wide speculation pool, likewise shared via per-chain
  // groups.  It gets the threads chain dispatch leaves unused — with
  // more chains than threads there are none, and the chains fall back
  // to inline (steal-only) speculation, which costs nothing over the
  // sequential walk.  Score-neutral: see SynthesisConfig::SpeculateDepth.
  std::unique_ptr<ThreadPool> SpecPool;
  if (Config.SpeculateDepth > 0 && Template && !CustomScorer &&
      TemplateDefAssignOK && Requested > Threads) {
    // Speculation jobs are tens of microseconds and arrive in a burst
    // at every block, so idle workers busy-poll briefly before parking
    // — a parked worker's wake latency rivals a whole node compute.
    constexpr uint64_t SpecPoolIdleSpinNs = 150000;
    SpecPool =
        std::make_unique<ThreadPool>(Requested - Threads, SpecPoolIdleSpinNs);
  }
  auto ResumeFor = [&](unsigned Chain) -> const ChainCheckpoint * {
    if (!Config.Resume || Chain >= Config.Resume->ChainStates.size())
      return nullptr;
    return &Config.Resume->ChainStates[Chain];
  };
  if (Threads <= 1) {
    for (unsigned Chain = 0; Chain != Chains; ++Chain)
      runChain(Chain, Config.Seed + Chain, Outcomes[Chain], *Caches[Chain],
               RowPool.get(), SpecPool.get(), ResumeFor(Chain),
               Checkpoints.get(), BudgetPtr);
  } else {
    ThreadPool Pool(Threads);
    for (unsigned Chain = 0; Chain != Chains; ++Chain)
      Pool.submit([this, Chain, &Outcomes, &Caches, &RowPool, &SpecPool,
                   &ResumeFor, &Checkpoints, BudgetPtr] {
        runChain(Chain, Config.Seed + Chain, Outcomes[Chain], *Caches[Chain],
                 RowPool.get(), SpecPool.get(), ResumeFor(Chain),
                 Checkpoints.get(), BudgetPtr);
      });
    Pool.wait();
  }

  // Merge in chain order: stats sum; the trace entry at iteration i of
  // chain c is the best over chains < c and chain c's own first i
  // iterations (exactly what a serial run interleaving RecordBest
  // across chains would have recorded); best state goes to the
  // earliest chain on ties.  Telemetry merges in the same fixed order,
  // so traces, metrics and diagnostics are independent of Threads.
  if (Config.Metrics)
    Result.Metrics = std::make_shared<MetricsRegistry>();
  std::vector<std::vector<uint8_t>> ChainAccepts;
  for (ChainOutcome &Out : Outcomes) {
    Result.ChainIterations.push_back(Out.NextIter);
    // Stop reasons merge by precedence: smaller enum value wins
    // (Cancelled < Deadline < ThroughputFloor), so a run that was both
    // cancelled and past deadline reports the cancellation.
    if (Out.Stop != StopReason::None &&
        (Result.Stop == StopReason::None || Out.Stop < Result.Stop))
      Result.Stop = Out.Stop;
    Result.Stats.merge(Out.Stats);
    if (Config.TrackBestTrace) {
      double PrefixBest = Result.BestLogLikelihood; // -inf before any win.
      for (double E : Out.Trace)
        Result.BestTrace.push_back(std::max(PrefixBest, E));
    }
    if (Config.CollectTrace)
      Result.TraceEvents.insert(Result.TraceEvents.end(),
                                std::make_move_iterator(Out.Events.begin()),
                                std::make_move_iterator(Out.Events.end()));
    if (Config.Diagnostics) {
      Result.ChainLLTraces.push_back(std::move(Out.CurrentLL));
      ChainAccepts.push_back(std::move(Out.Accepts));
    }
    if (Result.Metrics && Out.Shard)
      Result.Metrics->merge(*Out.Shard);
    if (Config.Profile) {
      Result.Profile.Tape.merge(Out.Prof);
      Result.Profile.Perf.merge(Out.Perf);
    }
    if (Out.Succeeded &&
        (!Result.Succeeded ||
         Out.BestLogLikelihood > Result.BestLogLikelihood)) {
      Result.BestCompletions = std::move(Out.BestCompletions);
      Result.BestLogLikelihood = Out.BestLogLikelihood;
      Result.Succeeded = true;
    }
  }

  // Every chain has deposited its final state by now; flush makes the
  // end-of-run snapshot durable even when CheckpointEvery never fired.
  if (Checkpoints) {
    Checkpoints->flush();
    Result.CheckpointError = Checkpoints->error();
  }

  if (Config.Diagnostics)
    Result.Convergence = computeConvergence(
        Result.ChainLLTraces, ChainAccepts, Config.DiagWindow);

  auto End = std::chrono::steady_clock::now();
  Result.Stats.Seconds =
      std::chrono::duration<double>(End - Start).count();

  Result.Profile.Enabled = Config.Profile;
  if (Config.Profile)
    Result.Profile.Tape.SampleEvery = std::max(1u, Config.ProfileSampleEvery);

  if (Result.Metrics) {
    Result.Metrics->gauge("synth.best_ll").set(Result.BestLogLikelihood);
    Result.Metrics->gauge("synth.seconds").set(Result.Stats.Seconds);
    Result.Metrics
        ->gauge("synth.candidates_per_100s")
        .set(Result.Stats.candidatesPer100Sec());
    Result.Metrics
        ->gauge("synth.colcache.hit_rate")
        .set(Result.Stats.colCacheHitRate());
    Result.Metrics
        ->gauge("synth.rows_per_sec")
        .set(Result.Stats.Seconds > 0
                 ? double(Result.Stats.RowsScored) / Result.Stats.Seconds
                 : 0.0);
    // The lane width the run's tapes dispatch to (1 scalar, 2 SSE2,
    // 4 AVX2) — resolved exactly as Tape's constructor resolves it.
    Result.Metrics
        ->gauge("tape.simd_width")
        .set(double(resolveTapeKernel(Config.Likelihood.Tape.Simd
                                          ? activeSimdLevel()
                                          : SimdLevel::Scalar)
                        .Width));
    if (Config.StageTimers)
      for (unsigned S = 0; S != NumStages; ++S)
        Result.Metrics
            ->gauge(std::string("synth.stage.") + stageName(Stage(S)) +
                    ".seconds")
            .set(Result.Stats.Stage.seconds(Stage(S)));
    if (Config.Diagnostics) {
      Result.Metrics->gauge("synth.rhat").set(Result.Convergence.SplitRHat);
      Result.Metrics->gauge("synth.ess").set(Result.Convergence.ESS);
      Result.Metrics
          ->gauge("synth.stuck_chains")
          .set(double(Result.Convergence.StuckChains.size()));
    }
    if (Config.Profile) {
      // Profile report fields, routed into the registry so
      // --metrics-out carries the attribution alongside the rest of
      // the run's telemetry.  Opcode names come from profiledTapeOpName
      // (the "sum" pseudo-opcode included), with
      // '+' mapped to '_' to keep the dotted-name grammar.
      const TapeProfile &TP = Result.Profile.Tape;
      Result.Metrics
          ->gauge("profile.attributed_fraction")
          .set(attributedEvalFraction(TP, Result.Stats.Stage));
      Result.Metrics
          ->gauge("profile.opcode_fraction")
          .set(opcodeEvalFraction(TP, Result.Stats.Stage));
      Result.Metrics->counter("profile.blocks_total").add(TP.BlocksTotal);
      Result.Metrics
          ->counter("profile.blocks_profiled")
          .add(TP.BlocksProfiled);
      for (unsigned I = 0; I != NumProfiledTapeOps; ++I) {
        if (!TP.Op[I].Calls)
          continue;
        std::string Name = profiledTapeOpName(I);
        for (char &C : Name)
          if (C == '+')
            C = '_';
        Result.Metrics->counter("profile.op." + Name + ".ns")
            .add(TP.Op[I].Ns);
        Result.Metrics->counter("profile.op." + Name + ".rows")
            .add(TP.Op[I].Rows);
      }
      for (unsigned I = 0; I != NumProfileCostCenters; ++I)
        Result.Metrics
            ->counter(std::string("profile.center.") +
                      profileCostCenterName(ProfileCostCenter(I)) + ".ns")
            .add(TP.Center[I].Ns);
      const StagePerf &PP = Result.Profile.Perf;
      Result.Metrics
          ->gauge("profile.perf.available")
          .set(PP.Available ? 1.0 : 0.0);
      if (PP.Available) {
        Result.Metrics->counter("profile.perf.cycles").add(PP.Total.Cycles);
        Result.Metrics
            ->counter("profile.perf.instructions")
            .add(PP.Total.Instructions);
        Result.Metrics
            ->counter("profile.perf.cache_misses")
            .add(PP.Total.CacheMisses);
        Result.Metrics
            ->counter("profile.perf.branch_misses")
            .add(PP.Total.BranchMisses);
      }
    }
  }

  if (Config.Diagnostics)
    PSKETCH_LOG(Info, "synth", "convergence: " << Result.Convergence.str());

  if (Result.Succeeded)
    Result.BestProgram = spliceCompletions(*Sketch, Result.BestCompletions);
  return Result;
}

RunManifest Synthesizer::makeManifest(const std::string &SketchName) const {
  RunManifest M;
  M.Seed = Config.Seed;
  M.Iterations = Config.Iterations;
  M.Chains = std::max(Config.Chains, 1u);
  M.Threads = std::min(ThreadPool::resolveThreadCount(Config.Threads),
                       M.Chains);
  M.Sketch = SketchName;
  M.DatasetRows = Data.numRows();
  M.DatasetCols = Data.numColumns();
  M.DatasetFingerprint = Data.fingerprint();
  M.ScoreCacheSize = Config.ScoreCacheSize;
  M.UseProposalRatio = Config.UseProposalRatio;
  return M;
}

ProfileReport psketch::makeProfileReport(const SynthesisResult &Result,
                                         const SynthesisConfig &Config) {
  ProfileReport R;
  R.Tape = Result.Profile.Tape;
  R.Stages = Result.Stats.Stage;
  R.Perf = Result.Profile.Perf;
  R.OpNames.reserve(NumProfiledTapeOps);
  for (unsigned I = 0; I != NumProfiledTapeOps; ++I)
    R.OpNames.push_back(profiledTapeOpName(I));
  const TapeKernel Kernels = resolveTapeKernel(
      Config.Likelihood.Tape.Simd ? activeSimdLevel() : SimdLevel::Scalar);
  R.SimdLevel = simdLevelName(Kernels.Level);
  R.SimdWidth = Kernels.Width;
  R.RunSeconds = Result.Stats.Seconds;
  R.RowsScored = Result.Stats.RowsScored;
  R.CandidatesScored = Result.Stats.Scored;
  R.Seed = Config.Seed;
  R.Iterations = Config.Iterations;
  R.Chains = std::max(Config.Chains, 1u);
  R.RowThreads = std::max(Config.RowThreads, 1u);
  return R;
}
