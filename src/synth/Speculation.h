//===- synth/Speculation.h - Speculative MH proposal prefetching ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The speculative execution layer of the MH walk (DESIGN.md §13).
/// One MH iteration has exactly two successors — the proposal is
/// accepted or it is not — and under the keyed RNG discipline
/// (support/Rng.h) the proposal of iteration i+d is a pure function of
/// the chain state at i+d and the iteration index itself.  A chain can
/// therefore expand a binary *speculation tree* of the next D
/// iterations before the first of them has resolved: node (d, path)
/// holds the proposal iteration i+d would draw if the previous d
/// accept/reject decisions came out as `path`, and every node's
/// compile + score is an independent job a worker pool can start
/// immediately.
///
/// The scheduler here owns the tree: expansion (main thread; proposals
/// are cheap next to scoring), dispatch to a shared ThreadPool,
/// main-thread stealing of still-queued nodes, cooperative
/// cancellation of subtrees the realized walk rules out, and the
/// waste/hit accounting behind `synth.spec.*` and the profiler's
/// speculation cost centers.
///
/// What it deliberately does NOT own is the replay of results into the
/// walk: the chain loop in Synthesizer.cpp re-resolves every realized
/// iteration through its score cache in realized order, consuming a
/// node's verdict only where the sequential walk would have computed
/// one.  That protocol — not anything here — is what makes traces,
/// scores and stats byte-identical for every depth and thread count.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SPECULATION_H
#define PSKETCH_SYNTH_SPECULATION_H

#include "likelihood/TapeKernels.h"
#include "support/ThreadPool.h"
#include "synth/Mutate.h"
#include "synth/ScoreCache.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace psketch {

struct CompileScratch;

/// Stream tags of the keyed MH walk: the proposal of iteration i is
/// drawn from an engine seeded deriveStreamSeed(ChainSeed,
/// SpecStreamPropose, i), and its acceptance uniform is
/// counterUniform(ChainSeed, SpecStreamAccept, i).  Chain c's seed is
/// Config.Seed + c, so streams never collide across chains.
constexpr uint64_t SpecStreamPropose = 0x70726f706f7365ULL; // "propose"
constexpr uint64_t SpecStreamAccept = 0x616363657074ULL;    // "accept"

/// What one node's speculative compute produced, recorded by whichever
/// thread ran it and applied to the chain's stats only if the realized
/// walk consumes this node.
struct SpecCompute {
  CachedScore Verdict;
  /// The sequential walk's ScoreOnce ran for this verdict (Scored and
  /// the tape counters below count only in that case — a STATIC-REJECT
  /// under the pre-filter never reaches the scorer).
  bool Scored = false;
  /// Answered by the score cache's shared mirror instead of computing;
  /// the verdict is usable but no counters were produced (the chain
  /// classifies inline in the rare case the realized probe misses).
  bool FromMirror = false;
  uint64_t TapeRawIns = 0;
  uint64_t TapeFinalIns = 0;
  uint64_t TapeFused = 0;
  uint64_t RowsScored = 0;
  SimdRowTally Tally; ///< SIMD/tail row split of this compute alone.
  uint64_t ComputeNs = 0;
};

/// Aggregate speculation telemetry of one chain (exported as
/// `synth.spec.*` and folded into the profiler's speculation cost
/// centers).  Timing-dependent by nature — which nodes a worker
/// finished before cancellation depends on scheduling — so none of it
/// feeds traces or the deterministic walk stats.
struct SpeculationStats {
  uint64_t Blocks = 0;        ///< Speculation blocks expanded.
  uint64_t Nodes = 0;         ///< Live proposal nodes expanded.
  uint64_t Consumed = 0;      ///< Node verdicts the realized walk used.
  uint64_t Wasted = 0;        ///< Nodes computed but never consumed.
  uint64_t CancelledEarly = 0; ///< Nodes cancelled before any compute.
  uint64_t PeekResolved = 0;  ///< Nodes answered by an expansion-time peek.
  uint64_t QueueDropped = 0;  ///< Queued jobs ThreadPool::cancel removed.
  uint64_t PredictedNs = 0;   ///< Compute time of consumed nodes.
  uint64_t WastedNs = 0;      ///< Compute time of unconsumed nodes.
  uint64_t CancelNs = 0;      ///< Main-thread cancellation/teardown time.
};

/// Per-chain speculation scheduler: a binary tree of depth <= Depth
/// re-expanded block by block.  Construct once per chain; beginBlock /
/// realized / advance / endBlock drive one block.
class SpeculationTree {
public:
  enum class NodeState : uint8_t {
    Queued,    ///< Dispatched (or awaiting inline steal).
    Running,   ///< Some thread is computing it.
    Done,      ///< Result is valid.
    Cancelled, ///< Ruled out before any thread claimed it.
  };

  struct Node {
    std::vector<ExprPtr> Proposal;
    std::vector<MutationOp> Ops; ///< For the trace's mutation string.
    double QRatio = 0;           ///< Mutator's log proposal-density ratio.
    uint64_t Key = 0;            ///< hashExprTuple (when TypeValid).
    bool TypeValid = false;
    bool Live = false;         ///< Expanded (reachable) in this block.
    bool PeekResolved = false; ///< Verdict from an expansion-time peek.
    bool Consumed = false;     ///< Realized walk used this verdict.
    std::atomic<NodeState> State{NodeState::Cancelled};
    SpecCompute R;
  };

  /// Computes the verdict (and counters) of \p Proposal; must be safe
  /// to call from any thread concurrently.  \p Key is the proposal's
  /// structural hash (for the score-cache mirror probe); \p Scratch is
  /// a per-task compile scratch from the tree's free-list (null when
  /// the chain runs without incremental compilation).
  using ComputeFn = std::function<void(const std::vector<ExprPtr> &Proposal,
                                       uint64_t Key, SpecCompute &R,
                                       CompileScratch *Scratch)>;

  /// Type-validity filter (the synthesizer's completionsValid), applied
  /// at expansion so invalid proposals never reach the pool.
  using ValidFn = std::function<bool(const std::vector<ExprPtr> &)>;

  /// \p Pool may be null: every node is then computed inline by the
  /// main thread's await() steal, which is the Threads == 1 path and
  /// costs exactly the sequential walk's compute.  \p Group must
  /// outlive the tree (the chain owns both).
  SpeculationTree(unsigned Depth, ThreadPool *Pool, ThreadPool::Group &Group,
                  ComputeFn Compute, ValidFn Valid, bool UseScratch);
  ~SpeculationTree();

  SpeculationTree(const SpeculationTree &) = delete;
  SpeculationTree &operator=(const SpeculationTree &) = delete;

  bool inBlock() const { return BlockLen != 0; }
  /// True when every realized iteration of the current block has been
  /// advanced past — time to endBlock().
  bool exhausted() const { return inBlock() && Level == BlockLen; }

  /// Expands a block of \p Len <= Depth iterations starting at absolute
  /// iteration \p BaseIter from chain state \p Current, then dispatches
  /// every unresolved live node to the pool.  \p Cache, when non-null
  /// and non-zero-capacity, is peeked (recency-free) to resolve nodes
  /// whose verdict the realized walk would take from the cache; the
  /// peeks happen before any of this block's inserts, so which nodes
  /// resolve this way is a pure function of realized history.
  void beginBlock(const std::vector<ExprPtr> &Current, Mutator &Mut,
                  ProposalPool &PPool, const ScoreCache *Cache,
                  uint64_t ChainSeed, unsigned BaseIter, unsigned Len);

  /// The node of the current realized iteration.
  Node &realized() { return *Nodes[Cur]; }

  /// Marks the realized node consumed (its recorded counters were
  /// applied to the chain's stats).
  void markConsumed(Node &N) { N.Consumed = true; }

  /// Records the realized accept/reject decision: cancels the losing
  /// subtree (and the realized node's own compute when nothing consumed
  /// it) and steps to the winning child.
  void advance(bool Accepted);

  /// Cancels whatever the realized walk never reached, drops this
  /// group's queued jobs from the pool, waits out in-flight ones,
  /// accounts waste, and recycles every proposal buffer into \p PPool.
  void endBlock(ProposalPool &PPool);

  /// Blocks until \p N is Done.  A still-queued node is stolen and
  /// computed inline — the calling thread never idles behind the queue.
  void await(Node &N);

  const SpeculationStats &stats() const { return Stats; }

private:
  void runNode(Node &N);
  void markDone(Node &N);
  /// CAS-cancels every live, still-queued node of the subtree rooted at
  /// heap index \p Root.
  void cancelSubtree(size_t Root);

  CompileScratch *acquireScratch();
  void releaseScratch(CompileScratch *S);

  unsigned Depth;
  ThreadPool *Pool;
  ThreadPool::Group &Group;
  ComputeFn Compute;
  ValidFn Valid;
  bool UseScratch;

  /// Heap-shaped tree: node i's accept child is 2i+1, reject child
  /// 2i+2.  unique_ptr because Node holds an atomic (non-movable);
  /// allocated once for the full depth and reused across blocks.
  std::vector<std::unique_ptr<Node>> Nodes;

  std::mutex DoneMtx;
  std::condition_variable DoneCv;

  std::mutex ScratchMtx;
  std::vector<std::unique_ptr<CompileScratch>> FreeScratch;

  unsigned BlockLen = 0;  ///< 0 when no block is active.
  unsigned Level = 0;     ///< Realized depth within the block.
  size_t Cur = 0;         ///< Heap index of the realized node.
  size_t BlockNodes = 0;  ///< Heap slots of the active block (2^Len - 1).
  SpeculationStats Stats;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_SPECULATION_H
