//===- synth/Splice.h - Instantiating sketches with completions ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Splicing produces P[H] from a sketch P[.] and a completion tuple H:
/// each hole `??(e1, ..., ek)` is replaced by its completion with the
/// hole formals `%i` substituted by the hole's actual arguments ei.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_SPLICE_H
#define PSKETCH_SYNTH_SPLICE_H

#include "ast/Program.h"

#include <memory>
#include <vector>

namespace psketch {

/// Returns a copy of \p Sketch with hole #i replaced by
/// \p Completions[i].  Completions must cover every hole id occurring
/// in the sketch (asserted).
std::unique_ptr<Program>
spliceCompletions(const Program &Sketch,
                  const std::vector<const Expr *> &Completions);

/// Convenience overload over owned completions.
std::unique_ptr<Program>
spliceCompletions(const Program &Sketch,
                  const std::vector<ExprPtr> &Completions);

} // namespace psketch

#endif // PSKETCH_SYNTH_SPLICE_H
