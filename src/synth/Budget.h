//===- synth/Budget.h - Run budgets and cooperative cancellation ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stopping side of durable synthesis runs (DESIGN.md §15).  MH
/// converges only asymptotically (Section 4.4), so production runs are
/// bounded by *budgets* rather than convergence: a wall-clock deadline,
/// the iteration cap that SynthesisConfig::Iterations always was, and a
/// proposals-per-second floor that stops a run whose throughput has
/// collapsed (e.g. a dataset far too large for the deployment).  All
/// budget checks — and the cooperative cancellation flag below — are
/// evaluated at *block boundaries* only: between MH iterations, and
/// never inside an open speculation block, so stopping always leaves
/// the speculation and row pools drained and the chain state at a
/// checkpointable iteration boundary.
///
/// Cooperative cancellation is a plain atomic token.  CancelToken is
/// shared between the caller and the run; SignalCancellationScope
/// optionally routes SIGINT/SIGTERM into a token so a killed `psketch
/// synth` flushes a final checkpoint and returns a partial result with
/// an Interrupted status instead of losing every chain's state.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SYNTH_BUDGET_H
#define PSKETCH_SYNTH_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace psketch {

/// Why a run stopped before exhausting its iteration budget.  Ordered
/// by precedence: when several conditions hold at one boundary the
/// smallest nonzero value wins.
enum class StopReason : uint8_t {
  None = 0,        ///< Ran to the iteration cap.
  Cancelled,       ///< CancelToken set (signal or caller).
  Deadline,        ///< BudgetPolicy::DeadlineSeconds exceeded.
  ThroughputFloor, ///< Proposals/s fell below MinProposalsPerSec.
};

/// Short name for logs and results ("none", "cancelled", "deadline",
/// "throughput_floor").
const char *stopReasonName(StopReason R);

/// Cooperative cancellation flag, shared between a synthesis run and
/// whoever may stop it.  Setting it is sticky; the run polls it at
/// block boundaries only, so cancellation latency is bounded by one
/// speculation block (at most 8 iterations), not by one proposal.
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Declarative stopping budget of one run.  Everything defaults to
/// "unbounded"; the iteration cap lives in SynthesisConfig::Iterations.
struct BudgetPolicy {
  /// Wall-clock budget in seconds, measured from Synthesizer::run()
  /// entry of *this invocation* (a resumed run restarts the clock);
  /// 0 disables.  Enforced at block boundaries, so a run overshoots by
  /// at most one speculation block plus one proposal evaluation.
  double DeadlineSeconds = 0;

  /// Graceful early-stop floor: when a chain's lifetime proposal
  /// throughput (proposals of this invocation / elapsed seconds) drops
  /// below this after the warmup below, the chain stops with
  /// StopReason::ThroughputFloor; 0 disables.
  double MinProposalsPerSec = 0;

  /// Throughput is not evaluated before this much wall clock has
  /// elapsed — cold caches and compile warmup would otherwise trip the
  /// floor on startup.
  double ThroughputWarmupSeconds = 2.0;

  bool active() const {
    return DeadlineSeconds > 0 || MinProposalsPerSec > 0;
  }
};

/// Per-chain budget evaluator: binds a policy, the run's start time
/// and an optional cancel token, and answers "should this chain stop
/// now?" at block boundaries.  Plain value type — each chain owns one,
/// so checks touch no shared state beyond the token's atomic load.
class BudgetTracker {
public:
  using Clock = std::chrono::steady_clock;

  BudgetTracker(const BudgetPolicy &Policy, Clock::time_point RunStart,
                const CancelToken *Cancel)
      : Policy(Policy), RunStart(RunStart), Cancel(Cancel) {}

  /// The stop verdict at a block boundary; StopReason::None means keep
  /// going.  \p Proposed is the number of proposals this chain has made
  /// in this invocation (resumed iterations only).
  StopReason check(uint64_t Proposed) const {
    if (Cancel && Cancel->cancelled())
      return StopReason::Cancelled;
    if (!Policy.active())
      return StopReason::None;
    const double Elapsed =
        std::chrono::duration<double>(Clock::now() - RunStart).count();
    if (Policy.DeadlineSeconds > 0 && Elapsed >= Policy.DeadlineSeconds)
      return StopReason::Deadline;
    if (Policy.MinProposalsPerSec > 0 &&
        Elapsed > Policy.ThroughputWarmupSeconds &&
        double(Proposed) / Elapsed < Policy.MinProposalsPerSec)
      return StopReason::ThroughputFloor;
    return StopReason::None;
  }

private:
  BudgetPolicy Policy;
  Clock::time_point RunStart;
  const CancelToken *Cancel;
};

/// RAII scope that routes SIGINT and SIGTERM into \p Token for its
/// lifetime, restoring the previous handlers on destruction.  The
/// handler only sets the token's atomic flag (async-signal-safe); the
/// run notices at its next block boundary, flushes a checkpoint, and
/// returns a partial result.  A second signal while the scope is
/// active re-raises the default disposition, so an unresponsive run
/// can still be killed hard.  At most one scope may be active per
/// process; nested scopes are inert.
class SignalCancellationScope {
public:
  explicit SignalCancellationScope(std::shared_ptr<CancelToken> Token);
  ~SignalCancellationScope();

  SignalCancellationScope(const SignalCancellationScope &) = delete;
  SignalCancellationScope &operator=(const SignalCancellationScope &) = delete;

  /// Whether this scope actually installed handlers (false when nested
  /// inside another active scope).
  bool active() const { return Installed; }

private:
  std::shared_ptr<CancelToken> Token;
  bool Installed = false;
};

} // namespace psketch

#endif // PSKETCH_SYNTH_BUDGET_H
