//===- synth/Mutate.cpp - The Section 4.1 mutation proposal --------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "synth/Mutate.h"

#include "ast/ASTUtil.h"
#include "support/Casting.h"
#include "support/Special.h"

#include <cassert>
#include <cmath>

using namespace psketch;

namespace {

void collectTypedSlotsImpl(ExprPtr &Root, ScalarKind Kind, bool IsDistParam,
                           std::vector<TypedSlot> &Slots) {
  Slots.push_back({&Root, Kind, IsDistParam});
  Expr &E = *Root;
  switch (E.getKind()) {
  case Expr::Kind::Const:
  case Expr::Kind::Var:
  case Expr::Kind::HoleArg:
    return;
  case Expr::Kind::Index:
    collectTypedSlotsImpl(cast<IndexExpr>(E).getIndexPtr(), ScalarKind::Int,
                          false, Slots);
    return;
  case Expr::Kind::Unary: {
    auto &U = cast<UnaryExpr>(E);
    ScalarKind SubKind =
        U.getOp() == UnaryOp::Not ? ScalarKind::Bool : ScalarKind::Real;
    collectTypedSlotsImpl(U.getSubPtr(), SubKind, false, Slots);
    return;
  }
  case Expr::Kind::Binary: {
    auto &B = cast<BinaryExpr>(E);
    ScalarKind SubKind =
        isLogicalOp(B.getOp()) ? ScalarKind::Bool : ScalarKind::Real;
    collectTypedSlotsImpl(B.getLHSPtr(), SubKind, false, Slots);
    collectTypedSlotsImpl(B.getRHSPtr(), SubKind, false, Slots);
    return;
  }
  case Expr::Kind::Ite: {
    auto &I = cast<IteExpr>(E);
    collectTypedSlotsImpl(I.getCondPtr(), ScalarKind::Bool, false, Slots);
    collectTypedSlotsImpl(I.getThenPtr(), Kind, false, Slots);
    collectTypedSlotsImpl(I.getElsePtr(), Kind, false, Slots);
    return;
  }
  case Expr::Kind::Sample:
    for (ExprPtr &A : cast<SampleExpr>(E).getArgs())
      collectTypedSlotsImpl(A, ScalarKind::Real, /*IsDistParam=*/true,
                            Slots);
    return;
  case Expr::Kind::Hole:
    for (ExprPtr &A : cast<HoleExpr>(E).getArgs())
      collectTypedSlotsImpl(A, ScalarKind::Real, false, Slots);
    return;
  }
}

} // namespace

void psketch::collectTypedSlots(ExprPtr &Root, ScalarKind RootKind,
                                std::vector<TypedSlot> &Slots) {
  collectTypedSlotsImpl(Root, RootKind, /*IsDistParam=*/false, Slots);
}

bool Mutator::applyVariableSwap(TypedSlot Slot, const HoleSignature &Sig) {
  auto *Arg = dyn_cast<HoleArgExpr>(Slot.Ptr->get());
  if (!Arg || Sig.ArgKinds.size() < 2)
    return false;
  // Operation-1: replace with one of the *other* formals, uniformly.
  std::vector<unsigned> Others;
  for (unsigned I = 0, E = unsigned(Sig.ArgKinds.size()); I != E; ++I)
    if (I != Arg->getArgIndex())
      Others.push_back(I);
  if (Others.empty())
    return false;
  unsigned Chosen = Others[R.index(Others.size())];
  *Slot.Ptr = std::make_unique<HoleArgExpr>(Chosen, Sig.ArgKinds[Chosen]);
  return true;
}

bool Mutator::applyConstantPerturb(TypedSlot Slot) {
  auto *C = dyn_cast<ConstExpr>(Slot.Ptr->get());
  if (!C || C->getScalarKind() == ScalarKind::Bool)
    return false;
  // Operation-2: c' ~ Gaussian(c, sigma_c).
  double Old = C->getValue();
  double Sigma = Config.ConstAbsSd + Config.ConstRelSd * std::fabs(Old);
  double NewValue = R.gaussian(Old, Sigma);
  if (C->getScalarKind() == ScalarKind::Int)
    NewValue = std::round(NewValue);
  C->setValue(NewValue);
  // Nearly symmetric; sigma_c depends on |c|, so the reverse draw uses
  // a slightly different deviation.
  double ReverseSigma =
      Config.ConstAbsSd + Config.ConstRelSd * std::fabs(NewValue);
  QRatio += gaussianLogPdf(Old, NewValue, ReverseSigma) -
            gaussianLogPdf(NewValue, Old, Sigma);
  return true;
}

bool Mutator::applyOperatorSwap(TypedSlot Slot) {
  Expr *E = Slot.Ptr->get();
  if (auto *B = dyn_cast<BinaryExpr>(E)) {
    // Swap within the equivalence class, but never introduce an
    // operator the generator configuration excludes.
    auto Allowed = [&](BinaryOp Op) {
      const std::vector<BinaryOp> &Set =
          isArithOp(Op) ? GenConfig.ArithOps
          : isLogicalOp(Op) ? GenConfig.LogicalOps
                            : GenConfig.CompareOps;
      return std::find(Set.begin(), Set.end(), Op) != Set.end();
    };
    std::vector<BinaryOp> Others;
    for (BinaryOp Op : equivalentOps(B->getOp()))
      if (Allowed(Op))
        Others.push_back(Op);
    if (Others.empty())
      return false;
    B->setOp(Others[R.index(Others.size())]);
    return true;
  }
  if (auto *S = dyn_cast<SampleExpr>(E)) {
    // Swap among real-valued two-parameter distributions (equivalent
    // type: same arity, same result kind).
    std::vector<DistKind> Others;
    for (DistKind D : GenConfig.Dists)
      if (D != S->getDist() && distArity(D) == distArity(S->getDist()) &&
          distReturnsBool(D) == distReturnsBool(S->getDist()))
        Others.push_back(D);
    if (Others.empty())
      return false;
    DistKind NewDist = Others[R.index(Others.size())];
    std::vector<ExprPtr> Args = std::move(S->getArgs());
    *Slot.Ptr = std::make_unique<SampleExpr>(NewDist, std::move(Args),
                                             E->getLoc());
    return true;
  }
  return false;
}

bool Mutator::applyRegenerate(TypedSlot Slot, const HoleSignature &Sig) {
  // Operation-4: replace the subtree with a fresh derivation of the
  // corresponding non-terminal.
  ExprGenerator Gen(Sig, GenConfig, R);
  GenRole Role = Slot.IsDistParam ? GenRole::DistScale : GenRole::Value;
  ExprPtr Fresh = Gen.generate(Slot.Kind, /*Depth=*/0, Role);
  if (exprSize(*Fresh) > Config.MaxNodes)
    return false;
  // The reverse move regenerates the old subtree at the same slot.
  QRatio += grammarLogProb(**Slot.Ptr, Sig, GenConfig, Slot.Kind, 0, Role) -
            grammarLogProb(*Fresh, Sig, GenConfig, Slot.Kind, 0, Role);
  *Slot.Ptr = std::move(Fresh);
  return true;
}

bool Mutator::applyGrow(TypedSlot Slot, const HoleSignature &Sig) {
  if (Slot.IsDistParam)
    return false;
  ExprGenerator Gen(Sig, GenConfig, R);
  ExprPtr Cond = Gen.generate(ScalarKind::Bool, /*Depth=*/1);
  ExprPtr Fresh = Gen.generate(Slot.Kind, /*Depth=*/1);
  ExprPtr Current = std::move(*Slot.Ptr);
  if (exprSize(*Current) + exprSize(*Cond) + exprSize(*Fresh) + 1 >
      Config.MaxNodes) {
    *Slot.Ptr = std::move(Current);
    return false;
  }
  // The reverse move is a shrink picking the kept side (1/2); the
  // forward density generated the condition and the fresh branch.
  QRatio -= grammarLogProb(*Cond, Sig, GenConfig, ScalarKind::Bool, 1) +
            grammarLogProb(*Fresh, Sig, GenConfig, Slot.Kind, 1);
  // Keep the fitted expression on a random side.
  if (R.bernoulli(0.5))
    *Slot.Ptr = std::make_unique<IteExpr>(std::move(Cond),
                                          std::move(Current),
                                          std::move(Fresh));
  else
    *Slot.Ptr = std::make_unique<IteExpr>(std::move(Cond), std::move(Fresh),
                                          std::move(Current));
  return true;
}

bool Mutator::applyShrink(TypedSlot Slot) {
  auto *Ite = dyn_cast<IteExpr>(Slot.Ptr->get());
  if (!Ite)
    return false;
  bool KeepThen = R.bernoulli(0.5);
  // The reverse move is a grow that regenerates the dropped condition
  // and branch.  The shrink slot's hole is unknown here; grow/shrink
  // density terms use the first signature's formals conservatively
  // when multiple holes exist (approximation; see header comment).
  const HoleSignature &Sig = Sigs.front();
  const Expr &Dropped = KeepThen ? Ite->getElse() : Ite->getThen();
  QRatio += grammarLogProb(Ite->getCond(), Sig, GenConfig,
                           ScalarKind::Bool, 1) +
            grammarLogProb(Dropped, Sig, GenConfig, Slot.Kind, 1);
  ExprPtr Kept = KeepThen ? std::move(Ite->getThenPtr())
                          : std::move(Ite->getElsePtr());
  *Slot.Ptr = std::move(Kept);
  return true;
}

bool Mutator::mutateOnce(std::vector<ExprPtr> &Completions) {
  assert(Completions.size() == Sigs.size() &&
         "completion tuple arity mismatch");
  // Choose a node uniformly over the union of the tuple's ASTs: gather
  // typed slots per hole, then index into the concatenation.
  std::vector<std::pair<TypedSlot, unsigned>> All;
  for (unsigned H = 0, E = unsigned(Completions.size()); H != E; ++H) {
    std::vector<TypedSlot> Slots;
    collectTypedSlots(Completions[H], Sigs[H].ResultKind, Slots);
    for (const TypedSlot &S : Slots)
      All.push_back({S, H});
  }
  if (All.empty())
    return false;
  auto [Slot, HoleIdx] = All[R.index(All.size())];
  const HoleSignature &Sig = Sigs[HoleIdx];

  // Determine the applicable operations for this node and pick one
  // uniformly (Section 4.1).
  std::vector<MutationOp> Applicable;
  Expr *E = Slot.Ptr->get();
  if (isa<HoleArgExpr>(E) && Sig.ArgKinds.size() >= 2)
    Applicable.push_back(MutationOp::VarSwap);
  if (const auto *C = dyn_cast<ConstExpr>(E);
      C && C->getScalarKind() != ScalarKind::Bool)
    Applicable.push_back(MutationOp::ConstPerturb);
  if (const auto *B = dyn_cast<BinaryExpr>(E);
      B && !equivalentOps(B->getOp()).empty())
    Applicable.push_back(MutationOp::OpSwap);
  if (isa<SampleExpr>(E))
    Applicable.push_back(MutationOp::OpSwap);
  // Operation-4 applies to all node types.
  Applicable.push_back(MutationOp::Regen);
  if (Config.EnableGrowShrink) {
    // Grow is gated: including it unconditionally bloats candidates
    // (every slot is eligible), which slows scoring without improving
    // mixing.
    if (!Slot.IsDistParam && R.bernoulli(0.25))
      Applicable.push_back(MutationOp::Grow);
    if (isa<IteExpr>(E))
      Applicable.push_back(MutationOp::Shrink);
  }

  MutationOp Op = Applicable[R.index(Applicable.size())];
  bool Applied = false;
  switch (Op) {
  case MutationOp::VarSwap:
    Applied = applyVariableSwap(Slot, Sig);
    break;
  case MutationOp::ConstPerturb:
    Applied = applyConstantPerturb(Slot);
    break;
  case MutationOp::OpSwap:
    Applied = applyOperatorSwap(Slot);
    break;
  case MutationOp::Regen:
    Applied = applyRegenerate(Slot, Sig);
    break;
  case MutationOp::Grow:
    Applied = applyGrow(Slot, Sig);
    break;
  case MutationOp::Shrink:
    Applied = applyShrink(Slot);
    break;
  }
  if (Applied) {
    LastOps.push_back(Op);
    LastHoles.push_back(HoleIdx);
  }
  return Applied;
}

const char *psketch::mutationOpName(MutationOp Op) {
  switch (Op) {
  case MutationOp::VarSwap:
    return "var_swap";
  case MutationOp::ConstPerturb:
    return "const_perturb";
  case MutationOp::OpSwap:
    return "op_swap";
  case MutationOp::Regen:
    return "regen";
  case MutationOp::Grow:
    return "grow";
  case MutationOp::Shrink:
    return "shrink";
  }
  return "unknown";
}

std::string psketch::describeMutations(const std::vector<MutationOp> &Ops) {
  if (Ops.empty())
    return "none";
  std::string Out;
  for (MutationOp Op : Ops) {
    if (!Out.empty())
      Out += '+';
    Out += mutationOpName(Op);
  }
  return Out;
}

std::vector<ExprPtr>
Mutator::propose(const std::vector<ExprPtr> &Completions) {
  return proposeInto(Completions, /*Pool=*/nullptr);
}

std::vector<ExprPtr>
Mutator::propose(const std::vector<ExprPtr> &Completions, uint64_t StreamSeed,
                 ProposalPool *Pool) {
  R.seed(StreamSeed);
  return proposeInto(Completions, Pool);
}

std::vector<ExprPtr>
Mutator::proposeInto(const std::vector<ExprPtr> &Completions,
                     ProposalPool *Pool) {
  QRatio = 0;
  LastOps.clear();
  LastHoles.clear();
  std::vector<ExprPtr> Proposal =
      Pool ? Pool->acquire() : std::vector<ExprPtr>();
  Proposal.reserve(Completions.size());
  for (const ExprPtr &C : Completions)
    Proposal.push_back(C->clone());
  int N = R.geometric(Config.GeomP);
  for (int I = 0; I != N; ++I)
    mutateOnce(Proposal);
  return Proposal;
}
