//===- tool/Driver.cpp - The psketch command implementations --------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tool/Driver.h"

#include "analysis/Lint.h"
#include "analysis/Slicer.h"
#include "api/Session.h"
#include "ast/ASTPrinter.h"
#include "interp/Enumerate.h"
#include "interp/Interp.h"
#include "likelihood/DatasetIO.h"
#include "likelihood/Likelihood.h"
#include "likelihood/Tape.h"
#include "obs/BenchCompare.h"
#include "obs/Profiler.h"
#include "obs/Trace.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "support/Log.h"
#include "synth/Budget.h"
#include "synth/Synthesizer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace psketch;

namespace {

/// Loads, parses and type checks the program file.
std::unique_ptr<Program> loadProgram(const std::string &Path,
                                     std::ostream &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err << "error: cannot open '" << Path << "'\n";
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  DiagEngine Diags;
  auto P = parseProgramSource(Buffer.str(), Diags);
  if (!P || !typeCheck(*P, Diags)) {
    Err << Path << ":\n" << Diags.str();
    return nullptr;
  }
  return P;
}

std::unique_ptr<LoweredProgram> lowerLoaded(const Program &P,
                                            const InputBindings &Inputs,
                                            std::ostream &Err) {
  DiagEngine Diags;
  auto LP = lowerProgram(P, Inputs, Diags);
  if (!LP) {
    Err << Diags.str();
    return nullptr;
  }
  return LP;
}

std::optional<Dataset> loadData(const std::string &Path,
                                std::ostream &Err) {
  DiagEngine Diags;
  auto Data = readDatasetCsvFile(Path, Diags);
  if (!Data)
    Err << Path << ":\n" << Diags.str();
  return Data;
}

ToolExit cmdPrint(const ToolOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  Out << toString(*P);
  return ToolExit::Success;
}

ToolExit cmdLint(const ToolOptions &Opts, std::ostream &Out,
            std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  DiagEngine Diags;
  LintResult R = lintProgram(*P, Diags, &Opts.Inputs);
  Out << Diags.str();
  Out << Opts.ProgramPath << ": " << R.Errors << " error(s), "
      << R.Warnings << " warning(s)\n";
  return R.Errors ? ToolExit::Failure : ToolExit::Success;
}

ToolExit cmdAnalyze(const ToolOptions &Opts, std::ostream &Out,
               std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  // With --data, reads of the dataset's columns are observation inputs
  // (cut from the dependence chain) exactly as likelihood compilation
  // treats them; without it every variable is latent.
  std::set<std::string> ObservedColumns;
  if (!Opts.DataPath.empty()) {
    auto Data = loadData(Opts.DataPath, Err);
    if (!Data)
      return ToolExit::Failure;
    for (const std::string &Col : Data->columns())
      ObservedColumns.insert(Col);
  }
  Slicer S(*P, Opts.DataPath.empty() ? nullptr : &ObservedColumns);
  Out << S.matrixReport();
  if (!Opts.DotOutPath.empty()) {
    std::ofstream File(Opts.DotOutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.DotOutPath << "'\n";
      return ToolExit::Failure;
    }
    File << S.dot();
    Out << "wrote dependence graph to " << Opts.DotOutPath << "\n";
  }
  return ToolExit::Success;
}

ToolExit cmdSample(const ToolOptions &Opts, std::ostream &Out,
              std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return ToolExit::Failure;
  Rng R(Opts.Seed);
  Dataset Data = generateDataset(*LP, Opts.Rows, R);
  if (Data.numRows() < Opts.Rows)
    Err << "warning: only " << Data.numRows() << " of " << Opts.Rows
        << " requested rows were accepted (observe statements reject "
           "the rest)\n";
  if (!Opts.OutPath.empty()) {
    if (!writeDatasetCsvFile(Opts.OutPath, Data)) {
      Err << "error: cannot write '" << Opts.OutPath << "'\n";
      return ToolExit::Failure;
    }
    Out << "wrote " << Data.numRows() << " rows to " << Opts.OutPath
        << "\n";
    return ToolExit::Success;
  }
  writeDatasetCsv(Out, Data);
  return ToolExit::Success;
}

ToolExit cmdScore(const ToolOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return ToolExit::Failure;
  auto Data = loadData(Opts.DataPath, Err);
  if (!Data)
    return ToolExit::Failure;
  LikelihoodOptions LOpts;
  LOpts.Tape.Simd = !Opts.NoSimd;
  LOpts.Tape.FastSimdMath = Opts.FastSimdMath;
  auto F = LikelihoodFunction::compile(*LP, *Data, {}, nullptr, LOpts);
  if (!F) {
    Err << "error: candidate is malformed (reads an unwritten slot?)\n";
    return ToolExit::Failure;
  }
  Out << "rows: " << Data->numRows() << "\n";
  Out << "log-likelihood: " << F->logLikelihood(*Data) << "\n";
  Out << "per-row: " << F->logLikelihood(*Data) / double(Data->numRows())
      << "\n";
  return ToolExit::Success;
}

ToolExit cmdReport(const ToolOptions &Opts, std::ostream &Out,
              std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return ToolExit::Failure;
  auto Data = loadData(Opts.DataPath, Err);
  if (!Data)
    return ToolExit::Failure;
  Out << symbolicReport(*LP, *Data, Opts.Slots);
  return ToolExit::Success;
}

/// Configures \p S with the synth-family flags shared by `synth` and
/// `profile`: problem files, the walk/threading/budget knobs (grouped
/// on the Session), the likelihood escape hatches, and the telemetry
/// outputs.
void applySynthFlags(Session &S, const ToolOptions &Opts) {
  S.sketchFile(Opts.ProgramPath)
      .dataFile(Opts.DataPath)
      .inputs(Opts.Inputs)
      .iterations(Opts.Iterations)
      .chains(Opts.Chains)
      .seed(Opts.Seed);

  S.threading().Threads = Opts.Threads;
  S.threading().RowThreads = Opts.RowThreads;
  S.threading().SpeculateDepth = Opts.SpeculateDepth;

  S.budget().DeadlineSeconds = Opts.DeadlineSeconds;
  S.budget().MinProposalsPerSec = Opts.MinProposalsPerSec;
  S.budget().CheckpointPath = Opts.CheckpointOutPath;
  S.budget().CheckpointEvery = Opts.CheckpointEvery;
  S.budget().CheckpointKeep = Opts.CheckpointKeep;
  S.budget().ResumePath = Opts.ResumePath;
  // Ctrl-C / SIGTERM stop the walk cooperatively: the run flushes its
  // checkpoint and partial outputs and exits with ToolExit::Interrupted.
  S.budget().HandleSignals = true;

  S.telemetry().TraceOut = Opts.TraceOutPath;
  S.telemetry().MetricsOut = Opts.MetricsOutPath;
  S.telemetry().Profile = Opts.Profile;
  S.telemetry().ProfileSampleEvery = Opts.ProfileSampleEvery;

  // Likelihood-pipeline escape hatches (DESIGN.md §9, §11); defaults
  // leave every bit-exact optimization on.
  SynthesisConfig &Config = S.config();
  Config.Incremental = !Opts.NoIncremental;
  Config.Likelihood.Simplify = !Opts.NoSimplify;
  Config.Likelihood.Tape.Fuse = !Opts.NoFuse;
  Config.Likelihood.Tape.FastTape = Opts.FastTape;
  Config.Likelihood.Tape.Simd = !Opts.NoSimd;
  Config.Likelihood.Tape.FastSimdMath = Opts.FastSimdMath;
  Config.ColumnCacheBytes = size_t(Opts.ColumnCacheMB) << 20;
  Config.StaticAnalysis = !Opts.NoStaticAnalysis;
  Config.SliceFactoring = !Opts.NoSliceFactoring;
}

ToolExit cmdSynth(const ToolOptions &Opts, std::ostream &Out,
                  std::ostream &Err) {
  Session S;
  applySynthFlags(S, Opts);
  if (Opts.Progress) {
    if (logLevel() > LogLevel::Info)
      setLogLevel(LogLevel::Info);
    SynthesisConfig &Config = S.config();
    Config.ProgressEvery = std::max(1u, Opts.Iterations / 10);
    const bool Incremental = Config.Incremental;
    Config.Progress = [Incremental](
                          const SynthesisConfig::ProgressUpdate &U) {
      // `--profile --progress`: tag each update with the hottest tape
      // opcode so a drifting workload is visible mid-run.
      std::string Hot;
      if (U.ProfTopOp >= 0 && unsigned(U.ProfTopOp) < NumProfiledTapeOps) {
        std::ostringstream HotOS;
        HotOS << ", hot op " << profiledTapeOpName(unsigned(U.ProfTopOp))
              << " "
              << int(U.ProfTopShare * 100) << "%";
        Hot = HotOS.str();
      }
      if (Incremental)
        PSKETCH_LOG(Info, "synth",
                    "chain " << U.Chain << ": " << U.Iter << "/"
                             << U.Iterations << " iterations, best LL "
                             << U.BestLL << ", column-cache hit rate "
                             << int(U.ColCacheHitRate * 100)
                             << "%, static rejects " << U.StaticRejects
                             << ", " << uint64_t(U.RowsPerSec) << " rows/s"
                             << Hot);
      else
        PSKETCH_LOG(Info, "synth",
                    "chain " << U.Chain << ": " << U.Iter << "/"
                             << U.Iterations << " iterations, best LL "
                             << U.BestLL << ", static rejects "
                             << U.StaticRejects << ", "
                             << uint64_t(U.RowsPerSec) << " rows/s" << Hot);
    };
  }

  Session::Outcome O = S.run();
  for (const ConfigDiag &W : O.Warnings)
    Err << "warning: " << W.Message << "\n";
  if (!O.Result.CheckpointError.empty())
    Err << "warning: checkpoint write failed: " << O.Result.CheckpointError
        << "\n";
  if (O.Result.Stop != StopReason::None) {
    Err << "note: run stopped early (" << stopReasonName(O.Result.Stop)
        << ")";
    if (!Opts.CheckpointOutPath.empty())
      Err << "; resume with --resume " << Opts.CheckpointOutPath;
    Err << "\n";
  }
  if (!O.ok()) {
    Err << "error: " << O.Error.Message << "\n";
    return O.exit();
  }

  const SynthesisResult &Result = O.Result;
  Out << "// synthesized in " << Result.Stats.Seconds << " s; "
      << Result.Stats.Scored << " candidates scored; "
      << Result.Stats.CacheHits << " cache hits; log-likelihood "
      << Result.BestLogLikelihood << "\n";
  if (Result.Stats.InvalidStatic > 0)
    Out << "// static analysis rejected " << Result.Stats.InvalidStatic
        << " of " << Result.Stats.Proposed << " proposals\n";
  if (Result.Stats.ColCacheHits + Result.Stats.ColCacheMisses > 0)
    Out << "// column cache: "
        << int(Result.Stats.colCacheHitRate() * 100) << "% hit rate ("
        << Result.Stats.ColCacheHits << " hits, "
        << Result.Stats.ColCacheEvictions << " evictions)\n";
  if (Opts.Profile) {
    const TapeProfile &TP = Result.Profile.Tape;
    Out << "// profile: "
        << int(opcodeEvalFraction(TP, Result.Stats.Stage) * 100)
        << "% of eval_batch in opcodes, "
        << int(attributedEvalFraction(TP, Result.Stats.Stage) * 100)
        << "% attributed";
    uint64_t TopNs = 0;
    int Top = TP.topOp(&TopNs);
    if (Top >= 0 && unsigned(Top) < NumProfiledTapeOps && TopNs > 0)
      Out << "; hot op " << profiledTapeOpName(unsigned(Top));
    if (Result.Profile.Perf.Available)
      Out << "; " << Result.Profile.Perf.Total.Cycles << " cycles, "
          << Result.Profile.Perf.Total.Instructions << " instructions";
    else if (!Result.Profile.Perf.FallbackReason.empty())
      Out << "; hw counters unavailable ("
          << Result.Profile.Perf.FallbackReason << ")";
    Out << "\n";
  }
  if (Result.Convergence.Computed)
    Out << "// " << Result.Convergence.str() << "\n";
  Out << toString(*Result.BestProgram);
  if (!Opts.OutPath.empty()) {
    std::ofstream File(Opts.OutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.OutPath << "'\n";
      return ToolExit::Failure;
    }
    File << toString(*Result.BestProgram);
  }
  return O.exit();
}

ToolExit cmdTraceStats(const ToolOptions &Opts, std::ostream &Out,
                  std::ostream &Err) {
  std::vector<ParsedTrace> Traces;
  for (const std::string &Path : Opts.TracePaths) {
    std::ifstream In(Path);
    if (!In) {
      Err << "error: cannot open '" << Path << "'\n";
      return ToolExit::Failure;
    }
    std::string ParseErr;
    auto Trace = readJsonlTrace(In, ParseErr);
    if (!Trace) {
      Err << "error: " << Path << ": " << ParseErr << "\n";
      return ToolExit::Failure;
    }
    Traces.push_back(std::move(*Trace));
  }
  // One file passes through the merge unchanged; several files are
  // combined with each file's chains renumbered after the last.
  std::vector<std::string> Warnings;
  ParsedTrace Merged = mergeParsedTraces(Traces, &Warnings);
  for (const std::string &W : Warnings)
    Err << "warning: " << W << "\n";
  if (Traces.size() > 1)
    Out << "traces: " << Traces.size() << " files\n";
  Out << "sketch: " << Merged.Manifest.Sketch << "\n"
      << "seed: " << Merged.Manifest.Seed << ", iterations: "
      << Merged.Manifest.Iterations << ", chains: "
      << Merged.Manifest.Chains << "\n";
  Out << formatTraceSummary(summarizeTrace(Merged));
  return ToolExit::Success;
}

ToolExit cmdProfile(const ToolOptions &Opts, std::ostream &Out,
                    std::ostream &Err) {
  Session S;
  applySynthFlags(S, Opts);
  S.telemetry().Profile = true;
  Session::Outcome O = S.run();
  for (const ConfigDiag &W : O.Warnings)
    Err << "warning: " << W.Message << "\n";
  if (!O.ok() && O.Error.K != SessionError::Kind::Synthesis) {
    Err << "error: " << O.Error.Message << "\n";
    return O.exit();
  }
  if (!O.Result.Succeeded)
    Err << "warning: no valid completion found; the profile below "
           "still covers the full search\n";

  ProfileReport Report = makeProfileReport(O.Result, S.config());
  Report.Sketch = Opts.ProgramPath;
  if (!Opts.OutPath.empty()) {
    std::ofstream File(Opts.OutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.OutPath << "'\n";
      return ToolExit::Failure;
    }
    File << profileReportJson(Report) << "\n";
  }
  if (!Opts.FoldedOutPath.empty()) {
    std::ofstream File(Opts.FoldedOutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.FoldedOutPath << "'\n";
      return ToolExit::Failure;
    }
    File << profileFoldedStacks(Report);
  }
  Out << formatProfileReport(Report);
  return O.Result.interrupted() ? ToolExit::Interrupted : ToolExit::Success;
}

ToolExit cmdBenchDiff(const ToolOptions &Opts, std::ostream &Out,
                 std::ostream &Err) {
  BenchDiffResult R =
      compareBenchFiles(Opts.BenchOldPath, Opts.BenchNewPath,
                        Opts.Tolerance);
  if (!R.Ok) {
    Err << "error: " << R.Error << "\n";
    return ToolExit::Usage;
  }
  Out << formatBenchDiff(R, Opts.Tolerance);
  return R.passed() ? ToolExit::Success : ToolExit::Failure;
}

ToolExit cmdPosterior(const ToolOptions &Opts, std::ostream &Out,
                 std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return ToolExit::Failure;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return ToolExit::Failure;
  // Finite (Boolean-latent) programs get exact answers; everything
  // else falls back to rejection sampling.
  if (auto D = ExactDistribution::enumerate(*LP)) {
    Out << "method: exact enumeration (" << D->outcomes().size()
        << " outcomes, evidence " << D->evidence() << ")\n";
    for (const std::string &Slot : Opts.Slots)
      Out << Slot << ": mean " << D->mean(Slot) << ", Pr(true) "
          << D->marginalTrue(Slot) << "\n";
    return ToolExit::Success;
  }
  Out << "method: rejection sampling (" << Opts.Samples
      << " requested samples)\n";
  for (const std::string &Slot : Opts.Slots) {
    Rng R(Opts.Seed);
    std::vector<double> Samples =
        posteriorSamples(*LP, Slot, Opts.Samples, R);
    if (Samples.empty()) {
      Err << "warning: no valid samples for '" << Slot
          << "' (unknown slot or zero acceptance)\n";
      continue;
    }
    double Mean = 0, SumSq = 0;
    for (double X : Samples)
      Mean += X;
    Mean /= double(Samples.size());
    for (double X : Samples)
      SumSq += (X - Mean) * (X - Mean);
    double Sd = Samples.size() > 1
                    ? std::sqrt(SumSq / double(Samples.size() - 1))
                    : 0.0;
    Out << Slot << ": mean " << Mean << ", sd " << Sd << " ("
        << Samples.size() << " samples)\n";
  }
  return ToolExit::Success;
}

} // namespace

int psketch::runTool(const ToolOptions &Opts, std::ostream &Out,
                     std::ostream &Err) {
  if (!Opts.valid()) {
    for (const std::string &E : Opts.Errors)
      Err << "error: " << E << "\n";
    Err << toolUsage();
    return int(ToolExit::Usage);
  }
  if (Opts.Command == "print")
    return int(cmdPrint(Opts, Out, Err));
  if (Opts.Command == "lint")
    return int(cmdLint(Opts, Out, Err));
  if (Opts.Command == "analyze")
    return int(cmdAnalyze(Opts, Out, Err));
  if (Opts.Command == "sample")
    return int(cmdSample(Opts, Out, Err));
  if (Opts.Command == "score")
    return int(cmdScore(Opts, Out, Err));
  if (Opts.Command == "report")
    return int(cmdReport(Opts, Out, Err));
  if (Opts.Command == "synth")
    return int(cmdSynth(Opts, Out, Err));
  if (Opts.Command == "posterior")
    return int(cmdPosterior(Opts, Out, Err));
  if (Opts.Command == "trace-stats")
    return int(cmdTraceStats(Opts, Out, Err));
  if (Opts.Command == "profile")
    return int(cmdProfile(Opts, Out, Err));
  if (Opts.Command == "bench-diff")
    return int(cmdBenchDiff(Opts, Out, Err));
  Err << toolUsage();
  return int(ToolExit::Usage);
}
