//===- tool/Driver.cpp - The psketch command implementations --------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tool/Driver.h"

#include "analysis/Lint.h"
#include "analysis/Slicer.h"
#include "ast/ASTPrinter.h"
#include "interp/Enumerate.h"
#include "interp/Interp.h"
#include "likelihood/DatasetIO.h"
#include "likelihood/Likelihood.h"
#include "likelihood/Tape.h"
#include "obs/BenchCompare.h"
#include "obs/Profiler.h"
#include "obs/Trace.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "support/Log.h"
#include "synth/Synthesizer.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace psketch;

namespace {

/// Loads, parses and type checks the program file.
std::unique_ptr<Program> loadProgram(const std::string &Path,
                                     std::ostream &Err) {
  std::ifstream In(Path);
  if (!In) {
    Err << "error: cannot open '" << Path << "'\n";
    return nullptr;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  DiagEngine Diags;
  auto P = parseProgramSource(Buffer.str(), Diags);
  if (!P || !typeCheck(*P, Diags)) {
    Err << Path << ":\n" << Diags.str();
    return nullptr;
  }
  return P;
}

std::unique_ptr<LoweredProgram> lowerLoaded(const Program &P,
                                            const InputBindings &Inputs,
                                            std::ostream &Err) {
  DiagEngine Diags;
  auto LP = lowerProgram(P, Inputs, Diags);
  if (!LP) {
    Err << Diags.str();
    return nullptr;
  }
  return LP;
}

std::optional<Dataset> loadData(const std::string &Path,
                                std::ostream &Err) {
  DiagEngine Diags;
  auto Data = readDatasetCsvFile(Path, Diags);
  if (!Data)
    Err << Path << ":\n" << Diags.str();
  return Data;
}

int cmdPrint(const ToolOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  Out << toString(*P);
  return 0;
}

int cmdLint(const ToolOptions &Opts, std::ostream &Out,
            std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  DiagEngine Diags;
  LintResult R = lintProgram(*P, Diags, &Opts.Inputs);
  Out << Diags.str();
  Out << Opts.ProgramPath << ": " << R.Errors << " error(s), "
      << R.Warnings << " warning(s)\n";
  return R.Errors ? 1 : 0;
}

int cmdAnalyze(const ToolOptions &Opts, std::ostream &Out,
               std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  // With --data, reads of the dataset's columns are observation inputs
  // (cut from the dependence chain) exactly as likelihood compilation
  // treats them; without it every variable is latent.
  std::set<std::string> ObservedColumns;
  if (!Opts.DataPath.empty()) {
    auto Data = loadData(Opts.DataPath, Err);
    if (!Data)
      return 1;
    for (const std::string &Col : Data->columns())
      ObservedColumns.insert(Col);
  }
  Slicer S(*P, Opts.DataPath.empty() ? nullptr : &ObservedColumns);
  Out << S.matrixReport();
  if (!Opts.DotOutPath.empty()) {
    std::ofstream File(Opts.DotOutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.DotOutPath << "'\n";
      return 1;
    }
    File << S.dot();
    Out << "wrote dependence graph to " << Opts.DotOutPath << "\n";
  }
  return 0;
}

int cmdSample(const ToolOptions &Opts, std::ostream &Out,
              std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return 1;
  Rng R(Opts.Seed);
  Dataset Data = generateDataset(*LP, Opts.Rows, R);
  if (Data.numRows() < Opts.Rows)
    Err << "warning: only " << Data.numRows() << " of " << Opts.Rows
        << " requested rows were accepted (observe statements reject "
           "the rest)\n";
  if (!Opts.OutPath.empty()) {
    if (!writeDatasetCsvFile(Opts.OutPath, Data)) {
      Err << "error: cannot write '" << Opts.OutPath << "'\n";
      return 1;
    }
    Out << "wrote " << Data.numRows() << " rows to " << Opts.OutPath
        << "\n";
    return 0;
  }
  writeDatasetCsv(Out, Data);
  return 0;
}

int cmdScore(const ToolOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return 1;
  auto Data = loadData(Opts.DataPath, Err);
  if (!Data)
    return 1;
  LikelihoodOptions LOpts;
  LOpts.Tape.Simd = !Opts.NoSimd;
  LOpts.Tape.FastSimdMath = Opts.FastSimdMath;
  auto F = LikelihoodFunction::compile(*LP, *Data, {}, nullptr, LOpts);
  if (!F) {
    Err << "error: candidate is malformed (reads an unwritten slot?)\n";
    return 1;
  }
  Out << "rows: " << Data->numRows() << "\n";
  Out << "log-likelihood: " << F->logLikelihood(*Data) << "\n";
  Out << "per-row: " << F->logLikelihood(*Data) / double(Data->numRows())
      << "\n";
  return 0;
}

int cmdReport(const ToolOptions &Opts, std::ostream &Out,
              std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return 1;
  auto Data = loadData(Opts.DataPath, Err);
  if (!Data)
    return 1;
  Out << symbolicReport(*LP, *Data, Opts.Slots);
  return 0;
}

/// The synth-family SynthesisConfig shared by `synth` and `profile`:
/// iteration/seed knobs, the likelihood escape hatches, and the
/// telemetry switches derived from the requested outputs.
SynthesisConfig makeSynthConfig(const ToolOptions &Opts) {
  SynthesisConfig Config;
  Config.Iterations = Opts.Iterations;
  Config.Chains = Opts.Chains;
  Config.Threads = Opts.Threads;
  Config.RowThreads = Opts.RowThreads;
  Config.SpeculateDepth = Opts.SpeculateDepth;
  Config.Seed = Opts.Seed;

  // Likelihood-pipeline escape hatches (DESIGN.md §9, §11); defaults
  // leave every bit-exact optimization on.
  Config.Incremental = !Opts.NoIncremental;
  Config.Likelihood.Simplify = !Opts.NoSimplify;
  Config.Likelihood.Tape.Fuse = !Opts.NoFuse;
  Config.Likelihood.Tape.FastTape = Opts.FastTape;
  Config.Likelihood.Tape.Simd = !Opts.NoSimd;
  Config.Likelihood.Tape.FastSimdMath = Opts.FastSimdMath;
  Config.ColumnCacheBytes = size_t(Opts.ColumnCacheMB) << 20;
  Config.StaticAnalysis = !Opts.NoStaticAnalysis;
  Config.SliceFactoring = !Opts.NoSliceFactoring;

  // Telemetry: each output the user asked for switches on exactly the
  // collection it needs; everything stays off otherwise.
  Config.CollectTrace = !Opts.TraceOutPath.empty();
  Config.Metrics = !Opts.MetricsOutPath.empty();
  Config.StageTimers = Config.Metrics;
  Config.Diagnostics = Config.CollectTrace || Config.Metrics;
  Config.Profile = Opts.Profile;
  Config.ProfileSampleEvery = Opts.ProfileSampleEvery;
  return Config;
}

int cmdSynth(const ToolOptions &Opts, std::ostream &Out,
             std::ostream &Err) {
  auto Sketch = loadProgram(Opts.ProgramPath, Err);
  if (!Sketch)
    return 1;
  auto Data = loadData(Opts.DataPath, Err);
  if (!Data)
    return 1;
  SynthesisConfig Config = makeSynthConfig(Opts);
  if (Opts.Progress) {
    if (logLevel() > LogLevel::Info)
      setLogLevel(LogLevel::Info);
    Config.ProgressEvery = std::max(1u, Opts.Iterations / 10);
    const bool Incremental = Config.Incremental;
    Config.Progress = [Incremental](
                          const SynthesisConfig::ProgressUpdate &U) {
      // `--profile --progress`: tag each update with the hottest tape
      // opcode so a drifting workload is visible mid-run.
      std::string Hot;
      if (U.ProfTopOp >= 0 && unsigned(U.ProfTopOp) < NumProfiledTapeOps) {
        std::ostringstream HotOS;
        HotOS << ", hot op " << profiledTapeOpName(unsigned(U.ProfTopOp))
              << " "
              << int(U.ProfTopShare * 100) << "%";
        Hot = HotOS.str();
      }
      if (Incremental)
        PSKETCH_LOG(Info, "synth",
                    "chain " << U.Chain << ": " << U.Iter << "/"
                             << U.Iterations << " iterations, best LL "
                             << U.BestLL << ", column-cache hit rate "
                             << int(U.ColCacheHitRate * 100)
                             << "%, static rejects " << U.StaticRejects
                             << ", " << uint64_t(U.RowsPerSec) << " rows/s"
                             << Hot);
      else
        PSKETCH_LOG(Info, "synth",
                    "chain " << U.Chain << ": " << U.Iter << "/"
                             << U.Iterations << " iterations, best LL "
                             << U.BestLL << ", static rejects "
                             << U.StaticRejects << ", "
                             << uint64_t(U.RowsPerSec) << " rows/s" << Hot);
    };
  }

  Synthesizer Synth(*Sketch, Opts.Inputs, *Data, Config);
  if (!Synth.valid()) {
    Err << Synth.diagnostics().str();
    return 1;
  }
  SynthesisResult Result = Synth.run();

  if (!Opts.TraceOutPath.empty()) {
    std::ofstream Trace(Opts.TraceOutPath);
    if (!Trace) {
      Err << "error: cannot write '" << Opts.TraceOutPath << "'\n";
      return 1;
    }
    writeJsonlTrace(Trace, Synth.makeManifest(Opts.ProgramPath),
                    Result.TraceEvents);
  }
  if (!Opts.MetricsOutPath.empty()) {
    std::ofstream Metrics(Opts.MetricsOutPath);
    if (!Metrics) {
      Err << "error: cannot write '" << Opts.MetricsOutPath << "'\n";
      return 1;
    }
    Metrics << Result.Metrics->toJson() << "\n";
  }

  if (!Result.Succeeded) {
    Err << "error: no valid completion found (try more --iterations or "
           "--chains)\n";
    return 1;
  }
  Out << "// synthesized in " << Result.Stats.Seconds << " s; "
      << Result.Stats.Scored << " candidates scored; "
      << Result.Stats.CacheHits << " cache hits; log-likelihood "
      << Result.BestLogLikelihood << "\n";
  if (Result.Stats.InvalidStatic > 0)
    Out << "// static analysis rejected " << Result.Stats.InvalidStatic
        << " of " << Result.Stats.Proposed << " proposals\n";
  if (Result.Stats.ColCacheHits + Result.Stats.ColCacheMisses > 0)
    Out << "// column cache: "
        << int(Result.Stats.colCacheHitRate() * 100) << "% hit rate ("
        << Result.Stats.ColCacheHits << " hits, "
        << Result.Stats.ColCacheEvictions << " evictions)\n";
  if (Opts.Profile) {
    const TapeProfile &TP = Result.Profile.Tape;
    Out << "// profile: "
        << int(opcodeEvalFraction(TP, Result.Stats.Stage) * 100)
        << "% of eval_batch in opcodes, "
        << int(attributedEvalFraction(TP, Result.Stats.Stage) * 100)
        << "% attributed";
    uint64_t TopNs = 0;
    int Top = TP.topOp(&TopNs);
    if (Top >= 0 && unsigned(Top) < NumProfiledTapeOps && TopNs > 0)
      Out << "; hot op " << profiledTapeOpName(unsigned(Top));
    if (Result.Profile.Perf.Available)
      Out << "; " << Result.Profile.Perf.Total.Cycles << " cycles, "
          << Result.Profile.Perf.Total.Instructions << " instructions";
    else if (!Result.Profile.Perf.FallbackReason.empty())
      Out << "; hw counters unavailable ("
          << Result.Profile.Perf.FallbackReason << ")";
    Out << "\n";
  }
  if (Result.Convergence.Computed)
    Out << "// " << Result.Convergence.str() << "\n";
  Out << toString(*Result.BestProgram);
  if (!Opts.OutPath.empty()) {
    std::ofstream File(Opts.OutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.OutPath << "'\n";
      return 1;
    }
    File << toString(*Result.BestProgram);
  }
  return 0;
}

int cmdTraceStats(const ToolOptions &Opts, std::ostream &Out,
                  std::ostream &Err) {
  std::vector<ParsedTrace> Traces;
  for (const std::string &Path : Opts.TracePaths) {
    std::ifstream In(Path);
    if (!In) {
      Err << "error: cannot open '" << Path << "'\n";
      return 1;
    }
    std::string ParseErr;
    auto Trace = readJsonlTrace(In, ParseErr);
    if (!Trace) {
      Err << "error: " << Path << ": " << ParseErr << "\n";
      return 1;
    }
    Traces.push_back(std::move(*Trace));
  }
  // One file passes through the merge unchanged; several files are
  // combined with each file's chains renumbered after the last.
  std::vector<std::string> Warnings;
  ParsedTrace Merged = mergeParsedTraces(Traces, &Warnings);
  for (const std::string &W : Warnings)
    Err << "warning: " << W << "\n";
  if (Traces.size() > 1)
    Out << "traces: " << Traces.size() << " files\n";
  Out << "sketch: " << Merged.Manifest.Sketch << "\n"
      << "seed: " << Merged.Manifest.Seed << ", iterations: "
      << Merged.Manifest.Iterations << ", chains: "
      << Merged.Manifest.Chains << "\n";
  Out << formatTraceSummary(summarizeTrace(Merged));
  return 0;
}

int cmdProfile(const ToolOptions &Opts, std::ostream &Out,
               std::ostream &Err) {
  auto Sketch = loadProgram(Opts.ProgramPath, Err);
  if (!Sketch)
    return 1;
  auto Data = loadData(Opts.DataPath, Err);
  if (!Data)
    return 1;
  SynthesisConfig Config = makeSynthConfig(Opts);
  Config.Profile = true;
  Synthesizer Synth(*Sketch, Opts.Inputs, *Data, Config);
  if (!Synth.valid()) {
    Err << Synth.diagnostics().str();
    return 1;
  }
  SynthesisResult Result = Synth.run();
  if (!Result.Succeeded)
    Err << "warning: no valid completion found; the profile below "
           "still covers the full search\n";

  ProfileReport Report = makeProfileReport(Result, Config);
  Report.Sketch = Opts.ProgramPath;
  if (!Opts.OutPath.empty()) {
    std::ofstream File(Opts.OutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.OutPath << "'\n";
      return 1;
    }
    File << profileReportJson(Report) << "\n";
  }
  if (!Opts.FoldedOutPath.empty()) {
    std::ofstream File(Opts.FoldedOutPath);
    if (!File) {
      Err << "error: cannot write '" << Opts.FoldedOutPath << "'\n";
      return 1;
    }
    File << profileFoldedStacks(Report);
  }
  Out << formatProfileReport(Report);
  return 0;
}

int cmdBenchDiff(const ToolOptions &Opts, std::ostream &Out,
                 std::ostream &Err) {
  BenchDiffResult R =
      compareBenchFiles(Opts.BenchOldPath, Opts.BenchNewPath,
                        Opts.Tolerance);
  if (!R.Ok) {
    Err << "error: " << R.Error << "\n";
    return 2;
  }
  Out << formatBenchDiff(R, Opts.Tolerance);
  return R.passed() ? 0 : 1;
}

int cmdPosterior(const ToolOptions &Opts, std::ostream &Out,
                 std::ostream &Err) {
  auto P = loadProgram(Opts.ProgramPath, Err);
  if (!P)
    return 1;
  auto LP = lowerLoaded(*P, Opts.Inputs, Err);
  if (!LP)
    return 1;
  // Finite (Boolean-latent) programs get exact answers; everything
  // else falls back to rejection sampling.
  if (auto D = ExactDistribution::enumerate(*LP)) {
    Out << "method: exact enumeration (" << D->outcomes().size()
        << " outcomes, evidence " << D->evidence() << ")\n";
    for (const std::string &Slot : Opts.Slots)
      Out << Slot << ": mean " << D->mean(Slot) << ", Pr(true) "
          << D->marginalTrue(Slot) << "\n";
    return 0;
  }
  Out << "method: rejection sampling (" << Opts.Samples
      << " requested samples)\n";
  for (const std::string &Slot : Opts.Slots) {
    Rng R(Opts.Seed);
    std::vector<double> Samples =
        posteriorSamples(*LP, Slot, Opts.Samples, R);
    if (Samples.empty()) {
      Err << "warning: no valid samples for '" << Slot
          << "' (unknown slot or zero acceptance)\n";
      continue;
    }
    double Mean = 0, SumSq = 0;
    for (double X : Samples)
      Mean += X;
    Mean /= double(Samples.size());
    for (double X : Samples)
      SumSq += (X - Mean) * (X - Mean);
    double Sd = Samples.size() > 1
                    ? std::sqrt(SumSq / double(Samples.size() - 1))
                    : 0.0;
    Out << Slot << ": mean " << Mean << ", sd " << Sd << " ("
        << Samples.size() << " samples)\n";
  }
  return 0;
}

} // namespace

int psketch::runTool(const ToolOptions &Opts, std::ostream &Out,
                     std::ostream &Err) {
  if (!Opts.valid()) {
    for (const std::string &E : Opts.Errors)
      Err << "error: " << E << "\n";
    Err << toolUsage();
    return 2;
  }
  if (Opts.Command == "print")
    return cmdPrint(Opts, Out, Err);
  if (Opts.Command == "lint")
    return cmdLint(Opts, Out, Err);
  if (Opts.Command == "analyze")
    return cmdAnalyze(Opts, Out, Err);
  if (Opts.Command == "sample")
    return cmdSample(Opts, Out, Err);
  if (Opts.Command == "score")
    return cmdScore(Opts, Out, Err);
  if (Opts.Command == "report")
    return cmdReport(Opts, Out, Err);
  if (Opts.Command == "synth")
    return cmdSynth(Opts, Out, Err);
  if (Opts.Command == "posterior")
    return cmdPosterior(Opts, Out, Err);
  if (Opts.Command == "trace-stats")
    return cmdTraceStats(Opts, Out, Err);
  if (Opts.Command == "profile")
    return cmdProfile(Opts, Out, Err);
  if (Opts.Command == "bench-diff")
    return cmdBenchDiff(Opts, Out, Err);
  Err << toolUsage();
  return 2;
}
