//===- tool/ToolOptions.h - Command-line parsing for psketch --------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Option parsing for the `psketch` command-line driver, factored out
/// of main() so the tests can exercise it directly.  Supported
/// commands:
///
///   psketch print  --program FILE
///   psketch lint   --program FILE
///   psketch analyze --program FILE [--data FILE.csv] [--dot-out FILE.dot]
///   psketch sample --program FILE --rows N [--out FILE.csv] [--seed S]
///   psketch score  --program FILE --data FILE.csv
///   psketch report --program FILE --data FILE.csv [--slot NAME ...]
///   psketch synth  --sketch FILE --data FILE.csv
///                  [--iterations N] [--chains N] [--seed S]
///                  [--threads N] [--trace-out FILE.jsonl]
///                  [--metrics-out FILE.json] [--progress]
///                  [--checkpoint-out FILE] [--checkpoint-every N]
///                  [--resume FILE] [--deadline-s T]
///                  [--min-proposals-per-s R]
///   psketch posterior --program FILE --slot NAME [--samples N]
///                  [--seed S]
///   psketch trace-stats --trace FILE.jsonl [--trace FILE.jsonl ...]
///   psketch profile --sketch FILE --data FILE.csv [synth options]
///                  [--out FILE.json] [--folded FILE.folded]
///   psketch bench-diff OLD.json NEW.json [--tolerance 0.15]
///
/// Program inputs are bound with repeatable flags:
///   --int n=3  --real x=1.5  --bool flag=1
///   --ints p1=0,1,0  --reals day=8,15,22  --bools result=1,1,0
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_TOOL_TOOLOPTIONS_H
#define PSKETCH_TOOL_TOOLOPTIONS_H

#include "sem/Bindings.h"

#include <string>
#include <vector>

namespace psketch {

/// Parsed command line of one `psketch` invocation.
struct ToolOptions {
  std::string Command;
  std::string ProgramPath; ///< --program or --sketch.
  std::string DataPath;    ///< --data.
  std::string OutPath;     ///< --out.
  std::string TraceOutPath;   ///< --trace-out (synth): JSONL MH trace.
  std::string MetricsOutPath; ///< --metrics-out (synth): metrics JSON.
  /// --trace (trace-stats, repeatable): JSONL files to read; several
  /// files are merged into one report (per-file chains renumbered).
  std::vector<std::string> TracePaths;
  std::string FoldedOutPath; ///< --folded (profile): folded stacks.
  /// --dot-out (analyze): write the hole→observe dependence graph as
  /// Graphviz DOT to this path.
  std::string DotOutPath;
  bool Progress = false;     ///< --progress (synth): periodic updates.
  /// --profile (synth): per-opcode cost attribution + per-stage
  /// hardware counters.  Result-neutral — scores, traces, and metrics
  /// are byte-identical with it on or off.
  bool Profile = false;
  /// --profile-sample-every (synth/profile): profile 1 of every K
  /// block evaluations; skipped blocks stay counted (exact face-value
  /// accounting, no scaling).  1 profiles every block.
  unsigned ProfileSampleEvery = 1;
  double Tolerance = 0.15;  ///< --tolerance (bench-diff): gate width.
  std::string BenchOldPath; ///< bench-diff positional 1: baseline.
  std::string BenchNewPath; ///< bench-diff positional 2: candidate.

  // Likelihood-pipeline escape hatches (synth; DESIGN.md §9).  The
  // optimizations are bit-exact and on by default; the toggles exist so
  // a regression can be bisected to one layer.
  bool NoIncremental = false; ///< --no-incremental: no column cache.
  bool NoSimplify = false;    ///< --no-simplify: skip the NumExpr pass.
  bool NoFuse = false;        ///< --no-fuse: skip superinstructions.
  bool FastTape = false;      ///< --ffast-tape: FMA contraction (~1 ulp).
  /// --no-static-analysis (synth): apply the abstract interpreter's
  /// STATIC-REJECT verdict after scoring instead of before it.  Results
  /// are bit-identical either way (the verdict still applies); the flag
  /// exists to measure / bisect the pre-filter's cost and savings.
  bool NoStaticAnalysis = false;
  /// --no-slice-factoring (synth/profile): score every candidate on the
  /// monolithic tape instead of the slice-factored per-term path.
  /// Results are bit-identical either way (DESIGN.md §14); the flag is
  /// the differential escape hatch and the bisection lever.
  bool NoSliceFactoring = false;
  /// --no-simd (synth/score): run the batched tape kernels on the
  /// portable scalar tier instead of the best compiled-in SIMD tier.
  /// Bit-exact — every tier performs the identical IEEE operations
  /// lane-wise (DESIGN.md §11); the flag exists for bisection and for
  /// the differential tests.
  bool NoSimd = false;
  /// --fast-simd-math (synth/score): polynomial Log/Exp kernels instead
  /// of per-lane libm calls.  Value-changing (documented relative-error
  /// bound in likelihood/TapeKernels.h) but deterministic across SIMD
  /// tiers and thread counts.
  bool FastSimdMath = false;
  unsigned ColumnCacheMB = 32; ///< --column-cache-mb: per-chain budget.
  std::vector<std::string> Slots; ///< --slot (report).
  unsigned Rows = 100;
  unsigned Samples = 20000; ///< --samples (posterior).
  unsigned Iterations = 4000;
  unsigned Chains = 2;
  unsigned Threads = 1; ///< --threads; 0 = hardware_concurrency.
  /// --row-threads (synth): intra-chain row workers per likelihood
  /// evaluation; 1 = serial.  Score-neutral at every value.
  unsigned RowThreads = 1;
  /// --speculate-depth (synth/profile): MH lookahead depth per chain;
  /// 0 = off.  Result-neutral at every value (byte-identical traces,
  /// scores and best LL) — see SynthesisConfig::SpeculateDepth.
  unsigned SpeculateDepth = 0;
  uint64_t Seed = 1;

  // --- Run durability (synth; DESIGN.md §15) ---
  /// --checkpoint-out: crash-safe snapshot file updated during the run.
  std::string CheckpointOutPath;
  /// --checkpoint-every: iterations between periodic snapshots (0
  /// keeps only the initial and final ones).
  unsigned CheckpointEvery = 0;
  /// --checkpoint-keep: rotated snapshot files retained.
  unsigned CheckpointKeep = 2;
  /// --resume: restart every chain from this snapshot, byte-identically
  /// to the uninterrupted run.
  std::string ResumePath;
  /// --deadline-s: wall-clock budget in seconds; 0 = none.  The run
  /// stops at the next block boundary with a valid partial result.
  double DeadlineSeconds = 0;
  /// --min-proposals-per-s: throughput floor; a run proposing slower
  /// than this (after warmup) stops early.  0 = none.
  double MinProposalsPerSec = 0;

  InputBindings Inputs;

  /// Parse failures, in order; empty means the options are usable.
  std::vector<std::string> Errors;

  bool valid() const { return Errors.empty(); }

  /// Parses argv[1..]; never throws, collects problems into Errors.
  static ToolOptions parse(const std::vector<std::string> &Args);
};

/// One-line usage summary for diagnostics.
std::string toolUsage();

} // namespace psketch

#endif // PSKETCH_TOOL_TOOLOPTIONS_H
