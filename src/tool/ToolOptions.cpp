//===- tool/ToolOptions.cpp - Command-line parsing for psketch ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tool/ToolOptions.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <optional>

using namespace psketch;

namespace {

/// Splits "name=value"; returns false when '=' is missing.
bool splitBinding(const std::string &Arg, std::string &Name,
                  std::string &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Name = Arg.substr(0, Eq);
  Value = Arg.substr(Eq + 1);
  return true;
}

std::optional<double> parseNumber(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size())
    return std::nullopt;
  return V;
}

std::optional<std::vector<double>> parseNumberList(const std::string &Text) {
  std::vector<double> Values;
  std::string Field;
  auto Flush = [&]() -> bool {
    auto V = parseNumber(Field);
    if (!V)
      return false;
    Values.push_back(*V);
    Field.clear();
    return true;
  };
  for (char C : Text) {
    if (C == ',') {
      if (!Flush())
        return std::nullopt;
      continue;
    }
    Field += C;
  }
  if (!Flush())
    return std::nullopt;
  return Values;
}

// --- The canonical flag table ---------------------------------------
//
// One row per flag: which commands accept it, whether it takes a
// value, and where it is required.  toolUsage() is generated from
// this table, so the help text can never drift from the set of flags
// the parser accepts; parse() consults the same rows for the numeric
// group.

enum : unsigned {
  CPrint = 1u << 0,
  CLint = 1u << 1,
  CAnalyze = 1u << 2,
  CSample = 1u << 3,
  CScore = 1u << 4,
  CReport = 1u << 5,
  CSynth = 1u << 6,
  CPosterior = 1u << 7,
  CTraceStats = 1u << 8,
  CProfile = 1u << 9,
  CBenchDiff = 1u << 10,
};

/// Commands taking a program/sketch file and input bindings.
constexpr unsigned CProgramCmds = CPrint | CLint | CAnalyze | CSample |
                                  CScore | CReport | CSynth | CPosterior |
                                  CProfile;

struct FlagSpec {
  const char *Flag;  ///< "--iterations".
  const char *Arg;   ///< Placeholder ("N"); nullptr for switches.
  unsigned Cmds;     ///< Commands accepting the flag.
  unsigned Required; ///< Commands where the flag is mandatory.
};

constexpr FlagSpec FlagTable[] = {
    {"--program", "FILE", CProgramCmds & ~(CSynth | CProfile),
     CProgramCmds & ~(CSynth | CProfile)},
    {"--sketch", "FILE", CSynth | CProfile, CSynth | CProfile},
    {"--data", "FILE.csv", CAnalyze | CScore | CReport | CSynth | CProfile,
     CScore | CReport | CSynth | CProfile},
    {"--iterations", "N", CSynth | CProfile, 0},
    {"--chains", "N", CSynth | CProfile, 0},
    {"--seed", "S", CSample | CSynth | CPosterior | CProfile, 0},
    {"--threads", "N", CSynth | CProfile, 0},
    {"--row-threads", "N", CSynth | CProfile, 0},
    {"--speculate-depth", "K", CSynth | CProfile, 0},
    {"--out", "FILE", CSample | CSynth | CProfile, 0},
    {"--trace-out", "FILE.jsonl", CSynth, 0},
    {"--metrics-out", "FILE.json", CSynth, 0},
    {"--progress", nullptr, CSynth, 0},
    {"--checkpoint-out", "FILE", CSynth, 0},
    {"--checkpoint-every", "N", CSynth, 0},
    {"--checkpoint-keep", "K", CSynth, 0},
    {"--resume", "FILE", CSynth, 0},
    {"--deadline-s", "T", CSynth, 0},
    {"--min-proposals-per-s", "R", CSynth, 0},
    {"--no-incremental", nullptr, CSynth | CProfile, 0},
    {"--no-simplify", nullptr, CSynth | CProfile, 0},
    {"--no-fuse", nullptr, CSynth | CProfile, 0},
    {"--ffast-tape", nullptr, CSynth | CProfile, 0},
    {"--no-static-analysis", nullptr, CSynth | CProfile, 0},
    {"--no-slice-factoring", nullptr, CSynth | CProfile, 0},
    {"--no-simd", nullptr, CScore | CSynth | CProfile, 0},
    {"--fast-simd-math", nullptr, CScore | CSynth | CProfile, 0},
    {"--column-cache-mb", "N", CSynth | CProfile, 0},
    {"--profile", nullptr, CSynth, 0},
    {"--profile-sample-every", "K", CSynth | CProfile, 0},
    {"--rows", "N", CSample, 0},
    {"--samples", "N", CPosterior, 0},
    {"--slot", "NAME", CReport | CPosterior, CPosterior},
    {"--trace", "FILE.jsonl", CTraceStats, CTraceStats},
    {"--folded", "FILE.folded", CProfile, 0},
    {"--dot-out", "FILE.dot", CAnalyze, 0},
    {"--tolerance", "X", CBenchDiff, 0},
};

struct CommandSpec {
  const char *Name;
  unsigned Mask;
  const char *Extra; ///< Positionals / notes appended to the line.
};

constexpr CommandSpec CommandTable[] = {
    {"print", CPrint, nullptr},
    {"lint", CLint, "(static diagnostics)"},
    {"analyze", CAnalyze, "(hole->observe dependence matrix)"},
    {"sample", CSample, nullptr},
    {"score", CScore, nullptr},
    {"report", CReport, nullptr},
    {"synth", CSynth, nullptr},
    {"posterior", CPosterior, nullptr},
    {"trace-stats", CTraceStats, "(repeatable --trace merges files)"},
    {"profile", CProfile, nullptr},
    {"bench-diff", CBenchDiff, "OLD.json NEW.json"},
};

} // namespace

std::string psketch::toolUsage() {
  std::string U = "usage: psketch <";
  for (size_t I = 0; I != std::size(CommandTable); ++I) {
    if (I)
      U += '|';
    U += CommandTable[I].Name;
  }
  U += "> [options]\n";
  for (const CommandSpec &C : CommandTable) {
    std::string Line = "  ";
    Line += C.Name;
    size_t Col = Line.size();
    auto Emit = [&](const std::string &Word) {
      if (Col + 1 + Word.size() > 72) {
        U += Line;
        U += '\n';
        Line.assign(9, ' ');
        Col = Line.size();
      }
      Line += ' ';
      Line += Word;
      Col += 1 + Word.size();
    };
    if (C.Extra && C.Extra[0] != '(')
      Emit(C.Extra);
    for (const FlagSpec &F : FlagTable) {
      if (!(F.Cmds & C.Mask))
        continue;
      std::string Word = F.Flag;
      if (F.Arg) {
        Word += ' ';
        Word += F.Arg;
      }
      if (!(F.Required & C.Mask))
        Word = "[" + Word + "]";
      Emit(Word);
    }
    if (C.Extra && C.Extra[0] == '(')
      Emit(C.Extra);
    U += Line;
    U += '\n';
  }
  U += "inputs: --int n=3 --real x=1.5 --bool b=1\n"
       "        --ints a=0,1 --reals a=1.5,2 --bools a=1,0\n";
  return U;
}

ToolOptions ToolOptions::parse(const std::vector<std::string> &Args) {
  ToolOptions Opts;
  if (Args.empty()) {
    Opts.Errors.push_back("missing command");
    return Opts;
  }
  Opts.Command = Args[0];
  const bool KnownCommand =
      Opts.Command == "print" || Opts.Command == "lint" ||
      Opts.Command == "analyze" || Opts.Command == "sample" ||
      Opts.Command == "score" || Opts.Command == "report" ||
      Opts.Command == "synth" || Opts.Command == "posterior" ||
      Opts.Command == "trace-stats" || Opts.Command == "profile" ||
      Opts.Command == "bench-diff";
  if (!KnownCommand)
    Opts.Errors.push_back("unknown command '" + Opts.Command + "'");

  auto NextValue = [&](size_t &I, const std::string &Flag,
                       std::string &Out) {
    if (I + 1 >= Args.size()) {
      Opts.Errors.push_back("missing value after " + Flag);
      return false;
    }
    Out = Args[++I];
    return true;
  };

  for (size_t I = 1; I < Args.size(); ++I) {
    const std::string &Flag = Args[I];
    std::string Value;
    if (Flag == "--program" || Flag == "--sketch") {
      if (NextValue(I, Flag, Value))
        Opts.ProgramPath = Value;
    } else if (Flag == "--data") {
      if (NextValue(I, Flag, Value))
        Opts.DataPath = Value;
    } else if (Flag == "--out") {
      if (NextValue(I, Flag, Value))
        Opts.OutPath = Value;
    } else if (Flag == "--trace-out") {
      if (NextValue(I, Flag, Value))
        Opts.TraceOutPath = Value;
    } else if (Flag == "--metrics-out") {
      if (NextValue(I, Flag, Value))
        Opts.MetricsOutPath = Value;
    } else if (Flag == "--trace") {
      if (NextValue(I, Flag, Value))
        Opts.TracePaths.push_back(Value);
    } else if (Flag == "--folded") {
      if (NextValue(I, Flag, Value))
        Opts.FoldedOutPath = Value;
    } else if (Flag == "--dot-out") {
      if (NextValue(I, Flag, Value))
        Opts.DotOutPath = Value;
    } else if (Flag == "--checkpoint-out") {
      if (NextValue(I, Flag, Value))
        Opts.CheckpointOutPath = Value;
    } else if (Flag == "--resume") {
      if (NextValue(I, Flag, Value))
        Opts.ResumePath = Value;
    } else if (Flag == "--progress") {
      Opts.Progress = true;
    } else if (Flag == "--profile") {
      Opts.Profile = true;
    } else if (Flag == "--tolerance") {
      if (!NextValue(I, Flag, Value))
        continue;
      auto V = parseNumber(Value);
      if (!V || *V < 0) {
        Opts.Errors.push_back("malformed value for --tolerance: '" +
                              Value + "'");
        continue;
      }
      Opts.Tolerance = *V;
    } else if (Flag == "--no-incremental") {
      Opts.NoIncremental = true;
    } else if (Flag == "--no-simplify") {
      Opts.NoSimplify = true;
    } else if (Flag == "--no-fuse") {
      Opts.NoFuse = true;
    } else if (Flag == "--ffast-tape") {
      Opts.FastTape = true;
    } else if (Flag == "--no-static-analysis") {
      Opts.NoStaticAnalysis = true;
    } else if (Flag == "--no-slice-factoring") {
      Opts.NoSliceFactoring = true;
    } else if (Flag == "--no-simd") {
      Opts.NoSimd = true;
    } else if (Flag == "--fast-simd-math") {
      Opts.FastSimdMath = true;
    } else if (Flag == "--slot") {
      if (NextValue(I, Flag, Value))
        Opts.Slots.push_back(Value);
    } else if (Flag == "--rows" || Flag == "--iterations" ||
               Flag == "--chains" || Flag == "--seed" ||
               Flag == "--samples" || Flag == "--threads" ||
               Flag == "--row-threads" || Flag == "--column-cache-mb" ||
               Flag == "--profile-sample-every" ||
               Flag == "--speculate-depth" ||
               Flag == "--checkpoint-every" ||
               Flag == "--checkpoint-keep" || Flag == "--deadline-s" ||
               Flag == "--min-proposals-per-s") {
      if (!NextValue(I, Flag, Value))
        continue;
      auto V = parseNumber(Value);
      if (!V || *V < 0) {
        Opts.Errors.push_back("malformed value for " + Flag + ": '" +
                              Value + "'");
        continue;
      }
      if (Flag == "--rows")
        Opts.Rows = unsigned(*V);
      else if (Flag == "--samples")
        Opts.Samples = unsigned(*V);
      else if (Flag == "--iterations")
        Opts.Iterations = unsigned(*V);
      else if (Flag == "--chains")
        Opts.Chains = unsigned(*V);
      else if (Flag == "--threads")
        Opts.Threads = unsigned(*V);
      else if (Flag == "--row-threads")
        Opts.RowThreads = unsigned(*V);
      else if (Flag == "--speculate-depth")
        Opts.SpeculateDepth = unsigned(*V);
      else if (Flag == "--column-cache-mb")
        Opts.ColumnCacheMB = unsigned(*V);
      else if (Flag == "--profile-sample-every")
        Opts.ProfileSampleEvery = std::max(1u, unsigned(*V));
      else if (Flag == "--checkpoint-every")
        Opts.CheckpointEvery = unsigned(*V);
      else if (Flag == "--checkpoint-keep")
        Opts.CheckpointKeep = std::max(1u, unsigned(*V));
      else if (Flag == "--deadline-s")
        Opts.DeadlineSeconds = *V;
      else if (Flag == "--min-proposals-per-s")
        Opts.MinProposalsPerSec = *V;
      else
        Opts.Seed = uint64_t(*V);
    } else if (Flag == "--int" || Flag == "--real" || Flag == "--bool") {
      if (!NextValue(I, Flag, Value))
        continue;
      std::string Name, Text;
      auto Num = splitBinding(Value, Name, Text)
                     ? parseNumber(Text)
                     : std::nullopt;
      if (!Num) {
        Opts.Errors.push_back("malformed binding for " + Flag + ": '" +
                              Value + "'");
        continue;
      }
      ScalarKind Kind = Flag == "--int"    ? ScalarKind::Int
                        : Flag == "--real" ? ScalarKind::Real
                                           : ScalarKind::Bool;
      Opts.Inputs.setScalar(Name, *Num, Kind);
    } else if (Flag == "--ints" || Flag == "--reals" || Flag == "--bools") {
      if (!NextValue(I, Flag, Value))
        continue;
      std::string Name, Text;
      auto Nums = splitBinding(Value, Name, Text)
                      ? parseNumberList(Text)
                      : std::nullopt;
      if (!Nums) {
        Opts.Errors.push_back("malformed binding for " + Flag + ": '" +
                              Value + "'");
        continue;
      }
      ScalarKind Kind = Flag == "--ints"    ? ScalarKind::Int
                        : Flag == "--reals" ? ScalarKind::Real
                                            : ScalarKind::Bool;
      Opts.Inputs.setArray(Name, std::move(*Nums), Kind);
    } else if (Opts.Command == "bench-diff" && !Flag.empty() &&
               Flag[0] != '-') {
      if (Opts.BenchOldPath.empty())
        Opts.BenchOldPath = Flag;
      else if (Opts.BenchNewPath.empty())
        Opts.BenchNewPath = Flag;
      else
        Opts.Errors.push_back("unexpected extra argument '" + Flag + "'");
    } else {
      Opts.Errors.push_back("unknown flag '" + Flag + "'");
    }
  }

  // Per-command requirements.
  if (KnownCommand) {
    if (Opts.Command == "trace-stats") {
      if (Opts.TracePaths.empty())
        Opts.Errors.push_back("command 'trace-stats' requires --trace");
      return Opts;
    }
    if (Opts.Command == "bench-diff") {
      if (Opts.BenchOldPath.empty() || Opts.BenchNewPath.empty())
        Opts.Errors.push_back(
            "command 'bench-diff' requires two positional arguments: "
            "OLD.json NEW.json");
      return Opts;
    }
    if (Opts.ProgramPath.empty())
      Opts.Errors.push_back("missing --program/--sketch");
    bool NeedsData = Opts.Command == "score" || Opts.Command == "report" ||
                     Opts.Command == "synth" || Opts.Command == "profile";
    if (NeedsData && Opts.DataPath.empty())
      Opts.Errors.push_back("command '" + Opts.Command +
                            "' requires --data");
    if (Opts.Command == "posterior" && Opts.Slots.empty())
      Opts.Errors.push_back("command 'posterior' requires --slot");
  }
  return Opts;
}
