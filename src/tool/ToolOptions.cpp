//===- tool/ToolOptions.cpp - Command-line parsing for psketch ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tool/ToolOptions.h"

#include <cstdlib>
#include <optional>

using namespace psketch;

namespace {

/// Splits "name=value"; returns false when '=' is missing.
bool splitBinding(const std::string &Arg, std::string &Name,
                  std::string &Value) {
  size_t Eq = Arg.find('=');
  if (Eq == std::string::npos || Eq == 0)
    return false;
  Name = Arg.substr(0, Eq);
  Value = Arg.substr(Eq + 1);
  return true;
}

std::optional<double> parseNumber(const std::string &Text) {
  if (Text.empty())
    return std::nullopt;
  char *End = nullptr;
  double V = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size())
    return std::nullopt;
  return V;
}

std::optional<std::vector<double>> parseNumberList(const std::string &Text) {
  std::vector<double> Values;
  std::string Field;
  auto Flush = [&]() -> bool {
    auto V = parseNumber(Field);
    if (!V)
      return false;
    Values.push_back(*V);
    Field.clear();
    return true;
  };
  for (char C : Text) {
    if (C == ',') {
      if (!Flush())
        return std::nullopt;
      continue;
    }
    Field += C;
  }
  if (!Flush())
    return std::nullopt;
  return Values;
}

} // namespace

std::string psketch::toolUsage() {
  return "usage: psketch "
         "<print|lint|analyze|sample|score|report|synth|posterior"
         "|trace-stats|profile|bench-diff> [options]\n"
         "  print  --program FILE\n"
         "  lint   --program FILE (static diagnostics: unbound/unused\n"
         "         variables, constant observes, invalid draw parameters,\n"
         "         uncompletable holes, unreachable statements,\n"
         "         hole-disconnected observes)\n"
         "  analyze --program FILE [--data FILE.csv]\n"
         "         [--dot-out FILE.dot] (hole->observe dependence matrix;\n"
         "         --data marks the dataset's observed columns)\n"
         "  sample --program FILE [--rows N] [--seed S] [--out FILE.csv]\n"
         "  score  --program FILE --data FILE.csv\n"
         "  report --program FILE --data FILE.csv [--slot NAME ...]\n"
         "  synth  --sketch FILE --data FILE.csv [--iterations N]\n"
         "         [--chains N] [--seed S] [--threads N (0 = all cores)]\n"
         "         [--trace-out FILE.jsonl] [--metrics-out FILE.json]\n"
         "         [--progress] [--no-incremental] [--no-simplify]\n"
         "         [--no-fuse] [--ffast-tape] [--column-cache-mb N]\n"
         "         [--no-static-analysis] [--no-slice-factoring]\n"
         "         [--no-simd] [--fast-simd-math]\n"
         "         [--row-threads N] [--speculate-depth K] [--profile]\n"
         "         [--profile-sample-every K]\n"
         "  posterior --program FILE --slot NAME [--samples N] [--seed S]\n"
         "  trace-stats --trace FILE.jsonl [--trace FILE.jsonl ...]\n"
         "  profile --sketch FILE --data FILE.csv [synth options]\n"
         "         [--out FILE.json] [--folded FILE.folded]\n"
         "  bench-diff OLD.json NEW.json [--tolerance 0.15]\n"
         "inputs: --int n=3 --real x=1.5 --bool b=1\n"
         "        --ints a=0,1 --reals a=1.5,2 --bools a=1,0\n";
}

ToolOptions ToolOptions::parse(const std::vector<std::string> &Args) {
  ToolOptions Opts;
  if (Args.empty()) {
    Opts.Errors.push_back("missing command");
    return Opts;
  }
  Opts.Command = Args[0];
  const bool KnownCommand =
      Opts.Command == "print" || Opts.Command == "lint" ||
      Opts.Command == "analyze" || Opts.Command == "sample" ||
      Opts.Command == "score" || Opts.Command == "report" ||
      Opts.Command == "synth" || Opts.Command == "posterior" ||
      Opts.Command == "trace-stats" || Opts.Command == "profile" ||
      Opts.Command == "bench-diff";
  if (!KnownCommand)
    Opts.Errors.push_back("unknown command '" + Opts.Command + "'");

  auto NextValue = [&](size_t &I, const std::string &Flag,
                       std::string &Out) {
    if (I + 1 >= Args.size()) {
      Opts.Errors.push_back("missing value after " + Flag);
      return false;
    }
    Out = Args[++I];
    return true;
  };

  for (size_t I = 1; I < Args.size(); ++I) {
    const std::string &Flag = Args[I];
    std::string Value;
    if (Flag == "--program" || Flag == "--sketch") {
      if (NextValue(I, Flag, Value))
        Opts.ProgramPath = Value;
    } else if (Flag == "--data") {
      if (NextValue(I, Flag, Value))
        Opts.DataPath = Value;
    } else if (Flag == "--out") {
      if (NextValue(I, Flag, Value))
        Opts.OutPath = Value;
    } else if (Flag == "--trace-out") {
      if (NextValue(I, Flag, Value))
        Opts.TraceOutPath = Value;
    } else if (Flag == "--metrics-out") {
      if (NextValue(I, Flag, Value))
        Opts.MetricsOutPath = Value;
    } else if (Flag == "--trace") {
      if (NextValue(I, Flag, Value))
        Opts.TracePaths.push_back(Value);
    } else if (Flag == "--folded") {
      if (NextValue(I, Flag, Value))
        Opts.FoldedOutPath = Value;
    } else if (Flag == "--dot-out") {
      if (NextValue(I, Flag, Value))
        Opts.DotOutPath = Value;
    } else if (Flag == "--progress") {
      Opts.Progress = true;
    } else if (Flag == "--profile") {
      Opts.Profile = true;
    } else if (Flag == "--tolerance") {
      if (!NextValue(I, Flag, Value))
        continue;
      auto V = parseNumber(Value);
      if (!V || *V < 0) {
        Opts.Errors.push_back("malformed value for --tolerance: '" +
                              Value + "'");
        continue;
      }
      Opts.Tolerance = *V;
    } else if (Flag == "--no-incremental") {
      Opts.NoIncremental = true;
    } else if (Flag == "--no-simplify") {
      Opts.NoSimplify = true;
    } else if (Flag == "--no-fuse") {
      Opts.NoFuse = true;
    } else if (Flag == "--ffast-tape") {
      Opts.FastTape = true;
    } else if (Flag == "--no-static-analysis") {
      Opts.NoStaticAnalysis = true;
    } else if (Flag == "--no-slice-factoring") {
      Opts.NoSliceFactoring = true;
    } else if (Flag == "--no-simd") {
      Opts.NoSimd = true;
    } else if (Flag == "--fast-simd-math") {
      Opts.FastSimdMath = true;
    } else if (Flag == "--slot") {
      if (NextValue(I, Flag, Value))
        Opts.Slots.push_back(Value);
    } else if (Flag == "--rows" || Flag == "--iterations" ||
               Flag == "--chains" || Flag == "--seed" ||
               Flag == "--samples" || Flag == "--threads" ||
               Flag == "--row-threads" || Flag == "--column-cache-mb" ||
               Flag == "--profile-sample-every" ||
               Flag == "--speculate-depth") {
      if (!NextValue(I, Flag, Value))
        continue;
      auto V = parseNumber(Value);
      if (!V || *V < 0) {
        Opts.Errors.push_back("malformed value for " + Flag + ": '" +
                              Value + "'");
        continue;
      }
      if (Flag == "--rows")
        Opts.Rows = unsigned(*V);
      else if (Flag == "--samples")
        Opts.Samples = unsigned(*V);
      else if (Flag == "--iterations")
        Opts.Iterations = unsigned(*V);
      else if (Flag == "--chains")
        Opts.Chains = unsigned(*V);
      else if (Flag == "--threads")
        Opts.Threads = unsigned(*V);
      else if (Flag == "--row-threads")
        Opts.RowThreads = unsigned(*V);
      else if (Flag == "--speculate-depth")
        Opts.SpeculateDepth = unsigned(*V);
      else if (Flag == "--column-cache-mb")
        Opts.ColumnCacheMB = unsigned(*V);
      else if (Flag == "--profile-sample-every")
        Opts.ProfileSampleEvery = std::max(1u, unsigned(*V));
      else
        Opts.Seed = uint64_t(*V);
    } else if (Flag == "--int" || Flag == "--real" || Flag == "--bool") {
      if (!NextValue(I, Flag, Value))
        continue;
      std::string Name, Text;
      auto Num = splitBinding(Value, Name, Text)
                     ? parseNumber(Text)
                     : std::nullopt;
      if (!Num) {
        Opts.Errors.push_back("malformed binding for " + Flag + ": '" +
                              Value + "'");
        continue;
      }
      ScalarKind Kind = Flag == "--int"    ? ScalarKind::Int
                        : Flag == "--real" ? ScalarKind::Real
                                           : ScalarKind::Bool;
      Opts.Inputs.setScalar(Name, *Num, Kind);
    } else if (Flag == "--ints" || Flag == "--reals" || Flag == "--bools") {
      if (!NextValue(I, Flag, Value))
        continue;
      std::string Name, Text;
      auto Nums = splitBinding(Value, Name, Text)
                      ? parseNumberList(Text)
                      : std::nullopt;
      if (!Nums) {
        Opts.Errors.push_back("malformed binding for " + Flag + ": '" +
                              Value + "'");
        continue;
      }
      ScalarKind Kind = Flag == "--ints"    ? ScalarKind::Int
                        : Flag == "--reals" ? ScalarKind::Real
                                            : ScalarKind::Bool;
      Opts.Inputs.setArray(Name, std::move(*Nums), Kind);
    } else if (Opts.Command == "bench-diff" && !Flag.empty() &&
               Flag[0] != '-') {
      if (Opts.BenchOldPath.empty())
        Opts.BenchOldPath = Flag;
      else if (Opts.BenchNewPath.empty())
        Opts.BenchNewPath = Flag;
      else
        Opts.Errors.push_back("unexpected extra argument '" + Flag + "'");
    } else {
      Opts.Errors.push_back("unknown flag '" + Flag + "'");
    }
  }

  // Per-command requirements.
  if (KnownCommand) {
    if (Opts.Command == "trace-stats") {
      if (Opts.TracePaths.empty())
        Opts.Errors.push_back("command 'trace-stats' requires --trace");
      return Opts;
    }
    if (Opts.Command == "bench-diff") {
      if (Opts.BenchOldPath.empty() || Opts.BenchNewPath.empty())
        Opts.Errors.push_back(
            "command 'bench-diff' requires two positional arguments: "
            "OLD.json NEW.json");
      return Opts;
    }
    if (Opts.ProgramPath.empty())
      Opts.Errors.push_back("missing --program/--sketch");
    bool NeedsData = Opts.Command == "score" || Opts.Command == "report" ||
                     Opts.Command == "synth" || Opts.Command == "profile";
    if (NeedsData && Opts.DataPath.empty())
      Opts.Errors.push_back("command '" + Opts.Command +
                            "' requires --data");
    if (Opts.Command == "posterior" && Opts.Slots.empty())
      Opts.Errors.push_back("command 'posterior' requires --slot");
  }
  return Opts;
}
