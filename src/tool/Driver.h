//===- tool/Driver.h - The psketch command implementations ----------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the `psketch` subcommands over the library API.  Factored
/// out of main() so tests can drive the tool end to end with in-memory
/// streams.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_TOOL_DRIVER_H
#define PSKETCH_TOOL_DRIVER_H

#include "tool/ToolOptions.h"

#include <iosfwd>

namespace psketch {

/// Runs one tool invocation; returns the process exit code.  All
/// output goes to \p Out, all diagnostics to \p Err.
int runTool(const ToolOptions &Opts, std::ostream &Out, std::ostream &Err);

} // namespace psketch

#endif // PSKETCH_TOOL_DRIVER_H
