//===- tool/psketch_main.cpp - Entry point of the psketch driver ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "tool/Driver.h"

#include <iostream>

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  psketch::ToolOptions Opts = psketch::ToolOptions::parse(Args);
  return psketch::runTool(Opts, std::cout, std::cerr);
}
