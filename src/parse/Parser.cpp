//===- parse/Parser.cpp - Parser for the sketching language ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"

#include "support/Casting.h"

#include <optional>
#include <unordered_map>

using namespace psketch;

namespace {

std::optional<DistKind> lookupDist(const std::string &Name) {
  static const std::unordered_map<std::string, DistKind> Dists = {
      {"Gaussian", DistKind::Gaussian}, {"Bernoulli", DistKind::Bernoulli},
      {"Beta", DistKind::Beta},         {"Gamma", DistKind::Gamma},
      {"Poisson", DistKind::Poisson},
  };
  auto It = Dists.find(Name);
  if (It == Dists.end())
    return std::nullopt;
  return It->second;
}

std::optional<BinaryOp> binaryOpFor(TokenKind K) {
  switch (K) {
  case TokenKind::OrOr:
    return BinaryOp::Or;
  case TokenKind::AndAnd:
    return BinaryOp::And;
  case TokenKind::EqEq:
    return BinaryOp::Eq;
  case TokenKind::Greater:
    return BinaryOp::Gt;
  case TokenKind::Less:
    return BinaryOp::Lt;
  case TokenKind::Plus:
    return BinaryOp::Add;
  case TokenKind::Minus:
    return BinaryOp::Sub;
  case TokenKind::Star:
    return BinaryOp::Mul;
  default:
    return std::nullopt;
  }
}

} // namespace

Parser::Parser(std::string Source, DiagEngine &Diags)
    : Lex(std::move(Source), Diags), Diags(Diags) {
  Tok = Lex.next();
  Next = Lex.next();
}

void Parser::consume() {
  Tok = Next;
  if (!Tok.is(TokenKind::Eof))
    Next = Lex.next();
  else
    Next = Tok;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (Tok.is(K)) {
    consume();
    return true;
  }
  Diags.error(Tok.Loc, std::string("expected ") + tokenKindName(K) + " " +
                           Context + ", found " + tokenKindName(Tok.Kind));
  return false;
}

bool Parser::consumeIf(TokenKind K) {
  if (!Tok.is(K))
    return false;
  consume();
  return true;
}

bool Parser::parseParamList(std::vector<Param> &Params) {
  if (consumeIf(TokenKind::RParen))
    return true;
  do {
    if (!Tok.is(TokenKind::Ident)) {
      Diags.error(Tok.Loc, "expected parameter name");
      return false;
    }
    Param P;
    P.Name = Tok.Text;
    consume();
    if (!expect(TokenKind::Colon, "after parameter name"))
      return false;
    ScalarKind K;
    if (consumeIf(TokenKind::KwReal))
      K = ScalarKind::Real;
    else if (consumeIf(TokenKind::KwBool))
      K = ScalarKind::Bool;
    else if (consumeIf(TokenKind::KwInt))
      K = ScalarKind::Int;
    else {
      Diags.error(Tok.Loc, "expected parameter type");
      return false;
    }
    bool IsArray = false;
    if (consumeIf(TokenKind::LBracket)) {
      if (!expect(TokenKind::RBracket, "in array parameter type"))
        return false;
      IsArray = true;
    }
    P.Ty = Type(K, IsArray);
    Params.push_back(std::move(P));
  } while (consumeIf(TokenKind::Comma));
  return expect(TokenKind::RParen, "after parameter list");
}

bool Parser::parseDecl(std::vector<LocalDecl> &Decls) {
  LocalDecl D;
  D.Name = Tok.Text;
  consume(); // identifier
  consume(); // ':'
  if (consumeIf(TokenKind::KwReal))
    D.Kind = ScalarKind::Real;
  else if (consumeIf(TokenKind::KwBool))
    D.Kind = ScalarKind::Bool;
  else if (consumeIf(TokenKind::KwInt))
    D.Kind = ScalarKind::Int;
  else {
    Diags.error(Tok.Loc, "expected type in declaration");
    return false;
  }
  if (consumeIf(TokenKind::LBracket)) {
    D.ArraySize = parseExpr();
    if (!D.ArraySize)
      return false;
    if (!expect(TokenKind::RBracket, "after array size"))
      return false;
  }
  if (!expect(TokenKind::Semi, "after declaration"))
    return false;
  Decls.push_back(std::move(D));
  return true;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(TokenKind::LBrace, "to open block"))
    return nullptr;
  auto Block = std::make_unique<BlockStmt>(std::vector<StmtPtr>(), Loc);
  while (!Tok.is(TokenKind::RBrace) && !Tok.is(TokenKind::Eof)) {
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Block->append(std::move(S));
  }
  if (!expect(TokenKind::RBrace, "to close block"))
    return nullptr;
  return Block;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::KwSkip: {
    consume();
    if (!expect(TokenKind::Semi, "after 'skip'"))
      return nullptr;
    return std::make_unique<SkipStmt>(Loc);
  }
  case TokenKind::KwObserve: {
    consume();
    if (!expect(TokenKind::LParen, "after 'observe'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after observe condition") ||
        !expect(TokenKind::Semi, "after observe statement"))
      return nullptr;
    return std::make_unique<ObserveStmt>(std::move(Cond), Loc);
  }
  case TokenKind::KwIf: {
    consume();
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    auto Then = parseBlock();
    if (!Then)
      return nullptr;
    std::unique_ptr<BlockStmt> Else;
    if (consumeIf(TokenKind::KwElse)) {
      Else = parseBlock();
      if (!Else)
        return nullptr;
    } else {
      Else = std::make_unique<BlockStmt>();
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }
  case TokenKind::KwFor: {
    consume();
    if (!Tok.is(TokenKind::Ident)) {
      Diags.error(Tok.Loc, "expected loop variable after 'for'");
      return nullptr;
    }
    std::string IndexVar = Tok.Text;
    consume();
    if (!expect(TokenKind::KwIn, "after loop variable"))
      return nullptr;
    ExprPtr Lo = parseExpr();
    if (!Lo)
      return nullptr;
    if (!expect(TokenKind::DotDot, "in loop range"))
      return nullptr;
    ExprPtr Hi = parseExpr();
    if (!Hi)
      return nullptr;
    auto Body = parseBlock();
    if (!Body)
      return nullptr;
    return std::make_unique<ForStmt>(std::move(IndexVar), std::move(Lo),
                                     std::move(Hi), std::move(Body), Loc);
  }
  case TokenKind::Ident: {
    LValue Target(Tok.Text);
    consume();
    if (consumeIf(TokenKind::LBracket)) {
      Target.Index = parseExpr();
      if (!Target.Index)
        return nullptr;
      if (!expect(TokenKind::RBracket, "after array index"))
        return nullptr;
    }
    if (consumeIf(TokenKind::Tilde)) {
      // Probabilistic assignment: `x ~ Dist(args);`.
      if (!Tok.is(TokenKind::Ident)) {
        Diags.error(Tok.Loc, "expected distribution name after '~'");
        return nullptr;
      }
      auto Dist = lookupDist(Tok.Text);
      if (!Dist) {
        Diags.error(Tok.Loc, "unknown distribution '" + Tok.Text + "'");
        return nullptr;
      }
      SourceLoc DistLoc = Tok.Loc;
      consume();
      if (!expect(TokenKind::LParen, "after distribution name"))
        return nullptr;
      std::vector<ExprPtr> Args;
      if (!parseArgList(Args))
        return nullptr;
      if (Args.size() != distArity(*Dist)) {
        Diags.error(DistLoc, std::string(distKindName(*Dist)) + " expects " +
                                 std::to_string(distArity(*Dist)) +
                                 " arguments");
        return nullptr;
      }
      if (!expect(TokenKind::Semi, "after probabilistic assignment"))
        return nullptr;
      auto Draw =
          std::make_unique<SampleExpr>(*Dist, std::move(Args), DistLoc);
      return std::make_unique<AssignStmt>(std::move(Target), std::move(Draw),
                                          Loc);
    }
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    ExprPtr Value = parseExpr();
    if (!Value)
      return nullptr;
    if (!expect(TokenKind::Semi, "after assignment"))
      return nullptr;
    return std::make_unique<AssignStmt>(std::move(Target), std::move(Value),
                                        Loc);
  }
  default:
    Diags.error(Tok.Loc, std::string("expected statement, found ") +
                             tokenKindName(Tok.Kind));
    return nullptr;
  }
}

bool Parser::parseArgList(std::vector<ExprPtr> &Args) {
  if (consumeIf(TokenKind::RParen))
    return true;
  do {
    ExprPtr E = parseExpr();
    if (!E)
      return false;
    Args.push_back(std::move(E));
  } while (consumeIf(TokenKind::Comma));
  return expect(TokenKind::RParen, "after argument list");
}

ExprPtr Parser::parseExpr() { return parseBinaryRHS(1, parseUnary()); }

ExprPtr Parser::parseBinaryRHS(int MinPrec, ExprPtr LHS) {
  if (!LHS)
    return nullptr;
  for (;;) {
    auto Op = binaryOpFor(Tok.Kind);
    if (!Op || binaryOpPrecedence(*Op) < MinPrec)
      return LHS;
    int Prec = binaryOpPrecedence(*Op);
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    // Left-associative: fold while the next operator binds tighter.
    RHS = parseBinaryRHS(Prec + 1, std::move(RHS));
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(*Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = Tok.Loc;
  if (consumeIf(TokenKind::Bang)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Sub), Loc);
  }
  if (consumeIf(TokenKind::Minus)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    // Fold negation of a numeric literal into the constant so the
    // printer/parser round trip preserves structure.
    if (auto *C = dyn_cast<ConstExpr>(Sub.get());
        C && C->getScalarKind() != ScalarKind::Bool) {
      C->setValue(-C->getValue());
      C->setLoc(Loc);
      return Sub;
    }
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Sub), Loc);
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::RealLit: {
    double V = Tok.Number;
    consume();
    return ConstExpr::real(V, Loc);
  }
  case TokenKind::IntLit: {
    double V = Tok.Number;
    consume();
    return ConstExpr::integer(long(V), Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return ConstExpr::boolean(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return ConstExpr::boolean(false, Loc);
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "after parenthesized expression"))
      return nullptr;
    return E;
  }
  case TokenKind::KwIte: {
    consume();
    if (!expect(TokenKind::LParen, "after 'ite'"))
      return nullptr;
    std::vector<ExprPtr> Args;
    if (!parseArgList(Args))
      return nullptr;
    if (Args.size() != 3) {
      Diags.error(Loc, "ite expects 3 arguments");
      return nullptr;
    }
    return std::make_unique<IteExpr>(std::move(Args[0]), std::move(Args[1]),
                                     std::move(Args[2]), Loc);
  }
  case TokenKind::Hole: {
    consume();
    std::vector<ExprPtr> Args;
    if (consumeIf(TokenKind::LParen)) {
      if (!parseArgList(Args))
        return nullptr;
    }
    return std::make_unique<HoleExpr>(NextHoleId++, std::move(Args), Loc);
  }
  case TokenKind::Percent: {
    consume();
    if (!Tok.is(TokenKind::IntLit)) {
      Diags.error(Tok.Loc, "expected hole-formal index after '%'");
      return nullptr;
    }
    unsigned Index = unsigned(Tok.Number);
    consume();
    return std::make_unique<HoleArgExpr>(Index, ScalarKind::Real, Loc);
  }
  case TokenKind::Ident: {
    std::string Name = Tok.Text;
    consume();
    if (Tok.is(TokenKind::LParen)) {
      auto Dist = lookupDist(Name);
      if (!Dist) {
        Diags.error(Loc, "unknown distribution '" + Name + "'");
        return nullptr;
      }
      consume();
      std::vector<ExprPtr> Args;
      if (!parseArgList(Args))
        return nullptr;
      if (Args.size() != distArity(*Dist)) {
        Diags.error(Loc, std::string(distKindName(*Dist)) + " expects " +
                             std::to_string(distArity(*Dist)) + " arguments");
        return nullptr;
      }
      return std::make_unique<SampleExpr>(*Dist, std::move(Args), Loc);
    }
    if (consumeIf(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      if (!expect(TokenKind::RBracket, "after array index"))
        return nullptr;
      return std::make_unique<IndexExpr>(std::move(Name), std::move(Index),
                                         Loc);
    }
    return std::make_unique<VarExpr>(std::move(Name), Loc);
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(Tok.Kind));
    return nullptr;
  }
}

std::unique_ptr<Program> Parser::parseProgramUnit() {
  if (!expect(TokenKind::KwProgram, "at start of program"))
    return nullptr;
  if (!Tok.is(TokenKind::Ident)) {
    Diags.error(Tok.Loc, "expected program name");
    return nullptr;
  }
  std::string Name = Tok.Text;
  consume();
  if (!expect(TokenKind::LParen, "after program name"))
    return nullptr;
  std::vector<Param> Params;
  if (!parseParamList(Params))
    return nullptr;
  if (!expect(TokenKind::LBrace, "to open program body"))
    return nullptr;

  std::vector<LocalDecl> Decls;
  auto Body = std::make_unique<BlockStmt>();
  std::vector<std::string> Returns;
  for (;;) {
    if (Tok.is(TokenKind::Eof)) {
      Diags.error(Tok.Loc, "unexpected end of input in program body");
      return nullptr;
    }
    if (Tok.is(TokenKind::KwReturn)) {
      consume();
      do {
        if (!Tok.is(TokenKind::Ident)) {
          Diags.error(Tok.Loc, "expected variable name in return list");
          return nullptr;
        }
        Returns.push_back(Tok.Text);
        consume();
      } while (consumeIf(TokenKind::Comma));
      if (!expect(TokenKind::Semi, "after return list") ||
          !expect(TokenKind::RBrace, "to close program body"))
        return nullptr;
      break;
    }
    // `name : type ...` introduces a declaration; anything else is a
    // statement.
    if (Tok.is(TokenKind::Ident) && Next.is(TokenKind::Colon)) {
      if (!parseDecl(Decls))
        return nullptr;
      continue;
    }
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Body->append(std::move(S));
  }
  if (!Tok.is(TokenKind::Eof)) {
    Diags.error(Tok.Loc, "trailing tokens after program");
    return nullptr;
  }
  return std::make_unique<Program>(std::move(Name), std::move(Params),
                                   std::move(Decls), std::move(Body),
                                   std::move(Returns));
}

ExprPtr Parser::parseStandaloneExpr() {
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (!Tok.is(TokenKind::Eof)) {
    Diags.error(Tok.Loc, "trailing tokens after expression");
    return nullptr;
  }
  return E;
}

std::unique_ptr<Program>
psketch::parseProgramSource(const std::string &Source, DiagEngine &Diags) {
  Parser P(Source, Diags);
  auto Result = P.parseProgramUnit();
  if (Diags.hasErrors())
    return nullptr;
  return Result;
}

ExprPtr psketch::parseExprSource(const std::string &Source,
                                 DiagEngine &Diags) {
  Parser P(Source, Diags);
  auto Result = P.parseStandaloneExpr();
  if (Diags.hasErrors())
    return nullptr;
  return Result;
}
