//===- parse/Parser.h - Parser for the sketching language -----------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Figure 3 grammar with sketching
/// extensions.  Concrete syntax:
///
/// \code
///   program TrueSkill(nplayers: int, p1: int[], p2: int[],
///                     result: bool[]) {
///     skills: real[nplayers];
///     r: bool[ngames];
///     for i in 0..nplayers { skills[i] ~ Gaussian(100.0, 10.0); }
///     for g in 0..ngames {
///       r[g] = ??(skills[p1[g]], skills[p2[g]]);
///     }
///     for g in 0..ngames { observe(result[g] == r[g]); }
///     return skills;
///   }
/// \endcode
///
/// Holes are written `??` (independent) or `??(e1, ..., ek)` (with
/// dependences) and are numbered in syntactic order.  Hole-completion
/// expressions may additionally reference hole formals `%0, %1, ...`.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_PARSE_PARSER_H
#define PSKETCH_PARSE_PARSER_H

#include "ast/Program.h"
#include "parse/Lexer.h"

#include <memory>

namespace psketch {

/// Parses one source buffer.  On error, diagnostics are recorded and a
/// null result is returned.
class Parser {
public:
  Parser(std::string Source, DiagEngine &Diags);

  /// Parses a complete `program ... { ... }` unit.
  std::unique_ptr<Program> parseProgramUnit();

  /// Parses a standalone expression (used for hole completions in tests
  /// and tools); fails if trailing tokens remain.
  ExprPtr parseStandaloneExpr();

private:
  // Token stream management (one token of lookahead past Tok).
  const Token &tok() const { return Tok; }
  const Token &peekNext() const { return Next; }
  void consume();
  bool expect(TokenKind K, const char *Context);
  bool consumeIf(TokenKind K);

  // Grammar productions.
  bool parseParamList(std::vector<Param> &Params);
  bool parseDecl(std::vector<LocalDecl> &Decls);
  StmtPtr parseStmt();
  std::unique_ptr<BlockStmt> parseBlock();
  ExprPtr parseExpr();
  ExprPtr parseBinaryRHS(int MinPrec, ExprPtr LHS);
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  bool parseArgList(std::vector<ExprPtr> &Args);

  Token Tok, Next;
  Lexer Lex;
  DiagEngine &Diags;
  unsigned NextHoleId = 0;
};

/// Convenience wrapper: parse \p Source as a program.
std::unique_ptr<Program> parseProgramSource(const std::string &Source,
                                            DiagEngine &Diags);

/// Convenience wrapper: parse \p Source as an expression.
ExprPtr parseExprSource(const std::string &Source, DiagEngine &Diags);

} // namespace psketch

#endif // PSKETCH_PARSE_PARSER_H
