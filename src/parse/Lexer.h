//===- parse/Lexer.h - Lexer for the sketching language -------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hand-written lexer.  Comments run from `//` to end of line.  A `.`
/// only continues a numeric literal when followed by a digit, so the
/// range token `..` after an integer (`0..n`) lexes correctly.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_PARSE_LEXER_H
#define PSKETCH_PARSE_LEXER_H

#include "parse/Token.h"

#include <string>
#include <vector>

namespace psketch {

class DiagEngine;

/// Lexes one source buffer.  Errors (stray characters, malformed
/// numbers) are reported to the DiagEngine and skipped.
class Lexer {
public:
  Lexer(std::string Source, DiagEngine &Diags);

  /// Lexes the next token; returns Eof at end of input (repeatedly).
  Token next();

  /// Lexes the entire buffer, terminating with an Eof token.
  std::vector<Token> lexAll();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipTrivia();
  SourceLoc loc() const { return {Line, Col}; }

  Token makeToken(TokenKind K, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Start);
  Token lexIdent(SourceLoc Start);

  std::string Source;
  DiagEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace psketch

#endif // PSKETCH_PARSE_LEXER_H
