//===- parse/Lexer.cpp - Lexer for the sketching language -----------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "parse/Lexer.h"

#include "support/Diag.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace psketch;

const char *psketch::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::RealLit:
    return "real literal";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwReal:
    return "'real'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwObserve:
    return "'observe'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIte:
    return "'ite'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::DotDot:
    return "'..'";
  case TokenKind::Hole:
    return "'?\?'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::EqEq:
    return "'=='";
  }
  return "<invalid token>";
}

Lexer::Lexer(std::string Source, DiagEngine &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  size_t P = Pos + Ahead;
  return P < Source.size() ? Source[P] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind K, SourceLoc Loc) const {
  Token T;
  T.Kind = K;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexNumber(SourceLoc Start) {
  std::string Digits;
  bool IsReal = false;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits += advance();
  // A '.' continues the literal only when followed by a digit, so that
  // the range punctuation `..` is left intact.
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsReal = true;
    Digits += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    char Sign = peek(1);
    unsigned DigitAt = (Sign == '+' || Sign == '-') ? 2 : 1;
    if (std::isdigit(static_cast<unsigned char>(peek(DigitAt)))) {
      IsReal = true;
      Digits += advance(); // e
      if (Sign == '+' || Sign == '-')
        Digits += advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits += advance();
    }
  }
  Token T = makeToken(IsReal ? TokenKind::RealLit : TokenKind::IntLit, Start);
  T.Number = std::strtod(Digits.c_str(), nullptr);
  T.Text = std::move(Digits);
  return T;
}

Token Lexer::lexIdent(SourceLoc Start) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"program", TokenKind::KwProgram}, {"real", TokenKind::KwReal},
      {"bool", TokenKind::KwBool},       {"int", TokenKind::KwInt},
      {"for", TokenKind::KwFor},         {"in", TokenKind::KwIn},
      {"if", TokenKind::KwIf},           {"else", TokenKind::KwElse},
      {"observe", TokenKind::KwObserve}, {"return", TokenKind::KwReturn},
      {"skip", TokenKind::KwSkip},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},     {"ite", TokenKind::KwIte},
  };
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Name += advance();
  auto It = Keywords.find(Name);
  if (It != Keywords.end())
    return makeToken(It->second, Start);
  Token T = makeToken(TokenKind::Ident, Start);
  T.Text = std::move(Name);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  SourceLoc Start = loc();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::Eof, Start);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Start);
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdent(Start);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Start);
  case ')':
    return makeToken(TokenKind::RParen, Start);
  case '{':
    return makeToken(TokenKind::LBrace, Start);
  case '}':
    return makeToken(TokenKind::RBrace, Start);
  case '[':
    return makeToken(TokenKind::LBracket, Start);
  case ']':
    return makeToken(TokenKind::RBracket, Start);
  case ',':
    return makeToken(TokenKind::Comma, Start);
  case ';':
    return makeToken(TokenKind::Semi, Start);
  case ':':
    return makeToken(TokenKind::Colon, Start);
  case '~':
    return makeToken(TokenKind::Tilde, Start);
  case '%':
    return makeToken(TokenKind::Percent, Start);
  case '+':
    return makeToken(TokenKind::Plus, Start);
  case '-':
    return makeToken(TokenKind::Minus, Start);
  case '*':
    return makeToken(TokenKind::Star, Start);
  case '!':
    return makeToken(TokenKind::Bang, Start);
  case '>':
    return makeToken(TokenKind::Greater, Start);
  case '<':
    return makeToken(TokenKind::Less, Start);
  case '.':
    if (match('.'))
      return makeToken(TokenKind::DotDot, Start);
    Diags.error(Start, "stray '.'; did you mean '..'?");
    return next();
  case '?':
    if (match('?'))
      return makeToken(TokenKind::Hole, Start);
    Diags.error(Start, "stray '?'; holes are written '?\?'");
    return next();
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqEq, Start);
    return makeToken(TokenKind::Assign, Start);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AndAnd, Start);
    Diags.error(Start, "stray '&'; did you mean '&&'?");
    return next();
  case '|':
    if (match('|'))
      return makeToken(TokenKind::OrOr, Start);
    Diags.error(Start, "stray '|'; did you mean '||'?");
    return next();
  default:
    Diags.error(Start, std::string("unexpected character '") + C + "'");
    return next();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      return Tokens;
  }
}
