//===- parse/Token.h - Tokens of the sketching language -------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the lexer.  Distribution constructors are
/// lexed as identifiers and resolved by the parser so the set of
/// primitive distributions stays in one place (ast/Ops.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_PARSE_TOKEN_H
#define PSKETCH_PARSE_TOKEN_H

#include "support/Diag.h"

#include <string>

namespace psketch {

enum class TokenKind {
  Eof,
  Ident,
  RealLit,
  IntLit,
  // Keywords.
  KwProgram,
  KwReal,
  KwBool,
  KwInt,
  KwFor,
  KwIn,
  KwIf,
  KwElse,
  KwObserve,
  KwReturn,
  KwSkip,
  KwTrue,
  KwFalse,
  KwIte,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Assign,   // =
  Tilde,    // ~
  DotDot,   // ..
  Hole,     // ??
  Percent,  // %
  Plus,
  Minus,
  Star,
  AndAnd,
  OrOr,
  Bang,
  Greater,
  Less,
  EqEq,
};

/// Human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind K);

/// A lexed token.  Text is filled for identifiers; Number for numeric
/// literals.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  double Number = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace psketch

#endif // PSKETCH_PARSE_TOKEN_H
