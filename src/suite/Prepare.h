//===- suite/Prepare.h - Benchmark preparation and execution -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a Benchmark description into runnable artifacts — parsed
/// target and sketch, lowered target, generated dataset (the paper's
/// methodology: run the target, collect outputs) — and drives one
/// Table 1 row: synthesize from the sketch and compare data
/// log-likelihoods of target and synthesized programs.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUITE_PREPARE_H
#define PSKETCH_SUITE_PREPARE_H

#include "interp/Interp.h"
#include "suite/Benchmarks.h"

#include <memory>
#include <optional>

namespace psketch {

/// Parsed/lowered/measured artifacts of one benchmark.
struct PreparedBenchmark {
  const Benchmark *Spec = nullptr;
  std::unique_ptr<Program> Target;
  std::unique_ptr<Program> Sketch;
  InputBindings Inputs;
  std::unique_ptr<LoweredProgram> TargetLowered;
  Dataset Data;
  double TargetLL = 0; ///< log Pr(D | target) under the MoG likelihood.
};

/// Parses, checks, lowers and generates data for \p B.  Returns
/// nullopt (with diagnostics) on any failure — the test suite asserts
/// this never happens for the 16 shipped benchmarks.
std::optional<PreparedBenchmark> prepareBenchmark(const Benchmark &B,
                                                  DiagEngine &Diags);

/// One row of Table 1.
struct BenchmarkRunResult {
  std::string Name;
  bool Succeeded = false;
  double Seconds = 0;
  double TargetLL = 0;
  double SynthesizedLL = 0;
  unsigned DatasetSize = 0;
  SynthesisStats Stats;
  std::string BestProgramSource;
};

/// Runs synthesis for \p Prepared with its benchmark's configuration
/// (overridable via \p ConfigOverride).
BenchmarkRunResult
runBenchmark(const PreparedBenchmark &Prepared,
             const SynthesisConfig *ConfigOverride = nullptr);

} // namespace psketch

#endif // PSKETCH_SUITE_PREPARE_H
