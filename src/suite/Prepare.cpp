//===- suite/Prepare.cpp - Benchmark preparation and execution -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "suite/Prepare.h"

#include "api/Session.h"
#include "ast/ASTPrinter.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"

using namespace psketch;

std::optional<PreparedBenchmark>
psketch::prepareBenchmark(const Benchmark &B, DiagEngine &Diags) {
  PreparedBenchmark P;
  P.Spec = &B;
  P.Target = parseProgramSource(B.TargetSource, Diags);
  if (!P.Target) {
    Diags.error({}, "benchmark '" + B.Name + "': target failed to parse");
    return std::nullopt;
  }
  P.Sketch = parseProgramSource(B.SketchSource, Diags);
  if (!P.Sketch) {
    Diags.error({}, "benchmark '" + B.Name + "': sketch failed to parse");
    return std::nullopt;
  }
  if (!typeCheck(*P.Target, Diags) || !typeCheck(*P.Sketch, Diags)) {
    Diags.error({}, "benchmark '" + B.Name + "': type checking failed");
    return std::nullopt;
  }
  P.Inputs = B.MakeInputs();
  P.TargetLowered = lowerProgram(*P.Target, P.Inputs, Diags);
  if (!P.TargetLowered || !checkDefiniteAssignment(*P.TargetLowered, Diags))
    return std::nullopt;

  Rng DataRng(B.DataSeed);
  P.Data = generateDataset(*P.TargetLowered, B.DatasetSize, DataRng);
  if (P.Data.numRows() != B.DatasetSize) {
    Diags.error({}, "benchmark '" + B.Name +
                        "': dataset generation fell short (" +
                        std::to_string(P.Data.numRows()) + " rows)");
    return std::nullopt;
  }

  auto F = LikelihoodFunction::compile(*P.TargetLowered, P.Data,
                                       B.Synth.Algebra);
  if (!F) {
    Diags.error({}, "benchmark '" + B.Name +
                        "': target likelihood failed to compile");
    return std::nullopt;
  }
  P.TargetLL = F->logLikelihood(P.Data);
  return P;
}

BenchmarkRunResult
psketch::runBenchmark(const PreparedBenchmark &Prepared,
                      const SynthesisConfig *ConfigOverride) {
  const Benchmark &B = *Prepared.Spec;
  BenchmarkRunResult Row;
  Row.Name = B.Name;
  Row.TargetLL = Prepared.TargetLL;
  Row.DatasetSize = unsigned(Prepared.Data.numRows());

  SynthesisConfig Config = ConfigOverride ? *ConfigOverride : B.Synth;
  Session S;
  S.sketch(*Prepared.Sketch, B.Name)
      .data(Prepared.Data)
      .inputs(Prepared.Inputs)
      .configure(Config);
  SynthesisResult Result = S.run().Result;
  Row.Succeeded = Result.Succeeded;
  Row.Stats = Result.Stats;
  Row.Seconds = Result.Stats.Seconds;
  Row.SynthesizedLL = Result.BestLogLikelihood;
  if (Result.BestProgram)
    Row.BestProgramSource = toString(*Result.BestProgram);
  return Row;
}
