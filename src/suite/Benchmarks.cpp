//===- suite/Benchmarks.cpp - The 16 paper benchmarks --------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmarks.h"

using namespace psketch;

namespace {

// --------------------------------------------------------------------------
// Burglary (Pearl [14]): boolean causal network conditioned on the
// phone call being received.
// --------------------------------------------------------------------------

const char *BurglaryTarget = R"(
program Burglary() {
  earthquake: bool;
  burglary: bool;
  alarm: bool;
  phoneWorking: bool;
  maryWakes: bool;
  called: bool;
  earthquake ~ Bernoulli(0.1);
  burglary ~ Bernoulli(0.1);
  alarm = earthquake || burglary;
  if (earthquake) {
    phoneWorking ~ Bernoulli(0.7);
  } else {
    phoneWorking ~ Bernoulli(0.99);
  }
  if (alarm) {
    if (earthquake) {
      maryWakes ~ Bernoulli(0.8);
    } else {
      maryWakes ~ Bernoulli(0.6);
    }
  } else {
    maryWakes ~ Bernoulli(0.2);
  }
  called = maryWakes && phoneWorking;
  observe(called);
  return earthquake, burglary, alarm, phoneWorking, maryWakes, called;
}
)";

const char *BurglarySketch = R"(
program BurglarySketch() {
  earthquake: bool;
  burglary: bool;
  alarm: bool;
  phoneWorking: bool;
  maryWakes: bool;
  called: bool;
  earthquake = ??;
  burglary = ??;
  alarm = earthquake || burglary;
  if (earthquake) {
    phoneWorking = ??;
  } else {
    phoneWorking = ??;
  }
  if (alarm) {
    if (earthquake) {
      maryWakes = ??;
    } else {
      maryWakes = ??;
    }
  } else {
    maryWakes = ??;
  }
  called = maryWakes && phoneWorking;
  observe(called);
  return earthquake, burglary, alarm, phoneWorking, maryWakes, called;
}
)";

// --------------------------------------------------------------------------
// TrueSkill (Herbrich et al. [12]): the paper's running example
// (Figures 1 and 2).
// --------------------------------------------------------------------------

// The paper's dataset pairs game outcomes with skills (both tables in
// Figure 2 are data, and Figure 4's likelihood has a density factor
// for r at its observed value).  Game outcomes are therefore returned
// variables here; the Figure 7 experiment appends the observe
// conditioning (see bench/figure7_posteriors.cpp and DESIGN.md §3).
const char *TrueSkillTarget = R"(
program TrueSkill(nplayers: int, ngames: int, p1: int[], p2: int[]) {
  skills: real[nplayers];
  r: bool[ngames];
  perf1: real;
  perf2: real;
  for i in 0..nplayers {
    skills[i] ~ Gaussian(100.0, 10.0);
  }
  for g in 0..ngames {
    perf1 ~ Gaussian(skills[p1[g]], 15.0);
    perf2 ~ Gaussian(skills[p2[g]], 15.0);
    r[g] = perf1 > perf2;
  }
  return skills, r;
}
)";

const char *TrueSkillSketch = R"(
program TrueSkillSketch(nplayers: int, ngames: int, p1: int[], p2: int[]) {
  skills: real[nplayers];
  r: bool[ngames];
  for i in 0..nplayers {
    skills[i] = ??;
  }
  for g in 0..ngames {
    r[g] = ??(skills[p1[g]], skills[p2[g]]);
  }
  return skills, r;
}
)";

InputBindings trueSkillInputs() {
  InputBindings In;
  In.setInt("nplayers", 3);
  In.setInt("ngames", 3);
  In.setIntArray("p1", {0, 1, 0});
  In.setIntArray("p2", {1, 2, 2});
  return In;
}

// --------------------------------------------------------------------------
// Clinical (Infer.NET [23]): drug effectiveness from control/treated
// groups.
// --------------------------------------------------------------------------

const char *ClinicalTarget = R"(
program Clinical(ncontrol: int, ntreated: int) {
  isEffective: bool;
  probControl: real;
  probTreatedEff: real;
  probTreated: real;
  control: bool[ncontrol];
  treated: bool[ntreated];
  isEffective ~ Bernoulli(0.5);
  probControl ~ Beta(3.0, 5.0);
  probTreatedEff ~ Beta(6.0, 2.0);
  probTreated = ite(isEffective, probTreatedEff, probControl);
  for i in 0..ncontrol {
    control[i] ~ Bernoulli(probControl);
  }
  for i in 0..ntreated {
    treated[i] ~ Bernoulli(probTreated);
  }
  return isEffective, control, treated;
}
)";

const char *ClinicalSketch = R"(
program ClinicalSketch(ncontrol: int, ntreated: int) {
  isEffective: bool;
  probControl: real;
  probTreatedEff: real;
  probTreated: real;
  control: bool[ncontrol];
  treated: bool[ntreated];
  isEffective = ??;
  probControl = ??;
  probTreatedEff = ??;
  probTreated = ??(isEffective, probTreatedEff, probControl);
  for i in 0..ncontrol {
    control[i] = ??(probControl);
  }
  for i in 0..ntreated {
    treated[i] = ??(probTreated);
  }
  return isEffective, control, treated;
}
)";

InputBindings clinicalInputs() {
  InputBindings In;
  In.setInt("ncontrol", 6);
  In.setInt("ntreated", 6);
  return In;
}

// --------------------------------------------------------------------------
// Clickthrough 1 & 2 (Infer.NET [23]): cascade model of link
// examination.  Same generative model; the two rows of Table 1 differ
// in how much of it the sketch leaves open.
// --------------------------------------------------------------------------

const char *ClickthroughTarget = R"(
program Clickthrough(nlinks: int) {
  cont: real;
  examine: bool[nlinks];
  cont ~ Beta(4.0, 2.0);
  examine[0] = true;
  for j in 1..nlinks {
    examine[j] = examine[j - 1] && Bernoulli(cont);
  }
  return examine;
}
)";

const char *Clickthrough1Sketch = R"(
program Clickthrough1Sketch(nlinks: int) {
  cont: real;
  examine: bool[nlinks];
  cont = ??;
  examine[0] = ??;
  for j in 1..nlinks {
    examine[j] = ??(examine[j - 1], cont);
  }
  return examine;
}
)";

const char *Clickthrough2Sketch = R"(
program Clickthrough2Sketch(nlinks: int) {
  cont: real;
  examine: bool[nlinks];
  cont ~ Beta(4.0, 2.0);
  examine[0] = true;
  for j in 1..nlinks {
    examine[j] = ??(examine[j - 1], cont);
  }
  return examine;
}
)";

InputBindings clickthroughInputs() {
  InputBindings In;
  In.setInt("nlinks", 4);
  return In;
}

// --------------------------------------------------------------------------
// Clickthrough 3 & 4 (Infer.NET [23]): examination and click.  Again
// one model, two sketches of increasing openness.
// --------------------------------------------------------------------------

const char *ClickthroughClickTarget = R"(
program ClickthroughClick(nlinks: int) {
  appeal: real;
  relevance: real;
  examine: bool[nlinks];
  click: bool[nlinks];
  appeal ~ Beta(4.0, 2.0);
  relevance ~ Beta(3.0, 3.0);
  examine[0] = true;
  click[0] = Bernoulli(relevance);
  for j in 1..nlinks {
    examine[j] = examine[j - 1] && Bernoulli(appeal);
    click[j] = examine[j] && Bernoulli(relevance);
  }
  return examine, click;
}
)";

const char *Clickthrough3Sketch = R"(
program Clickthrough3Sketch(nlinks: int) {
  appeal: real;
  relevance: real;
  examine: bool[nlinks];
  click: bool[nlinks];
  appeal ~ Beta(4.0, 2.0);
  relevance ~ Beta(3.0, 3.0);
  examine[0] = true;
  click[0] = Bernoulli(relevance);
  for j in 1..nlinks {
    examine[j] = ??(examine[j - 1], appeal);
    click[j] = ??(examine[j], relevance);
  }
  return examine, click;
}
)";

const char *Clickthrough4Sketch = R"(
program Clickthrough4Sketch(nlinks: int) {
  appeal: real;
  relevance: real;
  examine: bool[nlinks];
  click: bool[nlinks];
  appeal = ??;
  relevance = ??;
  examine[0] = ??;
  click[0] = ??(relevance);
  for j in 1..nlinks {
    examine[j] = ??(examine[j - 1], appeal);
    click[j] = ??(examine[j], relevance);
  }
  return examine, click;
}
)";

// --------------------------------------------------------------------------
// Conference (Infer.NET [23]): accept/reject from paper quality seen
// through a noisy review.
// --------------------------------------------------------------------------

const char *ConferenceTarget = R"(
program Conference(npapers: int) {
  quality: real[npapers];
  review: real;
  accept: bool[npapers];
  for p in 0..npapers {
    quality[p] ~ Gaussian(0.0, 1.0);
    review ~ Gaussian(quality[p], 0.5);
    accept[p] = review > 0.8;
  }
  return quality, accept;
}
)";

const char *ConferenceSketch = R"(
program ConferenceSketch(npapers: int) {
  quality: real[npapers];
  review: real;
  accept: bool[npapers];
  for p in 0..npapers {
    quality[p] = ??;
    review = ??(quality[p]);
    accept[p] = ??(review);
  }
  return quality, accept;
}
)";

InputBindings conferenceInputs() {
  InputBindings In;
  In.setInt("npapers", 4);
  return In;
}

// --------------------------------------------------------------------------
// Grading (Bachrach et al. [1]): crowdsourced test grading from
// student ability and question difficulty.
// --------------------------------------------------------------------------

const char *GradingTarget = R"(
program Grading(nstudents: int, nquestions: int, nresponses: int,
                sid: int[], qid: int[]) {
  ability: real[nstudents];
  difficulty: real[nquestions];
  perf: real;
  correct: bool[nresponses];
  for s in 0..nstudents {
    ability[s] ~ Gaussian(0.0, 1.0);
  }
  for q in 0..nquestions {
    difficulty[q] ~ Gaussian(0.0, 1.0);
  }
  for r in 0..nresponses {
    perf ~ Gaussian(ability[sid[r]], 0.5);
    correct[r] = perf > difficulty[qid[r]];
  }
  return ability, difficulty, correct;
}
)";

const char *GradingSketch = R"(
program GradingSketch(nstudents: int, nquestions: int, nresponses: int,
                      sid: int[], qid: int[]) {
  ability: real[nstudents];
  difficulty: real[nquestions];
  perf: real;
  correct: bool[nresponses];
  for s in 0..nstudents {
    ability[s] = ??;
  }
  for q in 0..nquestions {
    difficulty[q] = ??;
  }
  for r in 0..nresponses {
    perf = ??(ability[sid[r]]);
    correct[r] = ??(perf, difficulty[qid[r]]);
  }
  return ability, difficulty, correct;
}
)";

InputBindings gradingInputs() {
  InputBindings In;
  In.setInt("nstudents", 3);
  In.setInt("nquestions", 3);
  In.setInt("nresponses", 9);
  In.setIntArray("sid", {0, 0, 0, 1, 1, 1, 2, 2, 2});
  In.setIntArray("qid", {0, 1, 2, 0, 1, 2, 0, 1, 2});
  return In;
}

// --------------------------------------------------------------------------
// Handedness (Infer.NET [23]): shared Beta-distributed probability of
// right-handedness.
// --------------------------------------------------------------------------

const char *HandednessTarget = R"(
program Handedness(npeople: int) {
  probRight: real;
  isRight: bool[npeople];
  probRight ~ Beta(9.0, 1.0);
  for i in 0..npeople {
    isRight[i] ~ Bernoulli(probRight);
  }
  return isRight;
}
)";

const char *HandednessSketch = R"(
program HandednessSketch(npeople: int) {
  probRight: real;
  isRight: bool[npeople];
  probRight = ??;
  for i in 0..npeople {
    isRight[i] = ??(probRight);
  }
  return isRight;
}
)";

InputBindings handednessInputs() {
  InputBindings In;
  In.setInt("npeople", 8);
  return In;
}

// --------------------------------------------------------------------------
// Gender Height (Infer.NET [23]): mixture of male/female heights.
// --------------------------------------------------------------------------

const char *GenderHeightTarget = R"(
program GenderHeight(npeople: int) {
  isMale: bool[npeople];
  height: real[npeople];
  for i in 0..npeople {
    isMale[i] ~ Bernoulli(0.5);
    height[i] = ite(isMale[i], Gaussian(177.0, 7.0), Gaussian(164.0, 6.5));
  }
  return isMale, height;
}
)";

const char *GenderHeightSketch = R"(
program GenderHeightSketch(npeople: int) {
  isMale: bool[npeople];
  height: real[npeople];
  for i in 0..npeople {
    isMale[i] = ??;
    height[i] = ??(isMale[i]);
  }
  return isMale, height;
}
)";

InputBindings genderHeightInputs() {
  InputBindings In;
  In.setInt("npeople", 2);
  return In;
}

// --------------------------------------------------------------------------
// MoG 1-3: two-component mixture of Gaussians with decreasing amounts
// of information about the latent component indicator (Section 5).
// --------------------------------------------------------------------------

const char *MoG1Target = R"(
program MoG1() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.3);
  x = ite(z, Gaussian(0.0, 1.0), Gaussian(10.0, 2.0));
  return z, x;
}
)";

const char *MoG1Sketch = R"(
program MoG1Sketch() {
  z: bool;
  x: real;
  z = ??;
  x = ??(z);
  return z, x;
}
)";

const char *MoG2Target = R"(
program MoG2() {
  x: real;
  x = ite(Bernoulli(0.3), Gaussian(0.0, 1.0), Gaussian(10.0, 2.0));
  return x;
}
)";

const char *MoG2Sketch = R"(
program MoG2Sketch() {
  x: real;
  x = ??;
  return x;
}
)";

const char *MoG3Target = R"(
program MoG3() {
  z: bool;
  x: real;
  z ~ Bernoulli(0.3);
  x = ite(z, Gaussian(0.0, 1.0), Gaussian(10.0, 2.0));
  return x;
}
)";

const char *MoG3Sketch = R"(
program MoG3Sketch() {
  z: bool;
  x: real;
  z = ??;
  x = ??(z);
  return x;
}
)";

// --------------------------------------------------------------------------
// RATS (Gelman et al. [4]): hierarchical linear growth of rat weights.
// --------------------------------------------------------------------------

const char *RatsTarget = R"(
program Rats(nrats: int, ndays: int, day: real[]) {
  alpha: real[nrats];
  slope: real[nrats];
  mu: real;
  weight: real[nrats * ndays];
  for r in 0..nrats {
    alpha[r] ~ Gaussian(240.0, 15.0);
    slope[r] ~ Gaussian(6.0, 0.8);
    for t in 0..ndays {
      mu = alpha[r] + slope[r] * day[t];
      weight[r * ndays + t] ~ Gaussian(mu, 6.0);
    }
  }
  return weight;
}
)";

const char *RatsSketch = R"(
program RatsSketch(nrats: int, ndays: int, day: real[]) {
  alpha: real[nrats];
  slope: real[nrats];
  mu: real;
  weight: real[nrats * ndays];
  for r in 0..nrats {
    alpha[r] = ??;
    slope[r] = ??;
    for t in 0..ndays {
      mu = ??(alpha[r], slope[r], day[t]);
      weight[r * ndays + t] = ??(mu);
    }
  }
  return weight;
}
)";

InputBindings ratsInputs() {
  InputBindings In;
  In.setInt("nrats", 3);
  In.setInt("ndays", 5);
  In.setArray("day", {8.0, 15.0, 22.0, 29.0, 36.0});
  return In;
}

// --------------------------------------------------------------------------
// Gaussian: a single Gaussian variable (Section 5's sanity model).
// --------------------------------------------------------------------------

const char *GaussianTarget = R"(
program GaussianModel() {
  x: real;
  x ~ Gaussian(100.0, 10.0);
  return x;
}
)";

const char *GaussianSketch = R"(
program GaussianSketch() {
  x: real;
  x = ??;
  return x;
}
)";

InputBindings noInputs() { return InputBindings(); }

SynthesisConfig synthConfig(unsigned Iterations, uint64_t Seed,
                            unsigned Chains, bool GrowShrink = false) {
  SynthesisConfig C;
  C.Iterations = Iterations;
  C.Seed = Seed;
  C.Chains = Chains;
  // The grow/shrink proposal extension pays off on mixture-shaped
  // posteriors (GenderHeight, MoG*) and only bloats candidates
  // elsewhere; see bench/ablation_design_choices.
  C.Mut.EnableGrowShrink = GrowShrink;
  return C;
}

std::vector<Benchmark> buildBenchmarks() {
  std::vector<Benchmark> B;
  B.push_back({"Burglary", BurglaryTarget, BurglarySketch, noInputs, 100,
               7001, synthConfig(4000, 101, 3),
               {89, -71.94, -71.37, 100}});
  B.push_back({"TrueSkill", TrueSkillTarget, TrueSkillSketch,
               trueSkillInputs, 400, 7002, synthConfig(8000, 102, 6),
               {114, -718.33, -697.68, 400}});
  B.push_back({"Clinical", ClinicalTarget, ClinicalSketch, clinicalInputs,
               100, 7003, synthConfig(5000, 103, 3),
               {149, -102.26, -98.09, 100}});
  B.push_back({"Clickthrough1", ClickthroughTarget, Clickthrough1Sketch,
               clickthroughInputs, 400, 7004, synthConfig(5000, 104, 3),
               {117, -102.75, -103.91, 400}});
  B.push_back({"Clickthrough2", ClickthroughTarget, Clickthrough2Sketch,
               clickthroughInputs, 400, 7005, synthConfig(3000, 105, 2),
               {37, -102.75, -102.34, 400}});
  B.push_back({"Clickthrough3", ClickthroughClickTarget, Clickthrough3Sketch,
               clickthroughInputs, 400, 7006, synthConfig(6000, 106, 3),
               {120, -263.73, -263.82, 400}});
  B.push_back({"Clickthrough4", ClickthroughClickTarget, Clickthrough4Sketch,
               clickthroughInputs, 400, 7007, synthConfig(8000, 107, 4),
               {312, -263.73, -263.12, 400}});
  B.push_back({"Conference", ConferenceTarget, ConferenceSketch,
               conferenceInputs, 400, 7008, synthConfig(10000, 108, 6),
               {113, -251.81, -195.33, 400}});
  B.push_back({"Grading", GradingTarget, GradingSketch, gradingInputs, 400,
               7009, synthConfig(10000, 109, 6),
               {353, -179.04, -181.82, 400}});
  B.push_back({"Handedness", HandednessTarget, HandednessSketch,
               handednessInputs, 100, 7010, synthConfig(4000, 110, 2),
               {145, -90.71, -90.32, 100}});
  B.push_back({"GenderHeight", GenderHeightTarget, GenderHeightSketch,
               genderHeightInputs, 100, 7011, synthConfig(10000, 111, 10, true),
               {451, -780.02, -727.88, 100}});
  B.push_back({"MoG1", MoG1Target, MoG1Sketch, noInputs, 100, 7012,
               synthConfig(12000, 112, 6, true),
               {113, -479.15, -472.59, 100}});
  B.push_back({"MoG2", MoG2Target, MoG2Sketch, noInputs, 100, 7013,
               synthConfig(10000, 113, 16, true),
               {7, -405.27, -411.19, 100}});
  B.push_back({"MoG3", MoG3Target, MoG3Sketch, noInputs, 100, 7014,
               synthConfig(12000, 114, 6, true),
               {2, -405.27, -405.43, 100}});
  SynthesisConfig RatsConfig = synthConfig(12000, 115, 6);
  // The growth model is linear in day; products are sound here
  // (Known-times-MoG scaling) and required to express slope * day.
  RatsConfig.Gen.ArithOps = {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul};
  B.push_back({"RATS", RatsTarget, RatsSketch, ratsInputs, 400, 7015,
               RatsConfig,
               {215, -1140.68, -1047.54, 400}});
  B.push_back({"Gaussian", GaussianTarget, GaussianSketch, noInputs, 400,
               7016, synthConfig(2500, 116, 2),
               {10, -1483.67, -1479.2, 400}});
  return B;
}

} // namespace

const std::vector<Benchmark> &psketch::allBenchmarks() {
  static const std::vector<Benchmark> Benchmarks = buildBenchmarks();
  return Benchmarks;
}

const Benchmark *psketch::findBenchmark(const std::string &Name) {
  for (const Benchmark &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
