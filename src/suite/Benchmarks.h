//===- suite/Benchmarks.h - The 16 paper benchmarks ----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 16 probabilistic-program benchmarks of Section 5, re-implemented
/// in the PSketch language from the paper's descriptions and citations
/// (Burglary [14], TrueSkill [12], Clinical/Clickthrough/Conference/
/// Handedness/GenderHeight [23], Grading [1], MoG variants, RATS [4],
/// Gaussian).  Each benchmark carries its target program, its sketch
/// (probabilistic computations replaced by holes, as the paper's
/// methodology prescribes), concrete input bindings, the dataset size
/// of Table 1, a synthesis configuration, and the paper's reported
/// numbers for shape comparison in EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUITE_BENCHMARKS_H
#define PSKETCH_SUITE_BENCHMARKS_H

#include "sem/Bindings.h"
#include "synth/Synthesizer.h"

#include <functional>
#include <string>
#include <vector>

namespace psketch {

/// Numbers the paper reports for one Table 1 row.
struct PaperRow {
  double TimeSec = 0;
  double TargetLL = 0;
  double SynthesizedLL = 0;
  unsigned DatasetSize = 0;
};

/// One benchmark of the evaluation.
struct Benchmark {
  std::string Name;
  std::string TargetSource;
  std::string SketchSource;
  std::function<InputBindings()> MakeInputs;
  unsigned DatasetSize = 100;
  uint64_t DataSeed = 7;
  SynthesisConfig Synth;
  PaperRow Paper;
};

/// All 16 benchmarks, in Table 1 order.
const std::vector<Benchmark> &allBenchmarks();

/// Lookup by name; null when unknown.
const Benchmark *findBenchmark(const std::string &Name);

} // namespace psketch

#endif // PSKETCH_SUITE_BENCHMARKS_H
