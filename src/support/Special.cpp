//===- support/Special.cpp - Special functions and log-space math --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Special.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace psketch;

double psketch::gaussianPdf(double X, double Mu, double Sigma) {
  return std::exp(gaussianLogPdf(X, Mu, Sigma));
}

double psketch::gaussianLogPdf(double X, double Mu, double Sigma) {
  if (!(Sigma > 0))
    return std::log(TinyProb);
  double Z = (X - Mu) / Sigma;
  return -0.5 * Z * Z - std::log(Sigma) - 0.5 * Log2Pi;
}

double psketch::gaussianCdf(double X, double Mu, double Sigma) {
  if (!(Sigma > 0))
    return X >= Mu ? 1.0 : 0.0;
  return 0.5 * std::erfc(-(X - Mu) / (Sigma * std::sqrt(2.0)));
}

double psketch::gaussianGreaterProb(double MuA, double SigmaA, double MuB,
                                    double SigmaB) {
  // A - B ~ Gaussian(MuA - MuB, sqrt(SigmaA^2 + SigmaB^2)); Pr(A > B)
  // is the upper tail at zero.
  double Var = SigmaA * SigmaA + SigmaB * SigmaB;
  if (!(Var > 0))
    return MuA > MuB ? 1.0 : (MuA < MuB ? 0.0 : 0.5);
  double Z = (MuA - MuB) / std::sqrt(2.0 * Var);
  return 0.5 * (1.0 + std::erf(Z));
}

double psketch::logAddExp(double A, double B) {
  if (A == -std::numeric_limits<double>::infinity())
    return B;
  if (B == -std::numeric_limits<double>::infinity())
    return A;
  double M = std::max(A, B);
  return M + std::log1p(std::exp(std::min(A, B) - M));
}

double psketch::logSumExp(const std::vector<double> &Values) {
  assert(!Values.empty() && "logSumExp of an empty set");
  double M = *std::max_element(Values.begin(), Values.end());
  if (M == -std::numeric_limits<double>::infinity())
    return M;
  double Sum = 0;
  for (double V : Values)
    Sum += std::exp(V - M);
  return M + std::log(Sum);
}

double psketch::clampProb(double P) {
  if (std::isnan(P))
    return TinyProb;
  return std::clamp(P, TinyProb, 1.0 - 1e-15);
}

double psketch::bernoulliLogPmf(bool Outcome, double P) {
  return std::log(Outcome ? clampProb(P) : clampProb(1.0 - P));
}

double psketch::mixtureLogPdf(double X, const std::vector<double> &W,
                              const std::vector<double> &Mu,
                              const std::vector<double> &Sigma) {
  assert(W.size() == Mu.size() && Mu.size() == Sigma.size() &&
         "mixture component arrays must agree in length");
  assert(!W.empty() && "mixture must have at least one component");
  std::vector<double> Terms;
  Terms.reserve(W.size());
  for (size_t I = 0, E = W.size(); I != E; ++I) {
    double LogW = W[I] > 0 ? std::log(W[I]) : std::log(TinyProb);
    Terms.push_back(LogW + gaussianLogPdf(X, Mu[I], Sigma[I]));
  }
  return logSumExp(Terms);
}

void psketch::betaMoments(double A, double B, double &Mean, double &Sd) {
  assert(A > 0 && B > 0 && "Beta parameters must be positive");
  Mean = A / (A + B);
  Sd = std::sqrt(A * B / ((A + B) * (A + B) * (A + B + 1.0)));
}

void psketch::gammaMoments(double Shape, double Scale, double &Mean,
                           double &Sd) {
  assert(Shape > 0 && Scale > 0 && "Gamma parameters must be positive");
  Mean = Shape * Scale;
  Sd = std::sqrt(Shape) * Scale;
}

void psketch::poissonMoments(double Lambda, double &Mean, double &Sd) {
  assert(Lambda >= 0 && "Poisson rate must be non-negative");
  Mean = Lambda;
  Sd = std::sqrt(Lambda);
}
