//===- support/Special.h - Special functions and log-space math ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numeric helpers shared by the symbolic likelihood algebra (Figure 6 of
/// the paper), the numeric-integration baseline and the samplers:
/// Gaussian pdf/cdf, the error function, log-sum-exp, and probability
/// clamping.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_SPECIAL_H
#define PSKETCH_SUPPORT_SPECIAL_H

#include <cstddef>
#include <vector>

namespace psketch {

/// Smallest probability the likelihood machinery will take a logarithm
/// of; keeps log-likelihoods finite so the MH ratio stays well defined.
inline constexpr double TinyProb = 1e-300;

/// log(2 * pi), used by Gaussian log densities.
inline constexpr double Log2Pi = 1.8378770664093454835606594728112;

/// Density of a univariate Gaussian at \p X.
double gaussianPdf(double X, double Mu, double Sigma);

/// Log-density of a univariate Gaussian at \p X.  Returns a very negative
/// (but finite) value for degenerate \p Sigma.
double gaussianLogPdf(double X, double Mu, double Sigma);

/// Cumulative distribution function of a univariate Gaussian.
double gaussianCdf(double X, double Mu, double Sigma);

/// Pr(A > B) for independent Gaussians A and B, via the error function;
/// this is the paper's rule for `MoG > MoG` applied to one component
/// pair.
double gaussianGreaterProb(double MuA, double SigmaA, double MuB,
                           double SigmaB);

/// Numerically stable log(exp(A) + exp(B)).
double logAddExp(double A, double B);

/// Numerically stable log of a sum of exponentials.
double logSumExp(const std::vector<double> &Values);

/// Clamps \p P into [TinyProb, 1 - TinyProb] so logs and MH ratios stay
/// finite.
double clampProb(double P);

/// Log of a Bernoulli likelihood: log(P) when \p Outcome, log(1-P)
/// otherwise, with clamping.
double bernoulliLogPmf(bool Outcome, double P);

/// Log-density of a mixture of Gaussians with component arrays \p W,
/// \p Mu, \p Sigma (all of the same length) at \p X.
double mixtureLogPdf(double X, const std::vector<double> &W,
                     const std::vector<double> &Mu,
                     const std::vector<double> &Sigma);

/// Mean and standard deviation of a Beta(A, B) distribution; the paper's
/// moment-matched MoG approximation of Beta (Figure 5).
void betaMoments(double A, double B, double &Mean, double &Sd);

/// Mean and standard deviation of a Gamma(Shape, Scale) distribution.
void gammaMoments(double Shape, double Scale, double &Mean, double &Sd);

/// Mean and standard deviation of a Poisson(Lambda) distribution.
void poissonMoments(double Lambda, double &Mean, double &Sd);

} // namespace psketch

#endif // PSKETCH_SUPPORT_SPECIAL_H
