//===- support/ThreadPool.h - Fixed-size worker pool ----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool (no OpenMP dependency) used to run
/// independent MH chains concurrently.  Jobs are opaque closures;
/// completion is observed with wait().  The pool makes no ordering or
/// affinity promises — callers that need determinism must make each
/// job independent (own RNG stream, own output slot) and merge results
/// in a fixed order after wait(), which is exactly what
/// Synthesizer::run does.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_THREADPOOL_H
#define PSKETCH_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psketch {

/// Fixed-size pool; threads are started in the constructor and joined
/// in the destructor.
class ThreadPool {
public:
  /// Starts \p Threads workers; 0 means hardware_concurrency (at least
  /// one worker either way).
  explicit ThreadPool(unsigned Threads);

  /// Drains pending jobs (waits for them) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Completion tracker for a subset of jobs: several clients can share
  /// one pool and each wait for only its own submissions (the
  /// row-parallel evaluators of concurrent chains share the run's row
  /// pool this way).  The group must outlive its jobs; waiting on it
  /// before destroying it guarantees that.
  class Group {
    friend class ThreadPool;
    size_t Outstanding = 0;
    std::condition_variable Done;
  };

  /// Enqueues \p Job for execution on some worker.
  void submit(std::function<void()> Job);

  /// Enqueues \p Job tracked under \p G (and under the pool-wide
  /// wait() as every job is).
  void submit(Group &G, std::function<void()> Job);

  /// Blocks until every submitted job has finished.
  void wait();

  /// Blocks until every job submitted under \p G has finished.
  void wait(Group &G);

  unsigned size() const { return unsigned(Workers.size()); }

  /// Resolves a thread-count knob: 0 means hardware_concurrency.
  static unsigned resolveThreadCount(unsigned Requested);

private:
  struct Item {
    std::function<void()> Fn;
    Group *G = nullptr;
  };

  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<Item> Jobs;
  std::mutex Mtx;
  std::condition_variable JobReady;  ///< Signals workers.
  std::condition_variable JobsDone;  ///< Signals wait().
  size_t Outstanding = 0; ///< Queued + running jobs.
  bool Stopping = false;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_THREADPOOL_H
