//===- support/ThreadPool.h - Fixed-size worker pool ----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool (no OpenMP dependency) used to run
/// independent MH chains concurrently.  Jobs are opaque closures;
/// completion is observed with wait().  The pool makes no ordering or
/// affinity promises — callers that need determinism must make each
/// job independent (own RNG stream, own output slot) and merge results
/// in a fixed order after wait(), which is exactly what
/// Synthesizer::run does.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_THREADPOOL_H
#define PSKETCH_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psketch {

/// Fixed-size pool; threads are started in the constructor and joined
/// in the destructor.
class ThreadPool {
public:
  /// Starts \p Threads workers; 0 means hardware_concurrency (at least
  /// one worker either way).  \p IdleSpinNs > 0 makes an idle worker
  /// busy-poll the queue for roughly that long before sleeping on the
  /// condition variable — worth it only for clients that submit
  /// microsecond-scale jobs in bursts (the speculation scheduler),
  /// where a sleep/wake round trip rivals the job itself.  The default
  /// parks workers immediately.
  explicit ThreadPool(unsigned Threads, uint64_t IdleSpinNs = 0);

  /// Drains pending jobs (waits for them) and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Completion tracker for a subset of jobs: several clients can share
  /// one pool and each wait for only its own submissions (the
  /// row-parallel evaluators of concurrent chains share the run's row
  /// pool this way, and so do the speculation schedulers of concurrent
  /// chains).  The group must outlive its jobs; waiting on it before
  /// destroying it guarantees that.  Groups nest freely: a job running
  /// under one group may submit and wait on another group, as long as
  /// the pool has enough workers that the inner jobs can be picked up
  /// while the outer job blocks.
  class Group {
    friend class ThreadPool;
    size_t Outstanding = 0;
    uint64_t Cancelled = 0;
    std::condition_variable Done;
  };

  /// Enqueues \p Job for execution on some worker.
  void submit(std::function<void()> Job);

  /// Enqueues \p Job tracked under \p G (and under the pool-wide
  /// wait() as every job is).
  void submit(Group &G, std::function<void()> Job);

  /// Blocks until every submitted job has finished.
  void wait();

  /// Blocks until every job submitted under \p G has finished.
  void wait(Group &G);

  /// Drops every job of \p G that is still queued and unstarted; jobs
  /// already running are unaffected (callers that need prompt
  /// cancellation of running work must cooperate through their own
  /// flags, which is what the speculation layer does).  Returns the
  /// number of jobs dropped.  wait(G) after cancel(G) blocks only on
  /// the jobs that had already started.
  size_t cancel(Group &G);

  /// Lifetime count of jobs cancel() dropped from \p G's queue.
  static uint64_t cancelled(const Group &G) { return G.Cancelled; }

  unsigned size() const { return unsigned(Workers.size()); }

  /// Resolves a thread-count knob: 0 means hardware_concurrency.
  static unsigned resolveThreadCount(unsigned Requested);

private:
  struct Item {
    std::function<void()> Fn;
    Group *G = nullptr;
  };

  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<Item> Jobs;
  std::mutex Mtx;
  std::condition_variable JobReady;  ///< Signals workers.
  std::condition_variable JobsDone;  ///< Signals wait().
  size_t Outstanding = 0; ///< Queued + running jobs.
  bool Stopping = false;
  uint64_t IdleSpinNs = 0; ///< Busy-poll budget before a worker parks.
  /// Lock-free mirror of Jobs.size(), so the idle spin can poll for
  /// work without touching Mtx.  Maintained under Mtx; read outside.
  std::atomic<size_t> QueueDepth{0};
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_THREADPOOL_H
