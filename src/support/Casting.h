//===- support/Casting.h - LLVM-style isa/cast/dyn_cast helpers ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal re-implementation of LLVM's kind-based casting templates.
///
/// A class opts in by providing a nested `classof(const Base *)` static
/// predicate (usually implemented by comparing a Kind enumerator).  The
/// templates below then provide checked downcasts without RTTI:
///
/// \code
///   if (const auto *BO = dyn_cast<BinaryExpr>(E))
///     ... use BO ...
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_CASTING_H
#define PSKETCH_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace psketch {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename From>
  requires(!std::is_pointer_v<From>)
bool isa(const From &Val) {
  return To::classof(&Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To &cast(const From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To &>(Val);
}

template <typename To, typename From> To &cast(From &Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To &>(Val);
}

/// Downcast that returns null when the dynamic type does not match.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// dyn_cast that tolerates null inputs.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace psketch

#endif // PSKETCH_SUPPORT_CASTING_H
