//===- support/Histogram.cpp - Fixed-bin histograms ----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <cassert>
#include <cmath>
#include <sstream>

using namespace psketch;

Histogram::Histogram(double Lo, double Hi, size_t Bins)
    : Lo(Lo), Hi(Hi), Counts(Bins, 0) {
  assert(Lo < Hi && "histogram range is empty");
  assert(Bins > 0 && "histogram needs at least one bin");
}

void Histogram::add(double X) {
  double T = (X - Lo) / (Hi - Lo) * double(Counts.size());
  long I = long(std::floor(T));
  if (I < 0)
    I = 0;
  if (I >= long(Counts.size()))
    I = long(Counts.size()) - 1;
  ++Counts[size_t(I)];
  ++Total;
  Sum += X;
  SumSq += X * X;
}

void Histogram::addAll(const std::vector<double> &Xs) {
  for (double X : Xs)
    add(X);
}

double Histogram::binCenter(size_t I) const {
  assert(I < Counts.size() && "bin index out of range");
  double Width = (Hi - Lo) / double(Counts.size());
  return Lo + (double(I) + 0.5) * Width;
}

size_t Histogram::count(size_t I) const {
  assert(I < Counts.size() && "bin index out of range");
  return Counts[I];
}

bool Histogram::merge(const Histogram &Other) {
  if (!sameBinning(Other))
    return false;
  for (size_t I = 0, E = Counts.size(); I != E; ++I)
    Counts[I] += Other.Counts[I];
  Total += Other.Total;
  Sum += Other.Sum;
  SumSq += Other.SumSq;
  return true;
}

double Histogram::density(size_t I) const {
  if (Total == 0)
    return 0.0;
  double Width = (Hi - Lo) / double(Counts.size());
  return mass(I) / Width;
}

double Histogram::mass(size_t I) const {
  assert(I < Counts.size() && "bin index out of range");
  return Total ? double(Counts[I]) / double(Total) : 0.0;
}

double Histogram::stddev() const {
  if (Total < 2)
    return 0.0;
  double Mean = Sum / double(Total);
  double Var = SumSq / double(Total) - Mean * Mean;
  return Var > 0 ? std::sqrt(Var) : 0.0;
}

double Histogram::l1Distance(const Histogram &A, const Histogram &B) {
  assert(A.bins() == B.bins() && A.lo() == B.lo() && A.hi() == B.hi() &&
         "histograms must share binning");
  double D = 0;
  for (size_t I = 0, E = A.bins(); I != E; ++I)
    D += std::abs(A.mass(I) - B.mass(I));
  return D;
}

std::string Histogram::series(const std::string &Label) const {
  std::ostringstream OS;
  for (size_t I = 0, E = bins(); I != E; ++I)
    OS << Label << ' ' << binCenter(I) << ' ' << density(I) << '\n';
  return OS.str();
}
