//===- support/Log.h - Severity-filtered structured logging ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library's diagnostic-output channel for humans: a global,
/// severity-filtered, mutex-serialized log used by the driver and the
/// synthesizer instead of ad-hoc stderr writes.  One line per message:
///
///   [info] synth: chain 2 finished (best LL -412.8)
///
/// Usage:
///
///   PSKETCH_LOG(Info, "synth", "chain " << C << " finished");
///
/// The stream expression is only evaluated when the severity passes
/// the global filter, so debug logging in hot paths costs one atomic
/// load when disabled.  The default level is Warn (quiet); tools that
/// take --progress raise it to Info.  Tests may redirect the sink with
/// setLogStream.
///
/// This is for operator-facing status, not for compiler-style
/// diagnostics — positioned errors still accumulate in DiagEngine.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_LOG_H
#define PSKETCH_SUPPORT_LOG_H

#include <atomic>
#include <iosfwd>
#include <sstream>
#include <string>

namespace psketch {

enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

const char *logLevelName(LogLevel L);

/// The global minimum severity; messages below it are discarded.
LogLevel logLevel();
void setLogLevel(LogLevel L);

/// True when a message at \p L would be emitted (one relaxed atomic
/// load — the disabled-path cost of PSKETCH_LOG).
bool logEnabled(LogLevel L);

/// Redirects the sink (default: std::cerr).  Returns the previous
/// stream so tests can restore it.  Not synchronized with in-flight
/// logMessage calls — redirect before spawning logging threads.
std::ostream *setLogStream(std::ostream *OS);

/// Emits "[level] component: message\n" — composed into one string and
/// written with a single stream insertion under a global mutex, so
/// lines from concurrent chains never interleave or tear mid-line even
/// on a unit-buffered sink.
void logMessage(LogLevel L, const char *Component,
                const std::string &Message);

} // namespace psketch

/// PSKETCH_LOG(Info, "synth", "chain " << C << " done"): severity is a
/// bare LogLevel enumerator name.
#define PSKETCH_LOG(Severity, Component, Stream)                             \
  do {                                                                       \
    if (::psketch::logEnabled(::psketch::LogLevel::Severity)) {              \
      std::ostringstream PsketchLogOS_;                                      \
      PsketchLogOS_ << Stream;                                               \
      ::psketch::logMessage(::psketch::LogLevel::Severity, Component,        \
                            PsketchLogOS_.str());                            \
    }                                                                        \
  } while (0)

#endif // PSKETCH_SUPPORT_LOG_H
