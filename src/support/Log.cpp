//===- support/Log.cpp - Severity-filtered structured logging -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <iostream>
#include <mutex>

using namespace psketch;

const char *psketch::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "unknown";
}

namespace {
std::atomic<int> MinLevel{int(LogLevel::Warn)};
std::ostream *Sink = &std::cerr;
std::mutex SinkMutex;
} // namespace

LogLevel psketch::logLevel() {
  return LogLevel(MinLevel.load(std::memory_order_relaxed));
}

void psketch::setLogLevel(LogLevel L) {
  MinLevel.store(int(L), std::memory_order_relaxed);
}

bool psketch::logEnabled(LogLevel L) {
  return int(L) >= MinLevel.load(std::memory_order_relaxed) &&
         L != LogLevel::Off;
}

std::ostream *psketch::setLogStream(std::ostream *OS) {
  std::lock_guard<std::mutex> Lock(SinkMutex);
  std::ostream *Prev = Sink;
  Sink = OS ? OS : &std::cerr;
  return Prev;
}

void psketch::logMessage(LogLevel L, const char *Component,
                         const std::string &Message) {
  std::lock_guard<std::mutex> Lock(SinkMutex);
  *Sink << '[' << logLevelName(L) << "] " << Component << ": " << Message
        << '\n';
  Sink->flush();
}
