//===- support/Log.cpp - Severity-filtered structured logging -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"

#include <iostream>
#include <mutex>

using namespace psketch;

const char *psketch::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "unknown";
}

namespace {
std::atomic<int> MinLevel{int(LogLevel::Warn)};
std::ostream *Sink = &std::cerr;
std::mutex SinkMutex;
} // namespace

LogLevel psketch::logLevel() {
  return LogLevel(MinLevel.load(std::memory_order_relaxed));
}

void psketch::setLogLevel(LogLevel L) {
  MinLevel.store(int(L), std::memory_order_relaxed);
}

bool psketch::logEnabled(LogLevel L) {
  return int(L) >= MinLevel.load(std::memory_order_relaxed) &&
         L != LogLevel::Off;
}

std::ostream *psketch::setLogStream(std::ostream *OS) {
  std::lock_guard<std::mutex> Lock(SinkMutex);
  std::ostream *Prev = Sink;
  Sink = OS ? OS : &std::cerr;
  return Prev;
}

void psketch::logMessage(LogLevel L, const char *Component,
                         const std::string &Message) {
  // Compose the whole line first and emit it with ONE stream insertion:
  // std::cerr is unit-buffered, so every `<<` is its own write(2), and
  // chained insertions from concurrent chains interleave mid-line on a
  // shared terminal even with the mutex held (the writes race against
  // anything else appending to the same fd).  One insertion per line
  // keeps `--progress` updates whole at any --threads/--row-threads.
  std::string Line;
  Line.reserve(Message.size() + 32);
  Line += '[';
  Line += logLevelName(L);
  Line += "] ";
  Line += Component;
  Line += ": ";
  Line += Message;
  Line += '\n';
  std::lock_guard<std::mutex> Lock(SinkMutex);
  *Sink << Line;
  Sink->flush();
}
