//===- support/Histogram.h - Fixed-bin histograms for posteriors ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-bin histogram used to summarize posterior samples (Figure 7 of
/// the paper) and to compare empirical distributions in tests.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_HISTOGRAM_H
#define PSKETCH_SUPPORT_HISTOGRAM_H

#include <cstddef>
#include <string>
#include <vector>

namespace psketch {

/// Histogram over [Lo, Hi) with \p Bins equal-width bins.  Samples
/// outside the range are clamped into the boundary bins so no mass is
/// silently dropped.
class Histogram {
public:
  Histogram(double Lo, double Hi, size_t Bins);

  void add(double X);
  void addAll(const std::vector<double> &Xs);

  size_t bins() const { return Counts.size(); }
  double lo() const { return Lo; }
  double hi() const { return Hi; }
  size_t total() const { return Total; }

  /// Center of bin \p I.
  double binCenter(size_t I) const;

  /// Raw sample count of bin \p I.
  size_t count(size_t I) const;

  /// True when \p Other shares this histogram's binning exactly.
  bool sameBinning(const Histogram &Other) const {
    return bins() == Other.bins() && Lo == Other.Lo && Hi == Other.Hi;
  }

  /// Accumulates \p Other's bins and moments into this histogram.
  /// Returns false (leaving this unchanged) when the binnings differ.
  /// Merging is commutative and associative, so sharded histograms
  /// merged in any fixed order agree bin for bin.
  bool merge(const Histogram &Other);

  /// Normalized density estimate for bin \p I (integrates to ~1).
  double density(size_t I) const;

  /// Fraction of samples in bin \p I.
  double mass(size_t I) const;

  /// Mean of the recorded samples.
  double mean() const { return Total ? Sum / double(Total) : 0.0; }

  /// Standard deviation of the recorded samples.
  double stddev() const;

  /// L1 distance between the bin-mass vectors of two histograms with the
  /// same binning; in [0, 2].
  static double l1Distance(const Histogram &A, const Histogram &B);

  /// Renders "center density" rows, one per bin, for plotting.
  std::string series(const std::string &Label) const;

private:
  double Lo, Hi;
  std::vector<size_t> Counts;
  size_t Total = 0;
  double Sum = 0;
  double SumSq = 0;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_HISTOGRAM_H
