//===- support/Diag.cpp - Source locations and diagnostics ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <sstream>

using namespace psketch;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  std::ostringstream OS;
  OS << Line << ':' << Col;
  return OS.str();
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": ";
  switch (Kind) {
  case DiagKind::Error:
    OS << "error: ";
    break;
  case DiagKind::Warning:
    OS << "warning: ";
    break;
  case DiagKind::Note:
    OS << "note: ";
    break;
  }
  OS << Message;
  return OS.str();
}

void DiagEngine::error(SourceLoc Loc, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  NumErrors.fetch_add(1, std::memory_order_relaxed);
}

void DiagEngine::warning(SourceLoc Loc, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagEngine::note(SourceLoc Loc, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string DiagEngine::str() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream OS;
  for (const Diagnostic &D : Diags)
    OS << D.str() << '\n';
  return OS.str();
}

void DiagEngine::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Diags.clear();
  NumErrors.store(0, std::memory_order_relaxed);
}
