//===- support/Diag.h - Source locations and diagnostics -----------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink shared by the lexer, parser and
/// semantic analysis.  Diagnostics accumulate in a DiagEngine; callers
/// inspect hasErrors() and render messages with DiagEngine::str().
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_DIAG_H
#define PSKETCH_SUPPORT_DIAG_H

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace psketch {

/// A 1-based line/column position in a source buffer.  Line 0 denotes an
/// unknown location (e.g. programmatically-built ASTs).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// A single positioned message.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while processing one source buffer.
///
/// Thread-awareness: recording (error/warning/note/clear) and the
/// str()/hasErrors()/errorCount() queries are safe to call from
/// concurrent MH chains — recording serializes on an internal mutex
/// and the error count is atomic.  diagnostics() returns a reference
/// into the live vector and therefore must only be called once all
/// writers have joined (the synthesizer inspects it after run()).
/// DiagEngine is intentionally non-copyable; pass it by reference.
class DiagEngine {
public:
  DiagEngine() = default;
  DiagEngine(const DiagEngine &) = delete;
  DiagEngine &operator=(const DiagEngine &) = delete;

  /// Records an error at \p Loc; message style follows the LLVM
  /// convention (lowercase first word, no trailing period).
  void error(SourceLoc Loc, std::string Message);

  /// Records a warning at \p Loc.
  void warning(SourceLoc Loc, std::string Message);

  /// Records a note at \p Loc.
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const {
    return NumErrors.load(std::memory_order_relaxed) != 0;
  }
  unsigned errorCount() const {
    return NumErrors.load(std::memory_order_relaxed);
  }

  /// Single-threaded inspection only (see class comment).
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

  /// Drops all recorded diagnostics.
  void clear();

private:
  mutable std::mutex M; ///< Guards Diags.
  std::vector<Diagnostic> Diags;
  std::atomic<unsigned> NumErrors{0};
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_DIAG_H
