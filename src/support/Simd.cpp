//===- support/Simd.cpp - SIMD capability detection and selection ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

using namespace psketch;

const char *psketch::simdLevelName(SimdLevel L) {
  switch (L) {
  case SimdLevel::Scalar:
    return "scalar";
  case SimdLevel::Sse2:
    return "sse2";
  case SimdLevel::Avx2:
    return "avx2";
  }
  return "scalar";
}

unsigned psketch::simdLaneWidth(SimdLevel L) {
  switch (L) {
  case SimdLevel::Scalar:
    return 1;
  case SimdLevel::Sse2:
    return 2;
  case SimdLevel::Avx2:
    return 4;
  }
  return 1;
}

SimdLevel psketch::detectCpuSimdLevel() {
#if defined(__x86_64__) || defined(_M_X64)
  // Static init runs the CPUID probe once per process.
  static const SimdLevel Detected = [] {
#if defined(__GNUC__) || defined(__clang__)
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return SimdLevel::Avx2;
#endif
    return SimdLevel::Sse2; // Baseline of the x86-64 ABI.
  }();
  return Detected;
#else
  return SimdLevel::Scalar;
#endif
}

namespace {

/// Programmatic cap; 3 = no cap (one past the highest level).
std::atomic<uint8_t> OverrideCap{3};

SimdLevel envSimdCap() {
  static const SimdLevel Cap = [] {
    const char *Env = std::getenv("PSKETCH_SIMD_LEVEL");
    if (!Env)
      return SimdLevel::Avx2;
    if (!std::strcmp(Env, "scalar") || !std::strcmp(Env, "off"))
      return SimdLevel::Scalar;
    if (!std::strcmp(Env, "sse2"))
      return SimdLevel::Sse2;
    return SimdLevel::Avx2; // "avx2" or unrecognized: no extra cap.
  }();
  return Cap;
}

} // namespace

SimdLevel psketch::activeSimdLevel() {
  SimdLevel L = detectCpuSimdLevel();
  if (envSimdCap() < L)
    L = envSimdCap();
  const uint8_t Cap = OverrideCap.load(std::memory_order_relaxed);
  if (Cap < uint8_t(L))
    L = SimdLevel(Cap);
  return L;
}

void psketch::setSimdLevelOverride(SimdLevel L) {
  OverrideCap.store(uint8_t(L), std::memory_order_relaxed);
}

void psketch::clearSimdLevelOverride() {
  OverrideCap.store(3, std::memory_order_relaxed);
}
