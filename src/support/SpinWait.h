//===- support/SpinWait.h - Bounded busy-wait primitives ------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded spin-before-sleep helpers for the latency-sensitive
/// hand-offs in the speculation layer (DESIGN.md §13).  A speculated
/// candidate's compile + score takes tens of microseconds — the same
/// order as one condition-variable sleep/wake round trip — so a thread
/// that parks the moment it has nothing to do pays the full wake
/// latency on every block.  Spinning briefly first converts those
/// wakes into loads on a line the producer is about to write, without
/// giving up the bounded-CPU guarantee: every spin here has a hard
/// time budget and falls back to the normal blocking path.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_SPINWAIT_H
#define PSKETCH_SUPPORT_SPINWAIT_H

#include <chrono>
#include <cstdint>
#include <thread>

namespace psketch {

/// Politeness hint inside a busy-wait loop: backs the core off so the
/// sibling hyperthread (often the producer) gets the execution ports.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// True when the host can actually run two threads at once.  On a
/// single-CPU host a spinning waiter steals the very cycles the thread
/// it waits on needs, so every spin here degrades to its blocking
/// fallback instead.
inline bool spinProfitable() {
  static const bool Multi = std::thread::hardware_concurrency() > 1;
  return Multi;
}

/// Spins until \p Pred() holds or roughly \p BudgetNs elapsed,
/// re-checking the clock only every few dozen iterations (a steady
/// clock read costs more than a pause).  Returns the final value of
/// \p Pred() — false means the budget ran out and the caller should
/// fall back to its blocking wait.  Checks \p Pred exactly once (no
/// spin) when the host is single-CPU.
template <typename PredT> bool spinBriefly(PredT &&Pred, uint64_t BudgetNs) {
  if (!spinProfitable())
    return Pred();
  const auto T0 = std::chrono::steady_clock::now();
  for (;;) {
    for (int I = 0; I != 64; ++I) {
      if (Pred())
        return true;
      cpuRelax();
    }
    const auto Elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - T0)
                             .count();
    if (Elapsed >= int64_t(BudgetNs))
      return Pred();
  }
}

} // namespace psketch

#endif // PSKETCH_SUPPORT_SPINWAIT_H
