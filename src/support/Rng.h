//===- support/Rng.h - Seeded random number generation --------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, explicitly-seeded random source with the samplers that
/// the PSketch language and the MCMC-SYN search need: uniform, Gaussian,
/// Bernoulli, Beta, Gamma, Poisson and Geometric draws.
///
/// All stochastic components of the library take an Rng by reference so
/// that every experiment is reproducible from a single 64-bit seed.
///
/// Besides the sequential engine, this header provides *counter-based
/// stream splitting* (splitMix64 / deriveStreamSeed / counterUniform):
/// a way to derive the seed of a sub-stream, or a single uniform draw,
/// as a pure function of (root seed, stream tag, counter).  Split
/// streams are what make speculative execution deterministic — the
/// randomness of MH iteration i is indexed by i itself, so any thread
/// can reproduce it without observing the draws of iterations < i
/// (DESIGN.md §13).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_RNG_H
#define PSKETCH_SUPPORT_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace psketch {

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation
/// (Steele, Lea & Flood 2014).  Every output bit depends on every
/// input bit, which is what keying RNG streams by small consecutive
/// counters needs.
uint64_t splitMix64(uint64_t X);

/// Seed of the sub-stream identified by (\p Seed, \p Stream,
/// \p Counter): a pure function of its inputs, suitable for seeding a
/// fresh engine.  Distinct (Stream, Counter) pairs yield independent-
/// looking streams under the same root seed; the same triple always
/// yields the same stream, no matter which thread derives it or in
/// which order.
uint64_t deriveStreamSeed(uint64_t Seed, uint64_t Stream, uint64_t Counter);

/// One uniform draw in [0, 1) derived directly from (\p Seed,
/// \p Stream, \p Counter) without any engine state: the 53-bit
/// mantissa construction over deriveStreamSeed's output.  Used for the
/// MH acceptance draw of iteration \p Counter so accept/reject can be
/// decided (or speculated) independently of how many draws the
/// proposal consumed.
double counterUniform(uint64_t Seed, uint64_t Stream, uint64_t Counter);

/// Deterministic pseudo-random source.  Wraps a Mersenne twister and
/// exposes the distribution draws used across the library.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0) : Engine(Seed) {}

  /// Re-seeds the generator; the subsequent stream is a pure function of
  /// \p Seed.
  void seed(uint64_t Seed) { Engine.seed(Seed); }

  /// Uniform draw in [0, 1).
  double uniform();

  /// Uniform draw in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Uniform integer in the inclusive range [Lo, Hi].
  int uniformInt(int Lo, int Hi);

  /// Uniform index in [0, N); \p N must be positive.
  size_t index(size_t N);

  /// Gaussian draw with mean \p Mu and standard deviation \p Sigma.
  double gaussian(double Mu, double Sigma);

  /// Bernoulli draw; returns true with probability \p P (clamped to
  /// [0, 1]).
  bool bernoulli(double P);

  /// Beta(\p A, \p B) draw via the two-Gamma construction.
  double beta(double A, double B);

  /// Gamma draw with shape \p Shape and scale \p Scale.
  double gamma(double Shape, double Scale);

  /// Poisson draw with rate \p Lambda.
  int poisson(double Lambda);

  /// Geometric draw counting the number of trials until the first
  /// success, i.e. the support is {1, 2, 3, ...}.
  int geometric(double P);

  /// Picks a uniformly random element of \p Items; the vector must be
  /// non-empty.
  template <typename T> const T &pick(const std::vector<T> &Items) {
    return Items[index(Items.size())];
  }

  /// Draws an index according to the (unnormalized, non-negative)
  /// weights in \p Weights; the total weight must be positive.
  size_t weightedIndex(const std::vector<double> &Weights);

  /// Access to the raw engine for std distribution interop.
  std::mt19937_64 &engine() { return Engine; }

private:
  std::mt19937_64 Engine;
};

} // namespace psketch

#endif // PSKETCH_SUPPORT_RNG_H
