//===- support/Simd.h - SIMD capability detection and selection -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime SIMD instruction-set detection for the tape interpreter's
/// vector kernels (likelihood/TapeKernels.h).  The level reported here
/// is the *CPU's* capability, clamped by an optional override; the
/// kernel dispatcher additionally clamps to what was compiled in
/// (PSKETCH_SIMD CMake option, per-ISA translation units).
///
/// Every kernel level computes lane-wise identical IEEE results (see
/// DESIGN.md §11), so the selection here affects throughput only —
/// never a single bit of any score.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_SUPPORT_SIMD_H
#define PSKETCH_SUPPORT_SIMD_H

#include <cstdint>

namespace psketch {

/// Kernel instruction-set tiers, ordered: a level implies all lower
/// ones.  Scalar is the portable fallback (plain loops the compiler
/// may still auto-vectorize for the baseline ISA).
enum class SimdLevel : uint8_t {
  Scalar = 0, ///< Portable kernels, one lane per step.
  Sse2 = 1,   ///< 2 x double (x86-64 baseline, explicit intrinsics).
  Avx2 = 2,   ///< 4 x double (+ FMA, used only by --ffast-tape).
};

/// Printable name of \p L ("scalar", "sse2", "avx2").
const char *simdLevelName(SimdLevel L);

/// Doubles per vector register at \p L (1, 2 or 4).
unsigned simdLaneWidth(SimdLevel L);

/// The highest level this CPU supports (cached CPUID probe; Avx2 also
/// requires FMA — every AVX2 CPU has it).  Scalar on non-x86-64 hosts.
SimdLevel detectCpuSimdLevel();

/// The level evaluation should use: the CPU's level, clamped by
/// setSimdLevelOverride() and by the PSKETCH_SIMD_LEVEL environment
/// variable ("scalar"/"off", "sse2", "avx2"; read once).  Overrides
/// only ever lower the level — the CPU capability is a hard ceiling.
SimdLevel activeSimdLevel();

/// Caps activeSimdLevel() at \p L (tests and benches exercising every
/// tier on one machine).  Takes effect for tapes compiled afterwards.
void setSimdLevelOverride(SimdLevel L);

/// Removes the setSimdLevelOverride() cap (the environment cap stays).
void clearSimdLevelOverride();

} // namespace psketch

#endif // PSKETCH_SUPPORT_SIMD_H
