//===- support/Rng.cpp - Seeded random number generation ------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace psketch;

uint64_t psketch::splitMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

uint64_t psketch::deriveStreamSeed(uint64_t Seed, uint64_t Stream,
                                   uint64_t Counter) {
  // Chained finalizers: each input is absorbed through a full
  // permutation, so (seed, stream, counter) triples that differ in any
  // one component land in unrelated parts of the output space.
  return splitMix64(splitMix64(splitMix64(Seed) ^ Stream) ^ Counter);
}

double psketch::counterUniform(uint64_t Seed, uint64_t Stream,
                               uint64_t Counter) {
  // Top 53 bits -> [0, 1) with the usual 2^-53 grid; one more mix so
  // the value is not the stream seed itself (which callers may also
  // use to seed an engine).
  uint64_t Bits = splitMix64(deriveStreamSeed(Seed, Stream, Counter));
  return double(Bits >> 11) * 0x1.0p-53;
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(Engine);
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "uniform() bounds out of order");
  return Lo + (Hi - Lo) * uniform();
}

int Rng::uniformInt(int Lo, int Hi) {
  assert(Lo <= Hi && "uniformInt() bounds out of order");
  return std::uniform_int_distribution<int>(Lo, Hi)(Engine);
}

size_t Rng::index(size_t N) {
  assert(N > 0 && "index() over an empty range");
  return std::uniform_int_distribution<size_t>(0, N - 1)(Engine);
}

double Rng::gaussian(double Mu, double Sigma) {
  assert(Sigma >= 0 && "negative standard deviation");
  return std::normal_distribution<double>(Mu, Sigma)(Engine);
}

bool Rng::bernoulli(double P) {
  P = std::clamp(P, 0.0, 1.0);
  return uniform() < P;
}

double Rng::beta(double A, double B) {
  assert(A > 0 && B > 0 && "Beta parameters must be positive");
  double X = gamma(A, 1.0);
  double Y = gamma(B, 1.0);
  double Sum = X + Y;
  // Both Gamma draws being zero has probability zero but can occur with
  // denormal underflow for tiny shapes; fall back to the mean.
  if (Sum <= 0)
    return A / (A + B);
  return X / Sum;
}

double Rng::gamma(double Shape, double Scale) {
  assert(Shape > 0 && Scale > 0 && "Gamma parameters must be positive");
  return std::gamma_distribution<double>(Shape, Scale)(Engine);
}

int Rng::poisson(double Lambda) {
  assert(Lambda >= 0 && "Poisson rate must be non-negative");
  if (Lambda == 0)
    return 0;
  return std::poisson_distribution<int>(Lambda)(Engine);
}

int Rng::geometric(double P) {
  P = std::clamp(P, 1e-12, 1.0);
  // std::geometric_distribution counts failures before the first success;
  // the paper's proposal wants the number of mutations >= 1.
  return std::geometric_distribution<int>(P)(Engine) + 1;
}

size_t Rng::weightedIndex(const std::vector<double> &Weights) {
  assert(!Weights.empty() && "weightedIndex() over an empty range");
  double Total = 0;
  for (double W : Weights) {
    assert(W >= 0 && "negative weight");
    Total += W;
  }
  assert(Total > 0 && "weightedIndex() requires positive total weight");
  double Target = uniform() * Total;
  double Acc = 0;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    Acc += Weights[I];
    if (Target < Acc)
      return I;
  }
  return Weights.size() - 1;
}
