//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/SpinWait.h"

using namespace psketch;

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads, uint64_t IdleSpinNs)
    : IdleSpinNs(IdleSpinNs) {
  unsigned Count = resolveThreadCount(Threads);
  Workers.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Jobs.push_back(Item{std::move(Job), nullptr});
    ++Outstanding;
    QueueDepth.store(Jobs.size(), std::memory_order_release);
  }
  JobReady.notify_one();
}

void ThreadPool::submit(Group &G, std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Jobs.push_back(Item{std::move(Job), &G});
    ++Outstanding;
    ++G.Outstanding;
    QueueDepth.store(Jobs.size(), std::memory_order_release);
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mtx);
  JobsDone.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::wait(Group &G) {
  std::unique_lock<std::mutex> Lock(Mtx);
  G.Done.wait(Lock, [&G] { return G.Outstanding == 0; });
}

size_t ThreadPool::cancel(Group &G) {
  std::unique_lock<std::mutex> Lock(Mtx);
  size_t Dropped = 0;
  for (auto It = Jobs.begin(); It != Jobs.end();) {
    if (It->G == &G) {
      It = Jobs.erase(It);
      ++Dropped;
    } else {
      ++It;
    }
  }
  if (Dropped) {
    G.Outstanding -= Dropped;
    G.Cancelled += Dropped;
    Outstanding -= Dropped;
    QueueDepth.store(Jobs.size(), std::memory_order_release);
    // Notify under the lock: waiters re-check their predicates under
    // the same mutex, so this cannot miss a wakeup.
    if (G.Outstanding == 0)
      G.Done.notify_all();
    if (Outstanding == 0)
      JobsDone.notify_all();
  }
  return Dropped;
}

void ThreadPool::workerLoop() {
  for (;;) {
    Item Job;
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      if (IdleSpinNs && Jobs.empty() && !Stopping) {
        // Busy-poll the queue mirror before parking: burst clients
        // resubmit within the budget far more often than not, and a
        // poll hit skips the sleep/wake round trip entirely.  The
        // predicate is re-checked under the lock either way, so a
        // stale read costs nothing but the fall-through to wait().
        Lock.unlock();
        spinBriefly(
            [this] { return QueueDepth.load(std::memory_order_acquire) != 0; },
            IdleSpinNs);
        Lock.lock();
      }
      JobReady.wait(Lock, [this] { return Stopping || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Stopping and drained.
      Job = std::move(Jobs.front());
      Jobs.pop_front();
      QueueDepth.store(Jobs.size(), std::memory_order_release);
    }
    Job.Fn();
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      if (Job.G && --Job.G->Outstanding == 0)
        Job.G->Done.notify_all();
      if (--Outstanding == 0)
        JobsDone.notify_all();
    }
  }
}
