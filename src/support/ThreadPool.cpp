//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace psketch;

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned Count = resolveThreadCount(Threads);
  Workers.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Jobs.push_back(std::move(Job));
    ++Outstanding;
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mtx);
  JobsDone.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      JobReady.wait(Lock, [this] { return Stopping || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Stopping and drained.
      Job = std::move(Jobs.front());
      Jobs.pop_front();
    }
    Job();
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      if (--Outstanding == 0)
        JobsDone.notify_all();
    }
  }
}
