//===- support/ThreadPool.cpp - Fixed-size worker pool --------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace psketch;

unsigned ThreadPool::resolveThreadCount(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW ? HW : 1;
}

ThreadPool::ThreadPool(unsigned Threads) {
  unsigned Count = resolveThreadCount(Threads);
  Workers.reserve(Count);
  for (unsigned I = 0; I != Count; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Stopping = true;
  }
  JobReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Jobs.push_back(Item{std::move(Job), nullptr});
    ++Outstanding;
  }
  JobReady.notify_one();
}

void ThreadPool::submit(Group &G, std::function<void()> Job) {
  {
    std::unique_lock<std::mutex> Lock(Mtx);
    Jobs.push_back(Item{std::move(Job), &G});
    ++Outstanding;
    ++G.Outstanding;
  }
  JobReady.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mtx);
  JobsDone.wait(Lock, [this] { return Outstanding == 0; });
}

void ThreadPool::wait(Group &G) {
  std::unique_lock<std::mutex> Lock(Mtx);
  G.Done.wait(Lock, [&G] { return G.Outstanding == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    Item Job;
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      JobReady.wait(Lock, [this] { return Stopping || !Jobs.empty(); });
      if (Jobs.empty())
        return; // Stopping and drained.
      Job = std::move(Jobs.front());
      Jobs.pop_front();
    }
    Job.Fn();
    {
      std::unique_lock<std::mutex> Lock(Mtx);
      if (Job.G && --Job.G->Outstanding == 0)
        Job.G->Done.notify_all();
      if (--Outstanding == 0)
        JobsDone.notify_all();
    }
  }
}
