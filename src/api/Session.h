//===- api/Session.h - Stable embedding facade for psketch runs -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable programmatic entry point for running synthesis: one
/// `Session` object carries a problem (sketch + dataset + input
/// bindings), grouped configuration (threading / budget / telemetry),
/// and produces one `Session::Outcome` per `run()` call.  The CLI's
/// synth-family commands and every benchmark drive synthesis through
/// this facade, so the CLI, the benches and embedders all get the same
/// semantics: the same validation diagnostics, the same checkpoint /
/// resume / cancellation behaviour (DESIGN.md §15), and the same
/// trace/metrics side outputs.
///
/// Setup calls are chainable and never throw; every failure (missing
/// file, parse error, bad checkpoint, invalid configuration) is
/// reported as a structured `SessionError` on the returned Outcome,
/// with a `ToolExit` mapping shared with the CLI.
///
///   Session S;
///   S.sketchFile("model.psk").dataFile("data.csv")
///    .iterations(4000).chains(2).seed(7);
///   S.threading().Threads = 4;
///   S.budget().DeadlineSeconds = 30;
///   S.budget().CheckpointPath = "run.ckpt";
///   Session::Outcome O = S.run();
///   if (!O.ok()) { ... O.Error.Message ... }
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_API_SESSION_H
#define PSKETCH_API_SESSION_H

#include "likelihood/Dataset.h"
#include "sem/Bindings.h"
#include "synth/Budget.h"
#include "synth/Synthesizer.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace psketch {

/// Process exit codes of the `psketch` tool, shared with embedders so
/// scripts can key off them stably.
enum class ToolExit : int {
  Success = 0,     ///< The command did what was asked.
  Failure = 1,     ///< Input or runtime failure (bad file, no result).
  Usage = 2,       ///< The invocation itself was malformed.
  Interrupted = 3, ///< Cooperative cancellation (SIGINT/SIGTERM/token);
                   ///< partial outputs were still written.
};

/// A structured failure from Session::run: what layer failed plus a
/// human-readable message.  `Kind::None` means success.
struct SessionError {
  enum class Kind : uint8_t {
    None,       ///< No error.
    Sketch,     ///< Sketch missing / unparsable / failed type check.
    Data,       ///< Dataset missing or malformed.
    Config,     ///< SynthesisConfig::validate reported a hard error.
    Checkpoint, ///< Resume snapshot unreadable, corrupt, or mismatched.
    Output,     ///< A requested side output could not be written.
    Synthesis,  ///< The run produced no valid completion.
  };
  Kind K = Kind::None;
  std::string Message;

  bool ok() const { return K == Kind::None; }
};

/// One synthesis problem plus its configuration; `run()` may be called
/// repeatedly (e.g. resume loops) and each call returns a fresh
/// Outcome.
class Session {
public:
  /// Worker-allocation knobs; all result-neutral (DESIGN.md §11, §13).
  struct ThreadingOptions {
    unsigned Threads = 1;        ///< Chain workers; 0 = all cores.
    unsigned RowThreads = 1;     ///< Intra-chain row workers.
    unsigned SpeculateDepth = 0; ///< MH lookahead depth; 0 = off.
  };

  /// Stopping budgets and run durability (DESIGN.md §15).
  struct BudgetOptions {
    double DeadlineSeconds = 0;     ///< Wall-clock cap; 0 = none.
    double MinProposalsPerSec = 0;  ///< Throughput floor; 0 = none.
    std::string CheckpointPath;     ///< Snapshot file; empty = off.
    unsigned CheckpointEvery = 0;   ///< Iterations between snapshots.
    unsigned CheckpointKeep = 2;    ///< Rotated snapshot files kept.
    std::string ResumePath;         ///< Snapshot to restart from.
    /// Route SIGINT/SIGTERM to cooperative cancellation for the
    /// duration of run() (the CLI turns this on).
    bool HandleSignals = false;
    /// Caller-owned cancellation token, polled at block boundaries.
    /// Optional; one is created internally when HandleSignals is set.
    std::shared_ptr<CancelToken> Cancel;
  };

  /// Side outputs; all result-neutral.
  struct TelemetryOptions {
    std::string TraceOut;   ///< JSONL MH trace path; empty = off.
    std::string MetricsOut; ///< Metrics JSON path; empty = off.
    bool Profile = false;   ///< Opcode/stage cost attribution.
    unsigned ProfileSampleEvery = 1;
  };

  /// Everything run() produced, failures included.
  struct Outcome {
    SessionError Error;              ///< Kind::None on success.
    std::vector<ConfigDiag> Warnings; ///< validate()'s soft findings.
    SynthesisResult Result;          ///< Partial on budget stops.
    RunManifest Manifest;            ///< Identity of the run.

    bool ok() const { return Error.ok(); }
    /// The CLI exit code this outcome maps to.
    ToolExit exit() const;
  };

  Session();
  ~Session();
  Session(Session &&) noexcept;
  Session &operator=(Session &&) noexcept;
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  // --- Problem setup (lazy: files are read inside run()) ---

  /// Use the sketch in \p Path (parsed + type checked inside run()).
  Session &sketchFile(std::string Path);
  /// Use \p Source as the sketch text; \p DisplayName appears in
  /// manifests and diagnostics.
  Session &sketchSource(std::string Source,
                        std::string DisplayName = "<source>");
  /// Use an already-parsed sketch; \p P must outlive the Session.
  Session &sketch(const Program &P, std::string DisplayName = "<program>");
  /// Read the dataset from \p Path (CSV, inside run()).
  Session &dataFile(std::string Path);
  /// Use an in-memory dataset; \p D must outlive the Session.
  Session &data(const Dataset &D);
  /// Program input bindings (`--int n=3`, ...).
  Session &inputs(InputBindings B);

  // --- Core walk knobs ---

  Session &iterations(unsigned N);
  Session &chains(unsigned N);
  Session &seed(uint64_t S);

  // --- Grouped knobs; each group owns its fields (their values are
  // --- copied into the SynthesisConfig when run() starts) ---

  ThreadingOptions &threading() { return Thr; }
  BudgetOptions &budget() { return Bud; }
  TelemetryOptions &telemetry() { return Tel; }

  /// The underlying configuration, for every knob without a group
  /// (iteration caps, likelihood escape hatches, progress callbacks,
  /// diagnostics switches).  Fields covered by the groups above are
  /// overwritten from the groups at run() time.
  SynthesisConfig &config() { return Cfg; }
  const SynthesisConfig &config() const { return Cfg; }

  /// Replaces the whole configuration, synchronizing the grouped
  /// threading/budget views from the matching fields of \p C — the
  /// one-call migration path for callers that already assemble a
  /// SynthesisConfig.
  Session &configure(const SynthesisConfig &C);

  /// Replaces the likelihood scorer (Figure 8 baseline mode); see
  /// Synthesizer::setScorer.
  Session &scorer(Synthesizer::Scorer S);

  /// Runs synthesis end to end: loads pending inputs, validates the
  /// configuration, restores the resume snapshot, installs signal
  /// handling when requested, runs the chains, and writes the
  /// requested side outputs (also after budget stops and
  /// cancellations — a stopped run's partial outputs are still
  /// valid).  Never throws.
  Outcome run();

private:
  bool loadInputs(Outcome &O);

  // Sketch: exactly one of Path / Source / borrowed pointer is the
  // origin; OwnedSketch holds the parse result for the first two.
  std::string SketchPath;
  std::string SketchSrc;
  bool HaveSketchSrc = false;
  std::string SketchName;
  std::unique_ptr<Program> OwnedSketch;
  const Program *SketchPtr = nullptr;

  std::string DataPath;
  std::optional<Dataset> OwnedData;
  const Dataset *DataPtr = nullptr;

  InputBindings Bindings;
  SynthesisConfig Cfg;
  ThreadingOptions Thr;
  BudgetOptions Bud;
  TelemetryOptions Tel;
  Synthesizer::Scorer CustomScorer;
};

} // namespace psketch

#endif // PSKETCH_API_SESSION_H
