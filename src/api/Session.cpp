//===- api/Session.cpp - Stable embedding facade for psketch runs ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "api/Session.h"

#include "likelihood/DatasetIO.h"
#include "obs/Trace.h"
#include "parse/Parser.h"
#include "sem/TypeCheck.h"
#include "synth/Checkpoint.h"

#include <fstream>
#include <sstream>

using namespace psketch;

ToolExit Session::Outcome::exit() const {
  if (Error.ok())
    return Result.interrupted() ? ToolExit::Interrupted : ToolExit::Success;
  if (Error.K == SessionError::Kind::Config)
    return ToolExit::Usage;
  // A cancelled run that found nothing is still an interruption — the
  // caller asked us to stop, we stopped; exit 3 tells them their
  // signal (not a failure) ended the run.
  if (Error.K == SessionError::Kind::Synthesis && Result.interrupted())
    return ToolExit::Interrupted;
  return ToolExit::Failure;
}

Session::Session() = default;
Session::~Session() = default;
Session::Session(Session &&) noexcept = default;
Session &Session::operator=(Session &&) noexcept = default;

Session &Session::sketchFile(std::string Path) {
  SketchPath = std::move(Path);
  SketchName = SketchPath;
  HaveSketchSrc = false;
  OwnedSketch.reset();
  SketchPtr = nullptr;
  return *this;
}

Session &Session::sketchSource(std::string Source, std::string DisplayName) {
  SketchSrc = std::move(Source);
  SketchName = std::move(DisplayName);
  HaveSketchSrc = true;
  SketchPath.clear();
  OwnedSketch.reset();
  SketchPtr = nullptr;
  return *this;
}

Session &Session::sketch(const Program &P, std::string DisplayName) {
  SketchPtr = &P;
  SketchName = std::move(DisplayName);
  HaveSketchSrc = false;
  SketchPath.clear();
  OwnedSketch.reset();
  return *this;
}

Session &Session::dataFile(std::string Path) {
  DataPath = std::move(Path);
  OwnedData.reset();
  DataPtr = nullptr;
  return *this;
}

Session &Session::data(const Dataset &D) {
  DataPtr = &D;
  DataPath.clear();
  OwnedData.reset();
  return *this;
}

Session &Session::inputs(InputBindings B) {
  Bindings = std::move(B);
  return *this;
}

Session &Session::iterations(unsigned N) {
  Cfg.Iterations = N;
  return *this;
}

Session &Session::chains(unsigned N) {
  Cfg.Chains = N;
  return *this;
}

Session &Session::seed(uint64_t S) {
  Cfg.Seed = S;
  return *this;
}

Session &Session::scorer(Synthesizer::Scorer S) {
  CustomScorer = std::move(S);
  return *this;
}

Session &Session::configure(const SynthesisConfig &C) {
  Cfg = C;
  Thr.Threads = C.Threads;
  Thr.RowThreads = C.RowThreads;
  Thr.SpeculateDepth = C.SpeculateDepth;
  Bud.DeadlineSeconds = C.Budget.DeadlineSeconds;
  Bud.MinProposalsPerSec = C.Budget.MinProposalsPerSec;
  Bud.CheckpointPath = C.CheckpointPath;
  Bud.CheckpointEvery = C.CheckpointEvery;
  Bud.CheckpointKeep = C.CheckpointKeep;
  Bud.Cancel = C.Cancel;
  return *this;
}

bool Session::loadInputs(Outcome &O) {
  if (!SketchPtr) {
    std::string Source;
    if (HaveSketchSrc) {
      Source = SketchSrc;
    } else if (!SketchPath.empty()) {
      std::ifstream In(SketchPath);
      if (!In) {
        O.Error = {SessionError::Kind::Sketch,
                   "cannot open '" + SketchPath + "'"};
        return false;
      }
      std::ostringstream Buffer;
      Buffer << In.rdbuf();
      Source = Buffer.str();
    } else {
      O.Error = {SessionError::Kind::Sketch,
                 "no sketch provided (sketchFile / sketchSource / sketch)"};
      return false;
    }
    DiagEngine Diags;
    auto P = parseProgramSource(Source, Diags);
    if (!P || !typeCheck(*P, Diags)) {
      O.Error = {SessionError::Kind::Sketch,
                 SketchName + ":\n" + Diags.str()};
      return false;
    }
    OwnedSketch = std::move(P);
    SketchPtr = OwnedSketch.get();
  }
  if (!DataPtr) {
    if (DataPath.empty()) {
      O.Error = {SessionError::Kind::Data,
                 "no dataset provided (dataFile / data)"};
      return false;
    }
    DiagEngine Diags;
    auto D = readDatasetCsvFile(DataPath, Diags);
    if (!D) {
      O.Error = {SessionError::Kind::Data, DataPath + ":\n" + Diags.str()};
      return false;
    }
    OwnedData = std::move(*D);
    DataPtr = &*OwnedData;
  }
  return true;
}

Session::Outcome Session::run() {
  Outcome O;
  if (!loadInputs(O))
    return O;

  // Grouped knobs own their SynthesisConfig fields.
  Cfg.Threads = Thr.Threads;
  Cfg.RowThreads = Thr.RowThreads;
  Cfg.SpeculateDepth = Thr.SpeculateDepth;
  Cfg.Budget.DeadlineSeconds = Bud.DeadlineSeconds;
  Cfg.Budget.MinProposalsPerSec = Bud.MinProposalsPerSec;
  Cfg.CheckpointPath = Bud.CheckpointPath;
  Cfg.CheckpointEvery = Bud.CheckpointEvery;
  Cfg.CheckpointKeep = Bud.CheckpointKeep;
  // Telemetry switches are additive: a path turns its collection on,
  // an embedder's direct config() switches stay honored.
  Cfg.CollectTrace = Cfg.CollectTrace || !Tel.TraceOut.empty();
  Cfg.Metrics = Cfg.Metrics || !Tel.MetricsOut.empty();
  Cfg.StageTimers = Cfg.StageTimers || Cfg.Metrics;
  Cfg.Diagnostics = Cfg.Diagnostics || Cfg.CollectTrace || Cfg.Metrics;
  Cfg.Profile = Cfg.Profile || Tel.Profile;
  Cfg.ProfileSampleEvery =
      std::max(Cfg.ProfileSampleEvery, Tel.ProfileSampleEvery);

  // Validation: warnings surface on the Outcome, errors refuse the run
  // before any work happens.
  for (ConfigDiag &D : Cfg.validate()) {
    if (D.Sev == ConfigDiag::Severity::Error) {
      O.Error = {SessionError::Kind::Config, D.Message};
      return O;
    }
    O.Warnings.push_back(std::move(D));
  }

  // Resume snapshot: loaded from ResumePath when given; a
  // Resume already set on config() directly is left in place.
  if (!Bud.ResumePath.empty()) {
    Cfg.Resume.reset();
    auto CP = std::make_shared<RunCheckpoint>();
    std::string Err;
    if (!readCheckpointFile(Bud.ResumePath, *CP, Err)) {
      O.Error = {SessionError::Kind::Checkpoint,
                 Bud.ResumePath + ": " + Err};
      return O;
    }
    Cfg.Resume = std::move(CP);
  }

  // Cancellation: the caller's token if provided, else a private one
  // when signal handling was requested.
  std::shared_ptr<CancelToken> Token = Bud.Cancel;
  if (!Token && Bud.HandleSignals)
    Token = std::make_shared<CancelToken>();
  Cfg.Cancel = Token;

  Synthesizer Synth(*SketchPtr, Bindings, *DataPtr, Cfg);
  if (!Synth.valid()) {
    O.Error = {SessionError::Kind::Sketch, Synth.diagnostics().str()};
    return O;
  }
  if (CustomScorer)
    Synth.setScorer(CustomScorer);
  O.Manifest = Synth.makeManifest(SketchName);

  {
    std::optional<SignalCancellationScope> Scope;
    if (Bud.HandleSignals && Token)
      Scope.emplace(Token);
    O.Result = Synth.run();
  }

  if (!O.Result.Error.empty()) {
    // run() refusals: configuration problems surfaced late (custom
    // scorer paths) or a resume snapshot that does not match this run.
    const bool IsConfig =
        O.Result.Error.rfind("invalid configuration", 0) == 0;
    O.Error = {IsConfig ? SessionError::Kind::Config
                        : SessionError::Kind::Checkpoint,
               O.Result.Error};
    return O;
  }

  // Side outputs are written unconditionally — a budget-stopped or
  // cancelled run's partial trace and metrics are valid outputs (and
  // the resumed run's trace concatenates onto them).
  if (!Tel.TraceOut.empty()) {
    std::ofstream Trace(Tel.TraceOut);
    if (!Trace) {
      O.Error = {SessionError::Kind::Output,
                 "cannot write '" + Tel.TraceOut + "'"};
    } else {
      writeJsonlTrace(Trace, O.Manifest, O.Result.TraceEvents);
    }
  }
  if (!Tel.MetricsOut.empty() && O.Result.Metrics) {
    std::ofstream Metrics(Tel.MetricsOut);
    if (!Metrics) {
      if (O.Error.ok())
        O.Error = {SessionError::Kind::Output,
                   "cannot write '" + Tel.MetricsOut + "'"};
    } else {
      Metrics << O.Result.Metrics->toJson() << "\n";
    }
  }
  if (O.Error.ok() && !O.Result.Succeeded)
    O.Error = {SessionError::Kind::Synthesis,
               "no valid completion found (try more --iterations or "
               "--chains)"};
  return O;
}
