//===- likelihood/TapeKernelsAvx2.cpp - AVX2-tier kernel TU ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
// Compiled with -mavx2 -mfma -ffp-contract=off, only on x86-64 builds
// with PSKETCH_SIMD on.  4 x double lanes; dispatched only on CPUs
// reporting both AVX2 and FMA (support/Simd.cpp).  Contraction stays
// off — -mfma merely makes the *explicit* vfmadd intrinsic available,
// which only FastTape mode uses, where `_mm256_fmadd_pd` and std::fma
// are both the correctly-rounded fused op and agree bit for bit.
//
//===----------------------------------------------------------------------===//

#include "likelihood/TapeKernelsImpl.h"

#include <immintrin.h>

namespace psketch {
namespace tapekernels {
namespace {

struct Avx2Traits {
  static constexpr size_t W = 4;
  static constexpr bool HasFma = true;
  using V = __m256d;
  static V load(const double *P) { return _mm256_loadu_pd(P); }
  static void store(double *P, V X) { _mm256_storeu_pd(P, X); }
  static V add(V A, V B) { return _mm256_add_pd(A, B); }
  static V sub(V A, V B) { return _mm256_sub_pd(A, B); }
  static V mul(V A, V B) { return _mm256_mul_pd(A, B); }
  static V div(V A, V B) { return _mm256_div_pd(A, B); }
  static V neg(V A) { return _mm256_xor_pd(A, _mm256_set1_pd(-0.0)); }
  static V abs(V A) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), A);
  }
  static V sqrt(V A) { return _mm256_sqrt_pd(A); }
  static V max(V A, V B) { return _mm256_max_pd(A, B); }
  static V min(V A, V B) { return _mm256_min_pd(A, B); }
  static V gt01(V A, V B) {
    return _mm256_and_pd(_mm256_cmp_pd(A, B, _CMP_GT_OQ),
                         _mm256_set1_pd(1.0));
  }
  static V eq01(V A, V B) {
    return _mm256_and_pd(_mm256_cmp_pd(A, B, _CMP_EQ_OQ),
                         _mm256_set1_pd(1.0));
  }
  static V fma(V A, V B, V C) { return _mm256_fmadd_pd(A, B, C); }
};

} // namespace

void applyVecOpAvx2(TapeOp Op, const double *A, const double *B,
                    const double *C, double *R, size_t N,
                    TapeKernelFlags Flags) {
  applyVecOpT<Avx2Traits>(Op, A, B, C, R, N, Flags);
}

} // namespace tapekernels
} // namespace psketch
