//===- likelihood/FactoredLikelihood.h - Per-term likelihood tapes --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The factored (slice-grouped) likelihood path (DESIGN.md §14): instead
/// of one monolithic per-row tape, one tape per *additive term* of the
/// per-row log-likelihood — the log-constraint term log(max(rho, tiny))
/// plus one log-density term per modeled observed column.  Terms are
/// grouped by hole footprint (likelihood is layering-agnostic: the
/// grouping arrives as a plain TermPartition, computed by the synth
/// layer from analysis/DependenceGraph.h), so a caller that caches
/// group values only re-evaluates the groups whose footprint a mutation
/// touched.
///
/// Bit-identity contract: each term root is built by the same factory
/// calls as the corresponding summand of the monolithic chain
/// (LLExecutor::runTerms), the simplifier is value-preserving per root,
/// and recombination re-adds the per-row term values in the exact chain
/// order before the same per-block Kahan + tree reduction (BlockSum.h) —
/// so the total equals the monolithic LikelihoodFunction total bit for
/// bit.  The synthesizer's `--no-slice-factoring` differential and
/// tests/likelihood/FactoredLikelihoodTest.cpp enforce this.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_FACTOREDLIKELIHOOD_H
#define PSKETCH_LIKELIHOOD_FACTOREDLIKELIHOOD_H

#include "likelihood/Likelihood.h"

#include <memory>
#include <optional>
#include <vector>

namespace psketch {

/// Assignment of likelihood terms to evaluation groups.  Term 0 is the
/// rho (log-constraint) term; terms 1..N the modeled observed columns
/// in LLExecutor's deterministic column-ascending order.  Group ids are
/// dense in [0, NumGroups).  Plain data so the likelihood layer does
/// not depend on the analysis layer that computes it.
struct TermPartition {
  std::vector<unsigned> GroupOfTerm;
  unsigned NumGroups = 0;

  bool valid() const {
    if (GroupOfTerm.empty() || NumGroups == 0)
      return false;
    for (unsigned G : GroupOfTerm)
      if (G >= NumGroups)
        return false;
    return true;
  }
};

/// A compiled per-program likelihood function split into per-term
/// tapes.  Produces the same per-row values and the same total as
/// LikelihoodFunction, term group by term group.
class FactoredLikelihoodFunction {
public:
  /// Compiles \p LP against \p Data like LikelihoodFunction::compile,
  /// but builds one tape per likelihood term of \p Part.  With
  /// \p NeedGroup (size NumGroups), only the terms of flagged groups
  /// are simplified and tape-compiled — callers serving the other
  /// groups from a value cache skip their compile cost entirely.
  /// Returns nullopt when the candidate is malformed or \p Part does
  /// not match the program's term count.
  static std::optional<FactoredLikelihoodFunction>
  compile(const LoweredProgram &LP, const Dataset &Data,
          AlgebraConfig Config, const std::vector<ExprPtr> *Completions,
          const LikelihoodOptions &Opts, CompileScratch *Scratch,
          const TermPartition &Part,
          const std::vector<char> *NeedGroup = nullptr);

  unsigned numTerms() const { return unsigned(Part.GroupOfTerm.size()); }
  unsigned numGroups() const { return Part.NumGroups; }

  /// Term indices of group \p G, ascending.
  const std::vector<unsigned> &groupTerms(unsigned G) const {
    return GroupTerms[G];
  }

  /// Evaluates every term of group \p G over all rows of \p Cols:
  /// Out[i] receives the per-row values of groupTerms(G)[i] (resized to
  /// the row count).  Uses the incremental evaluator when \p Cache is
  /// non-null and farms row blocks to \p Par like the monolithic path;
  /// per-row values are bit-identical either way.  The group's tapes
  /// must have been compiled (NeedGroup flagged or omitted).
  void evalGroupRows(unsigned G, const ColumnarDataset &Cols,
                     std::vector<std::vector<double>> &Out,
                     ColumnCache *Cache = nullptr,
                     RowEvalContext *Par = nullptr) const;

  /// Sum of compiled term-tape instruction counts (telemetry; covers
  /// only the groups compiled this call).
  size_t tapeSize() const;
  /// Live node count before simplification, summed over compiled terms.
  size_t rawTapeSize() const { return RawSize; }
  /// Fused superinstructions, summed over compiled terms.
  size_t numFused() const;

  /// Hands tape storage back to \p S for the next factored compile.
  void recycleStorage(CompileScratch &S);

private:
  FactoredLikelihoodFunction() = default;

  TermPartition Part;
  std::vector<std::vector<unsigned>> GroupTerms;
  /// One tape per term; null for terms of groups not flagged in
  /// NeedGroup.
  std::vector<std::shared_ptr<Tape>> TermTapes;
  size_t RawSize = 0;
  // Evaluation scratch (mutable: evaluation is const), reused across
  // groups; one instance is non-reentrant like LikelihoodFunction.
  mutable std::vector<double> BatchScratch;
  mutable IncrementalScratch IncScratch;
};

/// Recombines per-term row values into the dataset log-likelihood:
/// per row, chain-adds TermRows[0][r] + TermRows[1][r] + ... left to
/// right (the monolithic chain order — TermRows[0] must be the rho
/// term), then Kahan-sums 512-row blocks and tree-reduces the partials
/// exactly like LikelihoodFunction::logLikelihood.  \p BlockPartials is
/// caller-owned scratch.  Bit-identical to the monolithic total.
double factoredLogLikelihood(
    const std::vector<const std::vector<double> *> &TermRows, size_t Rows,
    std::vector<double> &BlockPartials);

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_FACTOREDLIKELIHOOD_H
