//===- likelihood/LLOperator.h - The LL(.) symbolic executor (Fig. 5) ----===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Symbolically executes a lowered program with the LL(S, nu, rho)
/// operator of Figure 5: every slot maps to a SymValue (nu), and observe
/// statements multiply into a constraint product (rho).  References to
/// *observed* slots (dataset columns) evaluate to their data values —
/// symbolically, DataRef nodes — exactly as Figure 4 keeps `skill[0]`
/// symbolic inside perf1's mean; latent slots evaluate to their
/// accumulated MoG/Bernoulli densities and are marginalized by the
/// Figure 6 rules.
///
/// Conditionals execute both branches and merge with envmerge:
/// nu'(v) = ite(cond, nu1(v), nu2(v)) and
/// rho' = rho * (p * rho1 + (1-p) * rho2).
///
/// The final per-row log-likelihood is
///     log rho  +  sum over observed slots s of log density_nu(s)(D[s]),
/// which the facade (Likelihood.h) compiles to a Tape.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_LLOPERATOR_H
#define PSKETCH_LIKELIHOOD_LLOPERATOR_H

#include "likelihood/Dataset.h"
#include "sem/Lower.h"
#include "symbolic/Algebra.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace psketch {

/// Runs LL(.) over a lowered program.  One instance per candidate
/// program; the builder inside \p Algebra accumulates the symbolic
/// nodes.
class LLExecutor {
public:
  /// \p Observed maps slot names to dataset column ids for every slot
  /// observed in the data.
  LLExecutor(MoGAlgebra &Algebra,
             const std::unordered_map<std::string, unsigned> &Observed);

  /// Executes \p LP; returns the per-row log-likelihood root, or
  /// nullopt when the program is irrecoverably malformed (e.g. reads a
  /// slot that was never written).
  std::optional<NumId> run(const LoweredProgram &LP);

  /// The per-row log-likelihood split into its top-level additive
  /// terms, in the exact order run() chains them: Rho is the
  /// log-constraint term `log(max(rho, tiny))`, Terms[i] the log-density
  /// term of the i-th modeled observed column (column-ascending; a
  /// `log(tiny)` constant when the program never generates that
  /// output).  Each root is built by the same factory calls as the
  /// corresponding summand inside run()'s chain, so re-adding the term
  /// values left to right — Rho first — reproduces run()'s per-row
  /// value bit for bit (DESIGN.md §14).
  struct TermRoots {
    NumId Rho = 0;
    std::vector<NumId> Terms;
  };

  /// Like run(), but returns the un-chained terms for the factored
  /// likelihood path.  Same nullopt conditions as run().
  std::optional<TermRoots> runTerms(const LoweredProgram &LP);

  /// Pre-resolved observed-slot tables (see CompileScratch): \p SlotCol
  /// maps slot id to dataset column (~0u = latent), \p Order lists the
  /// modeled observed slots as (column, slot id) column-ascending.
  /// Both must describe exactly the Observed map this executor was
  /// built with; when set, variable references and the final
  /// density-sum loop skip the per-name string hashing.  Purely a
  /// lookup-cost shortcut — the node sequence built is identical.
  void setResolvedObserved(const std::vector<unsigned> *SlotCol,
                           const std::vector<std::pair<unsigned, unsigned>>
                               *Order) {
    ObservedBySlot = SlotCol;
    ObservedOrder = Order;
  }

  /// Completion tuple for template execution: when set, hole
  /// expressions in \p LP evaluate to their completion with each hole
  /// formal `%i` re-evaluated from the hole site's (lowered) argument
  /// at every occurrence — the exact semantics of textual splicing, so
  /// a template run builds the same node sequence (and therefore the
  /// same tape, bit for bit) as running the spliced program.
  void setCompletions(const std::vector<ExprPtr> *C) { Completions = C; }

  /// After run(): the final symbolic value of \p Slot, for tests and
  /// the worked-example printer.
  const SymValue *finalValue(const std::string &Slot) const;

  /// After run(): the final symbolic constraint product (rho).
  NumId constraintProduct() const { return Rho; }

private:
  /// Per-slot environment nu.
  using Env = std::vector<std::optional<SymValue>>;

  /// Executes statements into \p E, multiplying observe factors into
  /// \p LocalRho (linear space, starts at 1 for each context).
  bool execStmts(const std::vector<StmtPtr> &Stmts, Env &E,
                 NumId &LocalRho);

  SymValue evalExpr(const Expr &Ex, const Env &E);

  MoGAlgebra &Algebra;
  NumExprBuilder &B;
  const std::unordered_map<std::string, unsigned> &Observed;
  /// Optional pre-resolved views of Observed (setResolvedObserved).
  const std::vector<unsigned> *ObservedBySlot = nullptr;
  const std::vector<std::pair<unsigned, unsigned>> *ObservedOrder = nullptr;
  const LoweredProgram *LP = nullptr;
  Env Final;
  NumId Rho = 0;
  bool Malformed = false;
  /// Per-hole completion bodies for template execution (unowned).
  const std::vector<ExprPtr> *Completions = nullptr;
  /// Arguments of the hole currently being completed; hole formals
  /// `%i` re-evaluate CurHoleArgs[i].  Saved/restored around nested
  /// hole evaluation.
  const std::vector<ExprPtr> *CurHoleArgs = nullptr;
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_LLOPERATOR_H
