//===- likelihood/DatasetIO.h - CSV import/export for datasets ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV serialization of datasets so users can bring observations from
/// outside the library (the `psketch` command-line driver) and export
/// generated data.  Format: one header line naming the observed slots
/// (e.g. `skills[0],skills[1],r[0]`), then one numeric row per line;
/// booleans are 0/1.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_DATASETIO_H
#define PSKETCH_LIKELIHOOD_DATASETIO_H

#include "likelihood/Dataset.h"
#include "support/Diag.h"

#include <iosfwd>
#include <optional>
#include <string>

namespace psketch {

/// Parses CSV text into a dataset; reports malformed headers/rows to
/// \p Diags and returns nullopt.
std::optional<Dataset> readDatasetCsv(std::istream &In, DiagEngine &Diags);

/// Reads a CSV file; nullopt when the file cannot be opened or parsed.
std::optional<Dataset> readDatasetCsvFile(const std::string &Path,
                                          DiagEngine &Diags);

/// Writes CSV (header + rows).
void writeDatasetCsv(std::ostream &Out, const Dataset &Data);

/// Writes a CSV file; false when the file cannot be created.
bool writeDatasetCsvFile(const std::string &Path, const Dataset &Data);

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_DATASETIO_H
