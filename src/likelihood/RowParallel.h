//===- likelihood/RowParallel.h - Deterministic row-block parallelism -----===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intra-chain row parallelism for large datasets (DESIGN.md §11): one
/// RowEvalContext per chain farms the fixed 512-row blocks of a
/// likelihood evaluation to a shared ThreadPool, waiting on its own
/// ThreadPool::Group so concurrent chains can share one row pool.
///
/// Determinism by construction: each block's Kahan partial sum depends
/// only on that block's rows (blocks never share an accumulator), the
/// partials land in a block-indexed array, and the caller combines
/// them with a fixed-shape tree reduction (Likelihood.cpp).  The final
/// double is therefore bit-identical for every `--row-threads` value
/// and every block→worker assignment — the schedule decides only *who*
/// computes each partial, never *what* is computed or summed in which
/// order.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_ROWPARALLEL_H
#define PSKETCH_LIKELIHOOD_ROWPARALLEL_H

#include "likelihood/Tape.h"
#include "likelihood/TapeKernels.h"
#include "obs/Profiler.h"
#include "support/ThreadPool.h"

#include <cstddef>
#include <functional>
#include <vector>

namespace psketch {

/// Per-chain handle on the run's shared row-worker pool.  Owns one
/// scratch slot per concurrent task, so block evaluations never share
/// mutable state; reused across the chain's thousands of scoring calls
/// to keep the slots' buffer capacity warm.
class RowEvalContext {
public:
  /// \p Pool is the run-wide row pool (shared by all chains); \p
  /// Workers is how many tasks one evaluation fans out to — the run's
  /// `--row-threads` (more would only add scheduling overhead, fewer
  /// would idle workers).
  RowEvalContext(ThreadPool &Pool, unsigned Workers);

  unsigned workers() const { return NumWorkers; }

  /// Caller-owned buffers of one row-block task; handed to every
  /// invocation of the block function so evaluation allocates nothing
  /// after warm-up.
  struct WorkerSlot {
    std::vector<double> BatchScratch;
    std::vector<double> Out;
    IncrementalScratch Inc;
  };

  /// Runs \p Fn(Block, Slot) for every block in [0, NumBlocks):
  /// contiguous block ranges are submitted as workers() tasks and
  /// waited for.  \p Fn must write only block-indexed state (its
  /// partial-sum slot) and its WorkerSlot.  SIMD row tallies
  /// accumulated on the workers are drained per task and credited back
  /// to the calling thread, so per-chain telemetry stays exact.
  void forEachBlock(size_t NumBlocks,
                    const std::function<void(size_t, WorkerSlot &)> &Fn);

  /// `--profile` with row workers: gives each task slot its own
  /// TapeProfile sink (installed thread-locally for the task's
  /// duration, like the SIMD row tally) and merges the slots into the
  /// calling chain's sink after every fan-out, so per-chain
  /// attribution stays exact and merge order is slot order —
  /// deterministic regardless of which pool thread ran which task.
  void enableProfiling(unsigned SampleEvery);

private:
  ThreadPool &Pool;
  unsigned NumWorkers;
  std::vector<WorkerSlot> Slots;
  std::vector<SimdRowTally> Tallies; ///< One per slot, drained per call.
  std::vector<TapeProfile> Profiles; ///< One per slot when profiling.
  bool Profiling = false;
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_ROWPARALLEL_H
