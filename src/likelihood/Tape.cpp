//===- likelihood/Tape.cpp - Flat evaluation tape for NumExpr DAGs --------===//
//
// Part of the PSketch project, under the MIT License.
//
// NOTE: this file is compiled with -ffp-contract=off (see
// src/likelihood/CMakeLists.txt).  Fused superinstructions promise the
// exact two-rounding IEEE sequence of the pair they replaced; letting
// the compiler contract `a*b + c` into a single-rounding FMA would
// silently break the bitwise differential guarantee.  FastTape mode
// requests the contraction explicitly via std::fma.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Tape.h"

#include "likelihood/TapeKernels.h"
#include "obs/Profiler.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstring>

using namespace psketch;

// TapeOp mirrors NumOp over the shared prefix so the compiler can
// translate by re-tagging.
static_assert(uint8_t(TapeOp::Const) == uint8_t(NumOp::Const));
static_assert(uint8_t(TapeOp::DataRef) == uint8_t(NumOp::DataRef));
static_assert(uint8_t(TapeOp::Add) == uint8_t(NumOp::Add));
static_assert(uint8_t(TapeOp::Neg) == uint8_t(NumOp::Neg));
static_assert(uint8_t(TapeOp::Eq) == uint8_t(NumOp::Eq));

const char *psketch::tapeOpName(TapeOp Op) {
  switch (Op) {
  case TapeOp::MulAdd:
    return "mul+add";
  case TapeOp::MulSub:
    return "mul+sub";
  case TapeOp::SubMul:
    return "sub+mul";
  case TapeOp::SubDiv:
    return "sub+div";
  case TapeOp::MulMul:
    return "mul+mul";
  case TapeOp::AddAdd:
    return "add+add";
  case TapeOp::AddMul:
    return "add+mul";
  default:
    return numOpName(NumOp(uint8_t(Op)));
  }
}

const char *psketch::profiledTapeOpName(unsigned Idx) {
  if (Idx < NumTapeOps)
    return tapeOpName(TapeOp(Idx));
  if (Idx == TapeSumOpIndex)
    return "sum";
  return nullptr;
}

namespace {

/// Local alias: the scalar semantics and arity tables moved to
/// TapeKernels.h so every kernel tier shares the one definition.
inline unsigned arity(TapeOp Op) { return tapeOpArity(Op); }

/// The superinstruction peephole (DESIGN.md §9): absorbs a single-use
/// row-varying producer into its (necessarily row-varying) consumer.
/// Every fused form evaluates the identical two-rounding IEEE sequence;
/// the only reorderings used are the value-exact commutations of Add
/// and Mul when the producer sits on the consumer's right.  Invariant
/// instructions are never fused — they are hoisted out of the row loop
/// anyway, so fusing them would only obscure the hoist.
void fuseTape(std::vector<TapeIns> &Code, std::vector<SubtreeKey> &Keys,
              std::vector<uint8_t> &RowInvariant, size_t &NumFused) {
  const size_t E = Code.size();
  if (E < 2)
    return;
  // All pass-local storage is thread-local (chains run on separate
  // threads): template scoring fuses one tape per candidate, and the
  // capacities stay warm across those thousands of same-shaped tapes.
  static thread_local std::vector<uint32_t> Uses;
  Uses.assign(E, 0);
  for (const TapeIns &Ins : Code) {
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1)
      ++Uses[Ins.A];
    if (Ar >= 2)
      ++Uses[Ins.B];
  }

  static thread_local std::vector<uint8_t> Absorbed;
  Absorbed.assign(E, 0);
  for (size_t I = 0; I != E; ++I) {
    TapeIns &Ins = Code[I];
    if (RowInvariant[I])
      continue;
    // A producer is fusable into this consumer when this is its only
    // use (no duplicated evaluation), it varies per row, and it still
    // is the plain op (not already a fused instruction itself).
    auto Fusable = [&](uint32_t P, TapeOp Want) {
      return !RowInvariant[P] && Code[P].Op == Want && Uses[P] == 1 &&
             !Absorbed[P];
    };
    auto Fuse = [&](TapeOp NewOp, uint32_t P, uint32_t Other) {
      Absorbed[P] = 1;
      Ins.Op = NewOp;
      Ins.A = Code[P].A;
      Ins.B = Code[P].B;
      Ins.C = Other;
      Ins.Value = 0;
      ++NumFused;
    };
    switch (Ins.Op) {
    case TapeOp::Add:
      if (Fusable(Ins.A, TapeOp::Mul))
        Fuse(TapeOp::MulAdd, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Mul))
        Fuse(TapeOp::MulAdd, Ins.B, Ins.A); // x + (a*b): Add commutes.
      else if (Fusable(Ins.A, TapeOp::Add))
        Fuse(TapeOp::AddAdd, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Add))
        Fuse(TapeOp::AddAdd, Ins.B, Ins.A);
      break;
    case TapeOp::Sub:
      // Only the left side: x - (a*b) has no exact fused form here.
      if (Fusable(Ins.A, TapeOp::Mul))
        Fuse(TapeOp::MulSub, Ins.A, Ins.B);
      break;
    case TapeOp::Mul:
      if (Fusable(Ins.A, TapeOp::Sub))
        Fuse(TapeOp::SubMul, Ins.A, Ins.B); // Gaussian quad: (x-mu)*c.
      else if (Fusable(Ins.B, TapeOp::Sub))
        Fuse(TapeOp::SubMul, Ins.B, Ins.A); // Mul commutes.
      else if (Fusable(Ins.A, TapeOp::Mul))
        Fuse(TapeOp::MulMul, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Mul))
        Fuse(TapeOp::MulMul, Ins.B, Ins.A);
      else if (Fusable(Ins.A, TapeOp::Add))
        Fuse(TapeOp::AddMul, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Add))
        Fuse(TapeOp::AddMul, Ins.B, Ins.A);
      break;
    case TapeOp::Div:
      if (Fusable(Ins.A, TapeOp::Sub))
        Fuse(TapeOp::SubDiv, Ins.A, Ins.B); // Gaussian z = (x-mu)/sigma.
      break;
    default:
      break;
    }
  }
  if (!NumFused)
    return;

  // Compact absorbed producers out of the tape.  The fused consumer
  // keeps its own structural key — it computes that node's value — so
  // column-cache identities are unaffected by fusion.  The swap at the
  // end parks the replaced vectors' capacity in the thread-locals for
  // the next candidate.
  static thread_local std::vector<uint32_t> NewIdx;
  NewIdx.assign(E, 0);
  static thread_local std::vector<TapeIns> NewCode;
  static thread_local std::vector<SubtreeKey> NewKeys;
  static thread_local std::vector<uint8_t> NewInv;
  NewCode.clear();
  NewKeys.clear();
  NewInv.clear();
  NewCode.reserve(E);
  NewKeys.reserve(E);
  NewInv.reserve(E);
  for (size_t I = 0; I != E; ++I) {
    if (Absorbed[I])
      continue;
    TapeIns Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1)
      Ins.A = NewIdx[Ins.A];
    if (Ar >= 2)
      Ins.B = NewIdx[Ins.B];
    if (Ar >= 3)
      Ins.C = NewIdx[Ins.C];
    NewIdx[I] = uint32_t(NewCode.size());
    NewCode.push_back(Ins);
    NewKeys.push_back(Keys[I]);
    NewInv.push_back(RowInvariant[I]);
  }
  std::swap(Code, NewCode);
  std::swap(Keys, NewKeys);
  std::swap(RowInvariant, NewInv);
}

} // namespace

Tape::Tape(const NumExprBuilder &B, NumId Root, const TapeOptions &Opts,
           Tape *Recycle)
    : Flags{Opts.FastTape, Opts.FastSimdMath} {
  // Resolve the batched kernel once: the requested tier (Simd off
  // forces scalar) clamped by the CPU probe and by what this binary
  // compiled in.  Every tier is lane-wise bit-identical, so this choice
  // is pure throughput.
  const TapeKernel K = resolveTapeKernel(
      Opts.Simd ? activeSimdLevel() : SimdLevel::Scalar);
  Kernel = K.Fn;
  KernelLevel = K.Level;
  KernelWidth = K.Width;
  // Storage recycling: steal the donor's (typically the previous
  // candidate's) member vectors so their capacity is reused instead of
  // reallocated — contents are fully overwritten below.
  if (Recycle) {
    Code = std::move(Recycle->Code);
    Code.clear();
    Keys = std::move(Recycle->Keys);
    Keys.clear();
    RowInvariant = std::move(Recycle->RowInvariant);
    RowInvariant.clear();
    VecSlot = std::move(Recycle->VecSlot);
    CacheWorthy = std::move(Recycle->CacheWorthy);
    NeedsBcast = std::move(Recycle->NeedsBcast);
    BcastSlot = std::move(Recycle->BcastSlot);
    HoistedU = std::move(Recycle->HoistedU);
  }
  // Builder ids are already topologically ordered (operands are created
  // before their users), so one marking pass from the root followed by a
  // forward renumbering scan compiles the tape.  The pass-local vectors
  // are thread-local: one tape is built per candidate, and the warm
  // capacity carries across the chain's candidate loop.
  static thread_local std::vector<uint8_t> Live;
  Live.assign(Root + 1, 0);
  Live[Root] = 1;
  for (NumId Id = Root + 1; Id-- > 0;) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    if (N.Op == NumOp::Const || N.Op == NumOp::DataRef)
      continue;
    Live[N.A] = 1;
    if (numOpIsBinary(N.Op))
      Live[N.B] = 1;
  }
  static thread_local std::vector<NumId> Renumber;
  Renumber.assign(Root + 1, 0);
  for (NumId Id = 0; Id <= Root; ++Id) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    TapeIns Ins;
    Ins.Op = TapeOp(uint8_t(N.Op));
    Ins.Value = N.Value;
    if (N.Op != NumOp::Const && N.Op != NumOp::DataRef) {
      Ins.A = Renumber[N.A];
      if (numOpIsBinary(N.Op))
        Ins.B = Renumber[N.B];
    }
    Renumber[Id] = NumId(Code.size());
    Code.push_back(Ins);
  }

  // Structural subtree keys, bottom-up.  Computed from (op, literal
  // bits, operand keys) only — independent of builder node ids — so the
  // same subexpression gets the same key in every candidate's builder,
  // which is what lets the column cache survive across candidates.
  Keys.resize(Code.size());
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    const uint64_t Tag = uint64_t(Ins.Op) + 1;
    switch (arity(Ins.Op)) {
    case 0: {
      uint64_t Bits;
      std::memcpy(&Bits, &Ins.Value, sizeof(Bits));
      Keys[I] = SubtreeKey::leaf(Tag, Bits);
      break;
    }
    case 1:
      Keys[I] = SubtreeKey::combine(Tag, Keys[Ins.A], SubtreeKey{});
      break;
    default:
      Keys[I] = SubtreeKey::combine(Tag, Keys[Ins.A], Keys[Ins.B]);
    }
  }

  // Row-invariance analysis: an instruction's value is the same for
  // every data row iff it is not a DataRef and none of its transitive
  // operands is.  Invariant instructions are evaluated once per
  // evalBatch call; the varying ones get densely renumbered row-block
  // registers so the batched scratch matrix only holds what actually
  // varies.
  RowInvariant.resize(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    bool Invariant;
    if (Ins.Op == TapeOp::DataRef)
      Invariant = false;
    else if (Ins.Op == TapeOp::Const)
      Invariant = true;
    else
      Invariant = RowInvariant[Ins.A] &&
                  (arity(Ins.Op) < 2 || RowInvariant[Ins.B]);
    RowInvariant[I] = Invariant ? 1 : 0;
  }

  if (Opts.Fuse)
    fuseTape(Code, Keys, RowInvariant, NumFused);

  VecSlot.assign(Code.size(), 0);
  NumVarying = 0;
  for (size_t I = 0, E = Code.size(); I != E; ++I)
    if (!RowInvariant[I])
      VecSlot[I] = uint32_t(NumVarying++);

  // Invariant operands of varying instructions must be materialized as
  // N-wide registers for the kernels (the kernel ABI takes memory
  // operands only).  Give each such instruction a dedicated broadcast
  // register so the fill happens once per evaluation call, not once per
  // use.
  NeedsBcast.assign(Code.size(), 0);
  BcastSlot.assign(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    if (RowInvariant[I])
      continue;
    const TapeIns &Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1 && RowInvariant[Ins.A])
      NeedsBcast[Ins.A] = 1;
    if (Ar >= 2 && RowInvariant[Ins.B])
      NeedsBcast[Ins.B] = 1;
    if (Ar >= 3 && RowInvariant[Ins.C])
      NeedsBcast[Ins.C] = 1;
  }
  NumBcast = 0;
  for (size_t I = 0, E = Code.size(); I != E; ++I)
    if (NeedsBcast[I])
      BcastSlot[I] = uint32_t(NumBcast++);

  // Row-invariant values cannot depend on the data, so they are
  // constants of the tape: evaluate them once here instead of once per
  // row block.  The stamp below lets persistent broadcast scratch
  // recognize fills made by this very tape (address reuse via the
  // Recycle donor makes pointers unusable as identity).
  HoistedU.assign(Code.size(), 0.0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    if (!RowInvariant[I])
      continue;
    const TapeIns &Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    HoistedU[I] = tapeScalarOp(Ins.Op, Ar >= 1 ? HoistedU[Ins.A] : 0.0,
                               Ar >= 2 ? HoistedU[Ins.B] : 0.0,
                               Ar >= 3 ? HoistedU[Ins.C] : 0.0, Ins.Value,
                               Flags);
  }
  static std::atomic<uint64_t> NextGen{0};
  Gen = NextGen.fetch_add(1, std::memory_order_relaxed) + 1;

  // Cache-worthiness policy for evalIncremental.  Probing the column
  // cache costs a 128-bit hash-map lookup, and a miss additionally
  // heap-allocates the column it stores — more than the auto-vectorized
  // kernel of a cheap arithmetic op over a whole row block.  Caching
  // only pays where a hit prunes real recompute work, so an instruction
  // participates only when the weighted cost of its row-varying subtree
  // clears a threshold.  The weights rank per-element kernel cost: libm
  // calls dominate everything else by an order of magnitude, divides
  // are several times a multiply, the rest is noise.  The subtree cost
  // ignores DAG sharing (it may double-count a shared operand); that
  // only ever over-estimates, and the policy is heuristic anyway.
  // Purely a cost decision — which columns get cached — never what any
  // instruction computes, so bitwise results are unaffected.
  auto OpWeight = [](TapeOp Op) -> uint32_t {
    switch (Op) {
    case TapeOp::Log:
    case TapeOp::Exp:
    case TapeOp::Sqrt:
    case TapeOp::Erf:
      return 16;
    case TapeOp::Div:
    case TapeOp::SubDiv:
      return 4;
    case TapeOp::MulAdd:
    case TapeOp::MulSub:
    case TapeOp::SubMul:
    case TapeOp::MulMul:
    case TapeOp::AddAdd:
    case TapeOp::AddMul:
      return 2; // A fused pair: two plain ops' worth of work.
    default:
      return 1;
    }
  };
  constexpr uint32_t CacheCostThreshold = 8;
  CacheWorthy.assign(Code.size(), 0);
  static thread_local std::vector<uint32_t> SubtreeCost;
  SubtreeCost.assign(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    if (RowInvariant[I] || Ins.Op == TapeOp::DataRef)
      continue; // Hoisted / served zero-copy: nothing to cache.
    uint64_t Cost = OpWeight(Ins.Op);
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1 && !RowInvariant[Ins.A])
      Cost += SubtreeCost[Ins.A];
    if (Ar >= 2 && !RowInvariant[Ins.B])
      Cost += SubtreeCost[Ins.B];
    if (Ar >= 3 && !RowInvariant[Ins.C])
      Cost += SubtreeCost[Ins.C];
    // Saturate: the double-counting of shared operands can compound
    // exponentially through a deep DAG.
    SubtreeCost[I] = uint32_t(std::min<uint64_t>(Cost, 1u << 20));
    CacheWorthy[I] = Cost >= CacheCostThreshold ? 1 : 0;
  }
}

double Tape::eval(const std::vector<double> &Row,
                  std::vector<double> &Scratch) const {
  Scratch.resize(Code.size());
  double *R = Scratch.data();
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    switch (Ins.Op) {
    case TapeOp::Const:
      R[I] = Ins.Value;
      break;
    case TapeOp::DataRef: {
      size_t Slot = size_t(Ins.Value);
      assert(Slot < Row.size() && "data reference outside row");
      R[I] = Row[Slot];
      break;
    }
    default: {
      const unsigned Ar = arity(Ins.Op);
      R[I] = tapeScalarOp(Ins.Op, R[Ins.A], Ar >= 2 ? R[Ins.B] : 0.0,
                          Ar >= 3 ? R[Ins.C] : 0.0, Ins.Value, Flags);
    }
    }
  }
  return Code.empty() ? 0.0 : R[Code.size() - 1];
}

double Tape::eval(const std::vector<double> &Row) const {
  std::vector<double> Scratch;
  return eval(Row, Scratch);
}

void Tape::evalBatch(const ColumnarDataset &Cols, size_t Begin, size_t N,
                     double *Out, std::vector<double> &Scratch) const {
  if (N == 0)
    return;
  if (Code.empty()) {
    for (size_t R = 0; R != N; ++R)
      Out[R] = 0.0;
    return;
  }
  tallySimdRows(N, KernelWidth);
  // Cost attribution (--profile; obs/Profiler.h): one chained clock
  // read per executed kernel when this block is sampled, so every
  // nanosecond between here and the end of the function lands in an
  // opcode bucket or the dispatch center.  Unsampled blocks charge
  // their whole span to one bucket with a single extra clock read.
  // No sink installed — the default — skips every clock read; the
  // charges only observe time, so results are bit-identical either
  // way.
  TapeProfile *Prof = threadTapeProfile();
  bool ProfSampled = false;
  std::chrono::steady_clock::time_point ProfLast;
  if (Prof) {
    ProfSampled = Prof->beginBlock(N, KernelWidth);
    ProfLast = std::chrono::steady_clock::now();
  }
  // Scratch layout: a two-slot stamp header, one N-wide row-block
  // register per *varying* instruction, then one N-wide broadcast
  // register per invariant instruction feeding a varying one.
  // Invariant values were evaluated at construction (HoistedU), so the
  // broadcast fill happens only when this scratch was last used by a
  // different tape or block size — per-block evaluation of a hot tape
  // does no invariant work at all.
  constexpr size_t HdrSlots = 2;
  Scratch.resize(HdrSlots + NumVarying * N + NumBcast * N);
  double *S = Scratch.data() + HdrSlots;
  double *BC = S + NumVarying * N;
  uint64_t StampGen = 0, StampN = 0;
  std::memcpy(&StampGen, Scratch.data(), sizeof StampGen);
  std::memcpy(&StampN, Scratch.data() + 1, sizeof StampN);
  if (StampGen != Gen || StampN != uint64_t(N)) {
    for (size_t I = 0, E = Code.size(); I != E; ++I)
      if (NeedsBcast[I]) {
        double *Bp = BC + size_t(BcastSlot[I]) * N;
        const double V = HoistedU[I];
        for (size_t J = 0; J != N; ++J)
          Bp[J] = V;
        // Materializing an invariant instruction's broadcast register
        // is that instruction's work: every fresh tape (one per scored
        // candidate) pays it, so folding it into the dispatch center
        // would hide a real per-opcode cost.
        if (ProfSampled) {
          auto ProfNow = std::chrono::steady_clock::now();
          Prof->chargeOp(unsigned(Code[I].Op), ProfNow - ProfLast, N);
          ProfLast = ProfNow;
        }
      }
    StampGen = Gen;
    StampN = uint64_t(N);
    std::memcpy(Scratch.data(), &StampGen, sizeof StampGen);
    std::memcpy(Scratch.data() + 1, &StampN, sizeof StampN);
  }
  // Resolved row-block pointer per instruction.  DataRefs resolve to
  // the dataset column itself — zero-copy — and invariants to their
  // broadcast register, so the only memory the walk writes is one
  // kernel output register per varying instruction.
  static thread_local std::vector<const double *> Ptr;
  Ptr.resize(Code.size());
  if (ProfSampled) {
    // Scratch/broadcast setup is dispatch glue, not opcode work.
    auto ProfNow = std::chrono::steady_clock::now();
    Prof->charge(ProfileCostCenter::Dispatch, ProfNow - ProfLast);
    ProfLast = ProfNow;
  }
  const size_t Root = Code.size() - 1;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    if (RowInvariant[I]) {
      if (NeedsBcast[I])
        Ptr[I] = BC + size_t(BcastSlot[I]) * N;
      continue;
    }
    if (Ins.Op == TapeOp::DataRef) {
      size_t Slot = size_t(Ins.Value);
      assert(Slot < Cols.numColumns() && "data reference outside row");
      Ptr[I] = Cols.column(Slot) + Begin;
      continue;
    }
    // The root's kernel writes straight into the caller's output — no
    // final copy pass.
    double *R = I == Root ? Out : S + size_t(VecSlot[I]) * N;
    const unsigned Ar = arity(Ins.Op);
    Kernel(Ins.Op, Ptr[Ins.A], Ar >= 2 ? Ptr[Ins.B] : nullptr,
           Ar >= 3 ? Ptr[Ins.C] : nullptr, R, N, Flags);
    Ptr[I] = R;
    if (ProfSampled) {
      auto ProfNow = std::chrono::steady_clock::now();
      Prof->chargeOp(unsigned(Ins.Op), ProfNow - ProfLast, N);
      ProfLast = ProfNow;
    }
  }
  if (RowInvariant[Root]) {
    const double V = HoistedU[Root];
    for (size_t J = 0; J != N; ++J)
      Out[J] = V;
  } else if (Code[Root].Op == TapeOp::DataRef) {
    const double *Last = Ptr[Root];
    for (size_t J = 0; J != N; ++J)
      Out[J] = Last[J];
  }
  if (Prof) {
    auto ProfNow = std::chrono::steady_clock::now();
    if (ProfSampled)
      Prof->charge(ProfileCostCenter::Dispatch, ProfNow - ProfLast);
    else
      Prof->charge(ProfileCostCenter::Unsampled, ProfNow - ProfLast, N);
  }
}

void Tape::evalIncremental(const ColumnarDataset &Cols, size_t Begin,
                           size_t N, double *Out, ColumnCache &Cache,
                           IncrementalScratch &Scr) const {
  if (N == 0)
    return;
  const size_t E = Code.size();
  if (E == 0) {
    for (size_t R = 0; R != N; ++R)
      Out[R] = 0.0;
    return;
  }
  tallySimdRows(N, KernelWidth);
  // Same chained-clock attribution as evalBatch, with one extra cost
  // center: the backward need-marking / cache-probe walk (ColProbe).
  TapeProfile *Prof = threadTapeProfile();
  bool ProfSampled = false;
  std::chrono::steady_clock::time_point ProfLast;
  if (Prof) {
    ProfSampled = Prof->beginBlock(N, KernelWidth);
    ProfLast = std::chrono::steady_clock::now();
  }
  Scr.Need.assign(E, 0);
  Scr.Col.assign(E, nullptr);
  Scr.Pinned.clear();
  Scr.Bcast.resize(NumBcast * N);
  Scr.Flat.resize(NumVarying * N);
  // Invariant values were evaluated once at construction (HoistedU);
  // their broadcast registers persist in the scratch across calls,
  // refilled only when the scratch was last used by a different tape
  // or block size.
  if (Scr.BcastGen != Gen || Scr.BcastN != N) {
    for (size_t I = 0; I != E; ++I)
      if (NeedsBcast[I]) {
        double *Bp = Scr.Bcast.data() + size_t(BcastSlot[I]) * N;
        const double V = HoistedU[I];
        for (size_t J = 0; J != N; ++J)
          Bp[J] = V;
        // Broadcast materialization is the invariant instruction's own
        // cost (see evalBatch): charge its opcode, not dispatch.
        if (ProfSampled) {
          auto ProfNow = std::chrono::steady_clock::now();
          Prof->chargeOp(unsigned(Code[I].Op), ProfNow - ProfLast, N);
          ProfLast = ProfNow;
        }
      }
    Scr.BcastGen = Gen;
    Scr.BcastN = N;
  }

  // Backward need-marking from the root.  A needed varying instruction
  // probes the cache if it is worth caching (see cacheWorthy); a hit
  // (or a DataRef, served zero-copy from the dataset) resolves its
  // column and prunes its whole subtree — the operands stay unmarked
  // unless some other miss needs them.
  Scr.Need[E - 1] = 1;
  for (size_t I = E; I-- > 0;) {
    if (!Scr.Need[I])
      continue;
    const TapeIns &Ins = Code[I];
    if (!RowInvariant[I]) {
      if (Ins.Op == TapeOp::DataRef) {
        size_t Slot = size_t(Ins.Value);
        assert(Slot < Cols.numColumns() && "data reference outside row");
        Scr.Col[I] = Cols.column(Slot) + Begin;
        continue;
      }
      if (CacheWorthy[I]) {
        if (ColumnCache::ColumnPtr Hit = Cache.lookup(Keys[I], Begin)) {
          assert(Hit->size() == N && "cached column block size mismatch");
          Scr.Col[I] = Hit->data();
          Scr.Pinned.push_back(std::move(Hit));
          continue;
        }
      }
    }
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1)
      Scr.Need[Ins.A] = 1;
    if (Ar >= 2)
      Scr.Need[Ins.B] = 1;
    if (Ar >= 3)
      Scr.Need[Ins.C] = 1;
  }
  if (ProfSampled) {
    auto ProfNow = std::chrono::steady_clock::now();
    Prof->charge(ProfileCostCenter::ColProbe, ProfNow - ProfLast, N);
    ProfLast = ProfNow;
  }

  // Varying operands resolve to their column (cache hit, DataRef —
  // zero-copy — or recomputed register); invariant ones to their
  // persistent broadcast register.
  auto Operand = [&](uint32_t X) -> const double * {
    return RowInvariant[X] ? Scr.Bcast.data() + size_t(BcastSlot[X]) * N
                           : Scr.Col[X];
  };

  // Forward compute of what the cache could not serve.  Each computed
  // column runs the same applyVecOp kernel as evalBatch (and cached
  // columns were produced by this very loop on an earlier candidate),
  // so results are bitwise identical to a from-scratch evalBatch.
  for (size_t I = 0; I != E; ++I) {
    if (!Scr.Need[I])
      continue;
    if (RowInvariant[I])
      continue; // Hoisted at construction; broadcast filled above.
    const TapeIns &Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    if (Scr.Col[I])
      continue; // Cache hit or DataRef, already resolved.
    // Cache-worthy misses the cache admits (second-touch policy; see
    // ColumnCache::admit) compute into a freshly owned column that is
    // handed to the cache for reuse by later candidates; everything
    // else computes in place in the flat register matrix, exactly like
    // evalBatch — no allocation, no cache traffic.  The root, when it
    // is not headed for the cache, computes straight into the caller's
    // output.
    double *R;
    std::shared_ptr<std::vector<double>> Buf;
    if (CacheWorthy[I] && Cache.admit(Keys[I], Begin)) {
      Buf = std::make_shared<std::vector<double>>(N);
      R = Buf->data();
    } else if (I == E - 1) {
      R = Out;
    } else {
      R = Scr.Flat.data() + size_t(VecSlot[I]) * N;
    }
    Kernel(Ins.Op, Operand(Ins.A), Ar >= 2 ? Operand(Ins.B) : nullptr,
           Ar >= 3 ? Operand(Ins.C) : nullptr, R, N, Flags);
    Scr.Col[I] = R;
    if (Buf) {
      Cache.insert(Keys[I], Begin, Buf);
      Scr.Pinned.push_back(std::move(Buf));
    }
    if (ProfSampled) {
      // The cache insert rides on the opcode's delta: it is per-op
      // maintenance a from-scratch evalBatch would not pay.
      auto ProfNow = std::chrono::steady_clock::now();
      Prof->chargeOp(unsigned(Ins.Op), ProfNow - ProfLast, N);
      ProfLast = ProfNow;
    }
  }

  if (RowInvariant[E - 1]) {
    const double V = HoistedU[E - 1];
    for (size_t J = 0; J != N; ++J)
      Out[J] = V;
  } else {
    const double *RootCol = Scr.Col[E - 1];
    if (RootCol != Out)
      for (size_t J = 0; J != N; ++J)
        Out[J] = RootCol[J];
  }
  if (Prof) {
    auto ProfNow = std::chrono::steady_clock::now();
    if (ProfSampled)
      Prof->charge(ProfileCostCenter::Dispatch, ProfNow - ProfLast);
    else
      Prof->charge(ProfileCostCenter::Unsampled, ProfNow - ProfLast, N);
  }
}
