//===- likelihood/Tape.cpp - Flat evaluation tape for NumExpr DAGs --------===//
//
// Part of the PSketch project, under the MIT License.
//
// NOTE: this file is compiled with -ffp-contract=off (see
// src/likelihood/CMakeLists.txt).  Fused superinstructions promise the
// exact two-rounding IEEE sequence of the pair they replaced; letting
// the compiler contract `a*b + c` into a single-rounding FMA would
// silently break the bitwise differential guarantee.  FastTape mode
// requests the contraction explicitly via std::fma.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Tape.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

using namespace psketch;

// TapeOp mirrors NumOp over the shared prefix so the compiler can
// translate by re-tagging.
static_assert(uint8_t(TapeOp::Const) == uint8_t(NumOp::Const));
static_assert(uint8_t(TapeOp::DataRef) == uint8_t(NumOp::DataRef));
static_assert(uint8_t(TapeOp::Add) == uint8_t(NumOp::Add));
static_assert(uint8_t(TapeOp::Neg) == uint8_t(NumOp::Neg));
static_assert(uint8_t(TapeOp::Eq) == uint8_t(NumOp::Eq));

const char *psketch::tapeOpName(TapeOp Op) {
  switch (Op) {
  case TapeOp::MulAdd:
    return "mul+add";
  case TapeOp::MulSub:
    return "mul+sub";
  case TapeOp::SubMul:
    return "sub+mul";
  case TapeOp::SubDiv:
    return "sub+div";
  case TapeOp::MulMul:
    return "mul+mul";
  case TapeOp::AddAdd:
    return "add+add";
  case TapeOp::AddMul:
    return "add+mul";
  default:
    return numOpName(NumOp(uint8_t(Op)));
  }
}

namespace {

/// Operand count of \p Op: 0 for leaves, 3 for fused superinstructions.
unsigned arity(TapeOp Op) {
  switch (Op) {
  case TapeOp::Const:
  case TapeOp::DataRef:
    return 0;
  case TapeOp::Neg:
  case TapeOp::Abs:
  case TapeOp::Log:
  case TapeOp::Exp:
  case TapeOp::Sqrt:
  case TapeOp::Erf:
    return 1;
  case TapeOp::Add:
  case TapeOp::Sub:
  case TapeOp::Mul:
  case TapeOp::Div:
  case TapeOp::Max:
  case TapeOp::Min:
  case TapeOp::Gt:
  case TapeOp::Eq:
    return 2;
  case TapeOp::MulAdd:
  case TapeOp::MulSub:
  case TapeOp::SubMul:
  case TapeOp::SubDiv:
  case TapeOp::MulMul:
  case TapeOp::AddAdd:
  case TapeOp::AddMul:
    return 3;
  }
  return 0;
}

/// One scalar step of the tape machine; shared by the per-row
/// interpreter, the row-invariant hoist, and the incremental evaluator.
/// Performs exactly the IEEE operations the batched kernels do, so
/// every path produces bitwise-identical values.
double scalarOp(TapeOp Op, double A, double B, double C, double Value,
                bool Fast) {
  switch (Op) {
  case TapeOp::Const:
    return Value;
  case TapeOp::DataRef:
    assert(false && "data references are resolved by the callers");
    return 0.0;
  case TapeOp::Add:
    return A + B;
  case TapeOp::Sub:
    return A - B;
  case TapeOp::Mul:
    return A * B;
  case TapeOp::Div:
    return A / B;
  case TapeOp::Neg:
    return -A;
  case TapeOp::Abs:
    return std::fabs(A);
  case TapeOp::Log:
    return std::log(A);
  case TapeOp::Exp:
    return std::exp(A);
  case TapeOp::Sqrt:
    return std::sqrt(A);
  case TapeOp::Erf:
    return std::erf(A);
  case TapeOp::Max:
    return A > B ? A : B;
  case TapeOp::Min:
    return A < B ? A : B;
  case TapeOp::Gt:
    return A > B ? 1.0 : 0.0;
  case TapeOp::Eq:
    return A == B ? 1.0 : 0.0;
  case TapeOp::MulAdd:
    return Fast ? std::fma(A, B, C) : A * B + C;
  case TapeOp::MulSub:
    return Fast ? std::fma(A, B, -C) : A * B - C;
  case TapeOp::SubMul:
    return (A - B) * C;
  case TapeOp::SubDiv:
    return (A - B) / C;
  case TapeOp::MulMul:
    return (A * B) * C;
  case TapeOp::AddAdd:
    return (A + B) + C;
  case TapeOp::AddMul:
    return (A + B) * C;
  }
  return 0.0;
}

/// Applies \p Op element-wise over a row block.  Per-op loops with
/// contiguous loads/stores so they auto-vectorize; \p B / \p C may be
/// null for ops that do not use them.  Shared by evalBatch and
/// evalIncremental — the shared kernel is what makes the two paths
/// bitwise-interchangeable.
void applyVecOp(TapeOp Op, const double *A, const double *B, const double *C,
                double *R, size_t N, bool Fast) {
  switch (Op) {
  case TapeOp::Const:
  case TapeOp::DataRef:
    assert(false && "leaf instructions are resolved by the callers");
    break;
  case TapeOp::Add:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] + B[J];
    break;
  case TapeOp::Sub:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] - B[J];
    break;
  case TapeOp::Mul:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] * B[J];
    break;
  case TapeOp::Div:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] / B[J];
    break;
  case TapeOp::Neg:
    for (size_t J = 0; J != N; ++J)
      R[J] = -A[J];
    break;
  case TapeOp::Abs:
    for (size_t J = 0; J != N; ++J)
      R[J] = std::fabs(A[J]);
    break;
  case TapeOp::Log:
    for (size_t J = 0; J != N; ++J)
      R[J] = std::log(A[J]);
    break;
  case TapeOp::Exp:
    for (size_t J = 0; J != N; ++J)
      R[J] = std::exp(A[J]);
    break;
  case TapeOp::Sqrt:
    for (size_t J = 0; J != N; ++J)
      R[J] = std::sqrt(A[J]);
    break;
  case TapeOp::Erf:
    for (size_t J = 0; J != N; ++J)
      R[J] = std::erf(A[J]);
    break;
  case TapeOp::Max:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] > B[J] ? A[J] : B[J];
    break;
  case TapeOp::Min:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] < B[J] ? A[J] : B[J];
    break;
  case TapeOp::Gt:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] > B[J] ? 1.0 : 0.0;
    break;
  case TapeOp::Eq:
    for (size_t J = 0; J != N; ++J)
      R[J] = A[J] == B[J] ? 1.0 : 0.0;
    break;
  case TapeOp::MulAdd:
    if (Fast) {
      for (size_t J = 0; J != N; ++J)
        R[J] = std::fma(A[J], B[J], C[J]);
    } else {
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] * B[J] + C[J];
    }
    break;
  case TapeOp::MulSub:
    if (Fast) {
      for (size_t J = 0; J != N; ++J)
        R[J] = std::fma(A[J], B[J], -C[J]);
    } else {
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] * B[J] - C[J];
    }
    break;
  case TapeOp::SubMul:
    for (size_t J = 0; J != N; ++J)
      R[J] = (A[J] - B[J]) * C[J];
    break;
  case TapeOp::SubDiv:
    for (size_t J = 0; J != N; ++J)
      R[J] = (A[J] - B[J]) / C[J];
    break;
  case TapeOp::MulMul:
    for (size_t J = 0; J != N; ++J)
      R[J] = (A[J] * B[J]) * C[J];
    break;
  case TapeOp::AddAdd:
    for (size_t J = 0; J != N; ++J)
      R[J] = (A[J] + B[J]) + C[J];
    break;
  case TapeOp::AddMul:
    for (size_t J = 0; J != N; ++J)
      R[J] = (A[J] + B[J]) * C[J];
    break;
  }
}

/// The superinstruction peephole (DESIGN.md §9): absorbs a single-use
/// row-varying producer into its (necessarily row-varying) consumer.
/// Every fused form evaluates the identical two-rounding IEEE sequence;
/// the only reorderings used are the value-exact commutations of Add
/// and Mul when the producer sits on the consumer's right.  Invariant
/// instructions are never fused — they are hoisted out of the row loop
/// anyway, so fusing them would only obscure the hoist.
void fuseTape(std::vector<TapeIns> &Code, std::vector<SubtreeKey> &Keys,
              std::vector<uint8_t> &RowInvariant, size_t &NumFused) {
  const size_t E = Code.size();
  if (E < 2)
    return;
  // All pass-local storage is thread-local (chains run on separate
  // threads): template scoring fuses one tape per candidate, and the
  // capacities stay warm across those thousands of same-shaped tapes.
  static thread_local std::vector<uint32_t> Uses;
  Uses.assign(E, 0);
  for (const TapeIns &Ins : Code) {
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1)
      ++Uses[Ins.A];
    if (Ar >= 2)
      ++Uses[Ins.B];
  }

  static thread_local std::vector<uint8_t> Absorbed;
  Absorbed.assign(E, 0);
  for (size_t I = 0; I != E; ++I) {
    TapeIns &Ins = Code[I];
    if (RowInvariant[I])
      continue;
    // A producer is fusable into this consumer when this is its only
    // use (no duplicated evaluation), it varies per row, and it still
    // is the plain op (not already a fused instruction itself).
    auto Fusable = [&](uint32_t P, TapeOp Want) {
      return !RowInvariant[P] && Code[P].Op == Want && Uses[P] == 1 &&
             !Absorbed[P];
    };
    auto Fuse = [&](TapeOp NewOp, uint32_t P, uint32_t Other) {
      Absorbed[P] = 1;
      Ins.Op = NewOp;
      Ins.A = Code[P].A;
      Ins.B = Code[P].B;
      Ins.C = Other;
      Ins.Value = 0;
      ++NumFused;
    };
    switch (Ins.Op) {
    case TapeOp::Add:
      if (Fusable(Ins.A, TapeOp::Mul))
        Fuse(TapeOp::MulAdd, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Mul))
        Fuse(TapeOp::MulAdd, Ins.B, Ins.A); // x + (a*b): Add commutes.
      else if (Fusable(Ins.A, TapeOp::Add))
        Fuse(TapeOp::AddAdd, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Add))
        Fuse(TapeOp::AddAdd, Ins.B, Ins.A);
      break;
    case TapeOp::Sub:
      // Only the left side: x - (a*b) has no exact fused form here.
      if (Fusable(Ins.A, TapeOp::Mul))
        Fuse(TapeOp::MulSub, Ins.A, Ins.B);
      break;
    case TapeOp::Mul:
      if (Fusable(Ins.A, TapeOp::Sub))
        Fuse(TapeOp::SubMul, Ins.A, Ins.B); // Gaussian quad: (x-mu)*c.
      else if (Fusable(Ins.B, TapeOp::Sub))
        Fuse(TapeOp::SubMul, Ins.B, Ins.A); // Mul commutes.
      else if (Fusable(Ins.A, TapeOp::Mul))
        Fuse(TapeOp::MulMul, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Mul))
        Fuse(TapeOp::MulMul, Ins.B, Ins.A);
      else if (Fusable(Ins.A, TapeOp::Add))
        Fuse(TapeOp::AddMul, Ins.A, Ins.B);
      else if (Fusable(Ins.B, TapeOp::Add))
        Fuse(TapeOp::AddMul, Ins.B, Ins.A);
      break;
    case TapeOp::Div:
      if (Fusable(Ins.A, TapeOp::Sub))
        Fuse(TapeOp::SubDiv, Ins.A, Ins.B); // Gaussian z = (x-mu)/sigma.
      break;
    default:
      break;
    }
  }
  if (!NumFused)
    return;

  // Compact absorbed producers out of the tape.  The fused consumer
  // keeps its own structural key — it computes that node's value — so
  // column-cache identities are unaffected by fusion.  The swap at the
  // end parks the replaced vectors' capacity in the thread-locals for
  // the next candidate.
  static thread_local std::vector<uint32_t> NewIdx;
  NewIdx.assign(E, 0);
  static thread_local std::vector<TapeIns> NewCode;
  static thread_local std::vector<SubtreeKey> NewKeys;
  static thread_local std::vector<uint8_t> NewInv;
  NewCode.clear();
  NewKeys.clear();
  NewInv.clear();
  NewCode.reserve(E);
  NewKeys.reserve(E);
  NewInv.reserve(E);
  for (size_t I = 0; I != E; ++I) {
    if (Absorbed[I])
      continue;
    TapeIns Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1)
      Ins.A = NewIdx[Ins.A];
    if (Ar >= 2)
      Ins.B = NewIdx[Ins.B];
    if (Ar >= 3)
      Ins.C = NewIdx[Ins.C];
    NewIdx[I] = uint32_t(NewCode.size());
    NewCode.push_back(Ins);
    NewKeys.push_back(Keys[I]);
    NewInv.push_back(RowInvariant[I]);
  }
  std::swap(Code, NewCode);
  std::swap(Keys, NewKeys);
  std::swap(RowInvariant, NewInv);
}

} // namespace

Tape::Tape(const NumExprBuilder &B, NumId Root, const TapeOptions &Opts,
           Tape *Recycle)
    : FastTape(Opts.FastTape) {
  // Storage recycling: steal the donor's (typically the previous
  // candidate's) member vectors so their capacity is reused instead of
  // reallocated — contents are fully overwritten below.
  if (Recycle) {
    Code = std::move(Recycle->Code);
    Code.clear();
    Keys = std::move(Recycle->Keys);
    Keys.clear();
    RowInvariant = std::move(Recycle->RowInvariant);
    RowInvariant.clear();
    VecSlot = std::move(Recycle->VecSlot);
    CacheWorthy = std::move(Recycle->CacheWorthy);
  }
  // Builder ids are already topologically ordered (operands are created
  // before their users), so one marking pass from the root followed by a
  // forward renumbering scan compiles the tape.  The pass-local vectors
  // are thread-local: one tape is built per candidate, and the warm
  // capacity carries across the chain's candidate loop.
  static thread_local std::vector<uint8_t> Live;
  Live.assign(Root + 1, 0);
  Live[Root] = 1;
  for (NumId Id = Root + 1; Id-- > 0;) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    if (N.Op == NumOp::Const || N.Op == NumOp::DataRef)
      continue;
    Live[N.A] = 1;
    if (numOpIsBinary(N.Op))
      Live[N.B] = 1;
  }
  static thread_local std::vector<NumId> Renumber;
  Renumber.assign(Root + 1, 0);
  for (NumId Id = 0; Id <= Root; ++Id) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    TapeIns Ins;
    Ins.Op = TapeOp(uint8_t(N.Op));
    Ins.Value = N.Value;
    if (N.Op != NumOp::Const && N.Op != NumOp::DataRef) {
      Ins.A = Renumber[N.A];
      if (numOpIsBinary(N.Op))
        Ins.B = Renumber[N.B];
    }
    Renumber[Id] = NumId(Code.size());
    Code.push_back(Ins);
  }

  // Structural subtree keys, bottom-up.  Computed from (op, literal
  // bits, operand keys) only — independent of builder node ids — so the
  // same subexpression gets the same key in every candidate's builder,
  // which is what lets the column cache survive across candidates.
  Keys.resize(Code.size());
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    const uint64_t Tag = uint64_t(Ins.Op) + 1;
    switch (arity(Ins.Op)) {
    case 0: {
      uint64_t Bits;
      std::memcpy(&Bits, &Ins.Value, sizeof(Bits));
      Keys[I] = SubtreeKey::leaf(Tag, Bits);
      break;
    }
    case 1:
      Keys[I] = SubtreeKey::combine(Tag, Keys[Ins.A], SubtreeKey{});
      break;
    default:
      Keys[I] = SubtreeKey::combine(Tag, Keys[Ins.A], Keys[Ins.B]);
    }
  }

  // Row-invariance analysis: an instruction's value is the same for
  // every data row iff it is not a DataRef and none of its transitive
  // operands is.  Invariant instructions are evaluated once per
  // evalBatch call; the varying ones get densely renumbered row-block
  // registers so the batched scratch matrix only holds what actually
  // varies.
  RowInvariant.resize(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    bool Invariant;
    if (Ins.Op == TapeOp::DataRef)
      Invariant = false;
    else if (Ins.Op == TapeOp::Const)
      Invariant = true;
    else
      Invariant = RowInvariant[Ins.A] &&
                  (arity(Ins.Op) < 2 || RowInvariant[Ins.B]);
    RowInvariant[I] = Invariant ? 1 : 0;
  }

  if (Opts.Fuse)
    fuseTape(Code, Keys, RowInvariant, NumFused);

  VecSlot.assign(Code.size(), 0);
  NumVarying = 0;
  for (size_t I = 0, E = Code.size(); I != E; ++I)
    if (!RowInvariant[I])
      VecSlot[I] = uint32_t(NumVarying++);

  // Cache-worthiness policy for evalIncremental.  Probing the column
  // cache costs a 128-bit hash-map lookup, and a miss additionally
  // heap-allocates the column it stores — more than the auto-vectorized
  // kernel of a cheap arithmetic op over a whole row block.  Caching
  // only pays where a hit prunes real recompute work, so an instruction
  // participates only when the weighted cost of its row-varying subtree
  // clears a threshold.  The weights rank per-element kernel cost: libm
  // calls dominate everything else by an order of magnitude, divides
  // are several times a multiply, the rest is noise.  The subtree cost
  // ignores DAG sharing (it may double-count a shared operand); that
  // only ever over-estimates, and the policy is heuristic anyway.
  // Purely a cost decision — which columns get cached — never what any
  // instruction computes, so bitwise results are unaffected.
  auto OpWeight = [](TapeOp Op) -> uint32_t {
    switch (Op) {
    case TapeOp::Log:
    case TapeOp::Exp:
    case TapeOp::Sqrt:
    case TapeOp::Erf:
      return 16;
    case TapeOp::Div:
    case TapeOp::SubDiv:
      return 4;
    case TapeOp::MulAdd:
    case TapeOp::MulSub:
    case TapeOp::SubMul:
    case TapeOp::MulMul:
    case TapeOp::AddAdd:
    case TapeOp::AddMul:
      return 2; // A fused pair: two plain ops' worth of work.
    default:
      return 1;
    }
  };
  constexpr uint32_t CacheCostThreshold = 8;
  CacheWorthy.assign(Code.size(), 0);
  static thread_local std::vector<uint32_t> SubtreeCost;
  SubtreeCost.assign(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    if (RowInvariant[I] || Ins.Op == TapeOp::DataRef)
      continue; // Hoisted / served zero-copy: nothing to cache.
    uint64_t Cost = OpWeight(Ins.Op);
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1 && !RowInvariant[Ins.A])
      Cost += SubtreeCost[Ins.A];
    if (Ar >= 2 && !RowInvariant[Ins.B])
      Cost += SubtreeCost[Ins.B];
    if (Ar >= 3 && !RowInvariant[Ins.C])
      Cost += SubtreeCost[Ins.C];
    // Saturate: the double-counting of shared operands can compound
    // exponentially through a deep DAG.
    SubtreeCost[I] = uint32_t(std::min<uint64_t>(Cost, 1u << 20));
    CacheWorthy[I] = Cost >= CacheCostThreshold ? 1 : 0;
  }
}

double Tape::eval(const std::vector<double> &Row,
                  std::vector<double> &Scratch) const {
  Scratch.resize(Code.size());
  double *R = Scratch.data();
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    switch (Ins.Op) {
    case TapeOp::Const:
      R[I] = Ins.Value;
      break;
    case TapeOp::DataRef: {
      size_t Slot = size_t(Ins.Value);
      assert(Slot < Row.size() && "data reference outside row");
      R[I] = Row[Slot];
      break;
    }
    default: {
      const unsigned Ar = arity(Ins.Op);
      R[I] = scalarOp(Ins.Op, R[Ins.A], Ar >= 2 ? R[Ins.B] : 0.0,
                      Ar >= 3 ? R[Ins.C] : 0.0, Ins.Value, FastTape);
    }
    }
  }
  return Code.empty() ? 0.0 : R[Code.size() - 1];
}

double Tape::eval(const std::vector<double> &Row) const {
  std::vector<double> Scratch;
  return eval(Row, Scratch);
}

void Tape::evalBatch(const ColumnarDataset &Cols, size_t Begin, size_t N,
                     double *Out, std::vector<double> &Scratch) const {
  if (N == 0)
    return;
  if (Code.empty()) {
    for (size_t R = 0; R != N; ++R)
      Out[R] = 0.0;
    return;
  }
  // Scratch layout: one N-wide row-block register per *varying*
  // instruction, three N-wide broadcast buffers for invariant operands
  // of mixed instructions (a fused instruction can have up to two
  // invariant operands), then one scalar slot per instruction for the
  // hoisted row-invariant values.
  Scratch.resize(NumVarying * N + 3 * N + Code.size());
  double *S = Scratch.data();
  double *BcA = S + NumVarying * N;
  double *BcB = BcA + N;
  double *BcC = BcB + N;
  double *U = BcC + N;
  // Resolves an operand to a row-block pointer: varying operands live
  // in their register; invariant ones are broadcast into a dedicated
  // buffer.
  auto Operand = [&](uint32_t X, double *Bcast) -> const double * {
    if (!RowInvariant[X])
      return S + size_t(VecSlot[X]) * N;
    const double V = U[X];
    for (size_t J = 0; J != N; ++J)
      Bcast[J] = V;
    return Bcast;
  };
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const TapeIns &Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    if (RowInvariant[I]) {
      // Parameter-only subexpression: evaluate once, not once per row.
      U[I] = scalarOp(Ins.Op, Ar >= 1 ? U[Ins.A] : 0.0,
                      Ar >= 2 ? U[Ins.B] : 0.0, Ar >= 3 ? U[Ins.C] : 0.0,
                      Ins.Value, FastTape);
      continue;
    }
    double *R = S + size_t(VecSlot[I]) * N;
    if (Ins.Op == TapeOp::DataRef) {
      size_t Slot = size_t(Ins.Value);
      assert(Slot < Cols.numColumns() && "data reference outside row");
      const double *Col = Cols.column(Slot) + Begin;
      for (size_t J = 0; J != N; ++J)
        R[J] = Col[J];
      continue;
    }
    const double *A = Operand(Ins.A, BcA);
    const double *Bp = Ar >= 2 ? Operand(Ins.B, BcB) : nullptr;
    const double *Cp = Ar >= 3 ? Operand(Ins.C, BcC) : nullptr;
    applyVecOp(Ins.Op, A, Bp, Cp, R, N, FastTape);
  }
  const size_t Root = Code.size() - 1;
  if (RowInvariant[Root]) {
    const double V = U[Root];
    for (size_t J = 0; J != N; ++J)
      Out[J] = V;
    return;
  }
  const double *Last = S + size_t(VecSlot[Root]) * N;
  for (size_t J = 0; J != N; ++J)
    Out[J] = Last[J];
}

void Tape::evalIncremental(const ColumnarDataset &Cols, size_t Begin,
                           size_t N, double *Out, ColumnCache &Cache,
                           IncrementalScratch &Scr) const {
  if (N == 0)
    return;
  const size_t E = Code.size();
  if (E == 0) {
    for (size_t R = 0; R != N; ++R)
      Out[R] = 0.0;
    return;
  }
  Scr.Need.assign(E, 0);
  Scr.Col.assign(E, nullptr);
  Scr.Pinned.clear();
  Scr.Invariant.resize(E);
  Scr.BcastA.resize(N);
  Scr.BcastB.resize(N);
  Scr.BcastC.resize(N);
  Scr.Flat.resize(NumVarying * N);
  double *U = Scr.Invariant.data();

  // Backward need-marking from the root.  A needed varying instruction
  // probes the cache if it is worth caching (see cacheWorthy); a hit
  // (or a DataRef, served zero-copy from the dataset) resolves its
  // column and prunes its whole subtree — the operands stay unmarked
  // unless some other miss needs them.
  Scr.Need[E - 1] = 1;
  for (size_t I = E; I-- > 0;) {
    if (!Scr.Need[I])
      continue;
    const TapeIns &Ins = Code[I];
    if (!RowInvariant[I]) {
      if (Ins.Op == TapeOp::DataRef) {
        size_t Slot = size_t(Ins.Value);
        assert(Slot < Cols.numColumns() && "data reference outside row");
        Scr.Col[I] = Cols.column(Slot) + Begin;
        continue;
      }
      if (CacheWorthy[I]) {
        if (ColumnCache::ColumnPtr Hit = Cache.lookup(Keys[I], Begin)) {
          assert(Hit->size() == N && "cached column block size mismatch");
          Scr.Col[I] = Hit->data();
          Scr.Pinned.push_back(std::move(Hit));
          continue;
        }
      }
    }
    const unsigned Ar = arity(Ins.Op);
    if (Ar >= 1)
      Scr.Need[Ins.A] = 1;
    if (Ar >= 2)
      Scr.Need[Ins.B] = 1;
    if (Ar >= 3)
      Scr.Need[Ins.C] = 1;
  }

  auto Operand = [&](uint32_t X,
                     std::vector<double> &Bcast) -> const double * {
    if (!RowInvariant[X])
      return Scr.Col[X];
    const double V = U[X];
    for (size_t J = 0; J != N; ++J)
      Bcast[J] = V;
    return Bcast.data();
  };

  // Forward compute of what the cache could not serve.  Each computed
  // column runs the same applyVecOp kernel as evalBatch (and cached
  // columns were produced by this very loop on an earlier candidate),
  // so results are bitwise identical to a from-scratch evalBatch.
  for (size_t I = 0; I != E; ++I) {
    if (!Scr.Need[I])
      continue;
    const TapeIns &Ins = Code[I];
    const unsigned Ar = arity(Ins.Op);
    if (RowInvariant[I]) {
      U[I] = scalarOp(Ins.Op, Ar >= 1 ? U[Ins.A] : 0.0,
                      Ar >= 2 ? U[Ins.B] : 0.0, Ar >= 3 ? U[Ins.C] : 0.0,
                      Ins.Value, FastTape);
      continue;
    }
    if (Scr.Col[I])
      continue; // Cache hit or DataRef, already resolved.
    // Cache-worthy misses the cache admits (second-touch policy; see
    // ColumnCache::admit) compute into a freshly owned column that is
    // handed to the cache for reuse by later candidates; everything
    // else computes in place in the flat register matrix, exactly like
    // evalBatch — no allocation, no cache traffic.
    double *R;
    std::shared_ptr<std::vector<double>> Buf;
    if (CacheWorthy[I] && Cache.admit(Keys[I], Begin)) {
      Buf = std::make_shared<std::vector<double>>(N);
      R = Buf->data();
    } else {
      R = Scr.Flat.data() + size_t(VecSlot[I]) * N;
    }
    const double *A = Operand(Ins.A, Scr.BcastA);
    const double *Bp = Ar >= 2 ? Operand(Ins.B, Scr.BcastB) : nullptr;
    const double *Cp = Ar >= 3 ? Operand(Ins.C, Scr.BcastC) : nullptr;
    applyVecOp(Ins.Op, A, Bp, Cp, R, N, FastTape);
    Scr.Col[I] = R;
    if (Buf) {
      Cache.insert(Keys[I], Begin, Buf);
      Scr.Pinned.push_back(std::move(Buf));
    }
  }

  if (RowInvariant[E - 1]) {
    const double V = U[E - 1];
    for (size_t J = 0; J != N; ++J)
      Out[J] = V;
    return;
  }
  const double *RootCol = Scr.Col[E - 1];
  for (size_t J = 0; J != N; ++J)
    Out[J] = RootCol[J];
}
