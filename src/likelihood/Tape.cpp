//===- likelihood/Tape.cpp - Flat evaluation tape for NumExpr DAGs --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Tape.h"

#include <cassert>
#include <cmath>

using namespace psketch;

Tape::Tape(const NumExprBuilder &B, NumId Root) {
  // Builder ids are already topologically ordered (operands are created
  // before their users), so one marking pass from the root followed by a
  // forward renumbering scan compiles the tape.
  std::vector<uint8_t> Live(Root + 1, 0);
  Live[Root] = 1;
  for (NumId Id = Root + 1; Id-- > 0;) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    if (N.Op == NumOp::Const || N.Op == NumOp::DataRef)
      continue;
    Live[N.A] = 1;
    if (numOpIsBinary(N.Op))
      Live[N.B] = 1;
  }
  std::vector<NumId> Renumber(Root + 1, 0);
  for (NumId Id = 0; Id <= Root; ++Id) {
    if (!Live[Id])
      continue;
    NumNode N = B.node(Id);
    if (N.Op != NumOp::Const && N.Op != NumOp::DataRef) {
      N.A = Renumber[N.A];
      if (numOpIsBinary(N.Op))
        N.B = Renumber[N.B];
    }
    Renumber[Id] = NumId(Code.size());
    Code.push_back(N);
  }
}

double Tape::eval(const std::vector<double> &Row,
                  std::vector<double> &Scratch) const {
  Scratch.resize(Code.size());
  double *R = Scratch.data();
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const NumNode &N = Code[I];
    switch (N.Op) {
    case NumOp::Const:
      R[I] = N.Value;
      break;
    case NumOp::DataRef: {
      size_t Slot = size_t(N.Value);
      assert(Slot < Row.size() && "data reference outside row");
      R[I] = Row[Slot];
      break;
    }
    case NumOp::Add:
      R[I] = R[N.A] + R[N.B];
      break;
    case NumOp::Sub:
      R[I] = R[N.A] - R[N.B];
      break;
    case NumOp::Mul:
      R[I] = R[N.A] * R[N.B];
      break;
    case NumOp::Div:
      R[I] = R[N.A] / R[N.B];
      break;
    case NumOp::Neg:
      R[I] = -R[N.A];
      break;
    case NumOp::Abs:
      R[I] = std::fabs(R[N.A]);
      break;
    case NumOp::Log:
      R[I] = std::log(R[N.A]);
      break;
    case NumOp::Exp:
      R[I] = std::exp(R[N.A]);
      break;
    case NumOp::Sqrt:
      R[I] = std::sqrt(R[N.A]);
      break;
    case NumOp::Erf:
      R[I] = std::erf(R[N.A]);
      break;
    case NumOp::Max:
      R[I] = R[N.A] > R[N.B] ? R[N.A] : R[N.B];
      break;
    case NumOp::Min:
      R[I] = R[N.A] < R[N.B] ? R[N.A] : R[N.B];
      break;
    case NumOp::Gt:
      R[I] = R[N.A] > R[N.B] ? 1.0 : 0.0;
      break;
    case NumOp::Eq:
      R[I] = R[N.A] == R[N.B] ? 1.0 : 0.0;
      break;
    }
  }
  return Code.empty() ? 0.0 : R[Code.size() - 1];
}

double Tape::eval(const std::vector<double> &Row) const {
  std::vector<double> Scratch;
  return eval(Row, Scratch);
}
