//===- likelihood/Tape.cpp - Flat evaluation tape for NumExpr DAGs --------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Tape.h"

#include <cassert>
#include <cmath>

using namespace psketch;

Tape::Tape(const NumExprBuilder &B, NumId Root) {
  // Builder ids are already topologically ordered (operands are created
  // before their users), so one marking pass from the root followed by a
  // forward renumbering scan compiles the tape.
  std::vector<uint8_t> Live(Root + 1, 0);
  Live[Root] = 1;
  for (NumId Id = Root + 1; Id-- > 0;) {
    if (!Live[Id])
      continue;
    const NumNode &N = B.node(Id);
    if (N.Op == NumOp::Const || N.Op == NumOp::DataRef)
      continue;
    Live[N.A] = 1;
    if (numOpIsBinary(N.Op))
      Live[N.B] = 1;
  }
  std::vector<NumId> Renumber(Root + 1, 0);
  for (NumId Id = 0; Id <= Root; ++Id) {
    if (!Live[Id])
      continue;
    NumNode N = B.node(Id);
    if (N.Op != NumOp::Const && N.Op != NumOp::DataRef) {
      N.A = Renumber[N.A];
      if (numOpIsBinary(N.Op))
        N.B = Renumber[N.B];
    }
    Renumber[Id] = NumId(Code.size());
    Code.push_back(N);
  }

  // Row-invariance analysis: an instruction's value is the same for
  // every data row iff it is not a DataRef and none of its transitive
  // operands is.  Invariant instructions are evaluated once per
  // evalBatch call; the varying ones get densely renumbered row-block
  // registers so the batched scratch matrix only holds what actually
  // varies.
  RowInvariant.resize(Code.size(), 0);
  VecSlot.resize(Code.size(), 0);
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const NumNode &N = Code[I];
    bool Invariant;
    if (N.Op == NumOp::DataRef)
      Invariant = false;
    else if (N.Op == NumOp::Const)
      Invariant = true;
    else
      Invariant = RowInvariant[N.A] &&
                  (!numOpIsBinary(N.Op) || RowInvariant[N.B]);
    RowInvariant[I] = Invariant ? 1 : 0;
    if (!Invariant)
      VecSlot[I] = uint32_t(NumVarying++);
  }
}

namespace {

/// One scalar step of the tape machine; shared by the row-invariant
/// hoist in evalBatch.  Performs exactly the IEEE operation the per-row
/// interpreter would, so hoisted values are bitwise identical.
double evalScalarOp(NumOp Op, double A, double B, double Value) {
  switch (Op) {
  case NumOp::Const:
    return Value;
  case NumOp::DataRef:
    assert(false && "data references are never row-invariant");
    return 0.0;
  case NumOp::Add:
    return A + B;
  case NumOp::Sub:
    return A - B;
  case NumOp::Mul:
    return A * B;
  case NumOp::Div:
    return A / B;
  case NumOp::Neg:
    return -A;
  case NumOp::Abs:
    return std::fabs(A);
  case NumOp::Log:
    return std::log(A);
  case NumOp::Exp:
    return std::exp(A);
  case NumOp::Sqrt:
    return std::sqrt(A);
  case NumOp::Erf:
    return std::erf(A);
  case NumOp::Max:
    return A > B ? A : B;
  case NumOp::Min:
    return A < B ? A : B;
  case NumOp::Gt:
    return A > B ? 1.0 : 0.0;
  case NumOp::Eq:
    return A == B ? 1.0 : 0.0;
  }
  return 0.0;
}

} // namespace

double Tape::eval(const std::vector<double> &Row,
                  std::vector<double> &Scratch) const {
  Scratch.resize(Code.size());
  double *R = Scratch.data();
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const NumNode &N = Code[I];
    switch (N.Op) {
    case NumOp::Const:
      R[I] = N.Value;
      break;
    case NumOp::DataRef: {
      size_t Slot = size_t(N.Value);
      assert(Slot < Row.size() && "data reference outside row");
      R[I] = Row[Slot];
      break;
    }
    case NumOp::Add:
      R[I] = R[N.A] + R[N.B];
      break;
    case NumOp::Sub:
      R[I] = R[N.A] - R[N.B];
      break;
    case NumOp::Mul:
      R[I] = R[N.A] * R[N.B];
      break;
    case NumOp::Div:
      R[I] = R[N.A] / R[N.B];
      break;
    case NumOp::Neg:
      R[I] = -R[N.A];
      break;
    case NumOp::Abs:
      R[I] = std::fabs(R[N.A]);
      break;
    case NumOp::Log:
      R[I] = std::log(R[N.A]);
      break;
    case NumOp::Exp:
      R[I] = std::exp(R[N.A]);
      break;
    case NumOp::Sqrt:
      R[I] = std::sqrt(R[N.A]);
      break;
    case NumOp::Erf:
      R[I] = std::erf(R[N.A]);
      break;
    case NumOp::Max:
      R[I] = R[N.A] > R[N.B] ? R[N.A] : R[N.B];
      break;
    case NumOp::Min:
      R[I] = R[N.A] < R[N.B] ? R[N.A] : R[N.B];
      break;
    case NumOp::Gt:
      R[I] = R[N.A] > R[N.B] ? 1.0 : 0.0;
      break;
    case NumOp::Eq:
      R[I] = R[N.A] == R[N.B] ? 1.0 : 0.0;
      break;
    }
  }
  return Code.empty() ? 0.0 : R[Code.size() - 1];
}

double Tape::eval(const std::vector<double> &Row) const {
  std::vector<double> Scratch;
  return eval(Row, Scratch);
}

void Tape::evalBatch(const ColumnarDataset &Cols, size_t Begin, size_t N,
                     double *Out, std::vector<double> &Scratch) const {
  if (N == 0)
    return;
  if (Code.empty()) {
    for (size_t R = 0; R != N; ++R)
      Out[R] = 0.0;
    return;
  }
  // Scratch layout: one N-wide row-block register per *varying*
  // instruction, one N-wide broadcast buffer for invariant operands of
  // mixed instructions, then one scalar slot per instruction for the
  // hoisted row-invariant values.
  Scratch.resize(NumVarying * N + N + Code.size());
  double *S = Scratch.data();
  double *Bcast = S + NumVarying * N;
  double *U = Bcast + N;
  for (size_t I = 0, E = Code.size(); I != E; ++I) {
    const NumNode &Ins = Code[I];
    if (RowInvariant[I]) {
      // Parameter-only subexpression: evaluate once, not once per row.
      const double OpA = Ins.Op == NumOp::Const ? 0.0 : U[Ins.A];
      const double OpB = numOpIsBinary(Ins.Op) ? U[Ins.B] : 0.0;
      U[I] = evalScalarOp(Ins.Op, OpA, OpB, Ins.Value);
      continue;
    }
    double *R = S + size_t(VecSlot[I]) * N;
    if (Ins.Op == NumOp::DataRef) {
      size_t Slot = size_t(Ins.Value);
      assert(Slot < Cols.numColumns() && "data reference outside row");
      const double *Col = Cols.column(Slot) + Begin;
      for (size_t J = 0; J != N; ++J)
        R[J] = Col[J];
      continue;
    }
    // A varying instruction has at least one varying operand, so at
    // most one operand needs the broadcast buffer.
    const double *A;
    const double *B = nullptr;
    if (RowInvariant[Ins.A]) {
      const double V = U[Ins.A];
      for (size_t J = 0; J != N; ++J)
        Bcast[J] = V;
      A = Bcast;
    } else {
      A = S + size_t(VecSlot[Ins.A]) * N;
    }
    if (numOpIsBinary(Ins.Op)) {
      if (RowInvariant[Ins.B]) {
        const double V = U[Ins.B];
        for (size_t J = 0; J != N; ++J)
          Bcast[J] = V;
        B = Bcast;
      } else {
        B = S + size_t(VecSlot[Ins.B]) * N;
      }
    }
    switch (Ins.Op) {
    case NumOp::Const:
    case NumOp::DataRef:
      break; // Handled above: Const is always invariant.
    case NumOp::Add:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] + B[J];
      break;
    case NumOp::Sub:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] - B[J];
      break;
    case NumOp::Mul:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] * B[J];
      break;
    case NumOp::Div:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] / B[J];
      break;
    case NumOp::Neg:
      for (size_t J = 0; J != N; ++J)
        R[J] = -A[J];
      break;
    case NumOp::Abs:
      for (size_t J = 0; J != N; ++J)
        R[J] = std::fabs(A[J]);
      break;
    case NumOp::Log:
      for (size_t J = 0; J != N; ++J)
        R[J] = std::log(A[J]);
      break;
    case NumOp::Exp:
      for (size_t J = 0; J != N; ++J)
        R[J] = std::exp(A[J]);
      break;
    case NumOp::Sqrt:
      for (size_t J = 0; J != N; ++J)
        R[J] = std::sqrt(A[J]);
      break;
    case NumOp::Erf:
      for (size_t J = 0; J != N; ++J)
        R[J] = std::erf(A[J]);
      break;
    case NumOp::Max:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] > B[J] ? A[J] : B[J];
      break;
    case NumOp::Min:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] < B[J] ? A[J] : B[J];
      break;
    case NumOp::Gt:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] > B[J] ? 1.0 : 0.0;
      break;
    case NumOp::Eq:
      for (size_t J = 0; J != N; ++J)
        R[J] = A[J] == B[J] ? 1.0 : 0.0;
      break;
    }
  }
  const size_t Root = Code.size() - 1;
  if (RowInvariant[Root]) {
    const double V = U[Root];
    for (size_t J = 0; J != N; ++J)
      Out[J] = V;
    return;
  }
  const double *Last = S + size_t(VecSlot[Root]) * N;
  for (size_t J = 0; J != N; ++J)
    Out[J] = Last[J];
}
