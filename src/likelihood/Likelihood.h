//===- likelihood/Likelihood.h - Compiled likelihood functions ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public likelihood API: compile a candidate program against a
/// dataset schema once (symbolic LL + tape), then evaluate
/// log Pr(D | P[H]) over all rows in linear time.  This is the fast
/// path that makes the MCMC search feasible (Section 4.3; compare
/// baseline/GridLikelihood.h for the integration-based comparator of
/// Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_LIKELIHOOD_H
#define PSKETCH_LIKELIHOOD_LIKELIHOOD_H

#include "likelihood/ColumnarDataset.h"
#include "likelihood/Dataset.h"
#include "likelihood/LLOperator.h"
#include "likelihood/Tape.h"

#include <memory>
#include <optional>
#include <string>

namespace psketch {

/// A compiled per-program likelihood function.
class LikelihoodFunction {
public:
  /// Compiles \p LP against the columns of \p Data.  Returns nullopt
  /// when the candidate is malformed (reads an unwritten slot, contains
  /// residual holes).  With \p Completions, \p LP may be a sketch
  /// template (lowered with KeepHoles) and each hole evaluates to its
  /// completion in place — same tape, bit for bit, as compiling the
  /// spliced candidate, without the per-candidate splice + re-lower.
  static std::optional<LikelihoodFunction>
  compile(const LoweredProgram &LP, const Dataset &Data,
          AlgebraConfig Config = {},
          const std::vector<ExprPtr> *Completions = nullptr);

  /// log-likelihood of one row.
  double logLikelihoodRow(const std::vector<double> &Row) const;

  /// Sum of per-row log-likelihoods over the whole dataset (the paper's
  /// data log-likelihood, Table 1).  Converts to a columnar view and
  /// takes the batched path below.
  double logLikelihood(const Dataset &Data) const;

  /// Batched sum of per-row log-likelihoods: evaluates the tape over
  /// BatchBlockRows-row blocks of \p Cols (Tape::evalBatch) and sums
  /// with a Kahan-compensated accumulator, so the total is independent
  /// of the block size and stable enough for MH acceptance decisions.
  double logLikelihood(const ColumnarDataset &Cols) const;

  /// Row-at-a-time reference sum (same per-row values, same Kahan
  /// accumulation order as the batched path); kept for the Figure 8
  /// batched-vs-row-wise comparison.
  double logLikelihoodRowwise(const Dataset &Data) const;

  /// Per-row log-likelihoods via the batched evaluator, one entry per
  /// row of \p Cols (benches and tests validating batched-vs-row-wise
  /// agreement).
  void logLikelihoodRows(const ColumnarDataset &Cols,
                         std::vector<double> &Out) const;

  /// Rows per evalBatch block: large enough that the per-instruction
  /// dispatch amortizes, small enough that a tape-size x block scratch
  /// stays in cache.
  static constexpr size_t BatchBlockRows = 256;

  /// Instruction count of the compiled tape.
  size_t tapeSize() const { return Compiled->size(); }

  /// The compiled tape (introspection: benches report how much of a
  /// candidate's tape the batched evaluator hoists as row-invariant).
  const Tape &tape() const { return *Compiled; }

private:
  LikelihoodFunction() = default;

  std::shared_ptr<Tape> Compiled;
  // Scratch buffers reused across calls (mutable: evaluation is
  // const).  They make one LikelihoodFunction instance non-reentrant;
  // concurrent chains each compile their own instance (DESIGN.md §6).
  mutable std::vector<double> Scratch;
  mutable std::vector<double> BatchScratch;
  mutable std::vector<double> BatchOut;
};

/// Builds the observed-slot map: every dataset column that names a slot
/// of \p LP.
std::unordered_map<std::string, unsigned>
observedSlots(const LoweredProgram &LP, const Dataset &Data);

/// Renders the final symbolic environment and the per-row likelihood
/// expression of \p LP against \p Data — the Figure 4 worked-example
/// view.  \p SlotsOfInterest selects the rows of the report (empty =
/// every slot).
std::string symbolicReport(const LoweredProgram &LP, const Dataset &Data,
                           const std::vector<std::string> &SlotsOfInterest,
                           AlgebraConfig Config = {});

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_LIKELIHOOD_H
