//===- likelihood/Likelihood.h - Compiled likelihood functions ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public likelihood API: compile a candidate program against a
/// dataset schema once (symbolic LL + tape), then evaluate
/// log Pr(D | P[H]) over all rows in linear time.  This is the fast
/// path that makes the MCMC search feasible (Section 4.3; compare
/// baseline/GridLikelihood.h for the integration-based comparator of
/// Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_LIKELIHOOD_H
#define PSKETCH_LIKELIHOOD_LIKELIHOOD_H

#include "likelihood/Dataset.h"
#include "likelihood/LLOperator.h"
#include "likelihood/Tape.h"

#include <memory>
#include <optional>
#include <string>

namespace psketch {

/// A compiled per-program likelihood function.
class LikelihoodFunction {
public:
  /// Compiles \p LP against the columns of \p Data.  Returns nullopt
  /// when the candidate is malformed (reads an unwritten slot, contains
  /// residual holes).
  static std::optional<LikelihoodFunction>
  compile(const LoweredProgram &LP, const Dataset &Data,
          AlgebraConfig Config = {});

  /// log-likelihood of one row.
  double logLikelihoodRow(const std::vector<double> &Row) const;

  /// Sum of per-row log-likelihoods over the whole dataset (the paper's
  /// data log-likelihood, Table 1).
  double logLikelihood(const Dataset &Data) const;

  /// Instruction count of the compiled tape.
  size_t tapeSize() const { return Compiled->size(); }

private:
  LikelihoodFunction() = default;

  std::shared_ptr<Tape> Compiled;
  // Scratch buffer reused across rows (mutable: evaluation is
  // const).
  mutable std::vector<double> Scratch;
};

/// Builds the observed-slot map: every dataset column that names a slot
/// of \p LP.
std::unordered_map<std::string, unsigned>
observedSlots(const LoweredProgram &LP, const Dataset &Data);

/// Renders the final symbolic environment and the per-row likelihood
/// expression of \p LP against \p Data — the Figure 4 worked-example
/// view.  \p SlotsOfInterest selects the rows of the report (empty =
/// every slot).
std::string symbolicReport(const LoweredProgram &LP, const Dataset &Data,
                           const std::vector<std::string> &SlotsOfInterest,
                           AlgebraConfig Config = {});

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_LIKELIHOOD_H
