//===- likelihood/Likelihood.h - Compiled likelihood functions ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public likelihood API: compile a candidate program against a
/// dataset schema once (symbolic LL + tape), then evaluate
/// log Pr(D | P[H]) over all rows in linear time.  This is the fast
/// path that makes the MCMC search feasible (Section 4.3; compare
/// baseline/GridLikelihood.h for the integration-based comparator of
/// Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_LIKELIHOOD_H
#define PSKETCH_LIKELIHOOD_LIKELIHOOD_H

#include "likelihood/ColumnCache.h"
#include "likelihood/ColumnarDataset.h"
#include "likelihood/Dataset.h"
#include "likelihood/LLOperator.h"
#include "likelihood/Tape.h"
#include "symbolic/Simplify.h"

#include <memory>
#include <optional>
#include <string>

namespace psketch {

class RowEvalContext;

/// Knobs of the likelihood compilation pipeline (DESIGN.md §9).  The
/// defaults are the fast path; every knob is bit-exact in default mode,
/// so toggling them changes cost, never scores.
struct LikelihoodOptions {
  /// Run the IEEE-exact NumExpr simplifier pass (symbolic/Simplify.h)
  /// before tape compilation.  `synth --no-simplify` turns it off.
  bool Simplify = true;

  /// Tape-level knobs: superinstruction fusion (`--no-fuse`) and
  /// explicit FMA contraction (`--ffast-tape`, value-changing).
  TapeOptions Tape;
};

/// Reusable state of the per-candidate compile hot path.  An MH chain
/// compiles thousands of same-shaped candidates back to back; routing
/// them through one scratch keeps the NumExpr builder's node storage
/// and hash table warm (no per-candidate allocation or rehash) and
/// caches the observed-slot map, which depends only on the program's
/// slots and the dataset's columns.  The cached map is keyed on the
/// addresses of the LoweredProgram and Dataset it was built from; a
/// compile call with different objects rebuilds it.
struct CompileScratch {
  NumExprBuilder Builder;
  std::unordered_map<std::string, unsigned> Observed;
  /// Slot-id-indexed resolution of Observed (dataset column, or ~0u for
  /// a latent slot), so the executor's per-variable-reference "is this
  /// slot observed?" test is an array index instead of a string hash.
  std::vector<unsigned> SlotObservedCol;
  /// The modeled observed slots as (column, slot id), column-ascending —
  /// the deterministic iteration order LLExecutor::run needs, computed
  /// once instead of sorted per candidate.
  std::vector<std::pair<unsigned, unsigned>> ObservedOrder;
  const void *ObservedLP = nullptr;
  const void *ObservedData = nullptr;
  /// Heap storage handed back by the previously compiled function
  /// (LikelihoodFunction::recycleStorage): the dead tape donates its
  /// vectors to the next Tape built here, and the evaluation scratch
  /// buffers — already sized for this dataset — carry straight over.
  /// Contents are never read, only capacity.
  std::shared_ptr<Tape> RecycledTape;
  /// Donor pool of the factored path (FactoredLikelihood.h): dead term
  /// tapes of the previous factored candidate, popped as construction
  /// donors for the next one's term tapes.  Capacity reuse only.
  std::vector<std::shared_ptr<Tape>> RecycledTermTapes;
  std::vector<double> RecRowScratch;
  std::vector<double> RecBatchScratch;
  std::vector<double> RecBatchOut;
  IncrementalScratch RecIncScratch;
  /// Block-partial scratch of the factored recombination
  /// (factoredLogLikelihood), kept warm like the buffers above.
  std::vector<double> RecBlockPartials;
};

/// A compiled per-program likelihood function.
class LikelihoodFunction {
public:
  /// Compiles \p LP against the columns of \p Data.  Returns nullopt
  /// when the candidate is malformed (reads an unwritten slot, contains
  /// residual holes).  With \p Completions, \p LP may be a sketch
  /// template (lowered with KeepHoles) and each hole evaluates to its
  /// completion in place — same tape, bit for bit, as compiling the
  /// spliced candidate, without the per-candidate splice + re-lower.
  /// \p Scratch, when provided, is reset and reused (see CompileScratch);
  /// compilation results are identical with or without it.
  static std::optional<LikelihoodFunction>
  compile(const LoweredProgram &LP, const Dataset &Data,
          AlgebraConfig Config = {},
          const std::vector<ExprPtr> *Completions = nullptr,
          const LikelihoodOptions &Opts = {},
          CompileScratch *Scratch = nullptr);

  /// log-likelihood of one row.
  double logLikelihoodRow(const std::vector<double> &Row) const;

  /// Sum of per-row log-likelihoods over the whole dataset (the paper's
  /// data log-likelihood, Table 1).  Converts to a columnar view and
  /// takes the batched path below.
  double logLikelihood(const Dataset &Data) const;

  /// Batched sum of per-row log-likelihoods: evaluates the tape over
  /// BatchBlockRows-row blocks of \p Cols (Tape::evalBatch), Kahan-sums
  /// each block into its own partial, and combines the partials with a
  /// fixed-shape pairwise tree reduction.  The reduction shape depends
  /// only on the row count — never on threads or schedule — so the
  /// total is bit-identical whether the blocks were evaluated serially
  /// or farmed to row workers via \p Par (DESIGN.md §11).  \p Par, when
  /// non-null and the dataset spans multiple blocks, distributes block
  /// evaluation over the run's row pool.
  double logLikelihood(const ColumnarDataset &Cols,
                       RowEvalContext *Par = nullptr) const;

  /// Batched sum via Tape::evalIncremental: row-blocks of subtrees
  /// already evaluated by earlier candidates are served from \p Cache.
  /// Block boundaries, kernels and the partial-sum reduction are
  /// identical to the plain overload, so the total is bit-identical to
  /// it whatever the cache contains.  With \p Par the cache must be in
  /// shared mode (ColumnCache::setShared).
  double logLikelihood(const ColumnarDataset &Cols, ColumnCache &Cache,
                       RowEvalContext *Par = nullptr) const;

  /// Row-at-a-time reference sum (same per-row values, same block
  /// partials and tree reduction as the batched path); kept for the
  /// Figure 8 batched-vs-row-wise comparison.
  double logLikelihoodRowwise(const Dataset &Data) const;

  /// Per-row log-likelihoods via the batched evaluator, one entry per
  /// row of \p Cols (benches and tests validating batched-vs-row-wise
  /// agreement).
  void logLikelihoodRows(const ColumnarDataset &Cols,
                         std::vector<double> &Out) const;

  /// Rows per evalBatch block: large enough that the per-instruction
  /// dispatch (and, on the incremental path, the per-block cache
  /// probing) amortizes, small enough that a tape-size x block scratch
  /// stays in cache.  The block size is score-neutral: rows are summed
  /// in dataset order with Kahan compensation whatever the partition.
  static constexpr size_t BatchBlockRows = 512;

  /// Instruction count of the compiled tape (after simplify + fusion).
  size_t tapeSize() const { return Compiled->size(); }

  /// Live node count of the likelihood DAG before the simplifier ran —
  /// the instruction count an unoptimized tape would have.  Equals the
  /// post-simplify count when Simplify was off.
  size_t rawTapeSize() const { return RawSize; }

  /// Counters of the simplifier run (zeros when Simplify was off).
  const SimplifyStats &simplifyStats() const { return SimpStats; }

  /// The compiled tape (introspection: benches report how much of a
  /// candidate's tape the batched evaluator hoists as row-invariant).
  const Tape &tape() const { return *Compiled; }

  /// Hands this function's heap storage back to \p S so the next
  /// compile() against the same scratch can reuse the capacity (tape
  /// vectors, evaluation buffers).  Call when the function is done
  /// scoring; it is left unusable afterwards.
  void recycleStorage(CompileScratch &S);

private:
  LikelihoodFunction() = default;

  std::shared_ptr<Tape> Compiled;
  size_t RawSize = 0;
  SimplifyStats SimpStats;
  // Scratch buffers reused across calls (mutable: evaluation is
  // const).  They make one LikelihoodFunction instance non-reentrant;
  // concurrent chains each compile their own instance (DESIGN.md §6).
  mutable std::vector<double> Scratch;
  mutable std::vector<double> BatchScratch;
  mutable std::vector<double> BatchOut;
  mutable IncrementalScratch IncScratch;
  /// One Kahan partial per row block, combined by the fixed-shape tree
  /// reduction.  Written at block index — disjoint slots — so row
  /// workers share it without synchronization.
  mutable std::vector<double> BlockPartials;
};

/// Builds the observed-slot map: every dataset column that names a slot
/// of \p LP.
std::unordered_map<std::string, unsigned>
observedSlots(const LoweredProgram &LP, const Dataset &Data);

/// Renders the final symbolic environment and the per-row likelihood
/// expression of \p LP against \p Data — the Figure 4 worked-example
/// view.  \p SlotsOfInterest selects the rows of the report (empty =
/// every slot).
std::string symbolicReport(const LoweredProgram &LP, const Dataset &Data,
                           const std::vector<std::string> &SlotsOfInterest,
                           AlgebraConfig Config = {});

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_LIKELIHOOD_H
