//===- likelihood/Dataset.h - Observed data tables -----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataset D of the synthesis problem: a table whose columns are
/// observed program slots (typically the returned variables, e.g.
/// `skills[0]`, `skills[1]`, ...) and whose rows are independent
/// observations — in the paper's evaluation, outputs collected from
/// running the target program (Section 5, "data set size" column of
/// Table 1).  Booleans are stored as 0/1.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_DATASET_H
#define PSKETCH_LIKELIHOOD_DATASET_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace psketch {

/// A column-named table of observations.
class Dataset {
public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> Columns);

  const std::vector<std::string> &columns() const { return Cols; }
  size_t numColumns() const { return Cols.size(); }
  size_t numRows() const { return Rows.size(); }
  bool empty() const { return Rows.empty(); }

  /// Index of \p Column, or ~0u when absent.
  unsigned columnId(const std::string &Column) const;
  bool hasColumn(const std::string &Column) const {
    return columnId(Column) != ~0u;
  }

  /// Appends a row; must have one value per column.
  void addRow(std::vector<double> Row);

  const std::vector<double> &row(size_t I) const {
    assert(I < Rows.size() && "row index out of range");
    return Rows[I];
  }
  const std::vector<std::vector<double>> &rows() const { return Rows; }

  /// Value at (\p Row, \p Column-name); column must exist.
  double at(size_t Row, const std::string &Column) const;

  /// All values of one column.
  std::vector<double> columnValues(const std::string &Column) const;

  /// Keeps only the first \p N rows.
  void truncate(size_t N);

  /// Order-sensitive FNV-1a hash of the column names and every cell's
  /// bit pattern — the dataset identity recorded in a synthesis run's
  /// trace manifest, so a trace can be matched to the exact data it
  /// was produced from.
  uint64_t fingerprint() const;

private:
  std::vector<std::string> Cols;
  std::unordered_map<std::string, unsigned> ColIds;
  std::vector<std::vector<double>> Rows;
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_DATASET_H
