//===- likelihood/ColumnarDataset.cpp - SoA view of a Dataset -------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/ColumnarDataset.h"

using namespace psketch;

ColumnarDataset::ColumnarDataset(const Dataset &Data)
    : Columns(Data.numColumns()), NRows(Data.numRows()) {
  for (std::vector<double> &Col : Columns)
    Col.resize(NRows);
  for (size_t R = 0; R != NRows; ++R) {
    const std::vector<double> &Row = Data.row(R);
    for (size_t C = 0, E = Columns.size(); C != E; ++C)
      Columns[C][R] = Row[C];
  }
}
