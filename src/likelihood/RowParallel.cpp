//===- likelihood/RowParallel.cpp - Deterministic row-block parallelism ---===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/RowParallel.h"

#include <algorithm>

using namespace psketch;

RowEvalContext::RowEvalContext(ThreadPool &P, unsigned Workers)
    : Pool(P), NumWorkers(std::max(1u, Workers)), Slots(NumWorkers),
      Tallies(NumWorkers) {}

void RowEvalContext::enableProfiling(unsigned SampleEvery) {
  Profiling = true;
  Profiles.assign(NumWorkers, TapeProfile());
  for (TapeProfile &P : Profiles)
    P.SampleEvery = SampleEvery > 0 ? SampleEvery : 1;
}

void RowEvalContext::forEachBlock(
    size_t NumBlocks, const std::function<void(size_t, WorkerSlot &)> &Fn) {
  if (NumBlocks == 0)
    return;

  const size_t Chunks = std::min<size_t>(NumWorkers, NumBlocks);
  if (Chunks <= 1) {
    // Degenerate fan-out: run inline; rows tally straight onto the
    // calling thread, no group round-trip.
    WorkerSlot &S = Slots[0];
    for (size_t B = 0; B != NumBlocks; ++B)
      Fn(B, S);
    return;
  }

  ThreadPool::Group G;
  for (size_t Ci = 0; Ci != Chunks; ++Ci) {
    const size_t Lo = NumBlocks * Ci / Chunks;
    const size_t Hi = NumBlocks * (Ci + 1) / Chunks;
    Pool.submit(G, [this, Lo, Hi, Ci, &Fn] {
      WorkerSlot &S = Slots[Ci];
      // While profiling, the task's slot profile is the worker
      // thread's sink for exactly this task (saved/restored like any
      // nested scope), so concurrent tasks never share a sink.
      TapeProfile *PrevProf = nullptr;
      if (Profiling)
        PrevProf = setThreadTapeProfile(&Profiles[Ci]);
      for (size_t B = Lo; B != Hi; ++B)
        Fn(B, S);
      if (Profiling)
        setThreadTapeProfile(PrevProf);
      // Drain the worker thread's tally into this task's slot; row
      // tasks always drain on exit, so the thread-local is zero at the
      // start of every task and tasks never see each other's rows.
      Tallies[Ci] = takeSimdRowTally();
    });
  }
  Pool.wait(G);

  for (size_t Ci = 0; Ci != Chunks; ++Ci) {
    creditSimdRowTally(Tallies[Ci]);
    Tallies[Ci] = SimdRowTally{};
  }
  if (Profiling) {
    // Slot-order merge into the chain's own sink (the group wait
    // ordered every worker write before these reads).
    if (TapeProfile *Chain = threadTapeProfile())
      for (size_t Ci = 0; Ci != Chunks; ++Ci)
        Chain->merge(Profiles[Ci]);
    for (size_t Ci = 0; Ci != Chunks; ++Ci)
      Profiles[Ci].reset();
  }
}
