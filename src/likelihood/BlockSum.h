//===- likelihood/BlockSum.h - Fixed-shape blocked summation --------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic per-row summation scheme shared by the monolithic
/// likelihood evaluator (Likelihood.cpp) and the factored per-term
/// evaluator (FactoredLikelihood.cpp): Kahan compensation inside each
/// fixed 512-row block, then a fixed-shape pairwise tree over the block
/// partials.  Both evaluators must use the exact same shape — it is the
/// determinism anchor for `--row-threads` and the bit-identity anchor
/// for `--no-slice-factoring` (DESIGN.md §11, §14).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_BLOCKSUM_H
#define PSKETCH_LIKELIHOOD_BLOCKSUM_H

#include <cstddef>
#include <vector>

namespace psketch {

/// Kahan-compensated accumulator for the rows *within* one block; block
/// partials are then combined by the fixed-shape tree reduction below.
/// Splitting the sum at the (fixed) block boundaries is what lets the
/// serial and row-parallel evaluators produce the same bits: every
/// partial depends only on its own block's rows, and the combination
/// order is a function of the block count alone.
struct KahanSum {
  double Sum = 0, Comp = 0;
  void add(double X) {
    double Y = X - Comp;
    double T = Sum + Y;
    Comp = (T - Sum) - Y;
    Sum = T;
  }
};

/// Fixed-shape pairwise tree reduction over the block partials, in
/// place.  The addition tree depends only on P.size(), so the result is
/// identical however (and on whatever thread) the partials were
/// produced — the determinism anchor of `--row-threads` (DESIGN.md
/// §11).  Pairwise combination also keeps the error growth logarithmic
/// in the block count, matching the intra-block Kahan compensation.
inline double reduceBlockPartials(std::vector<double> &P) {
  const size_t N = P.size();
  if (N == 0)
    return 0.0;
  for (size_t Stride = 1; Stride < N; Stride *= 2)
    for (size_t I = 0; I + Stride < N; I += 2 * Stride)
      P[I] += P[I + Stride];
  return P[0];
}

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_BLOCKSUM_H
