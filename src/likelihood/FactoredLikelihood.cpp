//===- likelihood/FactoredLikelihood.cpp - Per-term likelihood tapes ------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/FactoredLikelihood.h"

#include "likelihood/BlockSum.h"
#include "likelihood/RowParallel.h"
#include "obs/Profiler.h"
#include "obs/StageTimer.h"

#include <algorithm>

using namespace psketch;

std::optional<FactoredLikelihoodFunction> FactoredLikelihoodFunction::compile(
    const LoweredProgram &LP, const Dataset &Data, AlgebraConfig Config,
    const std::vector<ExprPtr> *Completions, const LikelihoodOptions &Opts,
    CompileScratch *Scratch, const TermPartition &Part,
    const std::vector<char> *NeedGroup) {
  if (!Part.valid())
    return std::nullopt;
  // Same warm-state preamble as LikelihoodFunction::compile: the
  // builder storage and the observed-slot tables are shared with the
  // monolithic path through the one CompileScratch per chain.
  NumExprBuilder LocalBuilder;
  NumExprBuilder &B = Scratch ? Scratch->Builder : LocalBuilder;
  if (Scratch)
    B.reset();
  std::unordered_map<std::string, unsigned> LocalObserved;
  const std::unordered_map<std::string, unsigned> *Observed;
  if (Scratch) {
    if (Scratch->ObservedLP != &LP || Scratch->ObservedData != &Data) {
      Scratch->Observed = observedSlots(LP, Data);
      Scratch->SlotObservedCol.assign(LP.Slots.size(), ~0u);
      Scratch->ObservedOrder.clear();
      for (const auto &[Name, Col] : Scratch->Observed) {
        unsigned SlotId = LP.slotId(Name);
        if (SlotId == ~0u)
          continue; // Observed column the program does not model.
        Scratch->SlotObservedCol[SlotId] = Col;
        Scratch->ObservedOrder.emplace_back(Col, SlotId);
      }
      std::sort(Scratch->ObservedOrder.begin(),
                Scratch->ObservedOrder.end());
      Scratch->ObservedLP = &LP;
      Scratch->ObservedData = &Data;
    }
    Observed = &Scratch->Observed;
  } else {
    LocalObserved = observedSlots(LP, Data);
    Observed = &LocalObserved;
  }
  MoGAlgebra Algebra(B, Config);
  LLExecutor Exec(Algebra, *Observed);
  if (Scratch)
    Exec.setResolvedObserved(&Scratch->SlotObservedCol,
                             &Scratch->ObservedOrder);
  if (Completions)
    Exec.setCompletions(Completions);
  std::optional<LLExecutor::TermRoots> Roots = Exec.runTerms(LP);
  if (!Roots)
    return std::nullopt;

  FactoredLikelihoodFunction F;
  F.Part = Part;
  const unsigned NumTerms = 1 + unsigned(Roots->Terms.size());
  if (Part.GroupOfTerm.size() != NumTerms)
    return std::nullopt; // Partition was computed for a different schema.
  if (NeedGroup && NeedGroup->size() != Part.NumGroups)
    return std::nullopt;
  F.GroupTerms.assign(Part.NumGroups, {});
  for (unsigned T = 0; T != NumTerms; ++T)
    F.GroupTerms[Part.GroupOfTerm[T]].push_back(T);

  auto TakeDonor = [&]() -> std::shared_ptr<Tape> {
    while (Scratch && !Scratch->RecycledTermTapes.empty()) {
      std::shared_ptr<Tape> D = std::move(Scratch->RecycledTermTapes.back());
      Scratch->RecycledTermTapes.pop_back();
      // Donate only sole-owner tapes — a still-shared tape may be
      // evaluating elsewhere (same rule as the monolithic recycler).
      if (D && D.use_count() == 1)
        return D;
    }
    return nullptr;
  };

  F.TermTapes.assign(NumTerms, nullptr);
  for (unsigned T = 0; T != NumTerms; ++T) {
    if (NeedGroup && !(*NeedGroup)[Part.GroupOfTerm[T]])
      continue; // Served from the caller's group-value cache.
    NumId Root = T == 0 ? Roots->Rho : Roots->Terms[T - 1];
    NumId TapeRoot = Root;
    if (Opts.Simplify) {
      SimplifyOptions SO;
      SO.FastMath = Opts.Tape.FastTape;
      SimplifyStats Stats;
      TapeRoot = simplifyNumExpr(B, Root, SO, &Stats);
      F.RawSize += Stats.NodesIn;
    } else {
      F.RawSize += liveNodeCount(B, Root);
    }
    std::shared_ptr<Tape> Donor = TakeDonor();
    F.TermTapes[T] =
        std::make_shared<Tape>(B, TapeRoot, Opts.Tape, Donor.get());
  }
  if (Scratch) {
    F.BatchScratch = std::move(Scratch->RecBatchScratch);
    F.IncScratch = std::move(Scratch->RecIncScratch);
  }
  return F;
}

void FactoredLikelihoodFunction::recycleStorage(CompileScratch &S) {
  for (std::shared_ptr<Tape> &T : TermTapes)
    if (T)
      S.RecycledTermTapes.push_back(std::move(T));
  TermTapes.clear();
  S.RecBatchScratch = std::move(BatchScratch);
  S.RecIncScratch = std::move(IncScratch);
}

size_t FactoredLikelihoodFunction::tapeSize() const {
  size_t Sum = 0;
  for (const std::shared_ptr<Tape> &T : TermTapes)
    if (T)
      Sum += T->size();
  return Sum;
}

size_t FactoredLikelihoodFunction::numFused() const {
  size_t Sum = 0;
  for (const std::shared_ptr<Tape> &T : TermTapes)
    if (T)
      Sum += T->numFused();
  return Sum;
}

void FactoredLikelihoodFunction::evalGroupRows(
    unsigned G, const ColumnarDataset &Cols,
    std::vector<std::vector<double>> &Out, ColumnCache *Cache,
    RowEvalContext *Par) const {
  ScopedStage Span(Stage::EvalBatch);
  constexpr size_t BlockRows = LikelihoodFunction::BatchBlockRows;
  const std::vector<unsigned> &Terms = GroupTerms[G];
  const size_t Rows = Cols.numRows();
  const size_t NumBlocks = (Rows + BlockRows - 1) / BlockRows;
  Out.resize(Terms.size());
  for (std::vector<double> &V : Out)
    V.resize(Rows);
  // Writes land at term-row offsets — disjoint ranges per block — so
  // row workers share the output vectors without synchronization, like
  // the monolithic BlockPartials array.
  if (Par && Par->workers() > 1 && NumBlocks > 1) {
    Par->forEachBlock(
        NumBlocks, [&](size_t Blk, RowEvalContext::WorkerSlot &S) {
          const size_t Begin = Blk * BlockRows;
          const size_t N = std::min(BlockRows, Rows - Begin);
          ProfTick WTick(threadTapeProfile());
          WTick.charge(ProfileCostCenter::Dispatch);
          for (size_t I = 0; I != Terms.size(); ++I) {
            const Tape &T = *TermTapes[Terms[I]];
            if (Cache)
              T.evalIncremental(Cols, Begin, N, Out[I].data() + Begin,
                                *Cache, S.Inc);
            else
              T.evalBatch(Cols, Begin, N, Out[I].data() + Begin,
                          S.BatchScratch);
          }
          WTick.reset();
        });
    return;
  }
  ProfTick Tick(threadTapeProfile());
  for (size_t Blk = 0; Blk != NumBlocks; ++Blk) {
    const size_t Begin = Blk * BlockRows;
    const size_t N = std::min(BlockRows, Rows - Begin);
    Tick.charge(ProfileCostCenter::Dispatch);
    for (size_t I = 0; I != Terms.size(); ++I) {
      const Tape &T = *TermTapes[Terms[I]];
      if (Cache)
        T.evalIncremental(Cols, Begin, N, Out[I].data() + Begin, *Cache,
                          IncScratch);
      else
        T.evalBatch(Cols, Begin, N, Out[I].data() + Begin, BatchScratch);
    }
    Tick.reset();
  }
}

double psketch::factoredLogLikelihood(
    const std::vector<const std::vector<double> *> &TermRows, size_t Rows,
    std::vector<double> &BlockPartials) {
  constexpr size_t BlockRows = LikelihoodFunction::BatchBlockRows;
  const size_t NumBlocks = (Rows + BlockRows - 1) / BlockRows;
  BlockPartials.assign(NumBlocks, 0.0);
  if (TermRows.empty())
    return 0.0;
  ProfTick Tick(threadTapeProfile());
  for (size_t Blk = 0; Blk != NumBlocks; ++Blk) {
    const size_t Begin = Blk * BlockRows;
    const size_t N = std::min(BlockRows, Rows - Begin);
    KahanSum Partial;
    for (size_t I = 0; I != N; ++I) {
      const size_t R = Begin + I;
      // The monolithic tape's final fold is a left-to-right Add chain
      // over the terms (LLOperator.cpp); re-adding the term values in
      // the same order reproduces its per-row double bit for bit.
      double V = (*TermRows[0])[R];
      for (size_t T = 1; T != TermRows.size(); ++T)
        V += (*TermRows[T])[R];
      Partial.add(V);
    }
    BlockPartials[Blk] = Partial.Sum;
    Tick.chargeOp(TapeSumOpIndex, N);
  }
  double Total = reduceBlockPartials(BlockPartials);
  Tick.charge(ProfileCostCenter::BlockSum);
  return Total;
}
