//===- likelihood/TapeKernelsSse2.cpp - SSE2-tier kernel TU ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
// Compiled with -msse2 -ffp-contract=off, only on x86-64 builds with
// PSKETCH_SIMD on.  2 x double lanes via explicit intrinsics; every op
// below is the packed form of the identical IEEE scalar operation
// (TapeKernelsImpl.h header lays out the bit-exactness argument).  No
// vector FMA at this tier — FastTape fused ops run std::fma per lane.
//
//===----------------------------------------------------------------------===//

#include "likelihood/TapeKernelsImpl.h"

#include <emmintrin.h>

namespace psketch {
namespace tapekernels {
namespace {

struct Sse2Traits {
  static constexpr size_t W = 2;
  static constexpr bool HasFma = false;
  using V = __m128d;
  static V load(const double *P) { return _mm_loadu_pd(P); }
  static void store(double *P, V X) { _mm_storeu_pd(P, X); }
  static V add(V A, V B) { return _mm_add_pd(A, B); }
  static V sub(V A, V B) { return _mm_sub_pd(A, B); }
  static V mul(V A, V B) { return _mm_mul_pd(A, B); }
  static V div(V A, V B) { return _mm_div_pd(A, B); }
  static V neg(V A) {
    // Sign-bit flip — bit-identical to scalar negation for every
    // operand class including NaN payloads.
    return _mm_xor_pd(A, _mm_set1_pd(-0.0));
  }
  static V abs(V A) {
    return _mm_andnot_pd(_mm_set1_pd(-0.0), A);
  }
  static V sqrt(V A) { return _mm_sqrt_pd(A); }
  static V max(V A, V B) {
    // maxpd computes exactly `a > b ? a : b` (second operand on NaN
    // and on +/-0 ties) — the tape's scalar Max semantics.
    return _mm_max_pd(A, B);
  }
  static V min(V A, V B) { return _mm_min_pd(A, B); }
  static V gt01(V A, V B) {
    // All-ones/all-zeros compare mask ANDed with 1.0: identical to the
    // scalar ternary, NaN comparing false included.
    return _mm_and_pd(_mm_cmpgt_pd(A, B), _mm_set1_pd(1.0));
  }
  static V eq01(V A, V B) {
    return _mm_and_pd(_mm_cmpeq_pd(A, B), _mm_set1_pd(1.0));
  }
  static V fma(V, V, V) { return _mm_setzero_pd(); } // Unused: !HasFma.
};

} // namespace

void applyVecOpSse2(TapeOp Op, const double *A, const double *B,
                    const double *C, double *R, size_t N,
                    TapeKernelFlags Flags) {
  applyVecOpT<Sse2Traits>(Op, A, B, C, R, N, Flags);
}

} // namespace tapekernels
} // namespace psketch
