//===- likelihood/TapeKernels.cpp - Kernel dispatch and row tallies -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/TapeKernels.h"

using namespace psketch;

namespace psketch {
namespace tapekernels {

// Per-tier entry points; the SSE2/AVX2 TUs exist only when CMake found
// the compiler flags on an x86-64 build with PSKETCH_SIMD on (the
// PSKETCH_HAVE_*_KERNELS defines mirror that).
void applyVecOpPortable(TapeOp Op, const double *A, const double *B,
                        const double *C, double *R, size_t N,
                        TapeKernelFlags Flags);
#ifdef PSKETCH_HAVE_SSE2_KERNELS
void applyVecOpSse2(TapeOp Op, const double *A, const double *B,
                    const double *C, double *R, size_t N,
                    TapeKernelFlags Flags);
#endif
#ifdef PSKETCH_HAVE_AVX2_KERNELS
void applyVecOpAvx2(TapeOp Op, const double *A, const double *B,
                    const double *C, double *R, size_t N,
                    TapeKernelFlags Flags);
#endif

} // namespace tapekernels
} // namespace psketch

SimdLevel psketch::maxCompiledSimdLevel() {
#ifdef PSKETCH_HAVE_AVX2_KERNELS
  return SimdLevel::Avx2;
#elif defined(PSKETCH_HAVE_SSE2_KERNELS)
  return SimdLevel::Sse2;
#else
  return SimdLevel::Scalar;
#endif
}

TapeKernel psketch::resolveTapeKernel(SimdLevel Requested) {
  // Fall through tier by tier: a level is used only when both the CPU
  // (the caller's Requested already reflects it) and this binary have
  // it.  Which tier runs never changes results — only throughput.
#ifdef PSKETCH_HAVE_AVX2_KERNELS
  if (Requested >= SimdLevel::Avx2)
    return {tapekernels::applyVecOpAvx2, SimdLevel::Avx2, 4};
#endif
#ifdef PSKETCH_HAVE_SSE2_KERNELS
  if (Requested >= SimdLevel::Sse2)
    return {tapekernels::applyVecOpSse2, SimdLevel::Sse2, 2};
#endif
  (void)Requested;
  return {tapekernels::applyVecOpPortable, SimdLevel::Scalar, 1};
}

namespace {

thread_local SimdRowTally Tally;

} // namespace

SimdRowTally psketch::takeSimdRowTally() {
  SimdRowTally T = Tally;
  Tally = SimdRowTally{};
  return T;
}

void psketch::creditSimdRowTally(const SimdRowTally &T) {
  Tally.RowsSimd += T.RowsSimd;
  Tally.RowsTail += T.RowsTail;
}

void psketch::tallySimdRows(size_t Rows, unsigned Width) {
  const size_t Tail = Width > 1 ? Rows % Width : Rows;
  Tally.RowsSimd += Rows - Tail;
  Tally.RowsTail += Tail;
}
