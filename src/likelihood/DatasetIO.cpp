//===- likelihood/DatasetIO.cpp - CSV import/export for datasets ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/DatasetIO.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace psketch;

namespace {

std::vector<std::string> splitCsvLine(const std::string &Line) {
  std::vector<std::string> Fields;
  std::string Field;
  for (char C : Line) {
    if (C == ',') {
      Fields.push_back(Field);
      Field.clear();
      continue;
    }
    if (C == '\r')
      continue;
    Field += C;
  }
  Fields.push_back(Field);
  // Trim surrounding whitespace per field.
  for (std::string &F : Fields) {
    size_t Begin = F.find_first_not_of(" \t");
    size_t End = F.find_last_not_of(" \t");
    F = Begin == std::string::npos ? "" : F.substr(Begin, End - Begin + 1);
  }
  return Fields;
}

} // namespace

std::optional<Dataset> psketch::readDatasetCsv(std::istream &In,
                                               DiagEngine &Diags) {
  std::string Line;
  if (!std::getline(In, Line)) {
    Diags.error({}, "empty CSV input");
    return std::nullopt;
  }
  std::vector<std::string> Header = splitCsvLine(Line);
  for (const std::string &Col : Header) {
    if (Col.empty()) {
      Diags.error({1, 1}, "empty column name in CSV header");
      return std::nullopt;
    }
  }
  Dataset Data(Header);
  unsigned LineNo = 1;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line == "\r")
      continue;
    std::vector<std::string> Fields = splitCsvLine(Line);
    if (Fields.size() != Header.size()) {
      Diags.error({LineNo, 1},
                  "row has " + std::to_string(Fields.size()) +
                      " fields, header has " +
                      std::to_string(Header.size()));
      return std::nullopt;
    }
    std::vector<double> Row;
    Row.reserve(Fields.size());
    for (const std::string &F : Fields) {
      char *End = nullptr;
      double V = std::strtod(F.c_str(), &End);
      if (F.empty() || End != F.c_str() + F.size()) {
        Diags.error({LineNo, 1}, "malformed numeric field '" + F + "'");
        return std::nullopt;
      }
      Row.push_back(V);
    }
    Data.addRow(std::move(Row));
  }
  return Data;
}

std::optional<Dataset>
psketch::readDatasetCsvFile(const std::string &Path, DiagEngine &Diags) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error({}, "cannot open '" + Path + "'");
    return std::nullopt;
  }
  return readDatasetCsv(In, Diags);
}

void psketch::writeDatasetCsv(std::ostream &Out, const Dataset &Data) {
  for (size_t I = 0, E = Data.numColumns(); I != E; ++I) {
    if (I)
      Out << ',';
    Out << Data.columns()[I];
  }
  Out << '\n';
  std::ostringstream Number;
  Number.precision(17);
  for (const std::vector<double> &Row : Data.rows()) {
    for (size_t I = 0, E = Row.size(); I != E; ++I) {
      if (I)
        Out << ',';
      Number.str("");
      Number << Row[I];
      Out << Number.str();
    }
    Out << '\n';
  }
}

bool psketch::writeDatasetCsvFile(const std::string &Path,
                                  const Dataset &Data) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  writeDatasetCsv(Out, Data);
  return true;
}
