//===- likelihood/Likelihood.cpp - Compiled likelihood functions ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Likelihood.h"

#include "likelihood/BlockSum.h"
#include "likelihood/RowParallel.h"
#include "obs/Profiler.h"
#include "obs/StageTimer.h"

#include <algorithm>
#include <sstream>

using namespace psketch;

std::unordered_map<std::string, unsigned>
psketch::observedSlots(const LoweredProgram &LP, const Dataset &Data) {
  std::unordered_map<std::string, unsigned> Observed;
  for (unsigned Col = 0, E = unsigned(Data.numColumns()); Col != E; ++Col) {
    const std::string &Name = Data.columns()[Col];
    if (LP.slotId(Name) != ~0u)
      Observed[Name] = Col;
  }
  return Observed;
}

std::optional<LikelihoodFunction>
LikelihoodFunction::compile(const LoweredProgram &LP, const Dataset &Data,
                            AlgebraConfig Config,
                            const std::vector<ExprPtr> *Completions,
                            const LikelihoodOptions &Opts,
                            CompileScratch *Scratch) {
  // With a scratch, the builder's storage and the observed-slot map
  // stay warm across the caller's candidate loop; the compilation
  // itself is oblivious to the reuse.
  NumExprBuilder LocalBuilder;
  NumExprBuilder &B = Scratch ? Scratch->Builder : LocalBuilder;
  if (Scratch)
    B.reset();
  std::unordered_map<std::string, unsigned> LocalObserved;
  const std::unordered_map<std::string, unsigned> *Observed;
  if (Scratch) {
    if (Scratch->ObservedLP != &LP || Scratch->ObservedData != &Data) {
      Scratch->Observed = observedSlots(LP, Data);
      // Resolve the name map into slot-id-indexed tables once; the
      // executor then never hashes a slot name twice per reference.
      Scratch->SlotObservedCol.assign(LP.Slots.size(), ~0u);
      Scratch->ObservedOrder.clear();
      for (const auto &[Name, Col] : Scratch->Observed) {
        unsigned SlotId = LP.slotId(Name);
        if (SlotId == ~0u)
          continue; // Observed column the program does not model.
        Scratch->SlotObservedCol[SlotId] = Col;
        Scratch->ObservedOrder.emplace_back(Col, SlotId);
      }
      std::sort(Scratch->ObservedOrder.begin(),
                Scratch->ObservedOrder.end());
      Scratch->ObservedLP = &LP;
      Scratch->ObservedData = &Data;
    }
    Observed = &Scratch->Observed;
  } else {
    LocalObserved = observedSlots(LP, Data);
    Observed = &LocalObserved;
  }
  MoGAlgebra Algebra(B, Config);
  LLExecutor Exec(Algebra, *Observed);
  if (Scratch)
    Exec.setResolvedObserved(&Scratch->SlotObservedCol,
                             &Scratch->ObservedOrder);
  if (Completions)
    Exec.setCompletions(Completions);
  std::optional<NumId> Root = Exec.run(LP);
  if (!Root)
    return std::nullopt;
  LikelihoodFunction F;
  NumId TapeRoot = *Root;
  if (Opts.Simplify) {
    SimplifyOptions SO;
    SO.FastMath = Opts.Tape.FastTape;
    TapeRoot = simplifyNumExpr(B, *Root, SO, &F.SimpStats);
    F.RawSize = F.SimpStats.NodesIn;
  } else {
    F.RawSize = liveNodeCount(B, *Root);
  }
  // Recycled storage (see CompileScratch): the previous candidate's
  // dead tape donates its vectors, and the evaluation buffers carry
  // over pre-sized.  Donate only when this compile is the tape's sole
  // owner — a still-shared tape may be evaluating elsewhere.
  Tape *Donor = nullptr;
  std::shared_ptr<Tape> DonorHold;
  if (Scratch && Scratch->RecycledTape &&
      Scratch->RecycledTape.use_count() == 1) {
    DonorHold = std::move(Scratch->RecycledTape);
    Donor = DonorHold.get();
  }
  if (Scratch)
    Scratch->RecycledTape.reset();
  F.Compiled = std::make_shared<Tape>(B, TapeRoot, Opts.Tape, Donor);
  if (Scratch) {
    F.Scratch = std::move(Scratch->RecRowScratch);
    F.BatchScratch = std::move(Scratch->RecBatchScratch);
    F.BatchOut = std::move(Scratch->RecBatchOut);
    F.IncScratch = std::move(Scratch->RecIncScratch);
  }
  return F;
}

void LikelihoodFunction::recycleStorage(CompileScratch &S) {
  S.RecycledTape = std::move(Compiled);
  S.RecRowScratch = std::move(Scratch);
  S.RecBatchScratch = std::move(BatchScratch);
  S.RecBatchOut = std::move(BatchOut);
  S.RecIncScratch = std::move(IncScratch);
}

double
LikelihoodFunction::logLikelihoodRow(const std::vector<double> &Row) const {
  return Compiled->eval(Row, Scratch);
}

double LikelihoodFunction::logLikelihood(const Dataset &Data) const {
  return logLikelihood(ColumnarDataset(Data));
}

double LikelihoodFunction::logLikelihood(const ColumnarDataset &Cols,
                                         RowEvalContext *Par) const {
  // Charged to the EvalBatch stage when the calling chain installed a
  // sink; a no-op (no clock read) otherwise.
  ScopedStage Span(Stage::EvalBatch);
  const size_t Rows = Cols.numRows();
  const size_t NumBlocks = (Rows + BatchBlockRows - 1) / BatchBlockRows;
  // Profiler charges (--profile; every ProfTick member is a no-op when
  // no sink is installed): the evaluators attribute their own interior,
  // these ticks charge the Kahan row-reduction to the "sum"
  // pseudo-opcode and the glue around it to cost centers, so the whole
  // EvalBatch span is charged somewhere.
  ProfTick Tick(threadTapeProfile());
  BlockPartials.assign(NumBlocks, 0.0);
  if (Par && Par->workers() > 1 && NumBlocks > 1) {
    Par->forEachBlock(
        NumBlocks, [&](size_t Blk, RowEvalContext::WorkerSlot &S) {
          const size_t Begin = Blk * BatchBlockRows;
          const size_t N = std::min(BatchBlockRows, Rows - Begin);
          // Workers carry their own profile sink, so the tick is
          // per-block and per-thread here.
          ProfTick WTick(threadTapeProfile());
          S.Out.resize(BatchBlockRows);
          WTick.charge(ProfileCostCenter::Dispatch);
          Compiled->evalBatch(Cols, Begin, N, S.Out.data(), S.BatchScratch);
          WTick.reset();
          KahanSum Partial;
          for (size_t I = 0; I != N; ++I)
            Partial.add(S.Out[I]);
          BlockPartials[Blk] = Partial.Sum;
          WTick.chargeOp(TapeSumOpIndex, N);
        });
    Tick.reset();
    double Total = reduceBlockPartials(BlockPartials);
    Tick.charge(ProfileCostCenter::BlockSum);
    return Total;
  }
  BatchOut.resize(std::min(Rows, BatchBlockRows));
  for (size_t Blk = 0; Blk != NumBlocks; ++Blk) {
    const size_t Begin = Blk * BatchBlockRows;
    const size_t N = std::min(BatchBlockRows, Rows - Begin);
    Tick.charge(ProfileCostCenter::Dispatch);
    Compiled->evalBatch(Cols, Begin, N, BatchOut.data(), BatchScratch);
    Tick.reset();
    KahanSum Partial;
    for (size_t I = 0; I != N; ++I)
      Partial.add(BatchOut[I]);
    BlockPartials[Blk] = Partial.Sum;
    Tick.chargeOp(TapeSumOpIndex, N);
  }
  double Total = reduceBlockPartials(BlockPartials);
  Tick.charge(ProfileCostCenter::BlockSum);
  return Total;
}

double LikelihoodFunction::logLikelihood(const ColumnarDataset &Cols,
                                         ColumnCache &Cache,
                                         RowEvalContext *Par) const {
  ScopedStage Span(Stage::EvalBatch);
  const size_t Rows = Cols.numRows();
  const size_t NumBlocks = (Rows + BatchBlockRows - 1) / BatchBlockRows;
  ProfTick Tick(threadTapeProfile());
  BlockPartials.assign(NumBlocks, 0.0);
  if (Par && Par->workers() > 1 && NumBlocks > 1) {
    Par->forEachBlock(
        NumBlocks, [&](size_t Blk, RowEvalContext::WorkerSlot &S) {
          const size_t Begin = Blk * BatchBlockRows;
          const size_t N = std::min(BatchBlockRows, Rows - Begin);
          ProfTick WTick(threadTapeProfile());
          S.Out.resize(BatchBlockRows);
          WTick.charge(ProfileCostCenter::Dispatch);
          Compiled->evalIncremental(Cols, Begin, N, S.Out.data(), Cache,
                                    S.Inc);
          WTick.reset();
          KahanSum Partial;
          for (size_t I = 0; I != N; ++I)
            Partial.add(S.Out[I]);
          BlockPartials[Blk] = Partial.Sum;
          WTick.chargeOp(TapeSumOpIndex, N);
        });
    Tick.reset();
    double Total = reduceBlockPartials(BlockPartials);
    Tick.charge(ProfileCostCenter::BlockSum);
    return Total;
  }
  BatchOut.resize(std::min(Rows, BatchBlockRows));
  for (size_t Blk = 0; Blk != NumBlocks; ++Blk) {
    const size_t Begin = Blk * BatchBlockRows;
    const size_t N = std::min(BatchBlockRows, Rows - Begin);
    Tick.charge(ProfileCostCenter::Dispatch);
    Compiled->evalIncremental(Cols, Begin, N, BatchOut.data(), Cache,
                              IncScratch);
    Tick.reset();
    KahanSum Partial;
    for (size_t I = 0; I != N; ++I)
      Partial.add(BatchOut[I]);
    BlockPartials[Blk] = Partial.Sum;
    Tick.chargeOp(TapeSumOpIndex, N);
  }
  double Total = reduceBlockPartials(BlockPartials);
  Tick.charge(ProfileCostCenter::BlockSum);
  return Total;
}

void LikelihoodFunction::logLikelihoodRows(const ColumnarDataset &Cols,
                                           std::vector<double> &Out) const {
  const size_t Rows = Cols.numRows();
  Out.resize(Rows);
  for (size_t Begin = 0; Begin < Rows; Begin += BatchBlockRows) {
    size_t N = std::min(BatchBlockRows, Rows - Begin);
    Compiled->evalBatch(Cols, Begin, N, Out.data() + Begin, BatchScratch);
  }
}

double LikelihoodFunction::logLikelihoodRowwise(const Dataset &Data) const {
  const size_t Rows = Data.numRows();
  const size_t NumBlocks = (Rows + BatchBlockRows - 1) / BatchBlockRows;
  BlockPartials.assign(NumBlocks, 0.0);
  for (size_t Blk = 0; Blk != NumBlocks; ++Blk) {
    const size_t Begin = Blk * BatchBlockRows;
    const size_t N = std::min(BatchBlockRows, Rows - Begin);
    KahanSum Partial;
    for (size_t I = 0; I != N; ++I)
      Partial.add(Compiled->eval(Data.rows()[Begin + I], Scratch));
    BlockPartials[Blk] = Partial.Sum;
  }
  return reduceBlockPartials(BlockPartials);
}

namespace {

std::string describeValue(const NumExprBuilder &B, const SymValue &V) {
  std::ostringstream OS;
  switch (V.kind()) {
  case SymValue::Kind::Known:
    OS << "Known(" << B.str(V.knownValue()) << ")";
    return OS.str();
  case SymValue::Kind::Bern:
    OS << "Bernoulli(p = " << B.str(V.bernProb()) << ")";
    return OS.str();
  case SymValue::Kind::MoG: {
    OS << "MoG(" << V.components().size() << "; ";
    bool First = true;
    for (const MoGComponent &C : V.components()) {
      if (!First)
        OS << " + ";
      First = false;
      OS << B.str(C.W) << " * N(" << B.str(C.Mu) << ", " << B.str(C.Sigma)
         << ")";
    }
    OS << ")";
    return OS.str();
  }
  case SymValue::Kind::Unit:
    return "Unit";
  }
  return "<invalid>";
}

} // namespace

std::string
psketch::symbolicReport(const LoweredProgram &LP, const Dataset &Data,
                        const std::vector<std::string> &SlotsOfInterest,
                        AlgebraConfig Config) {
  NumExprBuilder B;
  MoGAlgebra Algebra(B, Config);
  auto Observed = observedSlots(LP, Data);
  LLExecutor Exec(Algebra, Observed);
  std::optional<NumId> Root = Exec.run(LP);
  std::ostringstream OS;
  if (!Root) {
    OS << "<malformed candidate>\n";
    return OS.str();
  }
  const std::vector<std::string> &Slots =
      SlotsOfInterest.empty() ? LP.Slots : SlotsOfInterest;
  for (const std::string &Slot : Slots) {
    const SymValue *V = Exec.finalValue(Slot);
    OS << Slot << " |-> " << (V ? describeValue(B, *V) : "<undefined>")
       << '\n';
  }
  OS << "rho |-> " << B.str(Exec.constraintProduct()) << '\n';
  OS << "log Pr(D | P[H]) per row |-> " << B.str(*Root) << '\n';
  return OS.str();
}
