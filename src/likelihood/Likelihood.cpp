//===- likelihood/Likelihood.cpp - Compiled likelihood functions ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Likelihood.h"

#include "obs/StageTimer.h"

#include <algorithm>
#include <sstream>

using namespace psketch;

std::unordered_map<std::string, unsigned>
psketch::observedSlots(const LoweredProgram &LP, const Dataset &Data) {
  std::unordered_map<std::string, unsigned> Observed;
  for (unsigned Col = 0, E = unsigned(Data.numColumns()); Col != E; ++Col) {
    const std::string &Name = Data.columns()[Col];
    if (LP.slotId(Name) != ~0u)
      Observed[Name] = Col;
  }
  return Observed;
}

std::optional<LikelihoodFunction>
LikelihoodFunction::compile(const LoweredProgram &LP, const Dataset &Data,
                            AlgebraConfig Config,
                            const std::vector<ExprPtr> *Completions) {
  NumExprBuilder B;
  MoGAlgebra Algebra(B, Config);
  auto Observed = observedSlots(LP, Data);
  LLExecutor Exec(Algebra, Observed);
  if (Completions)
    Exec.setCompletions(Completions);
  std::optional<NumId> Root = Exec.run(LP);
  if (!Root)
    return std::nullopt;
  LikelihoodFunction F;
  F.Compiled = std::make_shared<Tape>(B, *Root);
  return F;
}

namespace {

/// Kahan-compensated accumulator: the sum of per-row log-likelihoods
/// comes out the same whether rows arrive one at a time or in blocks,
/// which keeps MH acceptance decisions independent of the evaluation
/// path.
struct KahanSum {
  double Sum = 0, Comp = 0;
  void add(double X) {
    double Y = X - Comp;
    double T = Sum + Y;
    Comp = (T - Sum) - Y;
    Sum = T;
  }
};

} // namespace

double
LikelihoodFunction::logLikelihoodRow(const std::vector<double> &Row) const {
  return Compiled->eval(Row, Scratch);
}

double LikelihoodFunction::logLikelihood(const Dataset &Data) const {
  return logLikelihood(ColumnarDataset(Data));
}

double LikelihoodFunction::logLikelihood(const ColumnarDataset &Cols) const {
  // Charged to the EvalBatch stage when the calling chain installed a
  // sink; a no-op (no clock read) otherwise.
  ScopedStage Span(Stage::EvalBatch);
  KahanSum Total;
  const size_t Rows = Cols.numRows();
  BatchOut.resize(std::min(Rows, BatchBlockRows));
  for (size_t Begin = 0; Begin < Rows; Begin += BatchBlockRows) {
    size_t N = std::min(BatchBlockRows, Rows - Begin);
    Compiled->evalBatch(Cols, Begin, N, BatchOut.data(), BatchScratch);
    for (size_t I = 0; I != N; ++I)
      Total.add(BatchOut[I]);
  }
  return Total.Sum;
}

void LikelihoodFunction::logLikelihoodRows(const ColumnarDataset &Cols,
                                           std::vector<double> &Out) const {
  const size_t Rows = Cols.numRows();
  Out.resize(Rows);
  for (size_t Begin = 0; Begin < Rows; Begin += BatchBlockRows) {
    size_t N = std::min(BatchBlockRows, Rows - Begin);
    Compiled->evalBatch(Cols, Begin, N, Out.data() + Begin, BatchScratch);
  }
}

double LikelihoodFunction::logLikelihoodRowwise(const Dataset &Data) const {
  KahanSum Total;
  for (const std::vector<double> &Row : Data.rows())
    Total.add(Compiled->eval(Row, Scratch));
  return Total.Sum;
}

namespace {

std::string describeValue(const NumExprBuilder &B, const SymValue &V) {
  std::ostringstream OS;
  switch (V.kind()) {
  case SymValue::Kind::Known:
    OS << "Known(" << B.str(V.knownValue()) << ")";
    return OS.str();
  case SymValue::Kind::Bern:
    OS << "Bernoulli(p = " << B.str(V.bernProb()) << ")";
    return OS.str();
  case SymValue::Kind::MoG: {
    OS << "MoG(" << V.components().size() << "; ";
    bool First = true;
    for (const MoGComponent &C : V.components()) {
      if (!First)
        OS << " + ";
      First = false;
      OS << B.str(C.W) << " * N(" << B.str(C.Mu) << ", " << B.str(C.Sigma)
         << ")";
    }
    OS << ")";
    return OS.str();
  }
  case SymValue::Kind::Unit:
    return "Unit";
  }
  return "<invalid>";
}

} // namespace

std::string
psketch::symbolicReport(const LoweredProgram &LP, const Dataset &Data,
                        const std::vector<std::string> &SlotsOfInterest,
                        AlgebraConfig Config) {
  NumExprBuilder B;
  MoGAlgebra Algebra(B, Config);
  auto Observed = observedSlots(LP, Data);
  LLExecutor Exec(Algebra, Observed);
  std::optional<NumId> Root = Exec.run(LP);
  std::ostringstream OS;
  if (!Root) {
    OS << "<malformed candidate>\n";
    return OS.str();
  }
  const std::vector<std::string> &Slots =
      SlotsOfInterest.empty() ? LP.Slots : SlotsOfInterest;
  for (const std::string &Slot : Slots) {
    const SymValue *V = Exec.finalValue(Slot);
    OS << Slot << " |-> " << (V ? describeValue(B, *V) : "<undefined>")
       << '\n';
  }
  OS << "rho |-> " << B.str(Exec.constraintProduct()) << '\n';
  OS << "log Pr(D | P[H]) per row |-> " << B.str(*Root) << '\n';
  return OS.str();
}
