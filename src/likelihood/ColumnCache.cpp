//===- likelihood/ColumnCache.cpp - Cross-candidate column cache ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/ColumnCache.h"

using namespace psketch;

namespace {

/// Finalizer of splitmix64: a full-avalanche 64 -> 64 mix.
uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

} // namespace

SubtreeKey SubtreeKey::leaf(uint64_t Tag, uint64_t Payload) {
  // Two independently-seeded mixes give the two 64-bit halves; each half
  // avalanches over both inputs.
  SubtreeKey K;
  K.Hi = mix64(Tag * 0x9e3779b97f4a7c15ULL ^ mix64(Payload));
  K.Lo = mix64(Payload * 0xc2b2ae3d27d4eb4fULL ^ Tag ^
               0x165667b19e3779f9ULL);
  return K;
}

SubtreeKey SubtreeKey::combine(uint64_t Tag, const SubtreeKey &A,
                               const SubtreeKey &B) {
  // Order-sensitive Merkle combine: distinct multipliers for the A and B
  // halves keep combine(t, a, b) and combine(t, b, a) unrelated.
  SubtreeKey K;
  K.Hi = mix64(Tag * 0x9e3779b97f4a7c15ULL ^ (A.Hi + 0x8ebc6af09c88c6e3ULL) ^
               mix64(B.Hi * 0x589965cc75374cc3ULL));
  K.Lo = mix64(Tag * 0xc2b2ae3d27d4eb4fULL ^ (A.Lo * 0xd6e8feb86659fd93ULL) ^
               mix64(B.Lo + 0xa0761d6478bd642fULL));
  return K;
}

size_t ColumnCache::findSlot(const EntryKey &K) const {
  if (Slots.empty())
    return SIZE_MAX;
  size_t I = hashKey(K) & Mask;
  // Linear probe: stop at the first truly-empty slot; tombstones keep
  // the probe chain alive.
  while (Slots[I].State != 0) {
    if (Slots[I].State == 1 && Slots[I].Key == K)
      return I;
    I = (I + 1) & Mask;
  }
  return SIZE_MAX;
}

void ColumnCache::unlink(size_t I) {
  Slot &S = Slots[I];
  if (S.Prev)
    Slots[S.Prev - 1].Next = S.Next;
  else
    Head = S.Next;
  if (S.Next)
    Slots[S.Next - 1].Prev = S.Prev;
  else
    Tail = S.Prev;
  S.Prev = S.Next = 0;
}

void ColumnCache::linkFront(size_t I) {
  Slot &S = Slots[I];
  S.Prev = 0;
  S.Next = Head;
  if (Head)
    Slots[Head - 1].Prev = uint32_t(I + 1);
  Head = uint32_t(I + 1);
  if (!Tail)
    Tail = uint32_t(I + 1);
}

void ColumnCache::touch(size_t I) {
  if (Head == uint32_t(I + 1))
    return; // Already most recent.
  unlink(I);
  linkFront(I);
}

void ColumnCache::evictTail() {
  const size_t I = size_t(Tail - 1);
  Slot &S = Slots[I];
  Bytes -= S.Col->size() * sizeof(double);
  unlink(I);
  S.Col.reset();
  S.State = 2;
  --Count;
  ++Tombstones;
  ++Evictions;
}

void ColumnCache::rehash(size_t NewCap) {
  // Collect the survivors in LRU-to-MRU order, then relink them in that
  // order so recency is preserved exactly.
  std::vector<Slot> Old = std::move(Slots);
  const uint32_t OldTail = Tail;
  Slots.assign(NewCap, Slot{});
  Mask = NewCap - 1;
  Head = Tail = 0;
  Tombstones = 0;
  for (uint32_t At = OldTail; At;) {
    Slot &O = Old[At - 1];
    size_t I = hashKey(O.Key) & Mask;
    while (Slots[I].State != 0)
      I = (I + 1) & Mask;
    Slots[I].Key = O.Key;
    Slots[I].Col = std::move(O.Col);
    Slots[I].State = 1;
    linkFront(I);
    At = O.Prev;
  }
}

ColumnCache::ColumnPtr ColumnCache::lookup(const SubtreeKey &Key,
                                           uint64_t Block) {
  std::unique_lock<std::mutex> Lock(Mtx, std::defer_lock);
  if (Shared)
    Lock.lock();
  const size_t I = findSlot(EntryKey{Key, Block});
  if (I == SIZE_MAX) {
    ++Misses;
    return nullptr;
  }
  ++Hits;
  touch(I); // Refresh recency.
  return Slots[I].Col;
}

void ColumnCache::insert(const SubtreeKey &Key, uint64_t Block,
                         ColumnPtr Col) {
  if (Budget == 0 || !Col)
    return;
  std::unique_lock<std::mutex> Lock(Mtx, std::defer_lock);
  if (Shared)
    Lock.lock();
  ++Inserts;
  const EntryKey EK{Key, Block};
  const size_t ColBytes = Col->size() * sizeof(double);
  size_t I = findSlot(EK);
  if (I != SIZE_MAX) {
    Bytes -= Slots[I].Col->size() * sizeof(double);
    Slots[I].Col = std::move(Col);
    Bytes += ColBytes;
    touch(I);
  } else {
    // Keep the probe chains short: grow/compact at 3/4 load counting
    // tombstones (they lengthen probes exactly like live entries).
    if (Slots.empty())
      rehash(256);
    else if ((Count + Tombstones + 1) * 4 > Slots.size() * 3)
      rehash(Count * 4 > Slots.size() ? Slots.size() * 2 : Slots.size());
    I = hashKey(EK) & Mask;
    while (Slots[I].State == 1)
      I = (I + 1) & Mask;
    if (Slots[I].State == 2)
      --Tombstones;
    Slots[I].Key = EK;
    Slots[I].Col = std::move(Col);
    Slots[I].State = 1;
    ++Count;
    linkFront(I);
    Bytes += ColBytes;
  }
  // Evict from the cold end until the budget holds; never evict the
  // entry just touched (stop when it is the only one left).
  while (Bytes > Budget && Count > 1)
    evictTail();
}

bool ColumnCache::admit(const SubtreeKey &Key, uint64_t Block) {
  if (Budget == 0)
    return false;
  std::unique_lock<std::mutex> Lock(Mtx, std::defer_lock);
  if (Shared)
    Lock.lock();
  // 8K slots x 8 bytes.  A direct-mapped table forgets old fingerprints
  // by overwrite, which is exactly the retention we want: "missed
  // recently" is the signal, not "missed ever".
  constexpr size_t TableSize = 1u << 13;
  if (Seen.empty())
    Seen.assign(TableSize, 0);
  uint64_t Fp = Key.Lo ^ (Key.Hi * 0x9e3779b97f4a7c15ULL) ^
                (Block * 0xff51afd7ed558ccdULL);
  Fp += Fp == 0; // Reserve 0 for "empty slot".
  uint64_t &Slot = Seen[size_t(Fp) & (TableSize - 1)];
  if (Slot == Fp)
    return true;
  Slot = Fp;
  return false;
}

void ColumnCache::clear() {
  std::unique_lock<std::mutex> Lock(Mtx, std::defer_lock);
  if (Shared)
    Lock.lock();
  Slots.clear();
  Slots.shrink_to_fit();
  Mask = 0;
  Count = 0;
  Tombstones = 0;
  Head = Tail = 0;
  Seen.clear();
  Bytes = 0;
}
