//===- likelihood/LLOperator.cpp - The LL(.) symbolic executor -----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/LLOperator.h"

#include "support/Casting.h"
#include "support/Special.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace psketch;

LLExecutor::LLExecutor(
    MoGAlgebra &Algebra,
    const std::unordered_map<std::string, unsigned> &Observed)
    : Algebra(Algebra), B(Algebra.builder()), Observed(Observed) {}

SymValue LLExecutor::evalExpr(const Expr &Ex, const Env &E) {
  switch (Ex.getKind()) {
  case Expr::Kind::Const: {
    const auto &C = cast<ConstExpr>(Ex);
    if (C.getScalarKind() == ScalarKind::Bool)
      return SymValue::bern(B.constant(C.isTrue() ? 1.0 : 0.0));
    return SymValue::known(B.constant(C.getValue()));
  }
  case Expr::Kind::Var: {
    const std::string &Slot = cast<VarExpr>(Ex).getName();
    // Observed slots evaluate to their data values (Figure 4 keeps
    // skill[0] symbolic in perf1's mean); the data reference is plugged
    // in per row at tape-evaluation time.
    if (ObservedBySlot) {
      // Pre-resolved fast path: one name lookup, then array indexing.
      unsigned SlotId = LP->slotId(Slot);
      if (SlotId != ~0u && (*ObservedBySlot)[SlotId] != ~0u) {
        bool IsBool = LP->SlotKinds[SlotId] == ScalarKind::Bool;
        NumId Ref = B.dataRef((*ObservedBySlot)[SlotId]);
        return IsBool ? SymValue::bern(Ref) : SymValue::known(Ref);
      }
      if (SlotId == ~0u || !E[SlotId].has_value()) {
        Malformed = true;
        return SymValue::unit();
      }
      return *E[SlotId];
    }
    auto ObsIt = Observed.find(Slot);
    if (ObsIt != Observed.end()) {
      unsigned SlotId = LP->slotId(Slot);
      bool IsBool = SlotId != ~0u &&
                    LP->SlotKinds[SlotId] == ScalarKind::Bool;
      NumId Ref = B.dataRef(ObsIt->second);
      return IsBool ? SymValue::bern(Ref) : SymValue::known(Ref);
    }
    unsigned SlotId = LP->slotId(Slot);
    if (SlotId == ~0u || !E[SlotId].has_value()) {
      Malformed = true;
      return SymValue::unit();
    }
    return *E[SlotId];
  }
  case Expr::Kind::Unary: {
    const auto &U = cast<UnaryExpr>(Ex);
    SymValue Sub = evalExpr(U.getSub(), E);
    return U.getOp() == UnaryOp::Not ? Algebra.logicalNot(Sub)
                                     : Algebra.negate(Sub);
  }
  case Expr::Kind::Binary: {
    const auto &Bin = cast<BinaryExpr>(Ex);
    SymValue L = evalExpr(Bin.getLHS(), E);
    SymValue R = evalExpr(Bin.getRHS(), E);
    return Algebra.applyBinary(Bin.getOp(), L, R);
  }
  case Expr::Kind::Ite: {
    const auto &I = cast<IteExpr>(Ex);
    SymValue C = evalExpr(I.getCond(), E);
    SymValue T = evalExpr(I.getThen(), E);
    SymValue F = evalExpr(I.getElse(), E);
    return Algebra.ite(C, T, F);
  }
  case Expr::Kind::Sample: {
    const auto &S = cast<SampleExpr>(Ex);
    std::vector<SymValue> Args;
    Args.reserve(S.getNumArgs());
    for (unsigned I = 0, N = S.getNumArgs(); I != N; ++I)
      Args.push_back(evalExpr(S.getArg(I), E));
    return Algebra.applyDist(S.getDist(), Args);
  }
  case Expr::Kind::Hole: {
    // Template execution: evaluate the hole's completion in place.
    // The completion is closed over its formals (checkCompletion
    // rejects free variables), so only CurHoleArgs changes context.
    const auto &H = cast<HoleExpr>(Ex);
    if (!Completions || H.getHoleId() >= Completions->size() ||
        !(*Completions)[H.getHoleId()]) {
      Malformed = true;
      return SymValue::unit();
    }
    const std::vector<ExprPtr> *Saved = CurHoleArgs;
    CurHoleArgs = &H.getArgs();
    SymValue V = evalExpr(*(*Completions)[H.getHoleId()], E);
    CurHoleArgs = Saved;
    return V;
  }
  case Expr::Kind::HoleArg: {
    // A hole formal `%i`: re-evaluate the hole site's i-th argument,
    // exactly as textual substitution would have copied it here.  The
    // argument belongs to the template, so evaluate it outside the
    // current completion context.
    const auto &A = cast<HoleArgExpr>(Ex);
    if (!CurHoleArgs || A.getArgIndex() >= CurHoleArgs->size()) {
      Malformed = true;
      return SymValue::unit();
    }
    const std::vector<ExprPtr> *Saved = CurHoleArgs;
    CurHoleArgs = nullptr;
    SymValue V = evalExpr(*(*Saved)[A.getArgIndex()], E);
    CurHoleArgs = Saved;
    return V;
  }
  case Expr::Kind::Index:
    // Lowering removes array indexing; seeing one means the candidate
    // was not preprocessed correctly.
    Malformed = true;
    return SymValue::unit();
  }
  return SymValue::unit();
}

namespace {

/// Slots assigned anywhere below the given lowered statements.
void updatedSlotNames(const std::vector<StmtPtr> &Stmts,
                      std::set<std::string> &Out) {
  for (const StmtPtr &S : Stmts) {
    if (const auto *A = dyn_cast<AssignStmt>(S.get()))
      Out.insert(A->getTarget().Name);
    else if (const auto *I = dyn_cast<IfStmt>(S.get())) {
      updatedSlotNames(I->getThen().getStmts(), Out);
      updatedSlotNames(I->getElse().getStmts(), Out);
    }
  }
}

} // namespace

bool LLExecutor::execStmts(const std::vector<StmtPtr> &Stmts, Env &E,
                           NumId &LocalRho) {
  for (const StmtPtr &S : Stmts) {
    switch (S->getKind()) {
    case Stmt::Kind::Assign: {
      const auto &A = cast<AssignStmt>(*S);
      unsigned SlotId = LP->slotId(A.getTarget().Name);
      if (SlotId == ~0u) {
        Malformed = true;
        return false;
      }
      E[SlotId] = evalExpr(A.getValue(), E);
      break;
    }
    case Stmt::Kind::Observe: {
      const auto &O = cast<ObserveStmt>(*S);
      // Extension beyond Figure 5: `observe(x == e)` with a continuous
      // x conditions with a density factor (soft conditioning); the
      // boolean case is the paper's probability factor.
      if (const auto *Eq = dyn_cast<BinaryExpr>(&O.getCond());
          Eq && Eq->getOp() == BinaryOp::Eq) {
        SymValue L = evalExpr(Eq->getLHS(), E);
        SymValue R = evalExpr(Eq->getRHS(), E);
        if (L.isMoG() && R.isKnown()) {
          NumId Pdf = B.exp(Algebra.logDensityAt(L, R.knownValue()));
          LocalRho = B.mul(LocalRho, Pdf);
          break;
        }
        if (R.isMoG() && L.isKnown()) {
          NumId Pdf = B.exp(Algebra.logDensityAt(R, L.knownValue()));
          LocalRho = B.mul(LocalRho, Pdf);
          break;
        }
        LocalRho = B.mul(LocalRho,
                         Algebra.probabilityOf(Algebra.equal(L, R)));
        break;
      }
      SymValue Cond = evalExpr(O.getCond(), E);
      LocalRho = B.mul(LocalRho, Algebra.probabilityOf(Cond));
      break;
    }
    case Stmt::Kind::If: {
      const auto &I = cast<IfStmt>(*S);
      SymValue Cond = evalExpr(I.getCond(), E);
      NumId P = Algebra.probabilityOf(Cond);
      Env ThenEnv = E, ElseEnv = E;
      NumId ThenRho = B.constant(1.0), ElseRho = B.constant(1.0);
      if (!execStmts(I.getThen().getStmts(), ThenEnv, ThenRho) ||
          !execStmts(I.getElse().getStmts(), ElseEnv, ElseRho))
        return false;
      // rho' = rho * (p * rho1 + (1 - p) * rho2).
      NumId NotP = B.sub(B.constant(1.0), P);
      LocalRho = B.mul(LocalRho, B.add(B.mul(P, ThenRho),
                                       B.mul(NotP, ElseRho)));
      // envmerge over the slots either branch updates.
      std::set<std::string> Updated;
      updatedSlotNames(I.getThen().getStmts(), Updated);
      updatedSlotNames(I.getElse().getStmts(), Updated);
      for (const std::string &Slot : Updated) {
        unsigned SlotId = LP->slotId(Slot);
        if (SlotId == ~0u) {
          Malformed = true;
          return false;
        }
        if (!ThenEnv[SlotId].has_value() || !ElseEnv[SlotId].has_value()) {
          // One-sided definition survived normalization only if the
          // identity assignment read an undefined slot.
          Malformed = true;
          return false;
        }
        E[SlotId] = Algebra.ite(Cond, *ThenEnv[SlotId], *ElseEnv[SlotId]);
      }
      break;
    }
    case Stmt::Kind::Skip:
      break;
    case Stmt::Kind::Block:
    case Stmt::Kind::For:
      // Lowered programs contain neither.
      Malformed = true;
      return false;
    }
    if (Malformed)
      return false;
  }
  return true;
}

std::optional<NumId> LLExecutor::run(const LoweredProgram &Lowered) {
  LP = &Lowered;
  Malformed = false;
  Final.assign(LP->Slots.size(), std::nullopt);
  NumId RhoProduct = B.constant(1.0);
  if (!execStmts(LP->Stmts, Final, RhoProduct) || Malformed)
    return std::nullopt;
  Rho = RhoProduct;

  NumId Root = B.log(B.max(Rho, B.constant(TinyProb)));
  // Deterministic column order keeps floating-point sums reproducible.
  if (ObservedOrder) {
    // Pre-sorted by the caller (setResolvedObserved): same column order,
    // no per-run copy + sort of the name map.
    for (const auto &[Col, SlotId] : *ObservedOrder) {
      NumId X = B.dataRef(Col);
      if (!Final[SlotId].has_value()) {
        Root = B.add(Root, B.constant(std::log(TinyProb)));
        continue;
      }
      Root = B.add(Root, Algebra.logDensityAt(*Final[SlotId], X));
    }
    return Root;
  }
  std::vector<std::pair<std::string, unsigned>> Ordered(Observed.begin(),
                                                        Observed.end());
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &X, const auto &Y) { return X.second < Y.second; });
  for (const auto &[Slot, Col] : Ordered) {
    unsigned SlotId = LP->slotId(Slot);
    if (SlotId == ~0u)
      continue; // Observed column the program does not model.
    NumId X = B.dataRef(Col);
    if (!Final[SlotId].has_value()) {
      // The candidate never generates an observed output: score it as
      // (log-)improbable rather than silently ignoring the column.
      Root = B.add(Root, B.constant(std::log(TinyProb)));
      continue;
    }
    Root = B.add(Root, Algebra.logDensityAt(*Final[SlotId], X));
  }
  return Root;
}

std::optional<LLExecutor::TermRoots>
LLExecutor::runTerms(const LoweredProgram &Lowered) {
  LP = &Lowered;
  Malformed = false;
  Final.assign(LP->Slots.size(), std::nullopt);
  NumId RhoProduct = B.constant(1.0);
  if (!execStmts(LP->Stmts, Final, RhoProduct) || Malformed)
    return std::nullopt;
  Rho = RhoProduct;

  // Mirrors run()'s final fold with the Adds left out: every term root
  // below is produced by the identical factory calls on identical
  // inputs, so each equals the corresponding summand of run()'s chain.
  TermRoots T;
  T.Rho = B.log(B.max(Rho, B.constant(TinyProb)));
  if (ObservedOrder) {
    T.Terms.reserve(ObservedOrder->size());
    for (const auto &[Col, SlotId] : *ObservedOrder) {
      NumId X = B.dataRef(Col);
      if (!Final[SlotId].has_value()) {
        T.Terms.push_back(B.constant(std::log(TinyProb)));
        continue;
      }
      T.Terms.push_back(Algebra.logDensityAt(*Final[SlotId], X));
    }
    return T;
  }
  std::vector<std::pair<std::string, unsigned>> Ordered(Observed.begin(),
                                                        Observed.end());
  std::sort(Ordered.begin(), Ordered.end(),
            [](const auto &X, const auto &Y) { return X.second < Y.second; });
  for (const auto &[Slot, Col] : Ordered) {
    unsigned SlotId = LP->slotId(Slot);
    if (SlotId == ~0u)
      continue; // Observed column the program does not model.
    NumId X = B.dataRef(Col);
    if (!Final[SlotId].has_value()) {
      T.Terms.push_back(B.constant(std::log(TinyProb)));
      continue;
    }
    T.Terms.push_back(Algebra.logDensityAt(*Final[SlotId], X));
  }
  return T;
}

const SymValue *LLExecutor::finalValue(const std::string &Slot) const {
  unsigned SlotId = LP ? LP->slotId(Slot) : ~0u;
  if (SlotId == ~0u || !Final[SlotId].has_value())
    return nullptr;
  return &*Final[SlotId];
}
