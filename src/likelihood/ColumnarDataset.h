//===- likelihood/ColumnarDataset.h - SoA view of a Dataset ---------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structure-of-arrays view of a Dataset: one contiguous double
/// buffer per column.  The batched tape evaluator (Tape::evalBatch)
/// walks the instruction tape once per instruction over a block of
/// rows, so its inner loops read and write contiguous doubles — the
/// layout this view provides.  Building the view is O(rows * cols);
/// candidate scoring in the MH walk builds it once per synthesis run,
/// not once per candidate.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_COLUMNARDATASET_H
#define PSKETCH_LIKELIHOOD_COLUMNARDATASET_H

#include "likelihood/Dataset.h"

#include <cassert>

namespace psketch {

/// Column-major (SoA) copy of a Dataset's values.
class ColumnarDataset {
public:
  ColumnarDataset() = default;

  /// Transposes \p Data into per-column buffers.
  explicit ColumnarDataset(const Dataset &Data);

  size_t numRows() const { return NRows; }
  size_t numColumns() const { return Columns.size(); }
  bool empty() const { return NRows == 0; }

  /// Contiguous buffer of column \p Col, numRows() doubles long.
  const double *column(size_t Col) const {
    assert(Col < Columns.size() && "column index out of range");
    return Columns[Col].data();
  }

  double at(size_t Row, size_t Col) const {
    assert(Row < NRows && "row index out of range");
    return column(Col)[Row];
  }

private:
  std::vector<std::vector<double>> Columns; ///< [col][row].
  size_t NRows = 0;
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_COLUMNARDATASET_H
