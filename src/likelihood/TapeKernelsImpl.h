//===- likelihood/TapeKernelsImpl.h - Lane-width-templated kernel ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one kernel body behind every SIMD tier: applyVecOpT<VT> walks a
/// row block in VT::W-lane steps and finishes the ragged tail with
/// tapeScalarOp — the same scalar semantics every other evaluation
/// path uses.  Each per-ISA translation unit (TapeKernelsPortable /
/// Sse2 / Avx2.cpp) instantiates it with its own vector traits and its
/// own compiler flags; all of them are compiled with -ffp-contract=off
/// so no tier can contract a two-rounding sequence into an FMA behind
/// the differential guarantee's back.
///
/// Traits contract (see ScalarTraits in TapeKernelsPortable.cpp for the
/// reference implementation): W lanes, V vector type, load/store
/// (unaligned), add/sub/mul/div/neg/abs/sqrt/max/min/gt01/eq01, and —
/// when HasFma — a correctly-rounded fused multiply-add.  Every op must
/// be the packed form of the identical IEEE scalar operation; max/min
/// must implement `a > b ? a : b` / `a < b ? a : b` exactly (x86
/// maxpd/minpd do: second operand on NaN and on signed-zero ties).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_TAPEKERNELSIMPL_H
#define PSKETCH_LIKELIHOOD_TAPEKERNELSIMPL_H

#include "likelihood/TapeKernels.h"

namespace psketch {
namespace tapekernels {

/// Element-wise map helpers: the vector main loop covers the largest
/// W-multiple prefix, the scalar functor finishes the tail.  With
/// W == 1 the tail is dead and the "vector" loop is the plain scalar
/// loop the portable tier has always run.

template <class VT, class VF, class SF>
inline void mapUnary(const double *A, double *R, size_t N, VF Vec, SF Scl) {
  constexpr size_t W = VT::W;
  size_t J = 0;
  for (; J + W <= N; J += W)
    VT::store(R + J, Vec(VT::load(A + J)));
  for (; J != N; ++J)
    R[J] = Scl(A[J]);
}

template <class VT, class VF, class SF>
inline void mapBinary(const double *A, const double *B, double *R, size_t N,
                      VF Vec, SF Scl) {
  constexpr size_t W = VT::W;
  size_t J = 0;
  for (; J + W <= N; J += W)
    VT::store(R + J, Vec(VT::load(A + J), VT::load(B + J)));
  for (; J != N; ++J)
    R[J] = Scl(A[J], B[J]);
}

template <class VT, class VF, class SF>
inline void mapTernary(const double *A, const double *B, const double *C,
                       double *R, size_t N, VF Vec, SF Scl) {
  constexpr size_t W = VT::W;
  size_t J = 0;
  for (; J + W <= N; J += W)
    VT::store(R + J,
              Vec(VT::load(A + J), VT::load(B + J), VT::load(C + J)));
  for (; J != N; ++J)
    R[J] = Scl(A[J], B[J], C[J]);
}

/// The templated kernel: semantics of applyVecOp at lane width VT::W.
template <class VT>
void applyVecOpT(TapeOp Op, const double *A, const double *B,
                 const double *C, double *R, size_t N,
                 TapeKernelFlags Flags) {
  using V = typename VT::V;
  switch (Op) {
  case TapeOp::Const:
  case TapeOp::DataRef:
    assert(false && "leaf instructions are resolved by the callers");
    break;
  case TapeOp::Add:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::add(X, Y); },
        [](double X, double Y) { return X + Y; });
    break;
  case TapeOp::Sub:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::sub(X, Y); },
        [](double X, double Y) { return X - Y; });
    break;
  case TapeOp::Mul:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::mul(X, Y); },
        [](double X, double Y) { return X * Y; });
    break;
  case TapeOp::Div:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::div(X, Y); },
        [](double X, double Y) { return X / Y; });
    break;
  case TapeOp::Neg:
    mapUnary<VT>(
        A, R, N, [](V X) { return VT::neg(X); },
        [](double X) { return -X; });
    break;
  case TapeOp::Abs:
    mapUnary<VT>(
        A, R, N, [](V X) { return VT::abs(X); },
        [](double X) { return std::fabs(X); });
    break;
  case TapeOp::Log:
    // Transcendental: scalar libm lane by lane in default mode (there
    // is no packed libm to match bits against).  Fast mode runs the
    // branch-free polynomial core over the whole block — an
    // auto-vectorizable pure-IEEE loop — then patches the rare special
    // operands from libm.  Both loops are element-wise with a fixed
    // per-lane operation sequence, so every tier produces the same
    // bits in either mode.
    if (Flags.FastSimdMath) {
      for (size_t J = 0; J != N; ++J)
        R[J] = fastLogCore(A[J]);
      for (size_t J = 0; J != N; ++J)
        if (fastLogNeedsLibm(A[J]))
          R[J] = std::log(A[J]);
    } else {
      for (size_t J = 0; J != N; ++J)
        R[J] = std::log(A[J]);
    }
    break;
  case TapeOp::Exp:
    if (Flags.FastSimdMath) {
      for (size_t J = 0; J != N; ++J)
        R[J] = fastExpCore(A[J]);
      for (size_t J = 0; J != N; ++J)
        if (fastExpNeedsLibm(A[J]))
          R[J] = std::exp(A[J]);
    } else {
      for (size_t J = 0; J != N; ++J)
        R[J] = std::exp(A[J]);
    }
    break;
  case TapeOp::Sqrt:
    // sqrtpd is correctly rounded — the one "hard" function the ISA
    // guarantees bit-equal to std::sqrt.
    mapUnary<VT>(
        A, R, N, [](V X) { return VT::sqrt(X); },
        [](double X) { return std::sqrt(X); });
    break;
  case TapeOp::Erf:
    // No packed form and no fast path: always scalar libm.
    for (size_t J = 0; J != N; ++J)
      R[J] = std::erf(A[J]);
    break;
  case TapeOp::Max:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::max(X, Y); },
        [](double X, double Y) { return X > Y ? X : Y; });
    break;
  case TapeOp::Min:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::min(X, Y); },
        [](double X, double Y) { return X < Y ? X : Y; });
    break;
  case TapeOp::Gt:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::gt01(X, Y); },
        [](double X, double Y) { return X > Y ? 1.0 : 0.0; });
    break;
  case TapeOp::Eq:
    mapBinary<VT>(
        A, B, R, N, [](V X, V Y) { return VT::eq01(X, Y); },
        [](double X, double Y) { return X == Y ? 1.0 : 0.0; });
    break;
  case TapeOp::MulAdd:
    if (Flags.FastTape) {
      if constexpr (VT::HasFma)
        mapTernary<VT>(
            A, B, C, R, N,
            [](V X, V Y, V Z) { return VT::fma(X, Y, Z); },
            [](double X, double Y, double Z) { return std::fma(X, Y, Z); });
      else
        for (size_t J = 0; J != N; ++J)
          R[J] = std::fma(A[J], B[J], C[J]);
    } else {
      mapTernary<VT>(
          A, B, C, R, N,
          [](V X, V Y, V Z) { return VT::add(VT::mul(X, Y), Z); },
          [](double X, double Y, double Z) { return X * Y + Z; });
    }
    break;
  case TapeOp::MulSub:
    if (Flags.FastTape) {
      if constexpr (VT::HasFma)
        mapTernary<VT>(
            A, B, C, R, N,
            [](V X, V Y, V Z) { return VT::fma(X, Y, VT::neg(Z)); },
            [](double X, double Y, double Z) {
              return std::fma(X, Y, -Z);
            });
      else
        for (size_t J = 0; J != N; ++J)
          R[J] = std::fma(A[J], B[J], -C[J]);
    } else {
      mapTernary<VT>(
          A, B, C, R, N,
          [](V X, V Y, V Z) { return VT::sub(VT::mul(X, Y), Z); },
          [](double X, double Y, double Z) { return X * Y - Z; });
    }
    break;
  case TapeOp::SubMul:
    mapTernary<VT>(
        A, B, C, R, N,
        [](V X, V Y, V Z) { return VT::mul(VT::sub(X, Y), Z); },
        [](double X, double Y, double Z) { return (X - Y) * Z; });
    break;
  case TapeOp::SubDiv:
    mapTernary<VT>(
        A, B, C, R, N,
        [](V X, V Y, V Z) { return VT::div(VT::sub(X, Y), Z); },
        [](double X, double Y, double Z) { return (X - Y) / Z; });
    break;
  case TapeOp::MulMul:
    mapTernary<VT>(
        A, B, C, R, N,
        [](V X, V Y, V Z) { return VT::mul(VT::mul(X, Y), Z); },
        [](double X, double Y, double Z) { return (X * Y) * Z; });
    break;
  case TapeOp::AddAdd:
    mapTernary<VT>(
        A, B, C, R, N,
        [](V X, V Y, V Z) { return VT::add(VT::add(X, Y), Z); },
        [](double X, double Y, double Z) { return (X + Y) + Z; });
    break;
  case TapeOp::AddMul:
    mapTernary<VT>(
        A, B, C, R, N,
        [](V X, V Y, V Z) { return VT::mul(VT::add(X, Y), Z); },
        [](double X, double Y, double Z) { return (X + Y) * Z; });
    break;
  }
}

} // namespace tapekernels
} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_TAPEKERNELSIMPL_H
