//===- likelihood/TapeKernels.h - Batched tape kernel dispatch ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMD backend of the tape interpreter (DESIGN.md §11).  The
/// element-wise kernel behind Tape::evalBatch / evalIncremental exists
/// in up to three tiers — portable, SSE2 and AVX2, each a separate
/// translation unit compiled with its own ISA flags — and a tape
/// resolves one of them at construction via resolveTapeKernel().
///
/// **Bit-exactness.**  In default mode every tier computes lane-wise
/// identical IEEE results, so dispatch never changes a score:
///
///  * +, -, *, / and sqrt are correctly-rounded IEEE operations in both
///    scalar and packed form; neg is a sign-bit flip and abs a sign-bit
///    clear in either form.
///  * x86 `maxpd(a, b)` implements exactly `a > b ? a : b` (second
///    operand on NaN and on +/-0 ties) — the tape's scalar Max
///    semantics; `minpd` likewise matches `a < b ? a : b`.
///  * Gt/Eq are a packed compare producing an all-ones/all-zeros mask,
///    ANDed with 1.0 — identical to the scalar ternary, including
///    NaN operands comparing false.
///  * log, exp and erf stay on scalar libm calls lane by lane (their
///    packed forms do not exist / are library-dependent), so their bits
///    match the scalar interpreter trivially.
///  * Fused superinstructions evaluate the same two-rounding sequence
///    as scalar mode; only FastTape mode uses real FMA, where
///    `_mm256_fmadd_pd` and std::fma are both the correctly-rounded
///    fused operation and therefore also agree bit for bit.
///
/// **--fast-simd-math.**  Opt-in polynomial Log/Exp (fastLog/fastExp
/// below): branch-free core that auto-vectorizes, plus a cheap fixup
/// pass routing special operands (nonpositive/denormal/inf/NaN inputs,
/// |x| > 708 for exp) to libm.  Deterministic — the same pure-IEEE
/// lane sequence at every tier, so results are still bit-identical
/// across scalar/SSE2/AVX2 and across --threads/--row-threads — but
/// different from libm by design.  Documented accuracy on the fast
/// path: relative error <= 5e-15 (a few ulp) for fastLog on normal
/// positive inputs away from 1 (absolute error <= 5e-15 * |z| near
/// log ~ 0), and <= 5e-15 relative for fastExp with |x| <= 708.  The
/// differential fuzz test asserts a 1e-13 ceiling with margin.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_TAPEKERNELS_H
#define PSKETCH_LIKELIHOOD_TAPEKERNELS_H

#include "likelihood/Tape.h"
#include "support/Simd.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstring>

namespace psketch {

/// Operand count of \p Op: 0 for leaves, 3 for fused superinstructions.
inline unsigned tapeOpArity(TapeOp Op) {
  switch (Op) {
  case TapeOp::Const:
  case TapeOp::DataRef:
    return 0;
  case TapeOp::Neg:
  case TapeOp::Abs:
  case TapeOp::Log:
  case TapeOp::Exp:
  case TapeOp::Sqrt:
  case TapeOp::Erf:
    return 1;
  case TapeOp::Add:
  case TapeOp::Sub:
  case TapeOp::Mul:
  case TapeOp::Div:
  case TapeOp::Max:
  case TapeOp::Min:
  case TapeOp::Gt:
  case TapeOp::Eq:
    return 2;
  case TapeOp::MulAdd:
  case TapeOp::MulSub:
  case TapeOp::SubMul:
  case TapeOp::SubDiv:
  case TapeOp::MulMul:
  case TapeOp::AddAdd:
  case TapeOp::AddMul:
    return 3;
  }
  return 0;
}

/// Branch-free core of the fast-math log: valid for finite positive
/// *normal* inputs; callers patch everything else via libm (see
/// fastLog).  Pure element-wise IEEE arithmetic — no libm call, no
/// table — so the compiler can vectorize a loop of these, and every
/// lane computes the identical operation sequence at every SIMD tier.
inline double fastLogCore(double X) {
  // Decompose X = M * 2^E with M in [sqrt2/2, sqrt2), so z below stays
  // in [-0.1716, 0.1716] and the atanh series converges fast.
  uint64_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  double E = double(int64_t(Bits >> 52) - 1023);
  uint64_t MBits =
      (Bits & 0x000fffffffffffffULL) | 0x3ff0000000000000ULL;
  double M;
  std::memcpy(&M, &MBits, sizeof(M));
  // Fold [sqrt2, 2) down one octave (exact: *0.5 and +1 change no
  // mantissa bits).  Ternaries compile to compare+blend.
  const bool Fold = M >= 1.41421356237309515;
  M = Fold ? M * 0.5 : M;
  E = Fold ? E + 1.0 : E;
  // log(M) = 2 atanh(z) = 2z (1 + z^2/3 + z^4/5 + ...), z=(M-1)/(M+1).
  const double Z = (M - 1.0) / (M + 1.0);
  const double Z2 = Z * Z;
  double P = 1.0 / 21;
  P = P * Z2 + 1.0 / 19;
  P = P * Z2 + 1.0 / 17;
  P = P * Z2 + 1.0 / 15;
  P = P * Z2 + 1.0 / 13;
  P = P * Z2 + 1.0 / 11;
  P = P * Z2 + 1.0 / 9;
  P = P * Z2 + 1.0 / 7;
  P = P * Z2 + 1.0 / 5;
  P = P * Z2 + 1.0 / 3;
  const double LogM = 2.0 * Z + 2.0 * Z * (Z2 * P);
  // ln2 split hi/lo so E*ln2 keeps ~107 significant bits.
  const double Ln2Hi = 6.93147180369123816490e-01;
  const double Ln2Lo = 1.90821492927058770002e-10;
  return E * Ln2Hi + (LogM + E * Ln2Lo);
}

/// True when fastLogCore does not apply to \p X and libm must answer:
/// nonpositive, denormal, NaN (all fail the >= DBL_MIN test) or +inf.
inline bool fastLogNeedsLibm(double X) {
  return !(X >= 2.2250738585072014e-308) ||
         X > 1.7976931348623157e308;
}

/// Fast-math log with the libm fallback folded in (row-wise eval and
/// kernel tail lanes; the vector kernels run core + fixup as two
/// passes over the block, same bits).
inline double fastLog(double X) {
  return fastLogNeedsLibm(X) ? std::log(X) : fastLogCore(X);
}

/// Branch-free core of the fast-math exp: valid for |X| <= 708 (result
/// spans the whole normal range); callers patch the rest via libm.
inline double fastExpCore(double X) {
  const double InvLn2 = 1.44269504088896340736;
  const double Ln2Hi = 6.93147180369123816490e-01;
  const double Ln2Lo = 1.90821492927058770002e-10;
  // K = round-to-nearest(X/ln2) via the 1.5*2^52 shifter (round mode is
  // the default nearest-even; |X/ln2| <= 1022 is far inside range).
  const double Shifter = 6755399441055744.0;
  const double K = (X * InvLn2 + Shifter) - Shifter;
  // r = X - K*ln2 in two pieces; |r| <= ln2/2 + epsilon.
  const double R = (X - K * Ln2Hi) - K * Ln2Lo;
  // exp(r): Taylor through r^13/13! (truncation ~4e-18 relative).
  double P = 1.0 / 6227020800.0;
  P = P * R + 1.0 / 479001600.0;
  P = P * R + 1.0 / 39916800.0;
  P = P * R + 1.0 / 3628800.0;
  P = P * R + 1.0 / 362880.0;
  P = P * R + 1.0 / 40320.0;
  P = P * R + 1.0 / 5040.0;
  P = P * R + 1.0 / 720.0;
  P = P * R + 1.0 / 120.0;
  P = P * R + 1.0 / 24.0;
  P = P * R + 1.0 / 6.0;
  P = P * R + 0.5;
  P = P * R + 1.0;
  P = P * R + 1.0;
  // Scale by 2^K: build the exponent directly.  K in [-1022, 1022], so
  // the biased exponent stays normal and int32 conversion is exact.
  const int32_t Ki = int32_t(K);
  uint64_t SBits = uint64_t(int64_t(Ki) + 1023) << 52;
  double S;
  std::memcpy(&S, &SBits, sizeof(S));
  return P * S;
}

/// True when fastExpCore does not apply and libm must answer: NaN and
/// |X| > 708 (overflow, and underflow-to-denormal territory).
inline bool fastExpNeedsLibm(double X) { return !(std::fabs(X) <= 708.0); }

/// Fast-math exp with the libm fallback folded in.
inline double fastExp(double X) {
  return fastExpNeedsLibm(X) ? std::exp(X) : fastExpCore(X);
}

/// One scalar step of the tape machine; the single definition of the
/// tape's arithmetic semantics.  Shared by the per-row interpreter,
/// the row-invariant hoist, the incremental evaluator, and the scalar
/// tail lanes of every vector kernel — which is what makes all paths
/// produce bitwise-identical values.
inline double tapeScalarOp(TapeOp Op, double A, double B, double C,
                           double Value, TapeKernelFlags Flags) {
  switch (Op) {
  case TapeOp::Const:
    return Value;
  case TapeOp::DataRef:
    assert(false && "data references are resolved by the callers");
    return 0.0;
  case TapeOp::Add:
    return A + B;
  case TapeOp::Sub:
    return A - B;
  case TapeOp::Mul:
    return A * B;
  case TapeOp::Div:
    return A / B;
  case TapeOp::Neg:
    return -A;
  case TapeOp::Abs:
    return std::fabs(A);
  case TapeOp::Log:
    return Flags.FastSimdMath ? fastLog(A) : std::log(A);
  case TapeOp::Exp:
    return Flags.FastSimdMath ? fastExp(A) : std::exp(A);
  case TapeOp::Sqrt:
    return std::sqrt(A);
  case TapeOp::Erf:
    return std::erf(A);
  case TapeOp::Max:
    return A > B ? A : B;
  case TapeOp::Min:
    return A < B ? A : B;
  case TapeOp::Gt:
    return A > B ? 1.0 : 0.0;
  case TapeOp::Eq:
    return A == B ? 1.0 : 0.0;
  case TapeOp::MulAdd:
    return Flags.FastTape ? std::fma(A, B, C) : A * B + C;
  case TapeOp::MulSub:
    return Flags.FastTape ? std::fma(A, B, -C) : A * B - C;
  case TapeOp::SubMul:
    return (A - B) * C;
  case TapeOp::SubDiv:
    return (A - B) / C;
  case TapeOp::MulMul:
    return (A * B) * C;
  case TapeOp::AddAdd:
    return (A + B) + C;
  case TapeOp::AddMul:
    return (A + B) * C;
  }
  return 0.0;
}

/// A resolved batched kernel: the entry point plus the tier it
/// implements (Width doubles per vector step; rows past the last full
/// group of a block take the scalar tail).
struct TapeKernel {
  ApplyVecOpFn Fn = nullptr;
  SimdLevel Level = SimdLevel::Scalar;
  unsigned Width = 1;
};

/// Resolves \p Requested against the tiers compiled into this binary
/// (PSKETCH_SIMD + per-ISA TU availability), falling back tier by tier.
/// Callers pass activeSimdLevel() (already clamped to the CPU).
TapeKernel resolveTapeKernel(SimdLevel Requested);

/// Highest tier compiled into this binary (tests skip tiers above it).
SimdLevel maxCompiledSimdLevel();

/// Per-thread row counts of the batched evaluators: rows processed by
/// full vector lane groups vs. the scalar tail loop.  Counted once per
/// block evaluation (not per instruction).  Threads accumulate into a
/// thread-local tally; row-parallel workers drain theirs at task end
/// and credit the owning chain (RowEvalContext), so per-chain totals
/// are exact whatever thread ran the blocks.
struct SimdRowTally {
  uint64_t RowsSimd = 0; ///< Rows evaluated in full lane groups.
  uint64_t RowsTail = 0; ///< Rows evaluated by the scalar tail.
};

/// Returns and zeroes the calling thread's tally.
SimdRowTally takeSimdRowTally();

/// Adds \p T to the calling thread's tally (crediting a drained worker
/// tally back to the chain thread).
void creditSimdRowTally(const SimdRowTally &T);

/// Counts one block evaluation of \p Rows rows at lane width \p Width
/// into the calling thread's tally.
void tallySimdRows(size_t Rows, unsigned Width);

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_TAPEKERNELS_H
