//===- likelihood/Dataset.cpp - Observed data tables ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "likelihood/Dataset.h"

#include <cstring>

using namespace psketch;

Dataset::Dataset(std::vector<std::string> Columns) : Cols(std::move(Columns)) {
  for (unsigned I = 0, E = unsigned(Cols.size()); I != E; ++I)
    ColIds[Cols[I]] = I;
}

unsigned Dataset::columnId(const std::string &Column) const {
  auto It = ColIds.find(Column);
  return It == ColIds.end() ? ~0u : It->second;
}

void Dataset::addRow(std::vector<double> Row) {
  assert(Row.size() == Cols.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

double Dataset::at(size_t Row, const std::string &Column) const {
  unsigned Col = columnId(Column);
  assert(Col != ~0u && "unknown column");
  return row(Row)[Col];
}

std::vector<double> Dataset::columnValues(const std::string &Column) const {
  unsigned Col = columnId(Column);
  assert(Col != ~0u && "unknown column");
  std::vector<double> Out;
  Out.reserve(Rows.size());
  for (const std::vector<double> &R : Rows)
    Out.push_back(R[Col]);
  return Out;
}

void Dataset::truncate(size_t N) {
  if (N < Rows.size())
    Rows.resize(N);
}

uint64_t Dataset::fingerprint() const {
  // FNV-1a, folding in column names (with terminators so "ab","c" and
  // "a","bc" differ) and the raw bit pattern of every cell in row
  // order.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const unsigned char *Bytes, size_t N) {
    for (size_t I = 0; I != N; ++I) {
      H ^= Bytes[I];
      H *= 0x100000001b3ull;
    }
  };
  for (const std::string &Col : Cols) {
    Mix(reinterpret_cast<const unsigned char *>(Col.data()), Col.size());
    unsigned char Sep = 0;
    Mix(&Sep, 1);
  }
  for (const std::vector<double> &R : Rows)
    for (double V : R) {
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(V));
      std::memcpy(&Bits, &V, sizeof(Bits));
      Mix(reinterpret_cast<const unsigned char *>(&Bits), sizeof(Bits));
    }
  return H;
}
