//===- likelihood/ColumnCache.h - Cross-candidate evaluated-column cache --===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MH proposals are hole-local (Section 4.1), so consecutive candidates
/// share almost their entire likelihood DAG.  The column cache exploits
/// that: every tape instruction carries a *structural* 128-bit Merkle
/// key (builder-independent — the same subexpression hashes the same no
/// matter which candidate's NumExprBuilder produced it), and the cache
/// maps (subtree key, row-block) to the evaluated row-block column.
/// Tape::evalIncremental then recomputes only the instructions
/// downstream of the mutated hole; everything shared with previously
/// scored candidates is served from cached columns, bit for bit.
///
/// One cache per chain (chains are independent; sharing would introduce
/// cross-chain ordering effects).  Eviction is LRU under a byte budget;
/// columns are handed out as shared_ptr, so a column still referenced
/// by an in-flight evaluation survives its eviction.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_COLUMNCACHE_H
#define PSKETCH_LIKELIHOOD_COLUMNCACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace psketch {

/// Structural identity of a NumExpr subtree: a 128-bit Merkle hash over
/// (op, literal bits, operand keys).  128 bits make silent collisions
/// (two different subexpressions sharing a key, which would corrupt
/// scores without any diagnostic) astronomically unlikely; keys are
/// compared in full, never truncated.
struct SubtreeKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const SubtreeKey &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }

  /// Leaf key from raw tag bits (op + literal payload).
  static SubtreeKey leaf(uint64_t Tag, uint64_t Payload);

  /// Key of an interior node from its op tag and operand keys.  Order
  /// sensitive: combine(t, a, b) != combine(t, b, a).
  static SubtreeKey combine(uint64_t Tag, const SubtreeKey &A,
                            const SubtreeKey &B);
};

/// Per-chain LRU cache of evaluated row-block columns keyed by
/// (structural subtree key, block start row).
class ColumnCache {
public:
  using ColumnPtr = std::shared_ptr<const std::vector<double>>;

  /// \p ByteBudget bounds the resident column bytes (payload only; the
  /// small per-entry bookkeeping is not charged).  0 disables caching:
  /// lookups miss and inserts are dropped.
  explicit ColumnCache(size_t ByteBudget) : Budget(ByteBudget) {}

  /// Returns the cached column of \p Key at row-block \p Block, or
  /// nullptr.  A hit refreshes LRU recency.
  ColumnPtr lookup(const SubtreeKey &Key, uint64_t Block);

  /// Inserts \p Col, then evicts least-recently-used entries until the
  /// budget holds.  Re-inserting an existing key refreshes the column.
  void insert(const SubtreeKey &Key, uint64_t Block, ColumnPtr Col);

  /// Second-touch admission filter: returns true when (\p Key, \p
  /// Block) is worth inserting because it already missed once before.
  /// The first encounter records a fingerprint and answers false.  Most
  /// MH proposals are rejected, so a proposal-specific subtree is
  /// usually evaluated exactly once; admitting a column only on
  /// re-encounter keeps the one-shot churn (allocation, map insert,
  /// eventual eviction) out of the cache entirely while the columns of
  /// the chain's *current* state — re-probed by every proposal made
  /// from it — still get cached on their second evaluation.  The filter
  /// is a fixed-size fingerprint table, so false "already seen" answers
  /// are possible under collision; they cost one early insert, never
  /// correctness.
  bool admit(const SubtreeKey &Key, uint64_t Block);

  /// Drops every entry (counters are kept).
  void clear();

  /// Row-parallel sharing (DESIGN.md §11): with \p S true, lookup /
  /// insert / admit / clear serialize on an internal mutex so the row
  /// workers of *one chain* can share this cache.  The cache stays
  /// chain-private either way; which worker wins an insert race only
  /// decides which identical column is retained (both hold the same
  /// bits, so results never depend on the interleaving — only hit/miss
  /// counters do).  Toggle only while no evaluation is in flight.
  /// The counter accessors below stay lock-free: read them between
  /// evaluations (after the row-group wait), as the chain loop does.
  void setShared(bool S) { Shared = S; }

  size_t byteBudget() const { return Budget; }
  size_t bytes() const { return Bytes; }
  size_t size() const { return Count; }

  // Lifetime counters (monotonic; survive clear()).
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t evictions() const { return Evictions; }
  uint64_t inserts() const { return Inserts; }
  double hitRate() const {
    const uint64_t Probes = Hits + Misses;
    return Probes ? double(Hits) / double(Probes) : 0.0;
  }

private:
  struct EntryKey {
    SubtreeKey Key;
    uint64_t Block;
    bool operator==(const EntryKey &O) const {
      return Key == O.Key && Block == O.Block;
    }
  };

  /// One slot of the open-addressed table.  Entries are probed linearly
  /// and double as intrusive LRU list nodes (Prev/Next are slot indices
  /// + 1; 0 is the null link), so a probe-hit touches exactly one cache
  /// line of metadata and the cache performs zero per-entry heap
  /// allocation — the evaluator probes every cache-worthy instruction
  /// of every candidate, which made the node-based map the hottest
  /// non-kernel code in the incremental evaluator's profile.
  struct Slot {
    EntryKey Key{};
    ColumnPtr Col;
    uint32_t Prev = 0, Next = 0;
    /// 0 = empty, 1 = occupied, 2 = tombstone (erased; probe continues
    /// through it).
    uint8_t State = 0;
  };

  static size_t hashKey(const EntryKey &K) {
    // The key is already a high-quality hash; fold in the block.
    return size_t(K.Key.Lo ^ (K.Key.Hi * 0x9e3779b97f4a7c15ULL) ^
                  (K.Block * 0xff51afd7ed558ccdULL));
  }

  /// Index of the occupied slot holding \p K, or SIZE_MAX.
  size_t findSlot(const EntryKey &K) const;
  /// Moves slot \p I to the MRU end of the intrusive list.
  void touch(size_t I);
  void unlink(size_t I);
  void linkFront(size_t I);
  /// Erases the LRU tail entry (must exist) and counts an eviction.
  void evictTail();
  /// Grows (or compacts tombstones out of) the table.
  void rehash(size_t NewCap);

  std::vector<Slot> Slots; ///< Power-of-two sized; empty until first use.
  size_t Mask = 0;
  size_t Count = 0;      ///< Occupied slots.
  size_t Tombstones = 0; ///< Erased slots still blocking probes.
  uint32_t Head = 0, Tail = 0; ///< MRU / LRU ends (slot index + 1).
  size_t Budget = 0;
  size_t Bytes = 0;
  uint64_t Hits = 0, Misses = 0, Evictions = 0, Inserts = 0;
  /// Serializes the public mutators when setShared(true); never taken
  /// in the (default) chain-private mode.
  bool Shared = false;
  std::mutex Mtx;
  /// Direct-mapped fingerprint table of the admission filter (see
  /// admit()); zero = empty slot.
  std::vector<uint64_t> Seen;
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_COLUMNCACHE_H
