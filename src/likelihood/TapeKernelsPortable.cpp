//===- likelihood/TapeKernelsPortable.cpp - Scalar-tier kernel TU ---------===//
//
// Part of the PSketch project, under the MIT License.
//
// Compiled with -ffp-contract=off and no ISA flags: the reference tier,
// always present.  With W == 1 the template's "vector" loop is exactly
// the plain per-element loop of the pre-SIMD interpreter (which the
// compiler remains free to auto-vectorize for the baseline ISA — that
// never changes per-lane IEEE results).
//
//===----------------------------------------------------------------------===//

#include "likelihood/TapeKernelsImpl.h"

namespace psketch {
namespace tapekernels {
namespace {

/// Reference traits: one lane, plain IEEE scalar arithmetic.  Every
/// other tier's ops must match these bit for bit (header comment of
/// TapeKernelsImpl.h).
struct ScalarTraits {
  static constexpr size_t W = 1;
  static constexpr bool HasFma = true; // std::fma is the scalar FMA.
  using V = double;
  static V load(const double *P) { return *P; }
  static void store(double *P, V X) { *P = X; }
  static V add(V A, V B) { return A + B; }
  static V sub(V A, V B) { return A - B; }
  static V mul(V A, V B) { return A * B; }
  static V div(V A, V B) { return A / B; }
  static V neg(V A) { return -A; }
  static V abs(V A) { return std::fabs(A); }
  static V sqrt(V A) { return std::sqrt(A); }
  static V max(V A, V B) { return A > B ? A : B; }
  static V min(V A, V B) { return A < B ? A : B; }
  static V gt01(V A, V B) { return A > B ? 1.0 : 0.0; }
  static V eq01(V A, V B) { return A == B ? 1.0 : 0.0; }
  static V fma(V A, V B, V C) { return std::fma(A, B, C); }
};

} // namespace

void applyVecOpPortable(TapeOp Op, const double *A, const double *B,
                        const double *C, double *R, size_t N,
                        TapeKernelFlags Flags) {
  applyVecOpT<ScalarTraits>(Op, A, B, C, R, N, Flags);
}

} // namespace tapekernels
} // namespace psketch
