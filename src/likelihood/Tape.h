//===- likelihood/Tape.h - Flat evaluation tape for NumExpr DAGs ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the per-row log-likelihood NumExpr DAG into a flat
/// register-based instruction tape.  Hash-consing in NumExprBuilder
/// already gives CSE; the tape prunes nodes unreachable from the root
/// and renumbers the survivors densely, so evaluation is a single linear
/// scan per data row — the paper's "plug in the desired data to evaluate
/// the likelihood in linear time" (Section 3).
///
/// On top of the base compile the tape applies two optimizations
/// (DESIGN.md §9), both bit-exact in default mode:
///
///  * **Fused superinstructions** — a peephole pass collapses a
///    single-use row-varying producer into its consumer (Mul+Add →
///    MulAdd, Sub+Div → SubDiv, the Gaussian log-pdf residual chain,
///    ...).  A fused op performs the identical IEEE operation sequence
///    with both roundings, it merely saves one dispatch and one
///    register round-trip per row.  Tape.cpp is compiled with
///    -ffp-contract=off so the compiler cannot contract `a*b + c` into
///    an FMA behind our back; only TapeOptions::FastTape (the
///    `--ffast-tape` flag) opts into single-rounding std::fma, which
///    may change results by ~1 ulp per fused multiply-add.
///
///  * **Structural subtree keys** — every instruction carries a 128-bit
///    builder-independent Merkle key of the subexpression it computes,
///    which keys the cross-candidate column cache: evalIncremental
///    serves row-blocks of unchanged subtrees from the cache and only
///    recomputes instructions downstream of a mutated hole.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_TAPE_H
#define PSKETCH_LIKELIHOOD_TAPE_H

#include "likelihood/ColumnCache.h"
#include "likelihood/ColumnarDataset.h"
#include "support/Simd.h"
#include "symbolic/NumExpr.h"

#include <cstdint>
#include <vector>

namespace psketch {

/// Tape instruction set: the NumExpr operations (same encoding, same
/// order) plus three-operand fused superinstructions.  Each fused op
/// computes the exact two-rounding IEEE sequence of the pair it
/// replaces.
enum class TapeOp : uint8_t {
  // Mirrors NumOp — keep in sync (static_asserts in Tape.cpp).
  Const,
  DataRef,
  Add,
  Sub,
  Mul,
  Div,
  Neg,
  Abs,
  Log,
  Exp,
  Sqrt,
  Erf,
  Max,
  Min,
  Gt,
  Eq,
  // Fused superinstructions (A, B from the absorbed producer, C the
  // consumer's other operand).
  MulAdd, ///< (A * B) + C
  MulSub, ///< (A * B) - C
  SubMul, ///< (A - B) * C
  SubDiv, ///< (A - B) / C
  MulMul, ///< (A * B) * C
  AddAdd, ///< (A + B) + C
  AddMul, ///< (A + B) * C
};

/// Number of distinct tape opcodes (the profiler sizes its per-opcode
/// buckets against this; it must stay <= ProfileMaxOps).
constexpr unsigned NumTapeOps = unsigned(TapeOp::AddMul) + 1;

/// Returns the printable name of \p Op.
const char *tapeOpName(TapeOp Op);

/// One-past-the-end pseudo-opcode the profiler charges the per-block
/// Kahan reduction of row log-likelihoods to.  The reduction is the
/// root node of every likelihood evaluation — per-instruction reports
/// rank it alongside the real opcodes instead of burying it in an
/// opaque cost center.
constexpr unsigned TapeSumOpIndex = NumTapeOps;
constexpr unsigned NumProfiledTapeOps = NumTapeOps + 1;

/// tapeOpName extended over the profiler's pseudo-opcodes: real opcode
/// names for indices below NumTapeOps, "sum" for TapeSumOpIndex, and
/// nullptr beyond.
const char *profiledTapeOpName(unsigned Idx);

/// One tape instruction.  A/B/C index earlier instructions (B unused
/// for unary ops, C only used by fused ops); Value is the literal for
/// Const and the column slot for DataRef.
struct TapeIns {
  TapeOp Op = TapeOp::Const;
  double Value = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
};

/// Compile-time knobs of the tape (the DAG-level simplifier pass has
/// its own toggle in the layers above — see LikelihoodFunction).
struct TapeOptions {
  /// Run the superinstruction peephole (bit-exact; on by default).
  bool Fuse = true;

  /// `--ffast-tape`: evaluate fused multiply-adds with std::fma (single
  /// rounding).  Changes results by up to ~1 ulp per fused op relative
  /// to default mode; off by default and excluded from the bitwise
  /// differential tests.
  bool FastTape = false;

  /// Dispatch the batched kernels to the best compiled-in SIMD tier the
  /// CPU supports (`--no-simd` turns it off).  Every tier performs the
  /// identical IEEE operation lane-wise — transcendentals stay on
  /// scalar libm — so results are bit-identical at every level
  /// (DESIGN.md §11); the knob only trades dispatch for debuggability.
  bool Simd = true;

  /// `--fast-simd-math`: evaluate Log and Exp with branch-free
  /// polynomial kernels (special operands fall back to libm) that
  /// vectorize instead of calling out per lane.  Value-changing
  /// relative to libm — within the documented relative-error bound of
  /// TapeKernels.h — but deterministic: every SIMD level and the
  /// row-wise interpreter produce the same bits as each other.
  bool FastSimdMath = false;
};

/// Flags threaded through every batched kernel invocation.
struct TapeKernelFlags {
  bool FastTape = false;     ///< Single-rounding FMA in fused mul-adds.
  bool FastSimdMath = false; ///< Polynomial Log/Exp kernels.
};

/// One batched-kernel entry point: applies \p Op element-wise over
/// R[0..N) from operand columns A/B/C (null when unused by the op's
/// arity).  Implementations exist per SIMD tier (TapeKernels.h).
using ApplyVecOpFn = void (*)(TapeOp Op, const double *A, const double *B,
                              const double *C, double *R, size_t N,
                              TapeKernelFlags Flags);

/// Reusable buffers of Tape::evalIncremental, owned by the caller so
/// the tape itself stays immutable and shareable.
struct IncrementalScratch {
  std::vector<uint8_t> Need;        ///< Per-instruction needed flag.
  std::vector<const double *> Col;  ///< Resolved column per instruction.
  std::vector<ColumnCache::ColumnPtr> Pinned; ///< Keeps columns alive.
  /// Invariant-operand broadcast registers: one N-wide slot per
  /// invariant instruction feeding a varying one (the kernel ABI takes
  /// memory operands only).  Invariant values are a pure function of
  /// the tape, so the fill survives across blocks and candidates; the
  /// generation stamp below says which (tape, N) the contents belong
  /// to.
  std::vector<double> Bcast;
  uint64_t BcastGen = 0; ///< Tape generation the Bcast fill belongs to.
  size_t BcastN = 0;     ///< Block size the Bcast fill belongs to.
  /// Row-block registers for recomputed instructions that are not worth
  /// caching (see Tape::cacheWorthy): they are evaluated in place, with
  /// no heap allocation and no cache traffic, exactly like evalBatch.
  std::vector<double> Flat;
};

/// A compiled, self-contained evaluation tape (independent of the
/// builder it came from).
class Tape {
public:
  /// Compiles the DAG reachable from \p Root in \p B.  \p Recycle, when
  /// given, is a dead tape whose heap storage is stolen for this one
  /// (the per-candidate compile loop hands each tape back as the next
  /// one's donor); its contents are discarded.
  explicit Tape(const NumExprBuilder &B, NumId Root,
                const TapeOptions &Opts = {}, Tape *Recycle = nullptr);

  /// Number of retained instructions (after fusion).
  size_t size() const { return Code.size(); }

  /// Number of fused superinstructions emitted (each replaced a pair).
  size_t numFused() const { return NumFused; }

  /// Evaluates against one data row.  \p Scratch is caller-provided to
  /// avoid per-call allocation; it is resized as needed.
  double eval(const std::vector<double> &Row,
              std::vector<double> &Scratch) const;

  /// Convenience evaluation with internal scratch.  Allocates per call:
  /// cold paths only (one-off probes, error reporting).  Anything
  /// called per row or per candidate must use the Scratch-supplied
  /// overload or evalBatch.
  double eval(const std::vector<double> &Row) const;

  /// Batched evaluation of rows [Begin, Begin + N) of \p Cols: the tape
  /// is walked once per *instruction*, each instruction looping over
  /// the whole row block with contiguous loads/stores, so the inner
  /// loops auto-vectorize.  Row-invariant instructions (parameter-only
  /// subexpressions, e.g. a candidate's log-variance term) are computed
  /// once per call instead of once per row; the result of every IEEE
  /// operation is input-deterministic, so per-row results stay identical
  /// bit-for-bit to row-wise eval.  Results land in Out[0..N).
  /// \p Scratch is caller-provided and resized as needed.
  void evalBatch(const ColumnarDataset &Cols, size_t Begin, size_t N,
                 double *Out, std::vector<double> &Scratch) const;

  /// Like evalBatch, but serves row-blocks of subtrees already
  /// evaluated by earlier candidates from \p Cache (keyed by structural
  /// subtree identity + block start) and inserts what it computes.
  /// Only instructions downstream of a cache miss are recomputed, so a
  /// hole-local MH proposal re-evaluates a few instructions instead of
  /// the whole tape.  Every computed element runs the identical kernel
  /// in the identical order as evalBatch, so results are bit-identical
  /// with the cache on, off, hot or cold.
  void evalIncremental(const ColumnarDataset &Cols, size_t Begin, size_t N,
                       double *Out, ColumnCache &Cache,
                       IncrementalScratch &Scratch) const;

  /// Number of instructions whose value does not depend on the data row
  /// (hoisted out of the per-row loop by evalBatch).
  size_t numRowInvariant() const { return Code.size() - NumVarying; }

  /// Structural key of instruction \p I (tests).
  const SubtreeKey &key(size_t I) const { return Keys[I]; }

  /// The SIMD tier the batched kernels of this tape dispatch to
  /// (resolved at construction: TapeOptions::Simd, the runtime CPU
  /// probe, and what was compiled in).
  SimdLevel simdLevel() const { return KernelLevel; }

  /// Doubles per vector step of the dispatched kernel (1, 2 or 4).
  /// Rows beyond the last full lane group of a block run the scalar
  /// tail loop — same IEEE ops, same bits.
  unsigned laneWidth() const { return KernelWidth; }

  /// Whether instruction \p I participates in the column cache.  A
  /// probe + (on miss) a heap-allocated column costs more than the
  /// vectorized kernel of a cheap op over one row block, so only
  /// instructions whose row-varying subtree is expensive enough to
  /// recompute — weighted so libm calls count heavily — are probed and
  /// inserted; the rest always recompute into flat scratch.  Purely a
  /// cost policy: evaluation results are unaffected.
  bool cacheWorthy(size_t I) const { return CacheWorthy[I] != 0; }

  /// Instruction \p I (tests, benches).
  const TapeIns &instruction(size_t I) const { return Code[I]; }

private:
  std::vector<TapeIns> Code;
  /// Builder-independent structural identity per instruction.  A fused
  /// instruction keeps the key of the consumer it replaced (it computes
  /// that node's value).
  std::vector<SubtreeKey> Keys;
  /// Per instruction: true when the value is the same for every data
  /// row (no DataRef in its transitive operands).
  std::vector<uint8_t> RowInvariant;
  /// Per instruction: index of its row-block register in the batched
  /// scratch matrix (meaningful only for varying instructions).
  std::vector<uint32_t> VecSlot;
  /// Per instruction: true when it is row-invariant and feeds at least
  /// one varying instruction, so its hoisted scalar must be broadcast
  /// into an N-wide register for the kernels (once per call).
  std::vector<uint8_t> NeedsBcast;
  /// Per instruction: index of its broadcast register (meaningful only
  /// when NeedsBcast).
  std::vector<uint32_t> BcastSlot;
  size_t NumBcast = 0; ///< Number of broadcast registers.
  /// Row-invariant instruction values, evaluated once at construction
  /// (they cannot depend on data rows, so they are constants of the
  /// tape).  Varying slots hold 0.
  std::vector<double> HoistedU;
  /// Process-unique construction stamp: lets persistent scratch
  /// (broadcast registers) recognize whether its contents were filled
  /// by *this* tape — recycled storage can land a new tape at an old
  /// address, so pointers would not do.
  uint64_t Gen = 0;
  /// Per instruction: participates in the column cache (varying, not a
  /// DataRef, and its varying subtree is costly enough that a cache hit
  /// saves more than the probe + insert overhead).
  std::vector<uint8_t> CacheWorthy;
  size_t NumVarying = 0; ///< Number of row-varying instructions.
  size_t NumFused = 0;   ///< Fused superinstructions emitted.
  TapeKernelFlags Flags; ///< FastTape / FastSimdMath evaluation modes.
  /// The batched kernel all blocks of this tape run, resolved once at
  /// construction (TapeOptions::Simd x activeSimdLevel() x compiled-in
  /// tiers) so evaluation pays zero per-call dispatch.
  ApplyVecOpFn Kernel = nullptr;
  SimdLevel KernelLevel = SimdLevel::Scalar;
  unsigned KernelWidth = 1;
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_TAPE_H
