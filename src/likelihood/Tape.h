//===- likelihood/Tape.h - Flat evaluation tape for NumExpr DAGs ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the per-row log-likelihood NumExpr DAG into a flat
/// register-based instruction tape.  Hash-consing in NumExprBuilder
/// already gives CSE; the tape prunes nodes unreachable from the root
/// and renumbers the survivors densely, so evaluation is a single linear
/// scan per data row — the paper's "plug in the desired data to evaluate
/// the likelihood in linear time" (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_TAPE_H
#define PSKETCH_LIKELIHOOD_TAPE_H

#include "symbolic/NumExpr.h"

#include <vector>

namespace psketch {

/// A compiled, self-contained evaluation tape (independent of the
/// builder it came from).
class Tape {
public:
  /// Compiles the DAG reachable from \p Root in \p B.
  Tape(const NumExprBuilder &B, NumId Root);

  /// Number of retained instructions.
  size_t size() const { return Code.size(); }

  /// Evaluates against one data row.  \p Scratch is caller-provided to
  /// avoid per-call allocation; it is resized as needed.
  double eval(const std::vector<double> &Row,
              std::vector<double> &Scratch) const;

  /// Convenience evaluation with internal scratch (allocates).
  double eval(const std::vector<double> &Row) const;

private:
  std::vector<NumNode> Code; ///< Operands renumbered into tape space.
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_TAPE_H
