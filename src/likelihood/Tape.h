//===- likelihood/Tape.h - Flat evaluation tape for NumExpr DAGs ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles the per-row log-likelihood NumExpr DAG into a flat
/// register-based instruction tape.  Hash-consing in NumExprBuilder
/// already gives CSE; the tape prunes nodes unreachable from the root
/// and renumbers the survivors densely, so evaluation is a single linear
/// scan per data row — the paper's "plug in the desired data to evaluate
/// the likelihood in linear time" (Section 3).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_LIKELIHOOD_TAPE_H
#define PSKETCH_LIKELIHOOD_TAPE_H

#include "likelihood/ColumnarDataset.h"
#include "symbolic/NumExpr.h"

#include <cstdint>
#include <vector>

namespace psketch {

/// A compiled, self-contained evaluation tape (independent of the
/// builder it came from).
class Tape {
public:
  /// Compiles the DAG reachable from \p Root in \p B.
  Tape(const NumExprBuilder &B, NumId Root);

  /// Number of retained instructions.
  size_t size() const { return Code.size(); }

  /// Evaluates against one data row.  \p Scratch is caller-provided to
  /// avoid per-call allocation; it is resized as needed.
  double eval(const std::vector<double> &Row,
              std::vector<double> &Scratch) const;

  /// Convenience evaluation with internal scratch (allocates; hot loops
  /// must use the Scratch-supplied overload or evalBatch).
  double eval(const std::vector<double> &Row) const;

  /// Batched evaluation of rows [Begin, Begin + N) of \p Cols: the tape
  /// is walked once per *instruction*, each instruction looping over
  /// the whole row block with contiguous loads/stores, so the inner
  /// loops auto-vectorize.  Row-invariant instructions (parameter-only
  /// subexpressions, e.g. a candidate's log-variance term) are computed
  /// once per call instead of once per row; the result of every IEEE
  /// operation is input-deterministic, so per-row results stay identical
  /// bit-for-bit to row-wise eval.  Results land in Out[0..N).
  /// \p Scratch is caller-provided and resized as needed.
  void evalBatch(const ColumnarDataset &Cols, size_t Begin, size_t N,
                 double *Out, std::vector<double> &Scratch) const;

  /// Number of instructions whose value does not depend on the data row
  /// (hoisted out of the per-row loop by evalBatch).
  size_t numRowInvariant() const { return Code.size() - NumVarying; }

private:
  std::vector<NumNode> Code; ///< Operands renumbered into tape space.
  /// Per instruction: true when the value is the same for every data
  /// row (no DataRef in its transitive operands).
  std::vector<uint8_t> RowInvariant;
  /// Per instruction: index of its row-block register in the batched
  /// scratch matrix (meaningful only for varying instructions).
  std::vector<uint32_t> VecSlot;
  size_t NumVarying = 0; ///< Number of row-varying instructions.
};

} // namespace psketch

#endif // PSKETCH_LIKELIHOOD_TAPE_H
