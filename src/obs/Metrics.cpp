//===- obs/Metrics.cpp - Thread-safe metrics registry ---------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

using namespace psketch;

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

HistogramMetric &MetricsRegistry::histogram(const std::string &Name,
                                            double Lo, double Hi,
                                            size_t Bins) {
  std::lock_guard<std::mutex> Lock(M);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<HistogramMetric>(Lo, Hi, Bins);
  return *Slot;
}

void MetricsRegistry::merge(const MetricsRegistry &Other) {
  // Snapshot Other's maps under its lock, then update self metric by
  // metric; the metric objects themselves are individually
  // thread-safe.
  std::vector<std::pair<std::string, uint64_t>> OtherCounters;
  std::vector<std::pair<std::string, const Gauge *>> OtherGauges;
  std::vector<std::pair<std::string, Histogram>> OtherHists;
  {
    std::lock_guard<std::mutex> Lock(Other.M);
    for (const auto &[Name, C] : Other.Counters)
      OtherCounters.emplace_back(Name, C->value());
    for (const auto &[Name, G] : Other.Gauges)
      OtherGauges.emplace_back(Name, G.get());
    for (const auto &[Name, H] : Other.Histograms)
      OtherHists.emplace_back(Name, H->snapshot());
  }
  for (const auto &[Name, V] : OtherCounters)
    counter(Name).add(V);
  for (const auto &[Name, G] : OtherGauges)
    if (G->written())
      gauge(Name).set(G->value());
  for (const auto &[Name, H] : OtherHists)
    histogram(Name, H.lo(), H.hi(), H.bins()).mergeFrom(H);
}

size_t MetricsRegistry::numMetrics() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.size() + Gauges.size() + Histograms.size();
}

std::string MetricsRegistry::toJson() const {
  // Snapshot under the registry lock; maps are sorted by name already.
  std::lock_guard<std::mutex> Lock(M);
  JsonWriter W;
  W.beginObject();
  W.field("schema_version", TelemetrySchemaVersion);
  W.beginObject("counters");
  for (const auto &[Name, C] : Counters)
    W.field(Name, C->value());
  W.endObject();
  W.beginObject("gauges");
  for (const auto &[Name, G] : Gauges)
    W.field(Name, G->value());
  W.endObject();
  W.beginObject("histograms");
  for (const auto &[Name, H] : Histograms) {
    Histogram Snap = H->snapshot();
    W.beginObject(Name);
    W.field("lo", Snap.lo());
    W.field("hi", Snap.hi());
    W.field("total", uint64_t(Snap.total()));
    W.field("mean", Snap.mean());
    W.field("stddev", Snap.stddev());
    W.beginArray("counts");
    for (size_t I = 0, E = Snap.bins(); I != E; ++I)
      W.element(double(Snap.count(I)));
    W.endArray();
    W.endObject();
  }
  W.endObject();
  W.endObject();
  return W.str();
}
