//===- obs/BenchCompare.cpp - BENCH_*.json regression comparison ----------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/BenchCompare.h"

#include "obs/Json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace psketch;

namespace {

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::char_traits<char>::length(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

int psketch::benchMetricDirection(const std::string &Key) {
  if (endsWith(Key, "_per_100s") || endsWith(Key, "_per_sec") ||
      endsWith(Key, "_per_s") || Key == "rows_per_sec" ||
      Key == "speedup" || endsWith(Key, "_speedup") ||
      Key == "speedup_min" || Key == "speedup_max")
    return 1;
  if (endsWith(Key, "_seconds") || endsWith(Key, "_ns") ||
      endsWith(Key, "_ms") || endsWith(Key, "_us") || Key == "seconds")
    return -1;
  return 0;
}

namespace {

struct DiffWalk {
  double Tol;
  BenchDiffResult &R;

  void number(const std::string &Path, const std::string &Key,
              double Old, double New) {
    BenchDeltaRow Row;
    Row.Path = Path;
    Row.OldValue = Old;
    Row.NewValue = New;
    Row.Direction = benchMetricDirection(Key);
    if (Old != 0 && std::isfinite(Old) && std::isfinite(New)) {
      Row.Delta = (New - Old) / std::fabs(Old);
    } else if (Old != New) {
      // Zero or non-finite baseline: relative change is undefined, so
      // the leaf is shown but never gates.
      Row.Direction = 0;
    }
    if (Row.Direction != 0) {
      ++R.Gated;
      double Against = Row.Direction > 0 ? -Row.Delta : Row.Delta;
      Row.Regressed = Against > Tol;
      Row.Improved = -Against > Tol;
      if (Row.Regressed)
        ++R.Regressions;
      if (Row.Improved)
        ++R.Improvements;
    }
    R.Rows.push_back(std::move(Row));
  }

  void value(const std::string &Path, const std::string &Key,
             const JsonValue &Old, const JsonValue &New) {
    if (Old.kind() != New.kind()) {
      R.Notes.push_back(Path + ": type changed between files");
      return;
    }
    switch (Old.kind()) {
    case JsonValue::Kind::Number:
      number(Path, Key, Old.number(), New.number());
      break;
    case JsonValue::Kind::Bool:
      if (Old.boolean() != New.boolean()) {
        if (endsWith(Key, "_bit_identical") && Old.boolean()) {
          // A correctness invariant the bench checks flipped off.
          ++R.Gated;
          ++R.Regressions;
          R.Notes.push_back("REGRESSION " + Path +
                            ": was true, now false");
        } else {
          R.Notes.push_back(Path + ": " +
                            (Old.boolean() ? "true -> false"
                                           : "false -> true"));
        }
      }
      break;
    case JsonValue::Kind::String:
      if (Old.str() != New.str())
        R.Notes.push_back(Path + ": \"" + Old.str() + "\" -> \"" +
                          New.str() + "\"");
      break;
    case JsonValue::Kind::Object:
      object(Path, Old, New);
      break;
    case JsonValue::Kind::Array:
      array(Path, Old, New);
      break;
    case JsonValue::Kind::Null:
      break;
    }
  }

  void object(const std::string &Path, const JsonValue &Old,
              const JsonValue &New) {
    for (const auto &[Key, OldMember] : Old.object()) {
      if (Key == "schema_version")
        continue;
      const JsonValue *NewMember = New.get(Key);
      std::string Sub = Path.empty() ? Key : Path + "." + Key;
      if (!NewMember) {
        R.Notes.push_back(Sub + ": missing in new file");
        continue;
      }
      value(Sub, Key, OldMember, *NewMember);
    }
    for (const auto &[Key, NewMember] : New.object()) {
      (void)NewMember;
      if (Key != "schema_version" && !Old.get(Key))
        R.Notes.push_back((Path.empty() ? Key : Path + "." + Key) +
                          ": only in new file");
    }
  }

  void array(const std::string &Path, const JsonValue &Old,
             const JsonValue &New) {
    // Arrays of named sections (the "benchmarks" tables) match by
    // name so reordering or adding a benchmark is not a regression.
    bool Named = !Old.array().empty();
    for (const JsonValue &E : Old.array())
      Named = Named && E.isObject() && E.getString("name");
    if (Named) {
      for (const JsonValue &OldElem : Old.array()) {
        std::string Name = *OldElem.getString("name");
        const JsonValue *Match = nullptr;
        for (const JsonValue &NewElem : New.array())
          if (NewElem.isObject() && NewElem.getString("name") &&
              *NewElem.getString("name") == Name) {
            Match = &NewElem;
            break;
          }
        std::string Sub = Path + "[" + Name + "]";
        if (!Match) {
          R.Notes.push_back(Sub + ": missing in new file");
          continue;
        }
        value(Sub, "", OldElem, *Match);
      }
      for (const JsonValue &NewElem : New.array())
        if (NewElem.isObject() && NewElem.getString("name")) {
          std::string Name = *NewElem.getString("name");
          bool Known = false;
          for (const JsonValue &OldElem : Old.array())
            Known = Known || (OldElem.isObject() &&
                              OldElem.getString("name") &&
                              *OldElem.getString("name") == Name);
          if (!Known)
            R.Notes.push_back(Path + "[" + Name + "]: only in new file");
        }
      return;
    }
    size_t N = std::min(Old.array().size(), New.array().size());
    if (Old.array().size() != New.array().size())
      R.Notes.push_back(Path + ": length " +
                        std::to_string(Old.array().size()) + " -> " +
                        std::to_string(New.array().size()));
    for (size_t I = 0; I != N; ++I)
      value(Path + "[" + std::to_string(I) + "]", "", Old.array()[I],
            New.array()[I]);
  }
};

/// Absent schema_version is accepted (legacy files predate the field);
/// any other mismatch refuses the comparison.
bool checkSchemaVersion(const JsonValue &Doc, const char *Which,
                        std::string &Err) {
  if (!Doc.get("schema_version"))
    return true;
  std::optional<uint64_t> V = Doc.getUInt64("schema_version");
  if (!V || *V != TelemetrySchemaVersion) {
    Err = std::string(Which) + " file has unsupported schema_version " +
          (V ? std::to_string(*V) : std::string("(non-integer)")) +
          " (this build reads version " +
          std::to_string(TelemetrySchemaVersion) + ")";
    return false;
  }
  return true;
}

} // namespace

BenchDiffResult psketch::compareBenchReports(const JsonValue &Old,
                                             const JsonValue &New,
                                             double Tolerance) {
  BenchDiffResult R;
  if (!Old.isObject() || !New.isObject()) {
    R.Error = "bench reports must be JSON objects";
    return R;
  }
  if (!checkSchemaVersion(Old, "old", R.Error) ||
      !checkSchemaVersion(New, "new", R.Error))
    return R;
  std::optional<std::string> OldBench = Old.getString("bench");
  std::optional<std::string> NewBench = New.getString("bench");
  if (OldBench && NewBench && *OldBench != *NewBench) {
    R.Error = "files are from different benches: '" + *OldBench +
              "' vs '" + *NewBench + "'";
    return R;
  }
  R.Ok = true;
  DiffWalk Walk{Tolerance, R};
  Walk.object("", Old, New);
  return R;
}

BenchDiffResult psketch::compareBenchFiles(const std::string &OldPath,
                                           const std::string &NewPath,
                                           double Tolerance) {
  BenchDiffResult R;
  auto Load = [&R](const std::string &Path,
                   std::optional<JsonValue> &Out) {
    std::ifstream In(Path);
    if (!In) {
      R.Error = "cannot open '" + Path + "'";
      return false;
    }
    std::ostringstream Text;
    Text << In.rdbuf();
    std::string Err;
    Out = parseJson(Text.str(), Err);
    if (!Out) {
      R.Error = Path + ": " + Err;
      return false;
    }
    return true;
  };
  std::optional<JsonValue> Old, New;
  if (!Load(OldPath, Old) || !Load(NewPath, New))
    return R;
  return compareBenchReports(*Old, *New, Tolerance);
}

std::string psketch::formatBenchDiff(const BenchDiffResult &R,
                                     double Tolerance) {
  std::string Out;
  char Buf[512];
  if (!R.Ok) {
    Out = "bench-diff error: " + R.Error + "\n";
    return Out;
  }
  std::snprintf(Buf, sizeof(Buf), "%-52s %14s %14s %9s  %s\n", "metric",
                "old", "new", "delta", "verdict");
  Out += Buf;
  for (const BenchDeltaRow &Row : R.Rows) {
    const char *Verdict = Row.Regressed    ? "REGRESSED"
                          : Row.Improved   ? "improved"
                          : Row.Direction  ? "ok"
                                           : "";
    std::snprintf(Buf, sizeof(Buf), "%-52s %14.6g %14.6g %+8.1f%%  %s\n",
                  Row.Path.c_str(), Row.OldValue, Row.NewValue,
                  Row.Delta * 100.0, Verdict);
    Out += Buf;
  }
  for (const std::string &Note : R.Notes)
    Out += "note: " + Note + "\n";
  std::snprintf(Buf, sizeof(Buf),
                "%zu metrics compared, %u gated at %.0f%% tolerance: "
                "%u regressed, %u improved\n",
                R.Rows.size(), R.Gated, Tolerance * 100.0,
                R.Regressions, R.Improvements);
  Out += Buf;
  Out += R.passed() ? "PASS\n" : "FAIL\n";
  return Out;
}
