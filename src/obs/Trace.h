//===- obs/Trace.h - JSONL chain-trace events ------------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-iteration event record of the MH walk and its JSONL
/// serialization.  A trace file is line-delimited JSON:
///
///   line 1:   {"type":"manifest", seed, iterations, chains, threads,
///              sketch, dataset_rows, dataset_cols,
///              dataset_fingerprint, score_cache, proposal_ratio}
///   line 2..: {"type":"event", chain, iter, mutation,
///              outcome ("accept"|"reject"|"invalid"),
///              candidate_ll, best_ll, cache_hit}
///
/// Chains buffer their events locally and the synthesizer emits them in
/// chain order after the deterministic merge, so a trace — like every
/// other synthesis output — is a pure function of the seeds regardless
/// of the Threads knob.  One event is emitted per proposal, so a
/// well-formed trace has exactly SynthesisStats::Proposed event lines.
///
/// readJsonlTrace parses a trace back (every line must parse);
/// summarizeTrace computes the acceptance-rate / LL-progress digest
/// printed by `psketch trace-stats`.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_TRACE_H
#define PSKETCH_OBS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace psketch {

/// Identification of one synthesis run, written as the first trace
/// line so a trace is self-describing and reproducible.
struct RunManifest {
  uint64_t Seed = 0;
  unsigned Iterations = 0;
  unsigned Chains = 0;
  unsigned Threads = 0;
  std::string Sketch;             ///< Path or benchmark name.
  uint64_t DatasetRows = 0;
  uint64_t DatasetCols = 0;
  uint64_t DatasetFingerprint = 0; ///< Dataset::fingerprint().
  uint64_t ScoreCacheSize = 0;
  bool UseProposalRatio = false;
};

/// What happened to one MH proposal.  Invalid proposals carry the
/// rejection source: a failed completion type check (InvalidType), a
/// scorer that produced no finite likelihood (InvalidDomain), or the
/// abstract interpreter's STATIC-REJECT verdict (InvalidStatic).
enum class TraceOutcome {
  Accept,
  Reject,
  InvalidType,
  InvalidDomain,
  InvalidStatic,
};

/// Is \p O one of the invalid outcomes?
inline bool isInvalidOutcome(TraceOutcome O) {
  return O == TraceOutcome::InvalidType || O == TraceOutcome::InvalidDomain ||
         O == TraceOutcome::InvalidStatic;
}

const char *traceOutcomeName(TraceOutcome O);
/// Parses an outcome name; the legacy spelling "invalid" (pre-split
/// traces) parses as InvalidDomain.
std::optional<TraceOutcome> parseTraceOutcome(const std::string &Name);

/// One MH iteration of one chain.
struct TraceEvent {
  unsigned Chain = 0;
  unsigned Iter = 0;
  std::string Mutation; ///< '+'-joined mutation-op names; "none" if 0.
  TraceOutcome Outcome = TraceOutcome::InvalidDomain;
  /// Candidate log-likelihood; NaN for invalid candidates.
  double CandidateLL = std::numeric_limits<double>::quiet_NaN();
  double BestLL = -std::numeric_limits<double>::infinity();
  bool CacheHit = false;
};

/// Serializes one manifest / event as a single JSON line (no trailing
/// newline).
std::string traceManifestLine(const RunManifest &M);
std::string traceEventLine(const TraceEvent &E);

/// Writes the full trace: manifest first, then events in order, one
/// JSON object per line.
void writeJsonlTrace(std::ostream &OS, const RunManifest &M,
                     const std::vector<TraceEvent> &Events);

/// A parsed trace file.
struct ParsedTrace {
  RunManifest Manifest;
  std::vector<TraceEvent> Events;
};

/// Parses a JSONL trace; every line must be valid JSON of a known type
/// and the first line must be the manifest.  Manifests without a
/// schema_version field (legacy traces) are accepted; a declared
/// version other than TelemetrySchemaVersion is rejected.  On failure
/// returns nullopt with a line-numbered message in \p Err.
std::optional<ParsedTrace> readJsonlTrace(std::istream &IS,
                                          std::string &Err);

/// Merges several parsed traces into one (`psketch trace-stats` with
/// repeated --trace): the first trace's manifest is kept, every file's
/// chains are renumbered to follow the chains of the files before it,
/// and Iterations/Chains are widened to cover the union.  Manifest
/// mismatches that make the combination dubious (different sketch or
/// dataset fingerprint) are reported into \p Warnings when non-null.
ParsedTrace mergeParsedTraces(const std::vector<ParsedTrace> &Traces,
                              std::vector<std::string> *Warnings = nullptr);

/// Per-chain digest of a trace.
struct ChainSummary {
  unsigned Chain = 0;
  uint64_t Events = 0;
  uint64_t Accepted = 0;
  uint64_t Invalid = 0; ///< total across the three invalid outcomes
  uint64_t InvalidType = 0;
  uint64_t InvalidDomain = 0;
  uint64_t InvalidStatic = 0;
  uint64_t CacheHits = 0;
  double FirstBestLL = -std::numeric_limits<double>::infinity();
  double FinalBestLL = -std::numeric_limits<double>::infinity();
  /// Acceptance rate over the trailing \p Window events.
  double WindowAcceptRate = 0;
};

/// Whole-trace digest (what `psketch trace-stats` prints).
struct TraceSummary {
  uint64_t Events = 0;
  uint64_t Accepted = 0;
  uint64_t Invalid = 0; ///< total across the three invalid outcomes
  uint64_t InvalidType = 0;
  uint64_t InvalidDomain = 0;
  uint64_t InvalidStatic = 0;
  uint64_t CacheHits = 0;
  double BestLL = -std::numeric_limits<double>::infinity();
  std::vector<ChainSummary> PerChain;
};

/// Digests \p T; \p Window is the trailing-window length for the
/// per-chain windowed acceptance rate.
TraceSummary summarizeTrace(const ParsedTrace &T, size_t Window = 200);

/// Human-readable rendering of a summary.
std::string formatTraceSummary(const TraceSummary &S);

} // namespace psketch

#endif // PSKETCH_OBS_TRACE_H
