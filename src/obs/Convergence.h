//===- obs/Convergence.h - MCMC convergence diagnostics -------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standard MCMC health diagnostics computed from the per-chain
/// current-state log-likelihood traces of the MH walk (Section 4.4
/// argues convergence; these make it measurable):
///
///  * **split-R-hat** (Gelman-Rubin with split chains, BDA3) — each
///    chain is split in half and the between/within variance ratio is
///    computed over the 2m half-sequences.  Values near 1 indicate the
///    chains explore the same distribution; > ~1.05 means the walk has
///    not mixed.
///
///  * **effective sample size** — m*n discounted by the chains'
///    autocorrelation (Geyer initial-monotone-positive-pairs summation
///    over the combined autocorrelation estimate, as in Stan).
///
///  * **windowed acceptance rate** — acceptance fraction over a
///    trailing window, per chain, the walk's liveness signal.
///
///  * **stuck-chain detection** — a chain whose trailing window
///    accepted (almost) nothing or whose second-half trace is constant
///    is flagged; restarts are cheaper than waiting it out.
///
/// All functions are pure; the synthesizer calls computeConvergence on
/// the deterministic merged traces, so the report is reproducible from
/// the seed.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_CONVERGENCE_H
#define PSKETCH_OBS_CONVERGENCE_H

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace psketch {

/// Split-R-hat over \p Chains (one value series per chain; lengths may
/// differ — all are truncated to the shortest).  Returns NaN when
/// there is not enough data (fewer than 2 half-sequences of length 2);
/// 1.0 when every sequence is constant and equal; +inf when chains are
/// constant but disagree.
double splitRHat(const std::vector<std::vector<double>> &Chains);

/// Effective sample size of the pooled chains.  Returns NaN when there
/// is not enough data; never exceeds the pooled draw count.
double effectiveSampleSize(const std::vector<std::vector<double>> &Chains);

/// Acceptance fraction of the trailing \p Window entries of
/// \p Accepts (1 = accepted); the whole series when shorter.
double windowedAcceptanceRate(const std::vector<uint8_t> &Accepts,
                              size_t Window);

/// The per-run convergence digest surfaced in SynthesisResult.
struct ConvergenceReport {
  bool Computed = false;
  double SplitRHat = std::numeric_limits<double>::quiet_NaN();
  double ESS = std::numeric_limits<double>::quiet_NaN();
  unsigned Window = 0;
  std::vector<double> WindowedAcceptRate; ///< One per chain.
  std::vector<unsigned> StuckChains;      ///< Chain indices flagged stuck.

  std::string str() const;
};

/// Computes the full report.  \p ChainLL holds each chain's
/// current-state LL per iteration; \p ChainAccepts the matching
/// accept flags.  A chain is flagged stuck when its trailing-window
/// acceptance falls below \p StuckAcceptRate or the second half of its
/// LL trace is constant.
ConvergenceReport
computeConvergence(const std::vector<std::vector<double>> &ChainLL,
                   const std::vector<std::vector<uint8_t>> &ChainAccepts,
                   size_t Window = 200, double StuckAcceptRate = 0.01);

} // namespace psketch

#endif // PSKETCH_OBS_CONVERGENCE_H
