//===- obs/Profiler.cpp - Per-opcode cost attribution for tape eval -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/Profiler.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

using namespace psketch;

const char *psketch::profileCostCenterName(ProfileCostCenter C) {
  switch (C) {
  case ProfileCostCenter::BlockSum:
    return "block_sum";
  case ProfileCostCenter::ColProbe:
    return "col_probe";
  case ProfileCostCenter::Dispatch:
    return "dispatch";
  case ProfileCostCenter::Unsampled:
    return "unsampled";
  case ProfileCostCenter::SpecPredicted:
    return "spec_predicted";
  case ProfileCostCenter::SpecMispredict:
    return "spec_mispredict_wasted";
  case ProfileCostCenter::SpecCancel:
    return "spec_cancel";
  }
  return "unknown";
}

void TapeProfile::merge(const TapeProfile &O) {
  for (unsigned I = 0; I != ProfileMaxOps; ++I)
    Op[I].merge(O.Op[I]);
  for (unsigned I = 0; I != NumProfileCostCenters; ++I)
    Center[I].merge(O.Center[I]);
  BlocksTotal += O.BlocksTotal;
  BlocksProfiled += O.BlocksProfiled;
  RowsTotal += O.RowsTotal;
  RowsProfiled += O.RowsProfiled;
  SimdWidthMax = std::max(SimdWidthMax, O.SimdWidthMax);
}

void TapeProfile::reset() {
  unsigned Keep = SampleEvery;
  *this = TapeProfile();
  SampleEvery = Keep;
}

uint64_t TapeProfile::opNs() const {
  uint64_t Total = 0;
  for (const ProfileBucket &B : Op)
    Total += B.Ns;
  return Total;
}

uint64_t TapeProfile::centerNs() const {
  uint64_t Total = 0;
  for (const ProfileBucket &B : Center)
    Total += B.Ns;
  return Total;
}

uint64_t TapeProfile::evalCenterNs() const {
  uint64_t Total = 0;
  for (unsigned I = 0; I != NumEvalCostCenters; ++I)
    Total += Center[I].Ns;
  return Total;
}

int TapeProfile::topOp(uint64_t *NsOut) const {
  int Best = -1;
  uint64_t BestNs = 0;
  for (unsigned I = 0; I != ProfileMaxOps; ++I)
    if (Op[I].Ns > BestNs) {
      Best = int(I);
      BestNs = Op[I].Ns;
    }
  if (NsOut)
    *NsOut = BestNs;
  return Best;
}

namespace {
thread_local TapeProfile *CurrentProfile = nullptr;
} // namespace

TapeProfile *psketch::threadTapeProfile() { return CurrentProfile; }

TapeProfile *psketch::setThreadTapeProfile(TapeProfile *P) {
  TapeProfile *Prev = CurrentProfile;
  CurrentProfile = P;
  return Prev;
}

double psketch::attributedEvalFraction(const TapeProfile &T,
                                       const StageTimes &S) {
  uint64_t EvalNs = S.Ns[unsigned(Stage::EvalBatch)];
  if (!EvalNs)
    return 0;
  // Speculation centers hold time charged outside the eval_batch span
  // (worker CPU of speculative computes, cancellation latency), so only
  // the eval centers belong in this fraction.
  return double(T.opNs() + T.evalCenterNs()) / double(EvalNs);
}

double psketch::opcodeEvalFraction(const TapeProfile &T,
                                   const StageTimes &S) {
  uint64_t EvalNs = S.Ns[unsigned(Stage::EvalBatch)];
  if (!EvalNs)
    return 0;
  return double(T.opNs()) / double(EvalNs);
}

namespace {

/// Display name for opcode bucket \p I: the caller-supplied name, or a
/// positional fallback when the report was built without names.
std::string opDisplayName(const ProfileReport &R, unsigned I) {
  if (I < R.OpNames.size() && !R.OpNames[I].empty())
    return R.OpNames[I];
  return "op" + std::to_string(I);
}

bool isFusedOpName(const std::string &Name) {
  return Name.find('+') != std::string::npos;
}

/// Opcode bucket indices with charges, most expensive first (ties by
/// index so the order is deterministic).
std::vector<unsigned> chargedOpsByCost(const TapeProfile &T) {
  std::vector<unsigned> Idx;
  for (unsigned I = 0; I != ProfileMaxOps; ++I)
    if (T.Op[I].Calls)
      Idx.push_back(I);
  std::stable_sort(Idx.begin(), Idx.end(), [&T](unsigned A, unsigned B) {
    return T.Op[A].Ns > T.Op[B].Ns;
  });
  return Idx;
}

void writePerfCounts(JsonWriter &W, const PerfCounts &C) {
  W.field("cycles", C.Cycles);
  W.field("instructions", C.Instructions);
  W.field("cache_misses", C.CacheMisses);
  W.field("branch_misses", C.BranchMisses);
  W.field("ipc", C.Cycles ? double(C.Instructions) / double(C.Cycles) : 0.0);
}

} // namespace

std::string psketch::profileReportJson(const ProfileReport &R) {
  const TapeProfile &T = R.Tape;
  JsonWriter W;
  W.beginObject();
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("report", "profile");
  W.field("sketch", R.Sketch);
  W.field("seed", R.Seed);
  W.field("iterations", uint64_t(R.Iterations));
  W.field("chains", uint64_t(R.Chains));
  W.field("row_threads", uint64_t(R.RowThreads));
  W.field("run_seconds", R.RunSeconds);
  W.field("rows_scored", R.RowsScored);
  W.field("candidates_scored", R.CandidatesScored);

  W.beginObject("simd");
  W.field("level", R.SimdLevel);
  W.field("width", uint64_t(R.SimdWidth));
  W.field("width_max_seen", uint64_t(T.SimdWidthMax));
  W.endObject();

  W.beginObject("stages");
  for (unsigned I = 0; I != NumStages; ++I) {
    W.beginObject(stageName(Stage(I)));
    W.field("seconds", double(R.Stages.Ns[I]) * 1e-9);
    W.field("calls", R.Stages.Calls[I]);
    W.endObject();
  }
  W.endObject();

  W.beginObject("eval_attribution");
  W.field("eval_batch_seconds",
          double(R.Stages.Ns[unsigned(Stage::EvalBatch)]) * 1e-9);
  W.field("attributed_fraction", attributedEvalFraction(T, R.Stages));
  W.field("opcode_fraction", opcodeEvalFraction(T, R.Stages));
  // With row workers the buckets hold per-worker CPU time, whose sum
  // can exceed the stage's wall-clock span.
  W.field("attribution_is_cpu_time", R.RowThreads > 1);
  W.field("blocks_total", T.BlocksTotal);
  W.field("blocks_profiled", T.BlocksProfiled);
  W.field("rows_total", T.RowsTotal);
  W.field("rows_profiled", T.RowsProfiled);
  W.field("sample_every", uint64_t(T.SampleEvery));
  uint64_t AttribNs = T.opNs() + T.centerNs();
  W.beginArray("ops");
  for (unsigned I : chargedOpsByCost(T)) {
    std::string Name = opDisplayName(R, I);
    W.beginObject();
    W.field("op", Name);
    W.field("fused", isFusedOpName(Name));
    W.field("ns", T.Op[I].Ns);
    W.field("rows", T.Op[I].Rows);
    W.field("calls", T.Op[I].Calls);
    W.field("share",
            AttribNs ? double(T.Op[I].Ns) / double(AttribNs) : 0.0);
    W.endObject();
  }
  W.endArray();
  W.beginArray("centers");
  for (unsigned I = 0; I != NumProfileCostCenters; ++I) {
    const ProfileBucket &B = T.Center[I];
    W.beginObject();
    W.field("center", profileCostCenterName(ProfileCostCenter(I)));
    W.field("ns", B.Ns);
    W.field("rows", B.Rows);
    W.field("calls", B.Calls);
    W.field("share", AttribNs ? double(B.Ns) / double(AttribNs) : 0.0);
    W.endObject();
  }
  W.endArray();
  W.endObject();

  W.beginObject("perf_counters");
  W.field("available", R.Perf.Available);
  W.field("fallback_reason", R.Perf.FallbackReason);
  // Counters cover the chain threads only; row-worker kernel time is
  // attributed by the wall-clock profiler above.
  W.field("scope", "chain_threads");
  if (R.Perf.Available) {
    W.beginObject("total");
    writePerfCounts(W, R.Perf.Total);
    W.endObject();
    W.beginObject("stages");
    for (unsigned I = 0; I != NumStages; ++I) {
      W.beginObject(stageName(Stage(I)));
      writePerfCounts(W, R.Perf.Stage[I]);
      W.endObject();
    }
    W.endObject();
  }
  W.endObject();

  W.endObject();
  return W.str();
}

std::string psketch::profileFoldedStacks(const ProfileReport &R) {
  const TapeProfile &T = R.Tape;
  std::string Out;
  auto Emit = [&Out](const std::string &Stack, uint64_t Ns) {
    uint64_t Us = Ns / 1000;
    if (!Us)
      return;
    Out += Stack;
    Out += ' ';
    Out += std::to_string(Us);
    Out += '\n';
  };

  uint64_t AttribNs = 0;
  for (unsigned I : chargedOpsByCost(T)) {
    Emit("psketch;synth;eval_batch;op:" + opDisplayName(R, I), T.Op[I].Ns);
    AttribNs += T.Op[I].Ns;
  }
  for (unsigned I = 0; I != NumEvalCostCenters; ++I) {
    Emit("psketch;synth;eval_batch;" +
             std::string(profileCostCenterName(ProfileCostCenter(I))),
         T.Center[I].Ns);
    AttribNs += T.Center[I].Ns;
  }
  // Speculation centers live outside the eval_batch span: worker CPU
  // time of speculative computes and main-thread cancellation latency
  // get their own frame so they never inflate eval_batch.
  for (unsigned I = NumEvalCostCenters; I != NumProfileCostCenters; ++I)
    Emit("psketch;synth;speculate;" +
             std::string(profileCostCenterName(ProfileCostCenter(I))),
         T.Center[I].Ns);
  uint64_t EvalNs = R.Stages.Ns[unsigned(Stage::EvalBatch)];
  if (EvalNs > AttribNs)
    Emit("psketch;synth;eval_batch;(unattributed)", EvalNs - AttribNs);
  for (unsigned I = 0; I != NumStages; ++I) {
    if (Stage(I) == Stage::EvalBatch)
      continue;
    Emit(std::string("psketch;synth;") + stageName(Stage(I)),
         R.Stages.Ns[I]);
  }
  return Out;
}

std::string psketch::formatProfileReport(const ProfileReport &R) {
  const TapeProfile &T = R.Tape;
  std::string Out;
  char Buf[256];
  auto Line = [&Out, &Buf](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    Out += Buf;
    Out += '\n';
  };

  Line("profile: %s (seed %llu, %u iterations x %u chains, "
       "row-threads %u)",
       R.Sketch.c_str(), (unsigned long long)R.Seed, R.Iterations,
       R.Chains, R.RowThreads);
  Line("simd: %s (width %u), run %.3f s, %llu rows scored",
       R.SimdLevel.c_str(), R.SimdWidth, R.RunSeconds,
       (unsigned long long)R.RowsScored);
  Out += '\n';

  Line("%-14s %12s %12s", "stage", "seconds", "calls");
  for (unsigned I = 0; I != NumStages; ++I)
    Line("%-14s %12.4f %12llu", stageName(Stage(I)),
         double(R.Stages.Ns[I]) * 1e-9,
         (unsigned long long)R.Stages.Calls[I]);
  Out += '\n';

  double Attrib = attributedEvalFraction(T, R.Stages);
  double OpFrac = opcodeEvalFraction(T, R.Stages);
  Line("eval_batch attribution: %.1f%% of the span charged "
       "(%.1f%% to opcodes), %llu/%llu blocks profiled "
       "(sample 1/%u)",
       Attrib * 100.0, OpFrac * 100.0,
       (unsigned long long)T.BlocksProfiled,
       (unsigned long long)T.BlocksTotal, T.SampleEvery);
  if (R.RowThreads > 1)
    Line("  (row-threads %u: charges are summed worker CPU time and "
         "may exceed the wall-clock span)",
         R.RowThreads);
  uint64_t AttribNs = T.opNs() + T.centerNs();
  Line("  %-14s %12s %7s %14s %9s", "op", "ns", "share", "rows",
       "ns/row");
  for (unsigned I : chargedOpsByCost(T)) {
    const ProfileBucket &B = T.Op[I];
    Line("  %-14s %12llu %6.1f%% %14llu %9.2f",
         opDisplayName(R, I).c_str(), (unsigned long long)B.Ns,
         AttribNs ? 100.0 * double(B.Ns) / double(AttribNs) : 0.0,
         (unsigned long long)B.Rows,
         B.Rows ? double(B.Ns) / double(B.Rows) : 0.0);
  }
  for (unsigned I = 0; I != NumProfileCostCenters; ++I) {
    const ProfileBucket &B = T.Center[I];
    if (!B.Calls)
      continue;
    Line("  %-14s %12llu %6.1f%% %14llu %9s",
         profileCostCenterName(ProfileCostCenter(I)),
         (unsigned long long)B.Ns,
         AttribNs ? 100.0 * double(B.Ns) / double(AttribNs) : 0.0,
         (unsigned long long)B.Rows, "-");
  }
  Out += '\n';

  if (!R.Perf.Available) {
    Line("hardware counters: unavailable (%s)",
         R.Perf.FallbackReason.c_str());
  } else {
    Line("hardware counters (chain threads):");
    Line("  %-14s %14s %14s %6s %12s %12s", "stage", "cycles",
         "instructions", "ipc", "cache-miss", "branch-miss");
    auto PerfLine = [&Line](const char *Name, const PerfCounts &C) {
      Line("  %-14s %14llu %14llu %6.2f %12llu %12llu", Name,
           (unsigned long long)C.Cycles,
           (unsigned long long)C.Instructions,
           C.Cycles ? double(C.Instructions) / double(C.Cycles) : 0.0,
           (unsigned long long)C.CacheMisses,
           (unsigned long long)C.BranchMisses);
    };
    for (unsigned I = 0; I != NumStages; ++I)
      PerfLine(stageName(Stage(I)), R.Perf.Stage[I]);
    PerfLine("total", R.Perf.Total);
  }
  return Out;
}
