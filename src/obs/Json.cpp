//===- obs/Json.cpp - Minimal JSON writing and parsing --------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <limits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace psketch;

std::string psketch::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string psketch::jsonNumber(double V) {
  if (std::isnan(V))
    return "\"nan\"";
  if (std::isinf(V))
    return V > 0 ? "\"inf\"" : "\"-inf\"";
  char Buf[40];
  // %.17g round-trips any double; trim to the shortest representation
  // that still parses back to the same value.
  for (int Prec = 15; Prec <= 17; ++Prec) {
    std::snprintf(Buf, sizeof(Buf), "%.*g", Prec, V);
    if (std::strtod(Buf, nullptr) == V)
      break;
  }
  return Buf;
}

//===----------------------------------------------------------------------===//
// JsonValue
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Obj.find(Key);
  return It == Obj.end() ? nullptr : &It->second;
}

std::optional<double> JsonValue::getNumber(const std::string &Key) const {
  const JsonValue *V = get(Key);
  if (!V)
    return std::nullopt;
  if (V->kind() == Kind::Number)
    return V->number();
  if (V->kind() == Kind::String) {
    if (V->str() == "inf")
      return std::numeric_limits<double>::infinity();
    if (V->str() == "-inf")
      return -std::numeric_limits<double>::infinity();
    if (V->str() == "nan")
      return std::numeric_limits<double>::quiet_NaN();
  }
  return std::nullopt;
}

std::optional<std::string> JsonValue::getString(const std::string &Key) const {
  const JsonValue *V = get(Key);
  if (!V || V->kind() != Kind::String)
    return std::nullopt;
  return V->str();
}

std::optional<bool> JsonValue::getBool(const std::string &Key) const {
  const JsonValue *V = get(Key);
  if (!V || V->kind() != Kind::Bool)
    return std::nullopt;
  return V->boolean();
}

std::optional<uint64_t> JsonValue::getUInt64(const std::string &Key) const {
  const JsonValue *V = get(Key);
  if (!V || V->kind() != Kind::Number)
    return std::nullopt;
  if (auto Exact = V->exactUInt64())
    return Exact;
  if (V->number() >= 0 && V->number() == std::floor(V->number()))
    return uint64_t(V->number());
  return std::nullopt;
}

JsonValue JsonValue::makeBool(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

JsonValue JsonValue::makeNumber(double V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = V;
  return J;
}

JsonValue JsonValue::makeString(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Arr = std::move(V);
  return J;
}

JsonValue JsonValue::makeObject(std::map<std::string, JsonValue> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Obj = std::move(V);
  return J;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Err)
      : Text(Text), Err(Err) {}

  std::optional<JsonValue> parse() {
    skipWs();
    auto V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size()) {
      fail("trailing garbage");
      return std::nullopt;
    }
    return V;
  }

private:
  void fail(const std::string &Why) {
    if (Err.empty())
      Err = Why + " at offset " + std::to_string(Pos);
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace(
                                    static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parseValue() {
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return std::nullopt;
      return JsonValue::makeString(std::move(*S));
    }
    if (literal("true"))
      return JsonValue::makeBool(true);
    if (literal("false"))
      return JsonValue::makeBool(false);
    if (literal("null"))
      return JsonValue::makeNull();
    return parseNumber();
  }

  std::optional<std::string> parseString() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return std::nullopt;
        }
        unsigned Code = 0;
        for (int I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else {
            fail("bad \\u escape");
            return std::nullopt;
          }
        }
        // The telemetry only escapes control characters, which are
        // single-byte; emit the low byte.
        Out += char(Code & 0xFF);
        break;
      }
      default:
        fail("bad escape");
        return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    if (Pos == Start) {
      fail("expected value");
      return std::nullopt;
    }
    std::string Num = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size()) {
      fail("malformed number");
      return std::nullopt;
    }
    JsonValue J = JsonValue::makeNumber(V);
    // Plain non-negative integer literals additionally keep their exact
    // 64-bit value — a double only holds integers up to 2^53 and
    // fingerprints use all 64 bits.
    if (Num.find_first_not_of("0123456789") == std::string::npos &&
        !Num.empty()) {
      errno = 0;
      uint64_t U = std::strtoull(Num.c_str(), &End, 10);
      if (errno == 0 && End == Num.c_str() + Num.size())
        J.setExactUInt64(U);
    }
    return J;
  }

  std::optional<JsonValue> parseObject() {
    consume('{');
    std::map<std::string, JsonValue> Members;
    skipWs();
    if (consume('}'))
      return JsonValue::makeObject(std::move(Members));
    while (true) {
      skipWs();
      auto Key = parseString();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      skipWs();
      auto V = parseValue();
      if (!V)
        return std::nullopt;
      Members[std::move(*Key)] = std::move(*V);
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return JsonValue::makeObject(std::move(Members));
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parseArray() {
    consume('[');
    std::vector<JsonValue> Elems;
    skipWs();
    if (consume(']'))
      return JsonValue::makeArray(std::move(Elems));
    while (true) {
      skipWs();
      auto V = parseValue();
      if (!V)
        return std::nullopt;
      Elems.push_back(std::move(*V));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return JsonValue::makeArray(std::move(Elems));
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  const std::string &Text;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> psketch::parseJson(const std::string &Text,
                                            std::string &Err) {
  return Parser(Text, Err).parse();
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::comma() {
  if (!NeedComma.empty()) {
    if (NeedComma.back())
      Out += ',';
    NeedComma.back() = true;
  }
}

void JsonWriter::key(const std::string &K) {
  comma();
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
}

JsonWriter &JsonWriter::beginObject() {
  comma();
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::beginObject(const std::string &Key) {
  key(Key);
  Out += '{';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  comma();
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::beginArray(const std::string &Key) {
  key(Key);
  Out += '[';
  NeedComma.push_back(false);
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  NeedComma.pop_back();
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, double V) {
  key(Key);
  Out += jsonNumber(V);
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, uint64_t V) {
  key(Key);
  Out += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, const std::string &V) {
  key(Key);
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, const char *V) {
  return field(Key, std::string(V));
}

JsonWriter &JsonWriter::field(const std::string &Key, bool V) {
  key(Key);
  Out += V ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::element(double V) {
  comma();
  Out += jsonNumber(V);
  return *this;
}

JsonWriter &JsonWriter::element(const std::string &V) {
  comma();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  return *this;
}
