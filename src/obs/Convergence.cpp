//===- obs/Convergence.cpp - MCMC convergence diagnostics -----------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/Convergence.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace psketch;

namespace {

/// Splits every chain in half (dropping the middle element of odd
/// lengths) after truncating all chains to the shortest length.
std::vector<std::vector<double>>
splitChains(const std::vector<std::vector<double>> &Chains) {
  size_t MinLen = SIZE_MAX;
  for (const auto &C : Chains)
    MinLen = std::min(MinLen, C.size());
  if (Chains.empty() || MinLen < 4)
    return {};
  size_t Half = MinLen / 2;
  std::vector<std::vector<double>> Out;
  Out.reserve(Chains.size() * 2);
  for (const auto &C : Chains) {
    Out.emplace_back(C.begin(), C.begin() + Half);
    Out.emplace_back(C.begin() + long(MinLen - Half), C.begin() + long(MinLen));
  }
  return Out;
}

double mean(const std::vector<double> &Xs) {
  double S = 0;
  for (double X : Xs)
    S += X;
  return S / double(Xs.size());
}

/// Sample variance (n-1 denominator).
double sampleVar(const std::vector<double> &Xs, double Mean) {
  double S = 0;
  for (double X : Xs)
    S += (X - Mean) * (X - Mean);
  return S / double(Xs.size() - 1);
}

/// Between/within variance decomposition of equal-length sequences.
struct VarDecomp {
  double W = 0;    ///< Mean within-sequence variance.
  double VarPlus = 0; ///< Marginal posterior variance estimate.
  size_t N = 0;    ///< Sequence length.
  size_t M = 0;    ///< Sequence count.
  std::vector<double> Means;
};

VarDecomp decompose(const std::vector<std::vector<double>> &Seqs) {
  VarDecomp D;
  D.M = Seqs.size();
  D.N = Seqs.front().size();
  double WSum = 0;
  for (const auto &S : Seqs) {
    double Mu = mean(S);
    D.Means.push_back(Mu);
    WSum += sampleVar(S, Mu);
  }
  D.W = WSum / double(D.M);
  double Grand = mean(D.Means);
  double B = 0; // B/n, directly.
  for (double Mu : D.Means)
    B += (Mu - Grand) * (Mu - Grand);
  B /= double(D.M - 1); // = B/n in BDA3 notation.
  D.VarPlus = double(D.N - 1) / double(D.N) * D.W + B;
  return D;
}

/// Autocovariance of \p Xs at \p Lag (biased, 1/n normalization, as in
/// the standard ESS estimator).
double autoCov(const std::vector<double> &Xs, double Mean, size_t Lag) {
  double S = 0;
  for (size_t I = Lag, E = Xs.size(); I != E; ++I)
    S += (Xs[I] - Mean) * (Xs[I - Lag] - Mean);
  return S / double(Xs.size());
}

} // namespace

double psketch::splitRHat(const std::vector<std::vector<double>> &Chains) {
  auto Seqs = splitChains(Chains);
  if (Seqs.size() < 2)
    return std::numeric_limits<double>::quiet_NaN();
  VarDecomp D = decompose(Seqs);
  if (D.W <= 0) {
    // Constant sequences: identical means converge trivially,
    // disagreeing means never will.
    double Lo = *std::min_element(D.Means.begin(), D.Means.end());
    double Hi = *std::max_element(D.Means.begin(), D.Means.end());
    return Lo == Hi ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return std::sqrt(D.VarPlus / D.W);
}

double
psketch::effectiveSampleSize(const std::vector<std::vector<double>> &Chains) {
  auto Seqs = splitChains(Chains);
  if (Seqs.empty())
    return std::numeric_limits<double>::quiet_NaN();
  VarDecomp D = decompose(Seqs);
  double Pooled = double(D.M * D.N);
  if (D.VarPlus <= 0)
    return Pooled; // Constant chains carry no autocorrelation signal.

  // Combined autocorrelation at each lag (Stan's formulation):
  //   rho_t = 1 - (W - mean_m acov_m(t)) / var_plus
  // summed with Geyer's initial monotone positive pairs.
  std::vector<double> ChainMeans = D.Means;
  size_t MaxLag = D.N - 1;
  double Tau = 1.0; // 1 + 2 * sum of paired correlations.
  double PrevPair = std::numeric_limits<double>::infinity();
  for (size_t T = 1; T + 1 <= MaxLag; T += 2) {
    auto Rho = [&](size_t Lag) {
      double AcovMean = 0;
      for (size_t C = 0; C != D.M; ++C)
        AcovMean += autoCov(Seqs[C], ChainMeans[C], Lag);
      AcovMean /= double(D.M);
      return 1.0 - (D.W - AcovMean) / D.VarPlus;
    };
    double Pair = Rho(T) + Rho(T + 1);
    if (Pair < 0)
      break; // Initial positive sequence ends.
    Pair = std::min(Pair, PrevPair); // Enforce monotone decrease.
    PrevPair = Pair;
    Tau += 2.0 * Pair;
  }
  double ESS = Pooled / Tau;
  return std::min(ESS, Pooled);
}

double psketch::windowedAcceptanceRate(const std::vector<uint8_t> &Accepts,
                                       size_t Window) {
  if (Accepts.empty() || Window == 0)
    return 0;
  size_t W = std::min(Window, Accepts.size());
  uint64_t Hits = 0;
  for (size_t I = Accepts.size() - W, E = Accepts.size(); I != E; ++I)
    Hits += Accepts[I] != 0;
  return double(Hits) / double(W);
}

ConvergenceReport psketch::computeConvergence(
    const std::vector<std::vector<double>> &ChainLL,
    const std::vector<std::vector<uint8_t>> &ChainAccepts, size_t Window,
    double StuckAcceptRate) {
  ConvergenceReport R;
  R.Computed = !ChainLL.empty();
  R.Window = unsigned(Window);
  R.SplitRHat = splitRHat(ChainLL);
  R.ESS = effectiveSampleSize(ChainLL);
  for (size_t C = 0; C != ChainAccepts.size(); ++C)
    R.WindowedAcceptRate.push_back(
        windowedAcceptanceRate(ChainAccepts[C], Window));
  for (size_t C = 0; C != ChainLL.size(); ++C) {
    bool Stuck = false;
    if (C < R.WindowedAcceptRate.size() && !ChainAccepts[C].empty() &&
        R.WindowedAcceptRate[C] < StuckAcceptRate)
      Stuck = true;
    const std::vector<double> &LL = ChainLL[C];
    if (LL.size() >= 4) {
      bool Constant = true;
      for (size_t I = LL.size() / 2 + 1, E = LL.size(); I != E; ++I)
        if (LL[I] != LL[LL.size() / 2]) {
          Constant = false;
          break;
        }
      Stuck = Stuck || Constant;
    }
    if (Stuck)
      R.StuckChains.push_back(unsigned(C));
  }
  return R;
}

std::string ConvergenceReport::str() const {
  std::ostringstream OS;
  OS << "split-R-hat " << SplitRHat << ", ESS " << ESS;
  OS << ", windowed acceptance (last " << Window << "):";
  for (size_t C = 0; C != WindowedAcceptRate.size(); ++C)
    OS << " chain" << C << "=" << WindowedAcceptRate[C];
  if (!StuckChains.empty()) {
    OS << ", stuck:";
    for (unsigned C : StuckChains)
      OS << " chain" << C;
  }
  return OS.str();
}
