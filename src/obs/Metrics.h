//===- obs/Metrics.h - Thread-safe metrics registry -----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-readable counterpart of SynthesisStats: a registry of
/// named counters, gauges and histograms that a synthesis run (or a
/// bench) populates and exports as JSON.
///
/// Two usage modes, matching the two threading regimes of the MH walk:
///
///  * **Shared registry** — registration and every update are
///    thread-safe (atomic counters; mutexed gauges and histograms), so
///    independent components may bump metrics on one registry
///    concurrently.
///
///  * **Per-chain shards** — each MH chain owns a private registry and
///    the synthesizer merges the shards *in chain order* after the
///    join, next to the existing deterministic chain-merge.  merge()
///    sums counters and histogram bins and takes the last-written
///    gauge, so the merged registry — and its JSON rendering — is a
///    pure function of the seeds, independent of the Threads knob.
///
/// Metric names are dotted lowercase paths ("synth.proposed",
/// "synth.cache.hits"); the registry stores them in sorted order so
/// serialization is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_METRICS_H
#define PSKETCH_OBS_METRICS_H

#include "support/Histogram.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace psketch {

/// A monotonically increasing count (proposals, cache hits, ...).
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A last-value-wins measurement (best LL, wall-clock seconds, R-hat).
class Gauge {
public:
  void set(double V) {
    std::lock_guard<std::mutex> Lock(M);
    Value = V;
    Written = true;
  }
  double value() const {
    std::lock_guard<std::mutex> Lock(M);
    return Value;
  }
  bool written() const {
    std::lock_guard<std::mutex> Lock(M);
    return Written;
  }

private:
  mutable std::mutex M;
  double Value = 0;
  bool Written = false;
};

/// A mutex-guarded support/Histogram (the registry's distributions:
/// mutations per proposal, per-candidate scoring cost, ...).
class HistogramMetric {
public:
  HistogramMetric(double Lo, double Hi, size_t Bins) : H(Lo, Hi, Bins) {}

  void observe(double X) {
    std::lock_guard<std::mutex> Lock(M);
    H.add(X);
  }

  /// Copies out a consistent snapshot.
  Histogram snapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    return H;
  }

  /// Accumulates \p Other bin-wise; no-op when the binnings differ.
  void mergeFrom(const Histogram &Other) {
    std::lock_guard<std::mutex> Lock(M);
    H.merge(Other);
  }

private:
  mutable std::mutex M;
  Histogram H;
};

/// Named metrics, created on first use.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  /// Returns the counter named \p Name, creating it on first use.  The
  /// returned reference stays valid for the registry's lifetime.
  Counter &counter(const std::string &Name);

  /// Returns the gauge named \p Name, creating it on first use.
  Gauge &gauge(const std::string &Name);

  /// Returns the histogram named \p Name, creating it with the given
  /// binning on first use.  A name reused with a different binning
  /// keeps the original binning (first registration wins).
  HistogramMetric &histogram(const std::string &Name, double Lo, double Hi,
                             size_t Bins);

  /// Merges \p Other into this registry: counters sum, histograms with
  /// matching binning sum bin-wise, and written gauges overwrite.
  /// Calling merge over shards in a fixed order yields identical
  /// contents regardless of which threads populated the shards.
  void merge(const MetricsRegistry &Other);

  /// Renders every metric as one JSON object, keys sorted:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Histograms serialize their binning, counts and moments.
  std::string toJson() const;

  size_t numMetrics() const;

private:
  mutable std::mutex M; ///< Guards the maps, not the metric values.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<HistogramMetric>> Histograms;
};

} // namespace psketch

#endif // PSKETCH_OBS_METRICS_H
