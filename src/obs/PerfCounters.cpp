//===- obs/PerfCounters.cpp - Hardware counters per synthesis stage -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/PerfCounters.h"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define PSKETCH_HAVE_PERF_EVENT 1
#include <cerrno>
#include <cstring>
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define PSKETCH_HAVE_PERF_EVENT 0
#endif

using namespace psketch;

#if PSKETCH_HAVE_PERF_EVENT
namespace {

int perfEventOpen(uint64_t Config, int GroupFd) {
  perf_event_attr Attr;
  std::memset(&Attr, 0, sizeof(Attr));
  Attr.type = PERF_TYPE_HARDWARE;
  Attr.size = sizeof(Attr);
  Attr.config = Config;
  // Counting starts immediately; spans are measured as read() deltas,
  // so no enable/disable ioctls are needed on the hot path.
  Attr.disabled = 0;
  Attr.exclude_kernel = 1;
  Attr.exclude_hv = 1;
  // This thread only, any CPU.
  return int(::syscall(SYS_perf_event_open, &Attr, 0, -1, GroupFd, 0));
}

} // namespace
#endif

bool PerfCounterGroup::open() {
  close();
#if !PSKETCH_HAVE_PERF_EVENT
  Reason = "perf_event_open not available on this platform; "
           "wall-clock timings only";
  return false;
#else
  static const uint64_t Configs[4] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
  Fd[0] = perfEventOpen(Configs[0], -1);
  if (Fd[0] < 0) {
    // EPERM/EACCES: perf_event_paranoid or seccomp (containers);
    // ENOSYS: kernel without perf; ENOENT: no hardware PMU (VMs).
    Reason = std::string("perf_event_open(cycles) failed: ") +
             std::strerror(errno) + "; wall-clock timings only";
    return false;
  }
  // Siblings share the leader's fd so the kernel schedules the four
  // counters together; any that fail to open simply read as 0.
  for (unsigned I = 1; I != 4; ++I)
    Fd[I] = perfEventOpen(Configs[I], Fd[0]);
  Open = true;
  Reason.clear();
  return true;
#endif
}

void PerfCounterGroup::close() {
#if PSKETCH_HAVE_PERF_EVENT
  for (int &F : Fd) {
    if (F >= 0)
      ::close(F);
    F = -1;
  }
#endif
  Open = false;
}

PerfCounts PerfCounterGroup::read() const {
  PerfCounts C;
#if PSKETCH_HAVE_PERF_EVENT
  auto ReadOne = [](int F) -> uint64_t {
    if (F < 0)
      return 0;
    uint64_t V = 0;
    if (::read(F, &V, sizeof(V)) != ssize_t(sizeof(V)))
      return 0;
    return V;
  };
  C.Cycles = ReadOne(Fd[0]);
  C.Instructions = ReadOne(Fd[1]);
  C.CacheMisses = ReadOne(Fd[2]);
  C.BranchMisses = ReadOne(Fd[3]);
#endif
  return C;
}

bool StagePerfSink::open() {
  Data = StagePerf();
  if (!Group.open()) {
    Data.Available = false;
    Data.FallbackReason = Group.unavailableReason();
    return false;
  }
  Data.Available = true;
  return true;
}

void StagePerfSink::beginRun() {
  if (!Group.isOpen())
    return;
  RunBegin = Group.read();
  InRun = true;
}

void StagePerfSink::endRun() {
  if (!InRun)
    return;
  Data.Total.addDelta(RunBegin, Group.read());
  InRun = false;
}

void StagePerfSink::enterSpan() {
  if (!Group.isOpen())
    return;
  if (Depth < MaxDepth)
    Begin[Depth] = Group.read();
  ++Depth;
}

void StagePerfSink::exitSpan(Stage S) {
  if (!Group.isOpen())
    return;
  if (Depth == 0)
    return;
  --Depth;
  if (Depth < MaxDepth)
    Data.Stage[unsigned(S)].addDelta(Begin[Depth], Group.read());
}

// -- Thread-local registration consulted by ScopedStage ------------------
// Declared in StageTimer.h (forward-declared class, free functions) so
// the stage spans can bracket themselves with counter reads without
// StageTimer.h pulling in this header.

namespace {
thread_local StagePerfSink *CurrentPerfSink = nullptr;
} // namespace

StagePerfSink *psketch::threadStagePerfSink() { return CurrentPerfSink; }

StagePerfSink *psketch::setThreadStagePerfSink(StagePerfSink *S) {
  StagePerfSink *Prev = CurrentPerfSink;
  CurrentPerfSink = S;
  return Prev;
}

void psketch::stagePerfSpanEnter(StagePerfSink &S) { S.enterSpan(); }

void psketch::stagePerfSpanExit(StagePerfSink &S, Stage St) {
  S.exitSpan(St);
}
