//===- obs/StageTimer.cpp - RAII spans for the synthesis hot stages -------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/StageTimer.h"

using namespace psketch;

const char *psketch::stageName(Stage S) {
  switch (S) {
  case Stage::LowerCompile:
    return "lower_compile";
  case Stage::EvalBatch:
    return "eval_batch";
  case Stage::CacheProbe:
    return "cache_probe";
  case Stage::Splice:
    return "splice";
  case Stage::StaticCheck:
    return "static_check";
  case Stage::Speculate:
    return "speculate";
  }
  return "unknown";
}

namespace {
thread_local StageTimes *CurrentSink = nullptr;
} // namespace

StageTimes *psketch::threadStageTimes() { return CurrentSink; }

StageTimes *psketch::setThreadStageTimes(StageTimes *T) {
  StageTimes *Prev = CurrentSink;
  CurrentSink = T;
  return Prev;
}
