//===- obs/StageTimer.h - RAII spans for the synthesis hot stages ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-stage cost accounting for the candidate-scoring pipeline.  A
/// chain that wants timings installs a StageTimes sink in a
/// thread-local slot; the instrumented stages (lower + compile, the
/// batched tape evaluation, the score-cache probe, the splice
/// fallback) open a ScopedStage that charges its lifetime to the sink.
///
/// The disabled path — no sink installed, which is the default — costs
/// one thread-local load and one predictable branch per span and never
/// reads the clock, so uninstrumented runs keep their throughput (the
/// Figure 8 acceptance bar is < 2% regression; see DESIGN.md §8).
///
/// StageTimes is plain data: each chain owns one (no atomics — a chain
/// is single-threaded) and the synthesizer merges them in chain order
/// with the rest of the per-chain state.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_STAGETIMER_H
#define PSKETCH_OBS_STAGETIMER_H

#include <chrono>
#include <cstdint>

namespace psketch {

/// The instrumented stages of candidate scoring.
enum class Stage : unsigned {
  LowerCompile, ///< lowerProgram + LikelihoodFunction::compile.
  EvalBatch,    ///< Tape::evalBatch over the dataset.
  CacheProbe,   ///< hashExprTuple + ScoreCache lookup.
  Splice,       ///< spliceCompletions fallback (no template).
  StaticCheck,  ///< abstract-interpretation STATIC-REJECT pre-filter.
  Speculate,    ///< speculation coordination: tree expansion/dispatch,
                ///  waiting on worker verdicts, cancellation/teardown
                ///  (`--speculate-depth`; zero at depth 0).
};
constexpr unsigned NumStages = 6;

/// Dotted metric-style name of \p S ("lower_compile", ...).
const char *stageName(Stage S);

/// Accumulated nanoseconds and span counts, one slot per Stage.
struct StageTimes {
  uint64_t Ns[NumStages] = {};
  uint64_t Calls[NumStages] = {};

  void merge(const StageTimes &Other) {
    for (unsigned I = 0; I != NumStages; ++I) {
      Ns[I] += Other.Ns[I];
      Calls[I] += Other.Calls[I];
    }
  }

  double seconds(Stage S) const { return double(Ns[unsigned(S)]) * 1e-9; }
  uint64_t calls(Stage S) const { return Calls[unsigned(S)]; }
  bool empty() const {
    for (uint64_t C : Calls)
      if (C)
        return false;
    return true;
  }
};

/// The calling thread's active sink; nullptr when timing is off.
StageTimes *threadStageTimes();

/// Installs \p T as the calling thread's sink (nullptr disables).
/// Returns the previous sink so nested scopes can restore it.
StageTimes *setThreadStageTimes(StageTimes *T);

/// Optional second sink: hardware counters per stage (`--profile`;
/// PerfCounters.h).  Forward-declared here so ScopedStage can bracket
/// its span with counter reads without this header depending on the
/// perf layer; the functions are defined in PerfCounters.cpp.
class StagePerfSink;
StagePerfSink *threadStagePerfSink();
StagePerfSink *setThreadStagePerfSink(StagePerfSink *S);
void stagePerfSpanEnter(StagePerfSink &S);
void stagePerfSpanExit(StagePerfSink &S, Stage St);

/// Installs a per-stage hardware-counter sink for the current scope
/// and restores the previous one on exit (the perf analogue of
/// StageTimesScope).
class StagePerfScope {
public:
  explicit StagePerfScope(StagePerfSink *S)
      : Prev(setThreadStagePerfSink(S)) {}
  ~StagePerfScope() { setThreadStagePerfSink(Prev); }
  StagePerfScope(const StagePerfScope &) = delete;
  StagePerfScope &operator=(const StagePerfScope &) = delete;

private:
  StagePerfSink *Prev;
};

/// Installs a sink for the current scope and restores the previous one
/// on exit.  Chains use this around their whole MH loop.
class StageTimesScope {
public:
  explicit StageTimesScope(StageTimes *T) : Prev(setThreadStageTimes(T)) {}
  ~StageTimesScope() { setThreadStageTimes(Prev); }
  StageTimesScope(const StageTimesScope &) = delete;
  StageTimesScope &operator=(const StageTimesScope &) = delete;

private:
  StageTimes *Prev;
};

/// Charges its lifetime to the thread's sink under \p S; a no-op (no
/// clock read) when no sink is installed.  When a perf sink is also
/// installed (`--profile` with counters available) the span brackets
/// itself with hardware-counter reads; those syscalls land inside the
/// timed span, which is fine — counter spans are milliseconds, the
/// reads are microseconds, and without a perf sink (the default) the
/// cost is one extra thread-local load per span.
class ScopedStage {
public:
  explicit ScopedStage(Stage S)
      : T(threadStageTimes()), P(threadStagePerfSink()), S(S) {
    if (T)
      Start = std::chrono::steady_clock::now();
    if (P)
      stagePerfSpanEnter(*P);
  }
  ~ScopedStage() {
    if (P)
      stagePerfSpanExit(*P, S);
    if (!T)
      return;
    auto End = std::chrono::steady_clock::now();
    T->Ns[unsigned(S)] +=
        uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                     End - Start)
                     .count());
    ++T->Calls[unsigned(S)];
  }
  ScopedStage(const ScopedStage &) = delete;
  ScopedStage &operator=(const ScopedStage &) = delete;

private:
  StageTimes *T;
  StagePerfSink *P;
  Stage S;
  std::chrono::steady_clock::time_point Start;
};

} // namespace psketch

#endif // PSKETCH_OBS_STAGETIMER_H
