//===- obs/Profiler.h - Per-opcode cost attribution for tape eval ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sampling cost profiler behind `--profile` (DESIGN.md §12).  It
/// attributes the wall time of the eval_batch stage to individual tape
/// opcodes (fused superinstructions and the per-block "sum" reduction
/// included — they are opcodes of their own) and to the non-opcode
/// cost centers around them (cross-block reduction, incremental
/// need-marking, operand dispatch), and counts the rows evaluated
/// through each bucket.
///
/// The design mirrors StageTimer: a chain that wants attribution
/// installs a TapeProfile sink in a thread-local slot; the tape
/// evaluators charge chained clock deltas to it.  No sink installed —
/// the default — costs one thread-local load per block evaluation and
/// never reads the clock, and the enabled path only *reads* clocks, so
/// scores, walks, traces and metrics are bit-identical with the
/// profiler on or off.
///
/// TapeProfile is plain data owned by one chain (row workers get one
/// slot each, merged by the chain after every parallel region), and
/// the synthesizer merges chains in chain order, so the merged report
/// shape is deterministic even though the timings themselves are
/// measurements.
///
/// Attribution never relies on symbolication: every nanosecond between
/// the first and last clock read of a block lands in an opcode bucket
/// or a named cost center, so attributed_fraction of the eval span is
/// structurally close to 1 (clock-read glue is the only leakage).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_PROFILER_H
#define PSKETCH_OBS_PROFILER_H

#include "obs/PerfCounters.h"
#include "obs/StageTimer.h"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace psketch {

/// Wall time, rows and call counts accumulated against one bucket.
/// Rows counts rows *evaluated through* the bucket: a 512-row block
/// executing an opcode twice adds 1024 to that opcode's Rows.
struct ProfileBucket {
  uint64_t Ns = 0;
  uint64_t Rows = 0;
  uint64_t Calls = 0;

  void merge(const ProfileBucket &O) {
    Ns += O.Ns;
    Rows += O.Rows;
    Calls += O.Calls;
  }
};

/// Upper bound on distinct tape opcodes the profiler can distinguish.
/// The tape has 23 opcodes today; charges with an index at or beyond
/// this bound fold into the last bucket rather than writing out of
/// bounds, so the obs layer needs no dependency on the tape enum.
constexpr unsigned ProfileMaxOps = 32;

/// Non-opcode cost centers inside the eval_batch span.  Together with
/// the opcode buckets they tile the whole span: whatever is not kernel
/// execution is block summation, need-marking, dispatch glue, or a
/// block the sampler skipped.
enum class ProfileCostCenter : unsigned {
  BlockSum,  ///< Cross-block reduction of per-block partial sums.  The
             ///  per-row Kahan loop itself is charged to the caller's
             ///  "sum" pseudo-opcode (TapeSumOpIndex) so the reduction
             ///  ranks in per-instruction reports.
  ColProbe,  ///< evalIncremental need-marking / column-cache probing.
  Dispatch,  ///< Operand setup, root copies, dispatch glue.
  Unsampled, ///< Whole blocks the sampler skipped (SampleEvery > 1).

  // Speculation cost centers (`--speculate-depth`; DESIGN.md §13).
  // Unlike the four above these lie *outside* the eval_batch span —
  // they hold worker CPU time of speculative candidate computes and
  // main-thread cancellation time — so the eval-attribution fractions
  // below sum only the eval centers.
  SpecPredicted,  ///< Compute time of speculative nodes the realized
                  ///  walk consumed (correctly predicted lookahead).
  SpecMispredict, ///< Compute time of nodes the walk never consumed
                  ///  (mispredicted branches; pure waste).
  SpecCancel,     ///< Main-thread subtree cancellation + block
                  ///  teardown latency.
};
constexpr unsigned NumProfileCostCenters = 7;
/// The leading centers that tile the eval_batch span; the speculation
/// centers after them are charged outside it.
constexpr unsigned NumEvalCostCenters = 4;

/// Metric-style name of \p C ("block_sum", ...).
const char *profileCostCenterName(ProfileCostCenter C);

/// Per-chain cost attribution for the tape evaluators.  Opcode buckets
/// are filled only for sampled blocks (SampleEvery == 1, the default,
/// samples every block); skipped blocks charge their whole span to the
/// Unsampled center so the accounting stays exact either way.
struct TapeProfile {
  ProfileBucket Op[ProfileMaxOps];
  ProfileBucket Center[NumProfileCostCenters];
  uint64_t BlocksTotal = 0;
  uint64_t BlocksProfiled = 0;
  uint64_t RowsTotal = 0;
  uint64_t RowsProfiled = 0;
  /// Widest kernel lane width seen (4 under AVX2, 2 under SSE2, 1
  /// scalar) — records the SIMD tier the attributed kernels ran at.
  unsigned SimdWidthMax = 0;
  /// Profile 1 of every SampleEvery block evaluations; 1 = all.
  unsigned SampleEvery = 1;

  /// Registers a block of \p Rows rows about to be evaluated at lane
  /// width \p LaneWidth.  Returns true when this block should charge
  /// per-opcode deltas (callers skip all further clock reads but the
  /// final one otherwise).
  bool beginBlock(size_t Rows, unsigned LaneWidth) {
    ++BlocksTotal;
    RowsTotal += Rows;
    if (LaneWidth > SimdWidthMax)
      SimdWidthMax = LaneWidth;
    if (SampleEvery > 1 && (BlocksTotal % SampleEvery) != 1)
      return false;
    ++BlocksProfiled;
    RowsProfiled += Rows;
    return true;
  }

  void chargeOp(unsigned OpIdx, std::chrono::steady_clock::duration D,
                size_t Rows) {
    ProfileBucket &B = Op[OpIdx < ProfileMaxOps ? OpIdx : ProfileMaxOps - 1];
    B.Ns += uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(D).count());
    B.Rows += Rows;
    ++B.Calls;
  }

  void charge(ProfileCostCenter C, std::chrono::steady_clock::duration D,
              size_t Rows = 0) {
    ProfileBucket &B = Center[unsigned(C)];
    B.Ns += uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(D).count());
    B.Rows += Rows;
    ++B.Calls;
  }

  void merge(const TapeProfile &O);
  /// Zeroes every bucket and counter but keeps SampleEvery.
  void reset();
  bool empty() const { return BlocksTotal == 0; }

  /// Total nanoseconds charged to opcode buckets / to cost centers.
  uint64_t opNs() const;
  uint64_t centerNs() const;
  /// Nanoseconds charged to the eval-span centers alone (the first
  /// NumEvalCostCenters) — the denominator-compatible subset for
  /// attributedEvalFraction; speculation centers are excluded.
  uint64_t evalCenterNs() const;
  /// Index of the most expensive opcode bucket, -1 when none charged;
  /// \p NsOut receives its nanoseconds when non-null.
  int topOp(uint64_t *NsOut = nullptr) const;
};

/// The calling thread's active profile sink; nullptr when off.
TapeProfile *threadTapeProfile();

/// Installs \p P as the calling thread's sink (nullptr disables).
/// Returns the previous sink so nested scopes can restore it.
TapeProfile *setThreadTapeProfile(TapeProfile *P);

/// Installs a sink for the current scope and restores the previous one
/// on exit.  Chains use this around their whole MH loop.
class TapeProfileScope {
public:
  explicit TapeProfileScope(TapeProfile *P) : Prev(setThreadTapeProfile(P)) {}
  ~TapeProfileScope() { setThreadTapeProfile(Prev); }
  TapeProfileScope(const TapeProfileScope &) = delete;
  TapeProfileScope &operator=(const TapeProfileScope &) = delete;

private:
  TapeProfile *Prev;
};

/// Chained-clock helper for charging the stretches *around* the tape
/// evaluators (buffer setup, Kahan loops, reductions): one clock read
/// per charge, the end stamp of one delta doubling as the start of the
/// next.  Constructed against a possibly-null sink; every member is a
/// no-op when the sink is null, so callers need no branches.
class ProfTick {
public:
  explicit ProfTick(TapeProfile *P) : P(P) {
    if (P)
      Last = std::chrono::steady_clock::now();
  }

  /// Charges the time since the previous stamp to \p C and re-stamps.
  void charge(ProfileCostCenter C, size_t Rows = 0) {
    if (!P)
      return;
    auto Now = std::chrono::steady_clock::now();
    P->charge(C, Now - Last, Rows);
    Last = Now;
  }

  /// Charges the time since the previous stamp to opcode bucket
  /// \p OpIdx and re-stamps — used for reduction work the caller
  /// reports as a pseudo-opcode (TapeSumOpIndex).
  void chargeOp(unsigned OpIdx, size_t Rows = 0) {
    if (!P)
      return;
    auto Now = std::chrono::steady_clock::now();
    P->chargeOp(OpIdx, Now - Last, Rows);
    Last = Now;
  }

  /// Re-stamps without charging — used after a callee that did its own
  /// internal attribution, so its span is not double-charged.
  void reset() {
    if (P)
      Last = std::chrono::steady_clock::now();
  }

private:
  TapeProfile *P;
  std::chrono::steady_clock::time_point Last;
};

/// Everything a rendered profile report needs, gathered by the caller
/// (the obs layer cannot name tape opcodes itself — OpNames[i] is the
/// display name of opcode index i, supplied by the synth/tool layer).
struct ProfileReport {
  TapeProfile Tape;
  StageTimes Stages;
  StagePerf Perf;
  std::vector<std::string> OpNames;
  std::string SimdLevel = "scalar";
  unsigned SimdWidth = 1;
  double RunSeconds = 0;
  uint64_t RowsScored = 0;
  uint64_t CandidatesScored = 0;
  std::string Sketch;
  uint64_t Seed = 0;
  unsigned Iterations = 0;
  unsigned Chains = 0;
  unsigned RowThreads = 1;
};

/// Fraction of the eval_batch stage wall time charged to *any* bucket
/// (opcodes + cost centers), and to opcode buckets alone.  Both are in
/// [0, ~1] at --row-threads 1; with row workers the buckets hold CPU
/// time summed across workers, which can legitimately exceed the
/// stage's wall-clock span (the report states which it is).
double attributedEvalFraction(const TapeProfile &T, const StageTimes &S);
double opcodeEvalFraction(const TapeProfile &T, const StageTimes &S);

/// The JSON profile report (schema_version'd; DESIGN.md §12).
std::string profileReportJson(const ProfileReport &R);

/// Folded-stack lines ("psketch;synth;eval_batch;op:mul+add 1234",
/// counts in microseconds) consumable by flamegraph.pl.
std::string profileFoldedStacks(const ProfileReport &R);

/// Human-readable summary table.
std::string formatProfileReport(const ProfileReport &R);

} // namespace psketch

#endif // PSKETCH_OBS_PROFILER_H
