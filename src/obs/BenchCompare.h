//===- obs/BenchCompare.h - BENCH_*.json regression comparison ------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section-by-section comparison of two BENCH_*.json files for
/// `psketch bench-diff` and the CI regression gate.  The comparator
/// walks both documents in parallel — objects member-by-member, arrays
/// of named sections matched by their "name" field — and classifies
/// every numeric leaf by its key:
///
///   - throughput-style keys (`*_per_100s`, `*_per_sec`, `rows_per_sec`,
///     `speedup*`) are gated higher-is-better;
///   - latency-style keys (`*_seconds`, `*_ns`, `*_ms`, `*_us`) are
///     gated lower-is-better;
///   - everything else (counts, rates, log-likelihoods, configuration)
///     is reported but never gates.
///
/// A gated metric regresses when it moves against its direction by
/// more than the relative tolerance.  Boolean `*_bit_identical` fields
/// flipping true -> false also regress — those record correctness
/// invariants the benches check.  Files must agree on their "bench"
/// name and carry a compatible schema_version (absent = legacy,
/// accepted) or the comparison refuses with an error instead of
/// producing a nonsense table.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_BENCHCOMPARE_H
#define PSKETCH_OBS_BENCHCOMPARE_H

#include <cstdint>
#include <string>
#include <vector>

namespace psketch {

class JsonValue;

/// Gating direction of metric key \p Key: +1 higher-is-better, -1
/// lower-is-better, 0 informational.
int benchMetricDirection(const std::string &Key);

/// One compared numeric leaf.
struct BenchDeltaRow {
  std::string Path; ///< Dotted path, e.g. "benchmarks[TrueSkill].speedup".
  double OldValue = 0;
  double NewValue = 0;
  /// Relative change (New - Old) / |Old|; 0 when Old == 0.
  double Delta = 0;
  int Direction = 0; ///< benchMetricDirection of the leaf key.
  bool Regressed = false;
  bool Improved = false;
};

struct BenchDiffResult {
  /// False when the files could not be parsed or are incompatible
  /// (different bench, unsupported schema_version) — Error says why.
  bool Ok = false;
  std::string Error;
  std::vector<BenchDeltaRow> Rows;
  /// Structural mismatches (missing sections, type changes, boolean
  /// flips) that are worth printing but are not numeric rows.
  std::vector<std::string> Notes;
  unsigned Gated = 0;
  unsigned Regressions = 0;
  unsigned Improvements = 0;

  bool passed() const { return Ok && Regressions == 0; }
};

/// Compares two parsed bench documents under relative \p Tolerance.
BenchDiffResult compareBenchReports(const JsonValue &Old,
                                    const JsonValue &New,
                                    double Tolerance);

/// Reads, parses and compares two files (Error mentions the path on
/// I/O or parse failure).
BenchDiffResult compareBenchFiles(const std::string &OldPath,
                                  const std::string &NewPath,
                                  double Tolerance);

/// The per-benchmark delta table plus a verdict line.
std::string formatBenchDiff(const BenchDiffResult &R, double Tolerance);

} // namespace psketch

#endif // PSKETCH_OBS_BENCHCOMPARE_H
