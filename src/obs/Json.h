//===- obs/Json.h - Minimal JSON writing and parsing ----------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON layer for the observability outputs: a
/// streaming writer (metrics files, JSONL trace events, BENCH_*.json)
/// and a recursive-descent parser used to round-trip those outputs in
/// `psketch trace-stats` and the tests.  It supports exactly the JSON
/// subset the telemetry emits — objects, arrays, strings, finite and
/// non-finite numbers, booleans, null — and nothing more.
///
/// Non-finite doubles have no JSON literal; the writer emits them as
/// the strings "inf" / "-inf" / "nan" and the value API converts them
/// back, so log-likelihood traces survive a round trip even before the
/// first valid candidate (best LL is -inf then).
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_JSON_H
#define PSKETCH_OBS_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace psketch {

/// Version stamped into every machine-readable telemetry artifact
/// (--metrics-out, --trace-out manifests, BENCH_*.json, profile
/// reports) as a "schema_version" field.  Readers accept files with a
/// matching version — or none at all, for artifacts written before the
/// field existed — and reject anything else with a clear error instead
/// of misparsing.  Bump on any incompatible field change.
constexpr uint64_t TelemetrySchemaVersion = 1;

/// Escapes \p S for inclusion in a JSON string literal (quotes not
/// included).
std::string jsonEscape(const std::string &S);

/// Renders \p V with enough digits to round-trip a double exactly;
/// non-finite values become the quoted strings "inf"/"-inf"/"nan".
std::string jsonNumber(double V);

/// An owned JSON document node.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  /// The exact unsigned value when the literal was a plain non-negative
  /// integer that fits uint64_t (doubles lose integers above 2^53 —
  /// dataset fingerprints need all 64 bits).
  std::optional<uint64_t> exactUInt64() const {
    return HasU64 ? std::optional<uint64_t>(U64) : std::nullopt;
  }
  void setExactUInt64(uint64_t V) {
    HasU64 = true;
    U64 = V;
  }
  const std::string &str() const { return Str; }
  const std::vector<JsonValue> &array() const { return Arr; }
  const std::map<std::string, JsonValue> &object() const { return Obj; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue *get(const std::string &Key) const;

  /// Numeric member coercion: a Number member returns its value, and
  /// the sentinel strings "inf"/"-inf"/"nan" convert back to doubles.
  std::optional<double> getNumber(const std::string &Key) const;
  std::optional<std::string> getString(const std::string &Key) const;
  std::optional<bool> getBool(const std::string &Key) const;

  /// Exact unsigned member lookup: prefers the literal's preserved
  /// 64-bit value, falling back to the double when it is integral.
  std::optional<uint64_t> getUInt64(const std::string &Key) const;

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool V);
  static JsonValue makeNumber(double V);
  static JsonValue makeString(std::string V);
  static JsonValue makeArray(std::vector<JsonValue> V);
  static JsonValue makeObject(std::map<std::string, JsonValue> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  bool HasU64 = false;
  uint64_t U64 = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parses one JSON document from \p Text.  Returns nullopt and fills
/// \p Err (with a byte offset) on malformed input or trailing garbage.
std::optional<JsonValue> parseJson(const std::string &Text,
                                   std::string &Err);

/// An append-only JSON object/array builder that writes text directly;
/// values appear in insertion order.  Usage:
///
///   JsonWriter W;
///   W.beginObject();
///   W.field("seed", 42.0);
///   W.field("name", "TrueSkill");
///   W.endObject();
///   Out << W.str();
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Object members (must be inside an object).
  JsonWriter &field(const std::string &Key, double V);
  JsonWriter &field(const std::string &Key, uint64_t V);
  JsonWriter &field(const std::string &Key, const std::string &V);
  JsonWriter &field(const std::string &Key, const char *V);
  JsonWriter &field(const std::string &Key, bool V);
  /// Opens a nested object/array member.
  JsonWriter &beginObject(const std::string &Key);
  JsonWriter &beginArray(const std::string &Key);

  /// Array elements (must be inside an array).
  JsonWriter &element(double V);
  JsonWriter &element(const std::string &V);

  const std::string &str() const { return Out; }

private:
  void comma();
  void key(const std::string &K);

  std::string Out;
  std::vector<bool> NeedComma; ///< One entry per open scope.
};

} // namespace psketch

#endif // PSKETCH_OBS_JSON_H
