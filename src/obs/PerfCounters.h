//===- obs/PerfCounters.h - Hardware counters per synthesis stage ---------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hardware performance counters (cycles, instructions, cache misses,
/// branch misses) read via perf_event_open and charged to the same
/// stage spans the StageTimer covers.  The syscall is best-effort by
/// nature — containers commonly seccomp-filter it, perf_event_paranoid
/// may forbid it, non-Linux hosts lack it entirely — so everything
/// here degrades gracefully: when the counters cannot be opened the
/// sink records *why* (StagePerf::FallbackReason) and the profile
/// report falls back to std::chrono-only timings (DESIGN.md §12 has
/// the fallback matrix).
///
/// A StagePerfSink is per-chain, opened on the chain's own thread
/// (perf fds count the opening thread), and registered in a
/// thread-local slot that ScopedStage consults: when a sink is
/// installed each stage span brackets itself with counter reads.  Row
/// workers do not inherit the chain's fds — their kernel time is
/// attributed by the wall-clock profiler instead; the counter report
/// covers the chain thread, and says so.
///
//===----------------------------------------------------------------------===//

#ifndef PSKETCH_OBS_PERFCOUNTERS_H
#define PSKETCH_OBS_PERFCOUNTERS_H

#include "obs/StageTimer.h"

#include <cstdint>
#include <string>

namespace psketch {

/// One sample (or accumulated delta) of the four counters.  A counter
/// the kernel would not open stays 0 — PerCounterGroup tracks which
/// ones are live.
struct PerfCounts {
  uint64_t Cycles = 0;
  uint64_t Instructions = 0;
  uint64_t CacheMisses = 0;
  uint64_t BranchMisses = 0;

  void add(const PerfCounts &O) {
    Cycles += O.Cycles;
    Instructions += O.Instructions;
    CacheMisses += O.CacheMisses;
    BranchMisses += O.BranchMisses;
  }

  /// Accumulates End - Begin per counter (counters are monotonic on a
  /// fixed thread, so saturation only guards a counter going away).
  void addDelta(const PerfCounts &Begin, const PerfCounts &End) {
    auto D = [](uint64_t B, uint64_t E) { return E > B ? E - B : 0; };
    Cycles += D(Begin.Cycles, End.Cycles);
    Instructions += D(Begin.Instructions, End.Instructions);
    CacheMisses += D(Begin.CacheMisses, End.CacheMisses);
    BranchMisses += D(Begin.BranchMisses, End.BranchMisses);
  }

  bool any() const {
    return Cycles || Instructions || CacheMisses || BranchMisses;
  }
};

/// Owns up to four per-thread perf fds (cycles, instructions,
/// cache-misses, branch-misses).  open() requires the cycles counter;
/// the others are optional — hosts without a cache-miss event still
/// report cycles and instructions.
class PerfCounterGroup {
public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup() { close(); }
  PerfCounterGroup(const PerfCounterGroup &) = delete;
  PerfCounterGroup &operator=(const PerfCounterGroup &) = delete;

  /// Opens the counters on the calling thread.  Returns false and
  /// records a reason when the syscall is unavailable or denied.
  bool open();
  void close();
  bool isOpen() const { return Open; }

  /// Why open() failed ("" while open).
  const std::string &unavailableReason() const { return Reason; }

  /// Current counter values (zeros for counters that did not open).
  PerfCounts read() const;

private:
  int Fd[4] = {-1, -1, -1, -1};
  bool Open = false;
  std::string Reason;
};

/// Per-stage and whole-run counter deltas for one chain, plus the
/// availability verdict.  Plain data, merged in chain order like
/// StageTimes.
struct StagePerf {
  PerfCounts Stage[NumStages];
  PerfCounts Total;
  bool Available = false;
  std::string FallbackReason;

  void merge(const StagePerf &O) {
    for (unsigned I = 0; I != NumStages; ++I)
      Stage[I].add(O.Stage[I]);
    Total.add(O.Total);
    Available = Available || O.Available;
    if (FallbackReason.empty())
      FallbackReason = O.FallbackReason;
  }
};

/// The per-chain sink ScopedStage charges counter deltas to.  Opened
/// and installed (StagePerfScope) on the chain thread; stage spans may
/// nest a few levels deep, so span begins are kept on a small stack.
class StagePerfSink {
public:
  /// Opens the counter group on the calling thread.  On failure the
  /// sink still take()s a StagePerf carrying the fallback reason.
  bool open();

  /// Brackets the whole chain run for the Total row.
  void beginRun();
  void endRun();

  void enterSpan();
  void exitSpan(Stage S);

  /// The accumulated result (callable once the run is over).
  StagePerf take() { return Data; }

private:
  static constexpr unsigned MaxDepth = 8;
  PerfCounterGroup Group;
  PerfCounts Begin[MaxDepth];
  unsigned Depth = 0;
  PerfCounts RunBegin;
  bool InRun = false;
  StagePerf Data;
};

} // namespace psketch

#endif // PSKETCH_OBS_PERFCOUNTERS_H
