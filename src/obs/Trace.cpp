//===- obs/Trace.cpp - JSONL chain-trace events ----------------------------===//
//
// Part of the PSketch project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

using namespace psketch;

const char *psketch::traceOutcomeName(TraceOutcome O) {
  switch (O) {
  case TraceOutcome::Accept:
    return "accept";
  case TraceOutcome::Reject:
    return "reject";
  case TraceOutcome::InvalidType:
    return "invalid_type";
  case TraceOutcome::InvalidDomain:
    return "invalid_domain";
  case TraceOutcome::InvalidStatic:
    return "invalid_static";
  }
  return "unknown";
}

std::optional<TraceOutcome>
psketch::parseTraceOutcome(const std::string &Name) {
  if (Name == "accept")
    return TraceOutcome::Accept;
  if (Name == "reject")
    return TraceOutcome::Reject;
  if (Name == "invalid_type")
    return TraceOutcome::InvalidType;
  if (Name == "invalid_domain")
    return TraceOutcome::InvalidDomain;
  if (Name == "invalid_static")
    return TraceOutcome::InvalidStatic;
  if (Name == "invalid") // legacy traces, pre reason split
    return TraceOutcome::InvalidDomain;
  return std::nullopt;
}

std::string psketch::traceManifestLine(const RunManifest &M) {
  JsonWriter W;
  W.beginObject();
  W.field("type", "manifest");
  W.field("schema_version", TelemetrySchemaVersion);
  W.field("seed", M.Seed);
  W.field("iterations", uint64_t(M.Iterations));
  W.field("chains", uint64_t(M.Chains));
  W.field("threads", uint64_t(M.Threads));
  W.field("sketch", M.Sketch);
  W.field("dataset_rows", M.DatasetRows);
  W.field("dataset_cols", M.DatasetCols);
  W.field("dataset_fingerprint", M.DatasetFingerprint);
  W.field("score_cache", M.ScoreCacheSize);
  W.field("proposal_ratio", M.UseProposalRatio);
  W.endObject();
  return W.str();
}

std::string psketch::traceEventLine(const TraceEvent &E) {
  JsonWriter W;
  W.beginObject();
  W.field("type", "event");
  W.field("chain", uint64_t(E.Chain));
  W.field("iter", uint64_t(E.Iter));
  W.field("mutation", E.Mutation);
  W.field("outcome", traceOutcomeName(E.Outcome));
  W.field("candidate_ll", E.CandidateLL);
  W.field("best_ll", E.BestLL);
  W.field("cache_hit", E.CacheHit);
  W.endObject();
  return W.str();
}

void psketch::writeJsonlTrace(std::ostream &OS, const RunManifest &M,
                              const std::vector<TraceEvent> &Events) {
  OS << traceManifestLine(M) << '\n';
  for (const TraceEvent &E : Events)
    OS << traceEventLine(E) << '\n';
}

namespace {

bool parseManifest(const JsonValue &V, RunManifest &M) {
  auto U64 = [&](const char *Key, uint64_t &Out) {
    auto N = V.getUInt64(Key);
    if (!N)
      return false;
    Out = *N;
    return true;
  };
  uint64_t Iter = 0, Chains = 0, Threads = 0;
  if (!U64("seed", M.Seed) || !U64("iterations", Iter) ||
      !U64("chains", Chains) || !U64("threads", Threads) ||
      !U64("dataset_rows", M.DatasetRows) ||
      !U64("dataset_cols", M.DatasetCols) ||
      !U64("dataset_fingerprint", M.DatasetFingerprint) ||
      !U64("score_cache", M.ScoreCacheSize))
    return false;
  M.Iterations = unsigned(Iter);
  M.Chains = unsigned(Chains);
  M.Threads = unsigned(Threads);
  auto Sketch = V.getString("sketch");
  auto Ratio = V.getBool("proposal_ratio");
  if (!Sketch || !Ratio)
    return false;
  M.Sketch = *Sketch;
  M.UseProposalRatio = *Ratio;
  return true;
}

bool parseEvent(const JsonValue &V, TraceEvent &E) {
  auto Chain = V.getNumber("chain");
  auto Iter = V.getNumber("iter");
  auto Mutation = V.getString("mutation");
  auto OutcomeName = V.getString("outcome");
  auto CandLL = V.getNumber("candidate_ll");
  auto BestLL = V.getNumber("best_ll");
  auto CacheHit = V.getBool("cache_hit");
  if (!Chain || !Iter || !Mutation || !OutcomeName || !CandLL || !BestLL ||
      !CacheHit)
    return false;
  auto Outcome = parseTraceOutcome(*OutcomeName);
  if (!Outcome)
    return false;
  E.Chain = unsigned(*Chain);
  E.Iter = unsigned(*Iter);
  E.Mutation = *Mutation;
  E.Outcome = *Outcome;
  E.CandidateLL = *CandLL;
  E.BestLL = *BestLL;
  E.CacheHit = *CacheHit;
  return true;
}

} // namespace

std::optional<ParsedTrace> psketch::readJsonlTrace(std::istream &IS,
                                                   std::string &Err) {
  ParsedTrace T;
  std::string Line;
  size_t LineNo = 0;
  bool SawManifest = false;
  while (std::getline(IS, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string ParseErr;
    auto V = parseJson(Line, ParseErr);
    if (!V || !V->isObject()) {
      Err = "line " + std::to_string(LineNo) + ": " +
            (ParseErr.empty() ? "not a JSON object" : ParseErr);
      return std::nullopt;
    }
    auto Type = V->getString("type");
    if (!Type) {
      Err = "line " + std::to_string(LineNo) + ": missing \"type\"";
      return std::nullopt;
    }
    if (*Type == "manifest") {
      if (SawManifest) {
        Err = "line " + std::to_string(LineNo) + ": duplicate manifest";
        return std::nullopt;
      }
      // Legacy traces (no schema_version) are accepted; a declared
      // version must match this build's.
      if (auto Schema = V->getUInt64("schema_version");
          Schema && *Schema != TelemetrySchemaVersion) {
        Err = "line " + std::to_string(LineNo) +
              ": unsupported schema_version " + std::to_string(*Schema) +
              " (this build reads version " +
              std::to_string(TelemetrySchemaVersion) + ")";
        return std::nullopt;
      }
      if (!parseManifest(*V, T.Manifest)) {
        Err = "line " + std::to_string(LineNo) + ": malformed manifest";
        return std::nullopt;
      }
      SawManifest = true;
    } else if (*Type == "event") {
      if (!SawManifest) {
        Err = "line " + std::to_string(LineNo) +
              ": event before manifest";
        return std::nullopt;
      }
      TraceEvent E;
      if (!parseEvent(*V, E)) {
        Err = "line " + std::to_string(LineNo) + ": malformed event";
        return std::nullopt;
      }
      T.Events.push_back(std::move(E));
    } else {
      Err = "line " + std::to_string(LineNo) + ": unknown type '" +
            *Type + "'";
      return std::nullopt;
    }
  }
  if (!SawManifest) {
    Err = "trace has no manifest line";
    return std::nullopt;
  }
  return T;
}

ParsedTrace
psketch::mergeParsedTraces(const std::vector<ParsedTrace> &Traces,
                           std::vector<std::string> *Warnings) {
  ParsedTrace Merged;
  if (Traces.empty())
    return Merged;
  Merged.Manifest = Traces.front().Manifest;
  unsigned NextChain = 0;
  for (size_t TI = 0; TI != Traces.size(); ++TI) {
    const ParsedTrace &T = Traces[TI];
    if (TI && Warnings) {
      if (T.Manifest.Sketch != Merged.Manifest.Sketch)
        Warnings->push_back("trace " + std::to_string(TI + 1) +
                            " is for sketch '" + T.Manifest.Sketch +
                            "', not '" + Merged.Manifest.Sketch + "'");
      if (T.Manifest.DatasetFingerprint !=
          Merged.Manifest.DatasetFingerprint)
        Warnings->push_back(
            "trace " + std::to_string(TI + 1) +
            " has a different dataset fingerprint — the combined "
            "likelihoods are not comparable");
    }
    const unsigned Offset = NextChain;
    unsigned TopChain = 0;
    for (const TraceEvent &E : T.Events) {
      TraceEvent Renumbered = E;
      Renumbered.Chain += Offset;
      TopChain = std::max(TopChain, E.Chain + 1);
      Merged.Events.push_back(std::move(Renumbered));
    }
    NextChain = Offset + std::max(T.Manifest.Chains, TopChain);
    Merged.Manifest.Iterations =
        std::max(Merged.Manifest.Iterations, T.Manifest.Iterations);
  }
  Merged.Manifest.Chains = NextChain;
  return Merged;
}

TraceSummary psketch::summarizeTrace(const ParsedTrace &T, size_t Window) {
  TraceSummary S;
  std::map<unsigned, std::vector<const TraceEvent *>> ByChain;
  for (const TraceEvent &E : T.Events) {
    ++S.Events;
    S.Accepted += E.Outcome == TraceOutcome::Accept;
    S.Invalid += isInvalidOutcome(E.Outcome);
    S.InvalidType += E.Outcome == TraceOutcome::InvalidType;
    S.InvalidDomain += E.Outcome == TraceOutcome::InvalidDomain;
    S.InvalidStatic += E.Outcome == TraceOutcome::InvalidStatic;
    S.CacheHits += E.CacheHit;
    S.BestLL = std::max(S.BestLL, E.BestLL);
    ByChain[E.Chain].push_back(&E);
  }
  for (const auto &[Chain, Events] : ByChain) {
    ChainSummary C;
    C.Chain = Chain;
    C.Events = Events.size();
    for (const TraceEvent *E : Events) {
      C.Accepted += E->Outcome == TraceOutcome::Accept;
      C.Invalid += isInvalidOutcome(E->Outcome);
      C.InvalidType += E->Outcome == TraceOutcome::InvalidType;
      C.InvalidDomain += E->Outcome == TraceOutcome::InvalidDomain;
      C.InvalidStatic += E->Outcome == TraceOutcome::InvalidStatic;
      C.CacheHits += E->CacheHit;
    }
    C.FirstBestLL = Events.front()->BestLL;
    C.FinalBestLL = Events.back()->BestLL;
    size_t W = std::min(Window, Events.size());
    uint64_t WinAccepts = 0;
    for (size_t I = Events.size() - W; I != Events.size(); ++I)
      WinAccepts += Events[I]->Outcome == TraceOutcome::Accept;
    C.WindowAcceptRate = W ? double(WinAccepts) / double(W) : 0;
    S.PerChain.push_back(std::move(C));
  }
  return S;
}

std::string psketch::formatTraceSummary(const TraceSummary &S) {
  std::ostringstream OS;
  OS << "events: " << S.Events << "\n";
  double AccRate = S.Events ? double(S.Accepted) / double(S.Events) : 0;
  double InvRate = S.Events ? double(S.Invalid) / double(S.Events) : 0;
  double HitRate = S.Events ? double(S.CacheHits) / double(S.Events) : 0;
  OS << "accepted: " << S.Accepted << " (" << AccRate * 100 << "%)\n";
  OS << "invalid: " << S.Invalid << " (" << InvRate * 100 << "%)"
     << " [type " << S.InvalidType << ", domain " << S.InvalidDomain
     << ", static " << S.InvalidStatic << "]\n";
  OS << "cache hits: " << S.CacheHits << " (" << HitRate * 100 << "%)\n";
  OS << "best log-likelihood: " << S.BestLL << "\n";
  for (const ChainSummary &C : S.PerChain) {
    double Rate = C.Events ? double(C.Accepted) / double(C.Events) : 0;
    OS << "chain " << C.Chain << ": " << C.Events << " events, accept "
       << Rate * 100 << "%, windowed accept " << C.WindowAcceptRate * 100
       << "%, best LL " << C.FirstBestLL << " -> " << C.FinalBestLL
       << "\n";
  }
  return OS.str();
}
